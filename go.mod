module github.com/wattwiseweb/greenweb

go 1.22
