// Package replay provides deterministic user-interaction record/replay, the
// role Mosaic plays in the paper's methodology (Sec. 7.1): identical input
// timelines across runs of the same application, so that energy and QoS
// differences are attributable to the governor alone.
//
// Traces are built from the LTM interaction vocabulary (paper Fig. 2):
// Loading is implicit in page load; Tapping expands to touchstart/touchend/
// click; Moving expands to touchstart, a stream of touchmove/scroll events,
// and touchend.
package replay

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"math/rand"
	"sort"
	"strings"

	"github.com/wattwiseweb/greenweb/internal/browser"
	"github.com/wattwiseweb/greenweb/internal/sim"
)

// Step is one injected input event, at an offset from trace start.
type Step struct {
	At     sim.Duration       `json:"at_us"`
	Event  string             `json:"event"`
	Target string             `json:"target"`
	Data   map[string]float64 `json:"data,omitempty"`
}

// Trace is a named, ordered input timeline.
type Trace struct {
	Name  string `json:"name"`
	Steps []Step `json:"steps"`
}

// Duration reports the offset of the last step.
func (t *Trace) Duration() sim.Duration {
	if len(t.Steps) == 0 {
		return 0
	}
	return t.Steps[len(t.Steps)-1].At
}

// Events reports the number of steps.
func (t *Trace) Events() int { return len(t.Steps) }

// Append adds steps, keeping them ordered by time.
func (t *Trace) Append(steps ...Step) {
	for _, s := range steps {
		if len(t.Steps) > 0 && s.At < t.Steps[len(t.Steps)-1].At {
			panic(fmt.Sprintf("replay: step at %v before previous %v", s.At, t.Steps[len(t.Steps)-1].At))
		}
		t.Steps = append(t.Steps, s)
	}
}

// Replay schedules every step of the trace on the engine, offset from
// start. The simulation still has to be run by the caller.
func (t *Trace) Replay(e *browser.Engine, start sim.Time) {
	for _, s := range t.Steps {
		e.Inject(start.Add(s.At), s.Event, s.Target, s.Data)
	}
}

// Record reconstructs an interaction trace from an engine's input history —
// the "record" half of the Mosaic role. Loads and profiling triggers are
// excluded; step offsets are relative to the earliest recorded input.
func Record(name string, e *browser.Engine) *Trace {
	type rec struct {
		at     sim.Time
		event  string
		target string
	}
	var recs []rec
	for _, in := range e.InputRecords() {
		if in.Event == "load" || strings.HasPrefix(in.Event, "profile:") {
			continue
		}
		recs = append(recs, rec{in.Start, in.Event, in.Target})
	}
	sort.Slice(recs, func(i, j int) bool { return recs[i].at < recs[j].at })
	t := &Trace{Name: name}
	if len(recs) == 0 {
		return t
	}
	base := recs[0].at
	for _, r := range recs {
		t.Steps = append(t.Steps, Step{At: r.at.Sub(base), Event: r.event, Target: r.target})
	}
	return t
}

// Seed derives the trace's intrinsic seed from its name and step timeline
// (FNV-1a). Two workers that synthesize the same trace — same name, same
// steps — derive the same seed on any machine, so seeded derivations
// (Jitter) agree across a fleet without coordination.
func (t *Trace) Seed() int64 {
	h := fnv.New64a()
	io.WriteString(h, t.Name)
	var buf [8]byte
	for _, s := range t.Steps {
		binary.LittleEndian.PutUint64(buf[:], uint64(s.At))
		h.Write(buf[:])
		io.WriteString(h, s.Event)
		io.WriteString(h, s.Target)
	}
	return int64(h.Sum64())
}

// Jitter returns a copy of the trace with every step's offset perturbed by
// up to ±maxShift, deterministically, preserving step order. The stream is
// seeded by seed XOR the trace's intrinsic Seed, so distinct traces
// jittered with the same caller seed (e.g. repetition index) do not share a
// perturbation pattern, and the same (trace, seed) pair agrees on every
// fleet worker. The paper reports ~5% run-to-run variation on hardware;
// jittered replays reintroduce that source of noise into the otherwise
// exact simulation.
// A maxShift of zero (or less) is the identity: the copy keeps the original
// name — not a "-jitter" suffix — so its intrinsic Seed is unchanged and a
// zero-jitter replay is indistinguishable from the source trace everywhere
// downstream (fault injectors key off trace Seed).
func (t *Trace) Jitter(seed int64, maxShift sim.Duration) *Trace {
	if maxShift <= 0 {
		out := &Trace{Name: t.Name, Steps: make([]Step, len(t.Steps))}
		copy(out.Steps, t.Steps)
		return out
	}
	rng := rand.New(rand.NewSource(seed ^ t.Seed()))
	out := &Trace{Name: t.Name + "-jitter"}
	var last sim.Duration
	for _, s := range t.Steps {
		shift := sim.Duration(rng.Int63n(int64(2*maxShift+1))) - maxShift
		at := s.At + shift
		if at < last {
			at = last
		}
		last = at
		out.Steps = append(out.Steps, Step{At: at, Event: s.Event, Target: s.Target, Data: s.Data})
	}
	return out
}

// Marshal serializes the trace (the "record" format).
func (t *Trace) Marshal() ([]byte, error) { return json.MarshalIndent(t, "", "  ") }

// Unmarshal parses a recorded trace.
func Unmarshal(data []byte) (*Trace, error) {
	var t Trace
	if err := json.Unmarshal(data, &t); err != nil {
		return nil, fmt.Errorf("replay: %w", err)
	}
	return &t, nil
}

// Tap expands a tapping interaction (T of LTM) on target at the given
// offset: touchstart, then touchend and click ~80 ms later (a typical
// finger dwell).
func Tap(at sim.Duration, target string) []Step {
	return []Step{
		{At: at, Event: "touchstart", Target: target},
		{At: at + 80*sim.Millisecond, Event: "touchend", Target: target},
		{At: at + 85*sim.Millisecond, Event: "click", Target: target},
	}
}

// Move expands a moving interaction (M of LTM): touchstart, n touchmove
// events spaced gap apart (each carrying a scroll delta), and touchend.
func Move(at sim.Duration, target string, n int, gap sim.Duration) []Step {
	steps := []Step{{At: at, Event: "touchstart", Target: target}}
	for i := 0; i < n; i++ {
		steps = append(steps, Step{
			At:     at + sim.Duration(i+1)*gap,
			Event:  "touchmove",
			Target: target,
			Data:   map[string]float64{"deltaY": 24},
		})
	}
	steps = append(steps, Step{
		At:     at + sim.Duration(n+1)*gap,
		Event:  "touchend",
		Target: target,
	})
	return steps
}

// Scroll expands a moving interaction delivered as scroll events (how some
// applications receive finger movement).
func Scroll(at sim.Duration, target string, n int, gap sim.Duration) []Step {
	var steps []Step
	for i := 0; i < n; i++ {
		steps = append(steps, Step{
			At:     at + sim.Duration(i)*gap,
			Event:  "scroll",
			Target: target,
			Data:   map[string]float64{"deltaY": 24},
		})
	}
	return steps
}
