package replay

import (
	"sync"
	"testing"

	"github.com/wattwiseweb/greenweb/internal/acmp"
	"github.com/wattwiseweb/greenweb/internal/browser"
	"github.com/wattwiseweb/greenweb/internal/governor"
	"github.com/wattwiseweb/greenweb/internal/sim"
)

func TestTapExpansion(t *testing.T) {
	steps := Tap(100*sim.Millisecond, "btn")
	if len(steps) != 3 {
		t.Fatalf("steps = %d", len(steps))
	}
	if steps[0].Event != "touchstart" || steps[1].Event != "touchend" || steps[2].Event != "click" {
		t.Fatalf("events = %v", steps)
	}
	if steps[0].At != 100*sim.Millisecond || steps[2].At <= steps[1].At {
		t.Fatalf("timing = %v", steps)
	}
	for _, s := range steps {
		if s.Target != "btn" {
			t.Fatalf("target = %q", s.Target)
		}
	}
}

func TestMoveExpansion(t *testing.T) {
	steps := Move(0, "list", 5, 16*sim.Millisecond)
	if len(steps) != 7 { // touchstart + 5 moves + touchend
		t.Fatalf("steps = %d", len(steps))
	}
	if steps[0].Event != "touchstart" || steps[6].Event != "touchend" {
		t.Fatalf("bracketing events wrong: %v", steps)
	}
	for i := 1; i <= 5; i++ {
		if steps[i].Event != "touchmove" || steps[i].Data["deltaY"] == 0 {
			t.Fatalf("step %d = %+v", i, steps[i])
		}
	}
}

func TestScrollExpansion(t *testing.T) {
	steps := Scroll(10*sim.Millisecond, "pg", 3, 20*sim.Millisecond)
	if len(steps) != 3 {
		t.Fatalf("steps = %d", len(steps))
	}
	for _, s := range steps {
		if s.Event != "scroll" {
			t.Fatalf("event = %q", s.Event)
		}
	}
}

func TestTraceAppendOrderEnforced(t *testing.T) {
	tr := &Trace{Name: "x"}
	tr.Append(Tap(0, "a")...)
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-order append did not panic")
		}
	}()
	tr.Append(Step{At: 0, Event: "click", Target: "a"})
}

func TestTraceDurationAndEvents(t *testing.T) {
	tr := &Trace{Name: "x"}
	tr.Append(Tap(0, "a")...)
	tr.Append(Move(sim.Second, "b", 4, 16*sim.Millisecond)...)
	if tr.Events() != 9 {
		t.Fatalf("events = %d", tr.Events())
	}
	want := sim.Second + 5*16*sim.Millisecond
	if tr.Duration() != want {
		t.Fatalf("duration = %v, want %v", tr.Duration(), want)
	}
}

func TestMarshalRoundTrip(t *testing.T) {
	tr := &Trace{Name: "session"}
	tr.Append(Tap(50*sim.Millisecond, "btn")...)
	tr.Append(Scroll(sim.Second, "pg", 2, 30*sim.Millisecond)...)
	data, err := tr.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	back, err := Unmarshal(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.Name != tr.Name || back.Events() != tr.Events() || back.Duration() != tr.Duration() {
		t.Fatalf("round trip changed trace: %+v", back)
	}
	if back.Steps[3].Data["deltaY"] != 24 {
		t.Fatal("data lost in round trip")
	}
	if _, err := Unmarshal([]byte("{broken")); err == nil {
		t.Fatal("expected unmarshal error")
	}
}

func TestRecordRoundTrip(t *testing.T) {
	// Replay a trace into an engine, record it back, and compare.
	s := sim.New()
	cpu := acmp.NewCPU(s, acmp.DefaultPower())
	e := browser.New(s, cpu, nil)
	e.SetGovernor(governor.NewPerf())
	if _, err := e.LoadPage(`<body><div id="d">x</div></body>`); err != nil {
		t.Fatal(err)
	}
	s.Run()
	orig := &Trace{Name: "orig"}
	orig.Append(Tap(0, "d")...)
	orig.Append(Move(sim.Second, "d", 3, 20*sim.Millisecond)...)
	start := s.Now().Add(50 * sim.Millisecond)
	orig.Replay(e, start)
	s.Run()

	rec := Record("rec", e)
	if rec.Events() != orig.Events() {
		t.Fatalf("recorded %d events, want %d", rec.Events(), orig.Events())
	}
	for i, step := range rec.Steps {
		if step.Event != orig.Steps[i].Event || step.Target != orig.Steps[i].Target {
			t.Fatalf("step %d = %+v, want %+v", i, step, orig.Steps[i])
		}
		if step.At != orig.Steps[i].At {
			t.Fatalf("step %d offset = %v, want %v", i, step.At, orig.Steps[i].At)
		}
	}
	// The load event is excluded.
	for _, step := range rec.Steps {
		if step.Event == "load" {
			t.Fatal("load recorded")
		}
	}
}

func TestJitterPreservesOrderAndContent(t *testing.T) {
	orig := &Trace{Name: "t"}
	orig.Append(Tap(0, "a")...)
	orig.Append(Move(sim.Second, "b", 10, 16*sim.Millisecond)...)
	j := orig.Jitter(42, 20*sim.Millisecond)
	if j.Events() != orig.Events() {
		t.Fatal("jitter changed event count")
	}
	var last sim.Duration = -1
	moved := false
	for i, step := range j.Steps {
		if step.At < last {
			t.Fatalf("jitter broke ordering at step %d", i)
		}
		last = step.At
		if step.Event != orig.Steps[i].Event || step.Target != orig.Steps[i].Target {
			t.Fatal("jitter changed step content")
		}
		if step.At != orig.Steps[i].At {
			moved = true
		}
		d := step.At - orig.Steps[i].At
		if d > 20*sim.Millisecond || d < -20*sim.Millisecond {
			// Clamping to preserve order can push a step later than its
			// own shift; allow accumulation but it must stay bounded by
			// the trace's worst case.
			if d > 200*sim.Millisecond {
				t.Fatalf("step %d shifted %v", i, d)
			}
		}
	}
	if !moved {
		t.Fatal("jitter moved nothing")
	}
	// Deterministic in the seed.
	j2 := orig.Jitter(42, 20*sim.Millisecond)
	for i := range j.Steps {
		if j.Steps[i].At != j2.Steps[i].At {
			t.Fatal("jitter not deterministic")
		}
	}
	j3 := orig.Jitter(43, 20*sim.Millisecond)
	same := true
	for i := range j.Steps {
		if j.Steps[i].At != j3.Steps[i].At {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds gave identical jitter")
	}
}

func TestTraceSeedDeterministicAndDistinct(t *testing.T) {
	mk := func(name string) *Trace {
		tr := &Trace{Name: name}
		tr.Append(Tap(0, "a")...)
		tr.Append(Move(sim.Second, "b", 5, 16*sim.Millisecond)...)
		return tr
	}
	// Two independently synthesized copies of the same trace agree — the
	// fleet-worker determinism guarantee.
	if mk("t").Seed() != mk("t").Seed() {
		t.Fatal("identical traces derived different seeds")
	}
	if mk("t").Seed() == mk("u").Seed() {
		t.Fatal("differently named traces share a seed")
	}
	// Same step content, different timeline → different seed.
	a, b := mk("t"), mk("t")
	b.Steps[0].At += sim.Millisecond
	if a.Seed() == b.Seed() {
		t.Fatal("shifted timeline shares a seed")
	}
}

func TestJitterMixesTraceSeed(t *testing.T) {
	a := &Trace{Name: "a"}
	a.Append(Tap(0, "x")...)
	a.Append(Move(sim.Second, "x", 20, 16*sim.Millisecond)...)
	b := &Trace{Name: "b"}
	b.Append(Tap(0, "x")...)
	b.Append(Move(sim.Second, "x", 20, 16*sim.Millisecond)...)
	ja, jb := a.Jitter(1, 20*sim.Millisecond), b.Jitter(1, 20*sim.Millisecond)
	same := true
	for i := range ja.Steps {
		if ja.Steps[i].At != jb.Steps[i].At {
			same = false
		}
	}
	if same {
		t.Fatal("distinct traces share a perturbation pattern under the same caller seed")
	}
}

func TestJitterZeroShiftIsExactIdentity(t *testing.T) {
	orig := &Trace{Name: "t"}
	orig.Append(Tap(0, "a")...)
	orig.Append(Move(sim.Second, "b", 10, 16*sim.Millisecond)...)
	for _, shift := range []sim.Duration{0, -sim.Millisecond} {
		j := orig.Jitter(42, shift)
		if j.Name != orig.Name {
			t.Fatalf("maxShift=%v: name = %q, want the original %q (intrinsic Seed must not move)", shift, j.Name, orig.Name)
		}
		if j.Seed() != orig.Seed() {
			t.Fatalf("maxShift=%v: Seed changed under identity jitter", shift)
		}
		if len(j.Steps) != len(orig.Steps) {
			t.Fatalf("maxShift=%v: step count changed", shift)
		}
		for i := range j.Steps {
			if j.Steps[i].At != orig.Steps[i].At ||
				j.Steps[i].Event != orig.Steps[i].Event ||
				j.Steps[i].Target != orig.Steps[i].Target {
				t.Fatalf("maxShift=%v: step %d altered", shift, i)
			}
		}
		// Identity is a copy, not an alias: mutating it leaves the source alone.
		j.Steps[0].At += sim.Millisecond
		if orig.Steps[0].At == j.Steps[0].At {
			t.Fatal("identity jitter aliases the source trace's steps")
		}
	}
}

// TestJitterConcurrentUse: Jitter must be safe to call from many fleet
// workers on the shared catalog trace at once (it only reads the receiver),
// and every worker must derive the identical perturbation. Run with -race.
func TestJitterConcurrentUse(t *testing.T) {
	orig := &Trace{Name: "shared"}
	orig.Append(Tap(0, "a")...)
	orig.Append(Move(sim.Second, "b", 30, 16*sim.Millisecond)...)
	const workers = 8
	got := make([]*Trace, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			got[w] = orig.Jitter(7, 20*sim.Millisecond)
		}(w)
	}
	wg.Wait()
	for w := 1; w < workers; w++ {
		if len(got[w].Steps) != len(got[0].Steps) {
			t.Fatalf("worker %d: step count diverged", w)
		}
		for i := range got[w].Steps {
			if got[w].Steps[i].At != got[0].Steps[i].At {
				t.Fatalf("worker %d step %d: %v != %v — fleet workers disagree",
					w, i, got[w].Steps[i].At, got[0].Steps[i].At)
			}
		}
	}
}
