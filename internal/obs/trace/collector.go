package trace

import (
	"os"
	"sync"
	"sync/atomic"
	"time"

	"github.com/wattwiseweb/greenweb/internal/obs"
)

// SweepTrace is one sweep's merged span buffer on the server: server-side
// phase spans (admission, queue-wait, steal, re-home, dispatch, merge) are
// recorded directly; worker spans are folded in as results arrive. The
// buffer is bounded; overflow increments the drop counter instead of
// growing.
type SweepTrace struct {
	sweep string

	mu      sync.Mutex
	spans   []Span
	budget  int
	dropped int64
}

// Sweep reports the sweep id the trace belongs to.
func (t *SweepTrace) Sweep() string { return t.sweep }

// NewID mints a span id (for pre-allocating a root id that a later
// RecordSpan will use).
func (t *SweepTrace) NewID() uint64 { return NewSpanID() }

// Record appends one completed server-side span and returns its id.
func (t *SweepTrace) Record(job int, parent uint64, name, cat string, start time.Time, dur time.Duration, attrs map[string]string) uint64 {
	sp := Span{
		ID:      NewSpanID(),
		Parent:  parent,
		Name:    name,
		Cat:     cat,
		Job:     job,
		PID:     pid,
		StartUS: start.UnixMicro(),
		DurUS:   int64(dur / time.Microsecond),
		Attrs:   attrs,
	}
	t.RecordSpan(sp)
	return sp.ID
}

// RecordSpan appends a fully formed span (the caller minted its id). Spans
// without a PID are stamped with this process's.
func (t *SweepTrace) RecordSpan(sp Span) {
	if sp.PID == 0 {
		sp.PID = pid
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.spans) >= t.budget {
		t.dropped++
		droppedTotal.Add(1)
		return
	}
	t.spans = append(t.spans, sp)
	recordedTotal.Add(1)
}

// AddSpans folds worker-shipped spans (already clock-aligned by the
// transport) into the sweep, plus the worker-side drop count.
func (t *SweepTrace) AddSpans(spans []Span, dropped int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.dropped += int64(dropped)
	for _, sp := range spans {
		if len(t.spans) >= t.budget {
			t.dropped++
			droppedTotal.Add(1)
			continue
		}
		t.spans = append(t.spans, sp)
		recordedTotal.Add(1)
	}
	if dropped > 0 {
		droppedTotal.Add(int64(dropped))
	}
}

// Snapshot copies the merged spans and the cumulative drop count.
func (t *SweepTrace) Snapshot() ([]Span, int64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]Span(nil), t.spans...), t.dropped
}

var pid = os.Getpid()

// Collector is the process-wide registry of sweep traces, keyed by sweep
// id. Bounded: past maxSweeps the oldest registration is evicted, so a
// long-lived server's trace memory cannot grow without limit (sweep results
// themselves live in the fleet registry; this is only the span overlay).
type Collector struct {
	mu     sync.Mutex
	sweeps map[string]*SweepTrace
	order  []string
	max    int
}

// maxSweeps bounds how many sweeps' traces a process retains.
const maxSweeps = 1024

// perJobSpanBudget scales a sweep's buffer: enough for every phase of every
// job with retry headroom, while keeping one sweep's trace a few MB at most.
const perJobSpanBudget = 96

var defaultCollector = NewCollector()

// NewCollector builds an isolated collector. Production uses Default() (one
// process, one manager); tests inject fresh collectors so managers created
// in the same process cannot collide on their per-manager sequential sweep
// ids. The span counters stay process-global either way.
func NewCollector() *Collector {
	return &Collector{sweeps: map[string]*SweepTrace{}, max: maxSweeps}
}

// Counters surfaced on obs.Default: how many spans the process has merged
// and how many it has dropped to budget pressure.
var (
	recordedTotal atomic.Int64
	droppedTotal  atomic.Int64
	registerOnce  sync.Once
)

// Default returns the process-wide collector, registering its counters on
// obs.Default on first use.
func Default() *Collector {
	registerOnce.Do(func() {
		obs.Default().CounterFunc("greenweb_trace_spans_total",
			"Trace spans recorded or merged by this process",
			func() float64 { return float64(recordedTotal.Load()) })
		obs.Default().CounterFunc("greenweb_trace_span_drops_total",
			"Trace spans dropped to per-job or per-sweep budget pressure",
			func() float64 { return float64(droppedTotal.Load()) })
	})
	return defaultCollector
}

// Register creates (or returns) the sweep's trace buffer, sized from its
// job count. Evicts the oldest sweep past the collector's bound.
func (c *Collector) Register(sweep string, jobs int) *SweepTrace {
	c.mu.Lock()
	defer c.mu.Unlock()
	if t, ok := c.sweeps[sweep]; ok {
		return t
	}
	budget := perJobSpanBudget * jobs
	if budget < 512 {
		budget = 512
	}
	t := &SweepTrace{sweep: sweep, budget: budget}
	c.sweeps[sweep] = t
	c.order = append(c.order, sweep)
	for len(c.order) > c.max {
		delete(c.sweeps, c.order[0])
		c.order = c.order[1:]
	}
	return t
}

// Get resolves a sweep's trace buffer.
func (c *Collector) Get(sweep string) (*SweepTrace, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	t, ok := c.sweeps[sweep]
	return t, ok
}
