package trace

import (
	"bytes"
	"encoding/json"
	"os"
	"strings"
	"testing"
	"time"
)

func TestJobRecorderBudgetAndDrain(t *testing.T) {
	rec := NewJobRecorder(Context{Sweep: "s-1", Job: 3, Parent: 42}, 2)
	base := time.Now()
	rec.Record("execute", "execute", base, time.Millisecond, map[string]string{"attempt": "1"})
	rec.Record("backoff", "backoff", base, time.Millisecond, nil)
	rec.Record("execute", "execute", base, time.Millisecond, nil) // over budget
	spans, dropped := rec.Drain()
	if len(spans) != 2 {
		t.Fatalf("spans = %d, want 2", len(spans))
	}
	if dropped != 1 {
		t.Fatalf("dropped = %d, want 1", dropped)
	}
	for _, sp := range spans {
		if sp.Job != 3 || sp.Parent != 42 || sp.PID != os.Getpid() {
			t.Fatalf("span coordinates not stamped: %+v", sp)
		}
		if sp.ID == 0 {
			t.Fatalf("span id not minted: %+v", sp)
		}
	}
	// Drain resets.
	if spans, dropped := rec.Drain(); len(spans) != 0 || dropped != 0 {
		t.Fatalf("second drain = %d spans, %d dropped; want empty", len(spans), dropped)
	}
}

func TestNilRecorderIsSafe(t *testing.T) {
	var rec *JobRecorder
	rec.Record("execute", "execute", time.Now(), time.Millisecond, nil)
	if spans, dropped := rec.Drain(); spans != nil || dropped != 0 {
		t.Fatal("nil recorder recorded something")
	}
	if rec.Context() != (Context{}) {
		t.Fatal("nil recorder has a context")
	}
}

func TestEstimateOffsetUS(t *testing.T) {
	t0 := time.UnixMicro(1_000_000)
	t1 := time.UnixMicro(1_000_100) // 100µs round trip
	// Remote clock is 5s ahead; its reading at the exchange midpoint.
	remote := int64(6_000_050)
	off := EstimateOffsetUS(t0, t1, remote)
	if off != 5_000_000 {
		t.Fatalf("offset = %d, want 5000000", off)
	}
	// Remote clock 3s behind.
	remote = int64(1_000_050 - 3_000_000)
	if off := EstimateOffsetUS(t0, t1, remote); off != -3_000_000 {
		t.Fatalf("offset = %d, want -3000000", off)
	}
}

func TestCollectorBudgetAndSnapshot(t *testing.T) {
	c := &Collector{sweeps: map[string]*SweepTrace{}, max: 2}
	tr := c.Register("s-1", 1)
	if tr2 := c.Register("s-1", 1); tr2 != tr {
		t.Fatal("re-register returned a different trace")
	}
	start := time.Now()
	id := tr.Record(0, 0, "queue-wait", "queue", start, time.Millisecond, nil)
	if id == 0 {
		t.Fatal("Record minted id 0")
	}
	tr.AddSpans([]Span{{Name: "execute", Cat: "execute", Job: 0, PID: 999}}, 3)
	spans, dropped := tr.Snapshot()
	if len(spans) != 2 || dropped != 3 {
		t.Fatalf("snapshot = %d spans, %d dropped; want 2, 3", len(spans), dropped)
	}
	// FIFO eviction past the bound.
	c.Register("s-2", 1)
	c.Register("s-3", 1)
	if _, ok := c.Get("s-1"); ok {
		t.Fatal("oldest sweep not evicted")
	}
	if _, ok := c.Get("s-3"); !ok {
		t.Fatal("newest sweep missing")
	}
}

// TestMergeAlignsTwoSkewedClocks is the trace-merge contract: spans
// recorded on two worker clocks — one 5s fast, one 3s slow — align into one
// monotonic timeline once each batch is rebased by its handshake-estimated
// offset, and the exported Chrome trace emits nondecreasing timestamps.
func TestMergeAlignsTwoSkewedClocks(t *testing.T) {
	// Server timeline (unix µs): job 0 queue-waits [1000, 2000), executes
	// on node A [2000, 12000); job 1 queue-waits [1000, 3000), executes on
	// node B [3000, 9000).
	const (
		offsetA = int64(5_000_000)  // node A clock runs 5s ahead
		offsetB = int64(-3_000_000) // node B clock runs 3s behind
	)
	serverSpans := []Span{
		{ID: 1, Name: "queue-wait", Cat: "queue", Job: 0, PID: 100, StartUS: 1000, DurUS: 1000},
		{ID: 2, Name: "queue-wait", Cat: "queue", Job: 1, PID: 100, StartUS: 1000, DurUS: 2000},
	}
	// Worker spans stamped on their own skewed clocks.
	fromA := []Span{{ID: 3, Name: "execute", Cat: "execute", Job: 0, PID: 200, StartUS: 2000 + offsetA, DurUS: 10_000}}
	fromB := []Span{{ID: 4, Name: "execute", Cat: "execute", Job: 1, PID: 300, StartUS: 3000 + offsetB, DurUS: 6000}}

	// The transport estimates each offset from a simulated handshake: the
	// worker's now_us is its skewed clock read at the exchange midpoint.
	t0, t1 := time.UnixMicro(500), time.UnixMicro(700)
	estA := EstimateOffsetUS(t0, t1, 600+offsetA)
	estB := EstimateOffsetUS(t0, t1, 600+offsetB)
	if estA != offsetA || estB != offsetB {
		t.Fatalf("offset estimates = %d, %d; want %d, %d", estA, estB, offsetA, offsetB)
	}
	AlignSpans(fromA, estA, "nodeA")
	AlignSpans(fromB, estB, "nodeB")

	merged := append(append(serverSpans, fromA...), fromB...)
	var buf bytes.Buffer
	if err := WriteFleetTrace(&buf, "s-42", merged, 0); err != nil {
		t.Fatal(err)
	}
	var tf struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			TS   int64          `json:"ts"`
			Dur  int64          `json:"dur"`
			PID  int            `json:"pid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
		OtherData map[string]any `json:"otherData"`
	}
	if err := json.Unmarshal(buf.Bytes(), &tf); err != nil {
		t.Fatalf("exported trace is not JSON: %v", err)
	}
	if tf.OtherData["sweep"] != "s-42" {
		t.Fatalf("otherData.sweep = %v", tf.OtherData["sweep"])
	}

	// Aligned expectations on the rebased (base = 1000) timeline.
	want := map[string]int64{
		"execute/200": 1000, // node A execute: 2000 − base
		"execute/300": 2000, // node B execute: 3000 − base
	}
	last := int64(-1)
	for _, ev := range tf.TraceEvents {
		if ev.Ph == "M" {
			continue
		}
		if ev.TS < 0 {
			t.Fatalf("negative timestamp after rebase: %+v", ev)
		}
		if ev.TS < last {
			t.Fatalf("timestamps not monotonic: %d after %d", ev.TS, last)
		}
		last = ev.TS
		if wantTS, ok := want[ev.Name+"/"+itoa(ev.PID)]; ok && ev.TS != wantTS {
			t.Fatalf("%s pid %d at ts %d, want %d", ev.Name, ev.PID, ev.TS, wantTS)
		}
	}

	// Both worker pids appear as process rows, named for their nodes.
	rows := map[int]string{}
	for _, ev := range tf.TraceEvents {
		if ev.Ph == "M" && ev.Name == "process_name" {
			rows[ev.PID], _ = ev.Args["name"].(string)
		}
	}
	if !strings.Contains(rows[200], "nodeA") || !strings.Contains(rows[300], "nodeB") {
		t.Fatalf("process rows missing node names: %v", rows)
	}
	if !strings.Contains(rows[100], "greensrv") {
		t.Fatalf("server process row missing: %v", rows)
	}
}

func itoa(n int) string {
	var b [20]byte
	i := len(b)
	if n == 0 {
		return "0"
	}
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}

func TestWriteFleetTraceCarriesDrops(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFleetTrace(&buf, "s-7", nil, 12); err != nil {
		t.Fatal(err)
	}
	var tf struct {
		OtherData map[string]any `json:"otherData"`
	}
	if err := json.Unmarshal(buf.Bytes(), &tf); err != nil {
		t.Fatal(err)
	}
	if drops, _ := tf.OtherData["span_drops"].(float64); drops != 12 {
		t.Fatalf("span_drops = %v, want 12", tf.OtherData["span_drops"])
	}
}
