// Package trace is the fleet-wide distributed tracing layer: a compact
// span context propagated with every traced job — through fleet.Job, over
// the shard wire protocol, into greennode worker processes — and the span
// records that flow back, so one sweep's full story (HTTP admission, queue
// wait, steal, re-home, retry, backoff, execution) merges into a single
// Chrome trace_event artifact regardless of how many processes ran it.
//
// Design constraints, matching the rest of internal/obs:
//
//  1. Out-of-band. Tracing must never change a report, NDJSON row, ledger,
//     or fault-sweep byte. Contexts ride in fields every output path
//     ignores; spans are carried next to results, never inside them.
//  2. Bounded memory. Each job records into a fixed span budget with an
//     explicit dropped-span counter, and each sweep's merged buffer is
//     bounded the same way — a pathological cell cannot balloon the server.
//  3. Clock honesty. Worker spans are stamped on the worker's clock and
//     aligned at merge time using the offset estimated during the
//     hello/welcome handshake (see EstimateOffsetUS); the exporter then
//     normalizes all timestamps to the sweep's earliest span.
package trace

import (
	"os"
	"sync"
	"sync/atomic"
	"time"
)

// Context is the propagated trace context: enough to correlate any span,
// log line, or wire frame back to one job of one sweep. It rides in
// fleet.Job's Trace field (stripped before WAL persistence and before
// shipping to workers that did not negotiate tracing).
type Context struct {
	Sweep string `json:"sweep"`
	Job   int    `json:"job"`
	// Attempt counts placements: 0 for the first home, +1 per re-home, so a
	// worker's spans say which incarnation of the job they belong to.
	Attempt int `json:"attempt,omitempty"`
	// Parent is the job's root span id, allocated server-side at enqueue;
	// worker-recorded spans parent onto it.
	Parent uint64 `json:"parent,omitempty"`
}

// Span is one recorded phase of a traced job. Timestamps are unix
// microseconds on the recording process's clock; the merge aligns them.
type Span struct {
	ID     uint64 `json:"id,omitempty"`
	Parent uint64 `json:"par,omitempty"`
	Name   string `json:"name"`
	// Cat groups spans into phases: queue, steal, re-home, execute,
	// backoff, admission, merge.
	Cat     string `json:"cat,omitempty"`
	Job     int    `json:"job"`
	Attempt int    `json:"att,omitempty"`
	// Node names the executing node ("" for the server process). Remote
	// spans arrive with Node unset and are stamped by the RemoteNode that
	// knows the handshake identity.
	Node string `json:"node,omitempty"`
	// PID is the recording process's os.Getpid() — the trace exporter's
	// process row key, and the CI smoke's proof that spans really came from
	// distinct worker processes.
	PID     int               `json:"pid,omitempty"`
	StartUS int64             `json:"ts"`
	DurUS   int64             `json:"dur"`
	Attrs   map[string]string `json:"attrs,omitempty"`
}

// spanSeq feeds process-locally unique span ids. The pid is mixed into the
// high bits so ids minted by different processes of one sweep cannot
// collide (parent links must stay unambiguous after the merge).
var spanSeq atomic.Uint64

// NewSpanID mints a span id unique across the fleet's processes.
func NewSpanID() uint64 {
	return uint64(os.Getpid()&0xffff)<<48 | (spanSeq.Add(1) & (1<<48 - 1))
}

// DefaultJobBudget bounds one job's recorded spans (a traced job is a
// handful of phases; retries multiply them, so leave generous headroom).
const DefaultJobBudget = 64

// JobRecorder accumulates one job's spans under a fixed budget. A nil
// recorder is valid and records nothing — call sites stay unconditional.
type JobRecorder struct {
	mu      sync.Mutex
	ctx     Context
	pid     int
	budget  int
	spans   []Span
	dropped int
}

// NewJobRecorder builds a recorder for the job's context. budget ≤ 0 takes
// DefaultJobBudget.
func NewJobRecorder(ctx Context, budget int) *JobRecorder {
	if budget <= 0 {
		budget = DefaultJobBudget
	}
	return &JobRecorder{ctx: ctx, pid: os.Getpid(), budget: budget}
}

// Context returns the recorder's trace context.
func (r *JobRecorder) Context() Context {
	if r == nil {
		return Context{}
	}
	return r.ctx
}

// Record appends one completed span, stamped with the job's coordinates and
// this process's pid. Past the budget the span is counted, not stored.
func (r *JobRecorder) Record(name, cat string, start time.Time, dur time.Duration, attrs map[string]string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.spans) >= r.budget {
		r.dropped++
		return
	}
	r.spans = append(r.spans, Span{
		ID:      NewSpanID(),
		Parent:  r.ctx.Parent,
		Name:    name,
		Cat:     cat,
		Job:     r.ctx.Job,
		Attempt: r.ctx.Attempt,
		PID:     r.pid,
		StartUS: start.UnixMicro(),
		DurUS:   int64(dur / time.Microsecond),
		Attrs:   attrs,
	})
}

// Drain returns the recorded spans and the dropped count, resetting the
// recorder. Safe on nil.
func (r *JobRecorder) Drain() ([]Span, int) {
	if r == nil {
		return nil, 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	spans, dropped := r.spans, r.dropped
	r.spans, r.dropped = nil, 0
	return spans, dropped
}

// EstimateOffsetUS estimates a remote clock's offset from ours, in
// microseconds, from one handshake exchange: t0 is our clock when the hello
// was sent, t1 our clock when the welcome arrived, and remoteUS the remote
// clock read between the two (the welcome's now_us field). Assuming the
// network delay is symmetric, the remote read happened at the midpoint:
//
//	offset = remoteUS − (t0+t1)/2,  local ≈ remote − offset
//
// The error is bounded by half the round trip — microseconds on a LAN,
// which is all the alignment a merged sweep trace needs to stay readable.
func EstimateOffsetUS(t0, t1 time.Time, remoteUS int64) int64 {
	lo, hi := t0.UnixMicro(), t1.UnixMicro()
	return remoteUS - (lo + (hi-lo)/2)
}

// AlignSpans rebases spans recorded on a remote clock into the local
// timeline by subtracting the handshake-estimated offset, and stamps the
// node identity the transport knows. Pids recorded worker-side pass
// through untouched.
func AlignSpans(spans []Span, offsetUS int64, node string) {
	for i := range spans {
		spans[i].StartUS -= offsetUS
		if spans[i].Node == "" {
			spans[i].Node = node
		}
	}
}
