package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// traceEvent is one Chrome trace_event entry (JSON Object container
// variant), mirroring internal/ledger's exporter so both artifact families
// load in chrome://tracing and Perfetto. Timestamps are microseconds.
type traceEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	TS   int64          `json:"ts"`
	Dur  int64          `json:"dur,omitempty"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

type traceFile struct {
	TraceEvents     []traceEvent   `json:"traceEvents"`
	DisplayTimeUnit string         `json:"displayTimeUnit"`
	OtherData       map[string]any `json:"otherData,omitempty"`
}

// WriteFleetTrace renders a sweep's merged spans as Chrome trace_event
// JSON: one trace process per real OS process that recorded spans (the
// server plus each worker node), one thread lane per job index, timestamps
// rebased to the sweep's earliest span and emitted in nondecreasing order.
// spanDrops lands in otherData so a truncated trace says so.
func WriteFleetTrace(w io.Writer, sweep string, spans []Span, spanDrops int64) error {
	tf := traceFile{
		TraceEvents:     []traceEvent{},
		DisplayTimeUnit: "ms",
		OtherData: map[string]any{
			"sweep":      sweep,
			"span_drops": spanDrops,
		},
	}

	// Rebase to the earliest span so the artifact starts at t=0 regardless
	// of wall-clock epoch.
	var base int64
	for i, sp := range spans {
		if i == 0 || sp.StartUS < base {
			base = sp.StartUS
		}
	}

	// One metadata row per recording process, named for the node (workers)
	// or the server. Deterministic order: server first, then nodes by name,
	// then pid.
	type proc struct {
		pid  int
		node string
	}
	seen := map[int]proc{}
	for _, sp := range spans {
		if p, ok := seen[sp.PID]; !ok || (p.node == "" && sp.Node != "") {
			seen[sp.PID] = proc{pid: sp.PID, node: sp.Node}
		}
	}
	procs := make([]proc, 0, len(seen))
	for _, p := range seen {
		procs = append(procs, p)
	}
	sort.Slice(procs, func(i, j int) bool {
		if (procs[i].node == "") != (procs[j].node == "") {
			return procs[i].node == ""
		}
		if procs[i].node != procs[j].node {
			return procs[i].node < procs[j].node
		}
		return procs[i].pid < procs[j].pid
	})
	jobs := map[int]bool{}
	for _, sp := range spans {
		jobs[sp.Job] = true
	}
	jobIDs := make([]int, 0, len(jobs))
	for j := range jobs {
		jobIDs = append(jobIDs, j)
	}
	sort.Ints(jobIDs)
	for _, p := range procs {
		name := fmt.Sprintf("greensrv (pid %d)", p.pid)
		if p.node != "" {
			name = fmt.Sprintf("greennode %s (pid %d)", p.node, p.pid)
		}
		tf.TraceEvents = append(tf.TraceEvents, traceEvent{
			Name: "process_name", Ph: "M", PID: p.pid, TID: 0,
			Args: map[string]any{"name": name},
		})
		for _, j := range jobIDs {
			// Job -1 is the sweep-level lane (admission and other spans
			// that belong to the whole sweep, not one job).
			name := fmt.Sprintf("job %d", j)
			if j < 0 {
				name = "sweep"
			}
			tf.TraceEvents = append(tf.TraceEvents, traceEvent{
				Name: "thread_name", Ph: "M", PID: p.pid, TID: j + 1,
				Args: map[string]any{"name": name},
			})
		}
	}

	events := make([]traceEvent, 0, len(spans))
	for _, sp := range spans {
		ph, dur := "X", sp.DurUS
		if dur <= 0 {
			// Zero-length phases (steals, re-home markers) render as
			// instants so they stay visible at any zoom.
			ph, dur = "i", 0
		}
		args := map[string]any{}
		if sp.ID != 0 {
			args["span_id"] = sp.ID
		}
		if sp.Parent != 0 {
			args["parent"] = sp.Parent
		}
		if sp.Attempt > 0 {
			args["attempt"] = sp.Attempt
		}
		if sp.Node != "" {
			args["node"] = sp.Node
		}
		for k, v := range sp.Attrs {
			args[k] = v
		}
		ev := traceEvent{
			Name: sp.Name,
			Cat:  sp.Cat,
			Ph:   ph,
			TS:   sp.StartUS - base,
			Dur:  dur,
			PID:  sp.PID,
			TID:  sp.Job + 1,
			Args: args,
		}
		if ph == "i" {
			ev.Args["s"] = "t"
		}
		events = append(events, ev)
	}
	// Monotonic, deterministic event order: by rebased timestamp, then
	// process, then lane, then name.
	sort.SliceStable(events, func(i, j int) bool {
		if events[i].TS != events[j].TS {
			return events[i].TS < events[j].TS
		}
		if events[i].PID != events[j].PID {
			return events[i].PID < events[j].PID
		}
		if events[i].TID != events[j].TID {
			return events[i].TID < events[j].TID
		}
		return events[i].Name < events[j].Name
	})
	tf.TraceEvents = append(tf.TraceEvents, events...)

	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(tf)
}
