// Package slog is the fleet's structured logging layer: leveled, key-value
// (logfmt-style) lines on stderr, with correlation ids drawn from the
// distributed trace context so one sweep's log lines grep together across
// greensrv, greennode, and the shard transport.
//
// Output goes to stderr only — never to any byte-compared artifact — so
// logging, like the rest of internal/obs, is out-of-band by construction.
// The package is deliberately tiny (no stdlib log/slog dependency): the
// repo's logging needs are a handful of call sites, and a hand-rolled
// emitter keeps the format pinned and the hot path one mutex + one write.
package slog

import (
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/wattwiseweb/greenweb/internal/obs/trace"
)

// Level orders log severities.
type Level int32

// Severities, least to most urgent.
const (
	LevelDebug Level = iota
	LevelInfo
	LevelWarn
	LevelError
)

func (l Level) String() string {
	switch l {
	case LevelDebug:
		return "debug"
	case LevelInfo:
		return "info"
	case LevelWarn:
		return "warn"
	default:
		return "error"
	}
}

// ParseLevel resolves a -log-level flag value.
func ParseLevel(s string) (Level, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "debug":
		return LevelDebug, nil
	case "info", "":
		return LevelInfo, nil
	case "warn", "warning":
		return LevelWarn, nil
	case "error":
		return LevelError, nil
	}
	return LevelInfo, fmt.Errorf("slog: unknown level %q (want debug, info, warn, or error)", s)
}

// sink is the shared output: every Logger in the process writes through it,
// so lines from different components never interleave mid-line.
type sink struct {
	mu  sync.Mutex
	w   io.Writer
	lvl atomic.Int32
}

var out = func() *sink {
	s := &sink{w: os.Stderr}
	s.lvl.Store(int32(LevelInfo))
	return s
}()

// SetLevel sets the process-wide minimum level.
func SetLevel(l Level) { out.lvl.Store(int32(l)) }

// SetOutput redirects the process's log lines (tests capture them).
func SetOutput(w io.Writer) {
	out.mu.Lock()
	out.w = w
	out.mu.Unlock()
}

// now is swapped by tests for pinned timestamps.
var now = time.Now

// Logger emits lines for one component, carrying a fixed field set.
type Logger struct {
	component string
	fields    []field
}

type field struct {
	k string
	v string
}

// New builds a logger for a component ("greensrv", "shard", ...).
func New(component string) *Logger { return &Logger{component: component} }

// With returns a child logger carrying extra key-value pairs (alternating
// key, value — the value is formatted with %v).
func (l *Logger) With(kv ...any) *Logger {
	child := &Logger{component: l.component, fields: append([]field(nil), l.fields...)}
	child.fields = append(child.fields, pairs(kv)...)
	return child
}

// WithTrace returns a child logger stamped with the trace context's
// correlation ids (sweep, job, attempt), so fleet log lines join the
// distributed trace on the same keys.
func (l *Logger) WithTrace(tc trace.Context) *Logger {
	kv := []any{"sweep", tc.Sweep, "job", tc.Job}
	if tc.Attempt > 0 {
		kv = append(kv, "attempt", tc.Attempt)
	}
	return l.With(kv...)
}

// Debug/Info/Warn/Error emit one line at the respective level.
func (l *Logger) Debug(msg string, kv ...any) { l.emit(LevelDebug, msg, kv) }
func (l *Logger) Info(msg string, kv ...any)  { l.emit(LevelInfo, msg, kv) }
func (l *Logger) Warn(msg string, kv ...any)  { l.emit(LevelWarn, msg, kv) }
func (l *Logger) Error(msg string, kv ...any) { l.emit(LevelError, msg, kv) }

func (l *Logger) emit(lvl Level, msg string, kv []any) {
	if lvl < Level(out.lvl.Load()) {
		return
	}
	var b strings.Builder
	b.Grow(128)
	b.WriteString("ts=")
	b.WriteString(now().UTC().Format("2006-01-02T15:04:05.000Z"))
	b.WriteString(" level=")
	b.WriteString(lvl.String())
	if l.component != "" {
		b.WriteString(" comp=")
		writeValue(&b, l.component)
	}
	b.WriteString(" msg=")
	writeValue(&b, msg)
	for _, f := range l.fields {
		b.WriteByte(' ')
		b.WriteString(f.k)
		b.WriteByte('=')
		writeValue(&b, f.v)
	}
	for _, f := range pairs(kv) {
		b.WriteByte(' ')
		b.WriteString(f.k)
		b.WriteByte('=')
		writeValue(&b, f.v)
	}
	b.WriteByte('\n')
	out.mu.Lock()
	io.WriteString(out.w, b.String())
	out.mu.Unlock()
}

// pairs folds an alternating key-value list into fields; a dangling key
// gets "(missing)" rather than panicking a log call site.
func pairs(kv []any) []field {
	fields := make([]field, 0, (len(kv)+1)/2)
	for i := 0; i < len(kv); i += 2 {
		k, ok := kv[i].(string)
		if !ok {
			k = fmt.Sprintf("%v", kv[i])
		}
		v := "(missing)"
		if i+1 < len(kv) {
			v = fmt.Sprintf("%v", kv[i+1])
		}
		fields = append(fields, field{k: k, v: v})
	}
	return fields
}

// writeValue emits a logfmt value, quoting when it contains whitespace,
// quotes, or '='.
func writeValue(b *strings.Builder, v string) {
	if v == "" || strings.ContainsAny(v, " \t\n\"=") {
		b.WriteString(strconv.Quote(v))
		return
	}
	b.WriteString(v)
}
