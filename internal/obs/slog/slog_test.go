package slog

import (
	"bytes"
	"os"
	"strings"
	"testing"
	"time"

	"github.com/wattwiseweb/greenweb/internal/obs/trace"
)

func pin(t *testing.T) *bytes.Buffer {
	t.Helper()
	var buf bytes.Buffer
	SetOutput(&buf)
	oldNow := now
	now = func() time.Time { return time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC) }
	lvl := Level(out.lvl.Load())
	t.Cleanup(func() {
		SetOutput(os.Stderr)
		now = oldNow
		SetLevel(lvl)
	})
	return &buf
}

func TestFormatAndQuoting(t *testing.T) {
	buf := pin(t)
	New("greensrv").Info("listening", "addr", "127.0.0.1:8080", "note", "two words")
	got := buf.String()
	want := `ts=2026-08-08T12:00:00.000Z level=info comp=greensrv msg=listening addr=127.0.0.1:8080 note="two words"` + "\n"
	if got != want {
		t.Fatalf("line =\n%q\nwant\n%q", got, want)
	}
}

func TestLevelGate(t *testing.T) {
	buf := pin(t)
	SetLevel(LevelWarn)
	l := New("x")
	l.Debug("d")
	l.Info("i")
	l.Warn("w")
	l.Error("e")
	lines := strings.Count(buf.String(), "\n")
	if lines != 2 {
		t.Fatalf("emitted %d lines at warn, want 2:\n%s", lines, buf.String())
	}
}

func TestWithAndWithTrace(t *testing.T) {
	buf := pin(t)
	l := New("fleet").With("node", 3).WithTrace(trace.Context{Sweep: "s-000007", Job: 4, Attempt: 2})
	l.Info("re-homed")
	got := buf.String()
	for _, frag := range []string{"comp=fleet", "node=3", "sweep=s-000007", "job=4", "attempt=2", "msg=re-homed"} {
		if !strings.Contains(got, frag) {
			t.Fatalf("line missing %q:\n%s", frag, got)
		}
	}
	// Parent logger unaffected.
	buf.Reset()
	New("fleet").Info("clean")
	if strings.Contains(buf.String(), "sweep=") {
		t.Fatalf("parent logger inherited child fields:\n%s", buf.String())
	}
}

func TestParseLevel(t *testing.T) {
	for in, want := range map[string]Level{"debug": LevelDebug, "": LevelInfo, "Warn": LevelWarn, "ERROR": LevelError} {
		got, err := ParseLevel(in)
		if err != nil || got != want {
			t.Fatalf("ParseLevel(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParseLevel("loud"); err == nil {
		t.Fatal("ParseLevel accepted garbage")
	}
}

func TestDanglingKey(t *testing.T) {
	buf := pin(t)
	New("x").Info("m", "k")
	if !strings.Contains(buf.String(), `k=(missing)`) {
		t.Fatalf("dangling key not surfaced:\n%s", buf.String())
	}
}
