package obs

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Histogram counts observations into fixed buckets. The fleet uses it for
// wall-clock job latency (seconds); it is safe for concurrent Observe calls
// from many workers.
type Histogram struct {
	mu     sync.Mutex
	bounds []float64 // inclusive upper bounds, ascending
	counts []uint64  // len(bounds)+1; last bucket is overflow
	sum    float64
	n      uint64
}

// NewHistogram builds a histogram over the given ascending upper bounds.
func NewHistogram(bounds []float64) *Histogram {
	if !sort.Float64sAreSorted(bounds) {
		panic("obs: histogram bounds must be ascending")
	}
	return &Histogram{
		bounds: append([]float64(nil), bounds...),
		counts: make([]uint64, len(bounds)+1),
	}
}

// NewLatencyHistogram returns a histogram with a 1-2-5 decade ladder from
// 1 ms to 60 s, suiting experiment-job wall latencies.
func NewLatencyHistogram() *Histogram {
	return NewHistogram([]float64{
		0.001, 0.002, 0.005, 0.01, 0.02, 0.05,
		0.1, 0.2, 0.5, 1, 2, 5, 10, 30, 60,
	})
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.mu.Lock()
	h.counts[i]++
	h.sum += v
	h.n++
	h.mu.Unlock()
}

// HistogramBucket is one snapshot row: the count of observations ≤ LE that
// fell above the previous bound. The overflow bucket is the final row with
// LE == -1 (observations above every bound).
type HistogramBucket struct {
	LE    float64 `json:"le"` // -1 marks the overflow bucket
	Count uint64  `json:"count"`
}

// HistogramSnapshot is a consistent copy of the histogram state. Buckets
// holds only occupied buckets (compact for logs/JSON); Bounds holds the full
// bound ladder so quantile interpolation and Prometheus cumulative export
// can recover each bucket's lower edge and the empty buckets in between.
type HistogramSnapshot struct {
	Buckets []HistogramBucket `json:"buckets"`
	Bounds  []float64         `json:"bounds,omitempty"`
	Count   uint64            `json:"count"`
	Sum     float64           `json:"sum"`
}

// Snapshot copies the current state; empty buckets are elided.
func (h *Histogram) Snapshot() HistogramSnapshot {
	h.mu.Lock()
	defer h.mu.Unlock()
	s := HistogramSnapshot{Count: h.n, Sum: h.sum, Bounds: h.bounds}
	for i, c := range h.counts {
		if c == 0 {
			continue
		}
		le := -1.0
		if i < len(h.bounds) {
			le = h.bounds[i]
		}
		s.Buckets = append(s.Buckets, HistogramBucket{LE: le, Count: c})
	}
	return s
}

// Mean reports the average observation (0 when empty).
func (s HistogramSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return s.Sum / float64(s.Count)
}

// lowerEdge reports the lower edge of the bucket whose upper bound is le,
// using the full bound ladder. The first bucket's lower edge is pinned to 0
// (observations are non-negative in every histogram we keep). Snapshots
// without Bounds (decoded from pre-obs JSON) fall back to the previous
// occupied bucket's bound.
func (s HistogramSnapshot) lowerEdge(le float64) float64 {
	prev := 0.0
	if len(s.Bounds) == 0 {
		for _, b := range s.Buckets {
			if b.LE == le {
				return prev
			}
			prev = b.LE
		}
		return prev
	}
	for _, b := range s.Bounds {
		if b == le {
			return prev
		}
		prev = b
	}
	return prev // le == -1 (overflow): lower edge is the last bound
}

// Quantile estimates the q-quantile by linear interpolation within the
// bucket containing rank q·Count, assuming observations are uniformly
// spread inside each bucket. Pinned behavior at the edges:
//
//   - Empty histogram: 0 for every q.
//   - q ≤ 0: the lower edge of the first occupied bucket (0 when the first
//     bucket is occupied — the histogram cannot see below a bucket edge).
//   - q ≥ 1: the upper bound of the last occupied bucket, or -1 (unbounded)
//     when the overflow bucket is occupied.
//   - Any rank landing in the overflow bucket: -1 — the overflow bucket has
//     no upper edge, so no finite estimate is honest.
//   - Single-sample histogram: lo + q·(hi−lo) across its bucket — the
//     degenerate case of the uniform-spread assumption, NOT the sample
//     value, which the histogram no longer knows.
//
// Snapshots taken before Bounds existed (zero value, old persisted JSON)
// degrade to the occupied buckets' own edges: interpolation then uses the
// previous occupied bound as the lower edge.
func (s HistogramSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 {
		return 0
	}
	first := s.Buckets[0]
	last := s.Buckets[len(s.Buckets)-1]
	if q <= 0 {
		if first.LE < 0 {
			return s.lowerEdge(-1)
		}
		return s.lowerEdge(first.LE)
	}
	if q >= 1 {
		return last.LE // -1 when the overflow bucket is occupied
	}
	target := q * float64(s.Count)
	var cum float64
	for _, b := range s.Buckets {
		cumBefore := cum
		cum += float64(b.Count)
		if cum >= target {
			if b.LE < 0 {
				return -1
			}
			lo := s.lowerEdge(b.LE)
			return lo + (target-cumBefore)/float64(b.Count)*(b.LE-lo)
		}
	}
	return last.LE
}

// String renders the snapshot compactly for logs: "n=5 mean=12ms [≤0.01:3 ≤0.02:2]".
func (s HistogramSnapshot) String() string {
	parts := make([]string, 0, len(s.Buckets))
	for _, b := range s.Buckets {
		label := fmt.Sprintf("≤%g", b.LE)
		if b.LE < 0 {
			label = ">max"
		}
		parts = append(parts, fmt.Sprintf("%s:%d", label, b.Count))
	}
	return fmt.Sprintf("n=%d mean=%.3fs [%s]", s.Count, s.Mean(), strings.Join(parts, " "))
}
