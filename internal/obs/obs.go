// Package obs is the unified observability layer: a label-aware metrics
// registry with Prometheus text exposition, and a decision-level tracer that
// turns the energy ledger's frame spans into a structured per-decision event
// log (NDJSON) and nested Chrome-trace spans.
//
// Design constraints, in order:
//
//  1. Byte-identical outputs. Observability must never change a report,
//     fault sweep, or NDJSON result row by one byte. Everything here is
//     therefore attached out-of-band: counters are process-local atomics
//     that no simulation code reads back, and the decision log is derived
//     from ledger spans the run already produced — the tracer observes the
//     simulation, it never participates in it. CI diffs obs-on vs -no-obs
//     outputs to enforce this.
//  2. Lock-cheap hot path. Incrementing a counter is one atomic add.
//     Labeled instruments resolve their child once (callers cache the
//     returned *Counter) so per-frame code never touches a map or mutex.
//  3. Bounded memory. Label cardinality is capped per family (overflowing
//     children collapse into an "overflow" child) and the decision recorder
//     caps its in-memory log, counting what it dropped.
//
// The enable gate is two-level: SetEnabled flips the process default
// (greenbench -no-obs), and ContextWithObs overrides it per call tree
// (greensrv threads the override from the HTTP layer through the fleet into
// the harness). Metrics counters stay live either way — they are free and
// side-effect-free — while decision recording honors the gate.
package obs

import (
	"context"
	"sync/atomic"
)

// enabled is the process-wide default gate. On unless SetEnabled(false).
var enabled atomic.Bool

func init() { enabled.Store(true) }

// SetEnabled flips the process-wide observability default (decision
// recording). Metrics counters are unaffected: they never alter outputs and
// cost one atomic add.
func SetEnabled(on bool) { enabled.Store(on) }

// Enabled reports the process-wide default gate.
func Enabled() bool { return enabled.Load() }

type ctxKey struct{}

// ContextWithObs returns a context that overrides the process default for
// everything running under it. greensrv threads this through the fleet into
// the harness so one server flag (or one sweep) can switch decision
// recording without touching the global gate.
func ContextWithObs(ctx context.Context, on bool) context.Context {
	return context.WithValue(ctx, ctxKey{}, on)
}

// EnabledIn reports whether observability is on for this context: an
// explicit ContextWithObs setting wins; otherwise the process default
// applies.
func EnabledIn(ctx context.Context) bool {
	if ctx != nil {
		if v, ok := ctx.Value(ctxKey{}).(bool); ok {
			return v
		}
	}
	return Enabled()
}
