package obs

import (
	"bytes"
	"strings"
	"testing"
)

// TestGaugeVecExposition: labeled gauges render one sample per child with
// the gauge TYPE line, and func-backed children are read at scrape time.
func TestGaugeVecExposition(t *testing.T) {
	reg := NewRegistry()
	depth := reg.GaugeVec("test_partition_depth", "jobs queued per partition", "partition")
	depth.With("0").Set(3)
	depth.With("1").Set(7)

	live := 2.0
	nodes := reg.GaugeVec("test_node_busy", "busy workers per node", "node")
	nodes.Func(func() float64 { return live }, "a")

	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE test_partition_depth gauge",
		`test_partition_depth{partition="0"} 3`,
		`test_partition_depth{partition="1"} 7`,
		`test_node_busy{node="a"} 2`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}

	// Func children must re-read their source on every scrape, not cache.
	live = 5
	buf.Reset()
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `test_node_busy{node="a"} 5`) {
		t.Fatalf("func-backed gauge cached a stale value:\n%s", buf.String())
	}
}

// TestCounterVecFuncChildren: counters support the same func-backed children
// (used for per-node steal counters sourced from atomics).
func TestCounterVecFuncChildren(t *testing.T) {
	reg := NewRegistry()
	var steals float64
	cv := reg.CounterVec("test_steals_total", "steals per node", "node")
	cv.Func(func() float64 { return steals }, "0")
	cv.With("1").Add(4)

	steals = 9
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, `test_steals_total{node="0"} 9`) {
		t.Fatalf("func-backed counter wrong:\n%s", out)
	}
	if !strings.Contains(out, `test_steals_total{node="1"} 4`) {
		t.Fatalf("value-backed sibling wrong:\n%s", out)
	}
}
