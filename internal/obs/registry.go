package obs

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing count. One atomic add per Inc; safe
// for concurrent use from any number of goroutines.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (negative deltas are ignored: counters only go up).
func (c *Counter) Add(n int64) {
	if n > 0 {
		c.v.Add(n)
	}
}

// Value reads the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a value that can go up and down.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adds delta (not atomic against concurrent Add; our gauges are either
// Set from one place or func-backed, so a CAS loop would buy nothing).
func (g *Gauge) Add(delta float64) { g.Set(g.Value() + delta) }

// Value reads the gauge.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Instrument type names, as exposed in Prometheus TYPE lines.
const (
	typeCounter   = "counter"
	typeGauge     = "gauge"
	typeHistogram = "histogram"
)

// DefaultMaxCardinality bounds the distinct label-value children one family
// may hold; further With calls collapse into a single "overflow" child so a
// label drawn from unbounded input cannot grow memory without bound.
const DefaultMaxCardinality = 64

// child is one labeled sample of a family. fn, when set, makes the child
// func-backed: its value is read at scrape time (the bridge for subsystems
// that keep their own per-shard atomics, like the shard cluster). hist, when
// set, makes the child a per-label-set histogram (HistogramVec).
type child struct {
	values []string
	c      Counter
	g      Gauge
	fn     func() float64
	hist   *Histogram
}

// family is one named metric: its metadata plus either a single unlabeled
// instrument, a func-backed value, a histogram, or a set of labeled
// children.
type family struct {
	name   string
	help   string
	typ    string
	labels []string

	c    *Counter
	g    *Gauge
	fn   func() float64 // func-backed counter/gauge; nil otherwise
	hist *Histogram

	mu       sync.Mutex
	children map[string]*child
	maxCard  int
	overflow *child
}

// Registry holds metric families and renders them in Prometheus text
// exposition format. Instrument getters are idempotent: asking for the same
// name again returns the same instrument, so package-level adopters and
// tests can share the default registry safely. Re-registering a name with a
// different type or label set panics — that is a programming error, not
// input.
type Registry struct {
	mu   sync.RWMutex
	fams map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{fams: make(map[string]*family)}
}

var defaultRegistry = NewRegistry()

// Default is the process-wide registry. Package-level instruments across
// the repo register here; greensrv serves it at GET /metrics.
func Default() *Registry { return defaultRegistry }

// register resolves or creates a family, enforcing type/label agreement.
func (r *Registry) register(name, help, typ string, labels []string) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.fams[name]; ok {
		if f.typ != typ || strings.Join(f.labels, ",") != strings.Join(labels, ",") {
			panic(fmt.Sprintf("obs: metric %q re-registered as %s%v, was %s%v",
				name, typ, labels, f.typ, f.labels))
		}
		return f
	}
	f := &family{name: name, help: help, typ: typ, labels: labels, maxCard: DefaultMaxCardinality}
	r.fams[name] = f
	return f
}

// Counter returns (creating on first use) the unlabeled counter name.
func (r *Registry) Counter(name, help string) *Counter {
	f := r.register(name, help, typeCounter, nil)
	r.mu.Lock()
	defer r.mu.Unlock()
	if f.c == nil && f.fn == nil {
		f.c = new(Counter)
	}
	if f.c == nil {
		panic(fmt.Sprintf("obs: metric %q is func-backed", name))
	}
	return f.c
}

// Gauge returns (creating on first use) the unlabeled gauge name.
func (r *Registry) Gauge(name, help string) *Gauge {
	f := r.register(name, help, typeGauge, nil)
	r.mu.Lock()
	defer r.mu.Unlock()
	if f.g == nil && f.fn == nil {
		f.g = new(Gauge)
	}
	if f.g == nil {
		panic(fmt.Sprintf("obs: metric %q is func-backed", name))
	}
	return f.g
}

// CounterFunc registers a counter whose value is read from fn at scrape
// time — the bridge for subsystems that already keep their own atomics
// (the fleet pool). Re-registering replaces fn (last wins), so a restarted
// server component can rebind its source.
func (r *Registry) CounterFunc(name, help string, fn func() float64) {
	f := r.register(name, help, typeCounter, nil)
	r.mu.Lock()
	defer r.mu.Unlock()
	f.fn = fn
	f.c = nil
}

// GaugeFunc registers a gauge read from fn at scrape time. Re-registering
// replaces fn (last wins).
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	f := r.register(name, help, typeGauge, nil)
	r.mu.Lock()
	defer r.mu.Unlock()
	f.fn = fn
	f.g = nil
}

// Histogram returns (creating on first use) a histogram over bounds.
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	f := r.register(name, help, typeHistogram, nil)
	r.mu.Lock()
	defer r.mu.Unlock()
	if f.hist == nil {
		f.hist = NewHistogram(bounds)
	}
	return f.hist
}

// AttachHistogram exposes an existing histogram under name — the adoption
// path for histograms owned elsewhere (the fleet's job-latency histogram).
// Re-attaching replaces the source (last wins).
func (r *Registry) AttachHistogram(name, help string, h *Histogram) {
	f := r.register(name, help, typeHistogram, nil)
	r.mu.Lock()
	defer r.mu.Unlock()
	f.hist = h
}

// CounterVec is a counter family with labels. Resolve children once with
// With and cache the result: the child lookup takes the family mutex, the
// cached *Counter does not.
type CounterVec struct {
	f *family
}

// CounterVec returns (creating on first use) the labeled counter family.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	if len(labels) == 0 {
		panic("obs: CounterVec needs at least one label")
	}
	return &CounterVec{f: r.register(name, help, typeCounter, labels)}
}

// With resolves the child counter for the label values (one per declared
// label, positionally). Past the family's cardinality bound every new
// combination shares one "overflow" child.
func (v *CounterVec) With(values ...string) *Counter {
	return &v.f.childFor(values).c
}

// Func binds the child for the label values to fn, read at scrape time —
// the labeled analogue of CounterFunc. Re-binding replaces fn (last wins).
func (v *CounterVec) Func(fn func() float64, values ...string) {
	v.f.childFor(values).fn = fn
}

// GaugeVec is a gauge family with labels; resolve children once with With
// (or bind them to scrape-time funcs with Func) and cache the result.
type GaugeVec struct {
	f *family
}

// GaugeVec returns (creating on first use) the labeled gauge family.
func (r *Registry) GaugeVec(name, help string, labels ...string) *GaugeVec {
	if len(labels) == 0 {
		panic("obs: GaugeVec needs at least one label")
	}
	return &GaugeVec{f: r.register(name, help, typeGauge, labels)}
}

// With resolves the child gauge for the label values, subject to the same
// cardinality bound as CounterVec.With.
func (v *GaugeVec) With(values ...string) *Gauge {
	return &v.f.childFor(values).g
}

// Func binds the child for the label values to fn, read at scrape time —
// the labeled analogue of GaugeFunc. Re-binding replaces fn (last wins).
func (v *GaugeVec) Func(fn func() float64, values ...string) {
	v.f.childFor(values).fn = fn
}

// HistogramVec is a histogram family with labels: one bucket ladder shared
// by every child, one histogram per label-value combination. Resolve
// children once with With and cache the result — the child lookup takes the
// family mutex, the cached *Histogram does not.
type HistogramVec struct {
	f      *family
	bounds []float64
}

// HistogramVec returns (creating on first use) the labeled histogram family
// over the given ascending upper bounds.
func (r *Registry) HistogramVec(name, help string, bounds []float64, labels ...string) *HistogramVec {
	if len(labels) == 0 {
		panic("obs: HistogramVec needs at least one label")
	}
	f := r.register(name, help, typeHistogram, labels)
	return &HistogramVec{f: f, bounds: append([]float64(nil), bounds...)}
}

// With resolves the child histogram for the label values, subject to the
// same cardinality bound as CounterVec.With.
func (v *HistogramVec) With(values ...string) *Histogram {
	ch := v.f.childFor(values)
	v.f.mu.Lock()
	defer v.f.mu.Unlock()
	if ch.hist == nil {
		ch.hist = NewHistogram(v.bounds)
	}
	return ch.hist
}

// childFor resolves or creates the child for the label values. Past the
// family's cardinality bound every new combination shares one "overflow"
// child.
func (f *family) childFor(values []string) *child {
	if len(values) != len(f.labels) {
		panic(fmt.Sprintf("obs: metric %q wants %d label values, got %d",
			f.name, len(f.labels), len(values)))
	}
	key := strings.Join(values, "\xff")
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.children == nil {
		f.children = make(map[string]*child)
	}
	if ch, ok := f.children[key]; ok {
		return ch
	}
	if len(f.children) >= f.maxCard {
		if f.overflow == nil {
			over := make([]string, len(f.labels))
			for i := range over {
				over[i] = "overflow"
			}
			f.overflow = &child{values: over}
		}
		return f.overflow
	}
	ch := &child{values: append([]string(nil), values...)}
	f.children[key] = ch
	return ch
}

// sortedFamilies snapshots the registry's families in name order.
func (r *Registry) sortedFamilies() []*family {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]*family, 0, len(r.fams))
	for _, f := range r.fams {
		out = append(out, f)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}

// sortedChildren snapshots a family's labeled children in label-value order
// (the overflow child, if any, last).
func (f *family) sortedChildren() []*child {
	f.mu.Lock()
	defer f.mu.Unlock()
	keys := make([]string, 0, len(f.children))
	for k := range f.children {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]*child, 0, len(keys)+1)
	for _, k := range keys {
		out = append(out, f.children[k])
	}
	if f.overflow != nil {
		out = append(out, f.overflow)
	}
	return out
}
