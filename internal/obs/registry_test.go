package obs

import (
	"fmt"
	"sync"
	"testing"
)

func TestCounterAndGauge(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(4)
	c.Add(-100) // counters only go up; negative deltas are ignored
	if got := c.Value(); got != 5 {
		t.Errorf("counter = %d, want 5", got)
	}

	var g Gauge
	g.Set(2.5)
	g.Add(-1)
	if got := g.Value(); got != 1.5 {
		t.Errorf("gauge = %v, want 1.5", got)
	}
}

func TestCounterConcurrent(t *testing.T) {
	var c Counter
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != 8000 {
		t.Errorf("counter = %d, want 8000", got)
	}
}

func TestRegistryIdempotentGetters(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("x_total", "help")
	b := r.Counter("x_total", "help")
	if a != b {
		t.Error("same name returned distinct counters")
	}
	g1 := r.Gauge("g", "")
	g2 := r.Gauge("g", "")
	if g1 != g2 {
		t.Error("same name returned distinct gauges")
	}
	h1 := r.Histogram("h", "", []float64{1, 2})
	h2 := r.Histogram("h", "", []float64{5}) // bounds of the first registration win
	if h1 != h2 {
		t.Error("same name returned distinct histograms")
	}
}

func TestRegistryTypeMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x_total", "")
	mustPanic(t, "counter re-registered as gauge", func() { r.Gauge("x_total", "") })
	r.CounterVec("v_total", "", "kind")
	mustPanic(t, "label-set change", func() { r.CounterVec("v_total", "", "kind", "extra") })
	mustPanic(t, "labeled re-registered unlabeled", func() { r.Counter("v_total", "") })
	r.CounterFunc("f_total", "", func() float64 { return 0 })
	mustPanic(t, "func-backed via Counter", func() { r.Counter("f_total", "") })
	mustPanic(t, "CounterVec with no labels", func() { r.CounterVec("nolabels", "") })
}

func mustPanic(t *testing.T, name string, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s: no panic", name)
		}
	}()
	f()
}

func TestCounterVecChildrenAndOverflow(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("errs_total", "", "code")
	a := v.With("500")
	b := v.With("500")
	if a != b {
		t.Error("same label values resolved to distinct children")
	}
	a.Inc()
	if b.Value() != 1 {
		t.Error("children with equal labels do not share state")
	}
	mustPanic(t, "wrong arity", func() { v.With("a", "b") })

	// Past the cardinality cap, every new combination collapses into one
	// shared overflow child; existing children keep working.
	fam := v.f
	fam.maxCard = 2
	v.With("501")
	o1 := v.With("502")
	o2 := v.With("503")
	if o1 != o2 {
		t.Error("overflow combinations did not share a child")
	}
	o1.Inc()
	o2.Inc()
	if o1.Value() != 2 {
		t.Errorf("overflow counter = %d, want 2", o1.Value())
	}
	if v.With("500") != a {
		t.Error("pre-overflow child lost after cap hit")
	}
}

func TestFuncBackedLastWins(t *testing.T) {
	r := NewRegistry()
	r.GaugeFunc("depth", "", func() float64 { return 1 })
	r.GaugeFunc("depth", "", func() float64 { return 2 }) // rebind replaces
	fams := r.sortedFamilies()
	if len(fams) != 1 || fams[0].fn() != 2 {
		t.Fatalf("rebound func not in effect: %+v", fams)
	}
}

func TestDefaultCardinalityBound(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("many_total", "", "k")
	var children []*Counter
	for i := 0; i < DefaultMaxCardinality+10; i++ {
		children = append(children, v.With(fmt.Sprintf("v%03d", i)))
	}
	over := children[DefaultMaxCardinality]
	for _, c := range children[DefaultMaxCardinality:] {
		if c != over {
			t.Fatal("children past the cap are not collapsed")
		}
	}
}
