package obs

import (
	"context"
	"testing"
)

func TestEnabledGlobalAndContext(t *testing.T) {
	defer SetEnabled(true) // restore the package default for other tests

	if !Enabled() {
		t.Fatal("obs must default to enabled")
	}
	ctx := context.Background()
	if !EnabledIn(ctx) {
		t.Error("plain context should inherit the global default")
	}

	SetEnabled(false)
	if Enabled() || EnabledIn(ctx) {
		t.Error("global disable not observed")
	}
	// A context override wins over the global in both directions.
	if !EnabledIn(ContextWithObs(ctx, true)) {
		t.Error("context enable did not override global disable")
	}
	SetEnabled(true)
	if EnabledIn(ContextWithObs(ctx, false)) {
		t.Error("context disable did not override global enable")
	}
}
