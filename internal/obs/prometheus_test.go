package obs

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// goldenRegistry exercises every exposition shape: unlabeled counter/gauge,
// func-backed value, labeled children needing escaping and ordering, and a
// histogram with an empty interior bucket and an overflow.
func goldenRegistry() *Registry {
	r := NewRegistry()
	r.Counter("app_requests_total", "Total requests.").Add(12)
	r.Gauge("app_temp", "Temperature.").Set(-3.5)
	r.GaugeFunc("app_func", "Func-backed gauge.", func() float64 { return 42.5 })

	v := r.CounterVec("app_errors_total", "Errors by code.", "code")
	v.With("500").Add(7)
	v.With(`4"04`).Add(2) // label value escaping: quote and backslash
	v.With(`back\slash`).Inc()

	// Help-string escaping: literal newline must render as \n.
	h := r.Histogram("app_latency_seconds", "Latency.\nSecond line.", []float64{0.1, 0.5, 1})
	h.Observe(0.0625) // binary-exact values keep _sum's rendering stable
	h.Observe(0.25)
	h.Observe(2) // overflow

	// Vec cardinality overflow: maxCard forced low (in-package) so further
	// distinct label values collapse into the shared "overflow" child, which
	// must render once, last, and accumulate every collapsed sample.
	gv := r.GaugeVec("app_queue_depth", "Queue depth by shard.", "shard")
	gv.f.maxCard = 2
	gv.With("0").Set(3)
	gv.With("1").Set(5)
	gv.With("7").Set(2)  // past the bound: lands on the overflow child
	gv.With("9").Add(-1) // distinct value, same overflow child → 1

	hv := r.HistogramVec("app_rtt_seconds", "RTT by node.", []float64{0.1, 1}, "node")
	hv.f.maxCard = 1
	hv.With("a").Observe(0.0625)
	hv.With("b").Observe(0.25) // past the bound: overflow child
	hv.With("c").Observe(2)    // distinct value, same overflow child
	return r
}

// TestWritePrometheusGolden pins the exposition format byte-for-byte:
// family name ordering, label-value ordering, HELP/TYPE lines, escaping,
// cumulative histogram buckets including empty ones and +Inf.
func TestWritePrometheusGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := goldenRegistry().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join("testdata", "exposition.golden")
	if *update {
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("exposition mismatch (run with -update to regenerate)\n got:\n%s\nwant:\n%s", buf.Bytes(), want)
	}
}

// TestWritePrometheusDeterministic: two renders of the same registry are
// byte-identical (map iteration order must not leak into the output).
func TestWritePrometheusDeterministic(t *testing.T) {
	r := goldenRegistry()
	var a, b bytes.Buffer
	if err := r.WritePrometheus(&a); err != nil {
		t.Fatal(err)
	}
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("two renders of one registry differ")
	}
}

// WriteAll merges registries with earliest-wins collision semantics and
// re-sorts the merged family set by name.
func TestWriteAllMerge(t *testing.T) {
	r1 := NewRegistry()
	r1.Gauge("dup", "").Set(1)
	r1.Counter("zz_total", "").Inc()
	r2 := NewRegistry()
	r2.Gauge("dup", "").Set(2)
	r2.Counter("aa_total", "").Inc()

	var buf bytes.Buffer
	if err := WriteAll(&buf, r1, r2); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "dup 1\n") || strings.Contains(out, "dup 2") {
		t.Errorf("collision should resolve to the first registry:\n%s", out)
	}
	if !strings.Contains(out, "aa_total 1\n") || !strings.Contains(out, "zz_total 1\n") {
		t.Errorf("merged families missing:\n%s", out)
	}
	if strings.Index(out, "aa_total") > strings.Index(out, "zz_total") {
		t.Errorf("merged set not re-sorted by name:\n%s", out)
	}
}
