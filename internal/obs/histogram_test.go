package obs

import (
	"math"
	"testing"
)

func approx(t *testing.T, name string, got, want float64) {
	t.Helper()
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("%s = %v, want %v", name, got, want)
	}
}

func TestQuantileEmpty(t *testing.T) {
	s := NewHistogram([]float64{1, 2}).Snapshot()
	for _, q := range []float64{-1, 0, 0.5, 1, 2} {
		if got := s.Quantile(q); got != 0 {
			t.Errorf("empty Quantile(%v) = %v, want 0", q, got)
		}
	}
}

// q ≤ 0 pins to the lower edge of the first occupied bucket: 0 when that is
// the first bucket, the previous bound otherwise.
func TestQuantileLowerEdge(t *testing.T) {
	h := NewHistogram([]float64{10, 20, 30})
	h.Observe(5)
	approx(t, "p0 first bucket", h.Snapshot().Quantile(0), 0)
	approx(t, "p0 negative q", h.Snapshot().Quantile(-0.5), 0)

	h2 := NewHistogram([]float64{10, 20, 30})
	h2.Observe(25) // only the (20,30] bucket is occupied
	approx(t, "p0 interior bucket", h2.Snapshot().Quantile(0), 20)
}

// q ≥ 1 pins to the last occupied bucket's upper bound — or -1 (no honest
// finite estimate) when the overflow bucket is occupied.
func TestQuantileUpperEdge(t *testing.T) {
	h := NewHistogram([]float64{10, 20})
	h.Observe(5)
	h.Observe(15)
	approx(t, "p100", h.Snapshot().Quantile(1), 20)
	approx(t, "q>1", h.Snapshot().Quantile(1.5), 20)

	h.Observe(99) // overflow occupied
	approx(t, "p100 with overflow", h.Snapshot().Quantile(1), -1)
	// An interior rank landing in the overflow bucket is also -1.
	approx(t, "p99 in overflow", h.Snapshot().Quantile(0.99), -1)
}

func TestQuantileInterpolation(t *testing.T) {
	h := NewHistogram([]float64{10, 20})
	for _, v := range []float64{11, 12, 13, 14} {
		h.Observe(v)
	}
	// target rank 2 of 4, all in (10,20]: 10 + 2/4·10 = 15.
	approx(t, "p50 uniform", h.Snapshot().Quantile(0.5), 15)
	// target rank 1: 10 + 1/4·10 = 12.5.
	approx(t, "p25 uniform", h.Snapshot().Quantile(0.25), 12.5)
}

// A single sample interpolates across its bucket (lo + q·(hi−lo)) — the
// histogram no longer knows the sample's value, only its bucket.
func TestQuantileSingleSample(t *testing.T) {
	h := NewHistogram([]float64{10, 20})
	h.Observe(17)
	s := h.Snapshot()
	approx(t, "single p50", s.Quantile(0.5), 15)
	approx(t, "single p10", s.Quantile(0.1), 11)
	approx(t, "single p0", s.Quantile(0), 10)
	approx(t, "single p100", s.Quantile(1), 20)
}

// Snapshots without Bounds (old persisted JSON) fall back to the previous
// occupied bucket's bound as the lower edge.
func TestQuantileNoBoundsFallback(t *testing.T) {
	s := HistogramSnapshot{
		Buckets: []HistogramBucket{{LE: 10, Count: 2}, {LE: 30, Count: 2}},
		Count:   4,
	}
	// Rank 3 lands in the (10,30] bucket: 10 + 1/2·20 = 20.
	approx(t, "fallback p75", s.Quantile(0.75), 20)
	approx(t, "fallback p0", s.Quantile(0), 0)
}

func TestHistogramPanicsOnUnsortedBounds(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("unsorted bounds accepted")
		}
	}()
	NewHistogram([]float64{2, 1})
}

func TestSnapshotMeanAndString(t *testing.T) {
	h := NewHistogram([]float64{1})
	h.Observe(0.5)
	h.Observe(1.5)
	s := h.Snapshot()
	approx(t, "mean", s.Mean(), 1)
	if s.String() == "" {
		t.Error("String() empty")
	}
	if (HistogramSnapshot{}).Mean() != 0 {
		t.Error("empty mean != 0")
	}
}
