package obs

import (
	"encoding/json"
	"io"
	"sync"

	"github.com/wattwiseweb/greenweb/internal/ledger"
)

// Decision is one frame-level scheduling decision in the structured event
// log: what the governor chose for the frame, why, and what it cost. Fields
// mirror the ledger frame span and the GreenWeb runtime's annotations
// verbatim — the decision log is a projection of the ledger, never a second
// source of truth, which is what keeps it out-of-band.
type Decision struct {
	Span  int `json:"span"`
	Frame int `json:"frame,omitempty"` // committed sequence number; 0 = no commit

	StartUS int64 `json:"start_us"`
	EndUS   int64 `json:"end_us"`

	// Runtime annotations (absent under baseline governors that do not
	// annotate).
	Governor   string `json:"governor,omitempty"`
	Class      string `json:"class,omitempty"`
	Deadline   string `json:"deadline,omitempty"`
	Decision   string `json:"decision,omitempty"`
	Predicted  string `json:"predicted,omitempty"`
	Measured   string `json:"measured,omitempty"`
	Outcome    string `json:"outcome,omitempty"`
	ThermalCap string `json:"thermal_cap,omitempty"`
	Degrade    string `json:"degrade,omitempty"`
	Recover    string `json:"recover,omitempty"`

	// Config is the ACMP configuration the frame executed under (at close).
	Config string `json:"config,omitempty"`

	EnergyJ float64 `json:"energy_j"`
	BusyUS  int64   `json:"busy_us"`
}

// DecisionOf projects a ledger span into a Decision. Only frame spans are
// decisions; ok is false otherwise. Every frame span qualifies — including
// no-commit and un-annotated frames — so the decision energies sum to the
// ledger's frame-energy total exactly.
func DecisionOf(sp ledger.Span) (Decision, bool) {
	if sp.Kind != ledger.KindFrame {
		return Decision{}, false
	}
	return Decision{
		Span:       sp.ID,
		Frame:      sp.Seq,
		StartUS:    int64(sp.Start),
		EndUS:      int64(sp.End),
		Governor:   sp.Attrs["governor"],
		Class:      sp.Attrs["class"],
		Deadline:   sp.Attrs["deadline"],
		Decision:   sp.Attrs["decision"],
		Predicted:  sp.Attrs["predicted"],
		Measured:   sp.Attrs["measured"],
		Outcome:    sp.Attrs["outcome"],
		ThermalCap: sp.Attrs["thermal_cap"],
		Degrade:    sp.Attrs["degrade"],
		Recover:    sp.Attrs["recover"],
		Config:     sp.Config,
		EnergyJ:    float64(sp.Energy),
		BusyUS:     int64(sp.Busy),
	}, true
}

// DecisionsOf projects every frame span into the decision log — the pure
// derivation used for trace export and for cross-checking a live Recorder.
func DecisionsOf(spans []ledger.Span) []Decision {
	var out []Decision
	for _, sp := range spans {
		if d, ok := DecisionOf(sp); ok {
			out = append(out, d)
		}
	}
	return out
}

// DefaultRecorderCap bounds a Recorder's in-memory decision log. At ~200 B a
// decision this is a few MB — far above any single app run (thousands of
// frames) but a hard stop against a runaway loop.
const DefaultRecorderCap = 1 << 16

// Recorder accumulates the decision log for one run. It is the live tracer
// the engine feeds as each frame span closes; all methods are nil-safe so
// un-instrumented callers pass nil and pay one pointer compare per frame.
type Recorder struct {
	mu        sync.Mutex
	cap       int
	decisions []Decision
	dropped   int64
}

// NewRecorder returns a recorder holding at most cap decisions
// (DefaultRecorderCap when cap <= 0); later decisions are counted as
// dropped.
func NewRecorder(cap int) *Recorder {
	if cap <= 0 {
		cap = DefaultRecorderCap
	}
	return &Recorder{cap: cap}
}

// RecordFrame projects and appends a closed frame span. Nil-safe; non-frame
// spans are ignored.
func (r *Recorder) RecordFrame(sp ledger.Span) {
	if r == nil {
		return
	}
	d, ok := DecisionOf(sp)
	if !ok {
		return
	}
	r.mu.Lock()
	if len(r.decisions) >= r.cap {
		r.dropped++
	} else {
		r.decisions = append(r.decisions, d)
	}
	r.mu.Unlock()
}

// Decisions returns a copy of the recorded log in record order.
func (r *Recorder) Decisions() []Decision {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]Decision(nil), r.decisions...)
}

// Dropped reports how many decisions the cap discarded.
func (r *Recorder) Dropped() int64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.dropped
}

// WriteNDJSON streams decisions one JSON object per line — the format
// greensrv serves at GET /v1/sweeps/{id}/events.
func WriteNDJSON(w io.Writer, ds []Decision) error {
	enc := json.NewEncoder(w)
	for _, d := range ds {
		if err := enc.Encode(d); err != nil {
			return err
		}
	}
	return nil
}
