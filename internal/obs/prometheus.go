package obs

import (
	"bufio"
	"io"
	"sort"
	"strconv"
	"strings"
)

// Prometheus text exposition (format version 0.0.4). Hand-rolled because the
// repo is stdlib-only; the format is small: HELP/TYPE metadata lines, one
// sample per line, label values escaped, histograms exposed as cumulative
// _bucket/_sum/_count series.

// escapeHelp escapes a HELP docstring: backslash and newline.
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// escapeLabel escapes a label value: backslash, double quote, newline.
func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, `"`, `\"`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// formatValue renders a sample value the way Prometheus expects.
func formatValue(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// labelSet renders {k="v",...} for parallel name/value slices; extra is an
// optional pre-rendered pair (the histogram "le" label) appended last.
func labelSet(names, values []string, extra string) string {
	if len(names) == 0 && extra == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, n := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(n)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(values[i]))
		b.WriteByte('"')
	}
	if extra != "" {
		if len(names) > 0 {
			b.WriteByte(',')
		}
		b.WriteString(extra)
	}
	b.WriteByte('}')
	return b.String()
}

// writeFamily renders one family: metadata lines then samples.
func writeFamily(w *bufio.Writer, f *family) {
	if f.help != "" {
		w.WriteString("# HELP " + f.name + " " + escapeHelp(f.help) + "\n")
	}
	w.WriteString("# TYPE " + f.name + " " + f.typ + "\n")

	switch {
	case f.hist != nil:
		writeHistogram(w, f.name, nil, nil, f.hist.Snapshot())
	case f.labels != nil:
		for _, ch := range f.sortedChildren() {
			if ch.hist != nil {
				writeHistogram(w, f.name, f.labels, ch.values, ch.hist.Snapshot())
				continue
			}
			w.WriteString(f.name + labelSet(f.labels, ch.values, "") + " ")
			switch {
			case ch.fn != nil:
				w.WriteString(formatValue(ch.fn()))
			case f.typ == typeGauge:
				w.WriteString(formatValue(ch.g.Value()))
			default:
				w.WriteString(strconv.FormatInt(ch.c.Value(), 10))
			}
			w.WriteByte('\n')
		}
	case f.fn != nil:
		w.WriteString(f.name + " " + formatValue(f.fn()) + "\n")
	case f.g != nil:
		w.WriteString(f.name + " " + formatValue(f.g.Value()) + "\n")
	case f.c != nil:
		w.WriteString(f.name + " " + strconv.FormatInt(f.c.Value(), 10) + "\n")
	default:
		w.WriteString(f.name + " 0\n")
	}
}

// writeHistogram renders the cumulative bucket series, including empty
// buckets (Prometheus quantile math needs the full ladder), then sum and
// count. names/values carry the child's label set for HistogramVec children
// (nil for the unlabeled case).
func writeHistogram(w *bufio.Writer, name string, names, values []string, s HistogramSnapshot) {
	perBucket := make(map[float64]uint64, len(s.Buckets))
	var overflow uint64
	for _, b := range s.Buckets {
		if b.LE < 0 {
			overflow = b.Count
		} else {
			perBucket[b.LE] = b.Count
		}
	}
	plain := labelSet(names, values, "")
	var cum uint64
	for _, le := range s.Bounds {
		cum += perBucket[le]
		w.WriteString(name + "_bucket" + labelSet(names, values, `le="`+formatValue(le)+`"`) + " " +
			strconv.FormatUint(cum, 10) + "\n")
	}
	cum += overflow
	w.WriteString(name + "_bucket" + labelSet(names, values, `le="+Inf"`) + " " +
		strconv.FormatUint(cum, 10) + "\n")
	w.WriteString(name + "_sum" + plain + " " + formatValue(s.Sum) + "\n")
	w.WriteString(name + "_count" + plain + " " + strconv.FormatUint(s.Count, 10) + "\n")
}

// WritePrometheus renders the registry in Prometheus text format, families
// sorted by name, labeled children sorted by label values. Output is
// deterministic for a given registry state.
func (r *Registry) WritePrometheus(w io.Writer) error {
	return WriteAll(w, r)
}

// WriteAll renders several registries as one exposition, merging their
// family sets. On a name collision the earliest registry wins — greensrv
// merges its per-server registry with the process default, and the
// per-server view (which knows the live pool) takes precedence.
func WriteAll(w io.Writer, regs ...*Registry) error {
	bw := bufio.NewWriter(w)
	seen := make(map[string]bool)
	var fams []*family
	for _, r := range regs {
		for _, f := range r.sortedFamilies() {
			if seen[f.name] {
				continue
			}
			seen[f.name] = true
			fams = append(fams, f)
		}
	}
	// Re-sort the merged set: registries may interleave name ranges.
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })
	for _, f := range fams {
		writeFamily(bw, f)
	}
	return bw.Flush()
}
