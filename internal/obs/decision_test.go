package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"reflect"
	"testing"

	"github.com/wattwiseweb/greenweb/internal/acmp"
	"github.com/wattwiseweb/greenweb/internal/ledger"
)

func frameSpan(id, seq int, energy float64) ledger.Span {
	return ledger.Span{
		ID: id, Kind: ledger.KindFrame, Seq: seq,
		Start: 1000, End: 2000, Energy: acmp.Joules(energy), Busy: 800,
		Config: "2L@1.6GHz",
		Attrs: map[string]string{
			"governor": "greenweb-u", "decision": "commit",
			"predicted": "8.1ms", "measured": "7.9ms", "outcome": "met",
		},
	}
}

func TestDecisionOf(t *testing.T) {
	sp := frameSpan(7, 3, 0.0025)
	d, ok := DecisionOf(sp)
	if !ok {
		t.Fatal("frame span rejected")
	}
	if d.Span != 7 || d.Frame != 3 || d.Governor != "greenweb-u" ||
		d.Decision != "commit" || d.Predicted != "8.1ms" || d.Measured != "7.9ms" ||
		d.Outcome != "met" || d.Config != "2L@1.6GHz" ||
		d.EnergyJ != 0.0025 || d.StartUS != 1000 || d.EndUS != 2000 || d.BusyUS != 800 {
		t.Errorf("projection = %+v", d)
	}

	if _, ok := DecisionOf(ledger.Span{Kind: ledger.KindIdle}); ok {
		t.Error("idle span accepted as decision")
	}
	if _, ok := DecisionOf(ledger.Span{Kind: ledger.KindEvent}); ok {
		t.Error("event span accepted as decision")
	}
	// Un-annotated, no-commit frames still qualify — decision energies must
	// sum to the ledger's frame-energy total.
	if _, ok := DecisionOf(ledger.Span{Kind: ledger.KindFrame}); !ok {
		t.Error("bare frame span rejected")
	}
}

func TestDecisionsOfFiltersKinds(t *testing.T) {
	spans := []ledger.Span{
		{ID: 1, Kind: ledger.KindIdle},
		frameSpan(2, 1, 0),
		{ID: 3, Kind: ledger.KindEvent},
		frameSpan(4, 0, 0), // no-commit frame
	}
	ds := DecisionsOf(spans)
	if len(ds) != 2 || ds[0].Span != 2 || ds[1].Span != 4 {
		t.Fatalf("decisions = %+v", ds)
	}
}

func TestRecorderCapAndNilSafety(t *testing.T) {
	var nilRec *Recorder
	nilRec.RecordFrame(frameSpan(1, 1, 0)) // must not panic
	if nilRec.Decisions() != nil || nilRec.Dropped() != 0 {
		t.Error("nil recorder not inert")
	}

	r := NewRecorder(2)
	for i := 1; i <= 5; i++ {
		r.RecordFrame(frameSpan(i, i, 0))
	}
	r.RecordFrame(ledger.Span{Kind: ledger.KindIdle}) // ignored, not dropped
	ds := r.Decisions()
	if len(ds) != 2 || ds[0].Span != 1 || ds[1].Span != 2 {
		t.Fatalf("decisions = %+v", ds)
	}
	if r.Dropped() != 3 {
		t.Errorf("dropped = %d, want 3", r.Dropped())
	}

	// Decisions returns a copy: mutating it must not reach the recorder.
	ds[0].Span = 999
	if r.Decisions()[0].Span != 1 {
		t.Error("Decisions exposed internal storage")
	}
}

func TestRecorderMatchesDecisionsOf(t *testing.T) {
	spans := []ledger.Span{
		{ID: 1, Kind: ledger.KindIdle},
		frameSpan(2, 1, 0),
		frameSpan(3, 2, 0),
	}
	r := NewRecorder(0)
	for _, sp := range spans {
		r.RecordFrame(sp)
	}
	if !reflect.DeepEqual(r.Decisions(), DecisionsOf(spans)) {
		t.Error("live recorder disagrees with the pure projection")
	}
}

func TestWriteNDJSON(t *testing.T) {
	ds := DecisionsOf([]ledger.Span{frameSpan(1, 1, 0), frameSpan(2, 2, 0)})
	var buf bytes.Buffer
	if err := WriteNDJSON(&buf, ds); err != nil {
		t.Fatal(err)
	}
	var n int
	sc := bufio.NewScanner(&buf)
	for sc.Scan() {
		var d Decision
		if err := json.Unmarshal(sc.Bytes(), &d); err != nil {
			t.Fatalf("line %q: %v", sc.Text(), err)
		}
		n++
	}
	if n != 2 {
		t.Errorf("lines = %d, want 2", n)
	}
}
