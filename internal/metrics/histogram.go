package metrics

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Histogram counts observations into fixed exponential buckets. The fleet
// uses it for wall-clock job latency (seconds); it is safe for concurrent
// Observe calls from many workers.
type Histogram struct {
	mu     sync.Mutex
	bounds []float64 // inclusive upper bounds, ascending
	counts []uint64  // len(bounds)+1; last bucket is overflow
	sum    float64
	n      uint64
}

// NewHistogram builds a histogram over the given ascending upper bounds.
func NewHistogram(bounds []float64) *Histogram {
	if !sort.Float64sAreSorted(bounds) {
		panic("metrics: histogram bounds must be ascending")
	}
	return &Histogram{
		bounds: append([]float64(nil), bounds...),
		counts: make([]uint64, len(bounds)+1),
	}
}

// NewLatencyHistogram returns a histogram with a 1-2-5 decade ladder from
// 1 ms to 60 s, suiting experiment-job wall latencies.
func NewLatencyHistogram() *Histogram {
	return NewHistogram([]float64{
		0.001, 0.002, 0.005, 0.01, 0.02, 0.05,
		0.1, 0.2, 0.5, 1, 2, 5, 10, 30, 60,
	})
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.mu.Lock()
	h.counts[i]++
	h.sum += v
	h.n++
	h.mu.Unlock()
}

// HistogramBucket is one snapshot row: the count of observations ≤ LE that
// fell above the previous bound. The overflow bucket has LE = +Inf encoded
// as LE <= 0 being impossible; it is the final row with LE == -1.
type HistogramBucket struct {
	LE    float64 `json:"le"` // -1 marks the overflow bucket
	Count uint64  `json:"count"`
}

// HistogramSnapshot is a consistent copy of the histogram state.
type HistogramSnapshot struct {
	Buckets []HistogramBucket `json:"buckets"`
	Count   uint64            `json:"count"`
	Sum     float64           `json:"sum"`
}

// Snapshot copies the current state; empty buckets are elided.
func (h *Histogram) Snapshot() HistogramSnapshot {
	h.mu.Lock()
	defer h.mu.Unlock()
	s := HistogramSnapshot{Count: h.n, Sum: h.sum}
	for i, c := range h.counts {
		if c == 0 {
			continue
		}
		le := -1.0
		if i < len(h.bounds) {
			le = h.bounds[i]
		}
		s.Buckets = append(s.Buckets, HistogramBucket{LE: le, Count: c})
	}
	return s
}

// Mean reports the average observation (0 when empty).
func (s HistogramSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return s.Sum / float64(s.Count)
}

// Quantile estimates the q-quantile (0 < q ≤ 1) as the upper bound of the
// bucket containing it; the overflow bucket reports -1 (unbounded).
func (s HistogramSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 {
		return 0
	}
	rank := uint64(q * float64(s.Count))
	if rank < 1 {
		rank = 1
	}
	var seen uint64
	for _, b := range s.Buckets {
		seen += b.Count
		if seen >= rank {
			return b.LE
		}
	}
	return -1
}

// String renders the snapshot compactly for logs: "n=5 mean=12ms [≤0.01:3 ≤0.02:2]".
func (s HistogramSnapshot) String() string {
	parts := make([]string, 0, len(s.Buckets))
	for _, b := range s.Buckets {
		label := fmt.Sprintf("≤%g", b.LE)
		if b.LE < 0 {
			label = ">max"
		}
		parts = append(parts, fmt.Sprintf("%s:%d", label, b.Count))
	}
	return fmt.Sprintf("n=%d mean=%.3fs [%s]", s.Count, s.Mean(), strings.Join(parts, " "))
}
