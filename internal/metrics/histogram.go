package metrics

import "github.com/wattwiseweb/greenweb/internal/obs"

// The histogram moved to internal/obs, the unified observability layer, so
// the fleet, greensrv, and the registry share one implementation. These
// aliases keep the historical metrics.Histogram API working; new code should
// use obs directly.
type (
	// Histogram counts observations into fixed buckets (see obs.Histogram).
	Histogram = obs.Histogram
	// HistogramBucket is one occupied snapshot bucket.
	HistogramBucket = obs.HistogramBucket
	// HistogramSnapshot is a consistent copy of histogram state.
	HistogramSnapshot = obs.HistogramSnapshot
)

// NewHistogram builds a histogram over the given ascending upper bounds.
func NewHistogram(bounds []float64) *Histogram { return obs.NewHistogram(bounds) }

// NewLatencyHistogram returns the 1 ms – 60 s job-latency ladder.
func NewLatencyHistogram() *Histogram { return obs.NewLatencyHistogram() }
