package metrics

import (
	"math"
	"sync"
	"testing"
)

func TestHistogramBucketsAndStats(t *testing.T) {
	h := NewHistogram([]float64{0.01, 0.1, 1})
	for _, v := range []float64{0.005, 0.01, 0.05, 0.5, 5} {
		h.Observe(v)
	}
	s := h.Snapshot()
	if s.Count != 5 {
		t.Fatalf("count = %d, want 5", s.Count)
	}
	if math.Abs(s.Sum-5.565) > 1e-9 {
		t.Fatalf("sum = %v, want 5.565", s.Sum)
	}
	want := map[float64]uint64{0.01: 2, 0.1: 1, 1: 1, -1: 1}
	if len(s.Buckets) != len(want) {
		t.Fatalf("buckets = %+v, want %v", s.Buckets, want)
	}
	for _, b := range s.Buckets {
		if want[b.LE] != b.Count {
			t.Errorf("bucket ≤%g = %d, want %d", b.LE, b.Count, want[b.LE])
		}
	}
	if m := s.Mean(); math.Abs(m-5.565/5) > 1e-9 {
		t.Errorf("mean = %v", m)
	}
	// Interpolated: target rank 2.5 lands halfway through the (0.01, 0.1]
	// bucket, so p50 = 0.01 + 0.5·(0.1−0.01).
	if q := s.Quantile(0.5); math.Abs(q-0.055) > 1e-12 {
		t.Errorf("p50 = %v, want 0.055", q)
	}
	if q := s.Quantile(1); q != -1 {
		t.Errorf("p100 = %v, want -1 (overflow)", q)
	}
}

func TestHistogramEmpty(t *testing.T) {
	s := NewLatencyHistogram().Snapshot()
	if s.Count != 0 || s.Mean() != 0 || s.Quantile(0.99) != 0 || len(s.Buckets) != 0 {
		t.Fatalf("empty snapshot not empty: %+v", s)
	}
}

func TestHistogramConcurrentObserve(t *testing.T) {
	h := NewLatencyHistogram()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				h.Observe(float64(w+1) * 0.001)
			}
		}(w)
	}
	wg.Wait()
	if s := h.Snapshot(); s.Count != 8000 {
		t.Fatalf("count = %d, want 8000", s.Count)
	}
}
