package metrics

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/wattwiseweb/greenweb/internal/acmp"
	"github.com/wattwiseweb/greenweb/internal/browser"
	"github.com/wattwiseweb/greenweb/internal/governor"
	"github.com/wattwiseweb/greenweb/internal/qos"
	"github.com/wattwiseweb/greenweb/internal/sim"
)

func TestViolationPct(t *testing.T) {
	// The paper's example: 200 ms against a 100 ms target is 100%.
	if got := ViolationPct(200*sim.Millisecond, 100*sim.Millisecond); got != 100 {
		t.Fatalf("ViolationPct = %v, want 100", got)
	}
	if got := ViolationPct(90*sim.Millisecond, 100*sim.Millisecond); got != 0 {
		t.Fatalf("meeting deadline = %v, want 0", got)
	}
	if got := ViolationPct(100*sim.Millisecond, 100*sim.Millisecond); got != 0 {
		t.Fatalf("exactly at deadline = %v, want 0", got)
	}
	if got := ViolationPct(50, 0); got != 0 {
		t.Fatalf("zero deadline = %v", got)
	}
}

func TestGeoMeanPct(t *testing.T) {
	if got := GeoMeanPct(nil); got != 0 {
		t.Fatalf("empty = %v", got)
	}
	if got := GeoMeanPct([]float64{0, 0, 0}); got != 0 {
		t.Fatalf("all zero = %v", got)
	}
	got := GeoMeanPct([]float64{100, 100})
	if math.Abs(got-100) > 1e-9 {
		t.Fatalf("constant 100%% = %v", got)
	}
	// Geomean is below arithmetic mean for mixed values.
	mixed := GeoMeanPct([]float64{0, 200})
	if mixed >= Mean([]float64{0, 200}) {
		t.Fatalf("geomean %v >= mean", mixed)
	}
	if mixed <= 0 {
		t.Fatalf("mixed = %v, want positive", mixed)
	}
}

func TestPropertyGeoMeanBounds(t *testing.T) {
	f := func(raw []uint8) bool {
		if len(raw) == 0 {
			return true
		}
		pcts := make([]float64, len(raw))
		lo, hi := math.Inf(1), math.Inf(-1)
		for i, r := range raw {
			pcts[i] = float64(r)
			lo = math.Min(lo, pcts[i])
			hi = math.Max(hi, pcts[i])
		}
		g := GeoMeanPct(pcts)
		return g >= lo-1e-9 && g <= hi+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestMean(t *testing.T) {
	if Mean(nil) != 0 || Mean([]float64{2, 4}) != 3 {
		t.Fatal("Mean wrong")
	}
}

func TestDistributionAndClusterShares(t *testing.T) {
	res := map[acmp.Config]sim.Duration{
		{Cluster: acmp.Little, MHz: 350}: 3 * sim.Second,
		{Cluster: acmp.Big, MHz: 1800}:   sim.Second,
	}
	dist := Distribution(res)
	if len(dist) != 2 {
		t.Fatalf("dist = %v", dist)
	}
	if dist[0].Config.Cluster != acmp.Little || math.Abs(dist[0].Share-0.75) > 1e-9 {
		t.Fatalf("dist[0] = %+v", dist[0])
	}
	little, big := ClusterShares(dist)
	if math.Abs(little-0.75) > 1e-9 || math.Abs(big-0.25) > 1e-9 {
		t.Fatalf("shares = %v, %v", little, big)
	}
	if Distribution(nil) != nil {
		t.Fatal("empty residency should give nil")
	}
}

func TestSwitchRate(t *testing.T) {
	f, m := SwitchRate(acmp.SwitchStats{FreqSwitches: 10, Migrations: 5}, 100)
	if f != 10 || m != 5 {
		t.Fatalf("rates = %v, %v", f, m)
	}
	f, m = SwitchRate(acmp.SwitchStats{FreqSwitches: 10}, 0)
	if f != 0 || m != 0 {
		t.Fatal("zero frames must give zero rates")
	}
}

func TestNormalizedPct(t *testing.T) {
	if NormalizedPct(1, 4) != 25 {
		t.Fatal("NormalizedPct wrong")
	}
	if NormalizedPct(1, 0) != 0 {
		t.Fatal("zero base must give 0")
	}
}

// End-to-end: the collector judges frames of an annotated app run.
func TestCollectorJudgesFrames(t *testing.T) {
	page := `<html><head><style>
			body:QoS { onload-qos: single, long; }
			div#c:QoS { ontouchstart-qos: continuous; }
		</style></head>
		<body><div id="c">x</div>
		<script>
			var n = 0;
			document.getElementById("c").addEventListener("touchstart", function(e) {
				function step() {
					n++;
					work(20);
					document.getElementById("c").style.height = n + "px";
					if (n < 10) { requestAnimationFrame(step); }
				}
				requestAnimationFrame(step);
			});
		</script></body></html>`
	s := sim.New()
	cpu := acmp.NewCPU(s, acmp.DefaultPower())
	e := browser.New(s, cpu, nil)
	e.SetGovernor(governor.NewPerf())
	if _, err := e.LoadPage(page); err != nil {
		t.Fatal(err)
	}
	col := NewCollector(e, qos.Imperceptible)
	s.RunUntil(sim.Time(sim.Second))
	e.Inject(s.Now().Add(10*sim.Millisecond), "touchstart", "c", nil)
	s.RunUntil(s.Now().Add(2 * sim.Second))

	if len(col.Frames) < 11 { // load frame + 10 animation frames
		t.Fatalf("judged frames = %d, want >= 11", len(col.Frames))
	}
	// First judged frame is the load: single type, 1 s deadline.
	if col.Frames[0].Type != qos.Single || col.Frames[0].Deadline != sim.Second {
		t.Fatalf("load frame = %+v", col.Frames[0])
	}
	// Animation frames are continuous with the 16.6 ms TI deadline.
	anim := col.Frames[2]
	if anim.Type != qos.Continuous || anim.Deadline != 16600*sim.Microsecond {
		t.Fatalf("anim frame = %+v", anim)
	}
	// At peak everything should meet deadlines.
	if v := col.Violation(); v > 1 {
		t.Fatalf("violation at peak = %v%%", v)
	}
}

func TestCollectorUsableScenarioLoosens(t *testing.T) {
	page := `<html><head><style>
			div#c:QoS { ontouchstart-qos: continuous; }
		</style></head>
		<body><div id="c">x</div>
		<script>
			var n = 0;
			document.getElementById("c").addEventListener("touchstart", function(e) {
				function step() {
					n++;
					work(60);
					document.getElementById("c").style.height = n + "px";
					if (n < 15) { requestAnimationFrame(step); }
				}
				requestAnimationFrame(step);
			});
		</script></body></html>`
	run := func(sc qos.Scenario, cfg acmp.Config) float64 {
		s := sim.New()
		cpu := acmp.NewCPU(s, acmp.DefaultPower())
		e := browser.New(s, cpu, nil)
		e.SetGovernor(governor.NewPowersave())
		if _, err := e.LoadPage(page); err != nil {
			t.Fatal(err)
		}
		cpu.SetConfig(cfg)
		col := NewCollector(e, sc)
		s.RunUntil(sim.Time(sim.Second))
		e.Inject(s.Now().Add(10*sim.Millisecond), "touchstart", "c", nil)
		s.RunUntil(s.Now().Add(3 * sim.Second))
		return col.Violation()
	}
	cfg := acmp.Config{Cluster: acmp.Little, MHz: 500}
	vi := run(qos.Imperceptible, cfg)
	vu := run(qos.Usable, cfg)
	if vi <= vu {
		t.Fatalf("imperceptible violation %v <= usable %v at same config", vi, vu)
	}
}
