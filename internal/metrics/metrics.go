// Package metrics computes the evaluation quantities the paper reports:
// per-frame QoS violations against annotation-derived deadlines (Sec. 7.2's
// definition: the percentage by which a frame latency exceeds its target,
// geometrically averaged over a continuous event's frames), normalized
// energy, architecture-configuration residency distributions (Fig. 11), and
// configuration-switching rates (Fig. 12).
package metrics

import (
	"math"
	"sort"

	"github.com/wattwiseweb/greenweb/internal/acmp"
	"github.com/wattwiseweb/greenweb/internal/browser"
	"github.com/wattwiseweb/greenweb/internal/qos"
	"github.com/wattwiseweb/greenweb/internal/sim"
)

// ViolationPct is the paper's per-frame QoS violation: the percentage by
// which latency exceeds the deadline (a 200 ms frame against a 100 ms
// target is a 100% violation); meeting the deadline is 0.
func ViolationPct(latency, deadline sim.Duration) float64 {
	if deadline <= 0 || latency <= deadline {
		return 0
	}
	return float64(latency-deadline) / float64(deadline) * 100
}

// GeoMeanPct aggregates violation percentages geometrically (the paper
// reports "the geometric mean of all associated frames" for continuous
// events), shifting by one so zero-violation frames are well defined.
func GeoMeanPct(pcts []float64) float64 {
	if len(pcts) == 0 {
		return 0
	}
	sum := 0.0
	for _, p := range pcts {
		sum += math.Log1p(p / 100)
	}
	return (math.Exp(sum/float64(len(pcts))) - 1) * 100
}

// Mean is the arithmetic mean (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// FrameQoS is one frame judged against the deadline of the annotated event
// driving it.
type FrameQoS struct {
	Frame    browser.FrameResult
	Type     qos.Type
	Deadline sim.Duration
	Measured sim.Duration
	Pct      float64
}

// Collector observes an engine run and judges every frame whose provenance
// includes an annotated input. It applies the same driving-event resolution
// the GreenWeb runtime uses — strictest deadline wins — so baselines
// (Perf, Interactive) are judged by identical rules.
type Collector struct {
	e        *browser.Engine
	scenario qos.Scenario

	anns   map[browser.UID]qos.Annotation
	Frames []FrameQoS
}

// NewCollector attaches a collector to the engine. It must be created
// after LoadPage (it resolves annotations against the loaded document) —
// pass the load UID so the loading frame itself is judged.
func NewCollector(e *browser.Engine, scenario qos.Scenario) *Collector {
	c := &Collector{e: e, scenario: scenario, anns: make(map[browser.UID]qos.Annotation)}
	e.OnFrame(c.onFrame)
	return c
}

// resolve finds (and caches) the annotation for an input.
func (c *Collector) resolve(in browser.InputRecord) (qos.Annotation, bool) {
	if a, ok := c.anns[in.UID]; ok {
		return a, a.Target.Valid()
	}
	doc := c.e.Doc()
	if doc == nil || c.e.Annotations() == nil {
		return qos.Annotation{}, false
	}
	node := doc.GetElementByID(in.Target)
	if node == nil {
		if bodies := doc.GetElementsByTag("body"); len(bodies) > 0 && (in.Target == "#document" || in.Target == "body") {
			node = bodies[0]
		}
	}
	if node == nil {
		c.anns[in.UID] = qos.Annotation{}
		return qos.Annotation{}, false
	}
	a, ok := c.e.Annotations().Lookup(node, in.Event)
	if !ok {
		c.anns[in.UID] = qos.Annotation{}
		return qos.Annotation{}, false
	}
	c.anns[in.UID] = a
	return a, true
}

func (c *Collector) onFrame(fr *browser.FrameResult) {
	// Find the strictest annotated deadline among the frame's ancestry.
	var best qos.Annotation
	found := false
	var bestInput browser.InputRecord
	// Ascending-UID iteration keeps deadline ties deterministic.
	for _, uid := range fr.Provenance.IDs() {
		rec, ok := c.e.InputRecord(uid)
		if !ok {
			continue
		}
		a, ok := c.resolve(rec)
		if !ok {
			continue
		}
		if !found || c.scenario.Deadline(a.Target) < c.scenario.Deadline(best.Target) {
			best, bestInput, found = a, rec, true
		}
	}
	if !found {
		return
	}
	measured := fr.ProductionLatency
	if best.Type == qos.Single {
		measured = -1
		for _, il := range fr.Inputs {
			if il.Input.UID == bestInput.UID {
				measured = il.Latency
			}
		}
		if measured < 0 {
			return // the single event's own frame already passed
		}
	}
	deadline := c.scenario.Deadline(best.Target)
	c.Frames = append(c.Frames, FrameQoS{
		Frame:    *fr,
		Type:     best.Type,
		Deadline: deadline,
		Measured: measured,
		Pct:      ViolationPct(measured, deadline),
	})
}

// ViolationPcts returns the per-frame violation percentages.
func (c *Collector) ViolationPcts() []float64 {
	out := make([]float64, len(c.Frames))
	for i, f := range c.Frames {
		out[i] = f.Pct
	}
	return out
}

// Violation aggregates the run's QoS violation: geometric mean over all
// judged frames.
func (c *Collector) Violation() float64 { return GeoMeanPct(c.ViolationPcts()) }

// ConfigShare is one row of the Fig. 11 distribution.
type ConfigShare struct {
	Config acmp.Config
	Share  float64 // fraction of total time
}

// Distribution converts CPU residency into ordered shares (low→high
// performance), the quantity Fig. 11 plots.
func Distribution(residency map[acmp.Config]sim.Duration) []ConfigShare {
	var total float64
	for _, d := range residency {
		total += d.Seconds()
	}
	if total == 0 {
		return nil
	}
	out := make([]ConfigShare, 0, len(residency))
	for cfg, d := range residency {
		out = append(out, ConfigShare{cfg, d.Seconds() / total})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Config.Index() < out[j].Config.Index() })
	return out
}

// ClusterShares sums a distribution by cluster.
func ClusterShares(dist []ConfigShare) (little, big float64) {
	for _, cs := range dist {
		if cs.Config.Cluster == acmp.Big {
			big += cs.Share
		} else {
			little += cs.Share
		}
	}
	return little, big
}

// SwitchRate expresses configuration switching as switches per frame in
// percent, split into frequency switches and migrations (Fig. 12).
func SwitchRate(st acmp.SwitchStats, frames int) (freqPct, migPct float64) {
	if frames == 0 {
		return 0, 0
	}
	return float64(st.FreqSwitches) / float64(frames) * 100,
		float64(st.Migrations) / float64(frames) * 100
}

// NormalizedPct reports value as a percentage of base.
func NormalizedPct(value, base acmp.Joules) float64 {
	if base == 0 {
		return 0
	}
	return float64(value) / float64(base) * 100
}
