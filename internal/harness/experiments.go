package harness

import (
	"context"
	"fmt"

	"github.com/wattwiseweb/greenweb/internal/acmp"
	"github.com/wattwiseweb/greenweb/internal/apps"
	"github.com/wattwiseweb/greenweb/internal/autogreen"
	"github.com/wattwiseweb/greenweb/internal/browser"
	"github.com/wattwiseweb/greenweb/internal/governor"
	"github.com/wattwiseweb/greenweb/internal/metrics"
	"github.com/wattwiseweb/greenweb/internal/qos"
	"github.com/wattwiseweb/greenweb/internal/sim"
)

// ---- Table 1 ----

// Table1Row is one interaction category (defaults from internal/qos).
type Table1Row = qos.Category

// Table1 returns the paper's interaction-category taxonomy.
func Table1() []Table1Row { return qos.Table1() }

// ---- Table 2 ----

// Table2Row documents one GreenWeb API rule form.
type Table2Row struct {
	Syntax    string
	Semantics string
	Example   string
}

// Table2 returns the GreenWeb API specification (paper Table 2), with a
// runnable example per rule form (each example parses in internal/css).
func Table2() []Table2Row {
	return []Table2Row{
		{
			Syntax:    "E:QoS { onevent-qos: continuous }",
			Semantics: "As soon as onevent is triggered on DOM element E, continuously optimize for frame latency; Table 1 continuous defaults apply to all frames.",
			Example:   "div#ex:QoS { ontouchstart-qos: continuous; }",
		},
		{
			Syntax:    "E:QoS { onevent-qos: single, short|long }",
			Semantics: "Optimize for the latency of the single frame caused by onevent; users expect a short (long) response period, selecting the Table 1 single defaults.",
			Example:   "div#btn:QoS { onclick-qos: single, short; }",
		},
		{
			Syntax:    "E:QoS { onevent-qos: continuous|single, ti-value, tu-value }",
			Semantics: "Explicitly specify TI and TU in integer milliseconds; both values must appear or be omitted together.",
			Example:   "div#cv:QoS { ontouchmove-qos: continuous, 20, 100; }",
		},
	}
}

// ---- Table 3 ----

// Table3Row describes one evaluated application.
type Table3Row struct {
	App          string
	Interaction  apps.Interaction
	QoSType      qos.Type
	QoSTarget    qos.Target
	FullSeconds  float64
	FullEvents   int
	AnnotatedPct float64
}

// Table3 computes the application inventory: interaction category, trace
// duration, event count, and measured annotation coverage.
func Table3() ([]Table3Row, error) {
	var rows []Table3Row
	for _, a := range apps.All() {
		cov, err := annotationCoverage(a)
		if err != nil {
			return nil, err
		}
		rows = append(rows, Table3Row{
			App:          a.Name,
			Interaction:  a.Interaction,
			QoSType:      a.QoSType,
			QoSTarget:    a.QoSTarget,
			FullSeconds:  a.Full.Duration().Seconds(),
			FullEvents:   a.Full.Events(),
			AnnotatedPct: cov * 100,
		})
	}
	return rows, nil
}

func annotationCoverage(a *apps.App) (float64, error) {
	s := sim.New()
	cpu := acmp.NewCPU(s, acmp.DefaultPower())
	e := browser.New(s, cpu, nil)
	e.SetGovernor(governor.NewPerf())
	if _, err := e.LoadPage(a.HTML()); err != nil {
		return 0, err
	}
	if err := settle(context.Background(), s, e, 60*sim.Second); err != nil {
		return 0, err
	}
	if a.Full.Events() == 0 {
		return 1, nil
	}
	annotated := 0
	for _, step := range a.Full.Steps {
		n := e.Doc().GetElementByID(step.Target)
		if n == nil {
			continue
		}
		if _, ok := e.Annotations().Lookup(n, step.Event); ok {
			annotated++
		}
	}
	return float64(annotated) / float64(a.Full.Events()), nil
}

// ---- Fig. 9: microbenchmarks ----

// Fig9Row is one application's microbenchmark outcome.
type Fig9Row struct {
	App string
	// Energy as % of Perf (Fig. 9a; lower is better).
	EnergyPctI float64
	EnergyPctU float64
	// Extra QoS violations on top of Perf, percentage points (Fig. 9b).
	ExtraViolI float64
	ExtraViolU float64
}

// Fig9 runs the microbenchmarks for Perf, GreenWeb-I and GreenWeb-U and
// reports Fig. 9a (energy) and Fig. 9b (violations) per application.
func (s *Suite) Fig9() ([]Fig9Row, error) {
	if err := s.prefetch(cellsFor(false, Perf, GreenWebI, GreenWebU)); err != nil {
		return nil, err
	}
	var rows []Fig9Row
	for _, a := range apps.All() {
		perf, err := s.Micro(a, Perf)
		if err != nil {
			return nil, err
		}
		gwI, err := s.Micro(a, GreenWebI)
		if err != nil {
			return nil, err
		}
		gwU, err := s.Micro(a, GreenWebU)
		if err != nil {
			return nil, err
		}
		rows = append(rows, Fig9Row{
			App:        a.Name,
			EnergyPctI: metrics.NormalizedPct(gwI.Energy, perf.Energy),
			EnergyPctU: metrics.NormalizedPct(gwU.Energy, perf.Energy),
			ExtraViolI: gwI.ViolationI - perf.ViolationI,
			ExtraViolU: gwU.ViolationU - perf.ViolationU,
		})
	}
	return rows, nil
}

// Fig9Averages summarizes Fig. 9 (the paper: 31.9% and 78.0% average
// savings; 1.3 and 1.2 points extra violations).
func Fig9Averages(rows []Fig9Row) (saveI, saveU, violI, violU float64) {
	var eI, eU, vI, vU []float64
	for _, r := range rows {
		eI = append(eI, r.EnergyPctI)
		eU = append(eU, r.EnergyPctU)
		vI = append(vI, r.ExtraViolI)
		vU = append(vU, r.ExtraViolU)
	}
	return 100 - metrics.Mean(eI), 100 - metrics.Mean(eU), metrics.Mean(vI), metrics.Mean(vU)
}

// ---- Fig. 10: full interactions ----

// Fig10Row is one application's full-interaction outcome.
type Fig10Row struct {
	App string
	// Energy as % of Perf (Fig. 10a).
	InteractivePct float64
	GreenWebIPct   float64
	GreenWebUPct   float64
	// Extra violations over Perf under the imperceptible scenario
	// (Fig. 10b) and usable scenario (Fig. 10c).
	InteractiveViolI float64
	GreenWebViolI    float64
	InteractiveViolU float64
	GreenWebViolU    float64
}

// Fig10 runs the full interactions under Perf, Interactive, GreenWeb-I and
// GreenWeb-U and reports Fig. 10a/b/c per application.
func (s *Suite) Fig10() ([]Fig10Row, error) {
	if err := s.prefetch(cellsFor(true, Perf, Interactive, GreenWebI, GreenWebU)); err != nil {
		return nil, err
	}
	var rows []Fig10Row
	for _, a := range apps.All() {
		perf, err := s.Full(a, Perf)
		if err != nil {
			return nil, err
		}
		inter, err := s.Full(a, Interactive)
		if err != nil {
			return nil, err
		}
		gwI, err := s.Full(a, GreenWebI)
		if err != nil {
			return nil, err
		}
		gwU, err := s.Full(a, GreenWebU)
		if err != nil {
			return nil, err
		}
		rows = append(rows, Fig10Row{
			App:              a.Name,
			InteractivePct:   metrics.NormalizedPct(inter.Energy, perf.Energy),
			GreenWebIPct:     metrics.NormalizedPct(gwI.Energy, perf.Energy),
			GreenWebUPct:     metrics.NormalizedPct(gwU.Energy, perf.Energy),
			InteractiveViolI: inter.ViolationI - perf.ViolationI,
			GreenWebViolI:    gwI.ViolationI - perf.ViolationI,
			InteractiveViolU: inter.ViolationU - perf.ViolationU,
			GreenWebViolU:    gwU.ViolationU - perf.ViolationU,
		})
	}
	return rows, nil
}

// Fig10Averages summarizes Fig. 10: average GreenWeb savings relative to
// Interactive (paper: 29.2% I, 66.0% U) and extra violations over Perf
// (paper: 0.8 and 0.6 points).
func Fig10Averages(rows []Fig10Row) (saveIvsInteractive, saveUvsInteractive, violI, violU float64) {
	var sI, sU, vI, vU []float64
	for _, r := range rows {
		if r.InteractivePct > 0 {
			sI = append(sI, 100*(1-r.GreenWebIPct/r.InteractivePct))
			sU = append(sU, 100*(1-r.GreenWebUPct/r.InteractivePct))
		}
		vI = append(vI, r.GreenWebViolI)
		vU = append(vU, r.GreenWebViolU)
	}
	return metrics.Mean(sI), metrics.Mean(sU), metrics.Mean(vI), metrics.Mean(vU)
}

// ---- Fig. 11: configuration distribution ----

// Fig11Row is one application's time distribution over configurations.
type Fig11Row struct {
	App    string
	Shares []metrics.ConfigShare
	Little float64 // cluster share summary
	Big    float64
}

// Fig11 reports the architecture-configuration residency during the full
// interaction for one GreenWeb scenario (Fig. 11a: GreenWeb-I, Fig. 11b:
// GreenWeb-U).
func (s *Suite) Fig11(kind Kind) ([]Fig11Row, error) {
	if err := s.prefetch(cellsFor(true, kind)); err != nil {
		return nil, err
	}
	var rows []Fig11Row
	for _, a := range apps.All() {
		run, err := s.Full(a, kind)
		if err != nil {
			return nil, err
		}
		dist := metrics.Distribution(run.Residency)
		little, big := metrics.ClusterShares(dist)
		rows = append(rows, Fig11Row{App: a.Name, Shares: dist, Little: little, Big: big})
	}
	return rows, nil
}

// ---- Fig. 12: switching frequency ----

// Fig12Row is one application's configuration-switching rate, decomposed
// into frequency switches and cluster migrations (percent per frame).
type Fig12Row struct {
	App   string
	FreqI float64
	MigI  float64
	FreqU float64
	MigU  float64
}

// Fig12 reports switching rates for GreenWeb-I and GreenWeb-U.
func (s *Suite) Fig12() ([]Fig12Row, error) {
	if err := s.prefetch(cellsFor(true, GreenWebI, GreenWebU)); err != nil {
		return nil, err
	}
	var rows []Fig12Row
	for _, a := range apps.All() {
		gwI, err := s.Full(a, GreenWebI)
		if err != nil {
			return nil, err
		}
		gwU, err := s.Full(a, GreenWebU)
		if err != nil {
			return nil, err
		}
		fI, mI := metrics.SwitchRate(gwI.Switches, gwI.Frames)
		fU, mU := metrics.SwitchRate(gwU.Switches, gwU.Frames)
		rows = append(rows, Fig12Row{App: a.Name, FreqI: fI, MigI: mI, FreqU: fU, MigU: mU})
	}
	return rows, nil
}

// ---- Ablations (paper Sec. 8/10 extensions) ----

// AblationRow compares the full ACMP runtime to single-cluster variants.
type AblationRow struct {
	App            string
	FullPct        float64 // GreenWeb-U energy, % of Perf
	BigOnlyPct     float64
	LittleOnlyPct  float64
	LittleOnlyViol float64 // extra I-scenario violations of little-only
}

// AblationSingleCluster quantifies what the ACMP heterogeneity buys: the
// usable-mode runtime restricted to one cluster (the paper's "runtime
// leveraging only a single big (or little) core capable of DVFS").
func (s *Suite) AblationSingleCluster() ([]AblationRow, error) {
	if err := s.prefetch(cellsFor(true, Perf, GreenWebU, GreenWebUBigOnly, GreenWebULittleOnly, GreenWebILittleOnly)); err != nil {
		return nil, err
	}
	var rows []AblationRow
	for _, a := range apps.All() {
		perf, err := s.Full(a, Perf)
		if err != nil {
			return nil, err
		}
		full, err := s.Full(a, GreenWebU)
		if err != nil {
			return nil, err
		}
		bigOnly, err := s.Full(a, GreenWebUBigOnly)
		if err != nil {
			return nil, err
		}
		litOnly, err := s.Full(a, GreenWebULittleOnly)
		if err != nil {
			return nil, err
		}
		litOnlyI, err := s.Full(a, GreenWebILittleOnly)
		if err != nil {
			return nil, err
		}
		rows = append(rows, AblationRow{
			App:            a.Name,
			FullPct:        metrics.NormalizedPct(full.Energy, perf.Energy),
			BigOnlyPct:     metrics.NormalizedPct(bigOnly.Energy, perf.Energy),
			LittleOnlyPct:  metrics.NormalizedPct(litOnly.Energy, perf.Energy),
			LittleOnlyViol: litOnlyI.ViolationI - perf.ViolationI,
		})
	}
	return rows, nil
}

// PredictorRow compares the cold (reactive, online-profiling) runtime with
// a profiling-guided variant whose per-event models were trained offline —
// the improvement Sec. 7.3 suggests after Lo et al.
type PredictorRow struct {
	App string
	// Extra I-scenario violations over Perf.
	ColdViol    float64
	TrainedViol float64
	// Total configuration switches during the interaction.
	ColdSwitches    int
	TrainedSwitches int
	// Energy as % of Perf.
	ColdPct    float64
	TrainedPct float64
}

// AblationPredictor runs every full interaction twice under GreenWeb-I:
// once cold (profiling online, as the paper's runtime does) and once seeded
// with the models the first run trained (the offline-profiling-guided
// variant). The trained variant should shed the profiling-run violations
// and some switching.
func (s *Suite) AblationPredictor() ([]PredictorRow, error) {
	if err := s.prefetch(cellsFor(true, Perf)); err != nil {
		return nil, err
	}
	var rows []PredictorRow
	for _, a := range apps.All() {
		perf, err := s.Full(a, Perf)
		if err != nil {
			return nil, err
		}
		cold, trainedModels, err := executeSeeded(context.Background(), a, GreenWebI, a.Full, nil, nil)
		if err != nil {
			return nil, err
		}
		trained, _, err := executeSeeded(context.Background(), a, GreenWebI, a.Full, trainedModels, nil)
		if err != nil {
			return nil, err
		}
		rows = append(rows, PredictorRow{
			App:             a.Name,
			ColdViol:        cold.ViolationI - perf.ViolationI,
			TrainedViol:     trained.ViolationI - perf.ViolationI,
			ColdSwitches:    cold.Switches.Total(),
			TrainedSwitches: trained.Switches.Total(),
			ColdPct:         metrics.NormalizedPct(cold.Energy, perf.Energy),
			TrainedPct:      metrics.NormalizedPct(trained.Energy, perf.Energy),
		})
	}
	return rows, nil
}

// EBSRow compares the annotation-free event-based scheduler with GreenWeb
// under the imperceptible scenario (paper Sec. 9: EBS guesses tolerance
// from measured latency; annotations carry the inherent constraint).
type EBSRow struct {
	App string
	// Extra I-scenario violations over Perf.
	EBSViol      float64
	GreenWebViol float64
	// Energy as % of Perf.
	EBSPct      float64
	GreenWebPct float64
}

// ComparisonEBS runs the full interactions under EBS and reports them
// against GreenWeb-I.
func (s *Suite) ComparisonEBS() ([]EBSRow, error) {
	if err := s.prefetch(cellsFor(true, Perf, EBSKind, GreenWebI)); err != nil {
		return nil, err
	}
	var rows []EBSRow
	for _, a := range apps.All() {
		perf, err := s.Full(a, Perf)
		if err != nil {
			return nil, err
		}
		ebs, err := s.Full(a, EBSKind)
		if err != nil {
			return nil, err
		}
		gw, err := s.Full(a, GreenWebI)
		if err != nil {
			return nil, err
		}
		rows = append(rows, EBSRow{
			App:          a.Name,
			EBSViol:      ebs.ViolationI - perf.ViolationI,
			GreenWebViol: gw.ViolationI - perf.ViolationI,
			EBSPct:       metrics.NormalizedPct(ebs.Energy, perf.Energy),
			GreenWebPct:  metrics.NormalizedPct(gw.Energy, perf.Energy),
		})
	}
	return rows, nil
}

// AutoGreenRow compares an application running with its manual annotations
// against the same application annotated by AUTOGREEN (paper Sec. 5/7.3:
// automatic annotation is conservative — single events always get the
// short target — trading some energy for guaranteed QoS).
type AutoGreenRow struct {
	App string
	// Energy as % of Perf under GreenWeb-I.
	ManualPct float64
	AutoPct   float64
	// Extra I-scenario violations over Perf.
	ManualViol float64
	AutoViol   float64
	// Findings generated by AUTOGREEN.
	Findings int
}

// ComparisonAutoGreen annotates each application's unannotated source with
// AUTOGREEN and measures it against the manual annotations.
func (s *Suite) ComparisonAutoGreen() ([]AutoGreenRow, error) {
	if err := s.prefetch(cellsFor(true, Perf, GreenWebI)); err != nil {
		return nil, err
	}
	var rows []AutoGreenRow
	for _, a := range apps.All() {
		perf, err := s.Full(a, Perf)
		if err != nil {
			return nil, err
		}
		manual, err := s.Full(a, GreenWebI)
		if err != nil {
			return nil, err
		}
		annotated, report, err := autogreen.Annotate(a.BaseHTML)
		if err != nil {
			return nil, err
		}
		auto, _, err := executeHTML(context.Background(), a, annotated, GreenWebI, a.Full, nil, nil)
		if err != nil {
			return nil, err
		}
		rows = append(rows, AutoGreenRow{
			App:        a.Name,
			ManualPct:  metrics.NormalizedPct(manual.Energy, perf.Energy),
			AutoPct:    metrics.NormalizedPct(auto.Energy, perf.Energy),
			ManualViol: manual.ViolationI - perf.ViolationI,
			AutoViol:   auto.ViolationI - perf.ViolationI,
			Findings:   len(report.Findings),
		})
	}
	return rows, nil
}

// String renders a run compactly for logs.
func (r *Run) String() string {
	return fmt.Sprintf("%s/%s: %.3f J, %d frames, violI=%.2f%% violU=%.2f%%",
		r.App.Name, r.Kind, float64(r.Energy), r.Frames, r.ViolationI, r.ViolationU)
}
