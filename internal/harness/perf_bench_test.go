package harness

import (
	"context"
	"testing"

	"github.com/wattwiseweb/greenweb/internal/apps"
	"github.com/wattwiseweb/greenweb/internal/browser"
)

// benchCell is the heaviest full-suite cell: the largest catalog app (BBC)
// under the GreenWeb-U runtime, full-interaction trace — the unit the fleet
// executes 12 apps × 4+ governors times per report.
func benchCell(tb testing.TB) Cell {
	tb.Helper()
	app, ok := apps.ByName("BBC")
	if !ok {
		tb.Fatal("BBC not in catalog")
	}
	return Cell{App: app, Kind: GreenWebU, Full: true}
}

// BenchmarkExecuteCellWarmFull measures a full-suite cell execution in the
// steady state of a sweep: page assets already parsed once by an earlier
// cell (the warm path every cell but the first takes). BENCH_PR4.json
// tracks this number.
func BenchmarkExecuteCellWarmFull(b *testing.B) {
	cell := benchCell(b)
	// Warm every layer the way a running sweep would.
	if _, err := ExecuteCell(context.Background(), cell); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ExecuteCell(context.Background(), cell); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExecuteCellColdFull measures the same cell with the asset cache
// emptied before every execution — the first-cell-of-a-sweep path, and a
// regression pin for the raw parser speed the cache sits in front of.
func BenchmarkExecuteCellColdFull(b *testing.B) {
	cell := benchCell(b)
	if _, err := ExecuteCell(context.Background(), cell); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		browser.ResetAssetCache()
		if _, err := ExecuteCell(context.Background(), cell); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	browser.ResetAssetCache()
}
