package harness

import (
	"context"
	"testing"

	"github.com/wattwiseweb/greenweb/internal/apps"
	"github.com/wattwiseweb/greenweb/internal/browser"
	"github.com/wattwiseweb/greenweb/internal/js"
	"github.com/wattwiseweb/greenweb/internal/qos"
	"github.com/wattwiseweb/greenweb/internal/replay"
	"github.com/wattwiseweb/greenweb/internal/sim"
)

// benchCell is the heaviest full-suite cell: the largest catalog app (BBC)
// under the GreenWeb-U runtime, full-interaction trace — the unit the fleet
// executes 12 apps × 4+ governors times per report.
func benchCell(tb testing.TB) Cell {
	tb.Helper()
	app, ok := apps.ByName("BBC")
	if !ok {
		tb.Fatal("BBC not in catalog")
	}
	return Cell{App: app, Kind: GreenWebU, Full: true}
}

// BenchmarkExecuteCellWarmFull measures a full-suite cell execution in the
// steady state of a sweep: page assets already parsed once by an earlier
// cell (the warm path every cell but the first takes). BENCH_PR4.json
// tracks this number.
func BenchmarkExecuteCellWarmFull(b *testing.B) {
	cell := benchCell(b)
	// Warm every layer the way a running sweep would.
	if _, err := ExecuteCell(context.Background(), cell); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ExecuteCell(context.Background(), cell); err != nil {
			b.Fatal(err)
		}
	}
}

// scriptHeavyApp models a page whose tap handler is real JavaScript — a
// hashing kernel in plain loops — rather than the catalog's work() native
// stand-in (which charges ops without interpreting anything). This is the
// workload the bytecode VM targets: interpreter time dominates the cell, so
// the VM vs -no-vm ablation below measures engine speed rather than DOM
// clone or cascade overhead. BENCH_PR7.json tracks the pair.
var scriptHeavyApp = func() *apps.App {
	const script = `
		var kernel = (function () {
			var table = [];
			for (var i = 0; i < 64; i++) { table[i] = (i * 2654435761) % 97; }
			function mix(h, v) { return (h * 31 + v) % 1000003; }
			return function (rounds) {
				var h = 17;
				for (var r = 0; r < rounds; r++) {
					for (var i = 0; i < 64; i++) { h = (h * 31 + table[i]) % 1000003; }
					h = mix(h, r);
				}
				return h;
			};
		})();
		var digest = kernel(200);
		var taps = 0;
		document.getElementById("go").addEventListener("click", function (e) {
			taps++;
			digest = kernel(700);
			document.getElementById("out").textContent = "digest " + digest + " after " + taps;
		});
	`
	const html = `<html><head><style></style></head><body>
<h1>ScriptHeavy</h1>
<div id="go">hash</div>
<div id="out">idle</div>
<script>
` + script + `
</script></body></html>`
	trace := &replay.Trace{Name: "script-heavy-taps"}
	at := sim.Second
	for i := 0; i < 10; i++ {
		trace.Append(replay.Tap(at, "go")...)
		at += 2 * sim.Second
	}
	return &apps.App{
		Name:        "ScriptHeavy",
		Domain:      "benchmark",
		Interaction: apps.Tapping,
		QoSType:     qos.Single,
		QoSTarget:   qos.SingleLongTarget,
		BaseHTML:    html,
		AnnotationCSS: `
			body:QoS { onload-qos: single, long; }
			div#go:QoS { onclick-qos: single, long; }
		`,
		Micro: trace,
		Full:  trace,
	}
}()

func benchVMAblation(b *testing.B, vm bool) {
	js.SetVM(vm)
	defer js.SetVM(true)
	// Drop assets built under the other engine setting: compiled units are
	// only attached while the VM is on, and the cache key is page source.
	browser.ResetAssetCache()
	cell := Cell{App: scriptHeavyApp, Kind: GreenWebU, Full: true}
	if _, err := ExecuteCell(context.Background(), cell); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ExecuteCell(context.Background(), cell); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	browser.ResetAssetCache()
}

// BenchmarkExecuteCellWarmScriptVM / ...NoVM are the PR 7 ablation pair: the
// same script-dominated cell on the bytecode VM and on the tree-walking
// interpreter. Their outputs are byte-identical (CI diffs the full report
// both ways); only wall-clock differs.
func BenchmarkExecuteCellWarmScriptVM(b *testing.B)   { benchVMAblation(b, true) }
func BenchmarkExecuteCellWarmScriptNoVM(b *testing.B) { benchVMAblation(b, false) }

// BenchmarkExecuteCellColdFull measures the same cell with the asset cache
// emptied before every execution — the first-cell-of-a-sweep path, and a
// regression pin for the raw parser speed the cache sits in front of.
func BenchmarkExecuteCellColdFull(b *testing.B) {
	cell := benchCell(b)
	if _, err := ExecuteCell(context.Background(), cell); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		browser.ResetAssetCache()
		if _, err := ExecuteCell(context.Background(), cell); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	browser.ResetAssetCache()
}
