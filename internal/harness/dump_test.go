package harness

import "testing"

func TestDumpAllFigures(t *testing.T) {
	if testing.Short() {
		t.Skip("full evaluation")
	}
	s := NewSuite()
	f9, err := s.Fig9()
	if err != nil {
		t.Fatal(err)
	}
	t.Log("=== Fig 9 (micro): energy% of Perf; extra viol pts ===")
	for _, r := range f9 {
		t.Logf("%-11s  I=%5.1f%%  U=%5.1f%%  violI=%+5.2f  violU=%+5.2f", r.App, r.EnergyPctI, r.EnergyPctU, r.ExtraViolI, r.ExtraViolU)
	}
	sI, sU, vI, vU := Fig9Averages(f9)
	t.Logf("AVG savings: I=%.1f%% U=%.1f%% (paper 31.9/78.0); viol I=%.2f U=%.2f (paper 1.3/1.2)", sI, sU, vI, vU)

	f10, err := s.Fig10()
	if err != nil {
		t.Fatal(err)
	}
	t.Log("=== Fig 10 (full): energy% of Perf ===")
	for _, r := range f10 {
		t.Logf("%-11s  Inter=%5.1f%%  GW-I=%5.1f%%  GW-U=%5.1f%%  violI(GW)=%+5.2f violU(GW)=%+5.2f violI(Int)=%+5.2f",
			r.App, r.InteractivePct, r.GreenWebIPct, r.GreenWebUPct, r.GreenWebViolI, r.GreenWebViolU, r.InteractiveViolI)
	}
	aI, aU, avI, avU := Fig10Averages(f10)
	t.Logf("AVG GW vs Interactive: I=%.1f%% U=%.1f%% (paper 29.2/66.0); viol I=%.2f U=%.2f (paper 0.8/0.6)", aI, aU, avI, avU)

	f12, err := s.Fig12()
	if err != nil {
		t.Fatal(err)
	}
	t.Log("=== Fig 12: switches per frame (%) ===")
	for _, r := range f12 {
		t.Logf("%-11s  I: freq=%5.1f mig=%5.1f   U: freq=%5.1f mig=%5.1f", r.App, r.FreqI, r.MigI, r.FreqU, r.MigU)
	}
}
