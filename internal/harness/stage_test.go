package harness

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"testing"

	"github.com/wattwiseweb/greenweb/internal/apps"
	"github.com/wattwiseweb/greenweb/internal/faults"
	"github.com/wattwiseweb/greenweb/internal/ledger"
)

// runFingerprint folds everything a report could print into one string:
// energies to the nanojoule, every frame's window, config and cycle counts,
// the switch statistics, and the attribution totals. Two runs with equal
// fingerprints produce byte-identical reports.
func runFingerprint(r *Run) string {
	var b strings.Builder
	fmt.Fprintf(&b, "E=%.12f T=%.12f F=%d vI=%.9f vU=%.9f sw=%+v load=%v\n",
		float64(r.Energy), float64(r.TotalEnergy), r.Frames,
		r.ViolationI, r.ViolationU, r.Switches, r.LoadLatency)
	fmt.Fprintf(&b, "frame=%.12f idle=%.12f event=%.12f stage=%.12f spans=%d\n",
		float64(r.FrameEnergy), float64(r.IdleEnergy), float64(r.EventEnergy),
		float64(r.StageEnergy), len(r.Spans))
	for _, fr := range r.FrameResults {
		fmt.Fprintf(&b, "f%d %v-%v %v mw=%d st=%d\n",
			fr.Seq, fr.Begin, fr.End, fr.Config, fr.MainWork, len(fr.Stages))
	}
	return b.String()
}

func stagedRun(t *testing.T, app *apps.App, kind Kind, workers int, spec *faults.Spec) *Run {
	t.Helper()
	ctx := WithStageWorkers(context.Background(), workers)
	run, err := ExecuteFaultedContext(ctx, app, kind, app.Micro, spec)
	if err != nil {
		t.Fatal(err)
	}
	return run
}

// TestStageWorkerDeterminism pins the pipeline's reproducibility contract at
// every supported mode: for each stage-worker count, two independent
// executions agree to the joule and the frame — including under injected
// hardware faults.
func TestStageWorkerDeterminism(t *testing.T) {
	app, ok := apps.ByName("SPA-Feed")
	if !ok {
		t.Fatal("SPA-Feed not registered")
	}
	for _, workers := range []int{1, 2, 4} {
		for _, spec := range []*faults.Spec{nil, faults.Default(7)} {
			a := stagedRun(t, app, GreenWebIStaged, workers, spec)
			b := stagedRun(t, app, GreenWebIStaged, workers, spec)
			if fa, fb := runFingerprint(a), runFingerprint(b); fa != fb {
				t.Errorf("workers=%d faulted=%v: runs diverged:\n%s\nvs\n%s",
					workers, spec != nil, fa, fb)
			}
		}
	}
}

// TestStageSerialParity: stage-worker count 1 IS the pre-staging engine —
// same code path, same measurements — and the staged governor kind
// degenerates to plain GreenWeb-I scheduling on a serial pipeline.
func TestStageSerialParity(t *testing.T) {
	for _, name := range []string{"Cnet", "SPA-Feed"} {
		app, ok := apps.ByName(name)
		if !ok {
			t.Fatalf("%s not registered", name)
		}
		// workers=1 (explicit serial) vs workers unset (default serial).
		forced := stagedRun(t, app, GreenWebI, 1, nil)
		plain, err := ExecuteContext(context.Background(), app, GreenWebI, app.Micro)
		if err != nil {
			t.Fatal(err)
		}
		if fa, fb := runFingerprint(forced), runFingerprint(plain); fa != fb {
			t.Errorf("%s: serial override diverged from default serial:\n%s\nvs\n%s", name, fa, fb)
		}
		if plain.StageEnergy != 0 {
			t.Errorf("%s: serial run attributed stage energy %v", name, plain.StageEnergy)
		}
		for _, fr := range plain.FrameResults {
			if len(fr.Stages) != 0 {
				t.Errorf("%s: serial frame %d carries stage timings", name, fr.Seq)
			}
		}
	}
}

// TestStagedFrameShape: a staged run records exactly the stage graph —
// three timings per rendered frame in dependency order with disjoint
// windows inside the frame, and the ledger's stage attribution stays within
// the frame partition.
func TestStagedFrameShape(t *testing.T) {
	app, _ := apps.ByName("SPA-Feed")
	run := stagedRun(t, app, GreenWebIStaged, 4, nil)
	staged := 0
	for _, fr := range run.FrameResults {
		if len(fr.Stages) == 0 {
			continue
		}
		staged++
		if len(fr.Stages) != 3 {
			t.Fatalf("frame %d: %d stage timings, want 3", fr.Seq, len(fr.Stages))
		}
		var critSum int64
		for s, st := range fr.Stages {
			if int(st.Stage) != s {
				t.Fatalf("frame %d: stage %d out of order (%v)", fr.Seq, s, st.Stage)
			}
			if st.CritCycles <= 0 || st.TotalCycles < st.CritCycles {
				t.Fatalf("frame %d stage %v: bad cycles crit=%d total=%d",
					fr.Seq, st.Stage, st.CritCycles, st.TotalCycles)
			}
			if st.Start < fr.Begin || st.End > fr.End || st.End < st.Start {
				t.Fatalf("frame %d stage %v: window [%v,%v] outside frame [%v,%v]",
					fr.Seq, st.Stage, st.Start, st.End, fr.Begin, fr.End)
			}
			if s > 0 && st.Start < fr.Stages[s-1].End {
				t.Fatalf("frame %d: stage %v overlaps previous", fr.Seq, st.Stage)
			}
			critSum += st.CritCycles
		}
		if critSum >= fr.MainWork {
			t.Fatalf("frame %d: critical path %d not below serial sum %d", fr.Seq, critSum, fr.MainWork)
		}
	}
	if staged == 0 {
		t.Fatal("no staged frames recorded")
	}
	if run.StageEnergy <= 0 || run.StageEnergy > run.FrameEnergy {
		t.Fatalf("stage energy %v outside (0, frame energy %v]",
			float64(run.StageEnergy), float64(run.FrameEnergy))
	}
	nStage := 0
	for _, sp := range run.Spans {
		if sp.Kind == ledger.KindStage {
			nStage++
		}
	}
	if nStage != 3*staged {
		t.Fatalf("%d stage spans for %d staged frames", nStage, staged)
	}
}

// TestStageSchedulerRace drives staged executions from concurrent
// goroutines; under -race this verifies the stage scheduler and its shared
// package state (worker defaults, obs instruments, memoized selectors) are
// race-free, and the results must still be deterministic.
func TestStageSchedulerRace(t *testing.T) {
	app, _ := apps.ByName("SPA-Board")
	const n = 4
	prints := make([]string, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ctx := WithStageWorkers(context.Background(), 4)
			run, err := ExecuteContext(ctx, app, GreenWebIStaged, app.Micro)
			if err != nil {
				t.Error(err)
				return
			}
			prints[i] = runFingerprint(run)
		}(i)
	}
	wg.Wait()
	for i := 1; i < n; i++ {
		if prints[i] != prints[0] {
			t.Fatalf("concurrent run %d diverged", i)
		}
	}
}

// TestStagedVectorEnergyAtEqualQoS: on the DOM-heavy app the per-stage
// configuration dimension recovers ladder slack — GreenWeb-I-staged spends
// no more energy than uniform GreenWeb-I on the same staged pipeline while
// meeting the same QoS.
func TestStagedVectorEnergyAtEqualQoS(t *testing.T) {
	app, _ := apps.ByName("SPA-Feed")
	ctx := WithStageWorkers(context.Background(), 4)
	uni, err := ExecuteRepeatedContext(ctx, app, GreenWebI, app.Micro, MicroRepeats)
	if err != nil {
		t.Fatal(err)
	}
	st, err := ExecuteRepeatedContext(ctx, app, GreenWebIStaged, app.Micro, MicroRepeats)
	if err != nil {
		t.Fatal(err)
	}
	if st.Energy > uni.Energy {
		t.Errorf("staged vector energy %.6f J above uniform %.6f J",
			float64(st.Energy), float64(uni.Energy))
	}
	if st.ViolationI > uni.ViolationI {
		t.Errorf("staged vector violations %.3f%% above uniform %.3f%%",
			st.ViolationI, uni.ViolationI)
	}
	if st.Frames != uni.Frames {
		t.Errorf("frame counts differ: staged %d vs uniform %d", st.Frames, uni.Frames)
	}
}
