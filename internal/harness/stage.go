package harness

import (
	"context"

	"github.com/wattwiseweb/greenweb/internal/browser"
)

// Per-run stage-worker override, carried on the context like the obs gate
// (obs.EnabledIn): fleet workers executing jobs with an explicit stage-worker
// count wrap their job context, and executeHTML applies it to the engine
// before LoadPage. Zero means "no override — use the process default".

type stageWorkersKey struct{}

// WithStageWorkers returns a context whose harness executions run with n
// stage threads (0 = defer to browser.DefaultStageWorkers, 1 = force serial
// regardless of the process default). n outside [0, browser.MaxStageWorkers]
// panics — validate external input with ValidStageWorkers first.
func WithStageWorkers(ctx context.Context, n int) context.Context {
	if n < 0 || n > browser.MaxStageWorkers {
		panic("harness: stage workers out of range")
	}
	return context.WithValue(ctx, stageWorkersKey{}, n)
}

// StageWorkersIn reports the context's stage-worker override (0 = none).
func StageWorkersIn(ctx context.Context) int {
	if n, ok := ctx.Value(stageWorkersKey{}).(int); ok {
		return n
	}
	return 0
}

// ValidStageWorkers reports whether n is an acceptable stage-worker count
// for flag and job validation.
func ValidStageWorkers(n int) bool { return n >= 0 && n <= browser.MaxStageWorkers }
