package harness

import (
	"errors"
	"testing"

	"github.com/wattwiseweb/greenweb/internal/acmp"
	"github.com/wattwiseweb/greenweb/internal/apps"
	"github.com/wattwiseweb/greenweb/internal/faults"
	"github.com/wattwiseweb/greenweb/internal/ledger"
)

// thermalOnlySpec caps the A15 cluster without any probabilistic faults, so
// energy comparisons under the cap are exact rather than statistical.
func thermalOnlySpec() *faults.Spec {
	th := acmp.DefaultThermalParams()
	return &faults.Spec{Seed: 11, Thermal: &th}
}

// TestFaultSweepGreenWebBeatsPerfUnderThermalCap is the PR's headline
// robustness claim: with the thermal governor throttling sustained peak
// residency, GreenWeb-I still spends less energy than Perf on the same
// trace — degradation is graceful, not a collapse to the baseline.
func TestFaultSweepGreenWebBeatsPerfUnderThermalCap(t *testing.T) {
	app, _ := apps.ByName("MSN")
	spec := thermalOnlySpec()

	perf, err := ExecuteFaulted(app, Perf, app.Full, spec)
	if err != nil {
		t.Fatalf("Perf: %v", err)
	}
	green, err := ExecuteFaulted(app, GreenWebI, app.Full, spec)
	if err != nil {
		t.Fatalf("GreenWeb-I: %v", err)
	}

	// Perf pins the peak, so the cap must have engaged for it.
	if perf.ThermalTrips == 0 {
		t.Fatalf("Perf never tripped the thermal governor: %+v", perf)
	}
	if green.Energy >= perf.Energy {
		t.Fatalf("GreenWeb-I %.3f J not below Perf %.3f J under a thermal cap",
			float64(green.Energy), float64(perf.Energy))
	}
	// Attribution must still balance on a faulted device (Execute enforces
	// ledger conservation internally; re-assert the split here).
	for _, r := range []*Run{perf, green} {
		if diff := r.TotalEnergy - (r.FrameEnergy + r.IdleEnergy); diff > ledger.ConservationTolerance || diff < -ledger.ConservationTolerance {
			t.Fatalf("%s: frame %.9f + idle %.9f != total %.9f", r.Kind,
				float64(r.FrameEnergy), float64(r.IdleEnergy), float64(r.TotalEnergy))
		}
	}
}

// TestFaultedRunDeterminism: one spec seed, two executions, identical
// measurements and identical fault timelines.
func TestFaultedRunDeterminism(t *testing.T) {
	app, _ := apps.ByName("Goo.ne.jp")
	spec := faults.Default(7)
	a, err := ExecuteFaulted(app, GreenWebI, app.Full, spec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ExecuteFaulted(app, GreenWebI, app.Full, spec)
	if err != nil {
		t.Fatal(err)
	}
	if a.Energy != b.Energy || a.TotalEnergy != b.TotalEnergy || a.Frames != b.Frames {
		t.Fatalf("faulted runs diverged: %.9f/%d vs %.9f/%d",
			float64(a.Energy), a.Frames, float64(b.Energy), b.Frames)
	}
	if a.ThermalTrips != b.ThermalTrips || a.DVFSDenied != b.DVFSDenied ||
		a.DVFSDelayed != b.DVFSDelayed || a.DAQDropped != b.DAQDropped {
		t.Fatalf("fault timelines diverged: %d/%d/%d/%d vs %d/%d/%d/%d",
			a.ThermalTrips, a.DVFSDenied, a.DVFSDelayed, a.DAQDropped,
			b.ThermalTrips, b.DVFSDenied, b.DVFSDelayed, b.DAQDropped)
	}
	if a.MeteredEnergy != b.MeteredEnergy || a.DAQSamples != b.DAQSamples {
		t.Fatalf("DAQ integrals diverged: %.9f/%d vs %.9f/%d",
			float64(a.MeteredEnergy), a.DAQSamples, float64(b.MeteredEnergy), b.DAQSamples)
	}
	// Dropout makes the metered integral a strict undercount.
	if a.DAQDropped == 0 {
		t.Fatal("default spec dropped no DAQ samples over a full trace")
	}
	if a.MeteredEnergy >= a.TotalEnergy {
		t.Fatalf("lossy DAQ integral %.9f J not below analytic %.9f J",
			float64(a.MeteredEnergy), float64(a.TotalEnergy))
	}
}

// TestFaultSpecSeedChangesTimeline: different seeds, different fault
// patterns (the DVFS decision streams must not collapse).
func TestFaultSpecSeedChangesTimeline(t *testing.T) {
	app, _ := apps.ByName("Goo.ne.jp")
	a, err := ExecuteFaulted(app, GreenWebI, app.Full, faults.Default(1))
	if err != nil {
		t.Fatal(err)
	}
	b, err := ExecuteFaulted(app, GreenWebI, app.Full, faults.Default(2))
	if err != nil {
		t.Fatal(err)
	}
	if a.DVFSDenied == b.DVFSDenied && a.DVFSDelayed == b.DVFSDelayed &&
		a.DAQDropped == b.DAQDropped && a.Energy == b.Energy {
		t.Fatalf("distinct fault seeds produced identical timelines: %+v", a)
	}
}

// TestNilSpecMatchesUnfaultedRun: the faulted path with no spec must be
// byte-identical to the plain path — the fault layer is pay-for-what-you-use.
func TestNilSpecMatchesUnfaultedRun(t *testing.T) {
	app, _ := apps.ByName("Todo")
	plain, err := Execute(app, GreenWebU, app.Full)
	if err != nil {
		t.Fatal(err)
	}
	faulted, err := ExecuteFaulted(app, GreenWebU, app.Full, nil)
	if err != nil {
		t.Fatal(err)
	}
	if plain.Energy != faulted.Energy || plain.TotalEnergy != faulted.TotalEnergy ||
		plain.Frames != faulted.Frames || plain.ViolationI != faulted.ViolationI {
		t.Fatalf("nil-spec run diverged from plain run: %+v vs %+v", plain, faulted)
	}
	if faulted.ThermalTrips != 0 || faulted.DVFSDenied != 0 || faulted.DAQSamples != 0 {
		t.Fatalf("nil spec produced fault counters: %+v", faulted)
	}
}

// TestFaultStormAbortsRun: a storm threshold of 1 denial fails the run with
// ErrStorm — the deterministic failing job the fleet retry tests rely on.
func TestFaultStormAbortsRun(t *testing.T) {
	app, _ := apps.ByName("Todo")
	spec := &faults.Spec{
		Seed:       3,
		DVFS:       &faults.DVFSSpec{DenyProb: 1},
		StormAbort: 1,
	}
	_, err := ExecuteFaulted(app, GreenWebI, app.Full, spec)
	if !errors.Is(err, faults.ErrStorm) {
		t.Fatalf("err = %v, want ErrStorm", err)
	}
	// Below the threshold the same pattern completes.
	spec.StormAbort = 1 << 30
	if _, err := ExecuteFaulted(app, GreenWebI, app.Full, spec); err != nil {
		t.Fatalf("sub-threshold run failed: %v", err)
	}
}

// TestFaultedRunInvalidSpecRejected: malformed specs fail before the device
// is even built.
func TestFaultedRunInvalidSpecRejected(t *testing.T) {
	app, _ := apps.ByName("Todo")
	spec := &faults.Spec{DVFS: &faults.DVFSSpec{DenyProb: 2}}
	if _, err := ExecuteFaulted(app, GreenWebI, app.Full, spec); err == nil {
		t.Fatal("invalid spec accepted")
	}
}
