package harness

import (
	"context"
	"math/rand"
	"testing"

	"github.com/wattwiseweb/greenweb/internal/acmp"
	"github.com/wattwiseweb/greenweb/internal/apps"
	"github.com/wattwiseweb/greenweb/internal/browser"
	"github.com/wattwiseweb/greenweb/internal/sim"
)

// TestRandomInputStorm fires randomized event storms — arbitrary events,
// arbitrary (sometimes nonexistent) targets, arbitrary timing — at real
// catalog applications under every governor. Nothing may panic, script
// errors may not appear, energy must accrue monotonically, and frame
// attribution invariants must hold.
func TestRandomInputStorm(t *testing.T) {
	events := []string{"click", "touchstart", "touchend", "touchmove", "scroll"}
	appNames := []string{"MSN", "Goo.ne.jp", "Todo", "Craigslist"}
	kinds := []Kind{Perf, Interactive, GreenWebI, GreenWebU, EBSKind}
	rng := rand.New(rand.NewSource(99))

	for trial := 0; trial < 8; trial++ {
		app, _ := apps.ByName(appNames[trial%len(appNames)])
		kind := kinds[trial%len(kinds)]
		s := sim.New()
		cpu := acmp.NewCPU(s, acmp.DefaultPower())
		e := browser.New(s, cpu, nil)
		gov := newGovernor(kind)
		e.SetGovernor(gov)
		if _, err := e.LoadPage(app.HTML()); err != nil {
			t.Fatal(err)
		}
		settle(context.Background(), s, e, 60*sim.Second)

		// Collect plausible and implausible targets.
		var ids []string
		for _, n := range e.Doc().Elements() {
			if id := n.ID(); id != "" {
				ids = append(ids, id)
			}
		}
		ids = append(ids, "ghost", "", "body")

		at := s.Now()
		var lastEnergy acmp.Joules
		for i := 0; i < 120; i++ {
			at = at.Add(sim.Duration(rng.Intn(30)+1) * sim.Millisecond)
			ev := events[rng.Intn(len(events))]
			target := ids[rng.Intn(len(ids))]
			var data map[string]float64
			if ev == "scroll" || ev == "touchmove" {
				data = map[string]float64{"deltaY": float64(rng.Intn(100) - 50)}
			}
			e.Inject(at, ev, target, data)
		}
		s.RunUntil(at.Add(2 * sim.Second))
		settle(context.Background(), s, e, 30*sim.Second)
		if st, ok := gov.(interface{ Stop() }); ok {
			st.Stop()
		}

		if errs := e.ScriptErrors(); len(errs) > 0 {
			t.Fatalf("trial %d (%s/%s): script errors: %v", trial, app.Name, kind, errs)
		}
		if en := cpu.Energy(); en <= lastEnergy {
			t.Fatalf("trial %d: energy did not accrue", trial)
		}
		// Attribution invariant: no input attributed more than once.
		seen := map[browser.UID]int{}
		for _, fr := range e.Results() {
			for _, il := range fr.Inputs {
				seen[il.Input.UID]++
			}
		}
		for uid, n := range seen {
			if n != 1 {
				t.Fatalf("trial %d: input %d attributed %d times", trial, uid, n)
			}
		}
		// Residency always sums to elapsed time.
		var sum sim.Duration
		for _, d := range cpu.Residency() {
			sum += d
		}
		if sum != sim.Duration(s.Now()) {
			t.Fatalf("trial %d: residency %v != elapsed %v", trial, sum, s.Now())
		}
	}
}
