package harness

import (
	"context"
	"encoding/json"
	"os"
	"testing"

	"github.com/wattwiseweb/greenweb/internal/apps"
	"github.com/wattwiseweb/greenweb/internal/sim"
)

// spaCell is the DOM-heavy staged-pipeline workload: SPA-Feed under
// GreenWeb-I, microbenchmark trace. BENCH_PR9.json tracks the serial vs
// stage-parallel pair.
func spaCell(tb testing.TB) Cell {
	tb.Helper()
	app, ok := apps.ByName("SPA-Feed")
	if !ok {
		tb.Fatal("SPA-Feed not registered")
	}
	return Cell{App: app, Kind: GreenWebI}
}

func benchWarmSPA(b *testing.B, workers int) {
	cell := spaCell(b)
	ctx := WithStageWorkers(context.Background(), workers)
	if _, err := ExecuteCell(ctx, cell); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ExecuteCell(ctx, cell); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExecuteCellWarmSPASerial: the DOM-heavy cell on the serial
// pipeline (pre-PR 9 behavior).
func BenchmarkExecuteCellWarmSPASerial(b *testing.B) { benchWarmSPA(b, 1) }

// BenchmarkExecuteCellWarmSPAStaged4: the same cell with style/layout/paint
// sharded across four stage cores.
func BenchmarkExecuteCellWarmSPAStaged4(b *testing.B) { benchWarmSPA(b, 4) }

// meanInteractionLatencyMS averages ProductionLatency over the interaction
// frames (skipping the load frame), in milliseconds of virtual time.
func meanInteractionLatencyMS(r *Run) float64 {
	var sum sim.Duration
	n := 0
	for _, fr := range r.FrameResults[1:] {
		sum += fr.ProductionLatency
		n++
	}
	if n == 0 {
		return 0
	}
	return sum.Seconds() * 1e3 / float64(n)
}

// TestPR9Metrics computes the modeled (virtual-time) numbers BENCH_PR9.json
// reports — frame-latency improvement from stage parallelism, and the
// GreenWeb-I energy at fixed QoS with and without the per-stage config
// dimension. Gated behind GREENWEB_PR9_OUT so the regular suite doesn't pay
// for it; scripts/bench.sh pr9 sets the variable and consumes the JSON.
func TestPR9Metrics(t *testing.T) {
	out := os.Getenv("GREENWEB_PR9_OUT")
	if out == "" {
		t.Skip("set GREENWEB_PR9_OUT to compute PR 9 bench metrics")
	}
	app, ok := apps.ByName("SPA-Feed")
	if !ok {
		t.Fatal("SPA-Feed not registered")
	}
	serialCtx := WithStageWorkers(context.Background(), 1)
	stagedCtx := WithStageWorkers(context.Background(), 4)

	// Modeled frame latency, serial vs staged, at the same governor.
	serial, err := ExecuteContext(serialCtx, app, GreenWebI, app.Micro)
	if err != nil {
		t.Fatal(err)
	}
	staged, err := ExecuteContext(stagedCtx, app, GreenWebI, app.Micro)
	if err != nil {
		t.Fatal(err)
	}
	serialMS := meanInteractionLatencyMS(serial)
	stagedMS := meanInteractionLatencyMS(staged)

	// Energy at fixed QoS: uniform GreenWeb-I vs the per-stage vector, both
	// on the 4-core staged pipeline, repeated-measurement protocol.
	uni, err := ExecuteRepeatedContext(stagedCtx, app, GreenWebI, app.Micro, MicroRepeats)
	if err != nil {
		t.Fatal(err)
	}
	vec, err := ExecuteRepeatedContext(stagedCtx, app, GreenWebIStaged, app.Micro, MicroRepeats)
	if err != nil {
		t.Fatal(err)
	}

	metrics := map[string]any{
		"app":                          app.Name,
		"frame_latency_serial_ms":      serialMS,
		"frame_latency_staged4_ms":     stagedMS,
		"frame_latency_improvement":    serialMS / stagedMS,
		"energy_uniform_j":             float64(uni.Energy),
		"energy_stage_vector_j":        float64(vec.Energy),
		"violation_i_uniform_pct":      uni.ViolationI,
		"violation_i_stage_vector_pct": vec.ViolationI,
		"frames_uniform":               uni.Frames,
		"frames_stage_vector":          vec.Frames,
	}
	f, err := os.Create(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(metrics); err != nil {
		t.Fatal(err)
	}

	if serialMS/stagedMS < 1.3 {
		t.Errorf("modeled frame-latency improvement %.2f× below 1.3×", serialMS/stagedMS)
	}
	if vec.Energy > uni.Energy {
		t.Errorf("stage-vector energy %.4f J above uniform %.4f J", float64(vec.Energy), float64(uni.Energy))
	}
	if vec.ViolationI > uni.ViolationI {
		t.Errorf("stage-vector violations %.3f%% above uniform %.3f%%", vec.ViolationI, uni.ViolationI)
	}
}
