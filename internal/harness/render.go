package harness

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"github.com/wattwiseweb/greenweb/internal/metrics"
)

// RenderAll regenerates every paper table and figure and writes a plain-
// text report — the data behind EXPERIMENTS.md. cmd/greenbench calls this.
func RenderAll(w io.Writer, s *Suite) error {
	fmt.Fprintln(w, "GreenWeb reproduction — paper tables and figures")
	fmt.Fprintln(w, strings.Repeat("=", 64))

	fmt.Fprintln(w, "\nTable 1 — interaction categories (QoS type × QoS target)")
	for _, c := range Table1() {
		fmt.Fprintf(w, "  %-12s  type=%-10s  TI=%-8v TU=%-8v  triggers=%s\n",
			c.Name, c.Type, c.Target.TI, c.Target.TU, c.Interactions)
	}

	fmt.Fprintln(w, "\nTable 2 — GreenWeb API rule forms")
	for i, r := range Table2() {
		fmt.Fprintf(w, "  %d. %s\n     %s\n     example: %s\n", i+1, r.Syntax, r.Semantics, r.Example)
	}

	fmt.Fprintln(w, "\nTable 3 — applications")
	t3, err := Table3()
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "  %-11s %-8s %-11s %-22s %6s %7s %10s\n",
		"App", "Micro", "QoS type", "QoS target", "Time", "Events", "Annotated")
	for _, r := range t3 {
		fmt.Fprintf(w, "  %-11s %-8s %-11s %-22s %5.0fs %7d %9.1f%%\n",
			r.App, r.Interaction, r.QoSType, r.QoSTarget, r.FullSeconds, r.FullEvents, r.AnnotatedPct)
	}

	fmt.Fprintln(w, "\nFig. 9a/9b — microbenchmarks (energy % of Perf; extra violation points)")
	f9, err := s.Fig9()
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "  %-11s %8s %8s %10s %10s\n", "App", "GW-I", "GW-U", "violI", "violU")
	for _, r := range f9 {
		fmt.Fprintf(w, "  %-11s %7.1f%% %7.1f%% %+9.2f %+9.2f\n",
			r.App, r.EnergyPctI, r.EnergyPctU, r.ExtraViolI, r.ExtraViolU)
	}
	fmt.Fprintln(w, "\n  Fig. 9a as bars (energy, % of Perf; shorter is better)")
	for _, r := range f9 {
		fmt.Fprintf(w, "  %-11s I %s\n", r.App, bar(r.EnergyPctI, 100, 40))
		fmt.Fprintf(w, "  %-11s U %s\n", "", bar(r.EnergyPctU, 100, 40))
	}
	sI, sU, vI, vU := Fig9Averages(f9)
	fmt.Fprintf(w, "  average savings: GW-I %.1f%%, GW-U %.1f%% (paper: 31.9%%, 78.0%%)\n", sI, sU)
	fmt.Fprintf(w, "  average extra violations: GW-I %.2f, GW-U %.2f points (paper: 1.3, 1.2)\n", vI, vU)

	fmt.Fprintln(w, "\nFig. 10a/b/c — full interactions (energy % of Perf; extra violation points)")
	f10, err := s.Fig10()
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "  %-11s %8s %8s %8s %9s %9s %9s\n",
		"App", "Inter", "GW-I", "GW-U", "vI(GW)", "vU(GW)", "vI(Int)")
	for _, r := range f10 {
		fmt.Fprintf(w, "  %-11s %7.1f%% %7.1f%% %7.1f%% %+8.2f %+8.2f %+8.2f\n",
			r.App, r.InteractivePct, r.GreenWebIPct, r.GreenWebUPct,
			r.GreenWebViolI, r.GreenWebViolU, r.InteractiveViolI)
	}
	aI, aU, avI, avU := Fig10Averages(f10)
	fmt.Fprintf(w, "  average savings vs Interactive: GW-I %.1f%%, GW-U %.1f%% (paper: 29.2%%, 66.0%%)\n", aI, aU)
	fmt.Fprintf(w, "  average extra violations: GW-I %.2f, GW-U %.2f points (paper: 0.8, 0.6)\n", avI, avU)
	fmt.Fprintln(w, "\n  Fig. 10a as bars (energy, % of Perf; shorter is better)")
	for _, r := range f10 {
		fmt.Fprintf(w, "  %-11s Int  %s\n", r.App, bar(r.InteractivePct, 100, 40))
		fmt.Fprintf(w, "  %-11s GW-I %s\n", "", bar(r.GreenWebIPct, 100, 40))
		fmt.Fprintf(w, "  %-11s GW-U %s\n", "", bar(r.GreenWebUPct, 100, 40))
	}

	for _, variant := range []struct {
		kind  Kind
		label string
	}{{GreenWebI, "Fig. 11a — configuration distribution, GreenWeb-I"},
		{GreenWebU, "Fig. 11b — configuration distribution, GreenWeb-U"}} {
		fmt.Fprintln(w, "\n"+variant.label)
		f11, err := s.Fig11(variant.kind)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "  %-11s %8s %8s  top configurations\n", "App", "little", "big")
		for _, r := range f11 {
			top := topShares(r, 3)
			fmt.Fprintf(w, "  %-11s %7.1f%% %7.1f%%  %s\n", r.App, r.Little*100, r.Big*100, top)
		}
	}

	fmt.Fprintln(w, "\nFig. 12 — configuration switching (per frame, %)")
	f12, err := s.Fig12()
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "  %-11s %18s %18s\n", "App", "GreenWeb-I", "GreenWeb-U")
	for _, r := range f12 {
		fmt.Fprintf(w, "  %-11s freq=%5.1f mig=%5.1f  freq=%5.1f mig=%5.1f\n",
			r.App, r.FreqI, r.MigI, r.FreqU, r.MigU)
	}

	fmt.Fprintln(w, "\nAblation — single-cluster runtimes (energy % of Perf, usable scenario)")
	abl, err := s.AblationSingleCluster()
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "  %-11s %9s %9s %11s %12s\n", "App", "ACMP", "big-only", "little-only", "lo viol(I)")
	for _, r := range abl {
		fmt.Fprintf(w, "  %-11s %8.1f%% %8.1f%% %10.1f%% %+11.2f\n",
			r.App, r.FullPct, r.BigOnlyPct, r.LittleOnlyPct, r.LittleOnlyViol)
	}

	fmt.Fprintln(w, "\nAblation — reactive vs profiling-guided predictor (GreenWeb-I)")
	pred, err := s.AblationPredictor()
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "  %-11s %16s %16s %16s\n", "App", "viol cold→train", "switches", "energy %Perf")
	for _, r := range pred {
		fmt.Fprintf(w, "  %-11s %6.2f → %-6.2f %7d → %-6d %6.1f%% → %-5.1f%%\n",
			r.App, r.ColdViol, r.TrainedViol, r.ColdSwitches, r.TrainedSwitches, r.ColdPct, r.TrainedPct)
	}

	fmt.Fprintln(w, "\nMulti-application environment (Sec. 8) — GreenWeb-I with a background app")
	bg, err := s.ExperimentBackground("MSN", "Amazon", "W3Schools")
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "  %-11s %24s %26s\n", "App", "extra viol (I)", "interaction energy")
	for _, r := range bg {
		fmt.Fprintf(w, "  %-11s solo=%+6.2f loaded=%+6.2f   solo=%6.2fJ loaded=%6.2fJ\n",
			r.App, r.SoloViolI, r.LoadedViolI, r.SoloEnergy, r.LoadedEnergy)
	}

	fmt.Fprintln(w, "\nComparison — manual vs AUTOGREEN annotations (GreenWeb-I)")
	ag, err := s.ComparisonAutoGreen()
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "  %-11s %22s %22s %9s\n", "App", "energy %Perf", "extra viol (I)", "findings")
	for _, r := range ag {
		fmt.Fprintf(w, "  %-11s man=%6.1f%% auto=%6.1f%%  man=%+6.2f auto=%+7.2f %8d\n",
			r.App, r.ManualPct, r.AutoPct, r.ManualViol, r.AutoViol, r.Findings)
	}

	fmt.Fprintln(w, "\nComparison — EBS (annotation-free, Sec. 9) vs GreenWeb-I")
	ebs, err := s.ComparisonEBS()
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "  %-11s %18s %22s\n", "App", "extra viol (I)", "energy %Perf")
	for _, r := range ebs {
		fmt.Fprintf(w, "  %-11s EBS=%+6.2f GW=%+6.2f   EBS=%6.1f%% GW=%6.1f%%\n",
			r.App, r.EBSViol, r.GreenWebViol, r.EBSPct, r.GreenWebPct)
	}
	return nil
}

// bar renders value (against scale) as a fixed-width ASCII bar with the
// numeric value appended.
func bar(value, scale float64, width int) string {
	if value < 0 {
		value = 0
	}
	n := int(value/scale*float64(width) + 0.5)
	if n > width {
		n = width
	}
	return fmt.Sprintf("%-*s %5.1f%%", width, strings.Repeat("█", n), value)
}

func topShares(r Fig11Row, n int) string {
	shares := append([]metrics.ConfigShare(nil), r.Shares...)
	sort.Slice(shares, func(i, j int) bool { return shares[i].Share > shares[j].Share })
	if len(shares) > n {
		shares = shares[:n]
	}
	parts := make([]string, len(shares))
	for i, s := range shares {
		parts[i] = fmt.Sprintf("%s %.0f%%", s.Config, s.Share*100)
	}
	return strings.Join(parts, ", ")
}
