package harness

import (
	"context"
	"fmt"

	"github.com/wattwiseweb/greenweb/internal/acmp"
	"github.com/wattwiseweb/greenweb/internal/apps"
	"github.com/wattwiseweb/greenweb/internal/browser"
	"github.com/wattwiseweb/greenweb/internal/metrics"
	"github.com/wattwiseweb/greenweb/internal/qos"
	"github.com/wattwiseweb/greenweb/internal/sim"
)

// BackgroundLoad describes a concurrent application occupying CPU
// resources, the multi-application environment of paper Sec. 8: a sync
// service or music player periodically burning cycles on its own core
// while the foreground Web application runs.
type BackgroundLoad struct {
	Period sim.Duration
	Work   acmp.Work
}

// DefaultBackgroundLoad models a moderate background service: ~2M big-core
// cycles every 50 ms (≈2% utilization at peak, ≈20% at the little floor).
func DefaultBackgroundLoad() BackgroundLoad {
	return BackgroundLoad{
		Period: 50 * sim.Millisecond,
		Work:   acmp.CPUWork(2_000_000),
	}
}

// startBackground drives the load on its own thread until stop is called.
func startBackground(s *sim.Simulator, cpu *acmp.CPU, load BackgroundLoad) (stop func()) {
	th := cpu.NewThread("background-app")
	stopped := false
	var tick func()
	tick = func() {
		if stopped {
			return
		}
		th.Submit(load.Work, nil)
		s.After(load.Period, "background:tick", tick)
	}
	s.After(load.Period, "background:tick", tick)
	return func() { stopped = true }
}

// ExecuteWithBackground runs a full interaction with a background
// application sharing the SoC.
func ExecuteWithBackground(app *apps.App, kind Kind, load BackgroundLoad) (*Run, error) {
	s := sim.New()
	cpu := acmp.NewCPU(s, acmp.DefaultPower())
	e := browser.New(s, cpu, nil)
	gov := newGovernor(kind)
	e.SetGovernor(gov)
	if _, err := e.LoadPage(app.HTML()); err != nil {
		return nil, fmt.Errorf("harness: %s/%s: %w", app.Name, kind, err)
	}
	colI := metrics.NewCollector(e, qos.Imperceptible)
	colU := metrics.NewCollector(e, qos.Usable)
	stopBg := startBackground(s, cpu, load)

	run := &Run{App: app, Kind: kind}
	if err := settle(context.Background(), s, e, 60*sim.Second); err != nil {
		return nil, err
	}
	e0 := cpu.Energy()
	f0 := len(e.Results())
	t0 := s.Now().Add(100 * sim.Millisecond)
	app.Full.Replay(e, t0)
	s.RunUntil(t0.Add(app.Full.Duration()))
	// The background pump never quiesces; run a fixed post-trace tail.
	s.RunUntil(s.Now().Add(2 * sim.Second))
	stopBg()
	if st, ok := gov.(interface{ Stop() }); ok {
		st.Stop()
	}
	run.Energy = cpu.Energy() - e0
	run.Frames = len(e.Results()) - f0
	run.Switches = cpu.Stats()
	run.Residency = cpu.Residency()
	run.ViolationI = metrics.GeoMeanPct(violationsOf(colI, t0))
	run.ViolationU = metrics.GeoMeanPct(violationsOf(colU, t0))
	run.TotalEnergy = cpu.Energy()
	if errs := e.ScriptErrors(); len(errs) > 0 {
		return nil, fmt.Errorf("harness: %s/%s: script errors: %v", app.Name, kind, errs[0])
	}
	return run, nil
}

// BackgroundRow compares a GreenWeb run with and without the background
// application.
type BackgroundRow struct {
	App          string
	SoloViolI    float64
	LoadedViolI  float64
	SoloEnergy   float64 // joules
	LoadedEnergy float64
}

// ExperimentVariation reproduces the paper's measurement-noise statement
// ("we find the run-to-run variations are usually about 5%, and do not
// affect our conclusions"): the simulation itself is exact, so the noise
// source is reintroduced by jittering input timings (finger timing is the
// dominant variability under record/replay). It returns each jittered
// run's energy and the maximum relative deviation from their mean.
func ExperimentVariation(appName string, kind Kind, runs int, jitter sim.Duration) (energies []float64, maxDevPct float64, err error) {
	app, ok := apps.ByName(appName)
	if !ok {
		return nil, 0, fmt.Errorf("harness: unknown app %q", appName)
	}
	for i := 0; i < runs; i++ {
		// The repetition index seeds the jitter; Jitter mixes in the
		// trace's intrinsic seed, so each app gets its own noise stream.
		trace := app.Full.Jitter(int64(i)+1, jitter)
		run, err := Execute(app, kind, trace)
		if err != nil {
			return nil, 0, err
		}
		energies = append(energies, float64(run.Energy))
	}
	mean := 0.0
	for _, e := range energies {
		mean += e
	}
	mean /= float64(len(energies))
	for _, e := range energies {
		dev := (e - mean) / mean * 100
		if dev < 0 {
			dev = -dev
		}
		if dev > maxDevPct {
			maxDevPct = dev
		}
	}
	return energies, maxDevPct, nil
}

// ExperimentBackground exercises the paper's Sec. 8 claim that the
// ACMP-based runtime remains applicable when other applications consume
// CPU: the foreground's QoS must hold (ample cores; only the shared DVFS
// domain couples them), with the background's energy added on top.
func (s *Suite) ExperimentBackground(appNames ...string) ([]BackgroundRow, error) {
	var cells []Cell
	for _, name := range appNames {
		if app, ok := apps.ByName(name); ok {
			cells = append(cells, Cell{App: app, Kind: GreenWebI, Full: true})
		}
	}
	if err := s.prefetch(cells); err != nil {
		return nil, err
	}
	var rows []BackgroundRow
	for _, name := range appNames {
		app, ok := apps.ByName(name)
		if !ok {
			return nil, fmt.Errorf("harness: unknown app %q", name)
		}
		solo, err := s.Full(app, GreenWebI)
		if err != nil {
			return nil, err
		}
		loaded, err := ExecuteWithBackground(app, GreenWebI, DefaultBackgroundLoad())
		if err != nil {
			return nil, err
		}
		rows = append(rows, BackgroundRow{
			App:          app.Name,
			SoloViolI:    solo.ViolationI,
			LoadedViolI:  loaded.ViolationI,
			SoloEnergy:   float64(solo.Energy),
			LoadedEnergy: float64(loaded.Energy),
		})
	}
	return rows, nil
}
