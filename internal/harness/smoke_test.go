package harness

import (
	"testing"
	"time"

	"github.com/wattwiseweb/greenweb/internal/apps"
)

// TestSmokeSingleApp checks one app across all four evaluated governors and
// logs wall-clock cost, guarding against simulation blowups.
func TestSmokeSingleApp(t *testing.T) {
	app, _ := apps.ByName("MSN")
	for _, kind := range []Kind{Perf, Interactive, GreenWebI, GreenWebU} {
		start := time.Now()
		r, err := Execute(app, kind, app.Full)
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		wall := time.Since(start)
		t.Logf("%s (wall %v)", r, wall)
		if r.Energy <= 0 || r.Frames <= 0 {
			t.Fatalf("%s: empty measurement: %+v", kind, r)
		}
		if wall > 30*time.Second {
			t.Fatalf("%s: run took %v wall-clock; simulation blowup", kind, wall)
		}
	}
}

// BenchmarkFullInteractionMSN measures one complete evaluation run: load,
// 126-event trace, GreenWeb-I scheduling, metrics.
func BenchmarkFullInteractionMSN(b *testing.B) {
	app, _ := apps.ByName("MSN")
	for i := 0; i < b.N; i++ {
		if _, err := Execute(app, GreenWebI, app.Full); err != nil {
			b.Fatal(err)
		}
	}
}
