package harness

import (
	"context"
	"math"
	"reflect"
	"testing"

	"github.com/wattwiseweb/greenweb/internal/apps"
	"github.com/wattwiseweb/greenweb/internal/ledger"
	"github.com/wattwiseweb/greenweb/internal/obs"
)

// The decision log is a pure projection of the ledger: across one full app
// run the per-decision energies must sum to the ledger's frame-energy total
// to within ledger.ConservationTolerance (1e-9 J), and the live recorder
// must agree exactly with re-deriving the log from the run's spans.
func TestDecisionEnergyMatchesLedger(t *testing.T) {
	for _, kind := range []Kind{Perf, GreenWebI, GreenWebU} {
		kind := kind
		t.Run(string(kind), func(t *testing.T) {
			app, ok := apps.ByName("Todo")
			if !ok {
				t.Fatal("Todo app missing")
			}
			run, err := Execute(app, kind, app.Full)
			if err != nil {
				t.Fatal(err)
			}
			if len(run.Decisions) == 0 {
				t.Fatal("no decisions recorded with obs enabled")
			}
			var sum float64
			for _, d := range run.Decisions {
				sum += d.EnergyJ
			}
			if diff := math.Abs(sum - float64(run.FrameEnergy)); diff > ledger.ConservationTolerance {
				t.Errorf("Σ decision energy = %v J, frame energy = %v J (|diff| %g > %g)",
					sum, float64(run.FrameEnergy), diff, ledger.ConservationTolerance)
			}
			if !reflect.DeepEqual(run.Decisions, obs.DecisionsOf(run.Spans)) {
				t.Error("live recorder log disagrees with the span projection")
			}
		})
	}
}

// Disabling obs via the context must only suppress the decision log — every
// simulated measurement stays identical (the observability layer is
// out-of-band by construction).
func TestObsDisabledIsOutOfBand(t *testing.T) {
	app, ok := apps.ByName("Todo")
	if !ok {
		t.Fatal("Todo app missing")
	}
	on, err := ExecuteContext(context.Background(), app, GreenWebU, app.Full)
	if err != nil {
		t.Fatal(err)
	}
	off, err := ExecuteContext(obs.ContextWithObs(context.Background(), false), app, GreenWebU, app.Full)
	if err != nil {
		t.Fatal(err)
	}
	if len(on.Decisions) == 0 {
		t.Error("obs-on run recorded no decisions")
	}
	if len(off.Decisions) != 0 {
		t.Error("obs-off run recorded decisions")
	}
	onCopy, offCopy := *on, *off
	onCopy.Decisions, offCopy.Decisions = nil, nil
	if !reflect.DeepEqual(&onCopy, &offCopy) {
		t.Error("obs-on and obs-off runs diverge beyond the decision log")
	}
}
