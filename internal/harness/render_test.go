package harness

import (
	"strings"
	"testing"
)

// TestRenderAllReport exercises the full report pipeline (what
// cmd/greenbench prints) and checks every table and figure section is
// present with plausible content. It reuses the shared suite's cached runs.
func TestRenderAllReport(t *testing.T) {
	var b strings.Builder
	if err := RenderAll(&b, shared); err != nil {
		t.Fatal(err)
	}
	report := b.String()

	sections := []string{
		"Table 1 — interaction categories",
		"Table 2 — GreenWeb API rule forms",
		"Table 3 — applications",
		"Fig. 9a/9b — microbenchmarks",
		"Fig. 10a/b/c — full interactions",
		"Fig. 11a — configuration distribution, GreenWeb-I",
		"Fig. 11b — configuration distribution, GreenWeb-U",
		"Fig. 12 — configuration switching",
		"Ablation — single-cluster runtimes",
		"Ablation — reactive vs profiling-guided predictor",
		"Comparison — manual vs AUTOGREEN annotations",
		"Comparison — EBS",
	}
	for _, s := range sections {
		if !strings.Contains(report, s) {
			t.Errorf("report missing section %q", s)
		}
	}
	// Every application appears.
	for _, app := range []string{"BBC", "Google", "CamanJS", "LZMA-JS", "MSN", "Todo",
		"Amazon", "Craigslist", "Paper.js", "Cnet", "Goo.ne.jp", "W3Schools"} {
		if strings.Count(report, app) < 5 {
			t.Errorf("app %s appears fewer than 5 times", app)
		}
	}
	// Paper reference numbers are cited next to ours.
	for _, ref := range []string{"31.9%", "78.0%", "29.2%", "66.0%"} {
		if !strings.Contains(report, ref) {
			t.Errorf("report missing paper reference %s", ref)
		}
	}
	if len(report) < 4000 {
		t.Fatalf("report suspiciously short: %d bytes", len(report))
	}
}
