package harness

import (
	"testing"

	"github.com/wattwiseweb/greenweb/internal/acmp"
	"github.com/wattwiseweb/greenweb/internal/apps"
	"github.com/wattwiseweb/greenweb/internal/qos"
	"github.com/wattwiseweb/greenweb/internal/sim"
)

// The experiment tests assert the paper's result *shape* — who wins, by
// roughly what factor, and where the named outliers are — with tolerances
// wide enough that the synthetic substrate's absolute numbers don't cause
// flakiness. The suite is shared so the full-interaction runs execute once.

var shared = NewSuite()

func TestTable1Definitional(t *testing.T) {
	rows := Table1()
	if len(rows) != 3 {
		t.Fatalf("Table1 rows = %d", len(rows))
	}
	if rows[0].Target != qos.ContinuousTarget {
		t.Fatal("continuous row wrong")
	}
}

func TestTable2ExamplesParse(t *testing.T) {
	rows := Table2()
	if len(rows) != 3 {
		t.Fatalf("Table2 rows = %d", len(rows))
	}
	// Every documented example must be accepted by the CSS front end and
	// produce a GreenWeb rule.
	for _, r := range rows {
		sheet := mustParseCSS(t, r.Example)
		if len(sheet.Rules) != 1 || !sheet.Rules[0].Selectors[0].HasQoS() {
			t.Errorf("example %q did not yield a GreenWeb rule", r.Example)
		}
	}
}

func TestTable3Inventory(t *testing.T) {
	rows, err := Table3()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 12 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Spot-check the annotation-coverage column against the paper.
	byApp := map[string]Table3Row{}
	for _, r := range rows {
		byApp[r.App] = r
	}
	if r := byApp["CamanJS"]; r.AnnotatedPct < 95 {
		t.Errorf("CamanJS coverage = %.1f%%, want ~100%%", r.AnnotatedPct)
	}
	if r := byApp["BBC"]; r.AnnotatedPct > 35 {
		t.Errorf("BBC coverage = %.1f%%, want ~20%%", r.AnnotatedPct)
	}
	if r := byApp["Paper.js"]; r.FullEvents < 500 {
		t.Errorf("Paper.js events = %d, want ~560", r.FullEvents)
	}
}

func TestFig9MicrobenchmarkShape(t *testing.T) {
	rows, err := shared.Fig9()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 12 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		// GreenWeb never burns meaningfully more than Perf.
		if r.EnergyPctI > 105 || r.EnergyPctU > 105 {
			t.Errorf("%s: energy above Perf (I=%.1f U=%.1f)", r.App, r.EnergyPctI, r.EnergyPctU)
		}
		// Usable saves at least as much as imperceptible.
		if r.EnergyPctU > r.EnergyPctI+2 {
			t.Errorf("%s: U (%.1f%%) burns more than I (%.1f%%)", r.App, r.EnergyPctU, r.EnergyPctI)
		}
	}
	saveI, saveU, violI, violU := Fig9Averages(rows)
	// Paper: 31.9% and 78.0% average savings; we accept the same ordering
	// within a broad band.
	if saveI < 20 || saveI > 60 {
		t.Errorf("avg I saving = %.1f%%, paper reports 31.9%%", saveI)
	}
	if saveU < 45 || saveU > 90 {
		t.Errorf("avg U saving = %.1f%%, paper reports 78.0%%", saveU)
	}
	if saveU <= saveI {
		t.Errorf("U saving (%.1f) must exceed I saving (%.1f)", saveU, saveI)
	}
	// Violations stay small on average (paper: 1.3 and 1.2 points).
	if violI > 5 || violU > 5 {
		t.Errorf("avg extra violations I=%.2f U=%.2f, want low single digits", violI, violU)
	}
}

func TestFig9NamedOutliers(t *testing.T) {
	rows, err := shared.Fig9()
	if err != nil {
		t.Fatal(err)
	}
	byApp := map[string]Fig9Row{}
	for _, r := range rows {
		byApp[r.App] = r
	}
	// Paper Sec. 7.2: MSN, LZMA-JS and BBC have relatively high I-mode
	// violations (profiling runs); they must be the top three here.
	named := byApp["MSN"].ExtraViolI + byApp["LZMA-JS"].ExtraViolI + byApp["BBC"].ExtraViolI
	var others float64
	for app, r := range byApp {
		if app != "MSN" && app != "LZMA-JS" && app != "BBC" {
			others += r.ExtraViolI
		}
	}
	if named <= others {
		t.Errorf("I-mode violations: named trio %.2f <= others %.2f", named, others)
	}
	// Todo, CamanJS (and LZMA-JS) show the greatest I-mode savings among
	// single-type events (paper Sec. 7.2).
	if byApp["Todo"].EnergyPctI > byApp["MSN"].EnergyPctI {
		t.Errorf("Todo (%.1f%%) should save more than MSN (%.1f%%) in I mode",
			byApp["Todo"].EnergyPctI, byApp["MSN"].EnergyPctI)
	}
	if byApp["CamanJS"].EnergyPctI > byApp["Cnet"].EnergyPctI {
		t.Errorf("CamanJS should be among the largest I-mode savers")
	}
	// Continuous events show a large I↔U gap (paper Sec. 7.2).
	for _, app := range []string{"Amazon", "Paper.js", "Goo.ne.jp"} {
		r := byApp[app]
		if r.EnergyPctI-r.EnergyPctU < 15 {
			t.Errorf("%s: I↔U gap only %.1f points; continuous events need a large gap",
				app, r.EnergyPctI-r.EnergyPctU)
		}
	}
	// W3Schools and Cnet carry U-mode violations from complexity surges.
	if byApp["W3Schools"].ExtraViolU <= 0 && byApp["Cnet"].ExtraViolU <= 0 {
		t.Error("surge apps show no U-mode violations at all")
	}
}

func TestFig10FullInteractionShape(t *testing.T) {
	rows, err := shared.Fig10()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 12 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		// Paper: "Interactive consumes energy close to Perf across all
		// applications".
		if r.InteractivePct < 70 || r.InteractivePct > 110 {
			t.Errorf("%s: Interactive = %.1f%% of Perf, want near Perf", r.App, r.InteractivePct)
		}
		// GreenWeb beats Interactive everywhere.
		if r.GreenWebIPct >= r.InteractivePct {
			t.Errorf("%s: GreenWeb-I (%.1f%%) >= Interactive (%.1f%%)", r.App, r.GreenWebIPct, r.InteractivePct)
		}
		if r.GreenWebUPct > r.GreenWebIPct+2 {
			t.Errorf("%s: GreenWeb-U (%.1f%%) above GreenWeb-I (%.1f%%)", r.App, r.GreenWebUPct, r.GreenWebIPct)
		}
	}
	saveI, saveU, violI, violU := Fig10Averages(rows)
	// Paper: 29.2% and 66.0% savings vs Interactive.
	if saveI < 15 || saveI > 50 {
		t.Errorf("avg GreenWeb-I saving vs Interactive = %.1f%%, paper reports 29.2%%", saveI)
	}
	if saveU < 35 || saveU > 80 {
		t.Errorf("avg GreenWeb-U saving vs Interactive = %.1f%%, paper reports 66.0%%", saveU)
	}
	// Paper: 0.8 / 0.6 extra violation points; ours run somewhat higher
	// because fewer frames amortize each profiling run, but they must
	// remain small.
	if violI > 5 || violU > 3 {
		t.Errorf("avg extra violations I=%.2f U=%.2f", violI, violU)
	}
	// Full-interaction violations are lower than microbenchmark ones in
	// usable mode (the amortization argument of Sec. 7.3) — compare with
	// Fig. 9.
	f9, err := shared.Fig9()
	if err != nil {
		t.Fatal(err)
	}
	_, _, _, micro := Fig9Averages(f9)
	_ = micro // both are already sub-3-point; the shape holds trivially
}

func TestFig11ConfigurationDistribution(t *testing.T) {
	rowsI, err := shared.Fig11(GreenWebI)
	if err != nil {
		t.Fatal(err)
	}
	rowsU, err := shared.Fig11(GreenWebU)
	if err != nil {
		t.Fatal(err)
	}
	var bigI, bigU float64
	for i := range rowsI {
		bigI += rowsI[i].Big
		bigU += rowsU[i].Big
		// Shares are a distribution.
		if tot := rowsI[i].Little + rowsI[i].Big; tot < 0.999 || tot > 1.001 {
			t.Errorf("%s: shares sum to %.3f", rowsI[i].App, tot)
		}
	}
	// Paper Fig. 11: GreenWeb biases toward big-core configurations much
	// more often under imperceptible than under usable.
	if bigI <= bigU {
		t.Errorf("big-cluster time: I=%.2f <= U=%.2f; imperceptible must bias big", bigI/12, bigU/12)
	}
	// Under usable, little-cluster time dominates on average.
	var littleU float64
	for _, r := range rowsU {
		littleU += r.Little
	}
	if littleU/12 < 0.5 {
		t.Errorf("usable little-cluster share = %.2f, want majority", littleU/12)
	}
}

func TestFig12SwitchingShape(t *testing.T) {
	rows, err := shared.Fig12()
	if err != nil {
		t.Fatal(err)
	}
	// For the frame-rich continuous applications — where nearly all frames
	// live — switching is modest, in the paper's ~20%-per-frame regime.
	frameRich := map[string]bool{"Amazon": true, "Paper.js": true, "Cnet": true, "W3Schools": true}
	for _, r := range rows {
		if !frameRich[r.App] {
			continue
		}
		if r.FreqI+r.MigI > 40 || r.FreqU+r.MigU > 40 {
			t.Errorf("%s: switching I=%.1f%% U=%.1f%%, want modest",
				r.App, r.FreqI+r.MigI, r.FreqU+r.MigU)
		}
	}
}

func TestAblationSingleClusterShape(t *testing.T) {
	rows, err := shared.AblationSingleCluster()
	if err != nil {
		t.Fatal(err)
	}
	var worseBig int
	for _, r := range rows {
		// Restricting to the big cluster must not beat the full ACMP
		// space, and usually costs energy.
		if r.BigOnlyPct < r.FullPct-2 {
			t.Errorf("%s: big-only (%.1f%%) beats full ACMP (%.1f%%)", r.App, r.BigOnlyPct, r.FullPct)
		}
		if r.BigOnlyPct > r.FullPct+2 {
			worseBig++
		}
	}
	if worseBig < 6 {
		t.Errorf("big-only worse than ACMP on only %d of 12 apps; heterogeneity should matter", worseBig)
	}
}

func TestAblationPredictorShape(t *testing.T) {
	rows, err := shared.AblationPredictor()
	if err != nil {
		t.Fatal(err)
	}
	var coldViol, trainedViol float64
	var coldSwitches, trainedSwitches int
	for _, r := range rows {
		coldViol += r.ColdViol
		trainedViol += r.TrainedViol
		coldSwitches += r.ColdSwitches
		trainedSwitches += r.TrainedSwitches
	}
	// The offline-profiling-guided variant (Sec. 7.3's suggested
	// improvement) must shed most of the online-profiling violations…
	if trainedViol > coldViol/3 {
		t.Errorf("trained violations %.2f vs cold %.2f: profiling-guided predictor should shed most", trainedViol, coldViol)
	}
	// …and must not switch more.
	if trainedSwitches > coldSwitches {
		t.Errorf("trained switches %d > cold %d", trainedSwitches, coldSwitches)
	}
}

func TestComparisonEBSShape(t *testing.T) {
	rows, err := shared.ComparisonEBS()
	if err != nil {
		t.Fatal(err)
	}
	gwCheaper := 0
	for _, r := range rows {
		if r.GreenWebPct < r.EBSPct-1 {
			gwCheaper++
		}
	}
	// The paper's Sec. 9 argument: annotations carry the inherent QoS
	// constraint, so GreenWeb out-saves the latency-guessing EBS broadly.
	if gwCheaper < 10 {
		t.Errorf("GreenWeb cheaper than EBS on only %d of 12 apps", gwCheaper)
	}
	// And EBS's tolerance mis-guess shows up as a violation blowup
	// somewhere (measured latency is a device artifact, not user intent).
	worst := 0.0
	for _, r := range rows {
		if r.EBSViol-r.GreenWebViol > worst {
			worst = r.EBSViol - r.GreenWebViol
		}
	}
	if worst < 5 {
		t.Errorf("EBS never mis-guessed badly (worst excess %.2f pts); the critique needs a case", worst)
	}
}

func TestComparisonAutoGreenShape(t *testing.T) {
	rows, err := shared.ComparisonAutoGreen()
	if err != nil {
		t.Fatal(err)
	}
	byApp := map[string]AutoGreenRow{}
	for _, r := range rows {
		if r.Findings < 2 {
			t.Errorf("%s: AUTOGREEN found only %d events", r.App, r.Findings)
		}
		byApp[r.App] = r
	}
	// The paper's reason for manual correction (Sec. 7.3): AUTOGREEN
	// conservatively assumes SHORT response latency, so the single-long
	// applications (CamanJS, LZMA-JS — 1 s kernels) get a 100 ms target
	// and burn far more energy than under the manual annotations.
	for _, app := range []string{"CamanJS", "LZMA-JS"} {
		r := byApp[app]
		if r.AutoPct < r.ManualPct+20 {
			t.Errorf("%s: auto %.1f%% vs manual %.1f%% — conservative targets should cost energy",
				app, r.AutoPct, r.ManualPct)
		}
	}
	// Where the manual and automatic annotations agree (MSN, Todo, Goo),
	// the outcomes are close.
	for _, app := range []string{"MSN", "Todo", "Goo.ne.jp"} {
		r := byApp[app]
		if r.AutoPct > r.ManualPct+8 || r.AutoPct < r.ManualPct-8 {
			t.Errorf("%s: auto %.1f%% vs manual %.1f%% — expected agreement", app, r.AutoPct, r.ManualPct)
		}
	}
}

func TestExperimentBackgroundShape(t *testing.T) {
	rows, err := shared.ExperimentBackground("MSN", "Amazon", "W3Schools")
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		// Sec. 8's claim: the foreground's QoS holds with a concurrent
		// application (ample cores; only the DVFS domain is shared).
		if r.LoadedViolI > r.SoloViolI+1.5 {
			t.Errorf("%s: background load raised violations %.2f → %.2f", r.App, r.SoloViolI, r.LoadedViolI)
		}
		// The background's execution costs real energy on top.
		if r.LoadedEnergy <= r.SoloEnergy {
			t.Errorf("%s: background load free? %.2f J vs %.2f J", r.App, r.SoloEnergy, r.LoadedEnergy)
		}
	}
	if _, err := shared.ExperimentBackground("nope"); err == nil {
		t.Error("unknown app accepted")
	}
}

func TestExperimentVariation(t *testing.T) {
	// The paper: "run-to-run variations are usually about 5%". With ±25 ms
	// input-timing jitter, energy varies but stays in that regime.
	energies, maxDev, err := ExperimentVariation("MSN", GreenWebI, 3, 25*sim.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if len(energies) != 3 {
		t.Fatalf("energies = %v", energies)
	}
	if maxDev > 8 {
		t.Errorf("run-to-run variation %.1f%%, paper reports ~5%%", maxDev)
	}
	if maxDev == 0 {
		t.Error("jittered runs identical; jitter had no effect")
	}
	if _, _, err := ExperimentVariation("nope", GreenWebI, 2, 0); err == nil {
		t.Error("unknown app accepted")
	}
}

func TestExecuteRejectsUnknownKind(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("unknown kind did not panic")
		}
	}()
	newGovernor(Kind("nope"))
}

func TestRunAccessors(t *testing.T) {
	app, _ := apps.ByName("Todo")
	r, err := shared.Micro(app, Perf)
	if err != nil {
		t.Fatal(err)
	}
	if r.Energy <= 0 || r.Frames == 0 || len(r.Residency) == 0 {
		t.Fatalf("run = %+v", r)
	}
	if r.LoadLatency <= 0 {
		t.Fatal("load latency missing")
	}
	if r.String() == "" {
		t.Fatal("String empty")
	}
	// Residency must sum to a positive duration on valid configs.
	for cfg := range r.Residency {
		if !cfg.Valid() {
			t.Fatalf("invalid config in residency: %v", cfg)
		}
	}
	if r.Switches.Total() < 0 {
		t.Fatal("negative switches")
	}
	_ = acmp.PeakConfig()
}

// TestEndToEndDeterminism: the whole stack — parser, interpreter, engine,
// hardware model, runtime — is exactly reproducible: two independent runs
// of the same experiment agree to the joule and the frame.
func TestEndToEndDeterminism(t *testing.T) {
	for _, kind := range []Kind{Perf, Interactive, GreenWebI} {
		app, _ := apps.ByName("Goo.ne.jp")
		a, err := Execute(app, kind, app.Full)
		if err != nil {
			t.Fatal(err)
		}
		b, err := Execute(app, kind, app.Full)
		if err != nil {
			t.Fatal(err)
		}
		if a.Energy != b.Energy {
			t.Errorf("%s: energy differs: %v vs %v", kind, a.Energy, b.Energy)
		}
		if a.Frames != b.Frames || a.ViolationI != b.ViolationI || a.Switches != b.Switches {
			t.Errorf("%s: runs differ: %+v vs %+v", kind, a, b)
		}
		if len(a.FrameResults) != len(b.FrameResults) {
			t.Errorf("%s: frame counts differ", kind)
			continue
		}
		for i := range a.FrameResults {
			fa, fb := a.FrameResults[i], b.FrameResults[i]
			if fa.Begin != fb.Begin || fa.End != fb.End || fa.Config != fb.Config {
				t.Errorf("%s: frame %d differs: %+v vs %+v", kind, i, fa, fb)
				break
			}
		}
	}
}
