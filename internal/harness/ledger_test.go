package harness

import (
	"bytes"
	"encoding/json"
	"math"
	"testing"

	"github.com/wattwiseweb/greenweb/internal/apps"
	"github.com/wattwiseweb/greenweb/internal/ledger"
)

// TestLedgerConservationFullSweep is the acceptance check for the energy-
// attribution ledger: across the full Table 3 sweep (every application under
// the paper's two baselines and both GreenWeb scenarios), the frame+idle
// span energies must sum to the meter integral within the conservation
// tolerance, and the span timeline must be structurally sound. Execute
// already fails any run whose ledger misaccounts; this test additionally
// cross-checks the exported summary against the raw spans.
func TestLedgerConservationFullSweep(t *testing.T) {
	kinds := []Kind{Perf, Interactive, GreenWebI, GreenWebU}
	for _, app := range apps.All() {
		for _, kind := range kinds {
			app, kind := app, kind
			t.Run(app.Name+"/"+string(kind), func(t *testing.T) {
				t.Parallel()
				run, err := Execute(app, kind, app.Full)
				if err != nil {
					t.Fatal(err)
				}
				if len(run.Spans) == 0 {
					t.Fatal("run produced no spans")
				}

				// Summary columns must re-derive from the raw spans and
				// partition the whole-run meter integral.
				var frame, idle, event float64
				committed := 0
				for _, sp := range run.Spans {
					switch sp.Kind {
					case ledger.KindFrame:
						frame += float64(sp.Energy)
						if sp.Seq > 0 {
							committed++
						}
					case ledger.KindIdle:
						idle += float64(sp.Energy)
					case ledger.KindEvent:
						event += float64(sp.Energy)
					}
					if sp.End < sp.Start || sp.Energy < 0 {
						t.Fatalf("malformed span: %+v", sp)
					}
				}
				if d := math.Abs(frame + idle - float64(run.TotalEnergy)); d > ledger.ConservationTolerance {
					t.Errorf("spans sum to %.12f J, meter integral %.12f J (|Δ|=%.3e)",
						frame+idle, float64(run.TotalEnergy), d)
				}
				if d := math.Abs(frame - float64(run.FrameEnergy)); d > ledger.ConservationTolerance {
					t.Errorf("FrameEnergy=%v disagrees with span sum %v", run.FrameEnergy, frame)
				}
				if d := math.Abs(event - float64(run.EventEnergy)); d > ledger.ConservationTolerance {
					t.Errorf("EventEnergy=%v disagrees with span sum %v", run.EventEnergy, event)
				}
				if committed != len(run.FrameResults) {
					t.Errorf("%d committed frame spans, %d frames in the timeline", committed, len(run.FrameResults))
				}
				if frame <= 0 {
					t.Error("no energy attributed to frames")
				}
			})
		}
	}
}

// TestRunTraceExport checks that a real run's spans export as valid Chrome
// trace-event JSON (what greenbench -trace and the greensrv trace endpoint
// serve).
func TestRunTraceExport(t *testing.T) {
	app := apps.All()[0]
	run, err := Execute(app, GreenWebU, app.Full)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	proc := ledger.Process{PID: 1, Name: app.Name, Spans: run.Spans, Marks: run.ConfigMarks}
	if err := ledger.WriteTrace(&buf, proc); err != nil {
		t.Fatal(err)
	}
	var tf struct {
		TraceEvents []struct {
			Ph  string `json:"ph"`
			TS  int64  `json:"ts"`
			Dur int64  `json:"dur"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &tf); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	var complete int
	for _, ev := range tf.TraceEvents {
		if ev.Ph == "X" {
			complete++
			if ev.Dur < 0 || ev.TS < 0 {
				t.Errorf("malformed complete event: %+v", ev)
			}
		}
	}
	// Each span is one complete event, plus one nested "decide:" event per
	// frame span carrying a governor decision.
	want := len(run.Spans)
	var decided int
	for _, sp := range run.Spans {
		if sp.Kind == ledger.KindFrame && sp.Attrs["decision"] != "" {
			want++
			decided++
		}
	}
	if complete != want {
		t.Errorf("trace has %d complete events for %d spans + %d decisions", complete, len(run.Spans), decided)
	}
	if decided == 0 {
		t.Error("GreenWeb-U run exported no nested decision spans")
	}
}

// TestGreenWebRunAnnotatesSpans checks that the runtime's scheduling
// decisions reach the frame spans: a GreenWeb run must carry governor
// annotations on at least one frame.
func TestGreenWebRunAnnotatesSpans(t *testing.T) {
	app := apps.All()[0]
	run, err := Execute(app, GreenWebU, app.Full)
	if err != nil {
		t.Fatal(err)
	}
	var annotated, withOutcome int
	for _, sp := range run.Spans {
		if sp.Kind != ledger.KindFrame {
			continue
		}
		if sp.Attrs["governor"] == "GreenWeb-U" {
			annotated++
		}
		if sp.Attrs["outcome"] != "" {
			withOutcome++
		}
	}
	if annotated == 0 {
		t.Error("no frame spans carry governor annotations")
	}
	if withOutcome == 0 {
		t.Error("no frame spans carry feedback outcomes")
	}
}
