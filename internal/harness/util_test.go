package harness

import (
	"testing"

	"github.com/wattwiseweb/greenweb/internal/css"
)

func mustParseCSS(t *testing.T, src string) *css.Stylesheet {
	t.Helper()
	sheet, errs := css.Parse(src)
	if len(errs) > 0 {
		t.Fatalf("css parse: %v", errs)
	}
	return sheet
}
