// Package harness drives the paper's experiments end to end: it loads each
// Table 3 application into the simulated browser under a chosen governor,
// replays the interaction trace, and extracts the quantities each table and
// figure reports. Every figure/table of the evaluation section has a
// generator here (see experiments.go); cmd/greenbench and the repository's
// benchmark suite call them.
package harness

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"github.com/wattwiseweb/greenweb/internal/acmp"
	"github.com/wattwiseweb/greenweb/internal/apps"
	"github.com/wattwiseweb/greenweb/internal/browser"
	"github.com/wattwiseweb/greenweb/internal/core"
	"github.com/wattwiseweb/greenweb/internal/faults"
	"github.com/wattwiseweb/greenweb/internal/governor"
	"github.com/wattwiseweb/greenweb/internal/ledger"
	"github.com/wattwiseweb/greenweb/internal/metrics"
	"github.com/wattwiseweb/greenweb/internal/obs"
	"github.com/wattwiseweb/greenweb/internal/qos"
	"github.com/wattwiseweb/greenweb/internal/replay"
	"github.com/wattwiseweb/greenweb/internal/sim"
)

// Process-wide harness counters.
var (
	obsRuns = obs.Default().CounterVec("greenweb_harness_runs_total",
		"Completed measured executions by governor kind", "governor")
	obsThermalTrips = obs.Default().CounterVec("greenweb_faults_injections_total",
		"Injected faults by kind across all runs", "kind").With("thermal_trip")
)

// Kind names the schedulers under evaluation.
type Kind string

// The evaluated governors: the paper's two baselines, the two GreenWeb
// scenarios, and extra reference points used by the ablation benches.
const (
	Perf        Kind = "Perf"
	Interactive Kind = "Interactive"
	Ondemand    Kind = "Ondemand"
	Powersave   Kind = "Powersave"
	GreenWebI   Kind = "GreenWeb-I"
	GreenWebU   Kind = "GreenWeb-U"
	// GreenWebIStaged is GreenWeb-I with the per-stage configuration
	// dimension enabled: on a staged engine the runtime assigns each render
	// phase its own configuration (core.StageVector), spending DVFS-ladder
	// quantization slack phase by phase. On a serial engine it degenerates
	// to GreenWeb-I scheduling.
	GreenWebIStaged Kind = "GreenWeb-I-staged"
	// Single-cluster ablation variants (paper Sec. 10's alternative).
	GreenWebUBigOnly    Kind = "GreenWeb-U-bigonly"
	GreenWebULittleOnly Kind = "GreenWeb-U-littleonly"
	GreenWebILittleOnly Kind = "GreenWeb-I-littleonly"
	// EBS is the annotation-free event-based scheduler the paper contrasts
	// with in Sec. 9 (related work).
	EBSKind Kind = "EBS"
)

// Kinds returns every governor kind Execute accepts, in evaluation order.
func Kinds() []Kind {
	return []Kind{
		Perf, Interactive, Ondemand, Powersave,
		GreenWebI, GreenWebU, GreenWebIStaged,
		GreenWebUBigOnly, GreenWebULittleOnly, GreenWebILittleOnly,
		EBSKind,
	}
}

// ParseKind resolves a kind name case-insensitively, so callers accepting
// external input (the job server, CLI flags) can validate before Execute —
// which panics on unknown kinds — ever runs.
func ParseKind(name string) (Kind, error) {
	for _, k := range Kinds() {
		if strings.EqualFold(name, string(k)) {
			return k, nil
		}
	}
	return "", fmt.Errorf("harness: unknown governor kind %q", name)
}

// newGovernor builds a fresh governor instance.
func newGovernor(kind Kind) browser.Governor {
	switch kind {
	case Perf:
		return governor.NewPerf()
	case Interactive:
		return governor.NewInteractive(governor.DefaultInteractiveParams())
	case Ondemand:
		return governor.NewOndemand()
	case Powersave:
		return governor.NewPowersave()
	case GreenWebI:
		return core.New(core.DefaultOptions(qos.Imperceptible))
	case GreenWebU:
		return core.New(core.DefaultOptions(qos.Usable))
	case GreenWebIStaged:
		o := core.DefaultOptions(qos.Imperceptible)
		o.StageAware = true
		return core.New(o)
	case GreenWebUBigOnly:
		o := core.DefaultOptions(qos.Usable)
		o.BigOnly = true
		return core.New(o)
	case GreenWebULittleOnly:
		o := core.DefaultOptions(qos.Usable)
		o.LittleOnly = true
		return core.New(o)
	case GreenWebILittleOnly:
		o := core.DefaultOptions(qos.Imperceptible)
		o.LittleOnly = true
		return core.New(o)
	case EBSKind:
		return governor.NewEBS()
	default:
		panic(fmt.Sprintf("harness: unknown governor kind %q", kind))
	}
}

// Run is one measured (application, governor, trace) execution.
type Run struct {
	App  *apps.App
	Kind Kind

	// Interaction-phase measurements (excluding page load, except for
	// loading microbenchmarks where the load IS the interaction).
	Energy    acmp.Joules
	Frames    int
	Switches  acmp.SwitchStats
	Residency map[acmp.Config]sim.Duration
	// ViolationI/U are geomean violation percentages judged against the
	// imperceptible and usable deadlines respectively.
	ViolationI float64
	ViolationU float64

	// Whole-run totals (including load), for reference.
	TotalEnergy acmp.Joules

	// LoadLatency is the first-meaningful-frame latency.
	LoadLatency sim.Duration

	// FrameResults is the full frame timeline (including the load frame),
	// for timeline export and detailed inspection.
	FrameResults []browser.FrameResult

	// Energy attribution from the per-frame/per-event ledger, over the whole
	// run including load. FrameEnergy + IdleEnergy equals TotalEnergy within
	// ledger.ConservationTolerance — the harness verifies this after every
	// run. EventEnergy sums the input→completion overlays, which may
	// double-count overlapping events.
	FrameEnergy acmp.Joules
	IdleEnergy  acmp.Joules
	EventEnergy acmp.Joules
	// StageEnergy sums the per-stage overlay spans of staged frame
	// production (zero on a serial run). Stage windows nest inside frame
	// windows, so StageEnergy ≤ FrameEnergy always.
	StageEnergy acmp.Joules
	// Spans is the full attribution timeline, for trace export.
	Spans []ledger.Span
	// ConfigMarks is the configuration-change history, for trace export.
	ConfigMarks []ledger.ConfigMark

	// Decisions is the per-frame decision log recorded live by the obs
	// tracer as each frame span closed — one entry per frame span, in
	// production order. Empty when observability is disabled for the run's
	// context (obs.EnabledIn); everything else in Run is unaffected either
	// way, which CI enforces byte-for-byte.
	Decisions []obs.Decision

	// Fault-adversity observability, all zero on an unfaulted run: injected
	// hardware faults the device absorbed (thermal trips, denied/delayed
	// DVFS transitions, dropped DAQ samples) and the runtime's degradation
	// decisions in response (sweep results clamped to the thermal ceiling,
	// Perf-within-cap fallbacks, recoveries back to model control).
	ThermalTrips int
	DVFSDenied   int
	DVFSDelayed  int
	DAQSamples   int
	DAQDropped   int
	// MeteredEnergy is the (lossy) DAQ integral over the whole run; only
	// populated when the fault spec samples the DAQ. Compare against
	// TotalEnergy to see what dropout cost the measurement.
	MeteredEnergy acmp.Joules
	CapClamps     int
	Degradations  int
	Recoveries    int
}

// settle advances the simulation until the engine is quiescent, cap elapses,
// or ctx is cancelled (governor timers may keep the event queue non-empty
// forever, so quiescence is polled, not inferred from queue drain).
func settle(ctx context.Context, s *sim.Simulator, e *browser.Engine, cap sim.Duration) error {
	deadline := s.Now().Add(cap)
	for s.Now() < deadline {
		if err := ctx.Err(); err != nil {
			return err
		}
		s.RunUntil(s.Now().Add(20 * sim.Millisecond))
		if e.Quiescent() && !e.CPU().Busy() {
			return nil
		}
	}
	return ctx.Err()
}

// runUntil advances the simulation to deadline in small chunks, checking ctx
// between chunks so a fleet worker can abandon a runaway cell mid-replay.
func runUntil(ctx context.Context, s *sim.Simulator, deadline sim.Time) error {
	const chunk = 100 * sim.Millisecond
	for s.Now() < deadline {
		if err := ctx.Err(); err != nil {
			return err
		}
		next := s.Now().Add(chunk)
		if next > deadline {
			next = deadline
		}
		s.RunUntil(next)
	}
	return ctx.Err()
}

// subtractResidency computes the per-config residency accrued between two
// snapshots.
func subtractResidency(after, before map[acmp.Config]sim.Duration) map[acmp.Config]sim.Duration {
	out := make(map[acmp.Config]sim.Duration, len(after))
	for cfg, d := range after {
		if delta := d - before[cfg]; delta > 0 {
			out[cfg] = delta
		}
	}
	return out
}

// Execute runs one (app, governor, trace) combination cold and measures
// it. A nil or empty trace measures the loading phase itself (the loading
// microbenchmark).
func Execute(app *apps.App, kind Kind, trace *replay.Trace) (*Run, error) {
	return ExecuteContext(context.Background(), app, kind, trace)
}

// ExecuteContext is Execute with cancellation: the simulation is abandoned
// at the next scheduling chunk once ctx is done, and the ctx error is
// returned wrapped (errors.Is-able against context.Canceled /
// DeadlineExceeded). Fleet workers use this for per-job timeouts.
func ExecuteContext(ctx context.Context, app *apps.App, kind Kind, trace *replay.Trace) (*Run, error) {
	run, _, err := executeSeeded(ctx, app, kind, trace, nil, nil)
	return run, err
}

// ExecuteFaulted is Execute on a faulted device: spec's adversities (thermal
// throttling, DVFS transition failures, DAQ dropout) are injected with a
// fault pattern seeded by spec.Seed mixed with the trace's intrinsic seed,
// so each cell's faults are stable across repetitions, machines, and fleet
// worker counts. A nil or empty spec degenerates to Execute exactly.
func ExecuteFaulted(app *apps.App, kind Kind, trace *replay.Trace, spec *faults.Spec) (*Run, error) {
	return ExecuteFaultedContext(context.Background(), app, kind, trace, spec)
}

// ExecuteFaultedContext is ExecuteFaulted with cancellation.
func ExecuteFaultedContext(ctx context.Context, app *apps.App, kind Kind, trace *replay.Trace, spec *faults.Spec) (*Run, error) {
	run, _, err := executeSeeded(ctx, app, kind, trace, nil, spec)
	return run, err
}

// ExecuteRepeated reproduces the paper's measurement protocol ("we repeat
// every experiment 3 times ... the results we report are the median"): the
// experiment runs n times on a runtime whose per-class models persist
// across repetitions, as they do on a device. Energy is the median run's;
// violations are averaged across repetitions, so the profiling runs'
// violations (the paper's MSN/LZMA-JS/BBC story) remain visible.
func ExecuteRepeated(app *apps.App, kind Kind, trace *replay.Trace, n int) (*Run, error) {
	return ExecuteRepeatedContext(context.Background(), app, kind, trace, n)
}

// ExecuteRepeatedContext is ExecuteRepeated with cancellation (see
// ExecuteContext).
func ExecuteRepeatedContext(ctx context.Context, app *apps.App, kind Kind, trace *replay.Trace, n int) (*Run, error) {
	return ExecuteFaultedRepeatedContext(ctx, app, kind, trace, n, nil)
}

// ExecuteFaultedRepeatedContext is ExecuteRepeatedContext on a faulted
// device (see ExecuteFaulted). Every repetition replays the identical fault
// pattern: the injector is a pure function of (spec seed, trace seed,
// virtual time), and each repetition restarts virtual time.
func ExecuteFaultedRepeatedContext(ctx context.Context, app *apps.App, kind Kind, trace *replay.Trace, n int, spec *faults.Spec) (*Run, error) {
	if n < 1 {
		n = 1
	}
	var runs []*Run
	var models map[string]*core.Model
	for i := 0; i < n; i++ {
		run, trained, err := executeSeeded(ctx, app, kind, trace, models, spec)
		if err != nil {
			return nil, err
		}
		if trained != nil {
			models = trained
		}
		runs = append(runs, run)
	}
	byEnergy := append([]*Run(nil), runs...)
	sort.Slice(byEnergy, func(i, j int) bool { return byEnergy[i].Energy < byEnergy[j].Energy })
	med := byEnergy[len(byEnergy)/2]
	var vi, vu []float64
	for _, r := range runs {
		vi = append(vi, r.ViolationI)
		vu = append(vu, r.ViolationU)
	}
	med.ViolationI = metrics.Mean(vi)
	med.ViolationU = metrics.Mean(vu)
	return med, nil
}

func executeSeeded(ctx context.Context, app *apps.App, kind Kind, trace *replay.Trace, seed map[string]*core.Model, spec *faults.Spec) (*Run, map[string]*core.Model, error) {
	return executeHTML(ctx, app, app.HTML(), kind, trace, seed, spec)
}

// executeHTML runs an explicit page source (e.g. an AUTOGREEN-annotated
// variant of an application) through the same measurement pipeline.
func executeHTML(ctx context.Context, app *apps.App, html string, kind Kind, trace *replay.Trace, seed map[string]*core.Model, spec *faults.Spec) (*Run, map[string]*core.Model, error) {
	s := sim.New()
	cpu := acmp.NewCPU(s, acmp.DefaultPower())
	var inj *faults.Injector
	var daq *acmp.DAQ
	if spec.Enabled() || (spec != nil && spec.StormAbort > 0) {
		if err := spec.Validate(); err != nil {
			return nil, nil, fmt.Errorf("harness: %s/%s: %w", app.Name, kind, err)
		}
		var traceSeed int64
		if trace != nil {
			traceSeed = trace.Seed()
		}
		inj = spec.NewInjector(traceSeed)
		inj.Attach(cpu)
		if spec.DAQ != nil {
			daq = acmp.NewDAQ(s, sim.Millisecond, cpu.Power)
			inj.AttachDAQ(daq)
		}
	}
	e := browser.New(s, cpu, nil)
	// Stage-worker configuration must precede LoadPage (stage threads feed
	// the idle-power model): a per-run context override wins, else the
	// process-wide default (CLI flags). Zero/one leaves the engine serial.
	if n := StageWorkersIn(ctx); n > 0 {
		e.SetStageWorkers(n)
	} else if n := browser.DefaultStageWorkers(); n > 0 {
		e.SetStageWorkers(n)
	}
	led := ledger.New(cpu)
	e.SetLedger(led)
	// Decision-level tracing rides the ledger out-of-band: a nil recorder
	// costs one pointer compare per frame, a live one copies the already-
	// closed span. Gated per context so greensrv/greenbench -no-obs runs
	// skip even that.
	var rec *obs.Recorder
	if obs.EnabledIn(ctx) {
		rec = obs.NewRecorder(0)
		e.SetTracer(rec)
	}
	gov := newGovernor(kind)
	var rt *core.Runtime
	if r, ok := gov.(*core.Runtime); ok {
		rt = r
		if seed != nil {
			rt.ImportModels(seed)
		}
	}
	e.SetGovernor(gov)
	if _, err := e.LoadPage(html); err != nil {
		return nil, nil, fmt.Errorf("harness: %s/%s: %w", app.Name, kind, err)
	}
	colI := metrics.NewCollector(e, qos.Imperceptible)
	colU := metrics.NewCollector(e, qos.Usable)

	run := &Run{App: app, Kind: kind}

	// Phase 1: load.
	if err := settle(ctx, s, e, 60*sim.Second); err != nil {
		return nil, nil, fmt.Errorf("harness: %s/%s: %w", app.Name, kind, err)
	}
	if frames := e.Results(); len(frames) > 0 && len(frames[0].Inputs) > 0 {
		run.LoadLatency = frames[0].Inputs[0].Latency
	}

	loadOnly := trace == nil || trace.Events() == 0
	e0 := cpu.Energy()
	res0 := cpu.Residency()
	sw0 := cpu.Stats()
	f0 := len(e.Results())
	t0 := s.Now().Add(100 * sim.Millisecond)

	// Phase 2: interaction.
	if !loadOnly {
		trace.Replay(e, t0)
		if err := runUntil(ctx, s, t0.Add(trace.Duration())); err != nil {
			return nil, nil, fmt.Errorf("harness: %s/%s: %w", app.Name, kind, err)
		}
		if err := settle(ctx, s, e, 60*sim.Second); err != nil {
			return nil, nil, fmt.Errorf("harness: %s/%s: %w", app.Name, kind, err)
		}
	}

	if st, ok := gov.(interface{ Stop() }); ok {
		st.Stop()
	}

	// Fault storm: a cell whose DVFS denial count reached the threshold is a
	// failed job (deterministically — the pattern is a pure function of the
	// seeds), exercising the fleet's retry and quarantine machinery.
	if inj != nil {
		if lim := inj.StormAbort(); lim > 0 && cpu.FaultStats().Denied >= lim {
			return nil, nil, fmt.Errorf("harness: %s/%s: %w (%d DVFS transitions denied)",
				app.Name, kind, faults.ErrStorm, cpu.FaultStats().Denied)
		}
	}

	if loadOnly {
		// The loading microbenchmark: the whole run is the measurement.
		run.Energy = cpu.Energy()
		run.Residency = cpu.Residency()
		run.Switches = cpu.Stats()
		run.Frames = len(e.Results())
		run.ViolationI = metrics.GeoMeanPct(violationsOf(colI, 0))
		run.ViolationU = metrics.GeoMeanPct(violationsOf(colU, 0))
	} else {
		run.Energy = cpu.Energy() - e0
		run.Residency = subtractResidency(cpu.Residency(), res0)
		st := cpu.Stats()
		run.Switches = acmp.SwitchStats{
			FreqSwitches: st.FreqSwitches - sw0.FreqSwitches,
			Migrations:   st.Migrations - sw0.Migrations,
		}
		run.Frames = len(e.Results()) - f0
		run.ViolationI = metrics.GeoMeanPct(violationsOf(colI, t0))
		run.ViolationU = metrics.GeoMeanPct(violationsOf(colU, t0))
	}
	run.TotalEnergy = cpu.Energy()
	run.FrameResults = e.Results()
	// Close out the attribution ledger and enforce conservation: every joule
	// the meter integrated must appear in exactly one frame/idle span, so an
	// attribution bug fails the run instead of silently skewing the numbers.
	led.Finish()
	if err := led.Check(); err != nil {
		return nil, nil, fmt.Errorf("harness: %s/%s: %w", app.Name, kind, err)
	}
	run.FrameEnergy, run.IdleEnergy, run.EventEnergy = led.Summary()
	run.StageEnergy = led.StageEnergy()
	run.Spans = led.Spans()
	run.ConfigMarks = led.Marks()
	run.Decisions = rec.Decisions()
	if daq != nil {
		daq.Stop()
		run.DAQSamples, run.DAQDropped, run.MeteredEnergy = daq.Samples(), daq.Dropped(), daq.Energy()
	}
	if inj != nil {
		fs := cpu.FaultStats()
		run.ThermalTrips, run.DVFSDenied, run.DVFSDelayed = fs.Trips, fs.Denied, fs.Delayed
		obsThermalTrips.Add(int64(fs.Trips))
	}
	if rt != nil {
		st := rt.Stats()
		run.CapClamps, run.Degradations, run.Recoveries = st.CapClamps, st.Degradations, st.Recoveries
	}
	if errs := e.ScriptErrors(); len(errs) > 0 {
		return nil, nil, fmt.Errorf("harness: %s/%s: script errors: %v", app.Name, kind, errs[0])
	}
	var trained map[string]*core.Model
	if rt != nil {
		trained = rt.ExportModels()
	}
	obsRuns.With(string(kind)).Inc()
	return run, trained, nil
}

// violationsOf extracts violation percentages for frames completing at or
// after start.
func violationsOf(c *metrics.Collector, start sim.Time) []float64 {
	out := make([]float64, 0, len(c.Frames))
	for _, f := range c.Frames {
		if f.Frame.End >= start {
			out = append(out, f.Pct)
		}
	}
	return out
}

// Suite memoizes runs so the figure generators can share them (Fig. 10a/b/c,
// 11, and 12 all consume the same full-interaction executions).
type Suite struct {
	micro map[string]*Run
	full  map[string]*Run
	pre   Prefetcher
}

// NewSuite returns an empty result cache.
func NewSuite() *Suite {
	return &Suite{micro: make(map[string]*Run), full: make(map[string]*Run)}
}

// Cell names one memoizable suite execution: an application under a
// governor, either the full interaction or the repeated microbenchmark.
type Cell struct {
	App  *apps.App
	Kind Kind
	Full bool
}

// ExecuteCell runs the cell exactly as the suite's lazy path would: full
// cells are single cold runs; micro cells follow the paper's repeated-
// measurement protocol. Fleet workers call this, so a prefetched run is
// bit-identical to the one a sequential Suite would have computed.
func ExecuteCell(ctx context.Context, c Cell) (*Run, error) {
	if c.Full {
		return ExecuteContext(ctx, c.App, c.Kind, c.App.Full)
	}
	return ExecuteRepeatedContext(ctx, c.App, c.Kind, c.App.Micro, MicroRepeats)
}

// Prefetcher bulk-computes cells (typically concurrently, via the fleet)
// before the suite's generators read them sequentially. Implementations
// must compute each cell with ExecuteCell semantics.
type Prefetcher interface {
	Prefetch(cells []Cell) (map[Cell]*Run, error)
}

// SetPrefetcher installs a bulk executor. Generators then fan their cell
// working set out through it and read the memoized results in deterministic
// sequential order; without one, cells compute lazily as before.
func (s *Suite) SetPrefetcher(p Prefetcher) { s.pre = p }

// prefetch computes the cells missing from the caches through the installed
// prefetcher. A no-op without one.
func (s *Suite) prefetch(cells []Cell) error {
	if s.pre == nil {
		return nil
	}
	var missing []Cell
	for _, c := range cells {
		cache := s.micro
		if c.Full {
			cache = s.full
		}
		if _, ok := cache[s.key(c.App, c.Kind)]; !ok {
			missing = append(missing, c)
		}
	}
	if len(missing) == 0 {
		return nil
	}
	got, err := s.pre.Prefetch(missing)
	if err != nil {
		return err
	}
	for c, r := range got {
		if c.Full {
			s.full[s.key(c.App, c.Kind)] = r
		} else {
			s.micro[s.key(c.App, c.Kind)] = r
		}
	}
	return nil
}

// cellsFor builds the cross product all the generators iterate: every
// Table 3 application under each of the given kinds.
func cellsFor(full bool, kinds ...Kind) []Cell {
	var out []Cell
	for _, a := range apps.All() {
		for _, k := range kinds {
			out = append(out, Cell{App: a, Kind: k, Full: full})
		}
	}
	return out
}

func (s *Suite) key(app *apps.App, kind Kind) string { return app.Name + "|" + string(kind) }

// MicroRepeats is the paper's repetition count per experiment.
const MicroRepeats = 3

// Micro returns (running and caching) the microbenchmark execution, using
// the repeated-measurement protocol.
func (s *Suite) Micro(app *apps.App, kind Kind) (*Run, error) {
	k := s.key(app, kind)
	if r, ok := s.micro[k]; ok {
		return r, nil
	}
	r, err := ExecuteCell(context.Background(), Cell{App: app, Kind: kind})
	if err != nil {
		return nil, err
	}
	s.micro[k] = r
	return r, nil
}

// Full returns (running and caching) the full-interaction execution.
func (s *Suite) Full(app *apps.App, kind Kind) (*Run, error) {
	k := s.key(app, kind)
	if r, ok := s.full[k]; ok {
		return r, nil
	}
	r, err := ExecuteCell(context.Background(), Cell{App: app, Kind: kind, Full: true})
	if err != nil {
		return nil, err
	}
	s.full[k] = r
	return r, nil
}
