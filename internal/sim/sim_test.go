package sim

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
	"time"
)

func TestClockStartsAtZero(t *testing.T) {
	s := New()
	if s.Now() != 0 {
		t.Fatalf("Now() = %v, want 0", s.Now())
	}
}

func TestAfterAdvancesClock(t *testing.T) {
	s := New()
	var fired Time = -1
	s.After(5*Millisecond, "tick", func() { fired = s.Now() })
	s.Run()
	if fired != Time(5*Millisecond) {
		t.Fatalf("event fired at %v, want 5ms", fired)
	}
	if s.Now() != Time(5*Millisecond) {
		t.Fatalf("clock at %v after run, want 5ms", s.Now())
	}
}

func TestEventsFireInTimeOrder(t *testing.T) {
	s := New()
	var order []int
	s.After(30*Millisecond, "c", func() { order = append(order, 3) })
	s.After(10*Millisecond, "a", func() { order = append(order, 1) })
	s.After(20*Millisecond, "b", func() { order = append(order, 2) })
	s.Run()
	for i, v := range order {
		if v != i+1 {
			t.Fatalf("order = %v, want [1 2 3]", order)
		}
	}
}

func TestSameInstantFIFO(t *testing.T) {
	s := New()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		s.After(Millisecond, "e", func() { order = append(order, i) })
	}
	s.Run()
	if len(order) != 10 {
		t.Fatalf("fired %d events, want 10", len(order))
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("same-instant order = %v, want FIFO", order)
		}
	}
}

func TestImmediatelyRunsAfterCurrentInstant(t *testing.T) {
	s := New()
	var order []string
	s.After(Millisecond, "outer", func() {
		s.Immediately("inner", func() { order = append(order, "inner") })
		order = append(order, "outer")
	})
	s.After(Millisecond, "peer", func() { order = append(order, "peer") })
	s.Run()
	want := []string{"outer", "peer", "inner"}
	if len(order) != 3 || order[0] != want[0] || order[1] != want[1] || order[2] != want[2] {
		t.Fatalf("order = %v, want %v", order, want)
	}
}

func TestCancelPreventsFiring(t *testing.T) {
	s := New()
	fired := false
	e := s.After(Millisecond, "x", func() { fired = true })
	e.Cancel()
	s.Run()
	if fired {
		t.Fatal("cancelled event fired")
	}
	if !e.Cancelled() {
		t.Fatal("Cancelled() = false after Cancel")
	}
}

func TestCancelAfterFireIsNoop(t *testing.T) {
	s := New()
	n := 0
	e := s.After(Millisecond, "x", func() { n++ })
	s.Run()
	e.Cancel() // must not panic or affect anything
	if n != 1 {
		t.Fatalf("fired %d times, want 1", n)
	}
}

func TestSchedulingInPastPanics(t *testing.T) {
	s := New()
	s.After(10*Millisecond, "late", func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		s.At(Time(Millisecond), "past", func() {})
	})
	s.Run()
}

func TestNegativeDelayPanics(t *testing.T) {
	s := New()
	defer func() {
		if recover() == nil {
			t.Error("negative delay did not panic")
		}
	}()
	s.After(-1, "neg", func() {})
}

func TestRunUntilStopsAtDeadline(t *testing.T) {
	s := New()
	var fired []Time
	for i := 1; i <= 5; i++ {
		d := Duration(i) * 10 * Millisecond
		s.After(d, "t", func() { fired = append(fired, s.Now()) })
	}
	s.RunUntil(Time(25 * Millisecond))
	if len(fired) != 2 {
		t.Fatalf("fired %d events by 25ms, want 2", len(fired))
	}
	if s.Now() != Time(25*Millisecond) {
		t.Fatalf("clock = %v, want 25ms", s.Now())
	}
	s.Run()
	if len(fired) != 5 {
		t.Fatalf("fired %d events total, want 5", len(fired))
	}
}

func TestRunUntilAdvancesClockWhenQueueEmpty(t *testing.T) {
	s := New()
	s.RunUntil(Time(Second))
	if s.Now() != Time(Second) {
		t.Fatalf("clock = %v, want 1s", s.Now())
	}
}

func TestRunForIsRelative(t *testing.T) {
	s := New()
	s.RunFor(100 * Millisecond)
	s.RunFor(100 * Millisecond)
	if s.Now() != Time(200*Millisecond) {
		t.Fatalf("clock = %v, want 200ms", s.Now())
	}
}

func TestStopHaltsRun(t *testing.T) {
	s := New()
	n := 0
	for i := 0; i < 10; i++ {
		s.After(Duration(i+1)*Millisecond, "e", func() {
			n++
			if n == 3 {
				s.Stop()
			}
		})
	}
	s.Run()
	if n != 3 {
		t.Fatalf("fired %d events before stop, want 3", n)
	}
	s.Run() // resumes
	if n != 10 {
		t.Fatalf("fired %d events total, want 10", n)
	}
}

func TestNextEventAt(t *testing.T) {
	s := New()
	if s.NextEventAt() != Forever {
		t.Fatalf("NextEventAt on empty queue = %v, want Forever", s.NextEventAt())
	}
	e := s.After(7*Millisecond, "a", func() {})
	s.After(9*Millisecond, "b", func() {})
	if s.NextEventAt() != Time(7*Millisecond) {
		t.Fatalf("NextEventAt = %v, want 7ms", s.NextEventAt())
	}
	e.Cancel()
	if s.NextEventAt() != Time(9*Millisecond) {
		t.Fatalf("NextEventAt after cancel = %v, want 9ms", s.NextEventAt())
	}
}

func TestEventAccessors(t *testing.T) {
	s := New()
	e := s.After(3*Millisecond, "label", func() {})
	if e.Name() != "label" {
		t.Fatalf("Name = %q", e.Name())
	}
	if e.At() != Time(3*Millisecond) {
		t.Fatalf("At = %v", e.At())
	}
}

func TestDurationConversions(t *testing.T) {
	if FromStd(3*time.Millisecond) != 3*Millisecond {
		t.Fatal("FromStd wrong")
	}
	if (2 * Millisecond).Std() != 2*time.Millisecond {
		t.Fatal("Std wrong")
	}
	if got := (1500 * Millisecond).Seconds(); got != 1.5 {
		t.Fatalf("Seconds = %v", got)
	}
	if got := (Second + 500*Millisecond).Milliseconds(); got != 1500 {
		t.Fatalf("Milliseconds = %v", got)
	}
	if got := Time(2 * Second).Seconds(); got != 2 {
		t.Fatalf("Time.Seconds = %v", got)
	}
	if Forever.String() != "forever" {
		t.Fatalf("Forever.String = %q", Forever.String())
	}
	if (5 * Millisecond).String() != "5ms" {
		t.Fatalf("Duration.String = %q", (5 * Millisecond).String())
	}
}

func TestTimeArithmetic(t *testing.T) {
	a := Time(10 * Millisecond)
	b := a.Add(5 * Millisecond)
	if b != Time(15*Millisecond) {
		t.Fatalf("Add = %v", b)
	}
	if b.Sub(a) != 5*Millisecond {
		t.Fatalf("Sub = %v", b.Sub(a))
	}
}

// Property: for any set of delays, events fire in nondecreasing time order
// and the fired count matches the scheduled count.
func TestPropertyEventOrdering(t *testing.T) {
	f := func(delays []uint16) bool {
		s := New()
		var fireTimes []Time
		for _, d := range delays {
			s.After(Duration(d), "e", func() { fireTimes = append(fireTimes, s.Now()) })
		}
		s.Run()
		if len(fireTimes) != len(delays) {
			return false
		}
		return sort.SliceIsSorted(fireTimes, func(i, j int) bool { return fireTimes[i] < fireTimes[j] })
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: interleaving scheduling during execution preserves ordering.
func TestPropertyNestedScheduling(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		s := New()
		var last Time
		ok := true
		var spawn func(depth int)
		spawn = func(depth int) {
			if s.Now() < last {
				ok = false
			}
			last = s.Now()
			if depth <= 0 {
				return
			}
			n := rng.Intn(3)
			for i := 0; i < n; i++ {
				d := Duration(rng.Intn(1000))
				s.After(d, "spawn", func() { spawn(depth - 1) })
			}
		}
		for i := 0; i < 5; i++ {
			s.After(Duration(rng.Intn(1000)), "root", func() { spawn(4) })
		}
		s.Run()
		if !ok {
			t.Fatalf("trial %d: time went backwards", trial)
		}
	}
}

func TestFiredCounter(t *testing.T) {
	s := New()
	for i := 0; i < 7; i++ {
		s.After(Duration(i)*Millisecond, "e", func() {})
	}
	s.Run()
	if s.Fired() != 7 {
		t.Fatalf("Fired = %d, want 7", s.Fired())
	}
	if s.Pending() != 0 {
		t.Fatalf("Pending = %d, want 0", s.Pending())
	}
}

func BenchmarkScheduleAndRun(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := New()
		for j := 0; j < 1000; j++ {
			s.After(Duration(j%97), "e", func() {})
		}
		s.Run()
	}
}
