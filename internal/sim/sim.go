// Package sim provides a deterministic discrete-event simulation kernel.
//
// All GreenWeb subsystems — the browser engine, the ACMP hardware model,
// CPU governors, and interaction replay — share a single virtual clock and
// event queue owned by a Simulator. Time is measured in integer microseconds
// so that runs are exactly reproducible across machines.
//
// Events scheduled for the same instant fire in the order they were
// scheduled (FIFO tie-breaking), which keeps multi-"thread" pipelines such
// as the browser's renderer/compositor interaction deterministic.
package sim

import (
	"container/heap"
	"fmt"
	"math"
	"time"
)

// Time is a point in virtual time, in microseconds since simulation start.
type Time int64

// Duration is a span of virtual time in microseconds.
type Duration int64

// Common durations, mirroring the time package for readability at call sites.
const (
	Microsecond Duration = 1
	Millisecond Duration = 1000 * Microsecond
	Second      Duration = 1000 * Millisecond
)

// Forever is a sentinel time later than any schedulable event.
const Forever Time = math.MaxInt64

// FromStd converts a standard library duration to a simulation duration,
// truncating to microsecond resolution.
func FromStd(d time.Duration) Duration { return Duration(d.Microseconds()) }

// Std converts a simulation duration to a standard library duration.
func (d Duration) Std() time.Duration { return time.Duration(d) * time.Microsecond }

// Seconds reports the duration as floating-point seconds.
func (d Duration) Seconds() float64 { return float64(d) / float64(Second) }

// Milliseconds reports the duration as floating-point milliseconds.
func (d Duration) Milliseconds() float64 { return float64(d) / float64(Millisecond) }

func (d Duration) String() string { return d.Std().String() }

// Add offsets a time by a duration.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub reports the duration elapsed between u and t.
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

// Seconds reports the time as floating-point seconds since simulation start.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

func (t Time) String() string {
	if t == Forever {
		return "forever"
	}
	return (time.Duration(t) * time.Microsecond).String()
}

// Event is a scheduled callback. It is returned by the scheduling methods so
// callers can cancel pending events.
type Event struct {
	at     Time
	seq    uint64
	index  int // heap index; -1 once popped or cancelled
	fn     func()
	name   string
	cancel bool
}

// At reports when the event is scheduled to fire.
func (e *Event) At() Time { return e.at }

// Name reports the diagnostic label given at scheduling time.
func (e *Event) Name() string { return e.name }

// Cancelled reports whether Cancel was called on the event.
func (e *Event) Cancelled() bool { return e.cancel }

// Cancel prevents a pending event from firing. Cancelling an event that has
// already fired is a no-op.
func (e *Event) Cancel() { e.cancel = true }

type eventQueue []*Event

func (q eventQueue) Len() int { return len(q) }

func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}

func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}

func (q *eventQueue) Push(x any) {
	e := x.(*Event)
	e.index = len(*q)
	*q = append(*q, e)
}

func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*q = old[:n-1]
	return e
}

// Simulator owns the virtual clock and the pending event queue.
type Simulator struct {
	now     Time
	queue   eventQueue
	seq     uint64
	stopped bool
	// Stats
	fired uint64
}

// New returns a simulator with the clock at zero and no pending events.
func New() *Simulator {
	return &Simulator{}
}

// Now reports the current virtual time.
func (s *Simulator) Now() Time { return s.now }

// Pending reports the number of events waiting to fire (including cancelled
// events that have not yet been discarded).
func (s *Simulator) Pending() int { return len(s.queue) }

// Fired reports how many events have executed since the simulator was
// created.
func (s *Simulator) Fired() uint64 { return s.fired }

// At schedules fn to run at absolute time t. Scheduling in the past panics:
// it always indicates a logic error in a discrete-event model.
func (s *Simulator) At(t Time, name string, fn func()) *Event {
	if t < s.now {
		panic(fmt.Sprintf("sim: scheduling %q at %v, before now (%v)", name, t, s.now))
	}
	e := &Event{at: t, seq: s.seq, fn: fn, name: name}
	s.seq++
	heap.Push(&s.queue, e)
	return e
}

// After schedules fn to run d after the current time. Negative d panics.
func (s *Simulator) After(d Duration, name string, fn func()) *Event {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v for %q", d, name))
	}
	return s.At(s.now.Add(d), name, fn)
}

// Immediately schedules fn at the current time, after all events already
// scheduled for this instant.
func (s *Simulator) Immediately(name string, fn func()) *Event {
	return s.At(s.now, name, fn)
}

// Stop makes Run return after the currently executing event completes.
func (s *Simulator) Stop() { s.stopped = true }

// Step fires the single next event, advancing the clock to its timestamp.
// It reports whether an event fired (false when the queue is empty).
func (s *Simulator) Step() bool {
	for len(s.queue) > 0 {
		e := heap.Pop(&s.queue).(*Event)
		if e.cancel {
			continue
		}
		s.now = e.at
		s.fired++
		e.fn()
		return true
	}
	return false
}

// Run fires events until the queue drains or Stop is called.
func (s *Simulator) Run() {
	s.stopped = false
	for !s.stopped && s.Step() {
	}
}

// RunUntil fires events with timestamps at or before deadline, then advances
// the clock to the deadline if the queue drained early or the next event is
// later.
func (s *Simulator) RunUntil(deadline Time) {
	s.stopped = false
	for !s.stopped {
		e := s.peek()
		if e == nil || e.at > deadline {
			break
		}
		s.Step()
	}
	if !s.stopped && s.now < deadline {
		s.now = deadline
	}
}

// RunFor runs the simulation for a further duration d of virtual time.
func (s *Simulator) RunFor(d Duration) { s.RunUntil(s.now.Add(d)) }

// NextEventAt reports the timestamp of the next non-cancelled pending event,
// or Forever when the queue is empty.
func (s *Simulator) NextEventAt() Time {
	e := s.peek()
	if e == nil {
		return Forever
	}
	return e.at
}

func (s *Simulator) peek() *Event {
	for len(s.queue) > 0 {
		e := s.queue[0]
		if !e.cancel {
			return e
		}
		heap.Pop(&s.queue)
	}
	return nil
}
