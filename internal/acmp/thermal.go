package acmp

import (
	"fmt"

	"github.com/wattwiseweb/greenweb/internal/sim"
)

// ThermalParams configures the simulated thermal governor. The Exynos 5410's
// A15 cluster cannot sustain its peak frequencies: sustained residency above
// HeatAboveMHz heats the die at HeatCPerSec; crossing TripC caps the legal
// big-cluster ceiling at CapMHz until the die cools below ClearC, at which
// point the last requested configuration is restored. The temperature is a
// pure function of the configuration-residency history, so faulted runs stay
// exactly reproducible.
type ThermalParams struct {
	AmbientC float64 `json:"ambient_c"` // floor the die cools toward
	TripC    float64 `json:"trip_c"`    // throttling trip point
	ClearC   float64 `json:"clear_c"`   // cool-down point restoring the ceiling

	HeatCPerSec  float64 `json:"heat_c_per_sec"` // heating rate above HeatAboveMHz
	CoolCPerSec  float64 `json:"cool_c_per_sec"` // cooling rate at or below it
	HeatAboveMHz int     `json:"heat_above_mhz"` // big-cluster frequencies above this heat the die
	CapMHz       int     `json:"cap_mhz"`        // big-cluster ceiling while tripped
}

// DefaultThermalParams models a modest passive heatsink: one second of
// sustained near-peak A15 residency trips the governor; the capped system
// needs 1.5 s to cool back down.
func DefaultThermalParams() ThermalParams {
	return ThermalParams{
		AmbientC:     30,
		TripC:        70,
		ClearC:       55,
		HeatCPerSec:  40,
		CoolCPerSec:  10,
		HeatAboveMHz: 1400,
		CapMHz:       1100,
	}
}

// Validate rejects parameter sets that cannot produce a well-formed
// trip/cool cycle.
func (p ThermalParams) Validate() error {
	if !(p.AmbientC < p.ClearC && p.ClearC < p.TripC) {
		return fmt.Errorf("acmp: thermal temperatures must order ambient < clear < trip, got %g/%g/%g",
			p.AmbientC, p.ClearC, p.TripC)
	}
	if p.HeatCPerSec <= 0 || p.CoolCPerSec <= 0 {
		return fmt.Errorf("acmp: thermal rates must be positive, got heat %g cool %g", p.HeatCPerSec, p.CoolCPerSec)
	}
	if !(Config{Big, p.CapMHz}).Valid() {
		return fmt.Errorf("acmp: thermal cap %d MHz is not a big-cluster operating point", p.CapMHz)
	}
	if !(Config{Big, p.HeatAboveMHz}).Valid() {
		return fmt.Errorf("acmp: thermal heat threshold %d MHz is not a big-cluster operating point", p.HeatAboveMHz)
	}
	if p.CapMHz > p.HeatAboveMHz {
		return fmt.Errorf("acmp: thermal cap %d MHz must not exceed the heat threshold %d MHz (a tripped system must cool)",
			p.CapMHz, p.HeatAboveMHz)
	}
	return nil
}

// Thermal is the thermal-governor state attached to a CPU. It integrates a
// simulated die temperature over configuration residency and enforces the
// frequency cap through the simulator's event queue, so throttling composes
// with every other scheduled behavior deterministically.
type Thermal struct {
	cpu *CPU
	p   ThermalParams

	tempC   float64
	at      sim.Time // instant tempC was last integrated to
	tripped bool
	trips   int
	ev      *sim.Event // pending trip or clear transition
}

// Params reports the parameter set in effect.
func (t *Thermal) Params() ThermalParams { return t.p }

// Tripped reports whether the frequency cap is currently in force.
func (t *Thermal) Tripped() bool { return t.tripped }

// Trips reports how many times the governor has tripped so far.
func (t *Thermal) Trips() int { return t.trips }

// Temp reports the simulated die temperature at the current instant.
func (t *Thermal) Temp() float64 {
	t.advance()
	return t.tempC
}

// rate reports the temperature slope under a configuration: heating above
// the threshold, cooling otherwise.
func (t *Thermal) rate(cfg Config) float64 {
	if cfg.Cluster == Big && cfg.MHz > t.p.HeatAboveMHz {
		return t.p.HeatCPerSec
	}
	return -t.p.CoolCPerSec
}

// advance integrates the temperature up to now under the configuration that
// was live since the last integration point. Callers must advance before
// changing the configuration.
func (t *Thermal) advance() {
	now := t.cpu.sim.Now()
	if now <= t.at {
		return
	}
	t.tempC += t.rate(t.cpu.cfg) * now.Sub(t.at).Seconds()
	if t.tempC < t.p.AmbientC {
		t.tempC = t.p.AmbientC
	}
	t.at = now
}

// replan schedules the next thermal transition (trip while heating, clear
// while tripped and cooling) from the current temperature and configuration.
// Called after every configuration change.
func (t *Thermal) replan() {
	t.advance()
	if t.ev != nil {
		t.ev.Cancel()
		t.ev = nil
	}
	r := t.rate(t.cpu.cfg)
	switch {
	case !t.tripped && r > 0:
		secs := (t.p.TripC - t.tempC) / r
		if secs <= 0 {
			t.trip()
			return
		}
		t.ev = t.cpu.sim.After(sim.Duration(secs*1e6+0.5), "thermal:trip", t.trip)
	case t.tripped && r < 0:
		if t.tempC <= t.p.ClearC {
			t.clear()
			return
		}
		secs := (t.tempC - t.p.ClearC) / -r
		t.ev = t.cpu.sim.After(sim.Duration(secs*1e6+0.5), "thermal:clear", t.clear)
	}
}

// trip enforces the cap: the legal ceiling drops to CapMHz and the live
// configuration, if above it, is forced down. Enforcement bypasses injected
// DVFS faults — hardware thermal protection cannot be denied.
func (t *Thermal) trip() {
	t.advance()
	t.ev = nil
	if t.tripped {
		return
	}
	t.tripped = true
	t.trips++
	t.tempC = t.p.TripC // pin, absorbing sub-microsecond rounding
	capped := t.cpu.ClampToCeiling(t.cpu.cfg)
	if capped != t.cpu.cfg {
		t.cpu.applyConfig(capped) // applyConfig replans the cool-down
		t.cpu.granted = capped
	} else {
		t.replan()
	}
}

// clear lifts the cap once cooled and restores the last configuration the
// governor asked for (cpufreq re-evaluates its policy when the thermal limit
// is removed). The restore is an ordinary request, so injected DVFS faults
// apply to it.
func (t *Thermal) clear() {
	t.advance()
	t.ev = nil
	if !t.tripped {
		return
	}
	t.tripped = false
	if t.tempC > t.p.ClearC {
		t.tempC = t.p.ClearC // pin
	}
	want := t.cpu.lastRequested
	if want.Valid() && want != t.cpu.cfg {
		t.cpu.granted = t.cpu.requestConfig(want)
	} else {
		t.replan()
	}
}
