package acmp

import (
	"testing"
	"testing/quick"
)

func TestFrequencyLadders(t *testing.T) {
	big := BigFreqs()
	if len(big) != 11 || big[0] != 800 || big[len(big)-1] != 1800 {
		t.Fatalf("big ladder = %v", big)
	}
	little := LittleFreqs()
	if len(little) != 6 || little[0] != 350 || little[len(little)-1] != 600 {
		t.Fatalf("little ladder = %v", little)
	}
	if NumConfigs() != 17 {
		t.Fatalf("NumConfigs = %d, want 17", NumConfigs())
	}
}

func TestConfigValid(t *testing.T) {
	cases := []struct {
		cfg  Config
		want bool
	}{
		{Config{Big, 800}, true},
		{Config{Big, 1800}, true},
		{Config{Big, 850}, false},
		{Config{Big, 700}, false},
		{Config{Big, 1900}, false},
		{Config{Little, 350}, true},
		{Config{Little, 600}, true},
		{Config{Little, 375}, false},
		{Config{Little, 300}, false},
		{Config{Little, 650}, false},
		{Config{Cluster(9), 800}, false},
	}
	for _, c := range cases {
		if got := c.cfg.Valid(); got != c.want {
			t.Errorf("%v.Valid() = %v, want %v", c.cfg, got, c.want)
		}
	}
}

func TestConfigsOrderedAndValid(t *testing.T) {
	cs := Configs()
	if len(cs) != NumConfigs() {
		t.Fatalf("len(Configs) = %d", len(cs))
	}
	for i, c := range cs {
		if !c.Valid() {
			t.Errorf("Configs()[%d] = %v invalid", i, c)
		}
		if c.Index() != i {
			t.Errorf("%v.Index() = %d, want %d", c, c.Index(), i)
		}
		if ConfigAt(i) != c {
			t.Errorf("ConfigAt(%d) = %v, want %v", i, ConfigAt(i), c)
		}
	}
	if cs[0] != LowestConfig() {
		t.Errorf("first config = %v, want lowest", cs[0])
	}
	if cs[len(cs)-1] != PeakConfig() {
		t.Errorf("last config = %v, want peak", cs[len(cs)-1])
	}
}

func TestStepUpDownWalkTheWholeLadder(t *testing.T) {
	c := LowestConfig()
	n := 1
	for {
		next, ok := c.StepUp()
		if !ok {
			break
		}
		if next.Index() != c.Index()+1 {
			t.Fatalf("StepUp(%v) = %v, not adjacent", c, next)
		}
		c = next
		n++
	}
	if c != PeakConfig() {
		t.Fatalf("walk up ended at %v", c)
	}
	if n != NumConfigs() {
		t.Fatalf("walked %d configs, want %d", n, NumConfigs())
	}
	for {
		prev, ok := c.StepDown()
		if !ok {
			break
		}
		if prev.Index() != c.Index()-1 {
			t.Fatalf("StepDown(%v) = %v, not adjacent", c, prev)
		}
		c = prev
	}
	if c != LowestConfig() {
		t.Fatalf("walk down ended at %v", c)
	}
}

func TestStepAcrossClusterBoundary(t *testing.T) {
	up, ok := Config{Little, 600}.StepUp()
	if !ok || up != (Config{Big, 800}) {
		t.Fatalf("StepUp(little@600) = %v, %v", up, ok)
	}
	down, ok := Config{Big, 800}.StepDown()
	if !ok || down != (Config{Little, 600}) {
		t.Fatalf("StepDown(big@800) = %v, %v", down, ok)
	}
	if _, ok := PeakConfig().StepUp(); ok {
		t.Fatal("StepUp at peak should fail")
	}
	if _, ok := LowestConfig().StepDown(); ok {
		t.Fatal("StepDown at bottom should fail")
	}
}

func TestPropertyIndexRoundTrip(t *testing.T) {
	f := func(i uint8) bool {
		idx := int(i) % NumConfigs()
		return ConfigAt(idx).Index() == idx
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSortConfigs(t *testing.T) {
	cs := []Config{{Big, 1800}, {Little, 350}, {Big, 800}, {Little, 600}}
	SortConfigs(cs)
	want := []Config{{Little, 350}, {Little, 600}, {Big, 800}, {Big, 1800}}
	for i := range want {
		if cs[i] != want[i] {
			t.Fatalf("sorted = %v", cs)
		}
	}
}

func TestClusterString(t *testing.T) {
	if Big.String() != "big" || Little.String() != "little" {
		t.Fatal("cluster names wrong")
	}
	if (Config{Big, 1500}).String() != "big@1500MHz" {
		t.Fatalf("config string = %q", Config{Big, 1500}.String())
	}
}

func TestClusterFreqs(t *testing.T) {
	if len(ClusterFreqs(Big)) != 11 || len(ClusterFreqs(Little)) != 6 {
		t.Fatal("ClusterFreqs sizes wrong")
	}
}
