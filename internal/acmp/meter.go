package acmp

import "github.com/wattwiseweb/greenweb/internal/sim"

// Meter integrates CPU-rail power over virtual time, exactly (piecewise-
// constant integration at every power transition) and split per cluster.
// It is the model counterpart of the paper's sense-resistor measurement on
// the ODroid XU+E's big and little rails.
type Meter struct {
	sim   *sim.Simulator
	pm    *PowerModel
	last  sim.Time
	power Watts
	rail  Cluster

	total     Joules
	byCluster [2]Joules

	onTransition []func(from, to sim.Time, rail Cluster, e Joules)
}

func newMeter(s *sim.Simulator, pm *PowerModel) *Meter {
	return &Meter{sim: s, pm: pm, last: s.Now(), rail: Little}
}

// set integrates up to now at the previous power level, then switches to the
// new level on the given rail.
func (m *Meter) set(p Watts, rail Cluster) {
	m.integrate()
	m.power = p
	m.rail = rail
}

func (m *Meter) integrate() {
	now := m.sim.Now()
	if now > m.last {
		from := m.last
		e := Joules(float64(m.power) * now.Sub(m.last).Seconds())
		m.total += e
		m.byCluster[m.rail] += e
		m.last = now
		for _, fn := range m.onTransition {
			fn(from, now, m.rail, e)
		}
	}
}

// OnTransition registers an observer of integration intervals: each call
// reports one piecewise-constant interval [from, to) on the given rail and
// the energy it contributed to the integral. The energy ledger subscribes
// here to attribute every joule the meter counts.
func (m *Meter) OnTransition(fn func(from, to sim.Time, rail Cluster, e Joules)) {
	m.onTransition = append(m.onTransition, fn)
}

// Sync forces integration up to the current instant, flushing the pending
// interval through OnTransition observers. Attribution boundaries (span
// open/close) call this so the interval on each side of the boundary is
// charged to the right span.
func (m *Meter) Sync() { m.integrate() }

// Power reports the instantaneous power level.
func (m *Meter) Power() Watts { return m.power }

// Energy reports the total energy consumed up to the current instant.
func (m *Meter) Energy() Joules {
	m.integrate()
	return m.total
}

// EnergyByCluster reports energy split across the little and big rails.
func (m *Meter) EnergyByCluster() (little, big Joules) {
	m.integrate()
	return m.byCluster[Little], m.byCluster[Big]
}

// DAQ simulates the National Instruments data-acquisition unit the paper
// uses: it samples the rail power at a fixed rate (1,000 samples per second
// in the paper) and estimates energy as the sum of sample × period. Useful
// for validating that sampled measurement tracks the exact integral.
type DAQ struct {
	sim     *sim.Simulator
	src     func() Watts
	period  sim.Duration
	samples int
	dropped int
	energy  Joules
	stopped bool
	last    sim.Time   // time the last completed sampling period ended
	ev      *sim.Event // pending sample, so Stop can cancel it

	// drop, when set, is consulted per sample instant; a true return loses
	// that sampling period from the estimate (modelling DAQ dropout).
	drop func(now sim.Time) bool
}

// NewDAQ attaches a sampler to a power source at the given sampling period
// and starts sampling immediately.
func NewDAQ(s *sim.Simulator, period sim.Duration, src func() Watts) *DAQ {
	if period <= 0 {
		panic("acmp: DAQ period must be positive")
	}
	d := &DAQ{sim: s, src: src, period: period, last: s.Now()}
	d.schedule()
	return d
}

// SetDropout attaches a sample-dropout predicate: each sampling instant the
// predicate returns true for is lost, undercounting the estimate by that
// period (the exact meter is unaffected). Must be deterministic in virtual
// time for reproducible runs; internal/faults provides a seed-driven one.
// Pass nil to detach.
func (d *DAQ) SetDropout(f func(now sim.Time) bool) { d.drop = f }

func (d *DAQ) schedule() {
	d.ev = d.sim.After(d.period, "daq:sample", func() {
		if d.stopped {
			return
		}
		if d.drop != nil && d.drop(d.sim.Now()) {
			// The sample never arrived: its period's energy is lost, not
			// deferred (Stop must not re-count it as a partial period).
			d.dropped++
			d.last = d.sim.Now()
			d.schedule()
			return
		}
		d.samples++
		d.energy += Joules(float64(d.src()) * d.period.Seconds())
		d.last = d.sim.Now()
		d.schedule()
	})
}

// Stop ends sampling: the pending sample event is cancelled (so it does not
// linger in the simulator queue) and the final partial sampling period is
// flushed into the estimate, which would otherwise undercount by up to one
// period. Stopping twice is a no-op.
func (d *DAQ) Stop() {
	if d.stopped {
		return
	}
	d.stopped = true
	if d.ev != nil {
		d.ev.Cancel()
		d.ev = nil
	}
	if now := d.sim.Now(); now > d.last {
		d.energy += Joules(float64(d.src()) * now.Sub(d.last).Seconds())
		d.last = now
	}
}

// Samples reports how many samples were taken.
func (d *DAQ) Samples() int { return d.samples }

// Dropped reports how many samples were lost to injected dropout.
func (d *DAQ) Dropped() int { return d.dropped }

// Energy reports the sampled energy estimate.
func (d *DAQ) Energy() Joules { return d.energy }
