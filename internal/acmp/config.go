// Package acmp models an asymmetric chip multiprocessor (ACMP) of the kind
// the GreenWeb paper evaluates on: the Exynos 5410's ARM big.LITTLE design
// with a high-performance Cortex-A15 ("big") cluster and an energy-conserving
// Cortex-A7 ("little") cluster.
//
// The model is faithful to the paper's hardware section (Sec. 7.1):
//
//   - big cores run between 800 MHz and 1.8 GHz at 100 MHz granularity;
//   - little cores run between 350 MHz and 600 MHz at 50 MHz granularity;
//   - a frequency switch costs 100 µs and a core migration costs 20 µs;
//   - the clusters are exclusively enabled (the Exynos 5410 operates in
//     cluster-migration mode), so an execution configuration is a
//     ⟨cluster, frequency⟩ tuple.
//
// Work is denominated in CPU cycles plus a frequency-independent time
// component, matching the DVFS analytical model the paper builds on
// (T = T_independent + N_nonoverlap/f, Xie et al.). Execution is preemptible:
// changing the configuration mid-work re-times the remaining cycles, so
// governor decisions interact with in-flight frames exactly as on hardware.
package acmp

import (
	"fmt"
	"slices"
	"sort"
)

// Cluster identifies one of the two asymmetric core clusters.
type Cluster int

const (
	// Little is the energy-conserving in-order cluster (Cortex-A7).
	Little Cluster = iota
	// Big is the high-performance out-of-order cluster (Cortex-A15).
	Big
)

func (c Cluster) String() string {
	switch c {
	case Little:
		return "little"
	case Big:
		return "big"
	default:
		return fmt.Sprintf("Cluster(%d)", int(c))
	}
}

// Frequency ladder constants for the Exynos 5410 (paper Sec. 7.1).
const (
	BigMinMHz     = 800
	BigMaxMHz     = 1800
	BigStepMHz    = 100
	LittleMinMHz  = 350
	LittleMaxMHz  = 600
	LittleStepMHz = 50
)

// Config is an ACMP execution configuration: which cluster runs the
// application and at what frequency. This is the unit the GreenWeb runtime
// predicts and the governors set.
type Config struct {
	Cluster Cluster
	MHz     int
}

func (c Config) String() string {
	// The ledger stringifies the active configuration on every switch;
	// valid operating points come from the precomputed name table.
	if c.Valid() {
		return configNames[c.Index()]
	}
	return fmt.Sprintf("%s@%dMHz", c.Cluster, c.MHz)
}

// Valid reports whether the configuration names a real operating point.
func (c Config) Valid() bool {
	switch c.Cluster {
	case Big:
		return c.MHz >= BigMinMHz && c.MHz <= BigMaxMHz && (c.MHz-BigMinMHz)%BigStepMHz == 0
	case Little:
		return c.MHz >= LittleMinMHz && c.MHz <= LittleMaxMHz && (c.MHz-LittleMinMHz)%LittleStepMHz == 0
	default:
		return false
	}
}

// HzF reports the configured frequency in Hz as a float, for latency math.
func (c Config) HzF() float64 { return float64(c.MHz) * 1e6 }

// The ladders and configuration space are fixed by the hardware constants
// above, so they are computed once at package init. The exported slice
// accessors return defensive copies; the scheduler's per-frame sweep walks
// the shared tables through ConfigAt/NumConfigs without allocating.
var (
	bigFreqTable    = ladder(BigMinMHz, BigMaxMHz, BigStepMHz)
	littleFreqTable = ladder(LittleMinMHz, LittleMaxMHz, LittleStepMHz)
	configTable     = buildConfigTable()
	configNames     = buildConfigNames()
)

func buildConfigNames() []string {
	names := make([]string, len(configTable))
	for i, c := range configTable {
		names[i] = fmt.Sprintf("%s@%dMHz", c.Cluster, c.MHz)
	}
	return names
}

func buildConfigTable() []Config {
	cs := make([]Config, 0, len(littleFreqTable)+len(bigFreqTable))
	for _, f := range littleFreqTable {
		cs = append(cs, Config{Little, f})
	}
	for _, f := range bigFreqTable {
		cs = append(cs, Config{Big, f})
	}
	return cs
}

// BigFreqs returns the big cluster's frequency ladder in ascending MHz.
func BigFreqs() []int { return slices.Clone(bigFreqTable) }

// LittleFreqs returns the little cluster's frequency ladder in ascending MHz.
func LittleFreqs() []int { return slices.Clone(littleFreqTable) }

func ladder(lo, hi, step int) []int {
	var fs []int
	for f := lo; f <= hi; f += step {
		fs = append(fs, f)
	}
	return fs
}

// ClusterFreqs returns the frequency ladder for the given cluster.
func ClusterFreqs(c Cluster) []int {
	if c == Big {
		return BigFreqs()
	}
	return LittleFreqs()
}

// Configs returns every valid execution configuration, ordered from the
// lowest-performance point (little @ 350 MHz) to the highest (big @ 1.8 GHz).
// Little configurations sort before big ones: on this model every big
// operating point outperforms every little one for CPU-bound work, because
// the big cluster's lowest frequency (800 MHz) combined with its higher IPC
// exceeds the little cluster's peak.
func Configs() []Config { return slices.Clone(configTable) }

// MinConfig returns the lowest-frequency operating point of a cluster.
func MinConfig(c Cluster) Config {
	if c == Big {
		return Config{Big, BigMinMHz}
	}
	return Config{Little, LittleMinMHz}
}

// MaxConfig returns the highest-frequency operating point of a cluster.
func MaxConfig(c Cluster) Config {
	if c == Big {
		return Config{Big, BigMaxMHz}
	}
	return Config{Little, LittleMaxMHz}
}

// PeakConfig is the overall highest-performance configuration; the paper's
// Perf baseline pins the system here.
func PeakConfig() Config { return MaxConfig(Big) }

// LowestConfig is the overall lowest-power configuration.
func LowestConfig() Config { return MinConfig(Little) }

// StepUp returns the next-higher operating point: the next frequency on the
// same cluster, or the migration from little's peak to big's minimum. It
// reports ok=false when already at the overall peak.
func (c Config) StepUp() (Config, bool) {
	switch c.Cluster {
	case Little:
		if c.MHz < LittleMaxMHz {
			return Config{Little, c.MHz + LittleStepMHz}, true
		}
		return Config{Big, BigMinMHz}, true
	case Big:
		if c.MHz < BigMaxMHz {
			return Config{Big, c.MHz + BigStepMHz}, true
		}
	}
	return c, false
}

// StepDown returns the next-lower operating point, migrating from big's
// minimum down to little's peak. It reports ok=false at the overall minimum.
func (c Config) StepDown() (Config, bool) {
	switch c.Cluster {
	case Big:
		if c.MHz > BigMinMHz {
			return Config{Big, c.MHz - BigStepMHz}, true
		}
		return Config{Little, LittleMaxMHz}, true
	case Little:
		if c.MHz > LittleMinMHz {
			return Config{Little, c.MHz - LittleStepMHz}, true
		}
	}
	return c, false
}

// Index reports the configuration's position in Configs(), i.e. its rank in
// the performance order. It panics on invalid configurations.
func (c Config) Index() int {
	if !c.Valid() {
		panic(fmt.Sprintf("acmp: invalid config %v", c))
	}
	if c.Cluster == Little {
		return (c.MHz - LittleMinMHz) / LittleStepMHz
	}
	return len(littleFreqTable) + (c.MHz-BigMinMHz)/BigStepMHz
}

// ConfigAt is the inverse of Index. It does not allocate, so sweeping the
// configuration space via NumConfigs/ConfigAt is free of per-call garbage.
func ConfigAt(i int) Config {
	if i < 0 || i >= len(configTable) {
		panic(fmt.Sprintf("acmp: config index %d out of range", i))
	}
	return configTable[i]
}

// NumConfigs reports the size of the configuration space.
func NumConfigs() int { return len(configTable) }

// SortConfigs orders a slice of configurations by ascending performance.
func SortConfigs(cs []Config) {
	sort.Slice(cs, func(i, j int) bool { return cs[i].Index() < cs[j].Index() })
}
