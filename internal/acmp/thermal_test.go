package acmp

import (
	"testing"

	"github.com/wattwiseweb/greenweb/internal/sim"
)

// fixedFaults is a scripted DVFSFaults implementation for tests.
type fixedFaults struct {
	denies int // deny the first N transitions
	delay  sim.Duration
	calls  int
}

func (f *fixedFaults) Transition(sim.Time) (bool, sim.Duration) {
	f.calls++
	if f.calls <= f.denies {
		return true, 0
	}
	return false, f.delay
}

func TestThermalTripCapsAndRestores(t *testing.T) {
	s := sim.New()
	cpu := NewCPU(s, nil)
	p := DefaultThermalParams()
	th := cpu.EnableThermal(p)

	cpu.SetConfig(PeakConfig())
	if got := cpu.Granted(); got != PeakConfig() {
		t.Fatalf("granted %v before any heating, want %v", got, PeakConfig())
	}

	// Heating 30→70 °C at 40 °C/s: the trip lands at t=1 s.
	s.RunUntil(sim.Time(999 * sim.Millisecond))
	if th.Tripped() {
		t.Fatalf("tripped early at %v (temp %.1f)", s.Now(), th.Temp())
	}
	s.RunUntil(sim.Time(1100 * sim.Millisecond))
	if !th.Tripped() {
		t.Fatalf("not tripped at %v (temp %.1f)", s.Now(), th.Temp())
	}
	if got, want := cpu.Config(), (Config{Big, p.CapMHz}); got != want {
		t.Fatalf("config %v under trip, want forced cap %v", got, want)
	}
	if got, want := cpu.Ceiling(), (Config{Big, p.CapMHz}); got != want {
		t.Fatalf("ceiling %v under trip, want %v", got, want)
	}
	if th.Trips() != 1 {
		t.Fatalf("trips = %d, want 1", th.Trips())
	}

	// Requests above the ceiling are clamped, not honored.
	cpu.SetConfig(PeakConfig())
	if got, want := cpu.Granted(), (Config{Big, p.CapMHz}); got != want {
		t.Fatalf("granted %v while tripped, want clamp to %v", got, want)
	}

	// Cooling 70→55 °C at 10 °C/s: clear lands 1.5 s after the trip, and the
	// last requested configuration (the peak) is restored.
	s.RunUntil(sim.Time(2700 * sim.Millisecond))
	if th.Tripped() {
		t.Fatalf("still tripped at %v (temp %.1f)", s.Now(), th.Temp())
	}
	if got := cpu.Config(); got != PeakConfig() {
		t.Fatalf("config %v after clear, want restored %v", got, PeakConfig())
	}
	if cpu.Ceiling() != PeakConfig() {
		t.Fatalf("ceiling %v after clear, want peak", cpu.Ceiling())
	}
}

func TestThermalOscillatesDeterministically(t *testing.T) {
	run := func() (trips int, temp float64) {
		s := sim.New()
		cpu := NewCPU(s, nil)
		th := cpu.EnableThermal(DefaultThermalParams())
		cpu.SetConfig(PeakConfig())
		s.RunUntil(sim.Time(10 * sim.Second))
		return th.Trips(), th.Temp()
	}
	t1, temp1 := run()
	t2, temp2 := run()
	if t1 != t2 || temp1 != temp2 {
		t.Fatalf("thermal history diverged: %d trips/%.3f °C vs %d trips/%.3f °C", t1, temp1, t2, temp2)
	}
	// First trip after 1 s (30→70 °C at 40 °C/s); every later cycle is
	// 1.5 s of cooling (70→55) plus 0.375 s of reheating (55→70), so trips
	// land at 1.0, 2.875, 4.75, 6.625, and 8.5 s.
	if t1 != 5 {
		t.Fatalf("trips = %d over 10 s of pinned peak, want 5", t1)
	}
}

func TestThermalLittleClusterNeverTrips(t *testing.T) {
	s := sim.New()
	cpu := NewCPU(s, nil)
	th := cpu.EnableThermal(DefaultThermalParams())
	cpu.SetConfig(MaxConfig(Little))
	s.RunUntil(sim.Time(30 * sim.Second))
	if th.Tripped() || th.Trips() != 0 {
		t.Fatalf("little cluster tripped (%d trips, %.1f °C)", th.Trips(), th.Temp())
	}
	if got := th.Temp(); got != DefaultThermalParams().AmbientC {
		t.Fatalf("temp %.1f at sustained little residency, want ambient", got)
	}
}

func TestThermalParamsValidate(t *testing.T) {
	bad := []ThermalParams{
		{AmbientC: 70, TripC: 70, ClearC: 55, HeatCPerSec: 1, CoolCPerSec: 1, HeatAboveMHz: 1400, CapMHz: 1100},
		{AmbientC: 30, TripC: 70, ClearC: 55, HeatCPerSec: 0, CoolCPerSec: 1, HeatAboveMHz: 1400, CapMHz: 1100},
		{AmbientC: 30, TripC: 70, ClearC: 55, HeatCPerSec: 1, CoolCPerSec: 1, HeatAboveMHz: 1400, CapMHz: 1150},
		{AmbientC: 30, TripC: 70, ClearC: 55, HeatCPerSec: 1, CoolCPerSec: 1, HeatAboveMHz: 1400, CapMHz: 1800},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("case %d: Validate accepted %+v", i, p)
		}
	}
	if err := DefaultThermalParams().Validate(); err != nil {
		t.Fatalf("default params rejected: %v", err)
	}
}

func TestDVFSDenyKeepsOldConfig(t *testing.T) {
	s := sim.New()
	cpu := NewCPU(s, nil)
	cpu.SetDVFSFaults(&fixedFaults{denies: 1})

	old := cpu.Config()
	cpu.SetConfig(PeakConfig())
	if got := cpu.Config(); got != old {
		t.Fatalf("config %v after denied transition, want %v", got, old)
	}
	if got := cpu.Granted(); got != old {
		t.Fatalf("granted %v after denial, want old config %v", got, old)
	}
	if fs := cpu.FaultStats(); fs.Denied != 1 {
		t.Fatalf("denied = %d, want 1", fs.Denied)
	}

	// The next request goes through.
	cpu.SetConfig(PeakConfig())
	if got := cpu.Config(); got != PeakConfig() {
		t.Fatalf("config %v after retry, want peak", got)
	}
}

func TestDVFSDelayLandsLate(t *testing.T) {
	s := sim.New()
	cpu := NewCPU(s, nil)
	cpu.SetDVFSFaults(&fixedFaults{delay: 500 * sim.Microsecond})

	old := cpu.Config()
	cpu.SetConfig(PeakConfig())
	if got := cpu.Config(); got != old {
		t.Fatalf("config switched instantly (%v) despite injected delay", got)
	}
	if got := cpu.Granted(); got != PeakConfig() {
		t.Fatalf("granted %v for a delayed transition, want eventual target %v", got, PeakConfig())
	}
	s.RunUntil(sim.Time(1 * sim.Millisecond))
	if got := cpu.Config(); got != PeakConfig() {
		t.Fatalf("config %v after delay elapsed, want peak", got)
	}
	if fs := cpu.FaultStats(); fs.Delayed != 1 {
		t.Fatalf("delayed = %d, want 1", fs.Delayed)
	}
}

func TestDVFSDelaySupersededByNewerRequest(t *testing.T) {
	s := sim.New()
	cpu := NewCPU(s, nil)
	f := &fixedFaults{delay: 1 * sim.Millisecond}
	cpu.SetDVFSFaults(f)

	cpu.SetConfig(PeakConfig())
	f.delay = 0 // the second request switches instantly
	cpu.SetConfig(MaxConfig(Little))
	if got := cpu.Config(); got != MaxConfig(Little) {
		t.Fatalf("config %v, want the newer request to win", got)
	}
	s.RunUntil(sim.Time(5 * sim.Millisecond))
	if got := cpu.Config(); got != MaxConfig(Little) {
		t.Fatalf("config %v after stale delayed transition window, want %v (stale switch must not land)",
			got, MaxConfig(Little))
	}
}

func TestDAQDropoutUndercountsDeterministically(t *testing.T) {
	run := func() (samples, dropped int, energy Joules) {
		s := sim.New()
		cpu := NewCPU(s, nil)
		daq := NewDAQ(s, sim.Millisecond, cpu.Power)
		// Drop every fourth sample, purely from virtual time.
		daq.SetDropout(func(now sim.Time) bool { return (now/sim.Time(sim.Millisecond))%4 == 0 })
		s.RunUntil(sim.Time(1 * sim.Second))
		daq.Stop()
		return daq.Samples(), daq.Dropped(), daq.Energy()
	}
	s1, d1, e1 := run()
	s2, d2, e2 := run()
	if s1 != s2 || d1 != d2 || e1 != e2 {
		t.Fatalf("dropout runs diverged: %d/%d/%.9f vs %d/%d/%.9f", s1, d1, float64(e1), s2, d2, float64(e2))
	}
	if d1 == 0 {
		t.Fatal("no samples dropped")
	}
	if s1+d1 != 1000 {
		t.Fatalf("samples %d + dropped %d != 1000 scheduled", s1, d1)
	}

	// Dropout loses energy relative to the lossless sampler.
	s := sim.New()
	cpu := NewCPU(s, nil)
	daq := NewDAQ(s, sim.Millisecond, cpu.Power)
	s.RunUntil(sim.Time(1 * sim.Second))
	daq.Stop()
	if e1 >= daq.Energy() {
		t.Fatalf("dropout estimate %.9f J not below lossless %.9f J", float64(e1), float64(daq.Energy()))
	}
}
