package acmp

import (
	"fmt"

	"github.com/wattwiseweb/greenweb/internal/sim"
)

// Work is a schedulable unit of computation, denominated per the DVFS
// analytical model the paper builds its predictor on (Equ. 1):
//
//	T(config) = Indep + Cycles(cluster) / f
//
// CyclesBig and CyclesLittle are the non-overlapping CPU cycle counts on each
// microarchitecture (the little in-order core needs more cycles for the same
// task), and Indep is the frequency-independent component — GPU processing
// and main-memory time that does not scale with CPU frequency.
type Work struct {
	CyclesBig    int64
	CyclesLittle int64
	Indep        sim.Duration
}

// DefaultMicroArchRatio is the default little/big cycle-count ratio used
// when constructing Work from a single big-core cycle count: the in-order
// A7 retires the same task in roughly 1.8× the cycles of the out-of-order
// A15 on browser workloads.
const DefaultMicroArchRatio = 1.8

// Cycles reports the non-overlap cycle count on the given cluster.
func (w Work) Cycles(c Cluster) int64 {
	if c == Big {
		return w.CyclesBig
	}
	return w.CyclesLittle
}

// Latency reports the execution time of the work at an operating point,
// with no contention or configuration switches.
func (w Work) Latency(c Config) sim.Duration {
	cpu := float64(w.Cycles(c.Cluster)) / c.HzF() // seconds
	return w.Indep + sim.Duration(cpu*1e6+0.5)
}

// Energy reports the active energy of executing the work at an operating
// point on one core under the given power model, excluding idle and static
// time outside the work. Useful for closed-form checks in tests.
func (w Work) Energy(c Config, pm *PowerModel) Joules {
	cpuSec := float64(w.Cycles(c.Cluster)) / c.HzF()
	active := float64(pm.CoreActive(c)) * cpuSec
	return Joules(active)
}

// Add accumulates another unit of work into w.
func (w Work) Add(o Work) Work {
	return Work{
		CyclesBig:    w.CyclesBig + o.CyclesBig,
		CyclesLittle: w.CyclesLittle + o.CyclesLittle,
		Indep:        w.Indep + o.Indep,
	}
}

// Scale multiplies every component of the work by k.
func (w Work) Scale(k float64) Work {
	return Work{
		CyclesBig:    int64(float64(w.CyclesBig)*k + 0.5),
		CyclesLittle: int64(float64(w.CyclesLittle)*k + 0.5),
		Indep:        sim.Duration(float64(w.Indep)*k + 0.5),
	}
}

// IsZero reports whether the work has no cost at all.
func (w Work) IsZero() bool {
	return w.CyclesBig == 0 && w.CyclesLittle == 0 && w.Indep == 0
}

func (w Work) String() string {
	return fmt.Sprintf("work{big=%d little=%d indep=%v}", w.CyclesBig, w.CyclesLittle, w.Indep)
}

// CPUWork builds Work from a big-core cycle count and the default
// microarchitecture ratio, with no frequency-independent component.
func CPUWork(cyclesBig int64) Work {
	return Work{
		CyclesBig:    cyclesBig,
		CyclesLittle: int64(float64(cyclesBig)*DefaultMicroArchRatio + 0.5),
	}
}

// MixedWork builds Work from a big-core cycle count, a little/big cycle
// ratio, and a frequency-independent duration.
func MixedWork(cyclesBig int64, ratio float64, indep sim.Duration) Work {
	return Work{
		CyclesBig:    cyclesBig,
		CyclesLittle: int64(float64(cyclesBig)*ratio + 0.5),
		Indep:        indep,
	}
}
