package acmp

import "fmt"

// Joules measures energy.
type Joules float64

// Watts measures power.
type Watts float64

// PowerModel gives the power draw of the modelled SoC's CPU rails under any
// execution configuration. The paper measures the big and little rails with
// sense resistors on the ODroid XU+E; here the same quantities come from a
// calibrated analytical model:
//
//	P_core(cfg)  = k_cluster · f · V(f)²   (dynamic, per busy core)
//	P_static(cfg) = leakage of the powered cluster, growing with V(f)
//	P_idle(cluster) = clock-gated power of an idle core
//
// The constants are chosen so the operating points span the published
// A15/A7 envelope: a busy big core draws ~0.65 W at 800 MHz and ~2.6 W at
// 1.8 GHz, a busy little core ~0.10 W at 350 MHz and ~0.25 W at 600 MHz.
// That yields the wide performance-energy trade-off space ACMPs are used
// for, which is all the GreenWeb runtime's decisions depend on.
type PowerModel struct {
	// KBig and KLittle are the effective switching-capacitance constants
	// (W per Hz per V²) of one core in each cluster.
	KBig, KLittle float64
	// Static leakage of the powered cluster at minimum and maximum voltage.
	BigStaticMin, BigStaticMax       Watts
	LittleStaticMin, LittleStaticMax Watts
	// Idle (clock-gated) power per core.
	BigIdleCore, LittleIdleCore Watts
	// Sleep power when the whole cluster is idle: cpuidle drives cores
	// into retention/power-collapse states independent of the programmed
	// frequency, so a system pinned at peak barely pays for idle time.
	// This matches the paper's observation that Perf and Interactive
	// differ mainly in *active* energy.
	BigSleep, LittleSleep Watts
}

// DefaultPower returns the calibrated Exynos 5410-like power model used
// throughout the evaluation.
func DefaultPower() *PowerModel {
	return &PowerModel{
		KBig:            1.00e-9,
		KLittle:         2.20e-10,
		BigStaticMin:    0.10,
		BigStaticMax:    0.25,
		LittleStaticMin: 0.012,
		LittleStaticMax: 0.030,
		BigIdleCore:     0.030,
		LittleIdleCore:  0.005,
		BigSleep:        0.012,
		LittleSleep:     0.008,
	}
}

// Voltage reports the rail voltage at an operating point. Voltage ramps
// linearly across each cluster's frequency ladder (0.90–1.20 V on big,
// 0.90–1.10 V on little), the usual shape of published DVFS tables.
func (pm *PowerModel) Voltage(c Config) float64 {
	if !c.Valid() {
		panic(fmt.Sprintf("acmp: voltage of invalid config %v", c))
	}
	switch c.Cluster {
	case Big:
		return 0.90 + 0.30*float64(c.MHz-BigMinMHz)/float64(BigMaxMHz-BigMinMHz)
	default:
		return 0.90 + 0.20*float64(c.MHz-LittleMinMHz)/float64(LittleMaxMHz-LittleMinMHz)
	}
}

// CoreActive reports the dynamic power of one busy core at the operating
// point.
func (pm *PowerModel) CoreActive(c Config) Watts {
	v := pm.Voltage(c)
	k := pm.KLittle
	if c.Cluster == Big {
		k = pm.KBig
	}
	return Watts(k * c.HzF() * v * v)
}

// ClusterStatic reports the leakage of the powered cluster at the operating
// point.
func (pm *PowerModel) ClusterStatic(c Config) Watts {
	v := pm.Voltage(c)
	switch c.Cluster {
	case Big:
		frac := (v - 0.90) / 0.30
		return pm.BigStaticMin + Watts(frac)*(pm.BigStaticMax-pm.BigStaticMin)
	default:
		frac := (v - 0.90) / 0.20
		return pm.LittleStaticMin + Watts(frac)*(pm.LittleStaticMax-pm.LittleStaticMin)
	}
}

// CoreIdle reports the clock-gated power of one idle core on the given
// cluster.
func (pm *PowerModel) CoreIdle(c Cluster) Watts {
	if c == Big {
		return pm.BigIdleCore
	}
	return pm.LittleIdleCore
}

// Total reports the CPU-rail power with busy of cores cores executing at the
// operating point (the remaining cores idle). This is what the simulated
// DAQ samples and what the energy meter integrates.
func (pm *PowerModel) Total(c Config, busy, cores int) Watts {
	if busy < 0 || cores < busy {
		panic(fmt.Sprintf("acmp: %d busy of %d cores", busy, cores))
	}
	if busy == 0 {
		return pm.Sleep(c.Cluster)
	}
	p := pm.ClusterStatic(c)
	p += Watts(busy) * pm.CoreActive(c)
	p += Watts(cores-busy) * pm.CoreIdle(c.Cluster)
	return p
}

// Sleep reports the cluster-idle (cpuidle retention) power.
func (pm *PowerModel) Sleep(c Cluster) Watts {
	if c == Big {
		return pm.BigSleep
	}
	return pm.LittleSleep
}
