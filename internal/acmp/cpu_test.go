package acmp

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/wattwiseweb/greenweb/internal/sim"
)

func newTestCPU() (*sim.Simulator, *CPU) {
	s := sim.New()
	return s, NewCPU(s, DefaultPower())
}

func TestWorkLatencyMath(t *testing.T) {
	w := Work{CyclesBig: 18e6, CyclesLittle: 36e6, Indep: 2 * sim.Millisecond}
	// big @ 1800 MHz: 18e6 / 1.8e9 = 10 ms CPU + 2 ms indep.
	if got := w.Latency(Config{Big, 1800}); got != 12*sim.Millisecond {
		t.Fatalf("latency big@1800 = %v, want 12ms", got)
	}
	// little @ 600 MHz: 36e6 / 600e6 = 60 ms + 2 ms.
	if got := w.Latency(Config{Little, 600}); got != 62*sim.Millisecond {
		t.Fatalf("latency little@600 = %v, want 62ms", got)
	}
}

func TestWorkHelpers(t *testing.T) {
	w := CPUWork(1000)
	if w.CyclesBig != 1000 || w.CyclesLittle != 1800 {
		t.Fatalf("CPUWork = %v", w)
	}
	m := MixedWork(1000, 2.0, sim.Millisecond)
	if m.CyclesLittle != 2000 || m.Indep != sim.Millisecond {
		t.Fatalf("MixedWork = %v", m)
	}
	sum := w.Add(m)
	if sum.CyclesBig != 2000 || sum.CyclesLittle != 3800 || sum.Indep != sim.Millisecond {
		t.Fatalf("Add = %v", sum)
	}
	if got := sum.Scale(0.5); got.CyclesBig != 1000 {
		t.Fatalf("Scale = %v", got)
	}
	if !(Work{}).IsZero() || w.IsZero() {
		t.Fatal("IsZero wrong")
	}
	if w.Cycles(Big) != 1000 || w.Cycles(Little) != 1800 {
		t.Fatal("Cycles accessor wrong")
	}
	if len(w.String()) == 0 {
		t.Fatal("String empty")
	}
}

func TestSingleWorkLatencyAtFixedConfig(t *testing.T) {
	s, cpu := newTestCPU()
	cpu.SetConfig(Config{Big, 1000})
	s.RunFor(10 * sim.Millisecond) // get past switch stall
	th := cpu.NewThread("main")

	w := Work{CyclesBig: 10e6, CyclesLittle: 18e6, Indep: 3 * sim.Millisecond}
	start := s.Now()
	var end sim.Time
	th.Submit(w, func() { end = s.Now() })
	s.Run()
	want := w.Latency(Config{Big, 1000})
	if got := end.Sub(start); got != want {
		t.Fatalf("execution took %v, want %v", got, want)
	}
	if th.Executed() != 1 {
		t.Fatalf("Executed = %d", th.Executed())
	}
}

func TestFIFOQueueing(t *testing.T) {
	s, cpu := newTestCPU()
	th := cpu.NewThread("main")
	var order []int
	for i := 0; i < 5; i++ {
		i := i
		th.Submit(CPUWork(1e6), func() { order = append(order, i) })
	}
	if th.QueueLen() != 4 {
		t.Fatalf("QueueLen = %d, want 4", th.QueueLen())
	}
	s.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("completion order = %v", order)
		}
	}
	if !th.Idle() {
		t.Fatal("thread not idle after drain")
	}
}

func TestFrequencyChangeMidWorkRetimes(t *testing.T) {
	s, cpu := newTestCPU()
	cpu.SetConfig(Config{Big, 1000})
	s.RunFor(sim.Second)
	th := cpu.NewThread("main")

	// 20e6 big cycles: 20 ms at 1 GHz. After 10 ms (10e6 cycles done),
	// double the frequency to 2... (1.8 GHz not double; use 800→1600).
	cpu.SetConfig(Config{Big, 800})
	s.RunFor(sim.Second)
	start := s.Now()
	var end sim.Time
	th.Submit(Work{CyclesBig: 16e6, CyclesLittle: 32e6}, func() { end = s.Now() })
	// At 800 MHz the work takes 20 ms. After 10 ms, 8e6 cycles remain.
	s.After(10*sim.Millisecond, "boost", func() { cpu.SetConfig(Config{Big, 1600}) })
	s.Run()
	// Remaining 8e6 cycles at 1.6 GHz = 5 ms, plus the 100 µs freq-switch
	// stall. Total = 10 ms + 0.1 ms + 5 ms.
	want := 15*sim.Millisecond + FreqSwitchPenalty
	got := end.Sub(start)
	if got != want {
		t.Fatalf("retimed execution took %v, want %v", got, want)
	}
}

func TestMigrationConvertsCycles(t *testing.T) {
	s, cpu := newTestCPU()
	cpu.SetConfig(Config{Big, 800})
	s.RunFor(sim.Second)
	th := cpu.NewThread("main")

	start := s.Now()
	var end sim.Time
	// 16e6 big cycles / 32e6 little cycles. At big@800: 20 ms total.
	th.Submit(Work{CyclesBig: 16e6, CyclesLittle: 32e6}, func() { end = s.Now() })
	// After 10 ms, half the work remains (8e6 big cycles ⇒ 16e6 little).
	// Migrate to little@400: 16e6/400e6 = 40 ms more, plus 20 µs migration
	// stall, plus 100 µs because little's remembered frequency is 350.
	s.After(10*sim.Millisecond, "migrate", func() { cpu.SetConfig(Config{Little, 400}) })
	s.Run()
	want := 50*sim.Millisecond + MigrationPenalty + FreqSwitchPenalty
	if got := end.Sub(start); got != want {
		t.Fatalf("migrated execution took %v, want %v", got, want)
	}
}

func TestMigrationBackResumesRememberedFrequency(t *testing.T) {
	_, cpu := newTestCPU()
	cpu.SetConfig(Config{Big, 1500})
	cpu.SetConfig(Config{Little, 500})
	st := cpu.Stats()
	// little@350→big@1500: migration + freq switch (big remembered 800).
	// big@1500→little@500: migration + freq switch (little remembered 350).
	if st.FreqSwitches != 2 || st.Migrations != 2 {
		t.Fatalf("stats = %+v", st)
	}
	// Returning to big at its remembered 1500 MHz: migration only.
	cpu.SetConfig(Config{Big, 1500})
	st = cpu.Stats()
	if st.FreqSwitches != 2 || st.Migrations != 3 {
		t.Fatalf("stats after return = %+v", st)
	}
	if st.Total() != 5 {
		t.Fatalf("Total = %d", st.Total())
	}
}

func TestSetSameConfigNoop(t *testing.T) {
	_, cpu := newTestCPU()
	cpu.SetConfig(LowestConfig())
	if st := cpu.Stats(); st.Total() != 0 {
		t.Fatalf("no-op SetConfig counted: %+v", st)
	}
}

func TestSetInvalidConfigPanics(t *testing.T) {
	_, cpu := newTestCPU()
	defer func() {
		if recover() == nil {
			t.Fatal("SetConfig(invalid) did not panic")
		}
	}()
	cpu.SetConfig(Config{Big, 123})
}

func TestOnConfigChangeCallback(t *testing.T) {
	_, cpu := newTestCPU()
	var got [][2]Config
	cpu.OnConfigChange(func(old, new Config) { got = append(got, [2]Config{old, new}) })
	cpu.SetConfig(Config{Little, 400})
	cpu.SetConfig(Config{Little, 400}) // no-op
	cpu.SetConfig(Config{Big, 800})
	if len(got) != 2 {
		t.Fatalf("callback fired %d times, want 2", len(got))
	}
	if got[0] != [2]Config{{Little, 350}, {Little, 400}} || got[1] != [2]Config{{Little, 400}, {Big, 800}} {
		t.Fatalf("transitions = %v", got)
	}
}

func TestEnergyMatchesClosedForm(t *testing.T) {
	s, cpu := newTestCPU()
	pm := cpu.PowerModel()
	cfg := Config{Big, 1000}
	cpu.SetConfig(cfg)
	th := cpu.NewThread("main")
	// Let the stall pass, then snapshot energy and run exactly one item.
	s.RunFor(10 * sim.Millisecond)
	e0 := cpu.Energy()
	w := Work{CyclesBig: 50e6, CyclesLittle: 90e6, Indep: 5 * sim.Millisecond}
	th.Submit(w, nil)
	s.Run()
	e1 := cpu.Energy()

	cpuSec := 50e6 / 1000e6
	indepSec := 0.005
	want := float64(pm.Total(cfg, 1, 1))*cpuSec + float64(pm.Total(cfg, 0, 1))*indepSec
	if got := float64(e1 - e0); math.Abs(got-want) > 1e-9 {
		t.Fatalf("energy = %v J, want %v J", got, want)
	}
}

func TestEnergyByClusterSplits(t *testing.T) {
	s, cpu := newTestCPU()
	th := cpu.NewThread("main")
	th.Submit(CPUWork(10e6), nil)
	s.Run()
	cpu.SetConfig(Config{Big, 1800})
	th.Submit(CPUWork(10e6), nil)
	s.Run()
	little, big := cpu.Meter().EnergyByCluster()
	if little <= 0 || big <= 0 {
		t.Fatalf("split = little %v, big %v", little, big)
	}
	total := cpu.Energy()
	if math.Abs(float64(total-(little+big))) > 1e-12 {
		t.Fatalf("split doesn't sum: %v + %v != %v", little, big, total)
	}
}

func TestDAQTracksMeter(t *testing.T) {
	s, cpu := newTestCPU()
	daq := NewDAQ(s, sim.Millisecond, func() Watts { return cpu.Power() })
	th := cpu.NewThread("main")
	cpu.SetConfig(Config{Big, 1200})
	for i := 0; i < 20; i++ {
		th.Submit(Work{CyclesBig: 12e6, CyclesLittle: 22e6, Indep: 2 * sim.Millisecond}, nil)
	}
	// The DAQ self-reschedules indefinitely, so run to a fixed horizon
	// rather than draining the queue.
	s.RunUntil(sim.Time(500 * sim.Millisecond))
	daq.Stop()
	exact := float64(cpu.Energy())
	sampled := float64(daq.Energy())
	if daq.Samples() == 0 {
		t.Fatal("DAQ took no samples")
	}
	if rel := math.Abs(sampled-exact) / exact; rel > 0.10 {
		t.Fatalf("DAQ estimate %v J vs exact %v J (%.1f%% off)", sampled, exact, rel*100)
	}
}

func TestResidencySumsToElapsed(t *testing.T) {
	s, cpu := newTestCPU()
	th := cpu.NewThread("main")
	th.Submit(CPUWork(5e6), func() { cpu.SetConfig(Config{Big, 1000}) })
	th.Submit(CPUWork(5e6), func() { cpu.SetConfig(Config{Little, 500}) })
	th.Submit(CPUWork(5e6), nil)
	s.Run()
	s.RunFor(100 * sim.Millisecond)
	var sum sim.Duration
	for _, d := range cpu.Residency() {
		sum += d
	}
	if sum != sim.Duration(s.Now()) {
		t.Fatalf("residency sum %v != elapsed %v", sum, s.Now())
	}
	if len(cpu.Residency()) != 3 {
		t.Fatalf("residency has %d configs, want 3", len(cpu.Residency()))
	}
}

func TestUnionBusyTime(t *testing.T) {
	s, cpu := newTestCPU()
	a := cpu.NewThread("a")
	b := cpu.NewThread("b")
	// Two overlapping 10ms CPU-phases at little@350: 3.5e6 cycles each.
	a.Submit(Work{CyclesBig: 2e6, CyclesLittle: 3.5e6}, nil)
	s.RunFor(5 * sim.Millisecond)
	b.Submit(Work{CyclesBig: 2e6, CyclesLittle: 3.5e6}, nil)
	s.Run()
	// a busy [0,10ms], b busy [5ms,15ms] ⇒ union 15 ms.
	if got := cpu.UnionBusyTime(); got != 15*sim.Millisecond {
		t.Fatalf("UnionBusyTime = %v, want 15ms", got)
	}
	if cpu.Busy() {
		t.Fatal("CPU still busy after drain")
	}
}

func TestThreadBusyTimeExcludesIndep(t *testing.T) {
	s, cpu := newTestCPU()
	th := cpu.NewThread("main")
	w := Work{CyclesBig: 2e6, CyclesLittle: 3.5e6, Indep: 7 * sim.Millisecond}
	th.Submit(w, nil)
	s.Run()
	if got := th.BusyTime(); got != 10*sim.Millisecond {
		t.Fatalf("BusyTime = %v, want 10ms (CPU phase only)", got)
	}
}

func TestZeroCycleWorkIsPureIndep(t *testing.T) {
	s, cpu := newTestCPU()
	th := cpu.NewThread("main")
	start := s.Now()
	var end sim.Time
	th.Submit(Work{Indep: 4 * sim.Millisecond}, func() { end = s.Now() })
	s.Run()
	if end.Sub(start) != 4*sim.Millisecond {
		t.Fatalf("pure-indep work took %v", end.Sub(start))
	}
	if th.BusyTime() != 0 {
		t.Fatalf("BusyTime = %v for pure-indep work", th.BusyTime())
	}
}

func TestDoneCallbackMaySubmit(t *testing.T) {
	s, cpu := newTestCPU()
	th := cpu.NewThread("main")
	n := 0
	var chain func()
	chain = func() {
		n++
		if n < 5 {
			th.Submit(CPUWork(1e6), chain)
		}
	}
	th.Submit(CPUWork(1e6), chain)
	s.Run()
	if n != 5 {
		t.Fatalf("chained %d items, want 5", n)
	}
	if th.Executed() != 5 {
		t.Fatalf("Executed = %d", th.Executed())
	}
}

// Property: total execution time under a random sequence of mid-work
// frequency changes never beats the time at the fastest config touched and
// never exceeds the time at the slowest config touched (plus stalls).
func TestPropertyRetimingBounds(t *testing.T) {
	f := func(seed uint8, switches []uint8) bool {
		if len(switches) > 6 {
			switches = switches[:6]
		}
		s := sim.New()
		cpu := NewCPU(s, DefaultPower())
		th := cpu.NewThread("main")
		w := CPUWork(100e6)
		var end sim.Time
		th.Submit(w, func() { end = s.Now() })

		fastest := cpu.Config()
		slowest := cpu.Config()
		at := sim.Duration(1+int(seed)%5) * sim.Millisecond
		var stalls sim.Duration
		for _, sw := range switches {
			cfg := ConfigAt(int(sw) % NumConfigs())
			at += sim.Duration(1+int(sw)%7) * sim.Millisecond
			s.At(sim.Time(at), "switch", func() {
				prev := cpu.Config()
				cpu.SetConfig(cfg)
				if prev != cfg {
					if cfg.Index() > fastest.Index() {
						fastest = cfg
					}
					if cfg.Index() < slowest.Index() {
						slowest = cfg
					}
					stalls += FreqSwitchPenalty + MigrationPenalty
				}
			})
		}
		s.Run()
		lo := w.Latency(fastest)
		hi := w.Latency(slowest) + stalls
		return sim.Duration(end) >= lo && sim.Duration(end) <= hi
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestDAQRequiresPositivePeriod(t *testing.T) {
	s := sim.New()
	defer func() {
		if recover() == nil {
			t.Fatal("NewDAQ(0) did not panic")
		}
	}()
	NewDAQ(s, 0, func() Watts { return 0 })
}
