package acmp

import (
	"fmt"

	"github.com/wattwiseweb/greenweb/internal/sim"
)

// Configuration switch overheads (paper Sec. 7.1): changing the frequency of
// a cluster stalls execution for 100 µs; migrating between the big and
// little clusters stalls for 20 µs.
const (
	FreqSwitchPenalty = 100 * sim.Microsecond
	MigrationPenalty  = 20 * sim.Microsecond
)

// SwitchStats counts the configuration changes applied to a CPU, the
// quantity Fig. 12 of the paper reports.
type SwitchStats struct {
	FreqSwitches int // frequency changes within a cluster
	Migrations   int // big↔little cluster migrations
}

// Total reports all configuration switching events.
func (s SwitchStats) Total() int { return s.FreqSwitches + s.Migrations }

// DVFSFaults injects transition failures into SetConfig: a request may be
// denied outright (the old configuration stays live) or delayed by a
// transition latency. Implementations must be deterministic functions of
// virtual time (internal/faults provides a seed-driven one).
type DVFSFaults interface {
	Transition(now sim.Time) (deny bool, delay sim.Duration)
}

// FaultStats counts fault-model outcomes observed by the CPU. All zero when
// no fault injection is attached.
type FaultStats struct {
	Denied  int `json:"denied,omitempty"`  // SetConfig requests denied outright
	Delayed int `json:"delayed,omitempty"` // transitions that landed after an injected latency
	Trips   int `json:"trips,omitempty"`   // thermal-governor trips
}

// CPU simulates the ACMP processor: an exclusive active cluster running at a
// settable frequency, executing the work submitted to its threads, with a
// power meter on the CPU rails. All timing flows through the shared
// discrete-event simulator, and execution is preemptible: SetConfig re-times
// all in-flight work.
type CPU struct {
	sim   *sim.Simulator
	pm    *PowerModel
	cfg   Config
	meter *Meter

	// clusterMHz remembers each cluster's last programmed frequency, so a
	// migration back to a cluster resumes at its prior operating point
	// (as cpufreq does) and only counts a frequency switch if the governor
	// also reprograms it.
	clusterMHz [2]int

	threads    []*Thread
	stallUntil sim.Time
	busyCount  int

	stats SwitchStats

	// Residency tracking for the paper's Fig. 11 (time distribution over
	// architecture configurations).
	residency   map[Config]sim.Duration
	residencyAt sim.Time

	// Union-busy accounting for utilization-driven governors.
	unionBusySince sim.Time
	unionBusy      sim.Duration

	onConfigChange []func(old, new Config)

	// Fault-injection state (all inert until SetDVFSFaults/EnableThermal).
	thermal       *Thermal
	dvfs          DVFSFaults
	lastRequested Config     // most recent SetConfig argument, pre-clamp
	granted       Config     // configuration the last request resolved to
	pendingEv     *sim.Event // in-flight delayed transition
	faultStats    FaultStats
}

// NewCPU returns an ACMP processor attached to the simulator, initially at
// the lowest-power configuration (little @ 350 MHz) and fully idle.
func NewCPU(s *sim.Simulator, pm *PowerModel) *CPU {
	if pm == nil {
		pm = DefaultPower()
	}
	c := &CPU{
		sim:       s,
		pm:        pm,
		cfg:       LowestConfig(),
		residency: make(map[Config]sim.Duration),
	}
	c.clusterMHz[Little] = LittleMinMHz
	c.clusterMHz[Big] = BigMinMHz
	c.lastRequested = c.cfg
	c.granted = c.cfg
	c.meter = newMeter(s, pm)
	c.residencyAt = s.Now()
	c.refreshPower()
	return c
}

// Sim returns the simulator driving this CPU.
func (c *CPU) Sim() *sim.Simulator { return c.sim }

// PowerModel returns the power model in effect.
func (c *CPU) PowerModel() *PowerModel { return c.pm }

// Config reports the current execution configuration.
func (c *CPU) Config() Config { return c.cfg }

// Stats reports the configuration switching counts so far.
func (c *CPU) Stats() SwitchStats { return c.stats }

// OnConfigChange registers a callback invoked after every effective
// configuration change (used by tracing and metrics).
func (c *CPU) OnConfigChange(fn func(old, new Config)) {
	c.onConfigChange = append(c.onConfigChange, fn)
}

// SetDVFSFaults attaches a transition fault injector consulted on every
// effective configuration request. Pass nil to detach.
func (c *CPU) SetDVFSFaults(f DVFSFaults) { c.dvfs = f }

// EnableThermal attaches the thermal governor with the given parameters and
// returns it. It panics on invalid parameters (validate external input with
// ThermalParams.Validate first), like SetConfig does on invalid configs.
func (c *CPU) EnableThermal(p ThermalParams) *Thermal {
	if err := p.Validate(); err != nil {
		panic(err.Error())
	}
	t := &Thermal{cpu: c, p: p, tempC: p.AmbientC, at: c.sim.Now()}
	c.thermal = t
	t.replan()
	return t
}

// Thermal returns the attached thermal governor, or nil.
func (c *CPU) Thermal() *Thermal { return c.thermal }

// FaultStats reports the fault-model outcomes observed so far.
func (c *CPU) FaultStats() FaultStats {
	fs := c.faultStats
	if c.thermal != nil {
		fs.Trips = c.thermal.trips
	}
	return fs
}

// Ceiling reports the highest configuration currently legal: the overall
// peak, or the thermal cap while the thermal governor is tripped.
func (c *CPU) Ceiling() Config {
	if c.thermal != nil && c.thermal.tripped {
		return Config{Big, c.thermal.p.CapMHz}
	}
	return PeakConfig()
}

// ClampToCeiling lowers a configuration to the current legal ceiling; legal
// configurations pass through unchanged.
func (c *CPU) ClampToCeiling(cfg Config) Config {
	if ceil := c.Ceiling(); cfg.Index() > ceil.Index() {
		return ceil
	}
	return cfg
}

// Granted reports the configuration the most recent SetConfig request
// resolved to: the request itself when honored, the ceiling-clamped value
// under a thermal cap, or the old configuration when an injected DVFS fault
// denied the transition. Governors compare this against what they asked for
// to detect degradation.
func (c *CPU) Granted() Config { return c.granted }

// SetConfig requests a switch to a new execution configuration, applying
// the frequency-switch and migration stalls to all in-flight work and
// re-timing it for the new operating point. Setting the current
// configuration is a no-op. The request is subject to the thermal ceiling
// and any injected DVFS faults; Granted reports what actually took effect.
func (c *CPU) SetConfig(cfg Config) {
	if !cfg.Valid() {
		panic(fmt.Sprintf("acmp: SetConfig(%v): invalid", cfg))
	}
	c.lastRequested = cfg
	c.granted = c.requestConfig(cfg)
}

// requestConfig runs the fault path of a configuration request: ceiling
// clamp, then denial or delay from the injector, then the actual switch. It
// returns the configuration the request resolved to.
func (c *CPU) requestConfig(cfg Config) Config {
	cfg = c.ClampToCeiling(cfg)
	if c.pendingEv != nil {
		// A delayed transition is in flight; the newest request supersedes it.
		c.pendingEv.Cancel()
		c.pendingEv = nil
	}
	if cfg == c.cfg {
		return cfg
	}
	if c.dvfs != nil {
		deny, delay := c.dvfs.Transition(c.sim.Now())
		if deny {
			c.faultStats.Denied++
			return c.cfg
		}
		if delay > 0 {
			c.faultStats.Delayed++
			target := cfg
			c.pendingEv = c.sim.After(delay, "acmp:dvfs-delayed", func() {
				c.pendingEv = nil
				t := c.ClampToCeiling(target)
				if t != c.cfg {
					c.applyConfig(t)
				}
				c.granted = t
			})
			return cfg
		}
	}
	c.applyConfig(cfg)
	return cfg
}

// applyConfig performs the switch itself. cfg must differ from the current
// configuration and already be within the legal ceiling.
func (c *CPU) applyConfig(cfg Config) {
	old := c.cfg
	if c.thermal != nil {
		// Integrate the die temperature under the outgoing configuration
		// before the rate changes.
		c.thermal.advance()
	}

	var penalty sim.Duration
	if cfg.Cluster != old.Cluster {
		c.stats.Migrations++
		penalty += MigrationPenalty
	}
	if cfg.MHz != c.clusterMHz[cfg.Cluster] {
		c.stats.FreqSwitches++
		penalty += FreqSwitchPenalty
	}

	now := c.sim.Now()
	c.accrueResidency(now)

	// Account progress under the old configuration before changing rates.
	for _, t := range c.threads {
		t.accrueProgress(now, old)
	}

	c.cfg = cfg
	c.clusterMHz[cfg.Cluster] = cfg.MHz
	stallEnd := now.Add(penalty)
	if stallEnd > c.stallUntil {
		c.stallUntil = stallEnd
	}

	// Re-time all in-flight CPU phases at the new rate, after the stall.
	for _, t := range c.threads {
		t.retime(old.Cluster, cfg.Cluster)
	}

	c.refreshPower()
	if c.thermal != nil {
		c.thermal.replan()
	}
	for _, fn := range c.onConfigChange {
		fn(old, cfg)
	}
}

// Energy reports the total CPU-rail energy consumed so far.
func (c *CPU) Energy() Joules { return c.meter.Energy() }

// Power reports the instantaneous CPU-rail power draw.
func (c *CPU) Power() Watts { return c.meter.Power() }

// Meter exposes the energy meter, e.g. for attaching a DAQ sampler.
func (c *CPU) Meter() *Meter { return c.meter }

// UnionBusyTime reports the cumulative time during which at least one
// thread was executing a CPU phase. Utilization-driven governors divide a
// window's delta by the window length.
func (c *CPU) UnionBusyTime() sim.Duration {
	d := c.unionBusy
	if c.busyCount > 0 {
		d += c.sim.Now().Sub(c.unionBusySince)
	}
	return d
}

// Busy reports whether any thread is currently executing a CPU phase.
func (c *CPU) Busy() bool { return c.busyCount > 0 }

// Residency reports the time spent in each execution configuration,
// including the currently accruing one. The map is a fresh copy.
func (c *CPU) Residency() map[Config]sim.Duration {
	out := make(map[Config]sim.Duration, len(c.residency)+1)
	for cfg, d := range c.residency {
		out[cfg] = d
	}
	out[c.cfg] += c.sim.Now().Sub(c.residencyAt)
	return out
}

func (c *CPU) accrueResidency(now sim.Time) {
	c.residency[c.cfg] += now.Sub(c.residencyAt)
	c.residencyAt = now
}

func (c *CPU) refreshPower() {
	c.meter.set(c.pm.Total(c.cfg, c.busyCount, len(c.threads)), c.cfg.Cluster)
}

func (c *CPU) threadBusyChanged(delta int) {
	now := c.sim.Now()
	was := c.busyCount > 0
	c.busyCount += delta
	if c.busyCount < 0 {
		panic("acmp: negative busy count")
	}
	is := c.busyCount > 0
	if !was && is {
		c.unionBusySince = now
	} else if was && !is {
		c.unionBusy += now.Sub(c.unionBusySince)
	}
	c.refreshPower()
}

// NewThread creates an execution context pinned to its own core. The
// browser model creates one per engine thread (renderer main, compositor,
// browser-process I/O), which mirrors the ample core count of the modelled
// SoC (four per cluster).
func (c *CPU) NewThread(name string) *Thread {
	t := &Thread{cpu: c, name: name}
	c.threads = append(c.threads, t)
	c.refreshPower()
	return t
}

type threadState int

const (
	threadIdle threadState = iota
	threadCPUPhase
	threadIndepPhase
)

type workItem struct {
	work Work
	done func()
}

// Thread is a serial execution context on the CPU: submitted work runs
// in FIFO order, one item at a time. During an item's CPU phase the thread
// occupies a core (drawing active power, progressing at the configured
// frequency); during its frequency-independent phase the core idles while
// GPU/memory finish the item.
type Thread struct {
	cpu   *CPU
	name  string
	queue []workItem
	state threadState

	cur             workItem
	remainingCycles float64 // in active-cluster cycles
	segStart        sim.Time
	doneEv          *sim.Event

	busyTotal sim.Duration
	executed  int
}

// Name reports the thread's diagnostic label.
func (t *Thread) Name() string { return t.name }

// QueueLen reports the number of items waiting behind the current one.
func (t *Thread) QueueLen() int { return len(t.queue) }

// Idle reports whether the thread has no current or queued work.
func (t *Thread) Idle() bool { return t.state == threadIdle && len(t.queue) == 0 }

// BusyTime reports the cumulative CPU-phase time of this thread.
func (t *Thread) BusyTime() sim.Duration {
	d := t.busyTotal
	if t.state == threadCPUPhase {
		now := t.cpu.sim.Now()
		if now > t.segStart {
			// Only count time actually progressing (segStart absorbs stalls
			// conservatively; stall time counts as busy once reached).
			d += now.Sub(t.segStart)
		}
	}
	return d
}

// Executed reports how many work items have fully completed on this thread.
func (t *Thread) Executed() int { return t.executed }

// Submit enqueues work; done (which may be nil) runs when the item fully
// completes, at which point the next queued item starts.
func (t *Thread) Submit(w Work, done func()) {
	t.queue = append(t.queue, workItem{w, done})
	if t.state == threadIdle {
		t.startNext()
	}
}

func (t *Thread) startNext() {
	if len(t.queue) == 0 {
		t.state = threadIdle
		return
	}
	t.cur = t.queue[0]
	t.queue = t.queue[1:]
	cluster := t.cpu.cfg.Cluster
	t.remainingCycles = float64(t.cur.work.Cycles(cluster))
	if t.remainingCycles > 0 {
		t.state = threadCPUPhase
		t.cpu.threadBusyChanged(+1)
		t.scheduleCompletion()
	} else {
		t.startIndepPhase()
	}
}

// scheduleCompletion plans the end of the CPU phase from the current
// remaining cycles, respecting any switch stall in effect.
func (t *Thread) scheduleCompletion() {
	now := t.cpu.sim.Now()
	start := now
	if t.cpu.stallUntil > start {
		start = t.cpu.stallUntil
	}
	t.segStart = start
	rate := t.cpu.cfg.HzF() // cycles per second
	secs := t.remainingCycles / rate
	finish := start.Add(sim.Duration(secs*1e6 + 0.5))
	if finish < now {
		finish = now
	}
	if t.doneEv != nil {
		t.doneEv.Cancel()
	}
	t.doneEv = t.cpu.sim.At(finish, t.name+":cpu-done", t.cpuPhaseDone)
}

// accrueProgress charges cycles executed since segStart under the old
// configuration against the remaining cycle count. Called by SetConfig
// before the rate changes.
func (t *Thread) accrueProgress(now sim.Time, old Config) {
	if t.state != threadCPUPhase {
		return
	}
	if now <= t.segStart {
		// Still inside a switch stall: no progress was made, and retime's
		// scheduleCompletion will recompute the resume point.
		return
	}
	elapsed := now.Sub(t.segStart)
	done := elapsed.Seconds() * old.HzF()
	t.remainingCycles -= done
	if t.remainingCycles < 0 {
		t.remainingCycles = 0
	}
	t.busyTotal += elapsed
	t.segStart = now
}

// retime converts remaining cycles across a cluster change and reschedules
// the CPU-phase completion at the new rate.
func (t *Thread) retime(oldCluster, newCluster Cluster) {
	if t.state != threadCPUPhase {
		return
	}
	if oldCluster != newCluster {
		oldTotal := float64(t.cur.work.Cycles(oldCluster))
		newTotal := float64(t.cur.work.Cycles(newCluster))
		if oldTotal > 0 {
			t.remainingCycles = t.remainingCycles / oldTotal * newTotal
		} else {
			t.remainingCycles = newTotal
		}
	}
	t.scheduleCompletion()
}

func (t *Thread) cpuPhaseDone() {
	now := t.cpu.sim.Now()
	if now > t.segStart {
		t.busyTotal += now.Sub(t.segStart)
	}
	t.segStart = now
	t.remainingCycles = 0
	t.doneEv = nil
	t.cpu.threadBusyChanged(-1)
	t.startIndepPhase()
}

func (t *Thread) startIndepPhase() {
	if t.cur.work.Indep > 0 {
		t.state = threadIndepPhase
		t.cpu.sim.After(t.cur.work.Indep, t.name+":indep-done", t.itemDone)
	} else {
		t.itemDone()
	}
}

func (t *Thread) itemDone() {
	done := t.cur.done
	t.cur = workItem{}
	t.state = threadIdle
	t.executed++
	if done != nil {
		done()
	}
	if t.state == threadIdle { // done() may have submitted and started work
		t.startNext()
	}
}
