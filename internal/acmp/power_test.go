package acmp

import (
	"testing"
	"testing/quick"
)

func TestPowerMonotoneInFrequency(t *testing.T) {
	pm := DefaultPower()
	for _, cluster := range []Cluster{Little, Big} {
		freqs := ClusterFreqs(cluster)
		for i := 1; i < len(freqs); i++ {
			lo := Config{cluster, freqs[i-1]}
			hi := Config{cluster, freqs[i]}
			if pm.CoreActive(hi) <= pm.CoreActive(lo) {
				t.Errorf("CoreActive not increasing: %v=%v, %v=%v", lo, pm.CoreActive(lo), hi, pm.CoreActive(hi))
			}
			if pm.ClusterStatic(hi) < pm.ClusterStatic(lo) {
				t.Errorf("ClusterStatic decreasing from %v to %v", lo, hi)
			}
		}
	}
}

func TestPowerEnvelope(t *testing.T) {
	pm := DefaultPower()
	// The calibrated model must land in the published A15/A7 envelope.
	bigPeak := pm.CoreActive(PeakConfig())
	if bigPeak < 2.0 || bigPeak > 3.5 {
		t.Errorf("big core peak power %v W outside [2, 3.5]", bigPeak)
	}
	bigMin := pm.CoreActive(Config{Big, 800})
	if bigMin < 0.4 || bigMin > 1.0 {
		t.Errorf("big core min power %v W outside [0.4, 1]", bigMin)
	}
	litPeak := pm.CoreActive(Config{Little, 600})
	if litPeak < 0.15 || litPeak > 0.5 {
		t.Errorf("little core peak power %v W outside [0.15, 0.5]", litPeak)
	}
	litMin := pm.CoreActive(LowestConfig())
	if litMin < 0.05 || litMin > 0.2 {
		t.Errorf("little core min power %v W outside [0.05, 0.2]", litMin)
	}
}

func TestLittleMoreEfficientThanBig(t *testing.T) {
	pm := DefaultPower()
	w := CPUWork(100e6)
	// Energy per task at little's lowest point must beat any big point,
	// otherwise the ACMP trade-off space collapses.
	eLittle := w.Energy(LowestConfig(), pm)
	for _, f := range BigFreqs() {
		eBig := w.Energy(Config{Big, f}, pm)
		if eLittle >= eBig {
			t.Errorf("little@350 energy %v >= big@%d energy %v", eLittle, f, eBig)
		}
	}
}

func TestBigFasterThanLittle(t *testing.T) {
	w := CPUWork(100e6)
	// Any big operating point must outperform any little one for CPU work,
	// making Configs() a true performance order.
	slowestBig := w.Latency(Config{Big, BigMinMHz})
	fastestLittle := w.Latency(Config{Little, LittleMaxMHz})
	if slowestBig >= fastestLittle {
		t.Fatalf("big@800 latency %v >= little@600 latency %v", slowestBig, fastestLittle)
	}
}

func TestVoltageRange(t *testing.T) {
	pm := DefaultPower()
	if v := pm.Voltage(Config{Big, 800}); v != 0.90 {
		t.Errorf("Vbig(800) = %v", v)
	}
	if v := pm.Voltage(Config{Big, 1800}); v != 1.20 {
		t.Errorf("Vbig(1800) = %v", v)
	}
	if v := pm.Voltage(Config{Little, 350}); v != 0.90 {
		t.Errorf("Vlittle(350) = %v", v)
	}
	if v := pm.Voltage(Config{Little, 600}); v < 1.0999 || v > 1.1001 {
		t.Errorf("Vlittle(600) = %v", v)
	}
}

func TestTotalPowerComposition(t *testing.T) {
	pm := DefaultPower()
	cfg := Config{Big, 1000}
	idle := pm.Total(cfg, 0, 3)
	one := pm.Total(cfg, 1, 3)
	three := pm.Total(cfg, 3, 3)
	if idle >= one || one >= three {
		t.Fatalf("power not increasing with busy cores: %v %v %v", idle, one, three)
	}
	// Cluster-idle power is the cpuidle sleep level, independent of the
	// programmed frequency.
	if idle != pm.Sleep(Big) {
		t.Fatalf("idle power %v != sleep %v", idle, pm.Sleep(Big))
	}
	if pm.Total(PeakConfig(), 0, 3) != pm.Total(Config{Big, 800}, 0, 3) {
		t.Fatal("sleep power must not depend on frequency")
	}
	if pm.Sleep(Little) >= pm.Sleep(Big) {
		t.Fatal("little sleep must undercut big sleep")
	}
	wantOne := pm.ClusterStatic(cfg) + pm.CoreActive(cfg) + 2*pm.CoreIdle(Big)
	if diff := float64(one - wantOne); diff > 1e-12 || diff < -1e-12 {
		t.Fatalf("Total(1 of 3) = %v, want %v", one, wantOne)
	}
}

func TestTotalPanicsOnBadCounts(t *testing.T) {
	pm := DefaultPower()
	for _, c := range []struct{ busy, cores int }{{-1, 3}, {4, 3}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Total(%d, %d) did not panic", c.busy, c.cores)
				}
			}()
			pm.Total(Config{Big, 800}, c.busy, c.cores)
		}()
	}
}

// Property: for every config, total power with n busy cores is
// static + n·active + (cores-n)·idle exactly.
func TestPropertyTotalLinearInBusy(t *testing.T) {
	pm := DefaultPower()
	f := func(ci, busyRaw uint8) bool {
		cfg := ConfigAt(int(ci) % NumConfigs())
		cores := 4
		busy := int(busyRaw)%cores + 1 // busy >= 1; busy==0 is sleep
		got := pm.Total(cfg, busy, cores)
		want := pm.ClusterStatic(cfg) + Watts(busy)*pm.CoreActive(cfg) + Watts(cores-busy)*pm.CoreIdle(cfg.Cluster)
		d := float64(got - want)
		return d < 1e-9 && d > -1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
