package acmp

import (
	"math"
	"testing"

	"github.com/wattwiseweb/greenweb/internal/sim"
)

// TestDAQStopCancelsPendingSample pins the DAQ.Stop fix: stopping must
// cancel the pending daq:sample event (not leave it dangling in the
// simulator queue) and flush the final partial sampling period into the
// estimate.
func TestDAQStopCancelsPendingSample(t *testing.T) {
	s := sim.New()
	d := NewDAQ(s, sim.Millisecond, func() Watts { return 1 })

	s.RunUntil(sim.Time(2500 * sim.Microsecond))
	if d.Samples() != 2 {
		t.Fatalf("samples = %d, want 2", d.Samples())
	}
	d.Stop()

	// The pending sample must be gone: with nothing else scheduled, the
	// queue must report no next event.
	if at := s.NextEventAt(); at != sim.Forever {
		t.Errorf("dangling daq event at %v after Stop", at)
	}

	// 2 full periods + a 0.5 ms partial at 1 W = 2.5 mJ.
	want := Joules(0.0025)
	if diff := math.Abs(float64(d.Energy() - want)); diff > 1e-12 {
		t.Errorf("energy = %v J, want %v J (partial period not flushed?)", d.Energy(), want)
	}
}

// TestDAQStopIdempotent pins that a second Stop neither double-flushes the
// partial period nor panics.
func TestDAQStopIdempotent(t *testing.T) {
	s := sim.New()
	d := NewDAQ(s, sim.Millisecond, func() Watts { return 2 })
	s.RunUntil(sim.Time(1500 * sim.Microsecond))
	d.Stop()
	first := d.Energy()
	d.Stop()
	if d.Energy() != first {
		t.Fatalf("second Stop changed energy: %v -> %v", first, d.Energy())
	}
}

// driveMigrations runs a deterministic workload with cluster migrations and
// mid-run frequency switches on a fresh simulated CPU, stopping the clock at
// a fixed horizon. It returns the CPU so callers can inspect the meter.
func driveMigrations(s *sim.Simulator) *CPU {
	cpu := NewCPU(s, nil)
	th := cpu.NewThread("worker")

	submit := func(cycles int64) {
		th.Submit(Work{CyclesBig: cycles, CyclesLittle: int64(float64(cycles) * 1.8)}, nil)
	}
	submit(2_000_000)
	s.After(5*sim.Millisecond, "to-big", func() {
		cpu.SetConfig(Config{Big, BigMaxMHz})
		submit(10_000_000)
	})
	s.After(12*sim.Millisecond, "freq-down", func() {
		cpu.SetConfig(Config{Big, BigMinMHz})
	})
	s.After(20*sim.Millisecond, "to-little", func() {
		cpu.SetConfig(Config{Little, LittleMaxMHz})
		submit(1_000_000)
	})
	s.After(30*sim.Millisecond, "back-to-big", func() {
		cpu.SetConfig(Config{Big, 1200})
	})
	s.RunUntil(sim.Time(40 * sim.Millisecond))
	return cpu
}

// TestMeterCrossRailConservation checks that the per-cluster split accounts
// for every joule across a schedule with cluster migrations: little + big
// must equal the total integral exactly (to float rounding).
func TestMeterCrossRailConservation(t *testing.T) {
	s := sim.New()
	cpu := driveMigrations(s)

	if cpu.Stats().Migrations < 3 {
		t.Fatalf("workload produced %d migrations, want >= 3", cpu.Stats().Migrations)
	}
	total := cpu.Energy()
	little, big := cpu.Meter().EnergyByCluster()
	if little <= 0 || big <= 0 {
		t.Fatalf("expected energy on both rails, got little=%v big=%v", little, big)
	}
	if diff := math.Abs(float64(little + big - total)); diff > 1e-12 {
		t.Errorf("little(%v) + big(%v) != total(%v), |Δ| = %g", little, big, total, diff)
	}
}

// TestDAQConvergesToMeter checks that the sampled estimate approaches the
// exact piecewise-constant integral as the sampling period shrinks (the
// paper's 1 kS/s DAQ vs. the sense-resistor ground truth).
func TestDAQConvergesToMeter(t *testing.T) {
	errAt := func(period sim.Duration) (absErr, exact float64) {
		s := sim.New()
		cpu := NewCPU(s, nil)
		d := NewDAQ(s, period, func() Watts { return cpu.Power() })
		th := cpu.NewThread("worker")
		th.Submit(Work{CyclesBig: 2_000_000, CyclesLittle: 3_600_000}, nil)
		s.After(5*sim.Millisecond, "to-big", func() {
			cpu.SetConfig(Config{Big, BigMaxMHz})
			th.Submit(Work{CyclesBig: 10_000_000, CyclesLittle: 18_000_000}, nil)
		})
		s.After(20*sim.Millisecond, "to-little", func() {
			cpu.SetConfig(Config{Little, LittleMaxMHz})
		})
		s.RunUntil(sim.Time(40 * sim.Millisecond))
		d.Stop()
		return math.Abs(float64(d.Energy() - cpu.Energy())), float64(cpu.Energy())
	}

	periods := []sim.Duration{5 * sim.Millisecond, 500 * sim.Microsecond, 50 * sim.Microsecond}
	var errs []float64
	var exact float64
	for _, p := range periods {
		e, ex := errAt(p)
		errs = append(errs, e)
		exact = ex
	}
	for i := 1; i < len(errs); i++ {
		if errs[i] > errs[i-1] {
			t.Errorf("error grew as period shrank: err(%v)=%g > err(%v)=%g",
				periods[i], errs[i], periods[i-1], errs[i-1])
		}
	}
	// At 50 µs the estimate must be within 1% of the exact integral.
	if errs[len(errs)-1] > 0.01*exact {
		t.Errorf("err at 50µs = %g J, want < 1%% of %g J", errs[len(errs)-1], exact)
	}
}
