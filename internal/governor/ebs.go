package governor

import (
	"strings"

	"github.com/wattwiseweb/greenweb/internal/acmp"
	"github.com/wattwiseweb/greenweb/internal/browser"
	"github.com/wattwiseweb/greenweb/internal/dom"
	"github.com/wattwiseweb/greenweb/internal/sim"
)

// EBS models event-based scheduling (Zhu et al., HPCA 2015), the annotation-
// free related-work system the paper contrasts GreenWeb with (Sec. 9):
// without QoS annotations, EBS uses an event's *measured* execution latency
// as a proxy for the user's expectation — if an event takes long, it
// "guesses" users tolerate long latencies and reduces performance.
//
// The paper's critique, which this implementation lets the benches
// demonstrate, is that measured latency is an artifact of the device's
// current operating point, not of user intent: a heavyweight but urgent
// interaction (MSN's 100 ms menu) measures slow and is therefore scheduled
// slow, violating the user's actual expectation, while GreenWeb's
// annotations carry the inherent constraint.
type EBS struct {
	e   *browser.Engine
	cpu *acmp.CPU

	// latency history per event class → guessed tolerance bucket.
	guess map[string]sim.Duration
}

// EBS tolerance buckets: measured latency is rounded up to the next
// human-perception boundary and that becomes the deadline guess.
var ebsBuckets = []sim.Duration{
	16600 * sim.Microsecond,
	100 * sim.Millisecond,
	300 * sim.Millisecond,
	1 * sim.Second,
	10 * sim.Second,
}

// NewEBS returns an event-based scheduler.
func NewEBS() *EBS { return &EBS{guess: make(map[string]sim.Duration)} }

// Name implements browser.Governor.
func (g *EBS) Name() string { return "EBS" }

// Attach implements browser.Governor.
func (g *EBS) Attach(e *browser.Engine) {
	g.e = e
	g.cpu = e.CPU()
	g.cpu.SetConfig(acmp.LowestConfig())
}

func ebsClass(in browser.InputRecord) string {
	return in.Target + "@" + strings.ToLower(in.Event)
}

// OnInput implements browser.Governor: schedule to the class's guessed
// tolerance. Unknown classes get the benefit of the doubt (peak), like a
// first touch under a boost.
func (g *EBS) OnInput(in browser.InputRecord, _ *dom.Node) {
	tol, ok := g.guess[ebsClass(in)]
	if !ok {
		g.cpu.SetConfig(acmp.PeakConfig())
		return
	}
	g.cpu.SetConfig(g.configFor(tol))
}

// configFor maps a tolerance guess to an operating point: the tighter the
// guessed deadline, the higher the configuration. The mapping is static —
// EBS has no per-event performance model.
func (g *EBS) configFor(tol sim.Duration) acmp.Config {
	switch {
	case tol <= 16600*sim.Microsecond:
		return acmp.PeakConfig()
	case tol <= 100*sim.Millisecond:
		return acmp.Config{Cluster: acmp.Big, MHz: 1200}
	case tol <= 300*sim.Millisecond:
		return acmp.Config{Cluster: acmp.Big, MHz: 800}
	case tol <= sim.Second:
		return acmp.Config{Cluster: acmp.Little, MHz: 600}
	default:
		return acmp.LowestConfig()
	}
}

// OnFrameStart implements browser.Governor.
func (g *EBS) OnFrameStart(int, browser.Provenance) {}

// OnFrameEnd implements browser.Governor: update latency guesses. The
// measured latency is rounded UP to the next bucket — "if an event takes a
// long time to execute, EBS guesses users tolerate a long latency and
// reduces CPU frequency" — which is precisely the failure mode GreenWeb's
// explicit annotations avoid.
func (g *EBS) OnFrameEnd(fr *browser.FrameResult) {
	for _, il := range fr.Inputs {
		tol := ebsBuckets[len(ebsBuckets)-1]
		for _, b := range ebsBuckets {
			if il.Latency <= b {
				tol = b
				break
			}
		}
		g.guess[ebsClass(il.Input)] = tol
	}
}

// OnEventComplete implements browser.Governor: conserve when idle.
func (g *EBS) OnEventComplete(browser.UID) {
	g.cpu.SetConfig(acmp.MinConfig(g.cpu.Config().Cluster))
}
