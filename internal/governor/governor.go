// Package governor implements the baseline CPU governors the paper
// compares against (Sec. 7.1): Perf, which pins the system at peak
// performance, and Interactive, a model of Android's default interactive
// cpufreq governor, which boosts on input and then tracks CPU utilization.
// Ondemand and Powersave are included as additional reference points.
//
// All governors drive the same ACMP configuration space the GreenWeb
// runtime uses, so energy and QoS comparisons are apples-to-apples.
package governor

import (
	"github.com/wattwiseweb/greenweb/internal/acmp"
	"github.com/wattwiseweb/greenweb/internal/browser"
	"github.com/wattwiseweb/greenweb/internal/dom"
	"github.com/wattwiseweb/greenweb/internal/sim"
)

// perfScale ranks configurations by effective throughput: frequency times
// the big cluster's IPC advantage.
func perfScale(c acmp.Config) float64 {
	f := float64(c.MHz)
	if c.Cluster == acmp.Big {
		return f * acmp.DefaultMicroArchRatio
	}
	return f
}

// configFor returns the lowest-energy configuration whose throughput is at
// least want.
func configFor(want float64) acmp.Config {
	for i, n := 0, acmp.NumConfigs(); i < n; i++ {
		if c := acmp.ConfigAt(i); perfScale(c) >= want {
			return c
		}
	}
	return acmp.PeakConfig()
}

// Perf pins the highest-performance configuration for the whole run — the
// paper's upper-bound baseline with best QoS and worst energy.
type Perf struct{}

// NewPerf returns the Perf governor.
func NewPerf() *Perf { return &Perf{} }

// Name implements browser.Governor.
func (*Perf) Name() string { return "Perf" }

// Attach implements browser.Governor.
func (*Perf) Attach(e *browser.Engine) { e.CPU().SetConfig(acmp.PeakConfig()) }

// OnInput implements browser.Governor.
func (*Perf) OnInput(browser.InputRecord, *dom.Node) {}

// OnFrameStart implements browser.Governor.
func (*Perf) OnFrameStart(int, browser.Provenance) {}

// OnFrameEnd implements browser.Governor.
func (*Perf) OnFrameEnd(*browser.FrameResult) {}

// OnEventComplete implements browser.Governor.
func (*Perf) OnEventComplete(browser.UID) {}

// Powersave pins the lowest-power configuration — the energy lower bound
// with unbounded QoS violations.
type Powersave struct{}

// NewPowersave returns the Powersave governor.
func NewPowersave() *Powersave { return &Powersave{} }

// Name implements browser.Governor.
func (*Powersave) Name() string { return "Powersave" }

// Attach implements browser.Governor.
func (*Powersave) Attach(e *browser.Engine) { e.CPU().SetConfig(acmp.LowestConfig()) }

// OnInput implements browser.Governor.
func (*Powersave) OnInput(browser.InputRecord, *dom.Node) {}

// OnFrameStart implements browser.Governor.
func (*Powersave) OnFrameStart(int, browser.Provenance) {}

// OnFrameEnd implements browser.Governor.
func (*Powersave) OnFrameEnd(*browser.FrameResult) {}

// OnEventComplete implements browser.Governor.
func (*Powersave) OnEventComplete(browser.UID) {}

// InteractiveParams are the tunables of the Interactive model, named after
// their Android cpufreq counterparts.
type InteractiveParams struct {
	TimerRate      sim.Duration // utilization sampling period
	GoHispeedLoad  float64      // load that triggers the hispeed jump
	TargetLoad     float64      // steady-state utilization target
	MinSampleTime  sim.Duration // dwell time before stepping down
	HispeedConfig  acmp.Config  // jump target on input or high load
	InputBoostTime sim.Duration // boost hold after an input event
}

// DefaultInteractiveParams mirror Android's stock interactive tuning
// (20 ms timer, 85/90 loads, 80 ms min sample time) mapped onto the
// Exynos 5410 configuration space. The input boost jumps to the peak
// configuration, as vendor touch-boost policies of the era did — which is
// why the paper finds Interactive "almost always operating at the peak
// performance" during interaction.
func DefaultInteractiveParams() InteractiveParams {
	return InteractiveParams{
		TimerRate:      20 * sim.Millisecond,
		GoHispeedLoad:  0.85,
		TargetLoad:     0.90,
		MinSampleTime:  80 * sim.Millisecond,
		HispeedConfig:  acmp.PeakConfig(),
		InputBoostTime: 100 * sim.Millisecond,
	}
}

// Interactive models Android's default interactive governor: on input it
// boosts to the hispeed configuration; on its sampling timer it raises
// performance immediately when utilization is high and lowers it only
// after a dwell period of low utilization. Because interaction frames keep
// utilization high, it ends up near peak for most of an interaction —
// which is exactly the behaviour the paper measures (Interactive ≈ Perf).
type Interactive struct {
	P InteractiveParams

	e   *browser.Engine
	cpu *acmp.CPU

	lastBusy    sim.Duration
	lastSample  sim.Time
	lowSince    sim.Time
	boostUntil  sim.Time
	stopped     bool
	stopAtQuiet bool
}

// NewInteractive returns an Interactive governor with the given parameters.
func NewInteractive(p InteractiveParams) *Interactive { return &Interactive{P: p} }

// Name implements browser.Governor.
func (g *Interactive) Name() string { return "Interactive" }

// Attach implements browser.Governor.
func (g *Interactive) Attach(e *browser.Engine) {
	g.e = e
	g.cpu = e.CPU()
	g.cpu.SetConfig(acmp.LowestConfig())
	g.lastSample = e.Sim().Now()
	g.lowSince = e.Sim().Now()
	g.scheduleTimer()
}

// Stop cancels the sampling timer (the harness calls this at the end of a
// run so the simulation can drain).
func (g *Interactive) Stop() { g.stopped = true }

func (g *Interactive) scheduleTimer() {
	g.e.Sim().After(g.P.TimerRate, "interactive:timer", func() {
		if g.stopped {
			return
		}
		g.sample()
		g.scheduleTimer()
	})
}

func (g *Interactive) sample() {
	now := g.e.Sim().Now()
	busy := g.cpu.UnionBusyTime()
	window := now.Sub(g.lastSample)
	if window <= 0 {
		return
	}
	util := float64(busy-g.lastBusy) / float64(window)
	g.lastBusy = busy
	g.lastSample = now

	cur := g.cpu.Config()
	boosted := now < g.boostUntil

	switch {
	case util >= g.P.GoHispeedLoad:
		g.lowSince = now
		// Jump to hispeed, then climb toward the load target.
		target := cur
		if perfScale(cur) < perfScale(g.P.HispeedConfig) {
			target = g.P.HispeedConfig
		} else {
			want := perfScale(cur) * util / g.P.TargetLoad
			target = configFor(want)
		}
		g.cpu.SetConfig(target)
	case util >= g.P.TargetLoad:
		g.lowSince = now
		want := perfScale(cur) * util / g.P.TargetLoad
		g.cpu.SetConfig(configFor(want))
	default:
		if boosted {
			return
		}
		// Only step down after MinSampleTime of sustained low load.
		if now.Sub(g.lowSince) < g.P.MinSampleTime {
			return
		}
		want := perfScale(cur) * util / g.P.TargetLoad
		target := configFor(want)
		if perfScale(target) < perfScale(cur) {
			g.cpu.SetConfig(target)
		}
	}
}

// OnInput implements browser.Governor: the input boost.
func (g *Interactive) OnInput(in browser.InputRecord, _ *dom.Node) {
	now := g.e.Sim().Now()
	g.boostUntil = now.Add(g.P.InputBoostTime)
	g.lowSince = now
	if perfScale(g.cpu.Config()) < perfScale(g.P.HispeedConfig) {
		g.cpu.SetConfig(g.P.HispeedConfig)
	}
}

// OnFrameStart implements browser.Governor.
func (g *Interactive) OnFrameStart(int, browser.Provenance) {}

// OnFrameEnd implements browser.Governor.
func (g *Interactive) OnFrameEnd(*browser.FrameResult) {}

// OnEventComplete implements browser.Governor.
func (g *Interactive) OnEventComplete(browser.UID) {}

// Ondemand is the classic Linux ondemand policy: sample at a slower rate,
// jump straight to peak above the up-threshold, otherwise scale down
// proportionally.
type Ondemand struct {
	SamplePeriod sim.Duration
	UpThreshold  float64

	e        *browser.Engine
	cpu      *acmp.CPU
	lastBusy sim.Duration
	lastAt   sim.Time
	stopped  bool
}

// NewOndemand returns an Ondemand governor with stock tuning.
func NewOndemand() *Ondemand {
	return &Ondemand{SamplePeriod: 100 * sim.Millisecond, UpThreshold: 0.80}
}

// Name implements browser.Governor.
func (g *Ondemand) Name() string { return "Ondemand" }

// Attach implements browser.Governor.
func (g *Ondemand) Attach(e *browser.Engine) {
	g.e = e
	g.cpu = e.CPU()
	g.cpu.SetConfig(acmp.LowestConfig())
	g.lastAt = e.Sim().Now()
	g.tick()
}

// Stop cancels the sampling timer.
func (g *Ondemand) Stop() { g.stopped = true }

func (g *Ondemand) tick() {
	g.e.Sim().After(g.SamplePeriod, "ondemand:timer", func() {
		if g.stopped {
			return
		}
		now := g.e.Sim().Now()
		busy := g.cpu.UnionBusyTime()
		util := float64(busy-g.lastBusy) / float64(now.Sub(g.lastAt))
		g.lastBusy, g.lastAt = busy, now
		if util >= g.UpThreshold {
			g.cpu.SetConfig(acmp.PeakConfig())
		} else {
			want := perfScale(g.cpu.Config()) * util / g.UpThreshold
			g.cpu.SetConfig(configFor(want))
		}
		g.tick()
	})
}

// OnInput implements browser.Governor.
func (g *Ondemand) OnInput(browser.InputRecord, *dom.Node) {}

// OnFrameStart implements browser.Governor.
func (g *Ondemand) OnFrameStart(int, browser.Provenance) {}

// OnFrameEnd implements browser.Governor.
func (g *Ondemand) OnFrameEnd(*browser.FrameResult) {}

// OnEventComplete implements browser.Governor.
func (g *Ondemand) OnEventComplete(browser.UID) {}
