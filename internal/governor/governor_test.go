package governor

import (
	"testing"

	"github.com/wattwiseweb/greenweb/internal/acmp"
	"github.com/wattwiseweb/greenweb/internal/browser"
	"github.com/wattwiseweb/greenweb/internal/sim"
)

const page = `<html><body><div id="d">x</div>
	<script>
		document.getElementById("d").addEventListener("click", function(e) {
			work(300);
			e.target.style.width = "10px";
		});
		var frames = 0;
		document.getElementById("d").addEventListener("touchstart", function(e) {
			function step() {
				frames++;
				work(250);
				document.getElementById("d").style.height = frames + "px";
				if (frames < 60) { requestAnimationFrame(step); }
			}
			requestAnimationFrame(step);
		});
	</script></body></html>`

func setup(t *testing.T, g browser.Governor) (*sim.Simulator, *browser.Engine) {
	t.Helper()
	s := sim.New()
	cpu := acmp.NewCPU(s, acmp.DefaultPower())
	e := browser.New(s, cpu, nil)
	e.SetGovernor(g)
	if _, err := e.LoadPage(page); err != nil {
		t.Fatal(err)
	}
	return s, e
}

func TestPerfPinsPeak(t *testing.T) {
	s, e := setup(t, NewPerf())
	s.RunUntil(sim.Time(2 * sim.Second))
	if e.CPU().Config() != acmp.PeakConfig() {
		t.Fatalf("config = %v", e.CPU().Config())
	}
	// Only the initial pin (one migration plus one frequency switch).
	if st := e.CPU().Stats(); st.Migrations != 1 || st.FreqSwitches != 1 {
		t.Fatalf("switches = %+v", st)
	}
	res := e.CPU().Residency()
	if len(res) > 2 {
		t.Fatalf("residency across %d configs, want at most 2", len(res))
	}
}

func TestPowersavePinsLowest(t *testing.T) {
	s, e := setup(t, NewPowersave())
	s.RunUntil(sim.Time(2 * sim.Second))
	if e.CPU().Config() != acmp.LowestConfig() {
		t.Fatalf("config = %v", e.CPU().Config())
	}
}

func TestInteractiveBoostsOnInput(t *testing.T) {
	g := NewInteractive(DefaultInteractiveParams())
	s, e := setup(t, g)
	s.RunUntil(sim.Time(3 * sim.Second)) // load finishes, governor decays
	preInput := e.CPU().Config()
	e.Inject(s.Now().Add(sim.Millisecond), "click", "d", nil)
	s.RunUntil(s.Now().Add(10 * sim.Millisecond))
	boosted := e.CPU().Config()
	if perfScale(boosted) < perfScale(g.P.HispeedConfig) {
		t.Fatalf("after input config = %v (was %v), want >= hispeed %v", boosted, preInput, g.P.HispeedConfig)
	}
	g.Stop()
}

func TestInteractiveDecaysWhenIdle(t *testing.T) {
	g := NewInteractive(DefaultInteractiveParams())
	s, e := setup(t, g)
	// Let load finish and then sit idle for two seconds.
	s.RunUntil(sim.Time(3 * sim.Second))
	cfg := e.CPU().Config()
	if perfScale(cfg) > perfScale(acmp.Config{Cluster: acmp.Little, MHz: 600}) {
		t.Fatalf("idle config = %v, want decayed to little cluster", cfg)
	}
	g.Stop()
}

func TestInteractiveStaysHighDuringAnimation(t *testing.T) {
	g := NewInteractive(DefaultInteractiveParams())
	s, e := setup(t, g)
	s.RunUntil(sim.Time(3 * sim.Second))
	e.Inject(s.Now().Add(sim.Millisecond), "touchstart", "d", nil)
	// Sample configs during the 60-frame animation (~1 s).
	bigTime := sim.Duration(0)
	var prev sim.Time
	for i := 0; i < 40; i++ {
		prev = s.Now()
		s.RunUntil(s.Now().Add(25 * sim.Millisecond))
		if e.CPU().Config().Cluster == acmp.Big {
			bigTime += s.Now().Sub(prev)
		}
	}
	if bigTime < 500*sim.Millisecond {
		t.Fatalf("interactive spent only %v on big cluster during animation", bigTime)
	}
	g.Stop()
}

func TestInteractiveEnergyNearPerfDuringInteraction(t *testing.T) {
	// The paper's observation: under interaction load, Interactive burns
	// close to Perf because utilization stays high.
	run := func(gov browser.Governor) acmp.Joules {
		s, e := setup(t, gov)
		s.RunUntil(sim.Time(2 * sim.Second))
		e.Inject(s.Now().Add(sim.Millisecond), "touchstart", "d", nil)
		s.RunUntil(s.Now().Add(1200 * sim.Millisecond))
		if st, ok := gov.(interface{ Stop() }); ok {
			st.Stop()
		}
		return e.CPU().Energy()
	}
	perf := run(NewPerf())
	inter := run(NewInteractive(DefaultInteractiveParams()))
	if float64(inter) < 0.5*float64(perf) {
		t.Fatalf("Interactive %.3f J vs Perf %.3f J: too cheap, model broken", inter, perf)
	}
	if float64(inter) > 1.1*float64(perf) {
		t.Fatalf("Interactive %.3f J exceeds Perf %.3f J", inter, perf)
	}
}

func TestOndemandScales(t *testing.T) {
	g := NewOndemand()
	s, e := setup(t, g)
	s.RunUntil(sim.Time(3 * sim.Second))
	idleCfg := e.CPU().Config()
	if idleCfg.Cluster != acmp.Little {
		t.Fatalf("idle ondemand config = %v", idleCfg)
	}
	e.Inject(s.Now().Add(sim.Millisecond), "touchstart", "d", nil)
	sawBig := false
	for i := 0; i < 40; i++ {
		s.RunUntil(s.Now().Add(25 * sim.Millisecond))
		if e.CPU().Config().Cluster == acmp.Big {
			sawBig = true
		}
	}
	if !sawBig {
		t.Fatal("ondemand never reached big cluster under load")
	}
	g.Stop()
}

func TestConfigForMonotone(t *testing.T) {
	prev := acmp.LowestConfig()
	for want := 100.0; want < 4000; want += 50 {
		got := configFor(want)
		if got.Index() < prev.Index() {
			t.Fatalf("configFor not monotone at %v: %v after %v", want, got, prev)
		}
		prev = got
	}
	if configFor(1e9) != acmp.PeakConfig() {
		t.Fatal("unsatisfiable demand must return peak")
	}
}

func TestPerfScaleOrdering(t *testing.T) {
	// perfScale must be strictly increasing along Configs().
	cfgs := acmp.Configs()
	for i := 1; i < len(cfgs); i++ {
		if perfScale(cfgs[i]) <= perfScale(cfgs[i-1]) {
			t.Fatalf("perfScale not increasing: %v (%.0f) vs %v (%.0f)",
				cfgs[i-1], perfScale(cfgs[i-1]), cfgs[i], perfScale(cfgs[i]))
		}
	}
}

func TestGovernorNames(t *testing.T) {
	if NewPerf().Name() != "Perf" || NewPowersave().Name() != "Powersave" {
		t.Fatal("names wrong")
	}
	if NewInteractive(DefaultInteractiveParams()).Name() != "Interactive" {
		t.Fatal("interactive name wrong")
	}
	if NewOndemand().Name() != "Ondemand" {
		t.Fatal("ondemand name wrong")
	}
}
