package governor

import (
	"testing"

	"github.com/wattwiseweb/greenweb/internal/acmp"
	"github.com/wattwiseweb/greenweb/internal/browser"
	"github.com/wattwiseweb/greenweb/internal/sim"
)

// ebsPage has a heavyweight tap whose users actually expect a fast
// response (an MSN-menu-like case): EBS will measure it slow and guess a
// loose tolerance — the failure mode the paper describes.
const ebsPage = `<html><body><div id="menu">x</div>
	<script>
		document.getElementById("menu").addEventListener("click", function(e) {
			work(500);
			e.target.style.width = "10px";
		});
	</script></body></html>`

func setupEBS(t *testing.T) (*sim.Simulator, *browser.Engine, *EBS) {
	t.Helper()
	g := NewEBS()
	s := sim.New()
	cpu := acmp.NewCPU(s, acmp.DefaultPower())
	e := browser.New(s, cpu, nil)
	e.SetGovernor(g)
	if _, err := e.LoadPage(ebsPage); err != nil {
		t.Fatal(err)
	}
	return s, e, g
}

func TestEBSFirstTouchGetsPeak(t *testing.T) {
	s, e, _ := setupEBS(t)
	s.RunUntil(sim.Time(3 * sim.Second))
	e.Inject(s.Now().Add(sim.Millisecond), "click", "menu", nil)
	s.RunUntil(s.Now().Add(5 * sim.Millisecond))
	if e.CPU().Config() != acmp.PeakConfig() {
		t.Fatalf("unknown event config = %v, want peak", e.CPU().Config())
	}
}

func TestEBSGuessesFromMeasuredLatency(t *testing.T) {
	s, e, g := setupEBS(t)
	s.RunUntil(sim.Time(3 * sim.Second))
	// First click: peak; measured latency ~35-60 ms → guessed tolerance
	// rounds up to the 100 ms bucket.
	e.Inject(s.Now().Add(sim.Millisecond), "click", "menu", nil)
	s.RunUntil(s.Now().Add(2 * sim.Second))
	tol, ok := g.guess["menu@click"]
	if !ok {
		t.Fatal("no guess recorded")
	}
	if tol != 100*sim.Millisecond {
		t.Fatalf("guessed tolerance = %v, want 100ms bucket", tol)
	}
	// Second click is scheduled to the guess (big@1200 for 100 ms).
	e.Inject(s.Now().Add(sim.Millisecond), "click", "menu", nil)
	s.RunUntil(s.Now().Add(5 * sim.Millisecond))
	if got := e.CPU().Config(); got != (acmp.Config{Cluster: acmp.Big, MHz: 1200}) {
		t.Fatalf("second click config = %v", got)
	}
	s.RunUntil(s.Now().Add(2 * sim.Second))
	// The second, slower run re-measures even slower, loosening the guess
	// further — the drift the paper criticizes.
	tol2 := g.guess["menu@click"]
	if tol2 < tol {
		t.Fatalf("guess tightened (%v → %v); EBS drifts looser", tol, tol2)
	}
}

func TestEBSName(t *testing.T) {
	if NewEBS().Name() != "EBS" {
		t.Fatal("name wrong")
	}
}

func TestEBSConfigForMapping(t *testing.T) {
	g := NewEBS()
	if g.configFor(16600*sim.Microsecond) != acmp.PeakConfig() {
		t.Fatal("16.6ms bucket must map to peak")
	}
	if g.configFor(10*sim.Second) != acmp.LowestConfig() {
		t.Fatal("10s bucket must map to lowest")
	}
	// Monotone: looser tolerance never maps to a faster config.
	prev := acmp.PeakConfig()
	for _, tol := range ebsBuckets {
		cfg := g.configFor(tol)
		if cfg.Index() > prev.Index() {
			t.Fatalf("configFor not monotone at %v", tol)
		}
		prev = cfg
	}
}
