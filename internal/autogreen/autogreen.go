// Package autogreen implements AUTOGREEN (paper Sec. 5, Fig. 6): automatic
// application of GreenWeb annotations without developer intervention.
//
// The three phases of the paper's workflow map onto this package directly:
//
//   - Instrumentation/discovery: load the application in a scratch browser
//     engine, let its scripts register their listeners, and enumerate every
//     (DOM node, event) pair bound to a mobile-interaction event.
//   - Profiling: explicitly trigger each event's callback and observe
//     whether it starts a requestAnimationFrame chain, calls animate(), or
//     triggers a CSS transition/animation — if so its QoS type is
//     "continuous", otherwise "single".
//   - Generation: emit GreenWeb CSS rules for each classified event and
//     inject them back into the document as a new <style> element.
//
// AUTOGREEN cannot know user intent, so it is conservative (Sec. 5): single
// events are always annotated "short" — favouring QoS over energy — and
// default Table 1 targets are used. The paper's evaluation manually corrects
// long-latency events afterwards; Report.Annotations is exposed so callers
// can do the same.
package autogreen

import (
	"fmt"
	"strings"

	"github.com/wattwiseweb/greenweb/internal/acmp"
	"github.com/wattwiseweb/greenweb/internal/browser"
	"github.com/wattwiseweb/greenweb/internal/css"
	"github.com/wattwiseweb/greenweb/internal/dom"
	"github.com/wattwiseweb/greenweb/internal/html"
	"github.com/wattwiseweb/greenweb/internal/qos"
	"github.com/wattwiseweb/greenweb/internal/sim"
)

// Finding is one profiled (element, event) pair and its classification.
type Finding struct {
	Selector   string // generated CSS selector for the element
	Path       string // full element path, for the report
	Event      string
	Annotation qos.Annotation
	// Evidence of the classification.
	RAF        bool
	Animate    bool
	Transition bool
	HandlerOps int64
}

// Report is the outcome of an annotation run.
type Report struct {
	Findings []Finding
	// Skipped lists (path, event) pairs that could not be annotated
	// (e.g. no stable selector).
	Skipped []string
}

// Rules builds the generated GreenWeb stylesheet.
func (r *Report) Rules() (*css.Stylesheet, error) {
	sheet := &css.Stylesheet{}
	for _, f := range r.Findings {
		rule, err := css.QoSRuleFor(f.Selector, f.Annotation)
		if err != nil {
			return nil, err
		}
		rule.Index = len(sheet.Rules)
		sheet.Rules = append(sheet.Rules, rule)
	}
	return sheet, nil
}

// nopGovernor pins peak; profiling runs care about behaviour, not energy.
type nopGovernor struct{}

func (nopGovernor) Name() string                           { return "autogreen-profile" }
func (nopGovernor) Attach(e *browser.Engine)               { e.CPU().SetConfig(acmp.PeakConfig()) }
func (nopGovernor) OnInput(browser.InputRecord, *dom.Node) {}
func (nopGovernor) OnFrameStart(int, browser.Provenance)   {}
func (nopGovernor) OnFrameEnd(*browser.FrameResult)        {}
func (nopGovernor) OnEventComplete(browser.UID)            {}

// bootEngine loads the page in a scratch engine and runs until quiescent.
func bootEngine(src string) (*browser.Engine, error) {
	s := sim.New()
	cpu := acmp.NewCPU(s, acmp.DefaultPower())
	e := browser.New(s, cpu, nil)
	e.SetGovernor(nopGovernor{})
	if _, err := e.LoadPage(src); err != nil {
		return nil, err
	}
	// Loading plus any initial animations; bounded in case scripts
	// animate forever.
	s.RunUntil(sim.Time(10 * sim.Second))
	return e, nil
}

// selectorFor builds a stable selector for a node: its id when present,
// otherwise its tag qualified by class, otherwise the bare tag.
func selectorFor(n *dom.Node) (string, bool) {
	if id := n.ID(); id != "" {
		return n.Tag + "#" + id, true
	}
	if cs := n.Classes(); len(cs) > 0 {
		return n.Tag + "." + strings.Join(cs, "."), true
	}
	if n.Tag != "" {
		return n.Tag, true
	}
	return "", false
}

// Analyze runs discovery and profiling on an application's HTML source and
// returns the classification report without modifying the source.
func Analyze(src string) (*Report, error) {
	// Discovery engine: enumerate listener targets after load.
	disc, err := bootEngine(src)
	if err != nil {
		return nil, err
	}
	targets := disc.Doc().ListenerTargets()

	report := &Report{}

	// The load event is always annotated: every application has a loading
	// phase (L of the LTM model), and loading is a single-long interaction
	// per Table 1.
	report.Findings = append(report.Findings, Finding{
		Selector: "body",
		Path:     "body",
		Event:    dom.EventLoad,
		Annotation: qos.Annotation{
			Event:    dom.EventLoad,
			Type:     qos.Single,
			Duration: qos.Long,
			Target:   qos.SingleLongTarget,
		},
	})

	seen := map[string]bool{"body@load": true}
	for _, l := range targets {
		if l.Event == dom.EventLoad {
			continue // covered by the body rule
		}
		// Profile in a fresh engine so each event observes pristine
		// application state (the paper instruments and re-runs similarly).
		prof, err := bootEngine(src)
		if err != nil {
			return nil, err
		}
		node := findCounterpart(prof.Doc(), l.Node)
		if node == nil {
			report.Skipped = append(report.Skipped, l.Node.Path()+"@"+l.Event)
			continue
		}
		sel, ok := selectorFor(node)
		if !ok {
			report.Skipped = append(report.Skipped, node.Path()+"@"+l.Event)
			continue
		}
		key := sel + "@" + l.Event
		if seen[key] {
			continue
		}
		seen[key] = true

		res := prof.ProfileEvent(node, l.Event, profileData(l.Event))
		ann := classify(l.Event, res)
		report.Findings = append(report.Findings, Finding{
			Selector:   sel,
			Path:       node.Path(),
			Event:      l.Event,
			Annotation: ann,
			RAF:        res.RAFRegistered,
			Animate:    res.AnimateCalled,
			Transition: res.TransitionStarted,
			HandlerOps: res.Ops,
		})
	}
	return report, nil
}

// classify implements the paper's detection rule: an event is "continuous"
// if its callback triggers animate(), requestAnimationFrame, or a CSS
// transition/animation; otherwise "single" with a conservatively short
// duration class.
func classify(event string, res browser.DispatchResult) qos.Annotation {
	if res.RAFRegistered || res.AnimateCalled || res.TransitionStarted {
		return qos.Annotation{
			Event:  event,
			Type:   qos.Continuous,
			Target: qos.ContinuousTarget,
		}
	}
	return qos.Annotation{
		Event:    event,
		Type:     qos.Single,
		Duration: qos.Short, // conservative: favour QoS over energy
		Target:   qos.SingleShortTarget,
	}
}

// profileData synthesizes plausible event payloads for profiling triggers.
func profileData(event string) map[string]float64 {
	switch event {
	case dom.EventScroll, dom.EventTouchMove:
		return map[string]float64{"deltaY": 40}
	default:
		return nil
	}
}

// findCounterpart locates, in a fresh document, the node corresponding to
// one discovered in another instance of the same page.
func findCounterpart(doc *dom.Document, n *dom.Node) *dom.Node {
	if id := n.ID(); id != "" {
		return doc.GetElementByID(id)
	}
	// Match by path position: same tag sequence, same sibling index chain.
	want := n.Path()
	for _, cand := range doc.Elements() {
		if cand.Path() == want {
			return cand
		}
	}
	return nil
}

// Annotate runs Analyze and injects the generated GreenWeb rules into the
// document as a trailing <style> element, returning the annotated HTML.
func Annotate(src string) (string, *Report, error) {
	report, err := Analyze(src)
	if err != nil {
		return "", nil, err
	}
	sheet, err := report.Rules()
	if err != nil {
		return "", nil, err
	}
	annotated, err := InjectStyle(src, sheet.Serialize())
	if err != nil {
		return "", nil, err
	}
	return annotated, report, nil
}

// InjectStyle appends a <style> element containing cssText to the
// document's head (or body if no head exists) and reserializes it.
func InjectStyle(src, cssText string) (string, error) {
	doc := html.Parse(src)
	var parent *dom.Node
	if heads := doc.GetElementsByTag("head"); len(heads) > 0 {
		parent = heads[0]
	} else if bodies := doc.GetElementsByTag("body"); len(bodies) > 0 {
		parent = bodies[0]
	} else {
		return "", fmt.Errorf("autogreen: document has no head or body to inject into")
	}
	style := doc.NewElement("style")
	style.AppendChild(doc.NewText("\n" + cssText + "\n"))
	parent.AppendChild(style)
	return html.Render(doc), nil
}
