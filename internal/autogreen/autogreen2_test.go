package autogreen

import (
	"strings"
	"testing"

	"github.com/wattwiseweb/greenweb/internal/apps"
	"github.com/wattwiseweb/greenweb/internal/qos"
)

// Additional AUTOGREEN coverage: counterpart matching without ids,
// skip paths, and whole-catalog annotation.

func TestFindCounterpartByPath(t *testing.T) {
	// Listener on an id-less node: counterpart located by element path.
	page := `<html><body>
		<div><span class="hot">x</span></div>
		<script>
			document.getElementsByClassName("hot")[0].addEventListener("click", function(e) {
				e.target.setAttribute("data-hit", "1");
			});
		</script>
	</body></html>`
	report, err := Analyze(page)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, f := range report.Findings {
		if f.Selector == "span.hot" && f.Event == "click" {
			found = true
		}
	}
	if !found {
		t.Fatalf("path-matched finding missing: %+v", report.Findings)
	}
}

func TestScrollEventProfiledWithDelta(t *testing.T) {
	// Profiling synthesizes a scroll payload; the handler reads deltaY.
	page := `<html><body><div id="list">x</div>
		<script>
			document.getElementById("list").addEventListener("scroll", function(e) {
				if (e.deltaY > 0) {
					document.getElementById("list").setAttribute("data-y", e.deltaY);
				}
			});
		</script></body></html>`
	report, err := Analyze(page)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range report.Findings {
		if f.Event == "scroll" {
			if f.Annotation.Type != qos.Single {
				t.Fatalf("scroll classified %v", f.Annotation.Type)
			}
			return
		}
	}
	t.Fatal("scroll finding missing")
}

// TestWholeCatalogAnnotates runs AUTOGREEN over every Table 3 application's
// unannotated source: each must produce a load finding plus at least one
// event finding, and the annotated page must still load without script
// errors.
func TestWholeCatalogAnnotates(t *testing.T) {
	for _, a := range apps.All() {
		a := a
		t.Run(a.Name, func(t *testing.T) {
			annotated, report, err := Annotate(a.BaseHTML)
			if err != nil {
				t.Fatal(err)
			}
			if len(report.Findings) < 2 {
				t.Fatalf("findings = %d", len(report.Findings))
			}
			if len(report.Skipped) > 0 {
				t.Errorf("skipped: %v", report.Skipped)
			}
			if !strings.Contains(annotated, "onload-qos") {
				t.Fatal("load rule missing")
			}
			e, err := bootEngine(annotated)
			if err != nil {
				t.Fatal(err)
			}
			if errs := e.ScriptErrors(); len(errs) > 0 {
				t.Fatalf("annotated app errors: %v", errs)
			}
			// The catalog's continuous-microbenchmark apps must have at
			// least one continuous finding.
			if a.QoSType == qos.Continuous && a.Interaction == "Tapping" {
				hasContinuous := false
				for _, f := range report.Findings {
					if f.Annotation.Type == qos.Continuous {
						hasContinuous = true
					}
				}
				if !hasContinuous {
					t.Error("no continuous classification for an animation app")
				}
			}
		})
	}
}
