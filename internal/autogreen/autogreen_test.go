package autogreen

import (
	"strings"
	"testing"

	"github.com/wattwiseweb/greenweb/internal/css"
	"github.com/wattwiseweb/greenweb/internal/html"
	"github.com/wattwiseweb/greenweb/internal/qos"
)

// mixedPage has one rAF animation event, one CSS transition event, one
// animate() event, and one plain single event.
const mixedPage = `<html><head><style>
		#trans { width: 100px; transition: width 200ms; }
	</style></head>
	<body>
		<div id="raf">a</div>
		<div id="trans">b</div>
		<div id="anim">c</div>
		<button id="plain">d</button>
		<script>
			document.getElementById("raf").addEventListener("touchstart", function(e) {
				var n = 0;
				function step() {
					n++;
					document.getElementById("raf").style.height = n + "px";
					if (n < 10) { requestAnimationFrame(step); }
				}
				requestAnimationFrame(step);
			});
			document.getElementById("trans").addEventListener("touchstart", function(e) {
				document.getElementById("trans").style.width = "300px";
			});
			document.getElementById("anim").addEventListener("click", function(e) {
				animate(document.getElementById("anim"), "width", 0, 50, 100);
			});
			document.getElementById("plain").addEventListener("click", function(e) {
				e.target.textContent = "clicked";
			});
		</script>
	</body></html>`

func findingFor(t *testing.T, r *Report, sel, event string) Finding {
	t.Helper()
	for _, f := range r.Findings {
		if f.Selector == sel && f.Event == event {
			return f
		}
	}
	t.Fatalf("no finding for %s@%s in %+v", sel, event, r.Findings)
	return Finding{}
}

func TestAnalyzeClassifiesQoSTypes(t *testing.T) {
	report, err := Analyze(mixedPage)
	if err != nil {
		t.Fatal(err)
	}
	raf := findingFor(t, report, "div#raf", "touchstart")
	if raf.Annotation.Type != qos.Continuous || !raf.RAF {
		t.Fatalf("raf finding = %+v", raf)
	}
	trans := findingFor(t, report, "div#trans", "touchstart")
	if trans.Annotation.Type != qos.Continuous || !trans.Transition {
		t.Fatalf("transition finding = %+v", trans)
	}
	anim := findingFor(t, report, "div#anim", "click")
	if anim.Annotation.Type != qos.Continuous || !anim.Animate {
		t.Fatalf("animate finding = %+v", anim)
	}
	plain := findingFor(t, report, "button#plain", "click")
	if plain.Annotation.Type != qos.Single {
		t.Fatalf("plain finding = %+v", plain)
	}
	// Conservative default: single events are annotated short.
	if plain.Annotation.Duration != qos.Short || plain.Annotation.Target != qos.SingleShortTarget {
		t.Fatalf("single not conservative: %+v", plain.Annotation)
	}
}

func TestAnalyzeAlwaysAnnotatesLoad(t *testing.T) {
	report, err := Analyze(`<html><body><p>static</p></body></html>`)
	if err != nil {
		t.Fatal(err)
	}
	load := findingFor(t, report, "body", "load")
	if load.Annotation.Type != qos.Single || load.Annotation.Duration != qos.Long {
		t.Fatalf("load annotation = %+v", load.Annotation)
	}
}

func TestAnnotateInjectsWorkingRules(t *testing.T) {
	annotated, report, err := Annotate(mixedPage)
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Findings) < 5 {
		t.Fatalf("findings = %d", len(report.Findings))
	}
	if !strings.Contains(annotated, ":QoS") {
		t.Fatal("annotated page lacks :QoS rules")
	}
	// The annotated page must parse and resolve annotations.
	doc := html.Parse(annotated)
	var sheets []*css.Stylesheet
	for _, s := range html.StyleSources(doc) {
		sheet, errs := css.Parse(s)
		if len(errs) > 0 {
			t.Fatalf("annotated css: %v", errs)
		}
		sheets = append(sheets, sheet)
	}
	as := css.NewAnnotationSet(sheets...)
	a, ok := as.Lookup(doc.GetElementByID("raf"), "touchstart")
	if !ok || a.Type != qos.Continuous {
		t.Fatalf("annotation lookup on annotated page = %+v, %v", a, ok)
	}
	b, ok := as.Lookup(doc.GetElementByID("plain"), "click")
	if !ok || b.Type != qos.Single {
		t.Fatalf("plain lookup = %+v, %v", b, ok)
	}
	// Load annotation on body.
	if _, ok := as.Lookup(doc.GetElementsByTag("body")[0], "load"); !ok {
		t.Fatal("load annotation missing")
	}
}

func TestAnnotatedPageStillRuns(t *testing.T) {
	annotated, _, err := Annotate(mixedPage)
	if err != nil {
		t.Fatal(err)
	}
	// The annotated application must still boot and behave.
	e, err := bootEngine(annotated)
	if err != nil {
		t.Fatal(err)
	}
	if len(e.ScriptErrors()) > 0 {
		t.Fatalf("annotated page script errors: %v", e.ScriptErrors())
	}
	res := e.ProfileEvent(e.Doc().GetElementByID("plain"), "click", nil)
	if res.HandlersRun != 1 {
		t.Fatalf("handlers = %d", res.HandlersRun)
	}
}

func TestSelectorsPreferIDs(t *testing.T) {
	page := `<html><body>
		<div class="c1 c2"><span>x</span></div>
		<script>
			document.getElementsByClassName("c1")[0].addEventListener("click", function(e) {});
			document.getElementsByTagName("span")[0].addEventListener("click", function(e) {});
		</script>
	</body></html>`
	report, err := Analyze(page)
	if err != nil {
		t.Fatal(err)
	}
	if f := findingFor(t, report, "div.c1.c2", "click"); f.Annotation.Type != qos.Single {
		t.Fatalf("class selector finding = %+v", f)
	}
	findingFor(t, report, "span", "click") // bare-tag fallback must exist
}

func TestDuplicateTargetsCollapsed(t *testing.T) {
	page := `<html><body><div id="d">x</div>
		<script>
			var el = document.getElementById("d");
			el.addEventListener("click", function(e) {});
			el.addEventListener("click", function(e) {});
		</script></body></html>`
	report, err := Analyze(page)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for _, f := range report.Findings {
		if f.Selector == "div#d" && f.Event == "click" {
			n++
		}
	}
	if n != 1 {
		t.Fatalf("duplicate annotations: %d", n)
	}
}

func TestInjectStyleNoHead(t *testing.T) {
	out, err := InjectStyle(`<body><p>x</p></body>`, "p { color: red; }")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "color: red") {
		t.Fatalf("style not injected: %s", out)
	}
	if _, err := InjectStyle(`just text`, "x{}"); err == nil {
		t.Fatal("expected error for document without head or body")
	}
}

func TestReportRules(t *testing.T) {
	report, err := Analyze(mixedPage)
	if err != nil {
		t.Fatal(err)
	}
	sheet, err := report.Rules()
	if err != nil {
		t.Fatal(err)
	}
	if len(sheet.Rules) != len(report.Findings) {
		t.Fatalf("rules = %d, findings = %d", len(sheet.Rules), len(report.Findings))
	}
	// All generated rules carry :QoS.
	for _, r := range sheet.Rules {
		if !r.Selectors[0].HasQoS() {
			t.Fatalf("rule lacks :QoS: %s", r.String())
		}
	}
}
