// Package store is the durable sweep store behind greensrv: an append-only
// write-ahead log of sweep lifecycle records plus a crash-safe snapshot, so
// a finished sweep survives a server restart (or a SIGKILL) and
// GET /v1/sweeps/{id} replays its NDJSON byte-for-byte from disk.
//
// # WAL record format
//
// The WAL is line-oriented NDJSON with a length prefix per record:
//
//	<payload-length> <payload-json>\n
//
// where <payload-length> is the decimal byte length of <payload-json>. The
// prefix turns a torn final record — a crash mid-append — into a detectable
// condition instead of a replay poison: a record whose line lacks its
// newline, whose prefix does not parse, or whose payload length disagrees
// with the prefix is discarded along with everything after it, and the
// discard is counted (greenweb_store_torn_records_total).
//
// Three record types spell a sweep's life:
//
//	{"t":"begin","sweep":ID,"created":...,"meta":{...}}   registration
//	{"t":"row","sweep":ID,"index":i,"row":{...}}          one finished job,
//	                                                      payload = the exact
//	                                                      NDJSON result line
//	{"t":"end","sweep":ID}                                all rows written
//
// Rows are appended in submission order, so replaying a completed sweep's
// Rows in sequence reproduces the deterministic merge byte-identically. The
// WAL is fsynced at every "end" record (and at compaction); a sweep is
// reported persisted only after its end-record fsync returns.
//
// # Recovery and compaction
//
// Open replays snapshot then WAL. A sweep with no "end" record is dropped:
// its jobs died with the process and the sweep never reported finished to
// any client. Compact writes every completed sweep to a temporary snapshot,
// fsyncs and atomically renames it over the old one, then truncates the WAL
// and re-appends the records of sweeps still being persisted. A crash
// between the snapshot rename and the WAL truncate leaves duplicate records,
// which replay dedupes (first completion wins — the records are identical).
package store

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/wattwiseweb/greenweb/internal/obs"
)

const (
	walName      = "wal.log"
	snapshotName = "snapshot.log"
)

// record is one WAL/snapshot entry.
type record struct {
	T       string          `json:"t"` // "begin" | "row" | "end"
	Sweep   string          `json:"sweep"`
	Created time.Time       `json:"created,omitempty"` // begin
	Meta    json.RawMessage `json:"meta,omitempty"`    // begin
	Index   int             `json:"index,omitempty"`   // row
	Row     json.RawMessage `json:"row,omitempty"`     // row
}

// SweepRecord is one sweep's durable state. Rows holds the exact NDJSON
// result lines (sans trailing newline) in submission order; Meta is the
// opaque registration payload the caller stored at Begin (greensrv stores
// the job grid).
type SweepRecord struct {
	ID      string
	Created time.Time
	Meta    json.RawMessage
	Rows    []json.RawMessage
}

// Store owns the WAL and the recovered sweep set. All methods are safe for
// concurrent use.
type Store struct {
	dir string

	mu        sync.Mutex
	wal       *os.File
	bw        *bufio.Writer
	walBytes  int64
	completed map[string]*SweepRecord
	open      map[string]*SweepRecord
	order     []string // completed IDs in completion order

	// CompactThreshold, when positive, triggers an automatic Compact after
	// any End that leaves the WAL larger than this many bytes. Set before
	// serving traffic; read under mu.
	compactThreshold int64

	fsyncHist   *obs.Histogram
	torn        atomic.Int64
	persisted   atomic.Int64
	compactions atomic.Int64
	dropped     atomic.Int64 // incomplete sweeps discarded at recovery
	errs        atomic.Int64 // WAL/snapshot write and fsync failures
}

// Open recovers the store from dir (creating it if needed) and opens the
// WAL for append. Incomplete sweeps found during recovery are discarded.
func Open(dir string) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	s := &Store{
		dir:       dir,
		completed: make(map[string]*SweepRecord),
		open:      make(map[string]*SweepRecord),
		fsyncHist: obs.NewHistogram([]float64{
			1e-5, 2e-5, 5e-5, 1e-4, 2e-4, 5e-4,
			0.001, 0.002, 0.005, 0.01, 0.02, 0.05, 0.1, 0.5, 1,
		}),
	}
	for _, name := range []string{snapshotName, walName} {
		if err := s.replayFile(filepath.Join(dir, name)); err != nil {
			return nil, err
		}
	}
	// Whatever is still open after replay died with the previous process.
	for id := range s.open {
		delete(s.open, id)
		s.dropped.Add(1)
	}
	f, err := os.OpenFile(filepath.Join(dir, walName), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("store: %w", err)
	}
	s.wal, s.bw, s.walBytes = f, bufio.NewWriter(f), st.Size()
	return s, nil
}

// SetCompactThreshold enables automatic compaction once the WAL exceeds n
// bytes (0 disables; compaction then only happens via Compact).
func (s *Store) SetCompactThreshold(n int64) {
	s.mu.Lock()
	s.compactThreshold = n
	s.mu.Unlock()
}

// replayFile loads one log file, tolerating a torn tail.
func (s *Store) replayFile(path string) error {
	f, err := os.Open(path)
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	defer f.Close()
	r := bufio.NewReader(f)
	for {
		line, err := r.ReadString('\n')
		if err == io.EOF {
			if line != "" {
				s.torn.Add(1) // crash mid-append: no newline
			}
			return nil
		}
		if err != nil {
			return fmt.Errorf("store: reading %s: %w", path, err)
		}
		rec, ok := parseRecord(strings.TrimSuffix(line, "\n"))
		if !ok {
			// Bad prefix, length mismatch, or bad JSON: the rest of the
			// file is untrustworthy — discard it, as one torn tail.
			s.torn.Add(1)
			return nil
		}
		s.apply(rec)
	}
}

// parseRecord decodes one "<len> <json>" line.
func parseRecord(line string) (record, bool) {
	var rec record
	prefix, payload, found := strings.Cut(line, " ")
	if !found {
		return rec, false
	}
	n, err := strconv.Atoi(prefix)
	if err != nil || n != len(payload) {
		return rec, false
	}
	if json.Unmarshal([]byte(payload), &rec) != nil {
		return rec, false
	}
	return rec, true
}

// apply folds one replayed record into the recovered state, deduping
// records already absorbed via the snapshot.
func (s *Store) apply(rec record) {
	switch rec.T {
	case "begin":
		if _, done := s.completed[rec.Sweep]; done {
			return // duplicate from the compaction crash window
		}
		s.open[rec.Sweep] = &SweepRecord{ID: rec.Sweep, Created: rec.Created, Meta: rec.Meta}
	case "row":
		sr := s.open[rec.Sweep]
		if sr == nil || rec.Index != len(sr.Rows) {
			if sr != nil { // out-of-order row: the sweep is untrustworthy
				delete(s.open, rec.Sweep)
				s.dropped.Add(1)
			}
			return
		}
		sr.Rows = append(sr.Rows, rec.Row)
	case "end":
		sr := s.open[rec.Sweep]
		if sr == nil {
			return
		}
		delete(s.open, rec.Sweep)
		s.completed[rec.Sweep] = sr
		s.order = append(s.order, rec.Sweep)
	}
}

// ioErr counts a WAL/snapshot write or fsync failure (the
// greenweb_store_errors_total counter) and passes the error through.
func (s *Store) ioErr(err error) error {
	if err != nil {
		s.errs.Add(1)
	}
	return err
}

// append marshals and writes one record to the WAL buffer (no fsync).
// Caller holds mu.
func (s *Store) append(rec record) error {
	payload, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	n, err := fmt.Fprintf(s.bw, "%d %s\n", len(payload), payload)
	s.walBytes += int64(n)
	return s.ioErr(err)
}

// sync flushes the buffer and fsyncs the WAL, timing the fsync. Caller
// holds mu.
func (s *Store) sync() error {
	if err := s.bw.Flush(); err != nil {
		return s.ioErr(err)
	}
	start := time.Now()
	err := s.wal.Sync()
	s.fsyncHist.Observe(time.Since(start).Seconds())
	return s.ioErr(err)
}

// Begin registers a sweep for persistence. meta is opaque to the store and
// returned verbatim from Get.
func (s *Store) Begin(id string, created time.Time, meta json.RawMessage) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.open[id] != nil || s.completed[id] != nil {
		return fmt.Errorf("store: sweep %q already exists", id)
	}
	s.open[id] = &SweepRecord{ID: id, Created: created, Meta: meta}
	return s.append(record{T: "begin", Sweep: id, Created: created, Meta: meta})
}

// AppendRow persists the next result row (the exact NDJSON line, no
// trailing newline). Rows must arrive in submission order. Re-appending an
// index already persisted with identical bytes is a no-op — defense in
// depth for replayed deliveries (a job re-executed after its node died is
// deterministic, so its row is byte-identical); divergent bytes at a known
// index are an error, because they would break the replay contract.
func (s *Store) AppendRow(id string, index int, row json.RawMessage) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	sr := s.open[id]
	if sr == nil {
		return fmt.Errorf("store: sweep %q not open", id)
	}
	if index < len(sr.Rows) {
		if bytes.Equal(sr.Rows[index], row) {
			return nil
		}
		return fmt.Errorf("store: sweep %q row %d rewritten with different bytes", id, index)
	}
	if index != len(sr.Rows) {
		return fmt.Errorf("store: sweep %q row %d out of order (want %d)", id, index, len(sr.Rows))
	}
	sr.Rows = append(sr.Rows, row)
	return s.append(record{T: "row", Sweep: id, Index: index, Row: row})
}

// End marks the sweep complete and makes it durable: the end record is
// appended and the WAL fsynced before End returns. After End the sweep is
// servable from Get — including by a future process.
func (s *Store) End(id string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	sr := s.open[id]
	if sr == nil {
		return fmt.Errorf("store: sweep %q not open", id)
	}
	if err := s.append(record{T: "end", Sweep: id}); err != nil {
		return err
	}
	if err := s.sync(); err != nil {
		return err
	}
	delete(s.open, id)
	s.completed[id] = sr
	s.order = append(s.order, id)
	s.persisted.Add(1)
	if s.compactThreshold > 0 && s.walBytes > s.compactThreshold {
		return s.compactLocked()
	}
	return nil
}

// Get returns a completed sweep's durable record. Callers must not mutate
// the returned slices.
func (s *Store) Get(id string) (*SweepRecord, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	sr, ok := s.completed[id]
	return sr, ok
}

// IDs lists completed sweep IDs in completion order.
func (s *Store) IDs() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]string(nil), s.order...)
}

// Torn reports how many torn/corrupt record tails recovery has discarded.
func (s *Store) Torn() int64 { return s.torn.Load() }

// Dropped reports how many incomplete sweeps recovery has discarded.
func (s *Store) Dropped() int64 { return s.dropped.Load() }

// Errors reports how many WAL/snapshot write or fsync failures have occurred.
func (s *Store) Errors() int64 { return s.errs.Load() }

// Compact rewrites every completed sweep into a fresh snapshot and resets
// the WAL, carrying the records of still-open sweeps forward so their
// persistence continues uninterrupted.
func (s *Store) Compact() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.compactLocked()
}

func (s *Store) compactLocked() error {
	if err := s.sync(); err != nil {
		return err
	}
	// 1. Durable snapshot of every completed sweep, atomically swapped in.
	tmp := filepath.Join(s.dir, snapshotName+".tmp")
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	bw := bufio.NewWriter(f)
	writeRec := func(rec record) error {
		payload, err := json.Marshal(rec)
		if err != nil {
			return err
		}
		_, err = fmt.Fprintf(bw, "%d %s\n", len(payload), payload)
		return err
	}
	for _, id := range s.order {
		sr := s.completed[id]
		if err := writeRec(record{T: "begin", Sweep: id, Created: sr.Created, Meta: sr.Meta}); err != nil {
			f.Close()
			return fmt.Errorf("store: %w", err)
		}
		for i, row := range sr.Rows {
			if err := writeRec(record{T: "row", Sweep: id, Index: i, Row: row}); err != nil {
				f.Close()
				return fmt.Errorf("store: %w", err)
			}
		}
		if err := writeRec(record{T: "end", Sweep: id}); err != nil {
			f.Close()
			return fmt.Errorf("store: %w", err)
		}
	}
	if err := bw.Flush(); err != nil {
		f.Close()
		return fmt.Errorf("store: %w", err)
	}
	start := time.Now()
	err = f.Sync()
	s.fsyncHist.Observe(time.Since(start).Seconds())
	if err != nil {
		f.Close()
		return s.ioErr(fmt.Errorf("store: %w", err))
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if err := os.Rename(tmp, filepath.Join(s.dir, snapshotName)); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	s.syncDir()
	// 2. Reset the WAL. A crash before this point replays snapshot + old
	// WAL and dedupes; after it, snapshot + fresh WAL.
	s.wal.Close()
	f, err = os.OpenFile(filepath.Join(s.dir, walName), os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	s.wal, s.bw, s.walBytes = f, bufio.NewWriter(f), 0
	// 3. Carry still-open sweeps into the fresh WAL.
	for id, sr := range s.open {
		if err := s.append(record{T: "begin", Sweep: id, Created: sr.Created, Meta: sr.Meta}); err != nil {
			return err
		}
		for i, row := range sr.Rows {
			if err := s.append(record{T: "row", Sweep: id, Index: i, Row: row}); err != nil {
				return err
			}
		}
	}
	if err := s.bw.Flush(); err != nil {
		return err
	}
	s.compactions.Add(1)
	return nil
}

// syncDir fsyncs the store directory so renames are durable. Best-effort:
// some filesystems refuse directory fsync.
func (s *Store) syncDir() {
	if d, err := os.Open(s.dir); err == nil {
		d.Sync()
		d.Close()
	}
}

// Close flushes and closes the WAL.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.wal == nil {
		return nil
	}
	err := s.sync()
	if cerr := s.wal.Close(); err == nil {
		err = cerr
	}
	s.wal = nil
	return err
}

// RegisterMetrics exposes the store's counters on an obs registry under the
// greenweb_store_* names.
func (s *Store) RegisterMetrics(reg *obs.Registry) {
	reg.AttachHistogram("greenweb_store_fsync_seconds",
		"WAL/snapshot fsync latency in seconds", s.fsyncHist)
	reg.GaugeFunc("greenweb_store_wal_bytes",
		"Current WAL size in bytes", func() float64 {
			s.mu.Lock()
			defer s.mu.Unlock()
			return float64(s.walBytes)
		})
	reg.CounterFunc("greenweb_store_sweeps_persisted_total",
		"Sweeps made durable (end record fsynced)", func() float64 { return float64(s.persisted.Load()) })
	reg.CounterFunc("greenweb_store_torn_records_total",
		"Torn/corrupt WAL tails discarded during recovery", func() float64 { return float64(s.torn.Load()) })
	reg.CounterFunc("greenweb_store_compactions_total",
		"Snapshot compactions performed", func() float64 { return float64(s.compactions.Load()) })
	reg.CounterFunc("greenweb_store_dropped_sweeps_total",
		"Incomplete sweeps discarded during recovery", func() float64 { return float64(s.dropped.Load()) })
	reg.CounterFunc("greenweb_store_errors_total",
		"WAL/snapshot write and fsync failures", func() float64 { return float64(s.errs.Load()) })
}
