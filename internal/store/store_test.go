package store

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"github.com/wattwiseweb/greenweb/internal/obs"
)

var t0 = time.Date(2026, 8, 1, 12, 0, 0, 0, time.UTC)

// writeSweep persists one complete n-row sweep.
func writeSweep(t *testing.T, s *Store, id string, n int) {
	t.Helper()
	meta := json.RawMessage(fmt.Sprintf(`{"jobs":%d}`, n))
	if err := s.Begin(id, t0, meta); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		row := json.RawMessage(fmt.Sprintf(`{"index":%d,"app":"Todo","state":"done"}`, i))
		if err := s.AppendRow(id, i, row); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.End(id); err != nil {
		t.Fatal(err)
	}
}

func TestRoundTripAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	writeSweep(t, s, "s-000001", 3)
	writeSweep(t, s, "s-000002", 1)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if got := s2.IDs(); len(got) != 2 || got[0] != "s-000001" || got[1] != "s-000002" {
		t.Fatalf("IDs = %v, want [s-000001 s-000002]", got)
	}
	rec, ok := s2.Get("s-000001")
	if !ok {
		t.Fatal("s-000001 not recovered")
	}
	if len(rec.Rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(rec.Rows))
	}
	if !rec.Created.Equal(t0) {
		t.Fatalf("created = %v, want %v", rec.Created, t0)
	}
	if want := `{"index":2,"app":"Todo","state":"done"}`; string(rec.Rows[2]) != want {
		t.Fatalf("row 2 = %s, want %s", rec.Rows[2], want)
	}
	if s2.Torn() != 0 || s2.Dropped() != 0 {
		t.Fatalf("clean recovery reported torn=%d dropped=%d", s2.Torn(), s2.Dropped())
	}
}

// TestIncompleteSweepDroppedOnRecovery: a begin without an end (process died
// mid-sweep) is discarded, not served half-finished.
func TestIncompleteSweepDroppedOnRecovery(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	writeSweep(t, s, "s-000001", 2)
	if err := s.Begin("s-000002", t0, nil); err != nil {
		t.Fatal(err)
	}
	if err := s.AppendRow("s-000002", 0, json.RawMessage(`{"index":0}`)); err != nil {
		t.Fatal(err)
	}
	s.Close() // flushes; no end record for s-000002

	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if _, ok := s2.Get("s-000002"); ok {
		t.Fatal("incomplete sweep served after recovery")
	}
	if _, ok := s2.Get("s-000001"); !ok {
		t.Fatal("complete sweep lost")
	}
	if s2.Dropped() != 1 {
		t.Fatalf("dropped = %d, want 1", s2.Dropped())
	}
}

// TestTornFinalRecordEveryOffset is the crash-mid-write regression: the WAL
// truncated at EVERY byte offset of its final record must recover all prior
// records, discard the torn tail, and count it — never poison replay.
func TestTornFinalRecordEveryOffset(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	writeSweep(t, s, "s-000001", 2)
	writeSweep(t, s, "s-000002", 1)
	s.Close()

	wal, err := os.ReadFile(filepath.Join(dir, walName))
	if err != nil {
		t.Fatal(err)
	}
	// The final record is s-000002's "end" line.
	trimmed := bytes.TrimSuffix(wal, []byte("\n"))
	lastStart := bytes.LastIndexByte(trimmed, '\n') + 1
	if lastStart <= 0 {
		t.Fatalf("could not locate last record in %d-byte WAL", len(wal))
	}
	if !bytes.Contains(wal[lastStart:], []byte(`"end"`)) {
		t.Fatalf("last record %q is not the end record", wal[lastStart:])
	}

	for off := lastStart; off < len(wal); off++ {
		tdir := t.TempDir()
		if err := os.WriteFile(filepath.Join(tdir, walName), wal[:off], 0o644); err != nil {
			t.Fatal(err)
		}
		rs, err := Open(tdir)
		if err != nil {
			t.Fatalf("offset %d: Open failed: %v", off, err)
		}
		if _, ok := rs.Get("s-000001"); !ok {
			t.Fatalf("offset %d: intact sweep s-000001 lost", off)
		}
		// s-000002's end record is torn → the sweep is incomplete → dropped.
		if _, ok := rs.Get("s-000002"); ok {
			t.Fatalf("offset %d: sweep with torn end record served", off)
		}
		// Truncating at exactly the record boundary leaves a clean tail
		// (nothing of the last record remains); any later offset leaves a
		// detectable torn record.
		wantTorn := int64(1)
		if off == lastStart {
			wantTorn = 0
		}
		if rs.Torn() != wantTorn {
			t.Fatalf("offset %d: torn = %d, want %d", off, rs.Torn(), wantTorn)
		}
		// The recovered store must accept appends: the torn tail is gone,
		// not fatal.
		writeSweep(t, rs, "s-000099", 1)
		rs.Close()
	}
}

// TestTornRowRecord: tearing a mid-sweep row record (not just the end
// record) also degrades cleanly.
func TestTornRowRecord(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	writeSweep(t, s, "s-000001", 1)
	if err := s.Begin("s-000002", t0, nil); err != nil {
		t.Fatal(err)
	}
	if err := s.AppendRow("s-000002", 0, json.RawMessage(`{"index":0,"app":"Todo"}`)); err != nil {
		t.Fatal(err)
	}
	s.Close()

	wal, _ := os.ReadFile(filepath.Join(dir, walName))
	for cut := 1; cut < 20; cut++ {
		tdir := t.TempDir()
		os.WriteFile(filepath.Join(tdir, walName), wal[:len(wal)-cut], 0o644)
		rs, err := Open(tdir)
		if err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		if _, ok := rs.Get("s-000001"); !ok {
			t.Fatalf("cut %d: intact sweep lost", cut)
		}
		rs.Close()
	}
}

func TestCompactionPreservesSweepsAndShrinksWAL(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 5; i++ {
		writeSweep(t, s, fmt.Sprintf("s-%06d", i), 2)
	}
	// An in-flight sweep must survive compaction and complete afterwards.
	if err := s.Begin("s-000100", t0, nil); err != nil {
		t.Fatal(err)
	}
	if err := s.AppendRow("s-000100", 0, json.RawMessage(`{"index":0}`)); err != nil {
		t.Fatal(err)
	}
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	if err := s.AppendRow("s-000100", 1, json.RawMessage(`{"index":1}`)); err != nil {
		t.Fatal(err)
	}
	if err := s.End("s-000100"); err != nil {
		t.Fatal(err)
	}
	s.Close()

	// The WAL now holds only the carried-over records, not the 5 sweeps.
	wal, _ := os.ReadFile(filepath.Join(dir, walName))
	if bytes.Contains(wal, []byte("s-000005")) {
		t.Fatal("compacted WAL still holds completed-sweep records")
	}

	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	for i := 1; i <= 5; i++ {
		if _, ok := s2.Get(fmt.Sprintf("s-%06d", i)); !ok {
			t.Fatalf("sweep %d lost across compaction", i)
		}
	}
	rec, ok := s2.Get("s-000100")
	if !ok || len(rec.Rows) != 2 {
		t.Fatalf("in-flight sweep across compaction: ok=%v rows=%d, want 2", ok, len(rec.Rows))
	}
}

// TestSnapshotPlusStaleWALDedupes models the compaction crash window: the
// snapshot was renamed in but the old WAL was not yet truncated, so both
// hold the same sweeps. Replay must dedupe, not duplicate.
func TestSnapshotPlusStaleWALDedupes(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	writeSweep(t, s, "s-000001", 2)
	s.Close()
	wal, _ := os.ReadFile(filepath.Join(dir, walName))

	s, err = Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	s.Close()
	// Resurrect the pre-compaction WAL next to the fresh snapshot.
	if err := os.WriteFile(filepath.Join(dir, walName), wal, 0o644); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if got := s2.IDs(); len(got) != 1 {
		t.Fatalf("IDs = %v, want exactly one s-000001", got)
	}
	rec, _ := s2.Get("s-000001")
	if len(rec.Rows) != 2 {
		t.Fatalf("rows = %d, want 2 (duplicated rows not deduped)", len(rec.Rows))
	}
}

func TestAutoCompactionThreshold(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	s.SetCompactThreshold(1) // every End triggers compaction
	writeSweep(t, s, "s-000001", 1)
	writeSweep(t, s, "s-000002", 1)
	if s.compactions.Load() < 2 {
		t.Fatalf("compactions = %d, want >= 2", s.compactions.Load())
	}
	if _, err := os.Stat(filepath.Join(dir, snapshotName)); err != nil {
		t.Fatal("no snapshot written by auto-compaction")
	}
}

func TestAppendRowOrderEnforced(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.Begin("s-000001", t0, nil); err != nil {
		t.Fatal(err)
	}
	if err := s.AppendRow("s-000001", 1, json.RawMessage(`{}`)); err == nil ||
		!strings.Contains(err.Error(), "out of order") {
		t.Fatalf("out-of-order append err = %v", err)
	}
	if err := s.End("s-000404"); err == nil {
		t.Fatal("End on unknown sweep succeeded")
	}
}

// TestAppendRowIdempotentReplay: re-appending an already-persisted index
// with identical bytes is absorbed silently — the defense-in-depth path for
// a job re-executed after its node died — while divergent bytes at a known
// index are refused.
func TestAppendRowIdempotentReplay(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.Begin("s-000001", t0, nil); err != nil {
		t.Fatal(err)
	}
	row := json.RawMessage(`{"index":0,"app":"Todo","state":"done"}`)
	if err := s.AppendRow("s-000001", 0, row); err != nil {
		t.Fatal(err)
	}
	before := s.walSize(t)
	if err := s.AppendRow("s-000001", 0, row); err != nil {
		t.Fatalf("identical replay = %v, want nil", err)
	}
	if after := s.walSize(t); after != before {
		t.Fatalf("identical replay grew the WAL: %d -> %d bytes", before, after)
	}
	if err := s.AppendRow("s-000001", 0, json.RawMessage(`{"index":0,"divergent":true}`)); err == nil {
		t.Fatal("divergent rewrite of a persisted row was accepted")
	}
	if err := s.AppendRow("s-000001", 1, json.RawMessage(`{"index":1}`)); err != nil {
		t.Fatalf("append after replay = %v", err)
	}
	if err := s.End("s-000001"); err != nil {
		t.Fatal(err)
	}
	rec, _ := s.Get("s-000001")
	if len(rec.Rows) != 2 {
		t.Fatalf("rows = %d, want 2 (replay must not duplicate)", len(rec.Rows))
	}
}

// walSize reads the WAL's current buffered length for growth assertions.
func (s *Store) walSize(t *testing.T) int64 {
	t.Helper()
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.walBytes
}

// TestStoreErrorsCounter: a write against a closed WAL surfaces both the
// error and the greenweb_store_errors_total increment.
func TestStoreErrorsCounter(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Begin("s-000001", t0, nil); err != nil {
		t.Fatal(err)
	}
	// Sabotage the WAL fd underneath the store: the next fsync must fail.
	s.wal.Close()
	if err := s.End("s-000001"); err == nil {
		t.Fatal("End over a closed WAL reported success")
	}
	if s.Errors() == 0 {
		t.Fatal("WAL failure not counted in Errors()")
	}
	reg := obs.NewRegistry()
	s.RegisterMetrics(reg)
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "greenweb_store_errors_total") {
		t.Fatalf("exposition missing greenweb_store_errors_total:\n%s", buf.String())
	}
}
