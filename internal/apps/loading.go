package apps

import (
	"github.com/wattwiseweb/greenweb/internal/qos"
	"github.com/wattwiseweb/greenweb/internal/replay"
	"github.com/wattwiseweb/greenweb/internal/sim"
)

// BBC: a heavy news front page. The loading microbenchmark is judged by the
// first meaningful frame against the single-long target (1 s, 10 s). The
// page is deliberately heavy enough that the minimum-frequency profiling
// run exceeds the 1 s imperceptible target — the source of BBC's elevated
// I-mode QoS violations in the paper's Fig. 9b.
var BBC = register(&App{
	Name:        "BBC",
	Domain:      "news",
	Interaction: Loading,
	QoSType:     qos.Single,
	QoSTarget:   qos.SingleLongTarget,
	BaseHTML: page("BBC", `
			.story { margin: 2px; }
			#nav { width: 300px; }
		`,
		`<div id="nav">sections</div>
		<div id="ticker">breaking</div>
		`+filler(220, "story"),
		`
		// Startup: layout of the story grid, ad auction, personalization.
		work(1500);
		var opened = 0;
		document.getElementById("nav").addEventListener("click", function(e) {
			opened++;
			work(80);
			document.getElementById("nav").textContent = "sections " + opened;
		});
		document.getElementById("ticker").addEventListener("click", function(e) {
			work(30);
			e.target.textContent = "updated";
		});
	`),
	AnnotationCSS: `
		body:QoS { onload-qos: single, long; }
		div#nav:QoS { onclick-qos: single, short; }
	`,
	Micro: &replay.Trace{Name: "bbc-load"},
	Full:  bbcFull(),
})

func bbcFull() *replay.Trace {
	t := &replay.Trace{Name: "bbc-full"}
	// 20 taps over 86 s: 12 on the annotated #nav (only the click is
	// annotated → 12 of 60 events ≈ 20%, Table 3), 8 on the unannotated
	// ticker and stories.
	at := sec(2)
	for i := 0; i < 20; i++ {
		target := "ticker"
		switch {
		case i%5 < 3:
			target = "nav"
		case i%2 == 0:
			target = "story-5"
		}
		t.Append(replay.Tap(at, target)...)
		at += sec(4.2)
	}
	return t
}

// Google: a light search page; loading is judged single-long but fits
// little-cluster configurations comfortably.
var Google = register(&App{
	Name:        "Google",
	Domain:      "search",
	Interaction: Loading,
	QoSType:     qos.Single,
	QoSTarget:   qos.SingleLongTarget,
	BaseHTML: page("Google", `
			#search-box { width: 400px; }
		`,
		`<div id="search-box">query</div>
		<div id="search-btn">go</div>
		`+filler(60, "result"),
		`
		work(700);
		document.getElementById("search-box").addEventListener("touchstart", function(e) {
			work(40);
			e.target.textContent = "focused";
		});
		document.getElementById("search-btn").addEventListener("click", function(e) {
			work(120);
			document.getElementById("search-box").textContent = "results";
		});
	`),
	AnnotationCSS: `
		body:QoS { onload-qos: single, long; }
		div#search-box:QoS {
			ontouchstart-qos: single, short;
			ontouchend-qos: single, short;
			onclick-qos: single, short;
		}
		div#search-btn:QoS {
			ontouchstart-qos: single, short;
			ontouchend-qos: single, short;
			onclick-qos: single, short;
		}
	`,
	Micro: &replay.Trace{Name: "google-load"},
	Full:  googleFull(),
})

func googleFull() *replay.Trace {
	t := &replay.Trace{Name: "google-full"}
	// 8 fully annotated taps (24 events) + 2 unannotated scrolls
	// = 26 events over 31 s, ≈ 92% annotated (Table 3: 87.5%).
	at := sec(1.5)
	for i := 0; i < 8; i++ {
		target := "search-box"
		if i%2 == 1 {
			target = "search-btn"
		}
		t.Append(replay.Tap(at, target)...)
		at += sec(3.4)
	}
	t.Append(replay.Scroll(at, "result-3", 2, 30*sim.Millisecond)...)
	return t
}
