package apps

import (
	"testing"

	"github.com/wattwiseweb/greenweb/internal/acmp"
	"github.com/wattwiseweb/greenweb/internal/browser"
	"github.com/wattwiseweb/greenweb/internal/governor"
	"github.com/wattwiseweb/greenweb/internal/qos"
	"github.com/wattwiseweb/greenweb/internal/sim"
)

func TestCatalogMatchesTable3(t *testing.T) {
	all := All()
	if len(all) != 12 {
		t.Fatalf("catalog has %d apps, want 12", len(all))
	}
	wantOrder := []string{
		"BBC", "Google", "CamanJS", "LZMA-JS", "MSN", "Todo",
		"Amazon", "Craigslist", "Paper.js", "Cnet", "Goo.ne.jp", "W3Schools",
	}
	for i, name := range wantOrder {
		if all[i].Name != name {
			t.Fatalf("catalog[%d] = %s, want %s", i, all[i].Name, name)
		}
	}
	// QoS categories per Table 3.
	type row struct {
		inter  Interaction
		qt     qos.Type
		target qos.Target
	}
	want := map[string]row{
		"BBC":        {Loading, qos.Single, qos.SingleLongTarget},
		"Google":     {Loading, qos.Single, qos.SingleLongTarget},
		"CamanJS":    {Tapping, qos.Single, qos.SingleLongTarget},
		"LZMA-JS":    {Tapping, qos.Single, qos.SingleLongTarget},
		"MSN":        {Tapping, qos.Single, qos.SingleShortTarget},
		"Todo":       {Tapping, qos.Single, qos.SingleShortTarget},
		"Amazon":     {Moving, qos.Continuous, qos.ContinuousTarget},
		"Craigslist": {Moving, qos.Continuous, qos.ContinuousTarget},
		"Paper.js":   {Moving, qos.Continuous, qos.ContinuousTarget},
		"Cnet":       {Tapping, qos.Continuous, qos.ContinuousTarget},
		"Goo.ne.jp":  {Tapping, qos.Continuous, qos.ContinuousTarget},
		"W3Schools":  {Tapping, qos.Continuous, qos.ContinuousTarget},
	}
	for _, a := range all {
		w := want[a.Name]
		if a.Interaction != w.inter || a.QoSType != w.qt || a.QoSTarget != w.target {
			t.Errorf("%s: got (%s, %s, %v), want (%s, %s, %v)",
				a.Name, a.Interaction, a.QoSType, a.QoSTarget, w.inter, w.qt, w.target)
		}
	}
}

func TestByNameAndNames(t *testing.T) {
	a, ok := ByName("bbc")
	if !ok || a.Name != "BBC" {
		t.Fatal("ByName case-insensitive lookup failed")
	}
	if _, ok := ByName("nope"); ok {
		t.Fatal("ByName false positive")
	}
	if len(Names()) != 12 {
		t.Fatal("Names wrong")
	}
}

// boot loads an app under Perf and returns the engine after quiescence.
func boot(t *testing.T, a *App) (*sim.Simulator, *browser.Engine) {
	t.Helper()
	s := sim.New()
	cpu := acmp.NewCPU(s, acmp.DefaultPower())
	e := browser.New(s, cpu, nil)
	e.SetGovernor(governor.NewPerf())
	if _, err := e.LoadPage(a.HTML()); err != nil {
		t.Fatalf("%s: %v", a.Name, err)
	}
	s.RunUntil(sim.Time(20 * sim.Second))
	return s, e
}

func TestEveryAppLoadsCleanly(t *testing.T) {
	for _, a := range All() {
		a := a
		t.Run(a.Name, func(t *testing.T) {
			_, e := boot(t, a)
			if errs := e.ScriptErrors(); len(errs) > 0 {
				t.Fatalf("script errors: %v", errs)
			}
			if len(e.Results()) == 0 {
				t.Fatal("no first meaningful frame")
			}
			// Node counts must be realistic (pipeline cost depends on it).
			if n := e.Doc().CountNodes(); n < 30 {
				t.Fatalf("document has only %d nodes", n)
			}
		})
	}
}

func TestEveryAppHasLoadAnnotation(t *testing.T) {
	for _, a := range All() {
		_, e := boot(t, a)
		body := e.Doc().GetElementsByTag("body")[0]
		ann, ok := e.Annotations().Lookup(body, "load")
		if !ok {
			t.Errorf("%s: no load annotation", a.Name)
			continue
		}
		if ann.Type != qos.Single || ann.Target != qos.SingleLongTarget {
			t.Errorf("%s: load annotation = %+v", a.Name, ann)
		}
	}
}

func TestMicroTraceTargetsAnnotatedElement(t *testing.T) {
	for _, a := range All() {
		if a.Interaction == Loading {
			if a.Micro.Events() != 0 {
				t.Errorf("%s: loading micro trace should be empty", a.Name)
			}
			continue
		}
		_, e := boot(t, a)
		// At least one step of the micro trace must hit an annotated
		// (element, event) pair matching the app's declared QoS category.
		found := false
		for _, step := range a.Micro.Steps {
			n := e.Doc().GetElementByID(step.Target)
			if n == nil {
				t.Errorf("%s: micro step targets missing element %q", a.Name, step.Target)
				continue
			}
			if ann, ok := e.Annotations().Lookup(n, step.Event); ok {
				found = true
				if ann.Type != a.QoSType {
					t.Errorf("%s: annotation type %s != declared %s", a.Name, ann.Type, a.QoSType)
				}
				if ann.Target != a.QoSTarget {
					t.Errorf("%s: annotation target %v != declared %v", a.Name, ann.Target, a.QoSTarget)
				}
			}
		}
		if !found {
			t.Errorf("%s: micro trace never hits an annotated event", a.Name)
		}
	}
}

func TestFullTraceTargetsExist(t *testing.T) {
	for _, a := range All() {
		_, e := boot(t, a)
		for _, step := range a.Full.Steps {
			if e.Doc().GetElementByID(step.Target) == nil {
				t.Errorf("%s: full trace targets missing element %q", a.Name, step.Target)
				break
			}
		}
	}
}

func TestFullTraceShapeMatchesTable3(t *testing.T) {
	// Table 3: duration (seconds) and event counts.
	want := map[string]struct {
		seconds float64
		events  int
	}{
		"BBC": {86, 60}, "Google": {31, 26}, "CamanJS": {49, 24},
		"LZMA-JS": {53, 39}, "MSN": {59, 126}, "Todo": {26, 26},
		"Amazon": {36, 101}, "Craigslist": {25, 22}, "Paper.js": {16, 560},
		"Cnet": {46, 60}, "Goo.ne.jp": {16, 23}, "W3Schools": {64, 59},
	}
	var totalEvents int
	var totalSecs float64
	for _, a := range All() {
		w := want[a.Name]
		ev := a.Full.Events()
		// Within ±15% of the paper's counts.
		if float64(ev) < 0.85*float64(w.events) || float64(ev) > 1.15*float64(w.events) {
			t.Errorf("%s: %d events, Table 3 says %d", a.Name, ev, w.events)
		}
		dur := a.Full.Duration().Seconds()
		if dur < 0.6*w.seconds || dur > 1.2*w.seconds {
			t.Errorf("%s: trace spans %.1fs, Table 3 says %.0fs", a.Name, dur, w.seconds)
		}
		totalEvents += ev
		totalSecs += dur
	}
	// Paper: "each interaction sequence triggers about 94 events and lasts
	// about 43 s" on average.
	avgEvents := float64(totalEvents) / 12
	avgSecs := totalSecs / 12
	if avgEvents < 80 || avgEvents > 110 {
		t.Errorf("average events = %.1f, paper says ~94", avgEvents)
	}
	if avgSecs < 34 || avgSecs > 50 {
		t.Errorf("average duration = %.1fs, paper says ~43s", avgSecs)
	}
}

// TestAnnotationCoverage approximates Table 3's "Annotation" column: the
// fraction of full-interaction events resolved by a GreenWeb annotation.
func TestAnnotationCoverage(t *testing.T) {
	want := map[string]float64{
		"BBC": 0.20, "Google": 0.875, "CamanJS": 1.0, "LZMA-JS": 1.0,
		"MSN": 0.512, "Todo": 0.383, "Amazon": 0.33, "Craigslist": 0.846,
		"Paper.js": 1.0, "Cnet": 0.553, "Goo.ne.jp": 0.518, "W3Schools": 1.0,
	}
	for _, a := range All() {
		_, e := boot(t, a)
		annotated := 0
		for _, step := range a.Full.Steps {
			n := e.Doc().GetElementByID(step.Target)
			if n == nil {
				continue
			}
			if _, ok := e.Annotations().Lookup(n, step.Event); ok {
				annotated++
			}
		}
		got := float64(annotated) / float64(a.Full.Events())
		w := want[a.Name]
		if got < w-0.12 || got > w+0.12 {
			t.Errorf("%s: annotation coverage %.1f%%, Table 3 says %.1f%%",
				a.Name, got*100, w*100)
		}
	}
}

// TestMicroWorkloadRegimes verifies the workload sizing that the paper's
// results depend on, using ground-truth latencies under pinned configs.
func TestMicroWorkloadRegimes(t *testing.T) {
	// MSN's menu tap must need the big cluster for TI=100ms: at the
	// little cluster's best the single-frame latency exceeds it.
	lat := func(a *App, cfg acmp.Config, event, target string) sim.Duration {
		s := sim.New()
		cpu := acmp.NewCPU(s, acmp.DefaultPower())
		e := browser.New(s, cpu, nil)
		e.SetGovernor(governor.NewPerf())
		if _, err := e.LoadPage(a.HTML()); err != nil {
			t.Fatal(err)
		}
		s.RunUntil(sim.Time(20 * sim.Second))
		cpu.SetConfig(cfg)
		base := len(e.Results())
		e.Inject(s.Now().Add(10*sim.Millisecond), event, target, nil)
		s.RunUntil(s.Now().Add(20 * sim.Second))
		frames := e.Results()
		if len(frames) <= base {
			t.Fatalf("%s: no frame for %s on %s", a.Name, event, target)
		}
		for _, fr := range frames[base:] {
			for _, il := range fr.Inputs {
				if il.Input.Event == event {
					return il.Latency
				}
			}
		}
		t.Fatalf("%s: frame not attributed", a.Name)
		return 0
	}

	msn, _ := ByName("MSN")
	if l := lat(msn, acmp.MaxConfig(acmp.Little), "click", "menu"); l <= 100*sim.Millisecond {
		t.Errorf("MSN tap at little@600 = %v; must exceed TI=100ms", l)
	}
	if l := lat(msn, acmp.PeakConfig(), "click", "menu"); l >= 100*sim.Millisecond {
		t.Errorf("MSN tap at peak = %v; must meet TI=100ms", l)
	}

	todo, _ := ByName("Todo")
	if l := lat(todo, acmp.LowestConfig(), "click", "add"); l >= 100*sim.Millisecond {
		t.Errorf("Todo tap at little@350 = %v; must meet TI=100ms", l)
	}

	caman, _ := ByName("CamanJS")
	if l := lat(caman, acmp.LowestConfig(), "click", "filter-btn"); l >= sim.Second {
		t.Errorf("CamanJS filter at little@350 = %v; must meet TI=1s", l)
	}

	lzma, _ := ByName("LZMA-JS")
	if l := lat(lzma, acmp.LowestConfig(), "click", "compress-btn"); l <= sim.Second {
		t.Errorf("LZMA-JS at little@350 = %v; paper's profiling-violation story needs it above TI=1s", l)
	}
	if l := lat(lzma, acmp.PeakConfig(), "click", "compress-btn"); l >= sim.Second {
		t.Errorf("LZMA-JS at peak = %v; must meet TI=1s", l)
	}
}
