package apps

import (
	"github.com/wattwiseweb/greenweb/internal/qos"
	"github.com/wattwiseweb/greenweb/internal/replay"
)

// Cnet: tapping the section header expands it with a rAF animation whose
// frame complexity surges periodically (embedded media cards entering the
// viewport). The surges are what drive Cnet's usable-mode QoS violations
// in the paper's Fig. 9b: a runtime that settled on a low configuration
// reacts a frame late.
var Cnet = register(&App{
	Name:        "Cnet",
	Domain:      "tech news",
	Interaction: Tapping,
	QoSType:     qos.Continuous,
	QoSTarget:   qos.ContinuousTarget,
	BaseHTML: page("Cnet", `
			#panel { width: 200px; }
		`,
		`<div id="expand">reviews</div>
		<div id="panel">panel</div>
		<div id="promo">promo</div>
		`+filler(90, "card"),
		`
		work(450);
		document.getElementById("expand").addEventListener("click", function(e) {
			var f = 0;
			function step() {
				f++;
				// Every 8th frame pulls in a media card: complexity surge.
				if (f % 8 === 0) { work(80); } else { work(12); }
				document.getElementById("panel").style.height = (f * 6) + "px";
				if (f < 40) { requestAnimationFrame(step); }
			}
			requestAnimationFrame(step);
		});
		document.getElementById("promo").addEventListener("click", function(e) {
			work(40);
			e.target.textContent = "dismissed";
		});
	`),
	AnnotationCSS: `
		body:QoS { onload-qos: single, long; }
		div#expand:QoS {
			ontouchstart-qos: continuous;
			ontouchend-qos: continuous;
			onclick-qos: continuous;
		}
	`,
	Micro: microTap("cnet-micro", "expand"),
	Full:  cnetFull(),
})

func cnetFull() *replay.Trace {
	t := &replay.Trace{Name: "cnet-full"}
	// 20 taps over 46 s: 11 on the annotated #expand (33 events) + 9 on
	// the unannotated promo — 33/60 = 55% (Table 3: 55.3%).
	at := sec(1.5)
	for i := 0; i < 20; i++ {
		target := "expand"
		if i%9 >= 5 {
			target = "promo"
		}
		t.Append(replay.Tap(at, target)...)
		at += sec(2.3)
	}
	return t
}

// GooNeJp: a Japanese portal whose menu expands via a CSS transition
// (the paper's Fig. 4 pattern) — a tap-triggered continuous interaction
// with light frames.
var GooNeJp = register(&App{
	Name:        "Goo.ne.jp",
	Domain:      "portal",
	Interaction: Tapping,
	QoSType:     qos.Continuous,
	QoSTarget:   qos.ContinuousTarget,
	BaseHTML: page("Goo", `
			#drawer { width: 100px; transition: width 300ms; }
		`,
		`<div id="menu-btn">menu</div>
		<div id="drawer">drawer</div>
		<div id="banner">banner</div>
		`+filler(45, "link"),
		`
		work(200);
		var open = false;
		document.getElementById("menu-btn").addEventListener("touchstart", function(e) {
			work(10);
			open = !open;
			document.getElementById("drawer").style.width = open ? "420px" : "100px";
		});
		document.getElementById("banner").addEventListener("click", function(e) {
			work(25);
			e.target.textContent = "hidden";
		});
	`),
	AnnotationCSS: `
		body:QoS { onload-qos: single, long; }
		div#menu-btn:QoS {
			ontouchstart-qos: continuous;
			ontouchend-qos: continuous;
			onclick-qos: continuous;
		}
	`,
	Micro: microTap("goo-micro", "menu-btn"),
	Full:  gooFull(),
})

func gooFull() *replay.Trace {
	t := &replay.Trace{Name: "goo-full"}
	// 7 taps over 16 s: 4 annotated (12 events) + 3 on the banner +
	// 2 scroll events — 12/23 ≈ 52% (Table 3: 51.8%).
	at := sec(1)
	for i := 0; i < 7; i++ {
		target := "menu-btn"
		if i%2 == 1 {
			target = "banner"
		}
		t.Append(replay.Tap(at, target)...)
		at += sec(2.1)
	}
	t.Append(replay.Scroll(at, "link-3", 2, sec(0.05))...)
	return t
}

// W3Schools: a tutorial page whose "try it" tap runs a long rAF-driven
// example animation, fully annotated, with the same complexity-surge
// pattern as Cnet (the other usable-mode violation case in Fig. 9b).
var W3Schools = register(&App{
	Name:        "W3Schools",
	Domain:      "education",
	Interaction: Tapping,
	QoSType:     qos.Continuous,
	QoSTarget:   qos.ContinuousTarget,
	BaseHTML: page("W3Schools", `
			#demo { width: 150px; }
		`,
		`<div id="tryit">try it</div>
		<div id="demo">demo</div>
		<div id="toc">contents</div>
		`+filler(70, "section"),
		`
		work(300);
		document.getElementById("tryit").addEventListener("click", function(e) {
			var f = 0;
			function step() {
				f++;
				if (f % 10 === 0) { work(85); } else { work(10); }
				document.getElementById("demo").style.width = (150 + f * 2) + "px";
				if (f < 60) { requestAnimationFrame(step); }
			}
			requestAnimationFrame(step);
		});
		document.getElementById("toc").addEventListener("scroll", function(e) {
			work(8);
			document.getElementById("toc").setAttribute("data-y", e.deltaY);
		});
	`),
	AnnotationCSS: `
		body:QoS { onload-qos: single, long; }
		div#tryit:QoS {
			ontouchstart-qos: continuous;
			ontouchend-qos: continuous;
			onclick-qos: continuous;
		}
		div#toc:QoS { onscroll-qos: continuous; }
	`,
	Micro: microTap("w3schools-micro", "tryit"),
	Full:  w3schoolsFull(),
})

func w3schoolsFull() *replay.Trace {
	t := &replay.Trace{Name: "w3schools-full"}
	// 19 taps on the annotated #tryit + 2 annotated scrolls = 59 events
	// over 64 s, 100% annotated (Table 3).
	at := sec(1)
	for i := 0; i < 19; i++ {
		t.Append(replay.Tap(at, "tryit")...)
		at += sec(3.2)
	}
	t.Append(replay.Scroll(at, "toc", 2, sec(0.05))...)
	return t
}
