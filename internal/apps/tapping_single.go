package apps

import (
	"github.com/wattwiseweb/greenweb/internal/qos"
	"github.com/wattwiseweb/greenweb/internal/replay"
	"github.com/wattwiseweb/greenweb/internal/sim"
)

// CamanJS: an image-editing utility. A tap applies a heavyweight filter
// kernel — a single-long interaction (users knowingly wait). The kernel
// fits little-cluster configurations inside the 1 s imperceptible target,
// which is why CamanJS shows among the largest I-mode savings in Fig. 9a.
var CamanJS = register(&App{
	Name:        "CamanJS",
	Domain:      "image editing",
	Interaction: Tapping,
	QoSType:     qos.Single,
	QoSTarget:   qos.SingleLongTarget,
	BaseHTML: page("CamanJS", ``,
		`<div id="filter-btn">apply filter</div>
		<div id="preview">image</div>
		`+filler(50, "thumb"),
		`
		work(200);
		var applied = 0;
		document.getElementById("filter-btn").addEventListener("click", function(e) {
			applied++;
			work(1200); // convolution over the image
			document.getElementById("preview").textContent = "filtered " + applied;
		});
	`),
	AnnotationCSS: `
		body:QoS { onload-qos: single, long; }
		div#filter-btn:QoS {
			ontouchstart-qos: single, long;
			ontouchend-qos: single, long;
			onclick-qos: single, long;
		}
	`,
	Micro: microTap("camanjs-micro", "filter-btn"),
	Full:  evenTaps("camanjs-full", []string{"filter-btn"}, 8, 49),
})

// LZMA-JS: in-browser compression. Like CamanJS but heavier: the kernel's
// minimum-configuration latency exceeds the 1 s imperceptible target, so
// the min-frequency profiling run violates — the paper's explanation for
// LZMA-JS's I-mode violations (Fig. 9b discussion).
var LZMAJS = register(&App{
	Name:        "LZMA-JS",
	Domain:      "compression",
	Interaction: Tapping,
	QoSType:     qos.Single,
	QoSTarget:   qos.SingleLongTarget,
	BaseHTML: page("LZMA-JS", ``,
		`<div id="compress-btn">compress</div>
		<div id="status">idle</div>
		`+filler(30, "row"),
		`
		work(150);
		var runs = 0;
		document.getElementById("compress-btn").addEventListener("click", function(e) {
			runs++;
			work(1800); // match-finder and range coder
			document.getElementById("status").textContent = "done " + runs;
		});
	`),
	AnnotationCSS: `
		body:QoS { onload-qos: single, long; }
		div#compress-btn:QoS {
			ontouchstart-qos: single, long;
			ontouchend-qos: single, long;
			onclick-qos: single, long;
		}
	`,
	Micro: microTap("lzma-micro", "compress-btn"),
	Full:  evenTaps("lzma-full", []string{"compress-btn"}, 13, 53),
})

// MSN: a dense portal whose menu tap is single-short (100 ms, 300 ms). The
// callback is heavy enough that the imperceptible target needs the big
// cluster — and the minimum-frequency profiling run badly violates it,
// reproducing MSN's I-mode violation spike.
var MSN = register(&App{
	Name:        "MSN",
	Domain:      "portal",
	Interaction: Tapping,
	QoSType:     qos.Single,
	QoSTarget:   qos.SingleShortTarget,
	BaseHTML: page("MSN", `
			.tile { margin: 1px; }
		`,
		`<div id="menu">menu</div>
		<div id="weather">weather</div>
		`+filler(120, "tile"),
		`
		work(500);
		var opens = 0;
		document.getElementById("menu").addEventListener("click", function(e) {
			opens++;
			work(550); // rebuild the flyout tile grid
			document.getElementById("menu").textContent = "menu " + opens;
		});
		document.getElementById("menu").addEventListener("touchstart", function(e) {
			work(25);
			e.target.textContent = "pressed";
		});
		document.getElementById("weather").addEventListener("click", function(e) {
			work(60);
			e.target.textContent = "refreshed";
		});
	`),
	AnnotationCSS: `
		body:QoS { onload-qos: single, long; }
		div#menu:QoS {
			ontouchstart-qos: single, short;
			onclick-qos: single, short;
		}
	`,
	Micro: microTap("msn-micro", "menu"),
	Full:  msnFull(),
})

func msnFull() *replay.Trace {
	t := &replay.Trace{Name: "msn-full"}
	// 42 taps over 59 s: 32 on the annotated #menu (touchstart and click
	// annotated, 2 of 3 events ≈ 64 events) + 10 on the unannotated
	// weather tile — 64/126 ≈ 51% (Table 3: 51.2%).
	at := sec(1.2)
	for i := 0; i < 42; i++ {
		target := "menu"
		if i%4 == 3 {
			target = "weather"
		}
		t.Append(replay.Tap(at, target)...)
		at += sec(1.37)
	}
	return t
}

// Todo: a minimal todo list; taps are single-short and so light that every
// little-cluster configuration meets the imperceptible target — the
// largest-savings case of Fig. 9a.
var Todo = register(&App{
	Name:        "Todo",
	Domain:      "productivity",
	Interaction: Tapping,
	QoSType:     qos.Single,
	QoSTarget:   qos.SingleShortTarget,
	BaseHTML: page("Todo", ``,
		`<div id="add">add item</div>
		<div id="list"></div>
		`+filler(40, "todo"),
		`
		work(60);
		var items = 0;
		document.getElementById("add").addEventListener("click", function(e) {
			items++;
			work(60);
			var li = document.createElement("div");
			li.textContent = "todo " + items;
			document.getElementById("list").appendChild(li);
		});
		document.getElementById("list").addEventListener("scroll", function(e) {
			work(15);
			document.getElementById("list").setAttribute("data-top", e.deltaY);
		});
	`),
	AnnotationCSS: `
		body:QoS { onload-qos: single, long; }
		div#add:QoS { onclick-qos: single, short; }
		div#list:QoS { onscroll-qos: single, short; }
	`,
	Micro: microTap("todo-micro", "add"),
	Full:  todoFull(),
})

func todoFull() *replay.Trace {
	t := &replay.Trace{Name: "todo-full"}
	// 8 taps on #add (only click annotated) + 2 annotated scrolls =
	// 26 events over 26 s; 10/26 ≈ 38% annotated (Table 3: 38.3%).
	at := sec(1)
	for i := 0; i < 8; i++ {
		t.Append(replay.Tap(at, "add")...)
		at += sec(2.8)
	}
	t.Append(replay.Scroll(at, "list", 2, 50*sim.Millisecond)...)
	return t
}

// ---- trace helpers ----

// microTap repeats the tapping primitive several times: the paper's
// microbenchmarks exercise an event, and a single cold occurrence would be
// all profiling — repetition lets the runtime's model engage, while the
// profiling runs still show up in the violation accounting.
func microTap(name, target string) *replay.Trace {
	t := &replay.Trace{Name: name}
	at := sec(0.5)
	for i := 0; i < 6; i++ {
		t.Append(replay.Tap(at, target)...)
		at += sec(2.5)
	}
	return t
}

// evenTaps spreads n taps on rotating targets across roughly total seconds.
func evenTaps(name string, targets []string, n int, totalSec float64) *replay.Trace {
	t := &replay.Trace{Name: name}
	gap := (totalSec - 2) / float64(n)
	at := sec(1)
	for i := 0; i < n; i++ {
		t.Append(replay.Tap(at, targets[i%len(targets)])...)
		at += sec(gap)
	}
	return t
}
