package apps

import (
	"github.com/wattwiseweb/greenweb/internal/qos"
	"github.com/wattwiseweb/greenweb/internal/replay"
	"github.com/wattwiseweb/greenweb/internal/sim"
)

// Amazon: a product feed whose scrolling is continuous (16.6, 33.3) ms.
// The page is heavy (200 nodes), so imperceptible-target frames need the
// big cluster while usable-target frames fit the little cluster's upper
// configurations — producing the large I↔U gap the paper reports for
// continuous events.
var Amazon = register(&App{
	Name:        "Amazon",
	Domain:      "shopping",
	Interaction: Moving,
	QoSType:     qos.Continuous,
	QoSTarget:   qos.ContinuousTarget,
	BaseHTML: page("Amazon", `
			.product { margin: 1px; }
		`,
		`<div id="feed">products</div>
		<div id="recs">recommendations</div>
		`+filler(200, "product"),
		`
		work(600);
		var off = 0;
		document.getElementById("feed").addEventListener("touchmove", function(e) {
			off += e.deltaY;
			work(18); // visibility culling + lazy-load checks
			document.getElementById("feed").setAttribute("data-offset", off);
		});
		document.getElementById("recs").addEventListener("touchmove", function(e) {
			work(18);
			document.getElementById("recs").setAttribute("data-off", e.deltaY);
		});
	`),
	AnnotationCSS: `
		body:QoS { onload-qos: single, long; }
		div#feed:QoS { ontouchmove-qos: continuous; }
	`,
	Micro: microMove("amazon-micro", "feed", 40, 32*sim.Millisecond),
	Full:  amazonFull(),
})

func amazonFull() *replay.Trace {
	t := &replay.Trace{Name: "amazon-full"}
	// Three 32-sample swipes over 36 s: one on the annotated #feed, two on
	// the unannotated #recs — 33 of 102 events ≈ 33% (Table 3: 33%*).
	// Finger samples arrive at ~30 Hz (a slow browse-scroll).
	t.Append(replay.Move(sec(2), "feed", 32, 32*sim.Millisecond)...)
	t.Append(replay.Move(sec(14), "recs", 32, 32*sim.Millisecond)...)
	t.Append(replay.Move(sec(26), "recs", 32, 32*sim.Millisecond)...)
	return t
}

// Craigslist: a plain listings page; scrolling frames are light enough
// that even low little-cluster configurations approach the imperceptible
// target.
var Craigslist = register(&App{
	Name:        "Craigslist",
	Domain:      "classifieds",
	Interaction: Moving,
	QoSType:     qos.Continuous,
	QoSTarget:   qos.ContinuousTarget,
	BaseHTML: page("Craigslist", ``,
		`<div id="listings">posts</div>
		`+filler(60, "post"),
		`
		work(120);
		var pos = 0;
		document.getElementById("listings").addEventListener("touchmove", function(e) {
			pos += e.deltaY;
			work(6);
			document.getElementById("listings").setAttribute("data-pos", pos);
		});
	`),
	AnnotationCSS: `
		body:QoS { onload-qos: single, long; }
		div#listings:QoS { ontouchmove-qos: continuous; }
	`,
	Micro: microMove("craigslist-micro", "listings", 40, 16*sim.Millisecond),
	Full:  craigslistFull(),
})

func craigslistFull() *replay.Trace {
	t := &replay.Trace{Name: "craigslist-full"}
	// One 20-sample swipe (22 events) over 25 s of dwell; the touchmoves
	// are annotated — 20/22 ≈ 91% (Table 3: 84.6%).
	t.Append(replay.Move(sec(2), "listings", 20, 24*sim.Millisecond)...)
	t.Append(replay.Tap(sec(20), "post-3")...) // unannotated reading tap
	return t
}

// PaperJS: a canvas drawing application — the paper's 560-event,
// 16-second interaction is a dense stream of touchmoves, each extending
// the stroke with input-dependent cost.
var PaperJS = register(&App{
	Name:        "Paper.js",
	Domain:      "drawing",
	Interaction: Moving,
	QoSType:     qos.Continuous,
	QoSTarget:   qos.ContinuousTarget,
	BaseHTML: page("Paper.js", `
			#canvas { width: 300px; }
		`,
		`<div id="canvas">canvas</div>
		`+filler(25, "tool"),
		`
		work(250);
		var pts = 0;
		document.getElementById("canvas").addEventListener("touchstart", function(e) {
			work(8);
			document.getElementById("canvas").setAttribute("data-stroke", "start");
		});
		document.getElementById("canvas").addEventListener("touchmove", function(e) {
			pts++;
			// Path smoothing cost grows with recent stroke complexity.
			work(12 + (pts % 16));
			document.getElementById("canvas").setAttribute("data-pts", pts);
		});
		document.getElementById("canvas").addEventListener("touchend", function(e) {
			work(20); // simplify and commit the path
			document.getElementById("canvas").setAttribute("data-stroke", "end");
		});
	`),
	AnnotationCSS: `
		body:QoS { onload-qos: single, long; }
		div#canvas:QoS {
			ontouchstart-qos: continuous;
			ontouchmove-qos: continuous;
			ontouchend-qos: continuous;
		}
	`,
	Micro: microMove("paperjs-micro", "canvas", 40, 16*sim.Millisecond),
	Full:  paperjsFull(),
})

func paperjsFull() *replay.Trace {
	t := &replay.Trace{Name: "paperjs-full"}
	// Five 110-sample strokes ≈ 560 events in 16 s, all annotated
	// (Table 3: 560 events, 100%).
	at := sec(0.5)
	for i := 0; i < 5; i++ {
		t.Append(replay.Move(at, "canvas", 110, 25*sim.Millisecond)...)
		at += sec(3.1)
	}
	return t
}

func microMove(name, target string, n int, gap sim.Duration) *replay.Trace {
	t := &replay.Trace{Name: name}
	t.Append(replay.Move(sec(0.5), target, n, gap)...)
	return t
}
