// Package apps defines the twelve applications of the paper's Table 3 as
// synthetic workloads. The real evaluation crawled live sites (BBC, Google,
// Amazon, …) with HTTrack; that content is not reproducible, but the result
// shape depends on workload *structure* — interaction kind (LTM), QoS
// category, frame complexity relative to targets, event counts and pacing —
// which these applications encode app by app:
//
//   - Loading apps (BBC, Google) differ in page weight and script startup;
//   - single-long tapping apps (CamanJS, LZMA-JS) run heavyweight kernels
//     whose little-cluster latency sits just around the 1 s imperceptible
//     target (LZMA-JS deliberately above it, so the minimum-frequency
//     profiling run violates, as the paper reports);
//   - single-short tapping apps (MSN, Todo) differ in whether the 100 ms
//     target forces the big cluster (MSN) or not (Todo);
//   - moving apps (Amazon, Craigslist, Paper.js) differ in per-frame
//     pipeline and handler weight;
//   - tap-triggered continuous apps (Cnet, Goo.ne.jp, W3Schools) animate
//     via rAF or CSS transitions, two with periodic complexity surges that
//     produce the usable-mode violations the paper attributes to them.
//
// Each application carries its manual GreenWeb annotations separately from
// the base HTML, so the AUTOGREEN pipeline can be evaluated against the
// unannotated source.
package apps

import (
	"fmt"
	"strings"
	"sync"

	"github.com/wattwiseweb/greenweb/internal/qos"
	"github.com/wattwiseweb/greenweb/internal/replay"
	"github.com/wattwiseweb/greenweb/internal/sim"
)

// Interaction is the LTM primitive an app's microbenchmark exercises.
type Interaction string

// The three LTM interaction primitives (paper Fig. 2).
const (
	Loading Interaction = "Loading"
	Tapping Interaction = "Tapping"
	Moving  Interaction = "Moving"
)

// App is one evaluation application.
type App struct {
	Name   string
	Domain string // news, search, utility, …

	// Micro-benchmark identity (Table 3 left half).
	Interaction Interaction
	QoSType     qos.Type
	QoSTarget   qos.Target

	// BaseHTML is the application without GreenWeb annotations;
	// AnnotationCSS holds the manual GreenWeb rules.
	BaseHTML      string
	AnnotationCSS string

	// Micro is the single-primitive interaction; Full is the Table 3
	// full-interaction sequence.
	Micro *replay.Trace
	Full  *replay.Trace

	htmlOnce sync.Once
	htmlMemo string
}

// HTML returns the annotated application: the base page with the manual
// GreenWeb rules injected as a final <style> element. The result is
// assembled once: catalog apps are shared across fleet workers, and the
// returned string doubles as the asset-cache key, so handing out one
// identical string per app keeps every worker on the same cache entry.
func (a *App) HTML() string {
	a.htmlOnce.Do(func() {
		a.htmlMemo = injectStyle(a.BaseHTML, a.AnnotationCSS)
	})
	return a.htmlMemo
}

func injectStyle(src, cssText string) string {
	style := "<style>\n" + cssText + "\n</style>"
	if i := strings.LastIndex(src, "</body>"); i >= 0 {
		return src[:i] + style + src[i:]
	}
	return src + style
}

func (a *App) String() string {
	return fmt.Sprintf("%s(%s, %s %v)", a.Name, a.Interaction, a.QoSType, a.QoSTarget)
}

// registry holds the catalog in Table 3 order; it is assembled in init
// (after all app variables are initialized) so the order is explicit rather
// than an artifact of file names.
var registry []*App

func init() {
	registry = []*App{
		BBC, Google,
		CamanJS, LZMAJS, MSN, Todo,
		Amazon, Craigslist, PaperJS,
		Cnet, GooNeJp, W3Schools,
	}
}

// register is an identity marker making catalog entries grep-able.
func register(a *App) *App { return a }

// All returns the twelve applications in Table 3 order.
func All() []*App {
	out := make([]*App, len(registry))
	copy(out, registry)
	return out
}

// ByName finds an application by name (case-insensitive), searching the
// Table 3 catalog first and then the SPA family (spa.go).
func ByName(name string) (*App, bool) {
	for _, a := range registry {
		if strings.EqualFold(a.Name, name) {
			return a, true
		}
	}
	return spaByName(name)
}

// Names lists the catalog names in order.
func Names() []string {
	out := make([]string, len(registry))
	for i, a := range registry {
		out[i] = a.Name
	}
	return out
}

// ---- page construction helpers ----

// filler produces n inert content elements to give a document a realistic
// node count (pipeline cost scales with DOM size).
func filler(n int, class string) string {
	var b strings.Builder
	for i := 0; i < n; i++ {
		fmt.Fprintf(&b, `<div class="%s" id="%s-%d"><p>item %d</p></div>`+"\n", class, class, i, i)
	}
	return b.String()
}

// page assembles a standard document skeleton.
func page(title, styleCSS, body, script string) string {
	return `<html><head><style>` + styleCSS + `</style></head><body>
<h1>` + title + `</h1>
` + body + `
<script>
` + script + `
</script></body></html>`
}

// sec converts float seconds to a trace offset.
func sec(s float64) sim.Duration { return sim.Duration(s * float64(sim.Second)) }
