package apps

// The DOM-heavy SPA family (PR 9). These applications are NOT part of the
// paper's Table 3 catalog — All()/Names() and every default report iterate
// the Table 3 registry only, so adding family members here never perturbs
// existing byte-pinned outputs. They live in their own registry, reachable
// by name (ByName searches both) and through SPAApps/SPANames, and exist to
// exercise the staged rendering pipeline: a component tree built by script
// (state-driven rerenders against the DOM API) whose per-frame cost is
// dominated by style/layout/paint over thousands of nodes rather than by
// script — exactly the shape where sharding render phases across stage
// cores shortens the critical path, and where the per-stage configuration
// vector finds ladder slack to spend.

import (
	"strings"

	"github.com/wattwiseweb/greenweb/internal/qos"
)

// spaRegistry holds the SPA family, assembled in init like the main catalog.
var spaRegistry []*App

func init() {
	spaRegistry = []*App{SPAFeed, SPABoard}
}

// SPAApps returns the SPA family in catalog order.
func SPAApps() []*App {
	out := make([]*App, len(spaRegistry))
	copy(out, spaRegistry)
	return out
}

// SPANames lists the SPA family names in order.
func SPANames() []string {
	out := make([]string, len(spaRegistry))
	for i, a := range spaRegistry {
		out[i] = a.Name
	}
	return out
}

// spaByName finds an SPA-family application (case-insensitive).
func spaByName(name string) (*App, bool) {
	for _, a := range spaRegistry {
		if strings.EqualFold(a.Name, name) {
			return a, true
		}
	}
	return nil, false
}

// spaComponentScript is the shared component-tree core: a card component
// (10 DOM nodes each), a mount that builds n of them under #feed, and a
// rerender that replaces a rotating window of components per frame — the
// virtual-DOM "diff produced a small patch" shape, driven by explicit state.
const spaComponentScript = `
	var state = { items: ITEMS, tick: 0 };
	var feed = document.getElementById("feed");
	var cards = [];
	function card(i) {
		var c = document.createElement("div");
		c.className = "card";
		var h = document.createElement("div");
		h.className = "hdr";
		h.appendChild(document.createTextNode("story " + i));
		c.appendChild(h);
		var b = document.createElement("p");
		b.appendChild(document.createTextNode("summary of story " + i));
		c.appendChild(b);
		var m = document.createElement("div");
		m.className = "meta";
		var s1 = document.createElement("span");
		s1.appendChild(document.createTextNode("like"));
		m.appendChild(s1);
		var s2 = document.createElement("span");
		s2.appendChild(document.createTextNode("share"));
		m.appendChild(s2);
		c.appendChild(m);
		return c;
	}
	function mount() {
		var i = 0;
		while (i < state.items) {
			var c = card(i);
			cards.push(c);
			feed.appendChild(c);
			i = i + 1;
		}
	}
	function rerender(window) {
		state.tick = state.tick + 1;
		var i = 0;
		while (i < window) {
			var idx = (state.tick * window + i) % cards.length;
			feed.removeChild(cards[idx]);
			var nc = card(idx);
			cards[idx] = nc;
			feed.appendChild(nc);
			i = i + 1;
		}
	}
	mount();
`

func spaScript(items, window, frames, workPerFrame int) string {
	s := strings.Replace(spaComponentScript, "ITEMS", itoa(items), 1)
	return s + `
	document.getElementById("refresh").addEventListener("click", function(e) {
		var f = 0;
		function step() {
			f = f + 1;
			rerender(` + itoa(window) + `);
			work(` + itoa(workPerFrame) + `);
			if (f < ` + itoa(frames) + `) { requestAnimationFrame(step); }
		}
		requestAnimationFrame(step);
	});
	document.getElementById("badge").addEventListener("click", function(e) {
		work(20);
		e.target.textContent = "seen";
	});
`
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b []byte
	for n > 0 {
		b = append([]byte{byte('0' + n%10)}, b...)
		n /= 10
	}
	return string(b)
}

// SPAFeed: an infinite-feed single-page app. 220 card components ≈ 2.2 k DOM
// nodes; a tap on refresh drives 40 state-driven rerender frames. Script per
// frame is tiny — the frame cost is style/layout/paint over the whole tree,
// so the serial pipeline cannot hold 60 FPS at any configuration while the
// staged pipeline can, with slack left for the per-stage vector.
var SPAFeed = register(&App{
	Name:        "SPA-Feed",
	Domain:      "social feed",
	Interaction: Tapping,
	QoSType:     qos.Continuous,
	QoSTarget:   qos.ContinuousTarget,
	BaseHTML: page("SPA-Feed", `
			.card { width: 300px; }
			.hdr { font-weight: bold; }
		`,
		`<div id="refresh">refresh</div>
		<div id="badge">3 new</div>
		<div id="feed"></div>`,
		spaScript(220, 12, 40, 8)),
	AnnotationCSS: `
		body:QoS { onload-qos: single, long; }
		div#refresh:QoS {
			ontouchstart-qos: continuous;
			ontouchend-qos: continuous;
			onclick-qos: continuous;
		}
	`,
	Micro: microTap("spafeed-micro", "refresh"),
	Full:  evenTaps("spafeed-full", []string{"refresh", "refresh", "badge"}, 9, 42),
})

// SPABoard: a kanban-style board — the smaller family member (130 components
// ≈ 1.3 k nodes, heavier per-frame script). Still layout-dominated, but with
// enough script that the staged speedup is smaller: the family spans the
// ratio of render-to-script cost rather than one point.
var SPABoard = register(&App{
	Name:        "SPA-Board",
	Domain:      "project board",
	Interaction: Tapping,
	QoSType:     qos.Continuous,
	QoSTarget:   qos.ContinuousTarget,
	BaseHTML: page("SPA-Board", `
			.card { width: 240px; }
			.meta { color: gray; }
		`,
		`<div id="refresh">sync</div>
		<div id="badge">inbox</div>
		<div id="feed"></div>`,
		spaScript(130, 8, 30, 60)),
	AnnotationCSS: `
		body:QoS { onload-qos: single, long; }
		div#refresh:QoS {
			ontouchstart-qos: continuous;
			ontouchend-qos: continuous;
			onclick-qos: continuous;
		}
	`,
	Micro: microTap("spaboard-micro", "refresh"),
	Full:  evenTaps("spaboard-full", []string{"refresh", "badge"}, 8, 38),
})
