// Package css implements a CSS engine: tokenizing and parsing style sheets,
// selector matching with standard specificity, cascading computed styles
// onto a DOM tree — plus the GreenWeb language extension the paper
// contributes (Sec. 4, Fig. 3, Table 2):
//
//	GreenWebRule ::= Selector? { QoSDecl+ }
//	Selector     ::= Element:QoS
//	QoSDecl      ::= CDecl | SDecl
//	CDecl        ::= onEventName-qos: continuous [, v, v]
//	SDecl        ::= onEventName-qos: single, short|long | single, v, v
//
// A rule selects elements with the :QoS pseudo-class and declares, per DOM
// event, the QoS type (single or continuous) and optionally explicit
// imperceptible/usable targets in milliseconds. Ordinary visual declarations
// and GreenWeb declarations coexist in one sheet, exactly as CSS3 extension
// properties do.
package css

import (
	"fmt"
	"strconv"
	"strings"
	"sync/atomic"

	"github.com/wattwiseweb/greenweb/internal/sim"
)

// Decl is one declaration: property: value, optionally flagged !important.
type Decl struct {
	Property  string
	Value     string
	Important bool
}

func (d Decl) String() string {
	if d.Important {
		return d.Property + ": " + d.Value + " !important;"
	}
	return d.Property + ": " + d.Value + ";"
}

// Rule is one style rule: a selector group and its declarations.
type Rule struct {
	Selectors []Selector
	Decls     []Decl
	// Index is the rule's position in its stylesheet, used as the cascade
	// tiebreak (later rules win at equal specificity).
	Index int
}

// Stylesheet is a parsed sheet.
type Stylesheet struct {
	Rules []*Rule

	// idx caches the rightmost-compound rule index Cascade matches
	// against (see cascade.go). It is rebuilt when Rules has grown since
	// the last build and shared through an atomic pointer so cached,
	// parsed sheets can cascade concurrently across engines.
	idx atomic.Pointer[ruleIndex]
}

// ParseError reports a malformed construct. The parser is tolerant: it
// records errors and skips to the next rule, like engines do.
type ParseError struct {
	Offset int
	Msg    string
}

func (e *ParseError) Error() string { return fmt.Sprintf("css: at offset %d: %s", e.Offset, e.Msg) }

// Parse parses a stylesheet. Unparseable rules are skipped; the errors
// returned describe what was skipped (the sheet is still usable).
func Parse(src string) (*Stylesheet, []error) {
	p := &parser{src: src}
	return p.parseSheet()
}

// MustParse parses a sheet and panics on any error; for embedded app
// sources and tests.
func MustParse(src string) *Stylesheet {
	sheet, errs := Parse(src)
	if len(errs) > 0 {
		panic(errs[0])
	}
	return sheet
}

type parser struct {
	src string
	pos int
}

func (p *parser) parseSheet() (*Stylesheet, []error) {
	sheet := &Stylesheet{}
	var errs []error
	for {
		p.skipSpaceAndComments()
		if p.pos >= len(p.src) {
			return sheet, errs
		}
		if p.src[p.pos] == '@' {
			// At-rules (media queries etc.) are skipped wholesale.
			if err := p.skipAtRule(); err != nil {
				errs = append(errs, err)
				return sheet, errs
			}
			continue
		}
		rule, err := p.parseRule()
		if err != nil {
			errs = append(errs, err)
			p.recover()
			continue
		}
		rule.Index = len(sheet.Rules)
		sheet.Rules = append(sheet.Rules, rule)
	}
}

func (p *parser) errorf(format string, args ...any) error {
	return &ParseError{Offset: p.pos, Msg: fmt.Sprintf(format, args...)}
}

func (p *parser) skipSpaceAndComments() {
	for p.pos < len(p.src) {
		c := p.src[p.pos]
		if c == ' ' || c == '\t' || c == '\n' || c == '\r' {
			p.pos++
			continue
		}
		if strings.HasPrefix(p.src[p.pos:], "/*") {
			end := strings.Index(p.src[p.pos+2:], "*/")
			if end < 0 {
				p.pos = len(p.src)
				return
			}
			p.pos += end + 4
			continue
		}
		return
	}
}

// recover skips past the next top-level '}' so parsing can resume.
func (p *parser) recover() {
	depth := 0
	for p.pos < len(p.src) {
		switch p.src[p.pos] {
		case '{':
			depth++
		case '}':
			depth--
			if depth <= 0 {
				p.pos++
				return
			}
		}
		p.pos++
	}
}

func (p *parser) skipAtRule() error {
	// Skip to ';' (statement at-rule) or a balanced block.
	for p.pos < len(p.src) {
		switch p.src[p.pos] {
		case ';':
			p.pos++
			return nil
		case '{':
			p.recover()
			return nil
		}
		p.pos++
	}
	return p.errorf("unterminated at-rule")
}

func (p *parser) parseRule() (*Rule, error) {
	brace := strings.IndexByte(p.src[p.pos:], '{')
	if brace < 0 {
		p.pos = len(p.src)
		return nil, p.errorf("expected '{' in rule")
	}
	selText := p.src[p.pos : p.pos+brace]
	p.pos += brace + 1

	sels, err := ParseSelectors(selText)
	if err != nil {
		return nil, &ParseError{Offset: p.pos, Msg: err.Error()}
	}

	var decls []Decl
	for {
		p.skipSpaceAndComments()
		if p.pos >= len(p.src) {
			return nil, p.errorf("unterminated rule body")
		}
		if p.src[p.pos] == '}' {
			p.pos++
			break
		}
		colon := strings.IndexByte(p.src[p.pos:], ':')
		endBrace := strings.IndexByte(p.src[p.pos:], '}')
		if colon < 0 || (endBrace >= 0 && colon > endBrace) {
			return nil, p.errorf("expected ':' in declaration")
		}
		prop := strings.TrimSpace(p.src[p.pos : p.pos+colon])
		p.pos += colon + 1
		// Value runs to ';' or '}'.
		valEnd := p.pos
		for valEnd < len(p.src) && p.src[valEnd] != ';' && p.src[valEnd] != '}' {
			valEnd++
		}
		val := strings.TrimSpace(p.src[p.pos:valEnd])
		p.pos = valEnd
		if p.pos < len(p.src) && p.src[p.pos] == ';' {
			p.pos++
		}
		if prop == "" {
			return nil, p.errorf("empty property name")
		}
		important := false
		if rest, ok := strings.CutSuffix(val, "!important"); ok {
			important = true
			val = strings.TrimSpace(rest)
		}
		decls = append(decls, Decl{Property: strings.ToLower(prop), Value: val, Important: important})
	}
	return &Rule{Selectors: sels, Decls: decls}, nil
}

// Serialize renders the stylesheet back to CSS text. AUTOGREEN uses this to
// inject generated annotation rules into application sources.
func (s *Stylesheet) Serialize() string {
	var b strings.Builder
	for i, r := range s.Rules {
		if i > 0 {
			b.WriteString("\n")
		}
		b.WriteString(r.String())
	}
	return b.String()
}

func (r *Rule) String() string {
	var b strings.Builder
	for i, s := range r.Selectors {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(s.String())
	}
	b.WriteString(" {\n")
	for _, d := range r.Decls {
		b.WriteString("  ")
		b.WriteString(d.String())
		b.WriteString("\n")
	}
	b.WriteString("}")
	return b.String()
}

// ParseDuration parses CSS time values: "2s", "500ms", "0.25s".
func ParseDuration(s string) (sim.Duration, error) {
	s = strings.TrimSpace(strings.ToLower(s))
	var mult float64
	var numPart string
	switch {
	case strings.HasSuffix(s, "ms"):
		mult = float64(sim.Millisecond)
		numPart = s[:len(s)-2]
	case strings.HasSuffix(s, "s"):
		mult = float64(sim.Second)
		numPart = s[:len(s)-1]
	default:
		return 0, fmt.Errorf("css: time %q has no unit", s)
	}
	f, err := strconv.ParseFloat(strings.TrimSpace(numPart), 64)
	if err != nil || f < 0 {
		return 0, fmt.Errorf("css: malformed time %q", s)
	}
	return sim.Duration(f * mult), nil
}

// FormatDuration renders a duration as a CSS time value in ms.
func FormatDuration(d sim.Duration) string {
	ms := d.Milliseconds()
	return strconv.FormatFloat(ms, 'f', -1, 64) + "ms"
}

// Transition is one parsed "transition: <property> <duration>" entry.
type Transition struct {
	Property string
	Duration sim.Duration
}

// ParseTransitions parses a transition shorthand value, e.g.
// "width 2s, height 500ms". Entries without a valid duration are skipped.
func ParseTransitions(value string) []Transition {
	var out []Transition
	for _, part := range strings.Split(value, ",") {
		fields := strings.Fields(part)
		if len(fields) < 2 {
			continue
		}
		d, err := ParseDuration(fields[1])
		if err != nil {
			continue
		}
		out = append(out, Transition{Property: strings.ToLower(fields[0]), Duration: d})
	}
	return out
}
