package css

import (
	"fmt"
	"sort"
	"testing"

	"github.com/wattwiseweb/greenweb/internal/dom"
)

// referenceCascade is the pre-index full-scan cascade, kept verbatim as the
// semantic oracle: every rule tested against every element, candidates
// sorted with sort.SliceStable. The indexed Cascade must match it exactly.
func referenceCascade(doc *dom.Document, sheets ...*Stylesheet) int {
	applied := 0
	order := 0
	type indexedRule struct {
		rule  *Rule
		order int
	}
	var rules []indexedRule
	for _, sheet := range sheets {
		for _, r := range sheet.Rules {
			order++
			rules = append(rules, indexedRule{r, order})
		}
	}
	for _, n := range doc.Elements() {
		var cands []cand
		for _, ir := range rules {
			for _, sel := range ir.rule.Selectors {
				if !sel.Matches(n) {
					continue
				}
				spec := sel.Specificity()
				for di := range ir.rule.Decls {
					d := &ir.rule.Decls[di]
					if _, isQoS := IsQoSProperty(d.Property); isQoS {
						continue
					}
					cands = append(cands, cand{spec, ir.order, d})
				}
				break
			}
		}
		if len(cands) == 0 {
			continue
		}
		sort.SliceStable(cands, func(i, j int) bool { return candLess(cands[i], cands[j]) })
		if n.ComputedStyle == nil {
			n.ComputedStyle = make(map[string]string, len(cands))
		}
		for _, c := range cands {
			n.ComputedStyle[c.decl.Property] = c.decl.Value
			applied++
		}
	}
	return applied
}

// buildCascadeDoc assembles a document exercising every bucket kind: ids,
// multi-class elements, tags, nesting for combinators, and elements
// matching several selectors of the same rule group.
func buildCascadeDoc() *dom.Document {
	doc := dom.NewDocument()
	body := doc.NewElement("body")
	doc.Root.AppendChild(body)
	nav := doc.NewElement("nav")
	nav.SetAttr("id", "nav")
	nav.SetAttr("class", "top wide")
	body.AppendChild(nav)
	for i := 0; i < 12; i++ {
		d := doc.NewElement("div")
		d.SetAttr("class", fmt.Sprintf("item c%d", i%3))
		d.SetAttr("id", fmt.Sprintf("item-%d", i))
		nav.AppendChild(d)
		p := doc.NewElement("p")
		p.SetAttr("data-k", fmt.Sprintf("%d", i))
		d.AppendChild(p)
		if i%4 == 0 {
			s := doc.NewElement("span")
			s.SetAttr("class", "deep")
			p.AppendChild(s)
		}
	}
	plain := doc.NewElement("footer")
	body.AppendChild(plain)
	return doc
}

var cascadeEquivSheets = []string{
	`div { color: red; margin: 1px; }
	 .item { color: blue; }
	 #item-3 { color: green !important; padding: 2px; }
	 nav > div { border: thin; }
	 * { font: base; }
	 p { font: serif; }
	 .c1.item { color: teal; }
	 span.deep { depth: yes; }
	 [data-k="5"] { data: five; }
	 div:not(.c2) { not: c2; }`,
	`div, .c0 { color: purple; }
	 .top #item-1 { nested: yes; }
	 footer { foot: 1; }
	 #nav { width: 10px; }
	 .wide { width: 20px !important; }
	 :QoS { onclick-qos: single, short; }
	 div.item:QoS { ontouchstart-qos: continuous; }`,
}

// TestCascadeMatchesReference pins the indexed cascade to the full-scan
// oracle: identical computed styles on every element and an identical
// applied-declaration count (the pipeline's style cost input).
func TestCascadeMatchesReference(t *testing.T) {
	var sheets []*Stylesheet
	for i, src := range cascadeEquivSheets {
		sheet, errs := Parse(src)
		if len(errs) > 0 {
			t.Fatalf("sheet %d: %v", i, errs)
		}
		sheets = append(sheets, sheet)
	}

	got := buildCascadeDoc()
	want := buildCascadeDoc()
	gotN := Cascade(got, sheets...)
	wantN := referenceCascade(want, sheets...)
	if gotN != wantN {
		t.Errorf("applied = %d, reference = %d", gotN, wantN)
	}

	ge, we := got.Elements(), want.Elements()
	if len(ge) != len(we) {
		t.Fatalf("element count %d vs %d", len(ge), len(we))
	}
	for i := range ge {
		g, w := ge[i].ComputedStyle, we[i].ComputedStyle
		if len(g) != len(w) {
			t.Errorf("%s: %d computed properties, want %d (%v vs %v)", ge[i].Path(), len(g), len(w), g, w)
			continue
		}
		for k, wv := range w {
			if gv := g[k]; gv != wv {
				t.Errorf("%s: %s = %q, want %q", ge[i].Path(), k, gv, wv)
			}
		}
	}

	// Re-running over already-computed styles must also agree (the scratch
	// buffers are reused across elements; stale state would show here).
	if gotN2 := Cascade(got, sheets...); gotN2 != gotN {
		t.Errorf("second cascade applied %d, want %d", gotN2, gotN)
	}
}

// TestRuleIndexRebuildOnAppend pins the invalidation rule: growing a sheet
// after a cascade has built its index (AUTOGREEN appends generated rules)
// must rebuild the index, not serve the stale one.
func TestRuleIndexRebuildOnAppend(t *testing.T) {
	sheet := MustParse(`div { color: red; }`)
	doc := buildCascadeDoc()
	Cascade(doc, sheet)
	if idx := sheet.idx.Load(); idx == nil || idx.n != 1 {
		t.Fatalf("index not built for 1 rule: %+v", sheet.idx.Load())
	}

	extra := MustParse(`.item { flag: on; }`)
	sheet.Rules = append(sheet.Rules, extra.Rules...)

	doc2 := buildCascadeDoc()
	Cascade(doc2, sheet)
	if idx := sheet.idx.Load(); idx == nil || idx.n != 2 {
		t.Fatalf("index not rebuilt after append: %+v", sheet.idx.Load())
	}
	items := doc2.Root.Children[0].Children[0].Children // nav's divs
	if len(items) == 0 || items[0].ComputedStyle["flag"] != "on" {
		t.Fatalf("appended rule not applied: %v", items[0].ComputedStyle)
	}

	// And the grown sheet still matches the oracle.
	ref := buildCascadeDoc()
	if got, want := Cascade(buildCascadeDoc(), sheet), referenceCascade(ref, sheet); got != want {
		t.Errorf("applied = %d, reference = %d after append", got, want)
	}
}
