package css

import (
	"fmt"
	"strings"

	"github.com/wattwiseweb/greenweb/internal/dom"
)

// Combinator relates a compound selector to the one on its right.
type Combinator int

const (
	// Descendant is the whitespace combinator.
	Descendant Combinator = iota
	// Child is the '>' combinator.
	Child
)

// AttrSelector is one attribute condition: [name] (presence) or
// [name=value] (exact match).
type AttrSelector struct {
	Name  string
	Value string
	// Exact is true for [name=value]; false for bare presence [name].
	Exact bool
}

// Compound is one compound selector: tag, #id, .classes, [attrs],
// :pseudo-classes, and :not(...) negations.
type Compound struct {
	Tag     string // "" or "*" matches any element
	ID      string
	Classes []string
	Pseudos []string // pseudo-class names, case preserved (":QoS")
	Attrs   []AttrSelector
	Nots    []Compound // :not(arg) arguments
	// Comb relates this compound to the next one to the right.
	Comb Combinator
}

// Selector is a chain of compounds; the last compound is the subject.
type Selector struct {
	Parts []Compound
}

// Subject returns the rightmost compound (the element the rule styles).
func (s Selector) Subject() Compound {
	if len(s.Parts) == 0 {
		return Compound{}
	}
	return s.Parts[len(s.Parts)-1]
}

// HasQoS reports whether the subject carries the :QoS pseudo-class — the
// marker that makes a rule a GreenWeb rule (paper Sec. 4.1).
func (s Selector) HasQoS() bool {
	for _, p := range s.Subject().Pseudos {
		if strings.EqualFold(p, "qos") {
			return true
		}
	}
	return false
}

// Specificity is the standard (ids, classes+pseudo-classes, tags) triple.
type Specificity struct{ A, B, C int }

// Less orders specificities; lexicographic on (A, B, C).
func (sp Specificity) Less(o Specificity) bool {
	if sp.A != o.A {
		return sp.A < o.A
	}
	if sp.B != o.B {
		return sp.B < o.B
	}
	return sp.C < o.C
}

// Specificity computes the selector's specificity.
func (s Selector) Specificity() Specificity {
	var sp Specificity
	for _, c := range s.Parts {
		sp = sp.add(compoundSpecificity(c))
	}
	return sp
}

func (sp Specificity) add(o Specificity) Specificity {
	return Specificity{sp.A + o.A, sp.B + o.B, sp.C + o.C}
}

// compoundSpecificity follows the standard rules: attribute selectors count
// like classes; :not contributes its argument's specificity but not its own.
func compoundSpecificity(c Compound) Specificity {
	var sp Specificity
	if c.ID != "" {
		sp.A++
	}
	sp.B += len(c.Classes) + len(c.Pseudos) + len(c.Attrs)
	if c.Tag != "" && c.Tag != "*" {
		sp.C++
	}
	for _, n := range c.Nots {
		sp = sp.add(compoundSpecificity(n))
	}
	return sp
}

func (c Compound) String() string {
	var b strings.Builder
	if c.Tag != "" {
		b.WriteString(c.Tag)
	}
	if c.ID != "" {
		b.WriteString("#")
		b.WriteString(c.ID)
	}
	for _, cl := range c.Classes {
		b.WriteString(".")
		b.WriteString(cl)
	}
	for _, a := range c.Attrs {
		b.WriteString("[")
		b.WriteString(a.Name)
		if a.Exact {
			b.WriteString(`="`)
			b.WriteString(a.Value)
			b.WriteString(`"`)
		}
		b.WriteString("]")
	}
	for _, n := range c.Nots {
		b.WriteString(":not(")
		b.WriteString(n.String())
		b.WriteString(")")
	}
	for _, ps := range c.Pseudos {
		b.WriteString(":")
		b.WriteString(ps)
	}
	if b.Len() == 0 {
		return "*"
	}
	return b.String()
}

func (s Selector) String() string {
	var b strings.Builder
	for i, p := range s.Parts {
		if i > 0 {
			if p.Comb == Child {
				b.WriteString(" > ")
			} else {
				b.WriteString(" ")
			}
		}
		// Comb of part i describes its relation to part i-1's subtree;
		// stored on the right part.
		b.WriteString(p.String())
	}
	return b.String()
}

// ParseSelectors parses a comma-separated selector group.
func ParseSelectors(src string) ([]Selector, error) {
	var out []Selector
	for _, part := range strings.Split(src, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			if len(out) == 0 && strings.TrimSpace(src) == "" {
				// An empty selector is the universal selector; Fig. 3 allows
				// "Selector?" — an omitted selector applies document-wide.
				return []Selector{{Parts: []Compound{{Tag: "*"}}}}, nil
			}
			return nil, fmt.Errorf("empty selector in group %q", src)
		}
		sel, err := parseSelector(part)
		if err != nil {
			return nil, err
		}
		out = append(out, sel)
	}
	return out, nil
}

func parseSelector(src string) (Selector, error) {
	var sel Selector
	comb := Descendant
	i := 0
	for i < len(src) {
		// Skip whitespace; detect '>' combinator.
		sawSpace := false
		for i < len(src) && (src[i] == ' ' || src[i] == '\t' || src[i] == '\n') {
			sawSpace = true
			i++
		}
		if i < len(src) && src[i] == '>' {
			comb = Child
			i++
			continue
		}
		if i >= len(src) {
			break
		}
		if sawSpace && len(sel.Parts) > 0 && comb == Descendant {
			comb = Descendant // explicit for clarity: whitespace = descendant
		}
		c, n, err := parseCompound(src[i:])
		if err != nil {
			return Selector{}, err
		}
		c.Comb = comb
		sel.Parts = append(sel.Parts, c)
		comb = Descendant
		i += n
	}
	if len(sel.Parts) == 0 {
		return Selector{}, fmt.Errorf("empty selector %q", src)
	}
	return sel, nil
}

func parseCompound(src string) (Compound, int, error) {
	var c Compound
	i := 0
	readName := func() string {
		start := i
		for i < len(src) && isSelName(src[i]) {
			i++
		}
		return src[start:i]
	}
	for i < len(src) {
		switch ch := src[i]; {
		case ch == ' ' || ch == '\t' || ch == '\n' || ch == '>':
			goto done
		case ch == '*':
			i++
			c.Tag = "*"
		case ch == '#':
			i++
			name := readName()
			if name == "" {
				return c, i, fmt.Errorf("empty id selector in %q", src)
			}
			c.ID = name
		case ch == '.':
			i++
			name := readName()
			if name == "" {
				return c, i, fmt.Errorf("empty class selector in %q", src)
			}
			c.Classes = append(c.Classes, name)
		case ch == '[':
			i++
			name := readName()
			if name == "" {
				return c, i, fmt.Errorf("empty attribute selector in %q", src)
			}
			attr := AttrSelector{Name: strings.ToLower(name)}
			if i < len(src) && src[i] == '=' {
				i++
				attr.Exact = true
				if i < len(src) && (src[i] == '"' || src[i] == '\'') {
					q := src[i]
					i++
					start := i
					for i < len(src) && src[i] != q {
						i++
					}
					if i >= len(src) {
						return c, i, fmt.Errorf("unterminated attribute value in %q", src)
					}
					attr.Value = src[start:i]
					i++
				} else {
					start := i
					for i < len(src) && src[i] != ']' {
						i++
					}
					attr.Value = src[start:i]
				}
			}
			if i >= len(src) || src[i] != ']' {
				return c, i, fmt.Errorf("unterminated attribute selector in %q", src)
			}
			i++
			c.Attrs = append(c.Attrs, attr)
		case ch == ':':
			i++
			name := readName()
			if name == "" {
				return c, i, fmt.Errorf("empty pseudo-class in %q", src)
			}
			if strings.EqualFold(name, "not") && i < len(src) && src[i] == '(' {
				i++
				depth := 1
				start := i
				for i < len(src) && depth > 0 {
					switch src[i] {
					case '(':
						depth++
					case ')':
						depth--
					}
					i++
				}
				if depth != 0 {
					return c, i, fmt.Errorf("unterminated :not() in %q", src)
				}
				arg := strings.TrimSpace(src[start : i-1])
				if arg == "" {
					return c, i, fmt.Errorf("empty :not() in %q", src)
				}
				inner, n, err := parseCompound(arg)
				if err != nil {
					return c, i, err
				}
				if n != len(arg) {
					return c, i, fmt.Errorf(":not() takes a single compound selector, got %q", arg)
				}
				c.Nots = append(c.Nots, inner)
				continue
			}
			c.Pseudos = append(c.Pseudos, name)
		case isSelName(ch):
			if c.Tag != "" || c.ID != "" || len(c.Classes) > 0 || len(c.Pseudos) > 0 {
				return c, i, fmt.Errorf("misplaced tag name in %q", src)
			}
			c.Tag = strings.ToLower(readName())
		default:
			return c, i, fmt.Errorf("unexpected %q in selector %q", ch, src)
		}
	}
done:
	return c, i, nil
}

func isSelName(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9' || c == '-' || c == '_'
}

// matchCompound reports whether one compound matches a node, ignoring
// pseudo-classes (":QoS" is a rule marker, not a state filter; dynamic
// pseudo-classes like :hover never match in the simulation).
func matchCompound(c Compound, n *dom.Node) bool {
	if n == nil || n.Type != dom.ElementNode {
		return false
	}
	if c.Tag != "" && c.Tag != "*" && n.Tag != c.Tag {
		return false
	}
	if c.ID != "" && n.ID() != c.ID {
		return false
	}
	for _, cl := range c.Classes {
		if !n.HasClass(cl) {
			return false
		}
	}
	for _, a := range c.Attrs {
		v, ok := n.Attr(a.Name)
		if !ok {
			return false
		}
		if a.Exact && v != a.Value {
			return false
		}
	}
	for _, neg := range c.Nots {
		if matchCompound(neg, n) {
			return false
		}
	}
	return true
}

// Matches reports whether the selector matches the node, walking ancestors
// for descendant and child combinators.
func (s Selector) Matches(n *dom.Node) bool {
	if len(s.Parts) == 0 {
		return false
	}
	return matchFrom(s.Parts, len(s.Parts)-1, n)
}

// Query returns the first element in the document matching the selector
// group, in tree order — document.querySelector semantics.
func Query(doc *dom.Document, selText string) (*dom.Node, error) {
	sels, err := ParseSelectors(selText)
	if err != nil {
		return nil, err
	}
	var found *dom.Node
	doc.Root.Walk(func(n *dom.Node) {
		if found != nil || n.Type != dom.ElementNode {
			return
		}
		for _, s := range sels {
			if s.Matches(n) {
				found = n
				return
			}
		}
	})
	return found, nil
}

// QueryAll returns every element matching the selector group, in tree
// order — document.querySelectorAll semantics.
func QueryAll(doc *dom.Document, selText string) ([]*dom.Node, error) {
	sels, err := ParseSelectors(selText)
	if err != nil {
		return nil, err
	}
	var out []*dom.Node
	doc.Root.Walk(func(n *dom.Node) {
		if n.Type != dom.ElementNode {
			return
		}
		for _, s := range sels {
			if s.Matches(n) {
				out = append(out, n)
				return
			}
		}
	})
	return out, nil
}

func matchFrom(parts []Compound, idx int, n *dom.Node) bool {
	if !matchCompound(parts[idx], n) {
		return false
	}
	if idx == 0 {
		return true
	}
	// parts[idx].Comb relates parts[idx-1] (an ancestor constraint) to this
	// node.
	switch parts[idx].Comb {
	case Child:
		return matchFrom(parts, idx-1, n.Parent)
	default:
		for a := n.Parent; a != nil; a = a.Parent {
			if matchFrom(parts, idx-1, a) {
				return true
			}
		}
		return false
	}
}
