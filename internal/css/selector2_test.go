package css

import (
	"testing"

	"github.com/wattwiseweb/greenweb/internal/html"
)

// Tests for the extended selector surface: attribute selectors, :not(),
// and !important in the cascade.

func TestAttributeSelectorParsing(t *testing.T) {
	sels, err := ParseSelectors(`input[type="text"], a[href], div[data-k=v]`)
	if err != nil {
		t.Fatal(err)
	}
	if len(sels) != 3 {
		t.Fatalf("groups = %d", len(sels))
	}
	c0 := sels[0].Subject()
	if len(c0.Attrs) != 1 || c0.Attrs[0].Name != "type" || c0.Attrs[0].Value != "text" || !c0.Attrs[0].Exact {
		t.Fatalf("c0 attrs = %+v", c0.Attrs)
	}
	c1 := sels[1].Subject()
	if len(c1.Attrs) != 1 || c1.Attrs[0].Exact {
		t.Fatalf("c1 attrs = %+v", c1.Attrs)
	}
	c2 := sels[2].Subject()
	if c2.Attrs[0].Value != "v" {
		t.Fatalf("c2 attrs = %+v", c2.Attrs)
	}
}

func TestAttributeSelectorMatching(t *testing.T) {
	doc := html.Parse(`<body>
		<input id="a" type="text">
		<input id="b" type="checkbox">
		<a id="c" href="/x">link</a>
		<a id="d">anchor</a>
	</body>`)
	cases := []struct {
		sel   string
		id    string
		match bool
	}{
		{`input[type="text"]`, "a", true},
		{`input[type="text"]`, "b", false},
		{`input[type]`, "b", true},
		{`a[href]`, "c", true},
		{`a[href]`, "d", false},
		{`[href="/x"]`, "c", true},
		{`[href="/y"]`, "c", false},
	}
	for _, c := range cases {
		sels, err := ParseSelectors(c.sel)
		if err != nil {
			t.Fatalf("%q: %v", c.sel, err)
		}
		n := doc.GetElementByID(c.id)
		if got := sels[0].Matches(n); got != c.match {
			t.Errorf("Matches(%q, #%s) = %v, want %v", c.sel, c.id, got, c.match)
		}
	}
}

func TestNotSelector(t *testing.T) {
	doc := html.Parse(`<body>
		<div id="a" class="x">1</div>
		<div id="b" class="y">2</div>
		<span id="c" class="x">3</span>
	</body>`)
	cases := []struct {
		sel   string
		id    string
		match bool
	}{
		{`div:not(.y)`, "a", true},
		{`div:not(.y)`, "b", false},
		{`:not(span)`, "a", true},
		{`:not(span)`, "c", false},
		{`.x:not(#c)`, "a", true},
		{`.x:not(#c)`, "c", false},
	}
	for _, c := range cases {
		sels, err := ParseSelectors(c.sel)
		if err != nil {
			t.Fatalf("%q: %v", c.sel, err)
		}
		if got := sels[0].Matches(doc.GetElementByID(c.id)); got != c.match {
			t.Errorf("Matches(%q, #%s) = %v, want %v", c.sel, c.id, got, c.match)
		}
	}
}

func TestNotSelectorErrors(t *testing.T) {
	for _, bad := range []string{`:not(`, `:not()`, `div:not(a b)`} {
		if _, err := ParseSelectors(bad); err == nil {
			t.Errorf("%q accepted", bad)
		}
	}
}

func TestExtendedSpecificity(t *testing.T) {
	cases := map[string]Specificity{
		`[href]`:           {0, 1, 0},
		`input[type=text]`: {0, 1, 1},
		`div:not(.x)`:      {0, 1, 1}, // :not itself free; argument counts
		`div:not(#a)`:      {1, 0, 1},
		`a[x][y]:not(.z)`:  {0, 3, 1},
	}
	for src, want := range cases {
		sels, err := ParseSelectors(src)
		if err != nil {
			t.Fatalf("%q: %v", src, err)
		}
		if got := sels[0].Specificity(); got != want {
			t.Errorf("specificity(%q) = %v, want %v", src, got, want)
		}
	}
}

func TestExtendedSelectorStringRoundTrip(t *testing.T) {
	for _, src := range []string{
		`input[type="text"]`,
		`a[href]`,
		`div:not(.y)`,
		`.x:not(#c):QoS`,
	} {
		sels, err := ParseSelectors(src)
		if err != nil {
			t.Fatalf("%q: %v", src, err)
		}
		text := sels[0].String()
		again, err := ParseSelectors(text)
		if err != nil {
			t.Fatalf("reparse %q: %v", text, err)
		}
		if again[0].String() != text {
			t.Errorf("round trip %q → %q → %q", src, text, again[0].String())
		}
	}
}

func TestImportantParsing(t *testing.T) {
	sheet := MustParse(`p { color: red !important; margin: 1px; }`)
	d := sheet.Rules[0].Decls[0]
	if !d.Important || d.Value != "red" {
		t.Fatalf("decl = %+v", d)
	}
	if sheet.Rules[0].Decls[1].Important {
		t.Fatal("margin wrongly important")
	}
	// Serialization keeps the flag, and reparsing agrees.
	text := sheet.Serialize()
	again := MustParse(text)
	if !again.Rules[0].Decls[0].Important {
		t.Fatalf("important lost in round trip: %s", text)
	}
}

func TestImportantBeatsSpecificity(t *testing.T) {
	doc := html.Parse(`<body><p id="x" class="c">t</p></body>`)
	sheet := MustParse(`
		p { color: green !important; }
		#x.c { color: red; }
	`)
	Cascade(doc, sheet)
	if got := doc.GetElementByID("x").Computed("color"); got != "green" {
		t.Fatalf("color = %q; !important must beat higher specificity", got)
	}
}

func TestImportantTieBreaksBySpecificity(t *testing.T) {
	doc := html.Parse(`<body><p id="x">t</p></body>`)
	sheet := MustParse(`
		#x { color: blue !important; }
		p { color: green !important; }
	`)
	Cascade(doc, sheet)
	if got := doc.GetElementByID("x").Computed("color"); got != "blue" {
		t.Fatalf("color = %q; among important, specificity decides", got)
	}
}

func TestQoSRuleWithAttributeSelector(t *testing.T) {
	// GreenWeb rules compose with the extended selectors.
	doc := html.Parse(`<body><div id="d" data-role="carousel">x</div></body>`)
	sheet := MustParse(`div[data-role="carousel"]:QoS { ontouchmove-qos: continuous; }`)
	as := NewAnnotationSet(sheet)
	if _, ok := as.Lookup(doc.GetElementByID("d"), "touchmove"); !ok {
		t.Fatal("attribute-selected QoS rule did not resolve")
	}
}

func TestQueryAndQueryAll(t *testing.T) {
	doc := html.Parse(`<body>
		<ul id="list"><li class="x">1</li><li>2</li><li class="x">3</li></ul>
	</body>`)
	first, err := Query(doc, "li.x")
	if err != nil || first == nil || first.TextContent() != "1" {
		t.Fatalf("Query = %v, %v", first, err)
	}
	all, err := QueryAll(doc, "#list li")
	if err != nil || len(all) != 3 {
		t.Fatalf("QueryAll = %d, %v", len(all), err)
	}
	none, err := QueryAll(doc, ".missing")
	if err != nil || len(none) != 0 {
		t.Fatalf("QueryAll missing = %v, %v", none, err)
	}
	if _, err := Query(doc, "::"); err == nil {
		t.Fatal("bad selector accepted")
	}
}
