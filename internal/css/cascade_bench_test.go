package css_test

import (
	"testing"

	"github.com/wattwiseweb/greenweb/internal/apps"
	"github.com/wattwiseweb/greenweb/internal/css"
	"github.com/wattwiseweb/greenweb/internal/dom"
	"github.com/wattwiseweb/greenweb/internal/html"
)

// largestAppDoc parses the catalog's largest application (BBC, 220 filler
// stories) and its stylesheets — the heaviest cascade the evaluation runs.
func largestAppDoc(tb testing.TB) (*dom.Document, []*css.Stylesheet) {
	tb.Helper()
	app, ok := apps.ByName("BBC")
	if !ok {
		tb.Fatal("BBC not in catalog")
	}
	doc := html.Parse(app.HTML())
	var sheets []*css.Stylesheet
	for _, src := range html.StyleSources(doc) {
		sheet, errs := css.Parse(src)
		if len(errs) > 0 {
			tb.Fatalf("parse errors: %v", errs)
		}
		sheets = append(sheets, sheet)
	}
	if len(sheets) == 0 {
		tb.Fatal("no stylesheets")
	}
	return doc, sheets
}

// BenchmarkCascadeLargestApp measures full style resolution on the largest
// catalog DOM — the microbenchmark BENCH_PR4.json tracks for the indexed
// cascade.
func BenchmarkCascadeLargestApp(b *testing.B) {
	doc, sheets := largestAppDoc(b)
	want := css.Cascade(doc, sheets...)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := css.Cascade(doc, sheets...); got != want {
			b.Fatalf("applied %d, want %d", got, want)
		}
	}
}
