package css

import (
	"fmt"
	"strconv"
	"strings"

	"github.com/wattwiseweb/greenweb/internal/dom"
	"github.com/wattwiseweb/greenweb/internal/qos"
	"github.com/wattwiseweb/greenweb/internal/sim"
)

// QoSPropertySuffix terminates every GreenWeb property name:
// on<event>-qos (paper Table 2).
const QoSPropertySuffix = "-qos"

// IsQoSProperty reports whether a declaration property is a GreenWeb
// annotation, returning the event name it annotates ("onclick-qos" →
// "click").
func IsQoSProperty(property string) (event string, ok bool) {
	p := strings.ToLower(property)
	if !strings.HasPrefix(p, "on") || !strings.HasSuffix(p, QoSPropertySuffix) {
		return "", false
	}
	ev := p[2 : len(p)-len(QoSPropertySuffix)]
	if ev == "" {
		return "", false
	}
	return ev, true
}

// QoSPropertyName builds the GreenWeb property name for an event.
func QoSPropertyName(event string) string {
	return "on" + strings.ToLower(event) + QoSPropertySuffix
}

// ParseQoSValue parses a GreenWeb declaration value per Table 2:
//
//	continuous
//	continuous, <ti-ms>, <tu-ms>
//	single, short
//	single, long
//	single, <ti-ms>, <tu-ms>
//
// Explicit TI/TU values are integer milliseconds (Fig. 3: "v Integer
// value"); both must appear or both be omitted.
func ParseQoSValue(event, value string) (qos.Annotation, error) {
	ann := qos.Annotation{Event: strings.ToLower(event)}
	parts := strings.Split(value, ",")
	for i := range parts {
		parts[i] = strings.TrimSpace(parts[i])
	}
	if len(parts) == 0 || parts[0] == "" {
		return ann, fmt.Errorf("css: empty qos value for %s", event)
	}
	switch strings.ToLower(parts[0]) {
	case "continuous":
		ann.Type = qos.Continuous
		switch len(parts) {
		case 1:
			ann.Target = qos.ContinuousTarget
		case 3:
			tgt, err := parseExplicitTargets(parts[1], parts[2])
			if err != nil {
				return ann, err
			}
			ann.Target = tgt
			ann.Explicit = true
		default:
			return ann, fmt.Errorf("css: continuous takes zero or two target values, got %d", len(parts)-1)
		}
	case "single":
		ann.Type = qos.Single
		switch len(parts) {
		case 2:
			switch strings.ToLower(parts[1]) {
			case "short":
				ann.Duration = qos.Short
				ann.Target = qos.SingleShortTarget
			case "long":
				ann.Duration = qos.Long
				ann.Target = qos.SingleLongTarget
			default:
				return ann, fmt.Errorf("css: single expects short or long, got %q", parts[1])
			}
		case 3:
			tgt, err := parseExplicitTargets(parts[1], parts[2])
			if err != nil {
				return ann, err
			}
			ann.Target = tgt
			ann.Explicit = true
		default:
			return ann, fmt.Errorf("css: single takes a duration class or two target values")
		}
	default:
		return ann, fmt.Errorf("css: unknown qos type %q", parts[0])
	}
	if !ann.Target.Valid() {
		return ann, fmt.Errorf("css: invalid qos target %v (need 0 < TI <= TU)", ann.Target)
	}
	return ann, nil
}

func parseExplicitTargets(tiStr, tuStr string) (qos.Target, error) {
	ti, err := strconv.Atoi(tiStr)
	if err != nil {
		return qos.Target{}, fmt.Errorf("css: TI value %q is not an integer", tiStr)
	}
	tu, err := strconv.Atoi(tuStr)
	if err != nil {
		return qos.Target{}, fmt.Errorf("css: TU value %q is not an integer", tuStr)
	}
	return qos.Target{
		TI: sim.Duration(ti) * sim.Millisecond,
		TU: sim.Duration(tu) * sim.Millisecond,
	}, nil
}

// FormatQoSValue renders an annotation back to its declaration value,
// inverse of ParseQoSValue. AUTOGREEN uses it when generating rules.
func FormatQoSValue(a qos.Annotation) string {
	if a.Explicit {
		ti := int(a.Target.TI / sim.Millisecond)
		tu := int(a.Target.TU / sim.Millisecond)
		return fmt.Sprintf("%s, %d, %d", a.Type, ti, tu)
	}
	if a.Type == qos.Continuous {
		return "continuous"
	}
	return fmt.Sprintf("single, %s", a.Duration)
}

// QoSRuleFor builds a complete GreenWeb rule annotating one event on the
// element identified by selText (e.g. "div#nav").
func QoSRuleFor(selText string, a qos.Annotation) (*Rule, error) {
	sels, err := ParseSelectors(selText)
	if err != nil {
		return nil, err
	}
	for i := range sels {
		last := &sels[i].Parts[len(sels[i].Parts)-1]
		if !sels[i].HasQoS() {
			last.Pseudos = append(last.Pseudos, "QoS")
		}
	}
	return &Rule{
		Selectors: sels,
		Decls:     []Decl{{Property: QoSPropertyName(a.Event), Value: FormatQoSValue(a)}},
	}, nil
}

// AnnotationSet resolves GreenWeb annotations against a document: for every
// (element, event) it knows the winning annotation by selector specificity
// and rule order, mirroring how the visual cascade resolves properties.
//
// Resolutions are memoized per (node, event): the runtime looks up the same
// few interactive elements on every input. The memo is dropped whenever its
// answers could change — a sheet is added (AddSheet), rules are appended to
// an existing sheet (detected by total rule count), or the document's
// structure or attributes mutate (detected by dom.Document.Generation).
type AnnotationSet struct {
	sheets []*Stylesheet

	memo      map[lookupKey]lookupResult
	memoDoc   *dom.Document
	memoGen   int
	memoRules int
}

type lookupKey struct {
	n     *dom.Node
	event string
}

type lookupResult struct {
	ann qos.Annotation
	ok  bool
}

// NewAnnotationSet builds a resolver over the given sheets (in source
// order; later sheets win ties, like later <style> blocks).
func NewAnnotationSet(sheets ...*Stylesheet) *AnnotationSet {
	return &AnnotationSet{sheets: sheets}
}

// AddSheet appends another stylesheet (e.g. AUTOGREEN's generated rules).
// Memoized resolutions are dropped: the new sheet can win any of them.
func (as *AnnotationSet) AddSheet(s *Stylesheet) {
	as.sheets = append(as.sheets, s)
	as.memo = nil
}

func (as *AnnotationSet) totalRules() int {
	t := 0
	for _, s := range as.sheets {
		t += len(s.Rules)
	}
	return t
}

// Lookup finds the annotation for an event fired on node n, or ok=false if
// the event is unannotated. Specificity then source order decide conflicts.
func (as *AnnotationSet) Lookup(n *dom.Node, event string) (qos.Annotation, bool) {
	event = strings.ToLower(event)
	doc := n.Document()
	rules := as.totalRules()
	key := lookupKey{n, event}
	if as.memo != nil && doc == as.memoDoc && doc != nil &&
		doc.Generation() == as.memoGen && rules == as.memoRules {
		if r, ok := as.memo[key]; ok {
			return r.ann, r.ok
		}
	} else if doc != nil {
		if as.memo == nil {
			as.memo = make(map[lookupKey]lookupResult)
		} else {
			clear(as.memo) // reuse the buckets; invalidation can be per-frame
		}
		as.memoDoc, as.memoGen, as.memoRules = doc, doc.Generation(), rules
	} else {
		as.memo = nil
	}
	ann, ok := as.lookupUncached(n, event)
	if as.memo != nil {
		as.memo[key] = lookupResult{ann, ok}
	}
	return ann, ok
}

func (as *AnnotationSet) lookupUncached(n *dom.Node, event string) (qos.Annotation, bool) {
	prop := QoSPropertyName(event)
	var best qos.Annotation
	bestSpec := Specificity{-1, -1, -1}
	found := false
	order := 0
	bestOrder := -1
	for _, sheet := range as.sheets {
		for _, rule := range sheet.Rules {
			order++
			// Find the qos declaration for this event, if any.
			declVal := ""
			for _, d := range rule.Decls {
				if d.Property == prop {
					declVal = d.Value
				}
			}
			if declVal == "" {
				continue
			}
			for _, sel := range rule.Selectors {
				if !sel.HasQoS() || !sel.Matches(n) {
					continue
				}
				spec := sel.Specificity()
				if bestSpec.Less(spec) || (spec == bestSpec && order >= bestOrder) {
					ann, err := ParseQoSValue(event, declVal)
					if err != nil {
						continue // malformed annotation: ignored, like bad CSS
					}
					best, bestSpec, bestOrder, found = ann, spec, order, true
				}
			}
		}
	}
	return best, found
}

// Annotations lists every annotation that applies anywhere in the document,
// as (element, annotation) pairs in tree order. Used for reporting
// annotation coverage (the paper's Table 3 "Annotation" column).
func (as *AnnotationSet) Annotations(doc *dom.Document) []NodeAnnotation {
	var out []NodeAnnotation
	for _, n := range doc.Elements() {
		for _, ev := range dom.MobileEvents() {
			if a, ok := as.Lookup(n, ev); ok {
				out = append(out, NodeAnnotation{Node: n, Annotation: a})
			}
		}
	}
	return out
}

// NodeAnnotation pairs an element with a resolved annotation.
type NodeAnnotation struct {
	Node       *dom.Node
	Annotation qos.Annotation
}
