package css

import (
	"fmt"
	"strings"
	"testing"
	"testing/quick"

	"github.com/wattwiseweb/greenweb/internal/dom"
	"github.com/wattwiseweb/greenweb/internal/html"
	"github.com/wattwiseweb/greenweb/internal/qos"
	"github.com/wattwiseweb/greenweb/internal/sim"
)

func TestParseSimpleRule(t *testing.T) {
	sheet, errs := Parse(`h1 { font-weight: bold; color: red }`)
	if len(errs) > 0 {
		t.Fatalf("errs = %v", errs)
	}
	if len(sheet.Rules) != 1 {
		t.Fatalf("rules = %d", len(sheet.Rules))
	}
	r := sheet.Rules[0]
	if len(r.Decls) != 2 || r.Decls[0].Property != "font-weight" || r.Decls[0].Value != "bold" {
		t.Fatalf("decls = %v", r.Decls)
	}
	if r.Selectors[0].Subject().Tag != "h1" {
		t.Fatalf("selector = %v", r.Selectors[0])
	}
}

func TestParseMultipleRulesAndComments(t *testing.T) {
	sheet, errs := Parse(`
		/* heading */
		h1 { color: red; }
		/* panel */
		div#main.panel { width: 100px; }
	`)
	if len(errs) > 0 || len(sheet.Rules) != 2 {
		t.Fatalf("rules = %d, errs = %v", len(sheet.Rules), errs)
	}
	c := sheet.Rules[1].Selectors[0].Subject()
	if c.Tag != "div" || c.ID != "main" || len(c.Classes) != 1 || c.Classes[0] != "panel" {
		t.Fatalf("compound = %+v", c)
	}
}

func TestParseSelectorGroupsAndCombinators(t *testing.T) {
	sels, err := ParseSelectors(`div p, .a > .b, #x span.y`)
	if err != nil {
		t.Fatal(err)
	}
	if len(sels) != 3 {
		t.Fatalf("groups = %d", len(sels))
	}
	if len(sels[0].Parts) != 2 || sels[0].Parts[1].Comb != Descendant {
		t.Fatalf("sel0 = %+v", sels[0])
	}
	if sels[1].Parts[1].Comb != Child {
		t.Fatalf("sel1 = %+v", sels[1])
	}
	if sels[2].Parts[1].Tag != "span" || sels[2].Parts[1].Classes[0] != "y" {
		t.Fatalf("sel2 = %+v", sels[2])
	}
}

func TestParseRecoversFromBadRule(t *testing.T) {
	sheet, errs := Parse(`
		h1 { color: red; }
		%%garbage%% { nonsense }
		p { color: blue; }
	`)
	if len(errs) == 0 {
		t.Fatal("expected a parse error to be reported")
	}
	if len(sheet.Rules) != 2 {
		t.Fatalf("recovered rules = %d, want 2", len(sheet.Rules))
	}
}

func TestParseSkipsAtRules(t *testing.T) {
	sheet, errs := Parse(`
		@import "x.css";
		@media (max-width: 600px) { p { color: red; } }
		h1 { color: blue; }
	`)
	if len(errs) > 0 || len(sheet.Rules) != 1 {
		t.Fatalf("rules = %d errs = %v", len(sheet.Rules), errs)
	}
}

func TestSpecificity(t *testing.T) {
	cases := map[string]Specificity{
		"div":            {0, 0, 1},
		".a":             {0, 1, 0},
		"#x":             {1, 0, 0},
		"div#x.a.b":      {1, 2, 1},
		"div p":          {0, 0, 2},
		"div#intro:QoS":  {1, 1, 1},
		"*":              {0, 0, 0},
		".a > .b ul #id": {1, 2, 1},
	}
	for src, want := range cases {
		sels, err := ParseSelectors(src)
		if err != nil {
			t.Fatalf("%q: %v", src, err)
		}
		if got := sels[0].Specificity(); got != want {
			t.Errorf("specificity(%q) = %v, want %v", src, got, want)
		}
	}
}

func TestSpecificityOrdering(t *testing.T) {
	if !(Specificity{0, 5, 9}).Less(Specificity{1, 0, 0}) {
		t.Fatal("one id must beat any classes")
	}
	if !(Specificity{0, 0, 9}).Less(Specificity{0, 1, 0}) {
		t.Fatal("one class must beat any tags")
	}
	if (Specificity{1, 1, 1}).Less(Specificity{1, 1, 1}) {
		t.Fatal("equal specificities are not Less")
	}
}

func testDoc() string {
	return `<html><body>
		<div id="main" class="panel">
			<p class="txt first">one</p>
			<span><p class="txt">nested</p></span>
		</div>
		<div id="side"><p>side</p></div>
	</body></html>`
}

func TestSelectorMatching(t *testing.T) {
	doc := html.Parse(testDoc())
	main := doc.GetElementByID("main")
	first := doc.GetElementsByClass("first")[0]
	nested := doc.GetElementsByClass("txt")[1]
	side := doc.GetElementByID("side")

	cases := []struct {
		sel   string
		node  string
		match bool
	}{
		{"div", "main", true},
		{"#main", "main", true},
		{".panel", "main", true},
		{"div#main.panel", "main", true},
		{"div#side.panel", "side", false},
		{"p", "first", true},
		{"div p", "first", true},
		{"div > p", "first", true},
		{"div > p", "nested", false}, // nested p's parent is span
		{"div p", "nested", true},
		{"#main .txt", "first", true},
		{"#side .txt", "first", false},
		{"*", "main", true},
		{"body > div > p.txt.first", "first", true},
	}
	nodes := map[string]*dom.Node{"main": main, "first": first, "nested": nested, "side": side}
	for _, c := range cases {
		sels, err := ParseSelectors(c.sel)
		if err != nil {
			t.Fatalf("%q: %v", c.sel, err)
		}
		if got := sels[0].Matches(nodes[c.node]); got != c.match {
			t.Errorf("Matches(%q, %s) = %v, want %v", c.sel, nodes[c.node].Path(), got, c.match)
		}
	}
}

func TestCascadeComputedStyle(t *testing.T) {
	doc := html.Parse(testDoc())
	sheet := MustParse(`
		p { color: black; margin: 1px; }
		.txt { color: green; }
		#main .first { color: purple; }
		p.txt { color: blue; }
	`)
	n := Cascade(doc, sheet)
	if n == 0 {
		t.Fatal("no declarations applied")
	}
	first := doc.GetElementsByClass("first")[0]
	// #main .first (1,1,0) beats p.txt (0,1,1) beats .txt (0,1,0) beats p.
	if got := first.Computed("color"); got != "purple" {
		t.Fatalf("color = %q, want purple", got)
	}
	if got := first.Computed("margin"); got != "1px" {
		t.Fatalf("margin = %q", got)
	}
	nested := doc.GetElementsByClass("txt")[1]
	if got := nested.Computed("color"); got != "blue" {
		t.Fatalf("nested color = %q, want blue (p.txt)", got)
	}
	side := doc.GetElementByID("side").Children[0]
	if got := side.Computed("color"); got != "black" {
		t.Fatalf("side color = %q, want black", got)
	}
}

func TestCascadeSourceOrderBreaksTies(t *testing.T) {
	doc := html.Parse(`<body><p class="a">x</p></body>`)
	sheet := MustParse(`.a { color: red; } .a { color: blue; }`)
	Cascade(doc, sheet)
	p := doc.GetElementsByTag("p")[0]
	if got := p.Computed("color"); got != "blue" {
		t.Fatalf("color = %q, want blue (later rule wins)", got)
	}
}

func TestCascadeLaterSheetWins(t *testing.T) {
	doc := html.Parse(`<body><p class="a">x</p></body>`)
	s1 := MustParse(`.a { color: red; }`)
	s2 := MustParse(`.a { color: blue; }`)
	Cascade(doc, s1, s2)
	if got := doc.GetElementsByTag("p")[0].Computed("color"); got != "blue" {
		t.Fatalf("color = %q", got)
	}
}

func TestCascadeExcludesQoSDeclarations(t *testing.T) {
	doc := html.Parse(`<body><div id="d">x</div></body>`)
	sheet := MustParse(`div#d:QoS { ontouchstart-qos: continuous; width: 5px; }`)
	Cascade(doc, sheet)
	d := doc.GetElementByID("d")
	if d.Computed("ontouchstart-qos") != "" {
		t.Fatal("qos declaration leaked into computed style")
	}
	if d.Computed("width") != "5px" {
		t.Fatal("visual declaration in a QoS rule must still cascade")
	}
}

// ---- GreenWeb extension (Table 2 / Fig. 3) ----

func TestIsQoSProperty(t *testing.T) {
	cases := []struct {
		prop  string
		event string
		ok    bool
	}{
		{"ontouchstart-qos", "touchstart", true},
		{"onclick-qos", "click", true},
		{"ONLOAD-QOS", "load", true},
		{"onscroll-qos", "scroll", true},
		{"color", "", false},
		{"on-qos", "", false},
		{"ontouchstart", "", false},
		{"transition", "", false},
	}
	for _, c := range cases {
		ev, ok := IsQoSProperty(c.prop)
		if ok != c.ok || ev != c.event {
			t.Errorf("IsQoSProperty(%q) = %q, %v; want %q, %v", c.prop, ev, ok, c.event, c.ok)
		}
	}
	if QoSPropertyName("TouchMove") != "ontouchmove-qos" {
		t.Fatal("QoSPropertyName wrong")
	}
}

func TestParseQoSValueTable2Forms(t *testing.T) {
	// First rule form: continuous with defaults.
	a, err := ParseQoSValue("touchstart", "continuous")
	if err != nil {
		t.Fatal(err)
	}
	if a.Type != qos.Continuous || a.Target != qos.ContinuousTarget || a.Explicit {
		t.Fatalf("a = %+v", a)
	}
	// Second form: single with duration class.
	b, err := ParseQoSValue("click", "single, short")
	if err != nil {
		t.Fatal(err)
	}
	if b.Type != qos.Single || b.Duration != qos.Short || b.Target != qos.SingleShortTarget {
		t.Fatalf("b = %+v", b)
	}
	c, err := ParseQoSValue("load", "single, long")
	if err != nil {
		t.Fatal(err)
	}
	if c.Target != qos.SingleLongTarget {
		t.Fatalf("c = %+v", c)
	}
	// Third form: explicit targets in ms (paper Fig. 5 uses 20 and 100).
	d, err := ParseQoSValue("touchmove", "continuous, 20, 100")
	if err != nil {
		t.Fatal(err)
	}
	if !d.Explicit || d.Target.TI != 20*sim.Millisecond || d.Target.TU != 100*sim.Millisecond {
		t.Fatalf("d = %+v", d)
	}
	e, err := ParseQoSValue("click", "single, 150, 600")
	if err != nil {
		t.Fatal(err)
	}
	if !e.Explicit || e.Type != qos.Single || e.Target.TI != 150*sim.Millisecond {
		t.Fatalf("e = %+v", e)
	}
}

func TestParseQoSValueErrors(t *testing.T) {
	bad := []string{
		"",
		"sometimes",
		"single",              // needs duration class or targets
		"single, medium",      // unknown class
		"continuous, 20",      // both values or neither (Table 2 note)
		"single, 20",          // same
		"continuous, a, b",    // non-integer
		"single, 300, 100",    // TU < TI
		"continuous, 0, 100",  // zero TI
		"continuous, 1, 2, 3", // too many
	}
	for _, v := range bad {
		if _, err := ParseQoSValue("click", v); err == nil {
			t.Errorf("ParseQoSValue(%q): expected error", v)
		}
	}
}

func TestFormatQoSValueRoundTrip(t *testing.T) {
	values := []string{
		"continuous",
		"single, short",
		"single, long",
		"continuous, 20, 100",
		"single, 150, 600",
	}
	for _, v := range values {
		a, err := ParseQoSValue("click", v)
		if err != nil {
			t.Fatalf("%q: %v", v, err)
		}
		out := FormatQoSValue(a)
		b, err := ParseQoSValue("click", out)
		if err != nil {
			t.Fatalf("reparse %q: %v", out, err)
		}
		if a != b {
			t.Errorf("round trip %q → %q changed annotation: %+v vs %+v", v, out, a, b)
		}
	}
}

// TestPaperFig4 reproduces the paper's Fig. 4: annotating a CSS-transition
// animation's touchstart as continuous with default targets.
func TestPaperFig4(t *testing.T) {
	doc := html.Parse(`
		<html><head><style>
			#ex { width: 100px; transition: width 2s; }
			div#ex:QoS { ontouchstart-qos: continuous; }
		</style></head>
		<body><div id="ex">tap me</div></body></html>`)
	sheets := parseAll(t, doc)
	as := NewAnnotationSet(sheets...)
	ex := doc.GetElementByID("ex")
	a, ok := as.Lookup(ex, "touchstart")
	if !ok {
		t.Fatal("annotation not found")
	}
	if a.Type != qos.Continuous || a.Target != qos.ContinuousTarget {
		t.Fatalf("annotation = %+v", a)
	}
	// The visual transition must cascade too.
	Cascade(doc, sheets...)
	trs := TransitionsFor(ex)
	if len(trs) != 1 || trs[0].Property != "width" || trs[0].Duration != 2*sim.Second {
		t.Fatalf("transitions = %+v", trs)
	}
}

// TestPaperFig5 reproduces Fig. 5: a rAF animation annotated continuous
// with explicit 20/100 ms targets.
func TestPaperFig5(t *testing.T) {
	doc := html.Parse(`
		<html><head><style>
			div#canvas:QoS { ontouchmove-qos: continuous, 20, 100; }
		</style></head>
		<body><div id="canvas"></div></body></html>`)
	as := NewAnnotationSet(parseAll(t, doc)...)
	a, ok := as.Lookup(doc.GetElementByID("canvas"), "touchmove")
	if !ok {
		t.Fatal("annotation not found")
	}
	if a.Target.TI != 20*sim.Millisecond || a.Target.TU != 100*sim.Millisecond || !a.Explicit {
		t.Fatalf("annotation = %+v", a)
	}
}

func parseAll(t *testing.T, doc *dom.Document) []*Stylesheet {
	t.Helper()
	var sheets []*Stylesheet
	for _, src := range html.StyleSources(doc) {
		s, errs := Parse(src)
		if len(errs) > 0 {
			t.Fatalf("style parse: %v", errs)
		}
		sheets = append(sheets, s)
	}
	return sheets
}

func TestAnnotationLookupSpecificity(t *testing.T) {
	doc := html.Parse(`<body><div id="d" class="c">x</div></body>`)
	sheet := MustParse(`
		div:QoS { onclick-qos: single, long; }
		div#d:QoS { onclick-qos: single, short; }
	`)
	as := NewAnnotationSet(sheet)
	a, ok := as.Lookup(doc.GetElementByID("d"), "click")
	if !ok || a.Duration != qos.Short {
		t.Fatalf("a = %+v ok=%v; id rule must win", a, ok)
	}
}

func TestAnnotationLookupBubbling(t *testing.T) {
	// Annotation on an ancestor does not apply to a child target; GreenWeb
	// rules select the element the event fires on.
	doc := html.Parse(`<body><div id="outer"><p id="inner">x</p></div></body>`)
	sheet := MustParse(`div#outer:QoS { onclick-qos: single, short; }`)
	as := NewAnnotationSet(sheet)
	if _, ok := as.Lookup(doc.GetElementByID("inner"), "click"); ok {
		t.Fatal("annotation leaked to descendant")
	}
	if _, ok := as.Lookup(doc.GetElementByID("outer"), "click"); !ok {
		t.Fatal("annotation missing on annotated element")
	}
}

func TestAnnotationRequiresQoSPseudoClass(t *testing.T) {
	doc := html.Parse(`<body><div id="d">x</div></body>`)
	// Without :QoS the rule is not a GreenWeb rule even if it carries a
	// qos property.
	sheet := MustParse(`div#d { onclick-qos: single, short; }`)
	as := NewAnnotationSet(sheet)
	if _, ok := as.Lookup(doc.GetElementByID("d"), "click"); ok {
		t.Fatal("rule without :QoS must not annotate")
	}
}

func TestAnnotationUnknownEventIgnored(t *testing.T) {
	doc := html.Parse(`<body><div id="d">x</div></body>`)
	sheet := MustParse(`div#d:QoS { onclick-qos: single, short; }`)
	as := NewAnnotationSet(sheet)
	if _, ok := as.Lookup(doc.GetElementByID("d"), "scroll"); ok {
		t.Fatal("wrong event matched")
	}
}

func TestAnnotationsEnumeration(t *testing.T) {
	doc := html.Parse(`<body><div id="a">x</div><div id="b">y</div></body>`)
	sheet := MustParse(`
		div#a:QoS { onclick-qos: single, short; ontouchmove-qos: continuous; }
		div#b:QoS { onload-qos: single, long; }
	`)
	as := NewAnnotationSet(sheet)
	anns := as.Annotations(doc)
	if len(anns) != 3 {
		t.Fatalf("annotations = %d, want 3", len(anns))
	}
}

func TestQoSRuleFor(t *testing.T) {
	rule, err := QoSRuleFor("div#nav", qos.Annotation{
		Event: "touchstart", Type: qos.Continuous, Target: qos.ContinuousTarget,
	})
	if err != nil {
		t.Fatal(err)
	}
	text := rule.String()
	if !strings.Contains(text, "div#nav:QoS") {
		t.Fatalf("rule = %s", text)
	}
	if !strings.Contains(text, "ontouchstart-qos: continuous;") {
		t.Fatalf("rule = %s", text)
	}
	// The generated text must parse back to the same annotation.
	sheet, errs := Parse(text)
	if len(errs) > 0 {
		t.Fatalf("reparse: %v", errs)
	}
	doc := html.Parse(`<body><div id="nav">x</div></body>`)
	as := NewAnnotationSet(sheet)
	a, ok := as.Lookup(doc.GetElementByID("nav"), "touchstart")
	if !ok || a.Type != qos.Continuous {
		t.Fatalf("round-trip lookup = %+v, %v", a, ok)
	}
}

func TestParseDuration(t *testing.T) {
	cases := map[string]sim.Duration{
		"2s":    2 * sim.Second,
		"500ms": 500 * sim.Millisecond,
		"0.25s": 250 * sim.Millisecond,
		" 1s ":  sim.Second,
	}
	for in, want := range cases {
		got, err := ParseDuration(in)
		if err != nil || got != want {
			t.Errorf("ParseDuration(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	for _, bad := range []string{"", "2", "abc", "-1s", "2min"} {
		if _, err := ParseDuration(bad); err == nil {
			t.Errorf("ParseDuration(%q): expected error", bad)
		}
	}
}

func TestParseTransitions(t *testing.T) {
	trs := ParseTransitions("width 2s, height 100ms, broken")
	if len(trs) != 2 {
		t.Fatalf("transitions = %+v", trs)
	}
	if trs[0].Property != "width" || trs[0].Duration != 2*sim.Second {
		t.Fatalf("trs[0] = %+v", trs[0])
	}
	if trs[1].Property != "height" || trs[1].Duration != 100*sim.Millisecond {
		t.Fatalf("trs[1] = %+v", trs[1])
	}
}

func TestSerializeParseFixedPoint(t *testing.T) {
	src := `
		h1 { color: red; }
		div#ex:QoS { ontouchstart-qos: continuous; }
		.a > .b { margin: 0; }
	`
	s1 := MustParse(src)
	text1 := s1.Serialize()
	s2 := MustParse(text1)
	if text1 != s2.Serialize() {
		t.Fatalf("serialize not a fixed point:\n%s\nvs\n%s", text1, s2.Serialize())
	}
}

// Property: explicit integer targets with 0 < ti <= tu always parse and
// round-trip exactly.
func TestPropertyExplicitTargetsRoundTrip(t *testing.T) {
	f := func(tiRaw, spanRaw uint16) bool {
		ti := int(tiRaw)%5000 + 1
		tu := ti + int(spanRaw)%5000
		v, err := ParseQoSValue("click", FormatQoSValue(qos.Annotation{
			Event: "click", Type: qos.Continuous, Explicit: true,
			Target: qos.Target{
				TI: sim.Duration(ti) * sim.Millisecond,
				TU: sim.Duration(tu) * sim.Millisecond,
			},
		}))
		if err != nil {
			return false
		}
		return v.Target.TI == sim.Duration(ti)*sim.Millisecond && v.Target.TU == sim.Duration(tu)*sim.Millisecond
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: the CSS parser never panics on arbitrary input.
func TestPropertyParseTotal(t *testing.T) {
	f := func(s string) bool {
		sheet, _ := Parse(s)
		return sheet != nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkCascadeLargeDocument(b *testing.B) {
	var sb strings.Builder
	sb.WriteString("<body>")
	for i := 0; i < 300; i++ {
		fmt.Fprintf(&sb, `<div class="row r%d" id="n%d"><p class="cell">x</p></div>`, i%7, i)
	}
	sb.WriteString("</body>")
	doc := html.Parse(sb.String())
	sheet := MustParse(`
		div { margin: 0; }
		.row { padding: 1px; }
		.r3 > .cell { color: red; }
		#n42 { color: blue !important; }
		div:not(.r1) p { font: small; }
	`)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Cascade(doc, sheet)
	}
}

func BenchmarkSelectorMatch(b *testing.B) {
	doc := html.Parse(`<body><div id="a" class="x"><span><p class="y" data-k="v">t</p></span></div></body>`)
	target := doc.GetElementsByClass("y")[0]
	sels, err := ParseSelectors(`div#a.x span > p.y[data-k="v"]:not(.z)`)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !sels[0].Matches(target) {
			b.Fatal("no match")
		}
	}
}
