package css

import (
	"testing"

	"github.com/wattwiseweb/greenweb/internal/dom"
	"github.com/wattwiseweb/greenweb/internal/qos"
)

// TestAnnotationLookupMemoInvalidation warms the lookup memo and then
// changes each thing that can alter a resolution — added sheet, appended
// rules, DOM attribute mutation — asserting the next Lookup recomputes.
func TestAnnotationLookupMemoInvalidation(t *testing.T) {
	doc := dom.NewDocument()
	body := doc.NewElement("body")
	doc.Root.AppendChild(body)
	div := doc.NewElement("div")
	div.SetAttr("id", "target")
	body.AppendChild(div)

	base := MustParse(`div:QoS { onclick-qos: single, long; }`)
	as := NewAnnotationSet(base)

	ann, ok := as.Lookup(div, "click")
	if !ok || ann.Target != qos.SingleLongTarget {
		t.Fatalf("warmup lookup = %+v ok=%v", ann, ok)
	}
	// Second call is served from the memo and must agree.
	if ann2, ok2 := as.Lookup(div, "click"); !ok2 || ann2 != ann {
		t.Fatalf("memoized lookup = %+v ok=%v, want %+v", ann2, ok2, ann)
	}

	// AddSheet: a more specific rule must win over the memoized answer.
	as.AddSheet(MustParse(`#target:QoS { onclick-qos: single, short; }`))
	if ann, ok = as.Lookup(div, "click"); !ok || ann.Target != qos.SingleShortTarget {
		t.Fatalf("after AddSheet: lookup = %+v ok=%v, want single-short", ann, ok)
	}

	// Appending rules to an existing sheet (no AddSheet call) must also be
	// picked up, via the total rule count.
	extra := MustParse(`#target:QoS { ontouchstart-qos: continuous; }`)
	base.Rules = append(base.Rules, extra.Rules...)
	if _, ok = as.Lookup(div, "touchstart"); !ok {
		t.Fatal("appended rule not visible through the memo")
	}

	// A DOM attribute mutation changes what selectors match; the stale
	// memo must not survive it.
	as.AddSheet(MustParse(`#target.hot:QoS { onclick-qos: continuous; }`))
	if ann, ok = as.Lookup(div, "click"); !ok || ann.Type != qos.Single {
		t.Fatalf("pre-mutation lookup = %+v ok=%v", ann, ok)
	}
	div.SetAttr("class", "hot")
	if ann, ok = as.Lookup(div, "click"); !ok || ann.Type != qos.Continuous {
		t.Fatalf("after SetAttr: lookup = %+v ok=%v, want continuous", ann, ok)
	}
}
