package css

import (
	"sort"

	"github.com/wattwiseweb/greenweb/internal/dom"
)

// Cascade computes every element's ComputedStyle from the sheets, applying
// standard cascade order: later declarations win within equal specificity,
// higher specificity wins otherwise, and inline styles (handled by
// Node.Computed) outrank everything. GreenWeb declarations are excluded
// from visual computed style — they are resolved by AnnotationSet instead,
// keeping QoS and presentation concerns separate (the modularity argument
// of paper Sec. 4.2).
//
// It returns the number of (element, declaration) applications performed,
// which the rendering pipeline uses as its style-resolution cost measure.
func Cascade(doc *dom.Document, sheets ...*Stylesheet) int {
	type cand struct {
		spec  Specificity
		order int
		decl  Decl
	}
	// Cascade ordering: importance first, then specificity, then source
	// order. less reports whether a sorts before b (weaker first, so later
	// map writes win).
	less := func(a, b cand) bool {
		if a.decl.Important != b.decl.Important {
			return !a.decl.Important
		}
		if a.spec != b.spec {
			return a.spec.Less(b.spec)
		}
		return a.order < b.order
	}
	applied := 0
	order := 0
	// Pre-index rules once to avoid re-walking sheets per element.
	type indexedRule struct {
		rule  *Rule
		order int
	}
	var rules []indexedRule
	for _, sheet := range sheets {
		for _, r := range sheet.Rules {
			order++
			rules = append(rules, indexedRule{r, order})
		}
	}
	for _, n := range doc.Elements() {
		var cands []cand
		for _, ir := range rules {
			for _, sel := range ir.rule.Selectors {
				if !sel.Matches(n) {
					continue
				}
				spec := sel.Specificity()
				for _, d := range ir.rule.Decls {
					if _, isQoS := IsQoSProperty(d.Property); isQoS {
						continue
					}
					cands = append(cands, cand{spec, ir.order, d})
				}
				break // one match per rule is enough
			}
		}
		if len(cands) == 0 {
			continue
		}
		sort.SliceStable(cands, func(i, j int) bool { return less(cands[i], cands[j]) })
		if n.ComputedStyle == nil {
			n.ComputedStyle = make(map[string]string, len(cands))
		}
		for _, c := range cands {
			n.ComputedStyle[c.decl.Property] = c.decl.Value
			applied++
		}
	}
	return applied
}

// TransitionsFor returns the CSS transitions declared on a node (from its
// computed or inline style). The browser's animation machinery consults
// this when a style property changes (paper Fig. 4's example).
func TransitionsFor(n *dom.Node) []Transition {
	v := n.Computed("transition")
	if v == "" {
		return nil
	}
	return ParseTransitions(v)
}
