package css

import (
	"github.com/wattwiseweb/greenweb/internal/dom"
)

// ruleIndex buckets a stylesheet's rules by the rightmost compound of each
// selector — the same rule-hash idea WebKit-family engines use: a selector
// whose subject names an id can only match elements with that id, so the
// cascade only needs to test an element against the rules in its id, class,
// tag, and universal buckets instead of every rule in the sheet.
//
// The build also precomputes what matching needs per rule: each selector's
// specificity and the rule's visual (non-QoS) declarations. Rules with no
// visual declarations — GreenWeb annotation sheets consist entirely of them —
// contribute nothing to any element's computed style and are not bucketed at
// all, so the cascade never tests their selectors.
//
// Positions are rule indices within the sheet, ascending within each bucket.
// The index is immutable once built; it is rebuilt (RCU-style, see
// Stylesheet.index) when rules are appended after a cascade has run.
type ruleIndex struct {
	n         int // number of rules indexed (== len(Rules) at build time)
	byID      map[string][]int32
	byClass   map[string][]int32
	byTag     map[string][]int32
	universal []int32

	specs  [][]Specificity // per rule, parallel to Rule.Selectors
	visual [][]Decl        // per rule, Decls minus GreenWeb QoS properties
}

func buildRuleIndex(rules []*Rule) *ruleIndex {
	idx := &ruleIndex{
		n:       len(rules),
		byID:    make(map[string][]int32),
		byClass: make(map[string][]int32),
		byTag:   make(map[string][]int32),
		specs:   make([][]Specificity, len(rules)),
		visual:  make([][]Decl, len(rules)),
	}
	for p, r := range rules {
		visual := r.Decls
		for i, d := range r.Decls {
			if _, isQoS := IsQoSProperty(d.Property); isQoS {
				// First QoS declaration: switch to a filtered copy.
				visual = make([]Decl, i, len(r.Decls)-1)
				copy(visual, r.Decls[:i])
				for _, d2 := range r.Decls[i+1:] {
					if _, isQoS := IsQoSProperty(d2.Property); !isQoS {
						visual = append(visual, d2)
					}
				}
				break
			}
		}
		idx.visual[p] = visual
		if len(visual) == 0 {
			continue // QoS-only rule: never a cascade candidate
		}
		specs := make([]Specificity, len(r.Selectors))
		for i, sel := range r.Selectors {
			specs[i] = sel.Specificity()
		}
		idx.specs[p] = specs
		for _, sel := range r.Selectors {
			sub := sel.Subject()
			// Most selective key first: id, then class, then tag. An
			// element can only match this selector if it carries the key,
			// so bucketing by it is exact, never lossy.
			switch {
			case sub.ID != "":
				idx.byID[sub.ID] = append(idx.byID[sub.ID], int32(p))
			case len(sub.Classes) > 0:
				c := sub.Classes[0]
				idx.byClass[c] = append(idx.byClass[c], int32(p))
			case sub.Tag != "" && sub.Tag != "*":
				idx.byTag[sub.Tag] = append(idx.byTag[sub.Tag], int32(p))
			default:
				idx.universal = append(idx.universal, int32(p))
			}
		}
	}
	return idx
}

// index returns the sheet's rule index, building it on first use. The index
// is stored through an atomic pointer so parsed sheets can be shared across
// concurrently running engines (the browser's asset cache does exactly
// that); concurrent first builds race benignly — both produce equivalent
// indexes. Appending rules after a cascade (AUTOGREEN-style sheet growth)
// is detected by rule count and triggers a rebuild; in-place mutation of an
// already-indexed rule is not supported.
func (s *Stylesheet) index() *ruleIndex {
	if idx := s.idx.Load(); idx != nil && idx.n == len(s.Rules) {
		return idx
	}
	idx := buildRuleIndex(s.Rules)
	s.idx.Store(idx)
	return idx
}

// cand is one candidate declaration during the cascade of a single element.
type cand struct {
	spec  Specificity
	order int
	decl  *Decl
}

// candLess is the cascade ordering: importance first, then specificity,
// then source order. It reports whether a sorts before b (weaker first, so
// later map writes win).
func candLess(a, b cand) bool {
	if a.decl.Important != b.decl.Important {
		return !a.decl.Important
	}
	if a.spec != b.spec {
		return a.spec.Less(b.spec)
	}
	return a.order < b.order
}

type sheetRules struct {
	rules []*Rule
	idx   *ruleIndex
	base  int // global order offset of this sheet's first rule
}

// ruleRef identifies one candidate rule: which sheet, which position in it,
// and its 1-based global source order (the cascade tiebreak). Kept small so
// ordered insertion shifts cheaply.
type ruleRef struct {
	sheet int32
	pos   int32
	order int32
}

// Cascade computes every element's ComputedStyle from the sheets, applying
// standard cascade order: later declarations win within equal specificity,
// higher specificity wins otherwise, and inline styles (handled by
// Node.Computed) outrank everything. GreenWeb declarations are excluded
// from visual computed style — they are resolved by AnnotationSet instead,
// keeping QoS and presentation concerns separate (the modularity argument
// of paper Sec. 4.2).
//
// It returns the number of (element, declaration) applications performed,
// which the rendering pipeline uses as its style-resolution cost measure.
//
// Per element, only the rules in the element's id/class/tag/universal
// buckets are tested (see ruleIndex); candidate declarations are kept
// sorted by ordered insertion into a scratch buffer reused across elements.
// The computed styles and the returned count are identical to an unindexed
// full scan — the candidate set is a superset of the matching rules, rules
// are still tested in source order, and the insertion order is stable.
func Cascade(doc *dom.Document, sheets ...*Stylesheet) int {
	srs := make([]sheetRules, 0, len(sheets))
	total := 0
	for _, sheet := range sheets {
		srs = append(srs, sheetRules{sheet.Rules, sheet.index(), total})
		total += len(sheet.Rules)
	}
	if total == 0 {
		return 0
	}

	// Scratch state reused across elements: seen de-duplicates rules that
	// land in several buckets (a selector group like "div, .x" indexes its
	// rule twice), candRules collects the candidate rules sorted by source
	// order, cands collects candidate declarations sorted by candLess.
	seen := make([]int, total)
	var candRules []ruleRef
	var cands []cand
	stamp := 0

	applied := 0
	for _, n := range doc.Elements() {
		stamp++
		candRules = candRules[:0]
		// Ordered insertion keeps candRules ascending by source order; the
		// per-bucket lists are ascending already, so inserts cluster near
		// the tail.
		addRule := func(si int, sr *sheetRules, positions []int32) {
			for _, p := range positions {
				g := sr.base + int(p)
				if seen[g] == stamp {
					continue
				}
				seen[g] = stamp
				ref := ruleRef{int32(si), p, int32(g + 1)}
				i := len(candRules)
				candRules = append(candRules, ref)
				for i > 0 && ref.order < candRules[i-1].order {
					candRules[i] = candRules[i-1]
					i--
				}
				candRules[i] = ref
			}
		}
		id := n.ID()
		classes := n.Classes()
		for si := range srs {
			sr := &srs[si]
			addRule(si, sr, sr.idx.universal)
			if len(sr.idx.byTag) > 0 {
				addRule(si, sr, sr.idx.byTag[n.Tag])
			}
			if id != "" && len(sr.idx.byID) > 0 {
				addRule(si, sr, sr.idx.byID[id])
			}
			if len(sr.idx.byClass) > 0 {
				for _, c := range classes {
					addRule(si, sr, sr.idx.byClass[c])
				}
			}
		}
		if len(candRules) == 0 {
			continue
		}

		cands = cands[:0]
		for _, ref := range candRules {
			idx := srs[ref.sheet].idx
			rule := srs[ref.sheet].rules[ref.pos]
			specs := idx.specs[ref.pos]
			visual := idx.visual[ref.pos]
			for k := range rule.Selectors {
				if !rule.Selectors[k].Matches(n) {
					continue
				}
				spec := specs[k]
				for d := range visual {
					// Stable ordered insertion: the new candidate lands
					// after every candidate it does not sort before, so
					// declarations of one rule keep their source order.
					c := cand{spec, int(ref.order), &visual[d]}
					i := len(cands)
					cands = append(cands, c)
					for i > 0 && candLess(c, cands[i-1]) {
						cands[i] = cands[i-1]
						i--
					}
					cands[i] = c
				}
				break // one match per rule is enough
			}
		}
		if len(cands) == 0 {
			continue
		}
		if n.ComputedStyle == nil {
			n.ComputedStyle = make(map[string]string, len(cands))
		}
		for _, c := range cands {
			n.ComputedStyle[c.decl.Property] = c.decl.Value
			applied++
		}
	}
	return applied
}

// TransitionsFor returns the CSS transitions declared on a node (from its
// computed or inline style). The browser's animation machinery consults
// this when a style property changes (paper Fig. 4's example).
func TransitionsFor(n *dom.Node) []Transition {
	v := n.Computed("transition")
	if v == "" {
		return nil
	}
	return ParseTransitions(v)
}
