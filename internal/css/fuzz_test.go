package css

import "testing"

// FuzzParse drives the CSS parser with arbitrary bytes: it must never
// panic, always return a usable (possibly empty) sheet, and serialization
// of whatever parsed must reach a fixed point.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"",
		"h1 { color: red; }",
		"div#a.b:QoS { ontouchstart-qos: continuous; }",
		"x:QoS { onclick-qos: single, 10, 20; }",
		"@media (x) { p { a: b; } } q { c: d !important; }",
		"a[href='x'], b:not(.c) { m: 1px; }",
		"/* comment */ p { transition: width 2s; }",
		"broken { no-colon }",
		"{}{}{}",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		sheet, _ := Parse(src)
		if sheet == nil {
			t.Fatal("nil sheet")
		}
		text := sheet.Serialize()
		again, _ := Parse(text)
		if again.Serialize() != text {
			t.Fatalf("serialize not a fixed point:\n%q\n%q", text, again.Serialize())
		}
	})
}

// FuzzParseQoSValue checks the annotation value grammar: parse either
// rejects or yields a valid target that round-trips.
func FuzzParseQoSValue(f *testing.F) {
	for _, s := range []string{
		"continuous", "single, short", "single, long",
		"continuous, 20, 100", "single, 1, 2", "bogus", "single, 5",
		"continuous, -1, 5", "single, 9999999, 99999999",
	} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, value string) {
		ann, err := ParseQoSValue("click", value)
		if err != nil {
			return
		}
		if !ann.Target.Valid() {
			t.Fatalf("accepted invalid target: %+v from %q", ann, value)
		}
		back, err := ParseQoSValue("click", FormatQoSValue(ann))
		if err != nil || back != ann {
			t.Fatalf("round trip failed: %+v vs %+v (%v)", ann, back, err)
		}
	})
}
