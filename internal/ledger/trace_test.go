package ledger

import (
	"bytes"
	"encoding/json"
	"testing"

	"github.com/wattwiseweb/greenweb/internal/acmp"
	"github.com/wattwiseweb/greenweb/internal/sim"
)

func sampleSpans() []Span {
	return []Span{
		{ID: 1, Kind: KindIdle, Name: "idle/other", Start: 0, End: 16_000, Energy: 0.001, Little: 0.001},
		{ID: 2, Kind: KindFrame, Name: "frame 1", Seq: 1, Start: 16_000, End: 24_000,
			Energy: 0.004, Big: 0.004, Busy: 6_000, Config: "big@1800MHz",
			Attrs: map[string]string{"decision": "profile@big@1800MHz"}},
		// Overlapping events: must land on distinct lanes.
		{ID: 3, Kind: KindEvent, Name: "touchstart #b", UID: 11, Start: 1_000, End: 30_000, Energy: 0.004},
		{ID: 4, Kind: KindEvent, Name: "touchend #b", UID: 12, Start: 9_000, End: 26_000, Energy: 0.003},
		{ID: 5, Kind: KindEvent, Name: "click #b", UID: 13, Start: 31_000, End: 40_000, Energy: 0.001},
	}
}

func TestWriteTraceProducesValidChromeTrace(t *testing.T) {
	var buf bytes.Buffer
	err := WriteTrace(&buf, Process{
		PID:   1,
		Name:  "CNN/GreenWeb-U",
		Spans: sampleSpans(),
		Marks: []ConfigMark{{At: 16_000, From: acmp.LowestConfig(), To: acmp.PeakConfig()}},
	})
	if err != nil {
		t.Fatal(err)
	}

	var tf struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			TS   *int64         `json:"ts"`
			Dur  int64          `json:"dur"`
			PID  int            `json:"pid"`
			TID  int            `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &tf); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if tf.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit = %q", tf.DisplayTimeUnit)
	}

	var complete, meta, counters, decisions int
	lanes := make(map[uint64]int)
	for _, ev := range tf.TraceEvents {
		if ev.TS == nil {
			t.Fatalf("event %q missing ts", ev.Name)
		}
		switch ev.Ph {
		case "X":
			complete++
			if ev.Dur < 0 {
				t.Errorf("event %q has negative dur", ev.Name)
			}
			if uid, ok := ev.Args["input_uid"].(float64); ok {
				lanes[uint64(uid)] = ev.TID
			}
			if ev.Name == "decide:profile@big@1800MHz" {
				decisions++
				if ev.TID != frameTID || *ev.TS != 16_000 || ev.Dur != 8_000 {
					t.Errorf("decision span not nested inside its frame: %+v", ev)
				}
			}
		case "M":
			meta++
		case "C":
			counters++
		}
	}
	// One complete event per span, plus one nested decision span under the
	// frame that carries a "decision" attribute.
	if complete != len(sampleSpans())+1 {
		t.Errorf("complete events = %d, want %d", complete, len(sampleSpans())+1)
	}
	if decisions != 1 {
		t.Errorf("decision spans = %d, want 1", decisions)
	}
	if meta < 3 { // process_name + frames thread + at least one event lane
		t.Errorf("metadata events = %d, want >= 3", meta)
	}
	if counters != 1 {
		t.Errorf("counter events = %d, want 1", counters)
	}
	// Overlapping events 11 and 12 must not share a lane; 13 may reuse one.
	if lanes[11] == lanes[12] {
		t.Errorf("overlapping events share tid %d", lanes[11])
	}
	if lanes[11] < eventTIDBase || lanes[12] < eventTIDBase {
		t.Errorf("event lanes below base: %v", lanes)
	}
}

func TestWriteTraceFromLiveLedger(t *testing.T) {
	r := newRig()
	r.led.BeginEvent(1, "load #document")
	r.led.BeginFrame()
	r.burn(1_000_000)
	r.s.RunUntil(sim.Time(5 * sim.Millisecond))
	r.led.EndFrame(1, r.cpu.Config())
	r.led.EndEvent(1)
	r.led.Finish()

	var buf bytes.Buffer
	if err := WriteTrace(&buf, Process{PID: 1, Name: "live", Spans: r.led.Spans(), Marks: r.led.Marks()}); err != nil {
		t.Fatal(err)
	}
	var tf map[string]any
	if err := json.Unmarshal(buf.Bytes(), &tf); err != nil {
		t.Fatalf("live trace is not valid JSON: %v", err)
	}
	if _, ok := tf["traceEvents"].([]any); !ok {
		t.Fatal("traceEvents missing or not an array")
	}
}
