// Package ledger provides per-frame, per-event energy attribution over the
// acmp energy meter, the model counterpart of splitting the paper's
// sense-resistor measurement (Sec. 7) by what the browser was doing when the
// energy was drawn.
//
// The ledger partitions virtual time into exclusive slices: while the engine
// produces a frame the open slice is that frame's span; between frames it is
// an idle/other span. Every integration interval the meter reports lands in
// exactly one slice, so the slice energies sum to the meter integral — a
// conservation invariant Check enforces within 1e-9 J. An accounting bug
// (rail mix-up, dropped interval, frame charged twice) therefore becomes a
// hard failure instead of silent skew in the Fig. 8/9 numbers.
//
// Input events (input → transitive-closure completion, Sec. 6.4) are overlay
// spans: they record the energy drawn while they were in flight. Overlapping
// events each observe the full draw, so event spans deliberately do NOT
// participate in the conservation sum.
package ledger

import (
	"fmt"
	"math"
	"sort"

	"github.com/wattwiseweb/greenweb/internal/acmp"
	"github.com/wattwiseweb/greenweb/internal/sim"
)

// ConservationTolerance is the maximum |span-sum − meter-integral| Check
// accepts, in joules. Runs integrate thousands of piecewise-constant
// intervals of ~1e-3 J each; float64 reassociation error stays orders of
// magnitude below this.
const ConservationTolerance = 1e-9

// Kind classifies a span.
type Kind string

// Span kinds.
const (
	// KindFrame covers one frame production: VSync begin through the
	// frame-ready signal (including rAF callbacks and compositing).
	KindFrame Kind = "frame"
	// KindIdle covers everything between frame productions: dispatch work,
	// timers, parsing, and true idleness. Frame + idle spans partition time.
	KindIdle Kind = "idle"
	// KindEvent covers one input's lifetime, input → event-closure
	// completion. Event spans overlay the frame/idle partition.
	KindEvent Kind = "event"
	// KindStage covers one render stage (style, layout, paint) of a staged
	// frame production. Stage spans overlay their frame span: the staged
	// scheduler runs stages under phase barriers, so stage windows are
	// disjoint and nested inside the frame window, and the stage energies
	// plus the frame's non-stage residual reconstruct the frame span
	// exactly. Like events, they do not participate in the conservation sum.
	KindStage Kind = "stage"
)

// Span is one attributed interval: what the system was doing, when, under
// which configuration, and what it cost.
type Span struct {
	ID   int    `json:"id"`
	Kind Kind   `json:"kind"`
	Name string `json:"name"`
	// Seq is the frame sequence number (frames only; 0 for a frame that ran
	// its animation callbacks but committed nothing).
	Seq int `json:"seq,omitempty"`
	// UID is the input's unique id (event spans only).
	UID uint64 `json:"uid,omitempty"`

	Start sim.Time `json:"start_us"`
	End   sim.Time `json:"end_us"`

	// Energy is the CPU-rail energy drawn during the span, split per rail.
	Energy acmp.Joules `json:"energy_j"`
	Little acmp.Joules `json:"little_j"`
	Big    acmp.Joules `json:"big_j"`
	// Busy is the union-busy CPU time accrued during the span.
	Busy sim.Duration `json:"busy_us"`
	// Config is the execution configuration associated with the span (at
	// close for frames — the configuration the governor chose — at open for
	// events).
	Config string `json:"config,omitempty"`

	// Attrs carries scheduler decisions and other annotations (the GreenWeb
	// runtime records its prediction, deadline, and feedback outcome here).
	Attrs map[string]string `json:"attrs,omitempty"`
}

// Duration reports the span length.
func (s Span) Duration() sim.Duration { return s.End.Sub(s.Start) }

// ConfigMark records one execution-configuration change, for trace export.
type ConfigMark struct {
	At       sim.Time    `json:"at_us"`
	From, To acmp.Config `json:"-"`
}

// Ledger attributes the CPU meter's energy to frame, idle, and event spans.
// It is single-goroutine, like the simulator that drives it.
type Ledger struct {
	cpu      *acmp.CPU
	simu     *sim.Simulator
	baseline acmp.Joules // meter total when the ledger attached

	spans  []Span
	nextID int

	cur      Span         // open exclusive slice (frame or idle)
	curBusy0 sim.Duration // union-busy total when cur opened

	events     map[uint64]*Span
	eventBusy0 map[uint64]sim.Duration

	stage      *Span // open render-stage overlay (staged frame production)
	stageBusy0 sim.Duration

	marks []ConfigMark
}

// New attaches a ledger to the CPU's meter. Energy drawn before the ledger
// attaches stays outside the conservation sum (the baseline is subtracted).
func New(cpu *acmp.CPU) *Ledger {
	l := &Ledger{
		cpu:        cpu,
		simu:       cpu.Sim(),
		baseline:   cpu.Meter().Energy(),
		events:     make(map[uint64]*Span),
		eventBusy0: make(map[uint64]sim.Duration),
	}
	l.cur = Span{ID: l.nextID, Kind: KindIdle, Name: "idle/other", Start: l.simu.Now()}
	l.curBusy0 = cpu.UnionBusyTime()
	cpu.Meter().OnTransition(l.onTransition)
	cpu.OnConfigChange(func(from, to acmp.Config) {
		l.marks = append(l.marks, ConfigMark{At: l.simu.Now(), From: from, To: to})
	})
	return l
}

// onTransition receives one piecewise-constant integration interval from the
// meter and charges it to the open slice and every in-flight event. The
// ledger only changes the open slice at instants where it has just forced a
// meter sync, so each interval falls entirely within one slice.
func (l *Ledger) onTransition(from, to sim.Time, rail acmp.Cluster, e acmp.Joules) {
	l.charge(&l.cur, rail, e)
	for _, sp := range l.events {
		l.charge(sp, rail, e)
	}
	if l.stage != nil {
		l.charge(l.stage, rail, e)
	}
}

func (l *Ledger) charge(sp *Span, rail acmp.Cluster, e acmp.Joules) {
	sp.Energy += e
	if rail == acmp.Big {
		sp.Big += e
	} else {
		sp.Little += e
	}
}

// switchTo closes the open slice and opens a new one of the given kind.
// Zero-length, zero-energy idle slices (back-to-back frames) are dropped.
func (l *Ledger) switchTo(kind Kind) {
	now := l.simu.Now()
	l.cpu.Meter().Sync()
	busy := l.cpu.UnionBusyTime()
	l.cur.End = now
	l.cur.Busy = busy - l.curBusy0
	if l.cur.Kind != KindIdle || l.cur.Energy != 0 || l.cur.Duration() != 0 {
		l.spans = append(l.spans, l.cur)
	}
	l.nextID++
	l.cur = Span{ID: l.nextID, Kind: kind, Start: now}
	if kind == KindIdle {
		l.cur.Name = "idle/other"
	}
	l.curBusy0 = busy
}

// BeginFrame opens a frame span: subsequent energy is the frame's until
// EndFrame. Beginning a frame inside a frame is an accounting bug and
// panics, like the simulator does on logic errors.
func (l *Ledger) BeginFrame() {
	if l.cur.Kind == KindFrame {
		panic("ledger: BeginFrame inside an open frame span")
	}
	l.switchTo(KindFrame)
}

// EndFrame closes the open frame span and returns it. seq is the committed
// frame's sequence number, or 0 when the frame ran callbacks but committed
// nothing; cfg is the configuration the frame executed under. The returned
// span is a value copy — observers (the obs decision recorder) may keep it
// without aliasing ledger state.
func (l *Ledger) EndFrame(seq int, cfg acmp.Config) Span {
	if l.cur.Kind != KindFrame {
		panic("ledger: EndFrame without an open frame span")
	}
	if l.stage != nil {
		panic("ledger: EndFrame while stage " + l.stage.Name + " is open")
	}
	l.cur.Seq = seq
	l.cur.Config = cfg.String()
	if seq > 0 {
		l.cur.Name = fmt.Sprintf("frame %d", seq)
	} else {
		l.cur.Name = "frame (no commit)"
	}
	l.switchTo(KindIdle)
	// switchTo never drops a frame span, so the closed frame is the last
	// appended span.
	return l.spans[len(l.spans)-1]
}

// AnnotateFrame attaches a key/value to the open frame span (the GreenWeb
// runtime records its decision here). A no-op when no frame is open.
func (l *Ledger) AnnotateFrame(key, value string) {
	if l.cur.Kind != KindFrame {
		return
	}
	if l.cur.Attrs == nil {
		l.cur.Attrs = make(map[string]string)
	}
	l.cur.Attrs[key] = value
}

// BeginStage opens a render-stage overlay span inside the open frame span.
// Stages run under phase barriers, so at most one stage is open at a time;
// opening a stage outside a frame, or while another stage is open, is an
// accounting bug and panics.
func (l *Ledger) BeginStage(seq int, name string) {
	if l.cur.Kind != KindFrame {
		panic("ledger: BeginStage outside an open frame span")
	}
	if l.stage != nil {
		panic("ledger: BeginStage while stage " + l.stage.Name + " is open")
	}
	l.cpu.Meter().Sync()
	l.nextID++
	l.stage = &Span{
		ID:     l.nextID,
		Kind:   KindStage,
		Name:   name,
		Seq:    seq,
		Start:  l.simu.Now(),
		Config: l.cpu.Config().String(),
	}
	l.stageBusy0 = l.cpu.UnionBusyTime()
}

// EndStage closes the open stage span and returns a value copy of it.
func (l *Ledger) EndStage() Span {
	if l.stage == nil {
		panic("ledger: EndStage without an open stage span")
	}
	l.cpu.Meter().Sync()
	sp := l.stage
	sp.End = l.simu.Now()
	sp.Busy = l.cpu.UnionBusyTime() - l.stageBusy0
	l.spans = append(l.spans, *sp)
	l.stage = nil
	return *sp
}

// BeginEvent opens an overlay span for one input's lifetime.
func (l *Ledger) BeginEvent(uid uint64, name string) {
	if _, ok := l.events[uid]; ok {
		return // duplicate begin: keep the original span
	}
	l.cpu.Meter().Sync()
	l.nextID++
	l.events[uid] = &Span{
		ID:     l.nextID,
		Kind:   KindEvent,
		Name:   name,
		UID:    uid,
		Start:  l.simu.Now(),
		Config: l.cpu.Config().String(),
	}
	l.eventBusy0[uid] = l.cpu.UnionBusyTime()
}

// AnnotateEvent attaches a key/value to an in-flight event span. A no-op for
// unknown or already-closed events.
func (l *Ledger) AnnotateEvent(uid uint64, key, value string) {
	sp, ok := l.events[uid]
	if !ok {
		return
	}
	if sp.Attrs == nil {
		sp.Attrs = make(map[string]string)
	}
	sp.Attrs[key] = value
}

// EndEvent closes an event's overlay span at the current instant. A no-op
// for unknown or already-closed events.
func (l *Ledger) EndEvent(uid uint64) {
	sp, ok := l.events[uid]
	if !ok {
		return
	}
	l.cpu.Meter().Sync()
	sp.End = l.simu.Now()
	sp.Busy = l.cpu.UnionBusyTime() - l.eventBusy0[uid]
	l.spans = append(l.spans, *sp)
	delete(l.events, uid)
	delete(l.eventBusy0, uid)
}

// Finish closes every in-flight event span at the current instant (a run can
// end with inputs whose closure never exhausted). The exclusive slice stays
// open — Spans and Check snapshot it — so late energy is never dropped.
func (l *Ledger) Finish() {
	uids := make([]uint64, 0, len(l.events))
	for uid := range l.events {
		uids = append(uids, uid)
	}
	sort.Slice(uids, func(i, j int) bool { return uids[i] < uids[j] })
	for _, uid := range uids {
		l.EndEvent(uid)
	}
}

// Spans returns every closed span plus a snapshot of the open slice, sorted
// by start time (ID breaks ties).
func (l *Ledger) Spans() []Span {
	l.cpu.Meter().Sync()
	out := make([]Span, 0, len(l.spans)+len(l.events)+1)
	out = append(out, l.spans...)
	for _, sp := range l.events {
		snap := *sp
		snap.End = l.simu.Now()
		snap.Busy = l.cpu.UnionBusyTime() - l.eventBusy0[sp.UID]
		out = append(out, snap)
	}
	if l.stage != nil {
		snap := *l.stage
		snap.End = l.simu.Now()
		snap.Busy = l.cpu.UnionBusyTime() - l.stageBusy0
		out = append(out, snap)
	}
	cur := l.cur
	cur.End = l.simu.Now()
	cur.Busy = l.cpu.UnionBusyTime() - l.curBusy0
	out = append(out, cur)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Start != out[j].Start {
			return out[i].Start < out[j].Start
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// Marks returns the configuration-change history observed by the ledger.
func (l *Ledger) Marks() []ConfigMark { return l.marks }

// Summary reports the attributed energy totals: frame-production energy,
// everything-else energy (the two partition the meter integral), and the
// event-overlay total (which may double-count overlapping events).
func (l *Ledger) Summary() (frame, idle, event acmp.Joules) {
	for _, sp := range l.Spans() {
		switch sp.Kind {
		case KindFrame:
			frame += sp.Energy
		case KindIdle:
			idle += sp.Energy
		case KindEvent:
			event += sp.Energy
		}
	}
	return frame, idle, event
}

// StageEnergy reports the total energy attributed to render-stage spans.
// Stage windows are disjoint and nested inside frame windows, so this never
// exceeds the frame total of Summary.
func (l *Ledger) StageEnergy() acmp.Joules {
	var total acmp.Joules
	for _, sp := range l.Spans() {
		if sp.Kind == KindStage {
			total += sp.Energy
		}
	}
	return total
}

// Check enforces the conservation invariant: the frame+idle span energies
// must sum to the meter integral since attach within ConservationTolerance.
// Any discrepancy is an accounting bug in the attribution pipeline.
func (l *Ledger) Check() error {
	total := l.cpu.Meter().Energy() - l.baseline
	frame, idle, _ := l.Summary()
	sum := frame + idle
	if diff := math.Abs(float64(sum - total)); diff > ConservationTolerance {
		return fmt.Errorf("ledger: conservation violated: spans sum to %.12f J, meter integral is %.12f J (|Δ| = %.3e J > %g)",
			float64(sum), float64(total), diff, ConservationTolerance)
	}
	return nil
}
