package ledger

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"github.com/wattwiseweb/greenweb/internal/sim"
)

// Process groups one run's spans for trace export. Multi-run traces (a whole
// sweep) export each run as its own trace process.
type Process struct {
	PID   int
	Name  string
	Spans []Span
	Marks []ConfigMark
}

// traceEvent is one entry of the Chrome trace_event format (the JSON Array
// variant wrapped in a JSON Object container), loadable in chrome://tracing
// and Perfetto. Timestamps and durations are microseconds — sim's native
// unit, so values pass through unchanged.
type traceEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	TS   int64          `json:"ts"`
	Dur  int64          `json:"dur,omitempty"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// traceFile is the JSON Object container format.
type traceFile struct {
	TraceEvents     []traceEvent `json:"traceEvents"`
	DisplayTimeUnit string       `json:"displayTimeUnit"`
}

// Thread ids within one trace process: frame/idle slices share the
// partition lane; overlapping event spans spread across lanes starting at
// eventTIDBase.
const (
	frameTID     = 1
	eventTIDBase = 2
)

// WriteTrace serializes the processes as Chrome trace-event JSON.
func WriteTrace(w io.Writer, procs ...Process) error {
	tf := traceFile{TraceEvents: []traceEvent{}, DisplayTimeUnit: "ms"}
	for _, p := range procs {
		tf.TraceEvents = append(tf.TraceEvents, processEvents(p)...)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(tf)
}

func processEvents(p Process) []traceEvent {
	evs := []traceEvent{
		{Name: "process_name", Ph: "M", PID: p.PID, TID: 0, Args: map[string]any{"name": p.Name}},
		{Name: "thread_name", Ph: "M", PID: p.PID, TID: frameTID, Args: map[string]any{"name": "frames"}},
	}

	// Greedy lane assignment keeps overlapping event spans on distinct
	// threads: complete events on one Chrome-trace thread must nest, and
	// input closures (touchstart/touchend/click bursts) routinely overlap
	// without nesting.
	events := make([]Span, 0)
	for _, sp := range p.Spans {
		if sp.Kind == KindEvent {
			events = append(events, sp)
		}
	}
	sort.Slice(events, func(i, j int) bool {
		if events[i].Start != events[j].Start {
			return events[i].Start < events[j].Start
		}
		return events[i].ID < events[j].ID
	})
	laneEnd := []sim.Time{}
	lanes := make(map[int]int, len(events)) // span ID → lane
	for _, sp := range events {
		lane := -1
		for i, end := range laneEnd {
			if end <= sp.Start {
				lane = i
				break
			}
		}
		if lane < 0 {
			lane = len(laneEnd)
			laneEnd = append(laneEnd, 0)
		}
		laneEnd[lane] = sp.End
		lanes[sp.ID] = lane
	}
	for i := range laneEnd {
		evs = append(evs, traceEvent{
			Name: "thread_name", Ph: "M", PID: p.PID, TID: eventTIDBase + i,
			Args: map[string]any{"name": fmt.Sprintf("events-%d", i)},
		})
	}

	for _, sp := range p.Spans {
		tid := frameTID
		if sp.Kind == KindEvent {
			tid = eventTIDBase + lanes[sp.ID]
		}
		evs = append(evs, traceEvent{
			Name: sp.Name,
			Cat:  string(sp.Kind),
			Ph:   "X",
			TS:   int64(sp.Start),
			Dur:  int64(sp.Duration()),
			PID:  p.PID,
			TID:  tid,
			Args: spanArgs(sp),
		})
		// Annotated frames carry the governor's scheduling decision; emit it
		// as a second complete event spanning the same interval on the same
		// lane — Perfetto and chrome://tracing nest same-thread events by
		// containment, so the decision renders as a child of its frame.
		if sp.Kind == KindFrame && sp.Attrs["decision"] != "" {
			evs = append(evs, traceEvent{
				Name: "decide:" + sp.Attrs["decision"],
				Cat:  "decision",
				Ph:   "X",
				TS:   int64(sp.Start),
				Dur:  int64(sp.Duration()),
				PID:  p.PID,
				TID:  tid,
				Args: spanArgs(sp),
			})
		}
	}

	// Configuration changes as a counter track (MHz over time) plus instant
	// markers carrying the from→to transition.
	for _, mk := range p.Marks {
		evs = append(evs, traceEvent{
			Name: "cpu MHz", Ph: "C", TS: int64(mk.At), PID: p.PID,
			Args: map[string]any{"MHz": mk.To.MHz},
		}, traceEvent{
			Name: fmt.Sprintf("%v → %v", mk.From, mk.To),
			Cat:  "config", Ph: "i", TS: int64(mk.At), PID: p.PID, TID: frameTID,
			Args: map[string]any{"s": "p"},
		})
	}
	return evs
}

func spanArgs(sp Span) map[string]any {
	args := map[string]any{
		"energy_j": float64(sp.Energy),
		"little_j": float64(sp.Little),
		"big_j":    float64(sp.Big),
		"busy_us":  int64(sp.Busy),
	}
	if sp.Config != "" {
		args["config"] = sp.Config
	}
	if sp.Seq > 0 {
		args["frame_seq"] = sp.Seq
	}
	if sp.UID != 0 {
		args["input_uid"] = sp.UID
	}
	for k, v := range sp.Attrs {
		args[k] = v
	}
	return args
}
