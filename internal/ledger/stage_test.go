package ledger

import (
	"math"
	"testing"

	"github.com/wattwiseweb/greenweb/internal/sim"
)

// TestStageSpansPartitionFrameEnergy: stage spans opened back-to-back inside
// a frame (the staged pipeline's phase barriers leave no gap between them)
// reconstruct the frame's energy exactly — Σstage + residual == frame, with
// residual zero when the stages tile the whole window.
func TestStageSpansPartitionFrameEnergy(t *testing.T) {
	r := newRig()

	r.s.RunUntil(sim.Time(2 * sim.Millisecond))
	r.led.BeginFrame()
	for i, cycles := range []int64{1_000_000, 1_500_000, 800_000} {
		r.led.BeginStage(1, []string{"style", "layout", "paint"}[i])
		r.burn(cycles)
		r.s.Run()
		r.led.EndStage()
	}
	frame := r.led.EndFrame(1, r.cpu.Config())

	r.s.RunUntil(sim.Time(20 * sim.Millisecond))
	r.led.Finish()
	checkConservation(t, r.led)

	// Global conservation ignores the stage overlays entirely: frame + idle
	// still partition the meter integral.
	fE, iE, _ := r.led.Summary()
	if diff := math.Abs(float64(fE + iE - r.cpu.Energy())); diff > ConservationTolerance {
		t.Errorf("frame(%v)+idle(%v) != total(%v)", fE, iE, r.cpu.Energy())
	}

	var stageSum float64
	var nStages int
	for _, sp := range r.led.Spans() {
		if sp.Kind != KindStage {
			continue
		}
		nStages++
		stageSum += float64(sp.Energy)
		if sp.Start < frame.Start || sp.End > frame.End {
			t.Errorf("stage span %q [%v,%v] escapes frame window [%v,%v]",
				sp.Name, sp.Start, sp.End, frame.Start, frame.End)
		}
		if sp.Seq != 1 {
			t.Errorf("stage span %q has seq %d, want 1", sp.Name, sp.Seq)
		}
	}
	if nStages != 3 {
		t.Fatalf("got %d stage spans, want 3", nStages)
	}
	if got := float64(r.led.StageEnergy()); math.Abs(got-stageSum) > ConservationTolerance {
		t.Errorf("StageEnergy() = %v, spans sum to %v", got, stageSum)
	}
	// The stages tile the frame window with zero-duration gaps only, so the
	// residual (frame − Σstage) must vanish to the conservation tolerance.
	if resid := math.Abs(float64(frame.Energy) - stageSum); resid > ConservationTolerance {
		t.Errorf("Σstage %v != frame energy %v (residual %v)", stageSum, float64(frame.Energy), resid)
	}
}

// TestStageSpanResidual: work between stage windows (a governor hook, a
// barrier switch stall) stays in the frame span but outside every stage
// span, so the residual is positive and the sub-partition remains exact.
func TestStageSpanResidual(t *testing.T) {
	r := newRig()

	r.led.BeginFrame()
	r.burn(500_000) // pre-stage script work: frame energy, not stage energy
	r.s.Run()
	r.led.BeginStage(1, "style")
	r.burn(1_000_000)
	r.s.Run()
	r.led.EndStage()
	frame := r.led.EndFrame(1, r.cpu.Config())
	r.led.Finish()
	checkConservation(t, r.led)

	stage := float64(r.led.StageEnergy())
	if stage <= 0 {
		t.Fatal("stage span recorded no energy")
	}
	if resid := float64(frame.Energy) - stage; resid <= 0 {
		t.Errorf("expected positive residual, frame %v vs Σstage %v", float64(frame.Energy), stage)
	}
}

// TestStageGuards: the phase-barrier protocol is enforced — stages only
// inside frames, no nesting, no dangling stage at frame end.
func TestStageGuards(t *testing.T) {
	expectPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		f()
	}

	r := newRig()
	expectPanic("BeginStage outside frame", func() { r.led.BeginStage(1, "style") })

	r = newRig()
	r.led.BeginFrame()
	r.led.BeginStage(1, "style")
	expectPanic("nested BeginStage", func() { r.led.BeginStage(1, "layout") })

	r = newRig()
	r.led.BeginFrame()
	r.led.BeginStage(1, "style")
	expectPanic("EndFrame with open stage", func() { r.led.EndFrame(1, r.cpu.Config()) })

	r = newRig()
	expectPanic("EndStage without stage", func() { r.led.EndStage() })
}
