package ledger

import (
	"math"
	"testing"

	"github.com/wattwiseweb/greenweb/internal/acmp"
	"github.com/wattwiseweb/greenweb/internal/sim"
)

// rig is a simulated CPU with one worker thread and an attached ledger.
type rig struct {
	s   *sim.Simulator
	cpu *acmp.CPU
	th  *acmp.Thread
	led *Ledger
}

func newRig() *rig {
	s := sim.New()
	cpu := acmp.NewCPU(s, nil)
	th := cpu.NewThread("worker")
	return &rig{s: s, cpu: cpu, th: th, led: New(cpu)}
}

func (r *rig) burn(cycles int64) {
	r.th.Submit(acmp.Work{CyclesBig: cycles, CyclesLittle: int64(float64(cycles) * 1.8)}, nil)
}

func checkConservation(t *testing.T, l *Ledger) {
	t.Helper()
	if err := l.Check(); err != nil {
		t.Fatal(err)
	}
}

func TestSlicesPartitionMeterIntegral(t *testing.T) {
	r := newRig()

	// idle → frame → idle → frame → idle, with work and a config change
	// falling inside and outside frames.
	r.burn(500_000)
	r.s.RunUntil(sim.Time(4 * sim.Millisecond))

	r.led.BeginFrame()
	r.burn(1_000_000)
	r.s.RunUntil(sim.Time(10 * sim.Millisecond))
	r.led.EndFrame(1, r.cpu.Config())

	r.cpu.SetConfig(acmp.Config{Cluster: acmp.Big, MHz: acmp.BigMaxMHz})
	r.burn(2_000_000)
	r.s.RunUntil(sim.Time(14 * sim.Millisecond))

	r.led.BeginFrame()
	r.burn(3_000_000)
	r.s.RunUntil(sim.Time(20 * sim.Millisecond))
	r.led.EndFrame(2, r.cpu.Config())

	r.s.RunUntil(sim.Time(25 * sim.Millisecond))
	r.led.Finish()
	checkConservation(t, r.led)

	frame, idle, _ := r.led.Summary()
	if frame <= 0 || idle <= 0 {
		t.Fatalf("expected energy in both frame and idle spans, got frame=%v idle=%v", frame, idle)
	}
	total := r.cpu.Energy()
	if diff := math.Abs(float64(frame + idle - total)); diff > ConservationTolerance {
		t.Errorf("frame(%v)+idle(%v) != total(%v)", frame, idle, total)
	}

	var frames, idles int
	for _, sp := range r.led.Spans() {
		switch sp.Kind {
		case KindFrame:
			frames++
			if sp.Seq == 0 || sp.Config == "" {
				t.Errorf("frame span missing seq/config: %+v", sp)
			}
		case KindIdle:
			idles++
		}
		if sp.End < sp.Start {
			t.Errorf("span %d ends before it starts: %+v", sp.ID, sp)
		}
	}
	if frames != 2 || idles < 2 {
		t.Errorf("spans: %d frames, %d idles; want 2 frames and >= 2 idles", frames, idles)
	}
}

func TestEventOverlaysObserveConcurrentEnergy(t *testing.T) {
	r := newRig()

	r.led.BeginEvent(1, "touchstart #btn")
	r.burn(1_000_000)
	r.s.RunUntil(sim.Time(5 * sim.Millisecond))

	// A second, overlapping event: both must observe the energy drawn while
	// both are in flight.
	r.led.BeginEvent(2, "touchend #btn")
	r.burn(1_000_000)
	r.s.RunUntil(sim.Time(10 * sim.Millisecond))
	r.led.EndEvent(1)

	r.burn(1_000_000)
	r.s.RunUntil(sim.Time(15 * sim.Millisecond))
	r.led.EndEvent(2)

	r.led.Finish()
	checkConservation(t, r.led)

	var ev1, ev2 *Span
	for _, sp := range r.led.Spans() {
		sp := sp
		switch sp.UID {
		case 1:
			ev1 = &sp
		case 2:
			ev2 = &sp
		}
	}
	if ev1 == nil || ev2 == nil {
		t.Fatal("missing event spans")
	}
	if ev1.Energy <= 0 || ev2.Energy <= 0 {
		t.Fatalf("event energies: %v, %v; want both > 0", ev1.Energy, ev2.Energy)
	}
	// Overlap means the overlays together exceed the meter total is
	// possible; each alone must not exceed it.
	total := r.cpu.Energy()
	if ev1.Energy > total || ev2.Energy > total {
		t.Errorf("event overlay exceeds meter total %v: ev1=%v ev2=%v", total, ev1.Energy, ev2.Energy)
	}
	if ev1.Busy <= 0 {
		t.Errorf("event 1 busy time = %v, want > 0", ev1.Busy)
	}
}

func TestAnnotationsAndMarks(t *testing.T) {
	r := newRig()

	r.led.BeginEvent(7, "click #go")
	r.led.AnnotateEvent(7, "qos", "single 100ms")
	r.led.BeginFrame()
	r.led.AnnotateFrame("decision", "predict@big@1800MHz")
	r.cpu.SetConfig(acmp.Config{Cluster: acmp.Big, MHz: acmp.BigMaxMHz})
	r.burn(1_000_000)
	r.s.RunUntil(sim.Time(5 * sim.Millisecond))
	r.led.EndFrame(1, r.cpu.Config())
	r.led.EndEvent(7)
	r.led.Finish()
	checkConservation(t, r.led)

	var sawFrame, sawEvent bool
	for _, sp := range r.led.Spans() {
		if sp.Kind == KindFrame && sp.Attrs["decision"] == "predict@big@1800MHz" {
			sawFrame = true
		}
		if sp.Kind == KindEvent && sp.Attrs["qos"] == "single 100ms" {
			sawEvent = true
		}
	}
	if !sawFrame || !sawEvent {
		t.Errorf("annotations lost: frame=%v event=%v", sawFrame, sawEvent)
	}
	if len(r.led.Marks()) != 1 {
		t.Errorf("marks = %d, want 1", len(r.led.Marks()))
	}

	// Annotating after close is a harmless no-op.
	r.led.AnnotateFrame("late", "x")
	r.led.AnnotateEvent(7, "late", "x")
}

func TestFinishClosesDanglingEvents(t *testing.T) {
	r := newRig()
	r.led.BeginEvent(1, "load #document")
	r.burn(1_000_000)
	r.s.RunUntil(sim.Time(5 * sim.Millisecond))
	r.led.Finish()
	checkConservation(t, r.led)

	for _, sp := range r.led.Spans() {
		if sp.Kind == KindEvent && sp.End != r.s.Now() {
			t.Errorf("dangling event not closed at finish: %+v", sp)
		}
	}
	// Energy after Finish still lands in the open idle slice: conservation
	// must keep holding.
	r.burn(1_000_000)
	r.s.RunUntil(sim.Time(10 * sim.Millisecond))
	checkConservation(t, r.led)
}

func TestMismatchedFramePanics(t *testing.T) {
	r := newRig()
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		fn()
	}
	mustPanic("EndFrame without BeginFrame", func() { r.led.EndFrame(1, r.cpu.Config()) })
	r.led.BeginFrame()
	mustPanic("nested BeginFrame", func() { r.led.BeginFrame() })
}

// TestConservationCatchesDroppedInterval demonstrates the invariant doing
// its job: an attribution sink that loses an interval must fail Check.
func TestConservationCatchesDroppedInterval(t *testing.T) {
	r := newRig()
	r.burn(1_000_000)
	r.s.RunUntil(sim.Time(5 * sim.Millisecond))
	// Sabotage: steal energy from the ledger's current slice.
	r.cpu.Meter().Sync()
	r.led.cur.Energy -= 0.001
	if err := r.led.Check(); err == nil {
		t.Fatal("Check accepted a 1 mJ accounting hole")
	}
}
