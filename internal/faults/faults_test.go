package faults

import (
	"encoding/json"
	"testing"

	"github.com/wattwiseweb/greenweb/internal/acmp"
	"github.com/wattwiseweb/greenweb/internal/sim"
)

func TestInjectorDeterminism(t *testing.T) {
	spec := Default(42)
	decisions := func(extra int64) []bool {
		in := spec.NewInjector(extra)
		var out []bool
		for i := 0; i < 200; i++ {
			deny, delay := in.Transition(sim.Time(i) * 1000)
			out = append(out, deny, delay > 0, in.DropSample(sim.Time(i)*1000))
		}
		return out
	}
	a, b := decisions(7), decisions(7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("decision %d diverged across identically seeded injectors", i)
		}
	}
	c := decisions(8)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("distinct extra seeds produced identical fault timelines")
	}
}

func TestInjectorRepeatedInstantDrawsDiffer(t *testing.T) {
	// Two decisions on the same stream at the same virtual instant must not
	// collapse to one value (the per-stream sequence number separates them).
	in := (&Spec{Seed: 1, DVFS: &DVFSSpec{DenyProb: 0.5}}).NewInjector(0)
	var denies int
	for i := 0; i < 100; i++ {
		if deny, _ := in.Transition(0); deny {
			denies++
		}
	}
	if denies == 0 || denies == 100 {
		t.Fatalf("100 same-instant draws gave %d denials; expected a mix", denies)
	}
}

func TestSpecValidate(t *testing.T) {
	bad := []*Spec{
		{DVFS: &DVFSSpec{DenyProb: 1.5}},
		{DVFS: &DVFSSpec{DelayProb: -0.1}},
		{DVFS: &DVFSSpec{DelayProb: 0.5}}, // delay_prob without delay_us
		{DVFS: &DVFSSpec{Delay: -1}},
		{DAQ: &DAQSpec{DropProb: 2}},
		{StormAbort: -3},
		{Thermal: &acmp.ThermalParams{AmbientC: 90, TripC: 70, ClearC: 55, HeatCPerSec: 1, CoolCPerSec: 1, HeatAboveMHz: 1400, CapMHz: 1100}},
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("case %d: Validate accepted %+v", i, s)
		}
	}
	if err := Default(1).Validate(); err != nil {
		t.Fatalf("default spec rejected: %v", err)
	}
	var nilSpec *Spec
	if err := nilSpec.Validate(); err != nil {
		t.Fatalf("nil spec rejected: %v", err)
	}
	if nilSpec.Enabled() {
		t.Fatal("nil spec reports enabled")
	}
}

func TestSpecJSONRoundTrip(t *testing.T) {
	want := Default(99)
	want.StormAbort = 12
	data, err := json.Marshal(want)
	if err != nil {
		t.Fatal(err)
	}
	var got Spec
	if err := json.Unmarshal(data, &got); err != nil {
		t.Fatal(err)
	}
	if got.Seed != want.Seed || got.StormAbort != want.StormAbort {
		t.Fatalf("round trip lost scalars: %+v", got)
	}
	if got.Thermal == nil || *got.Thermal != *want.Thermal {
		t.Fatalf("round trip lost thermal params: %+v", got.Thermal)
	}
	if got.DVFS == nil || *got.DVFS != *want.DVFS {
		t.Fatalf("round trip lost dvfs spec: %+v", got.DVFS)
	}
	if got.DAQ == nil || *got.DAQ != *want.DAQ {
		t.Fatalf("round trip lost daq spec: %+v", got.DAQ)
	}
}

func TestAttachEndToEnd(t *testing.T) {
	s := sim.New()
	cpu := acmp.NewCPU(s, nil)
	spec := Default(5)
	in := spec.NewInjector(123)
	in.Attach(cpu)
	if cpu.Thermal() == nil {
		t.Fatal("thermal governor not attached")
	}
	daq := acmp.NewDAQ(s, sim.Millisecond, cpu.Power)
	in.AttachDAQ(daq)

	cpu.SetConfig(acmp.PeakConfig())
	s.RunUntil(sim.Time(5 * sim.Second))
	daq.Stop()

	fs := cpu.FaultStats()
	if fs.Trips == 0 {
		t.Fatalf("no thermal trips over 5 s of requested peak: %+v", fs)
	}
}
