// Package faults is the deterministic fault-injection layer for the
// simulated device. A Spec names the adversities one run faces — thermal
// throttling of the A15 cluster, DVFS transitions that are delayed or
// denied, DAQ sample dropout — and an Injector realizes them as pure
// functions of (seed, virtual time): the same spec and seed produce the
// same fault timeline on every machine and at any fleet worker count, so
// faulted experiments stay byte-reproducible.
//
// The seed that matters is the mix of the spec's own seed and the replayed
// trace's intrinsic seed (replay.Trace.Seed), so distinct experiment cells
// sharing one spec do not share a fault pattern, yet each cell's pattern is
// stable across repetitions and machines.
package faults

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/fnv"
	"io"

	"github.com/wattwiseweb/greenweb/internal/acmp"
	"github.com/wattwiseweb/greenweb/internal/obs"
	"github.com/wattwiseweb/greenweb/internal/sim"
)

// Process-wide injection counters, labeled by fault kind. Observability
// only: the injector's decisions are a pure function of (seed, time) and
// never read these back.
var obsInjections = obs.Default().CounterVec("greenweb_faults_injections_total",
	"Injected faults by kind across all runs", "kind")

// ErrStorm marks a run aborted because its DVFS denial count reached the
// spec's StormAbort threshold — the deterministic "unlucky cell" the fleet's
// retry and quarantine machinery exists for. Callers detect it with
// errors.Is.
var ErrStorm = errors.New("faults: fault storm")

// DVFSSpec injects configuration-transition failures: each effective
// SetConfig request may be denied outright (old configuration stays live)
// or land only after an extra transition latency.
type DVFSSpec struct {
	DenyProb  float64      `json:"deny_prob,omitempty"`
	DelayProb float64      `json:"delay_prob,omitempty"`
	Delay     sim.Duration `json:"delay_us,omitempty"` // injected transition latency
}

// DAQSpec injects sample dropout into the DAQ power sampler.
type DAQSpec struct {
	DropProb float64 `json:"drop_prob,omitempty"`
}

// Spec is the full fault-injection plan for one run. A nil Spec (or a zero
// one) injects nothing and leaves every subsystem byte-identical to an
// unfaulted run.
type Spec struct {
	// Seed drives every probabilistic decision; mixed with the replayed
	// trace's intrinsic seed by the harness.
	Seed int64 `json:"seed"`

	Thermal *acmp.ThermalParams `json:"thermal,omitempty"`
	DVFS    *DVFSSpec           `json:"dvfs,omitempty"`
	DAQ     *DAQSpec            `json:"daq,omitempty"`

	// StormAbort, when positive, aborts a run whose DVFS denial count
	// reaches it — the "fault storm" that turns an experiment cell into a
	// failed job the fleet must retry and eventually quarantine.
	StormAbort int `json:"storm_abort,omitempty"`
}

// Default returns a moderate all-subsystem spec for the fault sweep:
// thermal trips under sustained near-peak A15 residency, occasional DVFS
// delays and rare denials, and 1% DAQ dropout.
func Default(seed int64) *Spec {
	thermal := acmp.DefaultThermalParams()
	return &Spec{
		Seed:    seed,
		Thermal: &thermal,
		DVFS:    &DVFSSpec{DenyProb: 0.05, DelayProb: 0.2, Delay: 400 * sim.Microsecond},
		DAQ:     &DAQSpec{DropProb: 0.01},
	}
}

// Enabled reports whether the spec injects anything at all.
func (s *Spec) Enabled() bool {
	return s != nil && (s.Thermal != nil || s.DVFS != nil || s.DAQ != nil)
}

func probValid(p float64) bool { return p >= 0 && p <= 1 }

// Validate rejects malformed specs with request-shaped errors, so external
// input (the job server, CLI flags) fails fast before any job runs.
func (s *Spec) Validate() error {
	if s == nil {
		return nil
	}
	if s.Thermal != nil {
		if err := s.Thermal.Validate(); err != nil {
			return fmt.Errorf("faults: thermal: %w", err)
		}
	}
	if d := s.DVFS; d != nil {
		if !probValid(d.DenyProb) || !probValid(d.DelayProb) {
			return fmt.Errorf("faults: dvfs probabilities must be in [0,1], got deny %g delay %g", d.DenyProb, d.DelayProb)
		}
		if d.Delay < 0 {
			return fmt.Errorf("faults: negative dvfs delay %v", d.Delay)
		}
		if d.DelayProb > 0 && d.Delay == 0 {
			return fmt.Errorf("faults: dvfs delay_prob %g set with zero delay_us", d.DelayProb)
		}
	}
	if q := s.DAQ; q != nil && !probValid(q.DropProb) {
		return fmt.Errorf("faults: daq drop_prob must be in [0,1], got %g", q.DropProb)
	}
	if s.StormAbort < 0 {
		return fmt.Errorf("faults: negative storm_abort %d", s.StormAbort)
	}
	return nil
}

// Injector realizes a Spec against one simulated device. It is
// single-goroutine, like the simulator whose callbacks drive it.
type Injector struct {
	spec Spec
	seed int64
	seq  map[string]uint64

	// Cached obs counter children, resolved once per injector.
	cDeny, cDelay, cDrop *obs.Counter
}

// NewInjector builds the injector for one run. extraSeed is mixed into the
// spec seed — pass the replayed trace's intrinsic seed so each experiment
// cell gets its own fault pattern.
func (s *Spec) NewInjector(extraSeed int64) *Injector {
	if s == nil {
		return nil
	}
	return &Injector{
		spec: *s, seed: s.Seed ^ extraSeed, seq: make(map[string]uint64),
		cDeny:  obsInjections.With("dvfs_deny"),
		cDelay: obsInjections.With("dvfs_delay"),
		cDrop:  obsInjections.With("daq_drop"),
	}
}

// Attach wires the injector's fault models into the CPU: the thermal
// governor and the DVFS transition faults. DAQ dropout attaches separately
// (AttachDAQ), since most runs never construct a sampler.
func (in *Injector) Attach(cpu *acmp.CPU) {
	if in == nil {
		return
	}
	if in.spec.Thermal != nil {
		cpu.EnableThermal(*in.spec.Thermal)
	}
	if in.spec.DVFS != nil {
		cpu.SetDVFSFaults(in)
	}
}

// AttachDAQ wires sample dropout into a DAQ sampler.
func (in *Injector) AttachDAQ(d *acmp.DAQ) {
	if in == nil || in.spec.DAQ == nil || in.spec.DAQ.DropProb <= 0 {
		return
	}
	d.SetDropout(in.DropSample)
}

// draw produces a uniform [0,1) variate for one named decision stream at a
// virtual instant. The value is an FNV-1a hash of (seed, stream, time,
// per-stream sequence number) — deterministic across runs and machines, and
// distinct for repeated decisions at the same instant.
func (in *Injector) draw(stream string, now sim.Time) float64 {
	h := fnv.New64a()
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], uint64(in.seed))
	h.Write(buf[:])
	io.WriteString(h, stream)
	binary.LittleEndian.PutUint64(buf[:], uint64(now))
	h.Write(buf[:])
	binary.LittleEndian.PutUint64(buf[:], in.seq[stream])
	h.Write(buf[:])
	in.seq[stream]++
	return float64(h.Sum64()>>11) / (1 << 53)
}

// Transition implements acmp.DVFSFaults.
func (in *Injector) Transition(now sim.Time) (deny bool, delay sim.Duration) {
	d := in.spec.DVFS
	if d == nil {
		return false, 0
	}
	if d.DenyProb > 0 && in.draw("dvfs-deny", now) < d.DenyProb {
		in.cDeny.Inc()
		return true, 0
	}
	if d.DelayProb > 0 && in.draw("dvfs-delay", now) < d.DelayProb {
		in.cDelay.Inc()
		return false, d.Delay
	}
	return false, 0
}

// DropSample reports whether the DAQ sample at now is lost.
func (in *Injector) DropSample(now sim.Time) bool {
	q := in.spec.DAQ
	if q != nil && q.DropProb > 0 && in.draw("daq-drop", now) < q.DropProb {
		in.cDrop.Inc()
		return true
	}
	return false
}

// StormAbort reports the configured fault-storm threshold (0 = disabled).
func (in *Injector) StormAbort() int {
	if in == nil {
		return 0
	}
	return in.spec.StormAbort
}
