// Package core implements the GreenWeb runtime (paper Sec. 6): the browser
// component that consumes QoS annotations and chooses, per frame, the ACMP
// execution configuration that meets the QoS target with minimal energy.
//
// Pieces, mapped to the paper:
//
//   - model.go — the DVFS analytical performance model
//     T = T_independent + N_nonoverlap/f (Equ. 1), solved online from two
//     profiling runs (one at the overall peak configuration, one at the
//     overall minimum), plus a static power model for energy prediction
//     (Sec. 6.2);
//   - runtime.go — the governor: annotation lookup on input, per-frame
//     configuration prediction, measured-latency feedback with step
//     adjustments and re-profiling, and event-closure handling (Sec. 6.2,
//     6.4);
//   - uai.go — the user-agent-intervention defense against mis-annotation
//     sketched in Sec. 8: an energy budget past which overly aggressive
//     annotations are ignored.
package core

import (
	"fmt"

	"github.com/wattwiseweb/greenweb/internal/acmp"
	"github.com/wattwiseweb/greenweb/internal/obs"
	"github.com/wattwiseweb/greenweb/internal/qos"
	"github.com/wattwiseweb/greenweb/internal/sim"
)

// Sweep-memo effectiveness counters: SelectWithin answers most per-frame
// queries from its memo; these expose the hit rate the memoization claims.
var (
	obsMemoHits = obs.Default().Counter("greenweb_runtime_sweep_memo_hits_total",
		"SelectWithin calls answered from the memoized sweep result")
	obsMemoMisses = obs.Default().Counter("greenweb_runtime_sweep_memo_misses_total",
		"SelectWithin calls that re-ran the configuration sweep")
)

// AssumedMicroArchRatio is the runtime's built-in estimate of how many
// little-core cycles correspond to one big-core cycle. The paper's runtime
// hard-codes statically profiled hardware characteristics (Sec. 6.2); this
// plays that role for the cycle ratio, letting two profiling runs identify
// a three-parameter model.
const AssumedMicroArchRatio = 1.8

// modelPhase tracks how far a per-event-class model has been identified.
type modelPhase int

const (
	// needPeakProfile: next frame runs at the peak configuration.
	needPeakProfile modelPhase = iota
	// needMinProfile: next frame runs at the minimum configuration.
	needMinProfile
	// ready: the model predicts and adapts.
	ready
)

// Model is the per-event-class performance/energy model. An event class is
// one (element, event) pair: repeated occurrences of the same interaction
// share and refine one model, and a continuous event's frames train it
// frame over frame.
type Model struct {
	Key string
	Ann qos.Annotation

	phase modelPhase
	s1    profileSample // first profiling measurement

	// Identified parameters (Equ. 1), in seconds / big-core cycles.
	tIndep float64
	nBig   float64

	// bias shifts the selected configuration up the performance order when
	// feedback observed violations (+1 per step).
	bias int
	// consecutive mispredictions; reaching the runtime's limit triggers
	// re-profiling.
	mispredicts int
	ratio       float64

	// Frame accounting for frameless-class detection: an annotated event
	// whose dispatches complete without ever producing a frame (a
	// touchend listener that only updates bookkeeping state, say) has no
	// frame latency to optimize, so scheduling for it would pin high
	// configurations for nothing.
	framesSeen  int
	completions int

	// version counts every mutation that can change what SelectWithin
	// returns: re-identification (RecordProfile), Reset, and bias steps
	// from Feedback. The memoized sweep below is keyed on it.
	version int
	sel     selMemo

	// Per-stage critical-path and total cycle observations from staged
	// frame production (stage.go). stageVersion counts their mutations so
	// the stage-vector memo can key on them without invalidating the
	// uniform sweep memo above.
	stageValid   bool
	stageCrit    [NumStages]float64
	stageTotal   [NumStages]float64
	stageVersion int
	stageSel     stageSelMemo
}

// selMemo caches the last SelectWithin result. The runtime issues the same
// sweep on every steady-state frame of a continuous event — same model
// state, deadline, safety, ceiling, power model — so a single entry keyed on
// those inputs collapses the per-frame sweep of the whole configuration
// space to a comparison.
type selMemo struct {
	valid    bool
	version  int
	deadline sim.Duration
	safety   float64
	ceiling  acmp.Config
	pm       *acmp.PowerModel
	result   acmp.Config
}

// SawFrame records that a frame was attributed to this class.
func (m *Model) SawFrame() { m.framesSeen++ }

// SawCompletion records that an event of this class completed.
func (m *Model) SawCompletion() { m.completions++ }

// Frameless reports whether the class has completed at least once without
// any frame ever being attributed to it.
func (m *Model) Frameless() bool { return m.completions >= 1 && m.framesSeen == 0 }

// NewModel returns an unidentified model for an annotation.
func NewModel(key string, ann qos.Annotation) *Model {
	return &Model{Key: key, Ann: ann, ratio: AssumedMicroArchRatio}
}

// Ready reports whether the model has been identified.
func (m *Model) Ready() bool { return m.phase == ready }

// profileSample is one measured (configuration, latency) pair.
type profileSample struct {
	latency sim.Duration
	cfg     acmp.Config
}

// ProfilingConfig returns the configuration the next profiling frame should
// run at, and ok=false if profiling is complete. The runtime requests the
// overall peak then the overall minimum — the best-conditioned pair for
// solving Equ. 1 — but concurrent in-flight events may override the actual
// executed configuration, so identification accepts samples from whatever
// really ran (see RecordProfile).
func (m *Model) ProfilingConfig() (acmp.Config, bool) {
	switch m.phase {
	case needPeakProfile:
		return acmp.PeakConfig(), true
	case needMinProfile:
		return acmp.LowestConfig(), true
	default:
		return acmp.Config{}, false
	}
}

// kOf is the per-cycle slowdown of a configuration relative to big-core
// cycles: T = T_ind + N_big · k(cfg).
func (m *Model) kOf(cfg acmp.Config) float64 {
	k := 1.0 / cfg.HzF()
	if cfg.Cluster == acmp.Little {
		k *= m.ratio
	}
	return k
}

// RecordProfile feeds a profiling measurement taken at the configuration
// the frame actually executed at. Once two samples at distinct speeds
// exist, the model solves Equ. 1:
//
//	T1 = T_ind + N_big·k(cfg1)
//	T2 = T_ind + N_big·k(cfg2)
//
// If the second sample ran at the same speed as the first (a concurrent
// event pinned the configuration), the fresher measurement replaces the
// first and identification keeps waiting.
func (m *Model) RecordProfile(latency sim.Duration, cfg acmp.Config) {
	m.Invalidate()
	switch m.phase {
	case needPeakProfile:
		m.s1 = profileSample{latency, cfg}
		m.phase = needMinProfile
	case needMinProfile:
		if m.kOf(cfg) == m.kOf(m.s1.cfg) {
			m.s1 = profileSample{latency, cfg}
			return
		}
		m.solve(profileSample{latency, cfg})
		m.phase = ready
	}
}

func (m *Model) solve(s2 profileSample) {
	k1, k2 := m.kOf(m.s1.cfg), m.kOf(s2.cfg)
	t1, t2 := m.s1.latency.Seconds(), s2.latency.Seconds()
	n := (t2 - t1) / (k2 - k1)
	if n < 0 {
		n = 0
	}
	m.nBig = n
	m.tIndep = t1 - n*k1
	if m.tIndep < 0 {
		m.tIndep = 0
	}
}

// Params exposes the identified (T_independent, N_nonoverlap-big) pair for
// inspection and tests.
func (m *Model) Params() (tIndepSec float64, nBigCycles float64) {
	return m.tIndep, m.nBig
}

// cycles reports the model's cycle estimate on a cluster.
func (m *Model) cycles(c acmp.Cluster) float64 {
	if c == acmp.Big {
		return m.nBig
	}
	return m.nBig * m.ratio
}

// Predict estimates the frame latency at a configuration (Equ. 1).
func (m *Model) Predict(cfg acmp.Config) sim.Duration {
	t := m.tIndep + m.cycles(cfg.Cluster)/cfg.HzF()
	return sim.Duration(t*1e6 + 0.5)
}

// PredictEnergy estimates the frame's CPU energy at a configuration over a
// horizon (the QoS deadline): active power while computing, idle power for
// the remainder (race-to-idle accounting).
func (m *Model) PredictEnergy(cfg acmp.Config, pm *acmp.PowerModel, horizon sim.Duration) acmp.Joules {
	tCPU := m.cycles(cfg.Cluster) / cfg.HzF()
	busy := acmp.Joules(float64(pm.CoreActive(cfg)+pm.ClusterStatic(cfg)) * tCPU)
	rest := horizon.Seconds() - tCPU
	if rest < 0 {
		rest = 0
	}
	idle := acmp.Joules(float64(pm.Sleep(cfg.Cluster)) * rest)
	return busy + idle
}

// Select sweeps every execution configuration (Sec. 6.2: "the GreenWeb
// runtime sweeps all possible core and frequency combinations") and returns
// the minimum-energy configuration whose predicted latency meets the
// deadline scaled by safety (< 1 leaves headroom). If none meets it, the
// peak configuration is returned. Feedback bias shifts the result up the
// performance order.
func (m *Model) Select(deadline sim.Duration, pm *acmp.PowerModel, safety float64) acmp.Config {
	return m.SelectWithin(deadline, pm, safety, acmp.PeakConfig())
}

// SelectWithin is Select restricted to configurations at or below ceiling —
// the legal operating range while the thermal governor caps the frequency.
// When no legal configuration meets the deadline, the ceiling itself (the
// best QoS available under the cap) is returned, and the feedback bias
// never steps past it.
func (m *Model) SelectWithin(deadline sim.Duration, pm *acmp.PowerModel, safety float64, ceiling acmp.Config) acmp.Config {
	if m.sel.valid && m.sel.version == m.version &&
		m.sel.deadline == deadline && m.sel.safety == safety &&
		m.sel.ceiling == ceiling && m.sel.pm == pm {
		obsMemoHits.Inc()
		return m.sel.result
	}
	obsMemoMisses.Inc()
	bound := sim.Duration(float64(deadline) * safety)
	ceilIdx := ceiling.Index()
	best := ceiling
	bestE := acmp.Joules(-1)
	for i := 0; i <= ceilIdx; i++ {
		cfg := acmp.ConfigAt(i)
		if m.Predict(cfg) > bound {
			continue
		}
		e := m.PredictEnergy(cfg, pm, deadline)
		if bestE < 0 || e < bestE {
			best, bestE = cfg, e
		}
	}
	for i := 0; i < m.bias; i++ {
		up, ok := best.StepUp()
		if !ok || up.Index() > ceilIdx {
			break
		}
		best = up
	}
	m.sel = selMemo{true, m.version, deadline, safety, ceiling, pm, best}
	return best
}

// Invalidate drops the memoized sweep result and marks the model mutated.
// Every state change that can alter selection calls it; external callers
// that import models wholesale (Runtime.ImportModels) call it defensively.
func (m *Model) Invalidate() {
	m.version++
	m.sel.valid = false
}

// Feedback digests a measured frame latency against the deadline and the
// model's last prediction for the executed configuration. Under-prediction
// (a QoS violation) steps the bias up; comfortable over-prediction steps it
// back down. It reports needReprofile=true when consecutive mispredictions
// exceed limit, at which point the caller resets the model (Sec. 6.2:
// "initiates new profilings to recalibrate").
func (m *Model) Feedback(measured, deadline sim.Duration, executed acmp.Config, limit int) (violated, needReprofile bool) {
	if m.phase != ready {
		return false, false
	}
	predicted := m.Predict(executed)
	switch {
	case measured > deadline:
		m.bias++
		m.Invalidate()
		m.mispredicts++
	case predicted > 0 && measured*2 < predicted:
		// Model grossly over-predicts: also a misprediction, opposite sign.
		if m.bias > 0 {
			m.bias--
			m.Invalidate()
		}
		m.mispredicts++
	case measured*2 < deadline && m.bias > 0:
		m.bias--
		m.Invalidate()
		m.mispredicts = 0
	default:
		m.mispredicts = 0
	}
	if m.mispredicts > limit {
		return measured > deadline, true
	}
	return measured > deadline, false
}

// Reset discards identification and returns the model to profiling.
func (m *Model) Reset() {
	m.Invalidate()
	m.phase = needPeakProfile
	m.bias = 0
	m.mispredicts = 0
	m.tIndep = 0
	m.nBig = 0
}

func (m *Model) String() string {
	return fmt.Sprintf("model{%s phase=%d tind=%.3fms nbig=%.0f bias=%d}",
		m.Key, m.phase, m.tIndep*1e3, m.nBig, m.bias)
}
