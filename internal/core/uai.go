package core

import (
	"github.com/wattwiseweb/greenweb/internal/acmp"
	"github.com/wattwiseweb/greenweb/internal/browser"
)

// UAIPolicy implements the user-agent-intervention defense the paper
// sketches in Sec. 8: a developer could mis-annotate events with extreme
// QoS targets — inadvertently as an energy bug or deliberately as an
// attack — forcing the runtime to burn maximal energy. The policy assigns
// each annotated event class an energy budget; once a class has consumed
// its budget, its annotation is ignored and the event is treated as
// unannotated (the runtime's idle configuration applies).
type UAIPolicy struct {
	// BudgetPerClass is the energy each event class may consume across its
	// frames before its annotation is suppressed.
	BudgetPerClass acmp.Joules

	e          *browser.Engine
	spent      map[string]acmp.Joules
	suppressed map[string]bool
}

// NewUAIPolicy returns a policy with the given per-class budget.
func NewUAIPolicy(budget acmp.Joules) *UAIPolicy {
	return &UAIPolicy{
		BudgetPerClass: budget,
		spent:          make(map[string]acmp.Joules),
		suppressed:     make(map[string]bool),
	}
}

func (p *UAIPolicy) attach(e *browser.Engine) { p.e = e }

// Suppressed reports whether the class's annotation is being ignored.
func (p *UAIPolicy) Suppressed(key string) bool { return p.suppressed[key] }

// SuppressedClasses lists all currently suppressed classes.
func (p *UAIPolicy) SuppressedClasses() []string {
	var out []string
	for k, v := range p.suppressed {
		if v {
			out = append(out, k)
		}
	}
	return out
}

// Spent reports the energy attributed to a class so far.
func (p *UAIPolicy) Spent(key string) acmp.Joules { return p.spent[key] }

// chargeFrame attributes a frame's estimated energy to the driving class:
// the CPU power at the frame's configuration times its production time.
// This is an attribution estimate, not a measurement — good enough to catch
// classes ordering maximal performance around the clock.
func (p *UAIPolicy) chargeFrame(key string, fr *browser.FrameResult) {
	if p.e == nil {
		return
	}
	pm := p.e.CPU().PowerModel()
	watts := pm.CoreActive(fr.Config) + pm.ClusterStatic(fr.Config)
	p.spent[key] += acmp.Joules(float64(watts) * fr.ProductionLatency.Seconds())
	if p.BudgetPerClass > 0 && p.spent[key] > p.BudgetPerClass && !p.suppressed[key] {
		p.suppressed[key] = true
	}
}
