package core

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/wattwiseweb/greenweb/internal/acmp"
	"github.com/wattwiseweb/greenweb/internal/qos"
	"github.com/wattwiseweb/greenweb/internal/sim"
)

// synthLatency computes the ground-truth latency of a synthetic workload
// with the given parameters at a configuration, assuming the runtime's
// cycle-ratio assumption holds.
func synthLatency(tIndepSec, nBig float64, cfg acmp.Config) sim.Duration {
	cycles := nBig
	if cfg.Cluster == acmp.Little {
		cycles *= AssumedMicroArchRatio
	}
	return sim.Duration((tIndepSec+cycles/cfg.HzF())*1e6 + 0.5)
}

func identifiedModel(t *testing.T, tIndepSec, nBig float64) *Model {
	t.Helper()
	m := NewModel("k", qos.Annotation{Type: qos.Continuous, Target: qos.ContinuousTarget})
	cfg, ok := m.ProfilingConfig()
	if !ok || cfg != acmp.PeakConfig() {
		t.Fatalf("first profile config = %v, %v", cfg, ok)
	}
	m.RecordProfile(synthLatency(tIndepSec, nBig, acmp.PeakConfig()), acmp.PeakConfig())
	cfg, ok = m.ProfilingConfig()
	if !ok || cfg != acmp.LowestConfig() {
		t.Fatalf("second profile config = %v, %v", cfg, ok)
	}
	m.RecordProfile(synthLatency(tIndepSec, nBig, acmp.LowestConfig()), acmp.LowestConfig())
	if !m.Ready() {
		t.Fatal("model not ready after two profiles")
	}
	return m
}

func TestModelIdentifiesParameters(t *testing.T) {
	m := identifiedModel(t, 0.002, 8e6) // 2 ms indep, 8M big cycles
	tind, nbig := m.Params()
	if math.Abs(tind-0.002) > 1e-4 {
		t.Fatalf("tIndep = %v, want 0.002", tind)
	}
	if math.Abs(nbig-8e6)/8e6 > 0.02 {
		t.Fatalf("nBig = %v, want 8e6", nbig)
	}
}

// Property: for any synthetic workload, the identified model predicts every
// configuration's latency to within quantization error.
func TestPropertyModelRecoversLatencies(t *testing.T) {
	f := func(tRaw, nRaw uint16) bool {
		tIndep := float64(tRaw%50) / 1e3    // 0–49 ms
		nBig := float64(nRaw%200)*1e5 + 1e5 // 0.1M–20M cycles
		m := NewModel("k", qos.Annotation{Type: qos.Continuous, Target: qos.ContinuousTarget})
		m.RecordProfile(synthLatency(tIndep, nBig, acmp.PeakConfig()), acmp.PeakConfig())
		m.RecordProfile(synthLatency(tIndep, nBig, acmp.LowestConfig()), acmp.LowestConfig())
		for _, cfg := range acmp.Configs() {
			want := synthLatency(tIndep, nBig, cfg)
			got := m.Predict(cfg)
			diff := got - want
			if diff < 0 {
				diff = -diff
			}
			// Tolerance: quantization of the two profile measurements.
			if diff > 50*sim.Microsecond+want/100 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSelectMeetsDeadlineMinimizingEnergy(t *testing.T) {
	pm := acmp.DefaultPower()
	// Light workload: 1M big cycles, no indep — feasible everywhere.
	m := identifiedModel(t, 0, 1e6)
	cfg := m.Select(100*sim.Millisecond, pm, 0.9)
	if cfg != acmp.LowestConfig() {
		t.Fatalf("light workload config = %v, want lowest", cfg)
	}
	// Heavy workload: 20M big cycles. At little@350 that's 36M/350MHz ≈
	// 103 ms — infeasible for a 33 ms deadline, feasible for big.
	m2 := identifiedModel(t, 0, 20e6)
	cfg2 := m2.Select(33300*sim.Microsecond, pm, 0.9)
	if m2.Predict(cfg2) > 30*sim.Millisecond {
		t.Fatalf("selected %v misses deadline: %v", cfg2, m2.Predict(cfg2))
	}
	// And it must be the cheapest feasible one: every cheaper config
	// must miss the deadline.
	for _, c := range acmp.Configs() {
		if c.Index() >= cfg2.Index() {
			break
		}
		if m2.Predict(c) <= sim.Duration(0.9*float64(33300*sim.Microsecond)) &&
			m2.PredictEnergy(c, pm, 33300*sim.Microsecond) < m2.PredictEnergy(cfg2, pm, 33300*sim.Microsecond) {
			t.Fatalf("cheaper feasible config %v overlooked (picked %v)", c, cfg2)
		}
	}
}

func TestSelectInfeasibleReturnsPeak(t *testing.T) {
	pm := acmp.DefaultPower()
	// Enormous workload: nothing meets a 16 ms deadline.
	m := identifiedModel(t, 0.020, 100e6)
	if cfg := m.Select(16600*sim.Microsecond, pm, 0.9); cfg != acmp.PeakConfig() {
		t.Fatalf("infeasible deadline config = %v, want peak", cfg)
	}
}

func TestSelectScenarioChangesChoice(t *testing.T) {
	pm := acmp.DefaultPower()
	// Sized so the imperceptible target (16.6 ms) needs big but the usable
	// target (33.3 ms) fits little — the paper's central trade-off.
	m := identifiedModel(t, 0.002, 9e6)
	ti := m.Select(16600*sim.Microsecond, pm, 0.9)
	tu := m.Select(33300*sim.Microsecond, pm, 0.9)
	if ti.Cluster != acmp.Big {
		t.Fatalf("TI config = %v, want big cluster (little@600 predict=%v)", ti, m.Predict(acmp.Config{Cluster: acmp.Little, MHz: 600}))
	}
	if tu.Cluster != acmp.Little {
		t.Fatalf("TU config = %v, want little cluster", tu)
	}
}

func TestFeedbackStepsUpOnViolation(t *testing.T) {
	pm := acmp.DefaultPower()
	m := identifiedModel(t, 0, 5e6)
	deadline := 33300 * sim.Microsecond
	before := m.Select(deadline, pm, 0.9)
	// Report a violation: measured latency above deadline.
	violated, reprofile := m.Feedback(40*sim.Millisecond, deadline, before, 3)
	if !violated || reprofile {
		t.Fatalf("violated=%v reprofile=%v", violated, reprofile)
	}
	after := m.Select(deadline, pm, 0.9)
	if after.Index() <= before.Index() {
		t.Fatalf("config did not step up: %v → %v", before, after)
	}
}

func TestFeedbackStepsDownWhenComfortable(t *testing.T) {
	pm := acmp.DefaultPower()
	m := identifiedModel(t, 0, 5e6)
	deadline := 33300 * sim.Microsecond
	m.Feedback(40*sim.Millisecond, deadline, m.Select(deadline, pm, 0.9), 5) // bias 1
	up := m.Select(deadline, pm, 0.9)
	// Now a comfortably fast frame: bias decays.
	m.Feedback(5*sim.Millisecond, deadline, up, 5)
	down := m.Select(deadline, pm, 0.9)
	if down.Index() >= up.Index() {
		t.Fatalf("bias did not decay: %v → %v", up, down)
	}
}

func TestFeedbackTriggersReprofile(t *testing.T) {
	m := identifiedModel(t, 0, 5e6)
	deadline := 33300 * sim.Microsecond
	cfg := acmp.PeakConfig()
	var reprofile bool
	for i := 0; i < 10 && !reprofile; i++ {
		_, reprofile = m.Feedback(50*sim.Millisecond, deadline, cfg, 3)
	}
	if !reprofile {
		t.Fatal("consecutive violations never triggered re-profiling")
	}
	m.Reset()
	if m.Ready() {
		t.Fatal("Reset did not return model to profiling")
	}
	if _, ok := m.ProfilingConfig(); !ok {
		t.Fatal("no profiling config after reset")
	}
}

func TestPredictEnergyMonotoneInHorizon(t *testing.T) {
	pm := acmp.DefaultPower()
	m := identifiedModel(t, 0, 5e6)
	cfg := acmp.Config{Cluster: acmp.Big, MHz: 1000}
	e1 := m.PredictEnergy(cfg, pm, 20*sim.Millisecond)
	e2 := m.PredictEnergy(cfg, pm, 200*sim.Millisecond)
	if e2 <= e1 {
		t.Fatalf("longer horizon must cost more idle energy: %v vs %v", e1, e2)
	}
}

func TestModelString(t *testing.T) {
	m := identifiedModel(t, 0.001, 1e6)
	if len(m.String()) == 0 {
		t.Fatal("empty String")
	}
}

func TestDegenerateProfilesClamp(t *testing.T) {
	// Measured min-config latency faster than peak (noise): parameters
	// clamp to zero rather than going negative.
	m := NewModel("k", qos.Annotation{Type: qos.Single, Target: qos.SingleShortTarget})
	m.RecordProfile(10*sim.Millisecond, acmp.PeakConfig())
	m.RecordProfile(5*sim.Millisecond, acmp.LowestConfig())
	tind, nbig := m.Params()
	if nbig < 0 || tind < 0 {
		t.Fatalf("negative parameters: %v %v", tind, nbig)
	}
	for _, cfg := range acmp.Configs() {
		if m.Predict(cfg) < 0 {
			t.Fatalf("negative prediction at %v", cfg)
		}
	}
}

func TestSelectWithinRespectsCeiling(t *testing.T) {
	pm := acmp.DefaultPower()
	ceiling := acmp.Config{Cluster: acmp.Big, MHz: 1100}

	// Infeasible-under-cap workload: the unconstrained sweep would return
	// the peak, the capped sweep must settle for the ceiling itself.
	heavy := identifiedModel(t, 0.020, 100e6)
	if cfg := heavy.SelectWithin(16600*sim.Microsecond, pm, 0.9, ceiling); cfg != ceiling {
		t.Fatalf("infeasible capped config = %v, want ceiling %v", cfg, ceiling)
	}

	// Light workload: the cap changes nothing.
	light := identifiedModel(t, 0, 1e6)
	if cfg := light.SelectWithin(100*sim.Millisecond, pm, 0.9, ceiling); cfg != acmp.LowestConfig() {
		t.Fatalf("light capped config = %v, want lowest", cfg)
	}

	// No selection ever lands above the ceiling, for any ceiling.
	for _, ceil := range acmp.Configs() {
		cfg := heavy.SelectWithin(16600*sim.Microsecond, pm, 0.9, ceil)
		if cfg.Index() > ceil.Index() {
			t.Fatalf("SelectWithin(%v) returned %v above the ceiling", ceil, cfg)
		}
	}
}

func TestSelectWithinBiasStopsAtCeiling(t *testing.T) {
	pm := acmp.DefaultPower()
	ceiling := acmp.Config{Cluster: acmp.Big, MHz: 1100}
	m := identifiedModel(t, 0, 1e6)
	// Pile up violations so the bias wants to push far up the order.
	for i := 0; i < 20; i++ {
		m.Feedback(200*sim.Millisecond, 100*sim.Millisecond, acmp.LowestConfig(), 1000)
	}
	if cfg := m.Select(100*sim.Millisecond, pm, 0.9); cfg != acmp.PeakConfig() {
		t.Fatalf("unconstrained biased config = %v, want peak", cfg)
	}
	if cfg := m.SelectWithin(100*sim.Millisecond, pm, 0.9, ceiling); cfg != ceiling {
		t.Fatalf("capped biased config = %v, want bias to stop at ceiling %v", cfg, ceiling)
	}
}
