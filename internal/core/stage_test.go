package core

import (
	"testing"

	"github.com/wattwiseweb/greenweb/internal/acmp"
	"github.com/wattwiseweb/greenweb/internal/browser"
	"github.com/wattwiseweb/greenweb/internal/qos"
	"github.com/wattwiseweb/greenweb/internal/sim"
)

// readyStageModel identifies a model from two synthetic profiling samples
// and feeds it one staged frame observation with the given per-stage
// critical-path cycles (totals are workers× the critical path, as an even
// shard split produces).
func readyStageModel(t *testing.T, crit [NumStages]int64, workers int64) *Model {
	t.Helper()
	m := NewModel("test", qos.Annotation{Type: qos.Continuous, Target: qos.ContinuousTarget})
	var nBig int64
	for _, c := range crit {
		nBig += c
	}
	peak, low := acmp.PeakConfig(), acmp.LowestConfig()
	lat := func(cfg acmp.Config) sim.Duration {
		return sim.Duration(float64(nBig)*m.kOf(cfg)*1e6 + 0.5)
	}
	m.RecordProfile(lat(peak), peak)
	m.RecordProfile(lat(low), low)
	if !m.Ready() {
		t.Fatal("model not ready after two profiles")
	}
	var stages []browser.StageTiming
	for s := 0; s < NumStages; s++ {
		stages = append(stages, browser.StageTiming{
			Stage:       browser.RenderStage(s),
			TotalCycles: crit[s] * workers,
			CritCycles:  crit[s],
		})
	}
	m.RecordStages(stages)
	return m
}

func TestSelectStageVectorUniformWithoutStageData(t *testing.T) {
	m := NewModel("test", qos.Annotation{Type: qos.Continuous, Target: qos.ContinuousTarget})
	if _, ok := m.SelectStageVector(16600, acmp.DefaultPower(), 0.9, acmp.PeakConfig()); ok {
		t.Fatal("unidentified model must not produce a vector")
	}
	peak, low := acmp.PeakConfig(), acmp.LowestConfig()
	m.RecordProfile(10*sim.Millisecond, peak)
	m.RecordProfile(40*sim.Millisecond, low)
	pm := acmp.DefaultPower()
	deadline := sim.Duration(16600)
	vec, ok := m.SelectStageVector(deadline, pm, 0.9, acmp.PeakConfig())
	if !ok {
		t.Fatal("ready model must produce a vector")
	}
	if !vec.Uniform() {
		t.Fatalf("no stage observations yet: vector must be uniform, got %v", vec)
	}
	if base := m.SelectWithin(deadline, pm, 0.9, acmp.PeakConfig()); vec[0] != base {
		t.Fatalf("uniform vector %v != SelectWithin base %v", vec[0], base)
	}
}

func TestSelectStageVectorFeasibleAndNoWorse(t *testing.T) {
	// ~22.4 M critical-path cycles: tight against the 16.6 ms deadline at
	// high rungs, so the uniform answer lands near the top of the ladder
	// with sub-rung slack for single-stage step-downs to spend.
	m := readyStageModel(t, [NumStages]int64{6_600_000, 9_900_000, 5_900_000}, 4)
	pm := acmp.DefaultPower()
	deadline := 16600 * sim.Microsecond
	ceiling := acmp.PeakConfig()

	base := m.SelectWithin(deadline, pm, 0.9, ceiling)
	vec, ok := m.SelectStageVector(deadline, pm, 0.9, ceiling)
	if !ok {
		t.Fatal("ready model must produce a vector")
	}
	var uniform StageVector
	for s := range uniform {
		uniform[s] = base
	}
	bound := sim.Duration(float64(deadline) * 0.9).Seconds()
	if got := m.stagePredictSeconds(base, vec); got > bound {
		t.Fatalf("selected vector predicted %.6fs over bound %.6fs", got, bound)
	}
	eVec := m.stageEnergyScore(base, vec, pm, deadline)
	eUni := m.stageEnergyScore(base, uniform, pm, deadline)
	if eVec > eUni {
		t.Fatalf("vector energy %.9f worse than uniform %.9f", eVec, eUni)
	}
	// Every stage stays within the ceiling and at-or-below the base: the
	// descent only steps down.
	for s, cfg := range vec {
		if cfg.Index() > base.Index() {
			t.Fatalf("stage %d config %v above base %v", s, cfg, base)
		}
	}

	// Determinism + memo: an identical query returns the identical vector.
	again, _ := m.SelectStageVector(deadline, pm, 0.9, ceiling)
	if again != vec {
		t.Fatalf("repeat query diverged: %v vs %v", vec, again)
	}
}

func TestSelectStageVectorRespectsBiasAndDegradedCeiling(t *testing.T) {
	m := readyStageModel(t, [NumStages]int64{6_600_000, 9_900_000, 5_900_000}, 4)
	pm := acmp.DefaultPower()
	deadline := 16600 * sim.Microsecond

	// Feedback bias up (a violation) forces the uniform vector: slack
	// spending is reserved for healthy classes.
	m.bias = 1
	m.Invalidate()
	vec, ok := m.SelectStageVector(deadline, pm, 0.9, acmp.PeakConfig())
	if !ok || !vec.Uniform() {
		t.Fatalf("biased class must schedule uniformly, got %v (ok=%v)", vec, ok)
	}
	m.bias = 0
	m.Invalidate()

	// A thermal ceiling clamps every stage of the vector.
	ceiling := acmp.Config{Cluster: acmp.Big, MHz: 1000}
	vec, ok = m.SelectStageVector(deadline, pm, 0.9, ceiling)
	if !ok {
		t.Fatal("no vector under ceiling")
	}
	for s, cfg := range vec {
		if cfg.Index() > ceiling.Index() {
			t.Fatalf("stage %d config %v above ceiling %v", s, cfg, ceiling)
		}
	}
}

func TestRecordStagesVersioning(t *testing.T) {
	m := readyStageModel(t, [NumStages]int64{1_000_000, 2_000_000, 3_000_000}, 2)
	crit, total, ok := m.StageParams()
	if !ok {
		t.Fatal("stage params not recorded")
	}
	if crit[1] != 2_000_000 || total[1] != 4_000_000 {
		t.Fatalf("unexpected stage params: crit=%v total=%v", crit, total)
	}
	v0 := m.stageVersion
	// Re-recording identical observations must not invalidate anything.
	var stages []browser.StageTiming
	for s := 0; s < NumStages; s++ {
		stages = append(stages, browser.StageTiming{
			Stage:       browser.RenderStage(s),
			TotalCycles: int64(total[s]),
			CritCycles:  int64(crit[s]),
		})
	}
	m.RecordStages(stages)
	if m.stageVersion != v0 {
		t.Fatal("identical re-record bumped stageVersion")
	}
	// A changed observation bumps the stage version but not the sweep memo's.
	selV := m.version
	stages[0].CritCycles *= 2
	stages[0].TotalCycles *= 2
	m.RecordStages(stages)
	if m.stageVersion == v0 {
		t.Fatal("changed record did not bump stageVersion")
	}
	if m.version != selV {
		t.Fatal("stage record must not invalidate the uniform sweep memo")
	}
	// Incomplete or out-of-range observations are ignored.
	m2 := readyStageModel(t, [NumStages]int64{1, 2, 3}, 1)
	v0 = m2.stageVersion
	m2.RecordStages([]browser.StageTiming{{Stage: browser.StageStyle, CritCycles: 9, TotalCycles: 9}})
	m2.RecordStages([]browser.StageTiming{{Stage: browser.RenderStage(99)}})
	if m2.stageVersion != v0 {
		t.Fatal("partial observation mutated the model")
	}
}
