package core

import (
	"testing"

	"github.com/wattwiseweb/greenweb/internal/acmp"
	"github.com/wattwiseweb/greenweb/internal/qos"
	"github.com/wattwiseweb/greenweb/internal/sim"
)

// referenceSelectWithin recomputes the sweep from scratch, bypassing the
// memo — the oracle the cached path must always agree with.
func referenceSelectWithin(m *Model, deadline sim.Duration, pm *acmp.PowerModel, safety float64, ceiling acmp.Config) acmp.Config {
	bound := sim.Duration(float64(deadline) * safety)
	ceilIdx := ceiling.Index()
	best := ceiling
	bestE := acmp.Joules(-1)
	for _, cfg := range acmp.Configs() {
		if cfg.Index() > ceilIdx {
			break
		}
		if m.Predict(cfg) > bound {
			continue
		}
		e := m.PredictEnergy(cfg, pm, deadline)
		if bestE < 0 || e < bestE {
			best, bestE = cfg, e
		}
	}
	for i := 0; i < m.bias; i++ {
		up, ok := best.StepUp()
		if !ok || up.Index() > ceilIdx {
			break
		}
		best = up
	}
	return best
}

func checkAgainstReference(t *testing.T, m *Model, deadline sim.Duration, pm *acmp.PowerModel, ceiling acmp.Config, context string) acmp.Config {
	t.Helper()
	got := m.SelectWithin(deadline, pm, 0.9, ceiling)
	want := referenceSelectWithin(m, deadline, pm, 0.9, ceiling)
	if got != want {
		t.Fatalf("%s: SelectWithin = %v, reference sweep = %v", context, got, want)
	}
	return got
}

// TestSweepMemoInvalidation warms the memo, then mutates the model through
// every invalidating path and asserts the next selection is recomputed (it
// matches a from-scratch reference sweep, never a stale cached value).
func TestSweepMemoInvalidation(t *testing.T) {
	ann := qos.Annotation{Event: "click", Type: qos.Single, Target: qos.SingleShortTarget}
	m := NewModel("t@click", ann)
	m.RecordProfile(12*sim.Millisecond, acmp.PeakConfig())
	m.RecordProfile(90*sim.Millisecond, acmp.LowestConfig())
	pm := acmp.DefaultPower()
	deadline := 100 * sim.Millisecond
	ceiling := acmp.PeakConfig()

	warm := checkAgainstReference(t, m, deadline, pm, ceiling, "warmup")
	if !m.sel.valid {
		t.Fatal("memo not filled after a sweep")
	}

	// Changed key parts must miss the memo even with an unchanged model.
	checkAgainstReference(t, m, deadline/2, pm, ceiling, "changed deadline")
	checkAgainstReference(t, m, deadline, pm, acmp.MaxConfig(acmp.Little), "changed ceiling")
	pm2 := acmp.DefaultPower()
	checkAgainstReference(t, m, deadline, pm2, ceiling, "changed power model")

	// A violation steps the bias: the selection must move up, not replay
	// the cached pre-violation answer.
	checkAgainstReference(t, m, deadline, pm, ceiling, "re-warm")
	v0 := m.version
	m.Feedback(deadline+sim.Millisecond, deadline, warm, 1<<30)
	if m.version == v0 {
		t.Fatal("bias-stepping Feedback did not bump the version")
	}
	biased := checkAgainstReference(t, m, deadline, pm, ceiling, "after violation")
	if biased == warm {
		t.Fatalf("bias step did not change the selection (still %v)", warm)
	}

	// Comfortable frames step the bias back down.
	m.Feedback(deadline/4, deadline, biased, 1<<30)
	checkAgainstReference(t, m, deadline, pm, ceiling, "after bias step-down")

	// Non-bias-changing feedback must NOT invalidate (steady state stays hot).
	v1 := m.version
	m.Feedback(deadline*3/4, deadline, warm, 1<<30)
	if m.version != v1 {
		t.Fatal("neutral Feedback invalidated the memo")
	}

	// Reprofiling re-identifies the model with different parameters; the
	// selection must reflect them.
	m.Reset()
	m.RecordProfile(30*sim.Millisecond, acmp.PeakConfig())
	m.RecordProfile(200*sim.Millisecond, acmp.LowestConfig())
	checkAgainstReference(t, m, deadline, pm, ceiling, "after reprofile")

	// ImportModels defensively invalidates imported models.
	checkAgainstReference(t, m, deadline, pm, ceiling, "pre-import warm")
	if !m.sel.valid {
		t.Fatal("memo not warm before import")
	}
	r := New(Options{})
	r.ImportModels(map[string]*Model{m.Key: m})
	if m.sel.valid {
		t.Fatal("ImportModels did not invalidate the imported model's memo")
	}
	checkAgainstReference(t, m, deadline, pm, ceiling, "after import")
}
