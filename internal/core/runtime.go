package core

import (
	"fmt"
	"strings"

	"github.com/wattwiseweb/greenweb/internal/acmp"
	"github.com/wattwiseweb/greenweb/internal/browser"
	"github.com/wattwiseweb/greenweb/internal/dom"
	"github.com/wattwiseweb/greenweb/internal/obs"
	"github.com/wattwiseweb/greenweb/internal/qos"
	"github.com/wattwiseweb/greenweb/internal/sim"
)

// Process-wide runtime counters, labeled by governor (GreenWeb-I vs -U).
// Each Runtime caches its children at Attach so the frame path pays one
// atomic add, never a map lookup.
var (
	obsViolations = obs.Default().CounterVec("greenweb_runtime_qos_violations_total",
		"Frames whose measured latency exceeded the annotation deadline", "governor")
	obsReprofiles = obs.Default().CounterVec("greenweb_runtime_reprofiles_total",
		"Per-class model resets (misprediction streaks, cap divergence, recoveries)", "governor")
	obsDegradations = obs.Default().CounterVec("greenweb_runtime_degradations_total",
		"Classes pinned to Perf-within-cap after consecutive violations", "governor")
	obsRecoveries = obs.Default().CounterVec("greenweb_runtime_recoveries_total",
		"Degraded classes handed back to model control", "governor")
	obsProfilingFrames = obs.Default().CounterVec("greenweb_runtime_profiling_frames_total",
		"Frames executed at a profiling point while identifying a class model", "governor")
	obsPredictedFrames = obs.Default().CounterVec("greenweb_runtime_predicted_frames_total",
		"Frames executed at a model-predicted configuration", "governor")
)

// Options tune the runtime.
type Options struct {
	// Scenario selects TI (imperceptible) or TU (usable) as the deadline.
	Scenario qos.Scenario
	// Safety scales deadlines during selection to leave headroom.
	Safety float64
	// MispredictLimit is the consecutive-misprediction count that triggers
	// re-profiling.
	MispredictLimit int
	// IdleConfig is used when no annotated event is active.
	IdleConfig acmp.Config
	// UAI optionally enables the Sec. 8 mis-annotation defense.
	UAI *UAIPolicy
	// BigOnly/LittleOnly restrict the configuration space to one cluster,
	// modelling the paper's single-cluster DVFS alternative (Sec. 10).
	BigOnly, LittleOnly bool
	// IdleGrace delays the first demotion (to the current cluster's
	// frequency floor) after the last annotated event completes.
	// Interaction events arrive in bursts (a tap is touchstart/touchend/
	// click within ~100 ms); demoting instantly between them would thrash
	// configurations (and pay the switch stalls) for no energy benefit,
	// since an idle CPU sleeps regardless of the programmed frequency.
	IdleGrace sim.Duration
	// DeepIdleAfter is the sustained-idle delay before the second-stage
	// demotion to IdleConfig (migrating off the big cluster), so that
	// unannotated activity arriving much later runs at the low-power
	// default rather than the parked big floor.
	DeepIdleAfter sim.Duration
	// StageAware enables the per-stage configuration dimension (stage.go):
	// when the browser produces frames through the staged pipeline, the
	// runtime prepares a StageVector per frame and re-asserts it at each
	// phase barrier via OnRenderStage. Off, the runtime behaves exactly as
	// before — OnRenderStage becomes a no-op even on a staged engine.
	StageAware bool
	// DegradeAfter is the consecutive-violation count at which a class
	// stops trusting its model and falls back to the best configuration
	// the hardware currently allows (Perf-within-cap) — the last rung of
	// the degradation ladder under thermal throttling or DVFS faults. The
	// class recovers (and reprofiles) after the same count of clean frames.
	DegradeAfter int
	// Trace, when non-nil, receives a line per scheduling decision.
	Trace func(string)
}

// DefaultOptions returns the configuration used in the evaluation.
func DefaultOptions(s qos.Scenario) Options {
	return Options{
		Scenario:        s,
		Safety:          0.9,
		MispredictLimit: 3,
		IdleConfig:      acmp.LowestConfig(),
		IdleGrace:       120 * sim.Millisecond,
		DeepIdleAfter:   800 * sim.Millisecond,
		DegradeAfter:    4,
	}
}

// Stats counts runtime activity for reports and tests.
type Stats struct {
	AnnotatedInputs   int
	UnannotatedInputs int
	ProfilingFrames   int
	PredictedFrames   int
	Violations        int
	Reprofiles        int
	UAISuppressed     int

	// Fault-adversity counters (all zero on an unfaulted device).
	// CapClamps counts sweep results lowered to the thermal ceiling;
	// Degradations counts classes falling back to Perf-within-cap;
	// Recoveries counts degraded classes returning to model control.
	CapClamps    int
	Degradations int
	Recoveries   int
}

// Runtime is the GreenWeb runtime: a browser.Governor that consumes the
// page's QoS annotations and schedules the ACMP per frame.
type Runtime struct {
	opts Options

	e   *browser.Engine
	cpu *acmp.CPU
	pm  *acmp.PowerModel

	models map[string]*Model
	// active maps in-flight annotated input UIDs to their model key.
	active map[browser.UID]string

	idleTimer *sim.Event

	// Degradation-ladder state, per class: consecutive violated frames,
	// consecutive clean frames while degraded, and the degraded flag
	// itself (class pinned to Perf-within-cap).
	violStreak  map[string]int
	cleanStreak map[string]int
	degraded    map[string]bool
	// capDiverge counts consecutive predicted frames whose measured latency
	// drifted far from the model while a thermal cap was active: under a
	// cap the executed configuration may differ from the one the model was
	// trained against (delayed or denied transitions), so sustained drift
	// triggers reprofiling even when no deadline is missed.
	capDiverge map[string]int

	// Per-stage vector for the frame in flight (StageAware only): computed
	// at OnFrameStart, applied at each OnRenderStage barrier. curStageOK
	// gates application so unannotated and profiling frames stay untouched.
	curStageVec StageVector
	curStageOK  bool

	stats Stats

	// Cached obs counter children for this runtime's governor label,
	// resolved once at Attach (see the package-level CounterVecs).
	cViol, cReprof, cDegr, cRecov, cProf, cPred *obs.Counter
}

// New returns a runtime with the given options.
func New(opts Options) *Runtime {
	if opts.Safety <= 0 {
		opts.Safety = 0.9
	}
	if opts.MispredictLimit <= 0 {
		opts.MispredictLimit = 3
	}
	if !opts.IdleConfig.Valid() {
		opts.IdleConfig = acmp.LowestConfig()
	}
	if opts.DegradeAfter <= 0 {
		opts.DegradeAfter = 4
	}
	return &Runtime{
		opts:        opts,
		models:      make(map[string]*Model),
		active:      make(map[browser.UID]string),
		violStreak:  make(map[string]int),
		cleanStreak: make(map[string]int),
		degraded:    make(map[string]bool),
		capDiverge:  make(map[string]int),
	}
}

// Name implements browser.Governor.
func (r *Runtime) Name() string {
	name := "GreenWeb-I"
	if r.opts.Scenario == qos.Usable {
		name = "GreenWeb-U"
	}
	if r.opts.StageAware {
		name += "-staged"
	}
	return name
}

// Stats returns runtime activity counters.
func (r *Runtime) Stats() Stats { return r.stats }

// Options returns the runtime's configuration.
func (r *Runtime) Options() Options { return r.opts }

// Attach implements browser.Governor.
func (r *Runtime) Attach(e *browser.Engine) {
	r.e = e
	r.cpu = e.CPU()
	r.pm = e.CPU().PowerModel()
	gov := r.Name()
	r.cViol = obsViolations.With(gov)
	r.cReprof = obsReprofiles.With(gov)
	r.cDegr = obsDegradations.With(gov)
	r.cRecov = obsRecoveries.With(gov)
	r.cProf = obsProfilingFrames.With(gov)
	r.cPred = obsPredictedFrames.With(gov)
	r.cpu.SetConfig(r.clamp(r.opts.IdleConfig))
	if r.opts.UAI != nil {
		r.opts.UAI.attach(e)
	}
}

// deadline applies the scenario to an annotation's target.
func (r *Runtime) deadline(ann qos.Annotation) sim.Duration {
	return r.opts.Scenario.Deadline(ann.Target)
}

func classKey(target *dom.Node, event string) string {
	path := "#document"
	if target != nil {
		path = target.Path()
	}
	return path + "@" + strings.ToLower(event)
}

// OnInput implements browser.Governor: look up the annotation for the
// event; annotated events get a configuration immediately (profiling or
// predicted) so the callback and frame run at the chosen operating point.
func (r *Runtime) OnInput(in browser.InputRecord, target *dom.Node) {
	node := target
	if node == nil && r.e.Doc() != nil {
		if els := r.e.Doc().GetElementsByTag("body"); len(els) > 0 {
			node = els[0]
		}
	}
	var ann qos.Annotation
	found := false
	if r.e.Annotations() != nil && node != nil {
		ann, found = r.e.Annotations().Lookup(node, in.Event)
	}
	if !found {
		r.stats.UnannotatedInputs++
		return
	}
	if r.opts.UAI != nil && r.opts.UAI.Suppressed(classKey(node, in.Event)) {
		r.stats.UAISuppressed++
		r.stats.UnannotatedInputs++
		return
	}
	r.stats.AnnotatedInputs++

	key := classKey(node, in.Event)
	m, ok := r.models[key]
	if !ok {
		m = NewModel(key, ann)
		r.models[key] = m
	}
	m.Ann = ann
	r.active[in.UID] = key
	r.reschedule()
}

// desired returns the configuration a model currently wants: its next
// profiling point while identifying, the energy-minimal feasible
// configuration once ready — always within the hardware's currently legal
// ceiling, and pinned at that ceiling (Perf-within-cap) while the class is
// degraded.
func (r *Runtime) desired(m *Model) acmp.Config {
	ceiling := r.cpu.Ceiling()
	if r.degraded[m.Key] {
		return ceiling
	}
	if cfg, profiling := m.ProfilingConfig(); profiling {
		return r.capTo(cfg, ceiling)
	}
	return m.SelectWithin(r.deadline(m.Ann), r.pm, r.opts.Safety, ceiling)
}

// capTo re-clamps a configuration to the legal ceiling, counting the clamp
// so reports can show how often the thermal cap bent the schedule.
func (r *Runtime) capTo(cfg, ceiling acmp.Config) acmp.Config {
	if cfg.Index() > ceiling.Index() {
		r.stats.CapClamps++
		return ceiling
	}
	return cfg
}

// reschedule sets the CPU to satisfy every in-flight annotated event: the
// highest-performance configuration any active model wants. A completed
// frame of a lax event must not drag the system below what a concurrent
// stricter event needs (e.g. a tap's touchstart settling on a little
// configuration while its click's heavyweight callback is still running).
func (r *Runtime) reschedule() {
	if len(r.active) == 0 {
		// Demote to the idle configuration only after a grace period:
		// interaction bursts would otherwise thrash the configuration.
		if r.idleTimer != nil {
			r.idleTimer.Cancel()
		}
		if r.opts.IdleGrace <= 0 {
			r.cpu.SetConfig(r.clamp(r.opts.IdleConfig))
			return
		}
		r.idleTimer = r.e.Sim().After(r.opts.IdleGrace, "greenweb:idle", func() {
			if len(r.active) != 0 {
				return
			}
			// Stage 1: park at the current cluster's floor rather than
			// hopping clusters — sleep power is cluster-independent
			// (cpuidle), so migrating immediately would pay switch stalls
			// for nothing and inflate the migration count (cf. Fig. 12,
			// where frequency switches dwarf migrations).
			idle := acmp.MinConfig(r.cpu.Config().Cluster)
			r.tracef("idle demotion to %v", idle)
			r.cpu.SetConfig(r.clamp(idle))
			if r.opts.DeepIdleAfter <= 0 || idle.Cluster == r.opts.IdleConfig.Cluster {
				return
			}
			// Stage 2: after sustained idleness, fall back to the default
			// low-power configuration so late unannotated activity runs
			// cheaply.
			r.idleTimer = r.e.Sim().After(r.opts.DeepIdleAfter, "greenweb:deep-idle", func() {
				if len(r.active) == 0 {
					r.tracef("deep idle to %v", r.opts.IdleConfig)
					r.cpu.SetConfig(r.clamp(r.opts.IdleConfig))
				}
			})
		})
		return
	}
	if r.idleTimer != nil {
		r.idleTimer.Cancel()
		r.idleTimer = nil
	}
	var best acmp.Config
	have := false
	for _, key := range r.active {
		m := r.models[key]
		if m == nil || m.Frameless() {
			continue
		}
		cfg := r.desired(m)
		if !have || cfg.Index() > best.Index() {
			best, have = cfg, true
		}
	}
	if !have {
		best = r.opts.IdleConfig
	}
	r.tracef("reschedule: %v (%d active)", best, len(r.active))
	want := r.clamp(best)
	r.cpu.SetConfig(want)
	if g := r.cpu.Granted(); g != want {
		// An injected DVFS fault denied the transition; the feedback loop
		// will observe the stale configuration on the next frame.
		r.tracef("granted %v for requested %v", g, want)
	}
}

func (r *Runtime) tracef(format string, args ...any) {
	if r.opts.Trace != nil {
		r.opts.Trace(fmt.Sprintf(format, args...))
	}
}

// clamp restricts configurations to one cluster for the single-cluster
// ablation variants.
func (r *Runtime) clamp(cfg acmp.Config) acmp.Config {
	switch {
	case r.opts.BigOnly && cfg.Cluster == acmp.Little:
		return acmp.MinConfig(acmp.Big)
	case r.opts.LittleOnly && cfg.Cluster == acmp.Big:
		return acmp.MaxConfig(acmp.Little)
	default:
		return cfg
	}
}

// driving returns the model governing a frame: among the frame's
// provenance, the active annotated event with the tightest deadline (when
// several events batch into one frame, the strictest constraint must hold).
func (r *Runtime) driving(prov browser.Provenance) *Model {
	var best *Model
	var bestD sim.Duration
	// IDs() iterates in ascending UID order so deadline ties resolve
	// deterministically (map iteration order would not).
	for _, uid := range prov.IDs() {
		key, ok := r.active[uid]
		if !ok {
			continue
		}
		m := r.models[key]
		if m == nil {
			continue
		}
		d := r.deadline(m.Ann)
		if best == nil || d < bestD {
			best, bestD = m, d
		}
	}
	return best
}

// OnFrameStart implements browser.Governor: re-assert the scheduling
// decision for this frame (the runtime operates per frame, Sec. 6.1).
func (r *Runtime) OnFrameStart(seq int, prov browser.Provenance) {
	m := r.driving(prov)
	if m != nil {
		r.reschedule()
	}
	r.annotateFrameStart(m)
	r.prepareStageVector(m)
}

// annotateFrameStart records the scheduling decision on the frame's energy
// span: which class drives the frame, its deadline, and whether the chosen
// configuration is a profiling point or a model prediction.
func (r *Runtime) annotateFrameStart(m *Model) {
	led := r.e.Ledger()
	if led == nil {
		return
	}
	led.AnnotateFrame("governor", r.Name())
	if ceil := r.cpu.Ceiling(); ceil != acmp.PeakConfig() {
		led.AnnotateFrame("thermal_cap", ceil.String())
	}
	if m == nil {
		led.AnnotateFrame("decision", "unannotated")
		return
	}
	led.AnnotateFrame("class", m.Key)
	led.AnnotateFrame("deadline", r.deadline(m.Ann).String())
	cfg := r.cpu.Config()
	if r.degraded[m.Key] {
		led.AnnotateFrame("decision", "degraded@"+cfg.String())
	} else if _, profiling := m.ProfilingConfig(); profiling {
		led.AnnotateFrame("decision", "profile@"+cfg.String())
	} else {
		led.AnnotateFrame("decision", "predict@"+cfg.String())
		led.AnnotateFrame("predicted", m.Predict(cfg).String())
	}
}

// OnFrameEnd implements browser.Governor: feed measured latencies back into
// the driving model — profiling samples while identifying, prediction
// feedback once ready (Sec. 6.2).
func (r *Runtime) OnFrameEnd(fr *browser.FrameResult) {
	// Frame accounting for every active class in the provenance, not just
	// the driving one, so frameless detection stays accurate.
	for uid := range fr.Provenance {
		if key, ok := r.active[uid]; ok {
			if m := r.models[key]; m != nil {
				m.SawFrame()
			}
		}
	}
	m := r.driving(fr.Provenance)
	if m == nil {
		return
	}
	if r.opts.StageAware && len(fr.Stages) > 0 {
		m.RecordStages(fr.Stages)
	}
	measured := r.measuredLatency(m, fr)
	if measured < 0 {
		return
	}
	if r.opts.UAI != nil {
		r.opts.UAI.chargeFrame(m.Key, fr)
		if r.opts.UAI.Suppressed(m.Key) {
			// Mid-event suppression: stop scheduling for this class — its
			// in-flight events are deactivated and the system returns to
			// the idle configuration.
			for uid, key := range r.active {
				if key == m.Key {
					delete(r.active, uid)
				}
			}
			r.stats.UAISuppressed++
			if len(r.active) == 0 {
				r.cpu.SetConfig(r.clamp(r.opts.IdleConfig))
			}
			return
		}
	}
	if r.degraded[m.Key] {
		// Perf-within-cap fallback: the model is out of the loop; only the
		// outcome streak matters (enough clean frames recover the class).
		violated := measured > r.deadline(m.Ann)
		if violated {
			r.stats.Violations++
			r.cViol.Inc()
		}
		r.noteOutcome(m, violated)
		r.annotateFeedback(measured, violated, false, "degraded")
		r.reschedule()
		return
	}
	if !m.Ready() {
		m.RecordProfile(measured, fr.Config)
		r.tracef("profile %s: %v at %v", m.Key, measured, fr.Config)
		r.stats.ProfilingFrames++
		r.cProf.Inc()
		violated := measured > r.deadline(m.Ann)
		if violated {
			r.stats.Violations++
			r.cViol.Inc()
		}
		r.annotateFeedback(measured, violated, false, "profiled")
		// Move to the next profiling point (or first prediction) for any
		// follow-on frames of the same event.
		r.reschedule()
		return
	}
	r.stats.PredictedFrames++
	r.cPred.Inc()
	violated, reprofile := m.Feedback(measured, r.deadline(m.Ann), fr.Config, r.opts.MispredictLimit)
	r.tracef("feedback %s: measured %v vs deadline %v at %v (violated=%v reprofile=%v)",
		m.Key, measured, r.deadline(m.Ann), fr.Config, violated, reprofile)
	if violated {
		r.stats.Violations++
		r.cViol.Inc()
	}
	if !reprofile && r.divergedUnderCap(m, measured, fr.Config) {
		reprofile = true
	}
	if reprofile {
		m.Reset()
		r.stats.Reprofiles++
		r.cReprof.Inc()
		r.capDiverge[m.Key] = 0
	}
	r.noteOutcome(m, violated)
	r.annotateFeedback(measured, violated, reprofile, "predicted")
	r.reschedule()
}

// divergedUnderCap reports whether a thermal cap is active and the measured
// latency has drifted beyond half the model's prediction at the executed
// configuration for more than MispredictLimit consecutive frames. Feedback's
// own misprediction counter only reacts to deadline misses and gross
// over-prediction; under a cap, delayed and denied DVFS transitions make
// frames run partly at a configuration the model never chose, producing
// drift that misses neither trigger yet still means the fit is stale.
func (r *Runtime) divergedUnderCap(m *Model, measured sim.Duration, executed acmp.Config) bool {
	if r.cpu.Ceiling() == acmp.PeakConfig() {
		r.capDiverge[m.Key] = 0
		return false
	}
	pred := m.Predict(executed)
	if pred <= 0 {
		return false
	}
	diff := measured - pred
	if diff < 0 {
		diff = -diff
	}
	if float64(diff) <= 0.5*float64(pred) {
		r.capDiverge[m.Key] = 0
		return false
	}
	r.capDiverge[m.Key]++
	if r.capDiverge[m.Key] <= r.opts.MispredictLimit {
		return false
	}
	r.tracef("reprofile %s: measured %v vs predicted %v diverged under cap %v",
		m.Key, measured, pred, r.cpu.Ceiling())
	return true
}

// noteOutcome advances the degradation ladder for a class: DegradeAfter
// consecutive violated frames pin it to Perf-within-cap; DegradeAfter
// consecutive clean frames while degraded hand control back to the model
// (with a fresh profile — the regime that broke the old fit has passed).
// Both transitions are annotated onto the still-open frame span.
func (r *Runtime) noteOutcome(m *Model, violated bool) {
	key := m.Key
	if violated {
		r.cleanStreak[key] = 0
		// Degradation is the response to a capped machine: while the full
		// configuration space is available, violations are the model's to fix
		// (profiling, reprofiling), not grounds for abandoning it. A class
		// already degraded keeps counting so a cleared cap can still recover.
		if !r.degraded[key] && r.cpu.Ceiling() == acmp.PeakConfig() {
			r.violStreak[key] = 0
			return
		}
		r.violStreak[key]++
		if !r.degraded[key] && r.violStreak[key] >= r.opts.DegradeAfter {
			r.degraded[key] = true
			r.violStreak[key] = 0
			r.stats.Degradations++
			r.cDegr.Inc()
			r.tracef("degrade %s: %d consecutive violations, pinning Perf-within-cap", key, r.opts.DegradeAfter)
			if led := r.e.Ledger(); led != nil {
				led.AnnotateFrame("degrade", fmt.Sprintf("%d consecutive violations", r.opts.DegradeAfter))
			}
		}
		return
	}
	r.violStreak[key] = 0
	if !r.degraded[key] {
		return
	}
	r.cleanStreak[key]++
	if r.cleanStreak[key] >= r.opts.DegradeAfter {
		r.degraded[key] = false
		r.cleanStreak[key] = 0
		r.stats.Recoveries++
		r.cRecov.Inc()
		r.stats.Reprofiles++
		r.cReprof.Inc()
		m.Reset()
		r.tracef("recover %s: %d clean frames, back to model control via reprofiling", key, r.opts.DegradeAfter)
		if led := r.e.Ledger(); led != nil {
			led.AnnotateFrame("recover", fmt.Sprintf("%d clean frames, reprofiling", r.opts.DegradeAfter))
		}
	}
}

// annotateFeedback records the measured-latency feedback outcome on the
// frame's energy span (the frame is still open: the engine closes it after
// OnFrameEnd returns).
func (r *Runtime) annotateFeedback(measured sim.Duration, violated, reprofile bool, mode string) {
	led := r.e.Ledger()
	if led == nil {
		return
	}
	led.AnnotateFrame("measured", measured.String())
	outcome := mode + ":ok"
	if violated {
		outcome = mode + ":violated"
	}
	if reprofile {
		outcome += ",reprofile"
	}
	led.AnnotateFrame("outcome", outcome)
}

// measuredLatency extracts the latency the annotation's QoS type is judged
// by: end-to-end input latency for single (the one response frame),
// per-frame production latency for continuous (every frame in the
// sequence) — paper Sec. 3.2/3.3.
func (r *Runtime) measuredLatency(m *Model, fr *browser.FrameResult) sim.Duration {
	if m.Ann.Type == qos.Continuous {
		return fr.ProductionLatency
	}
	for _, il := range fr.Inputs {
		if key, ok := r.active[il.Input.UID]; ok && key == m.Key {
			return il.Latency
		}
	}
	return -1
}

// OnEventComplete implements browser.Governor: once an event's transitive
// closure is exhausted the system conserves energy ("allocate just enough
// energy to produce the single response frame and conserve energy
// afterwards", Sec. 3.2).
func (r *Runtime) OnEventComplete(uid browser.UID) {
	key, ok := r.active[uid]
	if !ok {
		return
	}
	if m := r.models[key]; m != nil {
		m.SawCompletion()
	}
	delete(r.active, uid)
	r.reschedule()
}

// Models exposes the per-class models (for tests and the ablation bench).
func (r *Runtime) Models() map[string]*Model { return r.models }

// ExportModels returns the trained per-class models so they can seed a
// later run (the paper repeats each experiment three times on a device
// whose runtime retains its models; see ImportModels).
func (r *Runtime) ExportModels() map[string]*Model {
	out := make(map[string]*Model, len(r.models))
	for k, m := range r.models {
		out[k] = m
	}
	return out
}

// ImportModels seeds the runtime with previously trained models. Each
// imported model's memoized sweep is invalidated: the importing runtime may
// pass a different power model or thermal ceiling than the one the cache
// was filled under.
func (r *Runtime) ImportModels(ms map[string]*Model) {
	for k, m := range ms {
		m.Invalidate()
		r.models[k] = m
	}
}

func (r *Runtime) String() string {
	return fmt.Sprintf("%s{models=%d active=%d}", r.Name(), len(r.models), len(r.active))
}
