package core

// Per-stage configuration vectors (the PR 9 scheduling dimension). When the
// browser produces frames through the staged pipeline (internal/browser's
// stage graph), the runtime no longer has to pick ONE configuration for the
// whole frame: each render phase — style, layout, paint — starts at a phase
// barrier where every stage core is momentarily idle, so the configuration
// can change there, paying exactly the hardware's frequency-switch (and
// migration) stall. A config therefore generalizes from a scalar to a
// per-stage assignment vector.
//
// Why a vector can beat the best scalar at equal QoS: SelectWithin's uniform
// answer is quantized to the DVFS ladder, so the chosen rung typically leaves
// slack between the predicted latency and the deadline bound — slack the
// whole frame pays peak power for. A vector can spend that slack on ONE
// phase (step just the style phase down a rung, say) while the others stay
// put, recovering energy the scalar ladder cannot express. The selector
// below is a deterministic greedy descent from the uniform answer that
// accepts only feasible, strictly energy-decreasing single-stage step-downs,
// with the boundary switch stalls priced into both latency and energy.

import (
	"strings"

	"github.com/wattwiseweb/greenweb/internal/acmp"
	"github.com/wattwiseweb/greenweb/internal/browser"
	"github.com/wattwiseweb/greenweb/internal/obs"
	"github.com/wattwiseweb/greenweb/internal/sim"
)

// NumStages is the number of staged render phases a vector assigns.
const NumStages = browser.NumRenderStages

// Stage-vector memo effectiveness, the per-stage analogue of the SelectWithin
// counters.
var (
	obsStageMemoHits = obs.Default().Counter("greenweb_runtime_stage_memo_hits_total",
		"SelectStageVector calls answered from the memoized greedy descent")
	obsStageMemoMisses = obs.Default().Counter("greenweb_runtime_stage_memo_misses_total",
		"SelectStageVector calls that re-ran the greedy descent")
)

// StageVector assigns one execution configuration to each staged render
// phase, indexed by browser.RenderStage.
type StageVector [NumStages]acmp.Config

// Uniform reports whether every stage shares one configuration (the vector
// degenerates to a scalar).
func (v StageVector) Uniform() bool {
	for s := 1; s < NumStages; s++ {
		if v[s] != v[0] {
			return false
		}
	}
	return true
}

func (v StageVector) String() string {
	parts := make([]string, NumStages)
	for s := 0; s < NumStages; s++ {
		parts[s] = browser.RenderStage(s).String() + "=" + v[s].String()
	}
	return strings.Join(parts, ",")
}

// stageSelMemo caches the last SelectStageVector result, keyed on everything
// the greedy descent reads. stageVersion isolates it from the uniform memo:
// new stage observations invalidate only this entry, and bias/profile
// mutations (version) invalidate both.
type stageSelMemo struct {
	valid        bool
	version      int
	stageVersion int
	deadline     sim.Duration
	safety       float64
	ceiling      acmp.Config
	pm           *acmp.PowerModel
	result       StageVector
}

// RecordStages feeds one staged frame's per-phase timings into the model.
// Cycle counts are work, not time — config-independent, like nBig — so a
// single observation suffices and repeats are cheap no-ops. Only a changed
// observation bumps stageVersion (the stage memo's key); the uniform sweep
// memo is untouched either way.
func (m *Model) RecordStages(stages []browser.StageTiming) {
	var crit, total [NumStages]float64
	seen := 0
	for _, st := range stages {
		s := int(st.Stage)
		if s < 0 || s >= NumStages {
			return
		}
		crit[s] = float64(st.CritCycles)
		total[s] = float64(st.TotalCycles)
		seen++
	}
	if seen != NumStages {
		return
	}
	if m.stageValid && crit == m.stageCrit && total == m.stageTotal {
		return
	}
	m.stageCrit, m.stageTotal = crit, total
	m.stageValid = true
	m.stageVersion++
	m.stageSel.valid = false
}

// StageParams exposes the recorded per-stage (critical-path, total) cycle
// observations for inspection and tests.
func (m *Model) StageParams() (crit, total [NumStages]float64, ok bool) {
	return m.stageCrit, m.stageTotal, m.stageValid
}

// stagePredictSeconds estimates the frame latency (seconds) of a staged
// frame under vec, as a relative adjustment from the calibrated uniform
// prediction at base: each stage's critical-path cycles move from k(base) to
// k(vec[s]), and every configuration change at a phase boundary — including
// the entry switch base→vec[style] — stalls the pipeline for the hardware
// switch penalty (plus the migration penalty across clusters).
func (m *Model) stagePredictSeconds(base acmp.Config, vec StageVector) float64 {
	t := m.tIndep + m.nBig*m.kOf(base)
	kb := m.kOf(base)
	prev := base
	for s := 0; s < NumStages; s++ {
		t += m.stageCrit[s] * (m.kOf(vec[s]) - kb)
		if vec[s] != prev {
			t += acmp.FreqSwitchPenalty.Seconds()
			if vec[s].Cluster != prev.Cluster {
				t += acmp.MigrationPenalty.Seconds()
			}
		}
		prev = vec[s]
	}
	return t
}

// stageEnergyScore ranks candidate vectors: per-stage active energy (total
// cycles across shards at the stage's configuration) plus cluster-static
// energy over the stage window (the critical path), plus the stall energy of
// each boundary switch, plus race-to-idle sleep for the rest of the horizon.
// Work outside the staged phases runs at base in every candidate and is a
// constant, so it is omitted — only differences matter to the descent.
func (m *Model) stageEnergyScore(base acmp.Config, vec StageVector, pm *acmp.PowerModel, horizon sim.Duration) float64 {
	e := 0.0
	prev := base
	for s := 0; s < NumStages; s++ {
		cfg := vec[s]
		k := m.kOf(cfg)
		e += float64(pm.CoreActive(cfg))*m.stageTotal[s]*k +
			float64(pm.ClusterStatic(cfg))*m.stageCrit[s]*k
		if cfg != prev {
			stall := acmp.FreqSwitchPenalty.Seconds()
			if cfg.Cluster != prev.Cluster {
				stall += acmp.MigrationPenalty.Seconds()
			}
			e += stall * float64(pm.CoreActive(prev)+pm.ClusterStatic(prev))
		}
		prev = cfg
	}
	rest := horizon.Seconds() - m.stagePredictSeconds(base, vec)
	if rest < 0 {
		rest = 0
	}
	e += float64(pm.Sleep(base.Cluster)) * rest
	return e
}

// SelectStageVector picks the per-stage configuration vector for a frame:
// the uniform SelectWithin answer as the base, then a deterministic greedy
// descent that repeatedly applies the single-stage step-down with the lowest
// predicted energy among those whose predicted latency still meets
// deadline×safety (switch stalls included). Ties break toward the lowest
// stage index; only strict energy improvements are taken, so the descent
// terminates and never does worse than uniform in the model's own terms.
//
// ok=false means the model is not ready (the caller should leave scheduling
// to the scalar path). Before any staged frame has been observed — or while
// feedback bias indicates the class is struggling — the uniform vector is
// returned: per-stage slack-spending is an optimization for healthy,
// calibrated classes only.
func (m *Model) SelectStageVector(deadline sim.Duration, pm *acmp.PowerModel, safety float64, ceiling acmp.Config) (StageVector, bool) {
	if m.phase != ready {
		return StageVector{}, false
	}
	base := m.SelectWithin(deadline, pm, safety, ceiling)
	var uniform StageVector
	for s := range uniform {
		uniform[s] = base
	}
	if !m.stageValid || m.bias > 0 {
		return uniform, true
	}
	if m.stageSel.valid && m.stageSel.version == m.version &&
		m.stageSel.stageVersion == m.stageVersion &&
		m.stageSel.deadline == deadline && m.stageSel.safety == safety &&
		m.stageSel.ceiling == ceiling && m.stageSel.pm == pm {
		obsStageMemoHits.Inc()
		return m.stageSel.result, true
	}
	obsStageMemoMisses.Inc()
	boundSec := sim.Duration(float64(deadline) * safety).Seconds()
	vec := uniform
	curE := m.stageEnergyScore(base, vec, pm, deadline)
	for {
		bestS := -1
		var bestVec StageVector
		bestE := curE
		for s := 0; s < NumStages; s++ {
			down, ok := vec[s].StepDown()
			if !ok {
				continue
			}
			cand := vec
			cand[s] = down
			if m.stagePredictSeconds(base, cand) > boundSec {
				continue
			}
			if e := m.stageEnergyScore(base, cand, pm, deadline); e < bestE {
				bestS, bestVec, bestE = s, cand, e
			}
		}
		if bestS < 0 {
			break
		}
		vec, curE = bestVec, bestE
	}
	m.stageSel = stageSelMemo{true, m.version, m.stageVersion, deadline, safety, ceiling, pm, vec}
	return vec, true
}

// prepareStageVector computes (or clears) the per-stage vector the engine's
// OnRenderStage hooks will apply during the frame that is starting. The
// stage dimension follows the degradation ladder exactly like the scalar
// path: a degraded class is pinned to Perf-within-cap (no vector), and a
// profiling class must run its profiling point undisturbed.
func (r *Runtime) prepareStageVector(m *Model) {
	r.curStageOK = false
	if !r.opts.StageAware || m == nil || !m.Ready() || r.degraded[m.Key] {
		return
	}
	vec, ok := m.SelectStageVector(r.deadline(m.Ann), r.pm, r.opts.Safety, r.cpu.Ceiling())
	if !ok {
		return
	}
	r.curStageVec = vec
	r.curStageOK = true
	if !vec.Uniform() {
		if led := r.e.Ledger(); led != nil {
			led.AnnotateFrame("stage_vector", vec.String())
		}
	}
}

// OnRenderStage implements browser.StageGovernor: at each phase barrier of a
// staged frame, apply that stage's configuration from the prepared vector.
// The re-clamp to the live ceiling is per stage — a thermal trip mid-frame
// caps the remaining stages just as SelectWithin's results are re-clamped
// per frame (counted in Stats.CapClamps).
func (r *Runtime) OnRenderStage(seq int, stage browser.RenderStage) {
	if !r.curStageOK || int(stage) < 0 || int(stage) >= NumStages {
		return
	}
	r.cpu.SetConfig(r.clamp(r.capTo(r.curStageVec[stage], r.cpu.Ceiling())))
}
