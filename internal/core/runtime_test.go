package core

import (
	"testing"

	"github.com/wattwiseweb/greenweb/internal/acmp"
	"github.com/wattwiseweb/greenweb/internal/browser"
	"github.com/wattwiseweb/greenweb/internal/governor"
	"github.com/wattwiseweb/greenweb/internal/qos"
	"github.com/wattwiseweb/greenweb/internal/sim"
)

// animPage is a rAF animation whose touchstart is annotated continuous;
// frame weight is moderate so little configs meet TU but not TI.
const animPage = `<html><head><style>
		body:QoS { onload-qos: single, long; }
		div#c:QoS { ontouchstart-qos: continuous; }
	</style></head>
	<body><div id="c">x</div>
	<script>
		var frames = 0;
		document.getElementById("c").addEventListener("touchstart", function(e) {
			function step() {
				frames++;
				work(30);
				document.getElementById("c").style.height = frames + "px";
				if (frames < 90) { requestAnimationFrame(step); }
			}
			requestAnimationFrame(step);
		});
	</script></body></html>`

// tapPage has a lightweight single-short tap.
const tapPage = `<html><head><style>
		body:QoS { onload-qos: single, long; }
		div#b:QoS { onclick-qos: single, short; }
	</style></head>
	<body><div id="b">x</div>
	<script>
		document.getElementById("b").addEventListener("click", function(e) {
			work(40);
			e.target.style.width = "10px";
		});
	</script></body></html>`

type runResult struct {
	energy     acmp.Joules
	frames     []browser.FrameResult
	runtime    *Runtime
	engine     *browser.Engine
	switchStat acmp.SwitchStats
}

func runWith(t *testing.T, page string, gov browser.Governor, drive func(*sim.Simulator, *browser.Engine)) runResult {
	t.Helper()
	s := sim.New()
	cpu := acmp.NewCPU(s, acmp.DefaultPower())
	e := browser.New(s, cpu, nil)
	e.SetGovernor(gov)
	if _, err := e.LoadPage(page); err != nil {
		t.Fatal(err)
	}
	drive(s, e)
	rr := runResult{
		energy: cpu.Energy(), frames: e.Results(), engine: e,
		switchStat: cpu.Stats(),
	}
	if r, ok := gov.(*Runtime); ok {
		rr.runtime = r
	}
	if len(e.ScriptErrors()) > 0 {
		t.Fatalf("script errors: %v", e.ScriptErrors())
	}
	return rr
}

func driveAnimation(s *sim.Simulator, e *browser.Engine) {
	s.RunUntil(sim.Time(sim.Second))
	e.Inject(s.Now().Add(10*sim.Millisecond), "touchstart", "c", nil)
	s.RunUntil(s.Now().Add(3 * sim.Second))
}

func driveTaps(s *sim.Simulator, e *browser.Engine) {
	s.RunUntil(sim.Time(sim.Second))
	for i := 0; i < 6; i++ {
		e.Inject(s.Now().Add(sim.Duration(i)*400*sim.Millisecond), "click", "b", nil)
	}
	s.RunUntil(s.Now().Add(4 * sim.Second))
}

func TestRuntimeTracksAnnotatedEvents(t *testing.T) {
	r := New(DefaultOptions(qos.Imperceptible))
	res := runWith(t, animPage, r, driveAnimation)
	st := r.Stats()
	if st.AnnotatedInputs != 2 { // load + touchstart
		t.Fatalf("annotated inputs = %d, want 2 (stats: %+v)", st.AnnotatedInputs, st)
	}
	if st.ProfilingFrames < 2 {
		t.Fatalf("profiling frames = %d, want >= 2", st.ProfilingFrames)
	}
	if st.PredictedFrames < 50 {
		t.Fatalf("predicted frames = %d, want most of the animation", st.PredictedFrames)
	}
	if len(res.frames) < 80 {
		t.Fatalf("frames = %d, want ~90 animation frames", len(res.frames))
	}
}

func TestRuntimeSavesEnergyVsPerf(t *testing.T) {
	perf := runWith(t, animPage, governor.NewPerf(), driveAnimation)
	gwI := runWith(t, animPage, New(DefaultOptions(qos.Imperceptible)), driveAnimation)
	gwU := runWith(t, animPage, New(DefaultOptions(qos.Usable)), driveAnimation)

	if gwI.energy >= perf.energy {
		t.Fatalf("GreenWeb-I energy %.3f J >= Perf %.3f J", gwI.energy, perf.energy)
	}
	if gwU.energy >= gwI.energy {
		t.Fatalf("GreenWeb-U energy %.3f J >= GreenWeb-I %.3f J", gwU.energy, gwI.energy)
	}
	// The usable scenario should save substantially (paper: 66–78%).
	if float64(gwU.energy) > 0.6*float64(perf.energy) {
		t.Fatalf("GreenWeb-U saves too little: %.3f J vs Perf %.3f J", gwU.energy, perf.energy)
	}
}

func violationsOver(frames []browser.FrameResult, r *Runtime, deadline sim.Duration) int {
	n := 0
	for _, fr := range frames[1:] { // skip load frame
		if fr.ProductionLatency > deadline {
			n++
		}
	}
	return n
}

func TestRuntimeKeepsQoSInUsableMode(t *testing.T) {
	gwU := runWith(t, animPage, New(DefaultOptions(qos.Usable)), driveAnimation)
	// Frame production must meet TU=33.3ms for nearly all frames.
	bad := violationsOver(gwU.frames, gwU.runtime, 33300*sim.Microsecond)
	if bad > len(gwU.frames)/10 {
		t.Fatalf("%d of %d frames violate TU", bad, len(gwU.frames))
	}
}

func TestRuntimeUsesLittleClusterInUsableMode(t *testing.T) {
	gwU := runWith(t, animPage, New(DefaultOptions(qos.Usable)), driveAnimation)
	res := gwU.engine.CPU().Residency()
	var little, big sim.Duration
	for cfg, d := range res {
		if cfg.Cluster == acmp.Little {
			little += d
		} else {
			big += d
		}
	}
	if little <= big {
		t.Fatalf("usable mode: little %v <= big %v", little, big)
	}
}

func TestRuntimeImperceptibleUsesBiggerConfigsThanUsable(t *testing.T) {
	gwI := runWith(t, animPage, New(DefaultOptions(qos.Imperceptible)), driveAnimation)
	gwU := runWith(t, animPage, New(DefaultOptions(qos.Usable)), driveAnimation)
	avgIdx := func(rr runResult) float64 {
		var num, den float64
		for cfg, d := range rr.engine.CPU().Residency() {
			// Only count interaction time (ignore long idle tails where
			// both runtimes sit at the idle config).
			num += float64(cfg.Index()) * d.Seconds()
			den += d.Seconds()
		}
		return num / den
	}
	if avgIdx(gwI) <= avgIdx(gwU) {
		t.Fatalf("imperceptible avg config index %.2f <= usable %.2f", avgIdx(gwI), avgIdx(gwU))
	}
}

func TestRuntimeIdlesAfterEventComplete(t *testing.T) {
	r := New(DefaultOptions(qos.Imperceptible))
	res := runWith(t, tapPage, r, driveTaps)
	// Idle demotion is cluster-sticky: the system parks at the floor of
	// whatever cluster it last ran on.
	cfg := res.engine.CPU().Config()
	if cfg != acmp.MinConfig(acmp.Little) && cfg != acmp.MinConfig(acmp.Big) {
		t.Fatalf("post-interaction config = %v, want a cluster floor", cfg)
	}
}

func TestRuntimeSingleEventsSaveEnergy(t *testing.T) {
	perf := runWith(t, tapPage, governor.NewPerf(), driveTaps)
	gwI := runWith(t, tapPage, New(DefaultOptions(qos.Imperceptible)), driveTaps)
	if float64(gwI.energy) > 0.7*float64(perf.energy) {
		t.Fatalf("single-event savings too small: %.3f J vs %.3f J", gwI.energy, perf.energy)
	}
}

func TestRuntimeUnannotatedPageFallsBack(t *testing.T) {
	page := `<html><body><div id="b">x</div>
		<script>
			document.getElementById("b").addEventListener("click", function(e) {
				e.target.style.width = "10px";
			});
		</script></body></html>`
	r := New(DefaultOptions(qos.Imperceptible))
	res := runWith(t, page, r, func(s *sim.Simulator, e *browser.Engine) {
		s.RunUntil(sim.Time(sim.Second))
		e.Inject(s.Now().Add(10*sim.Millisecond), "click", "b", nil)
		s.RunUntil(s.Now().Add(sim.Second))
	})
	st := r.Stats()
	if st.AnnotatedInputs != 0 || st.UnannotatedInputs != 2 {
		t.Fatalf("stats = %+v", st)
	}
	// Frames still produced, just at the idle config.
	if len(res.frames) < 2 {
		t.Fatalf("frames = %d", len(res.frames))
	}
}

func TestSingleClusterAblations(t *testing.T) {
	optsBig := DefaultOptions(qos.Usable)
	optsBig.BigOnly = true
	big := runWith(t, animPage, New(optsBig), driveAnimation)
	for cfg := range big.engine.CPU().Residency() {
		if cfg.Cluster == acmp.Little && cfg != acmp.LowestConfig() {
			t.Fatalf("BigOnly runtime used %v", cfg)
		}
	}
	optsLit := DefaultOptions(qos.Imperceptible)
	optsLit.LittleOnly = true
	lit := runWith(t, animPage, New(optsLit), driveAnimation)
	// After attach, only little configs are ever requested.
	st := lit.engine.CPU().Stats()
	if st.Migrations > 1 {
		t.Fatalf("LittleOnly migrated %d times", st.Migrations)
	}
	// Big-only burns more than an unrestricted usable runtime.
	free := runWith(t, animPage, New(DefaultOptions(qos.Usable)), driveAnimation)
	if big.energy <= free.energy {
		t.Fatalf("BigOnly %.3f J <= unrestricted %.3f J", big.energy, free.energy)
	}
}

func TestUAISuppressesMisannotation(t *testing.T) {
	// Mis-annotation: a trivial tap demands a 1 ms target, forcing peak.
	misPage := `<html><head><style>
			div#b:QoS { onclick-qos: continuous, 1, 1; }
		</style></head>
		<body><div id="b">x</div>
		<script>
			var n = 0;
			document.getElementById("b").addEventListener("click", function(e) {
				function step() {
					n++;
					work(50);
					document.getElementById("b").style.height = (n % 50) + "px";
					requestAnimationFrame(step);
				}
				if (n === 0) { requestAnimationFrame(step); }
			});
		</script></body></html>`
	drive := func(s *sim.Simulator, e *browser.Engine) {
		s.RunUntil(sim.Time(sim.Second))
		e.Inject(s.Now().Add(10*sim.Millisecond), "click", "b", nil)
		s.RunUntil(s.Now().Add(5 * sim.Second))
	}
	noUAI := runWith(t, misPage, New(DefaultOptions(qos.Imperceptible)), drive)

	opts := DefaultOptions(qos.Imperceptible)
	opts.UAI = NewUAIPolicy(0.2) // 0.2 J per event class
	withUAI := runWith(t, misPage, New(opts), drive)

	if len(opts.UAI.SuppressedClasses()) == 0 {
		t.Fatalf("UAI never suppressed the mis-annotated class (spent=%v)", opts.UAI.Spent("html>body>div#b@click"))
	}
	if withUAI.energy >= noUAI.energy {
		t.Fatalf("UAI did not reduce energy: %.3f J vs %.3f J", withUAI.energy, noUAI.energy)
	}
}

func TestRuntimeNames(t *testing.T) {
	if New(DefaultOptions(qos.Imperceptible)).Name() != "GreenWeb-I" {
		t.Fatal("name wrong")
	}
	if New(DefaultOptions(qos.Usable)).Name() != "GreenWeb-U" {
		t.Fatal("name wrong")
	}
}

func TestDefaultOptionsSane(t *testing.T) {
	o := DefaultOptions(qos.Usable)
	if !o.IdleConfig.Valid() || o.Safety <= 0 || o.Safety > 1 || o.MispredictLimit <= 0 {
		t.Fatalf("options = %+v", o)
	}
	// Zero-valued options get repaired by New.
	r := New(Options{})
	if !r.Options().IdleConfig.Valid() || r.Options().Safety <= 0 {
		t.Fatalf("repaired options = %+v", r.Options())
	}
}
