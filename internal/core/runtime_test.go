package core

import (
	"strings"
	"testing"

	"github.com/wattwiseweb/greenweb/internal/acmp"
	"github.com/wattwiseweb/greenweb/internal/browser"
	"github.com/wattwiseweb/greenweb/internal/governor"
	"github.com/wattwiseweb/greenweb/internal/qos"
	"github.com/wattwiseweb/greenweb/internal/sim"
)

// animPage is a rAF animation whose touchstart is annotated continuous;
// frame weight is moderate so little configs meet TU but not TI.
const animPage = `<html><head><style>
		body:QoS { onload-qos: single, long; }
		div#c:QoS { ontouchstart-qos: continuous; }
	</style></head>
	<body><div id="c">x</div>
	<script>
		var frames = 0;
		document.getElementById("c").addEventListener("touchstart", function(e) {
			function step() {
				frames++;
				work(30);
				document.getElementById("c").style.height = frames + "px";
				if (frames < 90) { requestAnimationFrame(step); }
			}
			requestAnimationFrame(step);
		});
	</script></body></html>`

// tapPage has a lightweight single-short tap.
const tapPage = `<html><head><style>
		body:QoS { onload-qos: single, long; }
		div#b:QoS { onclick-qos: single, short; }
	</style></head>
	<body><div id="b">x</div>
	<script>
		document.getElementById("b").addEventListener("click", function(e) {
			work(40);
			e.target.style.width = "10px";
		});
	</script></body></html>`

type runResult struct {
	energy     acmp.Joules
	frames     []browser.FrameResult
	runtime    *Runtime
	engine     *browser.Engine
	switchStat acmp.SwitchStats
}

func runWith(t *testing.T, page string, gov browser.Governor, drive func(*sim.Simulator, *browser.Engine)) runResult {
	t.Helper()
	s := sim.New()
	cpu := acmp.NewCPU(s, acmp.DefaultPower())
	e := browser.New(s, cpu, nil)
	e.SetGovernor(gov)
	if _, err := e.LoadPage(page); err != nil {
		t.Fatal(err)
	}
	drive(s, e)
	rr := runResult{
		energy: cpu.Energy(), frames: e.Results(), engine: e,
		switchStat: cpu.Stats(),
	}
	if r, ok := gov.(*Runtime); ok {
		rr.runtime = r
	}
	if len(e.ScriptErrors()) > 0 {
		t.Fatalf("script errors: %v", e.ScriptErrors())
	}
	return rr
}

func driveAnimation(s *sim.Simulator, e *browser.Engine) {
	s.RunUntil(sim.Time(sim.Second))
	e.Inject(s.Now().Add(10*sim.Millisecond), "touchstart", "c", nil)
	s.RunUntil(s.Now().Add(3 * sim.Second))
}

func driveTaps(s *sim.Simulator, e *browser.Engine) {
	s.RunUntil(sim.Time(sim.Second))
	for i := 0; i < 6; i++ {
		e.Inject(s.Now().Add(sim.Duration(i)*400*sim.Millisecond), "click", "b", nil)
	}
	s.RunUntil(s.Now().Add(4 * sim.Second))
}

func TestRuntimeTracksAnnotatedEvents(t *testing.T) {
	r := New(DefaultOptions(qos.Imperceptible))
	res := runWith(t, animPage, r, driveAnimation)
	st := r.Stats()
	if st.AnnotatedInputs != 2 { // load + touchstart
		t.Fatalf("annotated inputs = %d, want 2 (stats: %+v)", st.AnnotatedInputs, st)
	}
	if st.ProfilingFrames < 2 {
		t.Fatalf("profiling frames = %d, want >= 2", st.ProfilingFrames)
	}
	if st.PredictedFrames < 50 {
		t.Fatalf("predicted frames = %d, want most of the animation", st.PredictedFrames)
	}
	if len(res.frames) < 80 {
		t.Fatalf("frames = %d, want ~90 animation frames", len(res.frames))
	}
}

func TestRuntimeSavesEnergyVsPerf(t *testing.T) {
	perf := runWith(t, animPage, governor.NewPerf(), driveAnimation)
	gwI := runWith(t, animPage, New(DefaultOptions(qos.Imperceptible)), driveAnimation)
	gwU := runWith(t, animPage, New(DefaultOptions(qos.Usable)), driveAnimation)

	if gwI.energy >= perf.energy {
		t.Fatalf("GreenWeb-I energy %.3f J >= Perf %.3f J", gwI.energy, perf.energy)
	}
	if gwU.energy >= gwI.energy {
		t.Fatalf("GreenWeb-U energy %.3f J >= GreenWeb-I %.3f J", gwU.energy, gwI.energy)
	}
	// The usable scenario should save substantially (paper: 66–78%).
	if float64(gwU.energy) > 0.6*float64(perf.energy) {
		t.Fatalf("GreenWeb-U saves too little: %.3f J vs Perf %.3f J", gwU.energy, perf.energy)
	}
}

func violationsOver(frames []browser.FrameResult, r *Runtime, deadline sim.Duration) int {
	n := 0
	for _, fr := range frames[1:] { // skip load frame
		if fr.ProductionLatency > deadline {
			n++
		}
	}
	return n
}

func TestRuntimeKeepsQoSInUsableMode(t *testing.T) {
	gwU := runWith(t, animPage, New(DefaultOptions(qos.Usable)), driveAnimation)
	// Frame production must meet TU=33.3ms for nearly all frames.
	bad := violationsOver(gwU.frames, gwU.runtime, 33300*sim.Microsecond)
	if bad > len(gwU.frames)/10 {
		t.Fatalf("%d of %d frames violate TU", bad, len(gwU.frames))
	}
}

func TestRuntimeUsesLittleClusterInUsableMode(t *testing.T) {
	gwU := runWith(t, animPage, New(DefaultOptions(qos.Usable)), driveAnimation)
	res := gwU.engine.CPU().Residency()
	var little, big sim.Duration
	for cfg, d := range res {
		if cfg.Cluster == acmp.Little {
			little += d
		} else {
			big += d
		}
	}
	if little <= big {
		t.Fatalf("usable mode: little %v <= big %v", little, big)
	}
}

func TestRuntimeImperceptibleUsesBiggerConfigsThanUsable(t *testing.T) {
	gwI := runWith(t, animPage, New(DefaultOptions(qos.Imperceptible)), driveAnimation)
	gwU := runWith(t, animPage, New(DefaultOptions(qos.Usable)), driveAnimation)
	avgIdx := func(rr runResult) float64 {
		var num, den float64
		for cfg, d := range rr.engine.CPU().Residency() {
			// Only count interaction time (ignore long idle tails where
			// both runtimes sit at the idle config).
			num += float64(cfg.Index()) * d.Seconds()
			den += d.Seconds()
		}
		return num / den
	}
	if avgIdx(gwI) <= avgIdx(gwU) {
		t.Fatalf("imperceptible avg config index %.2f <= usable %.2f", avgIdx(gwI), avgIdx(gwU))
	}
}

func TestRuntimeIdlesAfterEventComplete(t *testing.T) {
	r := New(DefaultOptions(qos.Imperceptible))
	res := runWith(t, tapPage, r, driveTaps)
	// Idle demotion is cluster-sticky: the system parks at the floor of
	// whatever cluster it last ran on.
	cfg := res.engine.CPU().Config()
	if cfg != acmp.MinConfig(acmp.Little) && cfg != acmp.MinConfig(acmp.Big) {
		t.Fatalf("post-interaction config = %v, want a cluster floor", cfg)
	}
}

func TestRuntimeSingleEventsSaveEnergy(t *testing.T) {
	perf := runWith(t, tapPage, governor.NewPerf(), driveTaps)
	gwI := runWith(t, tapPage, New(DefaultOptions(qos.Imperceptible)), driveTaps)
	if float64(gwI.energy) > 0.7*float64(perf.energy) {
		t.Fatalf("single-event savings too small: %.3f J vs %.3f J", gwI.energy, perf.energy)
	}
}

func TestRuntimeUnannotatedPageFallsBack(t *testing.T) {
	page := `<html><body><div id="b">x</div>
		<script>
			document.getElementById("b").addEventListener("click", function(e) {
				e.target.style.width = "10px";
			});
		</script></body></html>`
	r := New(DefaultOptions(qos.Imperceptible))
	res := runWith(t, page, r, func(s *sim.Simulator, e *browser.Engine) {
		s.RunUntil(sim.Time(sim.Second))
		e.Inject(s.Now().Add(10*sim.Millisecond), "click", "b", nil)
		s.RunUntil(s.Now().Add(sim.Second))
	})
	st := r.Stats()
	if st.AnnotatedInputs != 0 || st.UnannotatedInputs != 2 {
		t.Fatalf("stats = %+v", st)
	}
	// Frames still produced, just at the idle config.
	if len(res.frames) < 2 {
		t.Fatalf("frames = %d", len(res.frames))
	}
}

func TestSingleClusterAblations(t *testing.T) {
	optsBig := DefaultOptions(qos.Usable)
	optsBig.BigOnly = true
	big := runWith(t, animPage, New(optsBig), driveAnimation)
	for cfg := range big.engine.CPU().Residency() {
		if cfg.Cluster == acmp.Little && cfg != acmp.LowestConfig() {
			t.Fatalf("BigOnly runtime used %v", cfg)
		}
	}
	optsLit := DefaultOptions(qos.Imperceptible)
	optsLit.LittleOnly = true
	lit := runWith(t, animPage, New(optsLit), driveAnimation)
	// After attach, only little configs are ever requested.
	st := lit.engine.CPU().Stats()
	if st.Migrations > 1 {
		t.Fatalf("LittleOnly migrated %d times", st.Migrations)
	}
	// Big-only burns more than an unrestricted usable runtime.
	free := runWith(t, animPage, New(DefaultOptions(qos.Usable)), driveAnimation)
	if big.energy <= free.energy {
		t.Fatalf("BigOnly %.3f J <= unrestricted %.3f J", big.energy, free.energy)
	}
}

func TestUAISuppressesMisannotation(t *testing.T) {
	// Mis-annotation: a trivial tap demands a 1 ms target, forcing peak.
	misPage := `<html><head><style>
			div#b:QoS { onclick-qos: continuous, 1, 1; }
		</style></head>
		<body><div id="b">x</div>
		<script>
			var n = 0;
			document.getElementById("b").addEventListener("click", function(e) {
				function step() {
					n++;
					work(50);
					document.getElementById("b").style.height = (n % 50) + "px";
					requestAnimationFrame(step);
				}
				if (n === 0) { requestAnimationFrame(step); }
			});
		</script></body></html>`
	drive := func(s *sim.Simulator, e *browser.Engine) {
		s.RunUntil(sim.Time(sim.Second))
		e.Inject(s.Now().Add(10*sim.Millisecond), "click", "b", nil)
		s.RunUntil(s.Now().Add(5 * sim.Second))
	}
	noUAI := runWith(t, misPage, New(DefaultOptions(qos.Imperceptible)), drive)

	opts := DefaultOptions(qos.Imperceptible)
	opts.UAI = NewUAIPolicy(0.2) // 0.2 J per event class
	withUAI := runWith(t, misPage, New(opts), drive)

	if len(opts.UAI.SuppressedClasses()) == 0 {
		t.Fatalf("UAI never suppressed the mis-annotated class (spent=%v)", opts.UAI.Spent("html>body>div#b@click"))
	}
	if withUAI.energy >= noUAI.energy {
		t.Fatalf("UAI did not reduce energy: %.3f J vs %.3f J", withUAI.energy, noUAI.energy)
	}
}

func TestRuntimeNames(t *testing.T) {
	if New(DefaultOptions(qos.Imperceptible)).Name() != "GreenWeb-I" {
		t.Fatal("name wrong")
	}
	if New(DefaultOptions(qos.Usable)).Name() != "GreenWeb-U" {
		t.Fatal("name wrong")
	}
}

func TestDefaultOptionsSane(t *testing.T) {
	o := DefaultOptions(qos.Usable)
	if !o.IdleConfig.Valid() || o.Safety <= 0 || o.Safety > 1 || o.MispredictLimit <= 0 {
		t.Fatalf("options = %+v", o)
	}
	// Zero-valued options get repaired by New.
	r := New(Options{})
	if !r.Options().IdleConfig.Valid() || r.Options().Safety <= 0 {
		t.Fatalf("repaired options = %+v", r.Options())
	}
}

// aggressiveThermal trips almost instantly on big-cluster residency above
// 1400 MHz and cools so slowly the cap effectively persists for a whole run.
func aggressiveThermal() acmp.ThermalParams {
	return acmp.ThermalParams{
		AmbientC: 30, TripC: 30.5, ClearC: 30.2,
		HeatCPerSec: 500, CoolCPerSec: 0.01,
		HeatAboveMHz: 1400, CapMHz: 1100,
	}
}

// attachedRuntime builds a runtime wired to an engine (no page) so the
// ladder and divergence helpers can be unit-tested directly.
func attachedRuntime(opts Options) (*Runtime, *sim.Simulator) {
	s := sim.New()
	cpu := acmp.NewCPU(s, acmp.DefaultPower())
	e := browser.New(s, cpu, nil)
	r := New(opts)
	e.SetGovernor(r)
	return r, s
}

func TestDegradationLadderDegradesAndRecovers(t *testing.T) {
	r, s := attachedRuntime(DefaultOptions(qos.Imperceptible))
	m := identifiedModel(t, 0.002, 8e6)
	r.models[m.Key] = m
	k := r.opts.DegradeAfter

	// Without an active thermal cap, violations never degrade: the full
	// configuration space is available, so they are the model's to fix.
	for i := 0; i < 3*k; i++ {
		r.noteOutcome(m, true)
	}
	if r.degraded[m.Key] {
		t.Fatal("degraded without an active thermal cap")
	}

	// Trip the thermal governor; the ladder arms.
	r.cpu.EnableThermal(aggressiveThermal())
	r.cpu.SetConfig(acmp.PeakConfig())
	s.RunUntil(sim.Time(100 * sim.Millisecond))
	if r.cpu.Ceiling() == acmp.PeakConfig() {
		t.Fatal("thermal cap did not engage")
	}

	// One violation short of the threshold: still under model control.
	for i := 0; i < k-1; i++ {
		r.noteOutcome(m, true)
	}
	if r.degraded[m.Key] {
		t.Fatalf("degraded after %d violations, threshold is %d", k-1, k)
	}
	// A clean frame resets the streak — violations must be consecutive.
	r.noteOutcome(m, false)
	for i := 0; i < k-1; i++ {
		r.noteOutcome(m, true)
	}
	if r.degraded[m.Key] {
		t.Fatal("non-consecutive violations degraded the class")
	}
	r.noteOutcome(m, true)
	if !r.degraded[m.Key] {
		t.Fatalf("not degraded after %d consecutive violations", k)
	}
	if st := r.Stats(); st.Degradations != 1 {
		t.Fatalf("degradations = %d, want 1", st.Degradations)
	}
	// While degraded, desired pins the class to the current legal ceiling.
	if got := r.desired(m); got != r.cpu.Ceiling() {
		t.Fatalf("degraded desired = %v, want the thermal ceiling %v", got, r.cpu.Ceiling())
	}

	// k consecutive clean frames recover the class and force a reprofile.
	for i := 0; i < k; i++ {
		r.noteOutcome(m, false)
	}
	if r.degraded[m.Key] {
		t.Fatalf("still degraded after %d clean frames", k)
	}
	st := r.Stats()
	if st.Recoveries != 1 || st.Reprofiles != 1 {
		t.Fatalf("recoveries = %d reprofiles = %d, want 1/1", st.Recoveries, st.Reprofiles)
	}
	if m.Ready() {
		t.Fatal("recovered class kept its stale model; want reprofiling")
	}
}

func TestDivergenceUnderCapTriggersReprofile(t *testing.T) {
	r, s := attachedRuntime(DefaultOptions(qos.Imperceptible))
	m := identifiedModel(t, 0.002, 8e6)
	r.models[m.Key] = m
	cfg := acmp.Config{Cluster: acmp.Big, MHz: 1100}
	drifted := m.Predict(cfg) * 2 // far outside the 50% band

	// No cap active: drift alone never triggers.
	for i := 0; i < 3*r.opts.MispredictLimit; i++ {
		if r.divergedUnderCap(m, drifted, cfg) {
			t.Fatal("divergence fired without an active thermal cap")
		}
	}

	// Trip the thermal governor, then sustained drift must fire after
	// MispredictLimit consecutive frames.
	r.cpu.EnableThermal(aggressiveThermal())
	r.cpu.SetConfig(acmp.PeakConfig())
	s.RunUntil(sim.Time(100 * sim.Millisecond))
	if r.cpu.Ceiling() == acmp.PeakConfig() {
		t.Fatal("thermal cap did not engage")
	}
	for i := 0; i < r.opts.MispredictLimit; i++ {
		if r.divergedUnderCap(m, drifted, cfg) {
			t.Fatalf("divergence fired on frame %d, limit is %d", i+1, r.opts.MispredictLimit)
		}
	}
	// An accurate frame resets the streak.
	if r.divergedUnderCap(m, m.Predict(cfg), cfg) {
		t.Fatal("accurate frame counted as divergence")
	}
	for i := 0; i <= r.opts.MispredictLimit; i++ {
		got := r.divergedUnderCap(m, drifted, cfg)
		if want := i == r.opts.MispredictLimit; got != want {
			t.Fatalf("frame %d: diverged = %v, want %v", i+1, got, want)
		}
	}
}

func TestRuntimeStaysLegalUnderThermalCap(t *testing.T) {
	var illegal []string
	opts := DefaultOptions(qos.Imperceptible)
	opts.Trace = func(line string) {
		if strings.HasPrefix(line, "granted ") {
			illegal = append(illegal, line)
		}
	}
	r := New(opts)

	s := sim.New()
	cpu := acmp.NewCPU(s, acmp.DefaultPower())
	th := cpu.EnableThermal(aggressiveThermal())
	e := browser.New(s, cpu, nil)
	e.SetGovernor(r)
	if _, err := e.LoadPage(animPage); err != nil {
		t.Fatal(err)
	}
	driveAnimation(s, e)
	if errs := e.ScriptErrors(); len(errs) > 0 {
		t.Fatalf("script errors: %v", errs)
	}

	if th.Trips() == 0 {
		t.Fatal("profiling at the peak never tripped the aggressive thermal governor")
	}
	// With no DVFS faults injected, every request the runtime makes is
	// granted verbatim — unless it asked for something above the ceiling.
	if len(illegal) > 0 {
		t.Fatalf("runtime requested illegal configurations: %v", illegal)
	}
	// After the (near-instant) trip, no frame may execute above the cap.
	cap := acmp.Config{Cluster: acmp.Big, MHz: aggressiveThermal().CapMHz}
	high := 0
	for _, fr := range e.Results() {
		if fr.Config.Index() > cap.Index() {
			high++
		}
	}
	if high > 2 {
		t.Fatalf("%d frames ran above the thermal cap %v", high, cap)
	}
	if st := r.Stats(); st.CapClamps == 0 {
		t.Fatalf("no profiling request was cap-clamped under a standing cap: %+v", st)
	}
}
