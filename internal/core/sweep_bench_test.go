package core

import (
	"testing"

	"github.com/wattwiseweb/greenweb/internal/acmp"
	"github.com/wattwiseweb/greenweb/internal/qos"
	"github.com/wattwiseweb/greenweb/internal/sim"
)

// trainedModel returns a model identified from two synthetic profiling
// samples, as it would be after the runtime's profiling frames.
func trainedModel() *Model {
	ann := qos.Annotation{Event: "click", Type: qos.Single, Target: qos.SingleShortTarget}
	m := NewModel("bench@click", ann)
	m.RecordProfile(12*sim.Millisecond, acmp.PeakConfig())
	m.RecordProfile(90*sim.Millisecond, acmp.LowestConfig())
	return m
}

// BenchmarkSelectSteadyState measures the scheduler sweep exactly as the
// runtime issues it on every steady-state animation frame: same model, same
// deadline, same ceiling, no feedback mutation in between. This is the path
// the memoized sweep accelerates.
func BenchmarkSelectSteadyState(b *testing.B) {
	m := trainedModel()
	pm := acmp.DefaultPower()
	deadline := 100 * sim.Millisecond
	ceiling := acmp.PeakConfig()
	want := m.SelectWithin(deadline, pm, 0.9, ceiling)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := m.SelectWithin(deadline, pm, 0.9, ceiling); got != want {
			b.Fatalf("got %v, want %v", got, want)
		}
	}
}

// BenchmarkSelectAfterFeedback measures the sweep when every frame's
// feedback invalidates the model — the worst case for memoization, pinned so
// the cache cannot regress the uncached path by more than noise.
func BenchmarkSelectAfterFeedback(b *testing.B) {
	m := trainedModel()
	pm := acmp.DefaultPower()
	deadline := 100 * sim.Millisecond
	ceiling := acmp.PeakConfig()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// A violated frame steps the bias, changing the model state the
		// selection depends on.
		m.Feedback(deadline+sim.Millisecond, deadline, ceiling, 1<<30)
		m.SelectWithin(deadline, pm, 0.9, ceiling)
	}
}
