// Package webapi wires the JavaScript interpreter to the DOM and to browser
// services: document access, element wrappers with style proxies, event
// listener registration, requestAnimationFrame, timers, and a synthetic
// compute kernel for modelling heavyweight callbacks.
//
// The binding layer is what lets application scripts behave like real Web
// code — registering rAF callbacks (the paper's Fig. 5 pattern), flipping
// style properties to trigger CSS transitions (Fig. 4), and performing
// program-dependent amounts of work that the browser's cost model meters.
package webapi

import (
	"fmt"
	"strings"

	"github.com/wattwiseweb/greenweb/internal/css"
	"github.com/wattwiseweb/greenweb/internal/dom"
	"github.com/wattwiseweb/greenweb/internal/js"
	"github.com/wattwiseweb/greenweb/internal/sim"
)

// Services is what the browser provides to scripts. The browser package
// implements it; AUTOGREEN wraps it to observe rAF and animation use.
type Services interface {
	// Now reports current virtual time (performance.now, in ms).
	Now() sim.Time
	// RequestAnimationFrame schedules cb to run before the next frame
	// paints, returning a request id.
	RequestAnimationFrame(cb js.Value) int
	// SetTimeout schedules cb after delay.
	SetTimeout(cb js.Value, delay sim.Duration) int
	// ConsoleLog delivers console output.
	ConsoleLog(msg string)
}

// WorkOpsPerUnit is how many interpreter operations one work(1) unit
// charges. Synthetic kernels use work(n) to model computation (image
// filtering, compression) whose cost would otherwise require megabytes of
// script.
const WorkOpsPerUnit = 1000

// Bindings owns the interpreter↔DOM glue for one page.
type Bindings struct {
	In  *js.Interp
	Doc *dom.Document
	Svc Services

	elems map[*dom.Node]js.Value
}

// Install creates bindings and defines the globals scripts expect:
// document, window, performance, requestAnimationFrame, setTimeout,
// console (via the interpreter stdlib), and work().
func Install(in *js.Interp, doc *dom.Document, svc Services) *Bindings {
	b := &Bindings{In: in, Doc: doc, Svc: svc, elems: make(map[*dom.Node]js.Value)}
	in.InstallStdlib(svc.ConsoleLog)

	docObj := js.NewHost(&documentHost{b})
	in.Globals.Define("document", js.ObjVal(docObj))

	raf := js.NativeFunc("requestAnimationFrame", func(in *js.Interp, this js.Value, args []js.Value) (js.Value, error) {
		if len(args) == 0 {
			return js.Undefined, fmt.Errorf("requestAnimationFrame: missing callback")
		}
		id := svc.RequestAnimationFrame(args[0])
		return js.Num(float64(id)), nil
	})
	in.Globals.Define("requestAnimationFrame", raf)

	setTimeout := js.NativeFunc("setTimeout", func(in *js.Interp, this js.Value, args []js.Value) (js.Value, error) {
		if len(args) == 0 {
			return js.Undefined, fmt.Errorf("setTimeout: missing callback")
		}
		var delay sim.Duration
		if len(args) > 1 {
			delay = sim.Duration(args[1].Number() * float64(sim.Millisecond))
		}
		id := svc.SetTimeout(args[0], delay)
		return js.Num(float64(id)), nil
	})
	in.Globals.Define("setTimeout", setTimeout)

	perf := js.NewObject()
	perf.Set("now", js.NativeFunc("now", func(in *js.Interp, this js.Value, args []js.Value) (js.Value, error) {
		return js.Num(float64(svc.Now()) / float64(sim.Millisecond)), nil
	}))
	in.Globals.Define("performance", js.ObjVal(perf))

	winObj := js.NewObject()
	winObj.Set("requestAnimationFrame", raf)
	winObj.Set("setTimeout", setTimeout)
	winObj.Set("performance", js.ObjVal(perf))
	winObj.Set("document", js.ObjVal(docObj))
	in.Globals.Define("window", js.ObjVal(winObj))

	// work(n): synthetic compute kernel charging n×WorkOpsPerUnit ops.
	in.Globals.Define("work", js.NativeFunc("work", func(in *js.Interp, this js.Value, args []js.Value) (js.Value, error) {
		units := 1.0
		if len(args) > 0 {
			units = args[0].Number()
		}
		if units < 0 {
			units = 0
		}
		in.ChargeOps(int64(units * WorkOpsPerUnit))
		return js.Undefined, nil
	}))
	return b
}

// ElemValue returns the (cached) script wrapper for a DOM node, preserving
// object identity across lookups as engines do.
func (b *Bindings) ElemValue(n *dom.Node) js.Value {
	if n == nil {
		return js.Null
	}
	if v, ok := b.elems[n]; ok {
		return v
	}
	v := js.ObjVal(js.NewHost(&elementHost{b: b, n: n}))
	b.elems[n] = v
	return v
}

// NodeOf extracts the DOM node backing a script value, or nil.
func (b *Bindings) NodeOf(v js.Value) *dom.Node {
	o := v.Object()
	if o == nil || o.Host == nil {
		return nil
	}
	if eh, ok := o.Host.(*elementHost); ok {
		return eh.n
	}
	return nil
}

// WrapEvent builds the script-visible event object for a DOM event.
func (b *Bindings) WrapEvent(e *dom.Event) js.Value {
	o := js.NewObject()
	o.Set("type", js.Str(e.Name))
	o.Set("target", b.ElemValue(e.Target))
	o.Set("currentTarget", b.ElemValue(e.CurrentTarget))
	for k, v := range e.Data {
		o.Set(k, js.Num(v))
	}
	o.Set("preventDefault", js.NativeFunc("preventDefault", func(in *js.Interp, this js.Value, args []js.Value) (js.Value, error) {
		e.PreventDefault()
		return js.Undefined, nil
	}))
	o.Set("stopPropagation", js.NativeFunc("stopPropagation", func(in *js.Interp, this js.Value, args []js.Value) (js.Value, error) {
		e.StopPropagation()
		return js.Undefined, nil
	}))
	return js.ObjVal(o)
}

// Handler adapts a script function into a DOM event handler. Script errors
// surface through onError (which may be nil to ignore, as browsers log and
// continue).
func (b *Bindings) Handler(fn js.Value, onError func(error)) dom.Handler {
	return func(e *dom.Event) {
		_, err := b.In.CallFunction(fn, b.ElemValue(e.CurrentTarget), []js.Value{b.WrapEvent(e)})
		if err != nil && onError != nil {
			onError(err)
		}
	}
}

// ---- document host ----

type documentHost struct{ b *Bindings }

func (d *documentHost) HostGet(name string) (js.Value, bool) {
	b := d.b
	switch name {
	case "getElementById":
		return js.NativeFunc("getElementById", func(in *js.Interp, this js.Value, args []js.Value) (js.Value, error) {
			if len(args) == 0 {
				return js.Null, nil
			}
			return b.ElemValue(b.Doc.GetElementByID(args[0].Text())), nil
		}), true
	case "getElementsByTagName":
		return js.NativeFunc("getElementsByTagName", func(in *js.Interp, this js.Value, args []js.Value) (js.Value, error) {
			if len(args) == 0 {
				return js.ObjVal(js.NewArray()), nil
			}
			arr := js.NewArray()
			for _, n := range b.Doc.GetElementsByTag(args[0].Text()) {
				arr.Elems = append(arr.Elems, b.ElemValue(n))
			}
			return js.ObjVal(arr), nil
		}), true
	case "getElementsByClassName":
		return js.NativeFunc("getElementsByClassName", func(in *js.Interp, this js.Value, args []js.Value) (js.Value, error) {
			if len(args) == 0 {
				return js.ObjVal(js.NewArray()), nil
			}
			arr := js.NewArray()
			for _, n := range b.Doc.GetElementsByClass(args[0].Text()) {
				arr.Elems = append(arr.Elems, b.ElemValue(n))
			}
			return js.ObjVal(arr), nil
		}), true
	case "querySelector":
		return js.NativeFunc("querySelector", func(in *js.Interp, this js.Value, args []js.Value) (js.Value, error) {
			if len(args) == 0 {
				return js.Null, nil
			}
			n, err := css.Query(b.Doc, args[0].Text())
			if err != nil {
				return js.Null, fmt.Errorf("querySelector: %w", err)
			}
			in.ChargeOps(int64(b.Doc.CountNodes()) / 2)
			return b.ElemValue(n), nil
		}), true
	case "querySelectorAll":
		return js.NativeFunc("querySelectorAll", func(in *js.Interp, this js.Value, args []js.Value) (js.Value, error) {
			arr := js.NewArray()
			if len(args) == 0 {
				return js.ObjVal(arr), nil
			}
			ns, err := css.QueryAll(b.Doc, args[0].Text())
			if err != nil {
				return js.Null, fmt.Errorf("querySelectorAll: %w", err)
			}
			for _, n := range ns {
				arr.Elems = append(arr.Elems, b.ElemValue(n))
			}
			in.ChargeOps(int64(b.Doc.CountNodes()) / 2)
			return js.ObjVal(arr), nil
		}), true
	case "createElement":
		return js.NativeFunc("createElement", func(in *js.Interp, this js.Value, args []js.Value) (js.Value, error) {
			tag := "div"
			if len(args) > 0 {
				tag = args[0].Text()
			}
			return b.ElemValue(b.Doc.NewElement(tag)), nil
		}), true
	case "createTextNode":
		return js.NativeFunc("createTextNode", func(in *js.Interp, this js.Value, args []js.Value) (js.Value, error) {
			text := ""
			if len(args) > 0 {
				text = args[0].Text()
			}
			return b.ElemValue(b.Doc.NewText(text)), nil
		}), true
	case "body":
		if els := b.Doc.GetElementsByTag("body"); len(els) > 0 {
			return b.ElemValue(els[0]), true
		}
		return js.Null, true
	case "documentElement":
		if els := b.Doc.GetElementsByTag("html"); len(els) > 0 {
			return b.ElemValue(els[0]), true
		}
		return js.Null, true
	}
	return js.Undefined, false
}

func (d *documentHost) HostSet(string, js.Value) bool { return false }

// ---- element host ----

type elementHost struct {
	b     *Bindings
	n     *dom.Node
	style js.Value // lazily created style proxy
}

func (h *elementHost) HostGet(name string) (js.Value, bool) {
	b, n := h.b, h.n
	switch name {
	case "id":
		return js.Str(n.ID()), true
	case "tagName":
		return js.Str(strings.ToUpper(n.Tag)), true
	case "className":
		v, _ := n.Attr("class")
		return js.Str(v), true
	case "textContent":
		return js.Str(n.TextContent()), true
	case "parentNode":
		return b.ElemValue(n.Parent), true
	case "children":
		arr := js.NewArray()
		for _, c := range n.Children {
			if c.Type == dom.ElementNode {
				arr.Elems = append(arr.Elems, b.ElemValue(c))
			}
		}
		return js.ObjVal(arr), true
	case "style":
		if h.style.IsUndefined() || h.style.Object() == nil {
			h.style = js.ObjVal(js.NewHost(&styleHost{n: n}))
		}
		return h.style, true
	case "addEventListener":
		return js.NativeFunc("addEventListener", func(in *js.Interp, this js.Value, args []js.Value) (js.Value, error) {
			if len(args) < 2 {
				return js.Undefined, fmt.Errorf("addEventListener: need event and handler")
			}
			n.AddEventListener(args[0].Text(), b.Handler(args[1], nil))
			return js.Undefined, nil
		}), true
	case "setAttribute":
		return js.NativeFunc("setAttribute", func(in *js.Interp, this js.Value, args []js.Value) (js.Value, error) {
			if len(args) < 2 {
				return js.Undefined, nil
			}
			n.SetAttr(args[0].Text(), args[1].Text())
			return js.Undefined, nil
		}), true
	case "getAttribute":
		return js.NativeFunc("getAttribute", func(in *js.Interp, this js.Value, args []js.Value) (js.Value, error) {
			if len(args) == 0 {
				return js.Null, nil
			}
			if v, ok := n.Attr(args[0].Text()); ok {
				return js.Str(v), nil
			}
			return js.Null, nil
		}), true
	case "appendChild":
		return js.NativeFunc("appendChild", func(in *js.Interp, this js.Value, args []js.Value) (js.Value, error) {
			if len(args) == 0 {
				return js.Undefined, nil
			}
			child := b.NodeOf(args[0])
			if child == nil {
				return js.Undefined, fmt.Errorf("appendChild: not a node")
			}
			n.AppendChild(child)
			return args[0], nil
		}), true
	case "removeChild":
		return js.NativeFunc("removeChild", func(in *js.Interp, this js.Value, args []js.Value) (js.Value, error) {
			if len(args) == 0 {
				return js.Undefined, nil
			}
			child := b.NodeOf(args[0])
			if child == nil {
				return js.Undefined, fmt.Errorf("removeChild: not a node")
			}
			n.RemoveChild(child)
			return args[0], nil
		}), true
	}
	return js.Undefined, false
}

func (h *elementHost) HostSet(name string, v js.Value) bool {
	n := h.n
	switch name {
	case "textContent":
		for len(n.Children) > 0 {
			n.RemoveChild(n.Children[0])
		}
		if doc := n.Document(); doc != nil {
			n.AppendChild(doc.NewText(v.Text()))
		}
		return true
	case "className":
		n.SetAttr("class", v.Text())
		return true
	case "id":
		n.SetAttr("id", v.Text())
		return true
	}
	return false
}

// ---- style proxy ----

type styleHost struct{ n *dom.Node }

func (s *styleHost) HostGet(name string) (js.Value, bool) {
	return js.Str(s.n.Style(camelToKebab(name))), true
}

func (s *styleHost) HostSet(name string, v js.Value) bool {
	s.n.SetStyle(camelToKebab(name), v.Text())
	return true
}

// camelToKebab maps script style names to CSS properties
// (backgroundColor → background-color).
func camelToKebab(s string) string {
	var b strings.Builder
	for _, r := range s {
		if r >= 'A' && r <= 'Z' {
			b.WriteByte('-')
			b.WriteRune(r - 'A' + 'a')
		} else {
			b.WriteRune(r)
		}
	}
	return b.String()
}
