package webapi

import (
	"testing"

	"github.com/wattwiseweb/greenweb/internal/js"
)

// Additional binding-surface tests: node creation/removal, traversal,
// error paths.

func TestCreateTextNodeAndRemoveChild(t *testing.T) {
	b, _, doc := setup(t, `<body><div id="box"><p id="p1">x</p></div></body>`)
	run(t, b, `
		var box = document.getElementById("box");
		var txt = document.createTextNode("hello");
		box.appendChild(txt);
		var before = box.children.length; // element children only
		box.removeChild(document.getElementById("p1"));
		var after = box.children.length;
		var content = box.textContent;
	`)
	g := func(name string) js.Value { v, _ := b.In.Globals.Lookup(name); return v }
	if g("before").Number() != 1 || g("after").Number() != 0 {
		t.Fatalf("children counts: before=%v after=%v", g("before"), g("after"))
	}
	if g("content").Text() != "hello" {
		t.Fatalf("textContent = %q", g("content").Text())
	}
	if doc.GetElementByID("p1") != nil {
		t.Fatal("removed child still indexed")
	}
}

func TestParentNodeAndDocumentElement(t *testing.T) {
	b, _, _ := setup(t, `<html><body><div id="x"></div></body></html>`)
	run(t, b, `
		var p = document.getElementById("x").parentNode.tagName;
		var de = document.documentElement.tagName;
	`)
	g := func(name string) js.Value { v, _ := b.In.Globals.Lookup(name); return v }
	if g("p").Text() != "BODY" || g("de").Text() != "HTML" {
		t.Fatalf("p=%v de=%v", g("p"), g("de"))
	}
}

func TestTextContentAssignmentReplacesChildren(t *testing.T) {
	b, _, doc := setup(t, `<body><div id="x"><p>a</p><p>b</p></div></body>`)
	run(t, b, `document.getElementById("x").textContent = "replaced";`)
	x := doc.GetElementByID("x")
	if len(x.Children) != 1 || x.TextContent() != "replaced" {
		t.Fatalf("children=%d text=%q", len(x.Children), x.TextContent())
	}
}

func TestIDAssignmentUpdatesIndex(t *testing.T) {
	b, _, doc := setup(t, `<body><div id="old"></div></body>`)
	run(t, b, `document.getElementById("old").id = "new";`)
	if doc.GetElementByID("old") != nil || doc.GetElementByID("new") == nil {
		t.Fatal("id index not maintained through script assignment")
	}
}

func TestAppendChildErrors(t *testing.T) {
	b, _, _ := setup(t, `<body><div id="x"></div></body>`)
	err := b.In.RunSource(`document.getElementById("x").appendChild(42);`)
	if err == nil {
		t.Fatal("appendChild(non-node) must error")
	}
	err = b.In.RunSource(`document.getElementById("x").removeChild({});`)
	if err == nil {
		t.Fatal("removeChild(non-node) must error")
	}
}

func TestAddEventListenerArityError(t *testing.T) {
	b, _, _ := setup(t, `<body><div id="x"></div></body>`)
	if err := b.In.RunSource(`document.getElementById("x").addEventListener("click");`); err == nil {
		t.Fatal("addEventListener with one arg must error")
	}
	if err := b.In.RunSource(`requestAnimationFrame();`); err == nil {
		t.Fatal("rAF without callback must error")
	}
	if err := b.In.RunSource(`setTimeout();`); err == nil {
		t.Fatal("setTimeout without callback must error")
	}
}

func TestGetterFallbacksOnEmptyArgs(t *testing.T) {
	b, _, _ := setup(t, `<body></body>`)
	run(t, b, `
		var a = document.getElementById();
		var bb = document.getElementsByTagName().length;
		var c = document.getElementsByClassName().length;
		var d = document.createElement().tagName;
	`)
	g := func(name string) js.Value { v, _ := b.In.Globals.Lookup(name); return v }
	if !g("a").IsNullish() || g("bb").Number() != 0 || g("c").Number() != 0 {
		t.Fatal("empty-arg document methods wrong")
	}
	if g("d").Text() != "DIV" {
		t.Fatalf("createElement default = %v", g("d"))
	}
}

func TestStyleReadOfUnsetProperty(t *testing.T) {
	b, _, _ := setup(t, `<body><div id="x"></div></body>`)
	run(t, b, `var w = document.getElementById("x").style.width;`)
	v, _ := b.In.Globals.Lookup("w")
	if v.Text() != "" {
		t.Fatalf("unset style = %q", v.Text())
	}
}

func TestWorkNegativeClamped(t *testing.T) {
	b, _, _ := setup(t, `<body></body>`)
	b.In.ResetOps()
	run(t, b, `work(-5); work();`)
	// work(-5) charges nothing; bare work() charges one unit.
	if ops := b.In.Ops(); ops < WorkOpsPerUnit || ops > WorkOpsPerUnit+200 {
		t.Fatalf("ops = %d", ops)
	}
}

func TestQuerySelector(t *testing.T) {
	b, _, _ := setup(t, `<body>
		<div class="card" data-kind="hero"><span>a</span></div>
		<div class="card">b</div>
	</body>`)
	run(t, b, `
		var hero = document.querySelector("div[data-kind=hero]");
		var heroKind = hero.getAttribute("data-kind");
		var all = document.querySelectorAll(".card").length;
		var nested = document.querySelector(".card > span").tagName;
		var missing = document.querySelector("#nope");
		var none = document.querySelector();
	`)
	g := func(name string) js.Value { v, _ := b.In.Globals.Lookup(name); return v }
	if g("heroKind").Text() != "hero" || g("all").Number() != 2 {
		t.Fatalf("querySelector basics wrong: %v %v", g("heroKind"), g("all"))
	}
	if g("nested").Text() != "SPAN" {
		t.Fatalf("child combinator query = %v", g("nested"))
	}
	if !g("missing").IsNullish() || !g("none").IsNullish() {
		t.Fatal("missing selectors should be null")
	}
	// Malformed selectors surface as script errors.
	if err := b.In.RunSource(`document.querySelector("::");`); err == nil {
		t.Fatal("bad selector accepted")
	}
}
