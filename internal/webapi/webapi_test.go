package webapi

import (
	"testing"

	"github.com/wattwiseweb/greenweb/internal/dom"
	"github.com/wattwiseweb/greenweb/internal/html"
	"github.com/wattwiseweb/greenweb/internal/js"
	"github.com/wattwiseweb/greenweb/internal/sim"
)

// fakeServices records the browser-service calls scripts make.
type fakeServices struct {
	now      sim.Time
	rafs     []js.Value
	timeouts []struct {
		cb    js.Value
		delay sim.Duration
	}
	logs []string
}

func (f *fakeServices) Now() sim.Time { return f.now }
func (f *fakeServices) RequestAnimationFrame(cb js.Value) int {
	f.rafs = append(f.rafs, cb)
	return len(f.rafs)
}
func (f *fakeServices) SetTimeout(cb js.Value, d sim.Duration) int {
	f.timeouts = append(f.timeouts, struct {
		cb    js.Value
		delay sim.Duration
	}{cb, d})
	return len(f.timeouts)
}
func (f *fakeServices) ConsoleLog(msg string) { f.logs = append(f.logs, msg) }

func setup(t *testing.T, src string) (*Bindings, *fakeServices, *dom.Document) {
	t.Helper()
	doc := html.Parse(src)
	in := js.NewInterp()
	svc := &fakeServices{now: sim.Time(1500 * sim.Millisecond)}
	b := Install(in, doc, svc)
	return b, svc, doc
}

func run(t *testing.T, b *Bindings, src string) {
	t.Helper()
	if err := b.In.RunSource(src); err != nil {
		t.Fatalf("script: %v", err)
	}
}

func TestGetElementByIdAndProperties(t *testing.T) {
	b, _, _ := setup(t, `<body><div id="box" class="a b">hello</div></body>`)
	run(t, b, `
		var el = document.getElementById("box");
		var id = el.id;
		var tag = el.tagName;
		var cls = el.className;
		var text = el.textContent;
		var missing = document.getElementById("nope");
	`)
	g := func(name string) js.Value {
		v, _ := b.In.Globals.Lookup(name)
		return v
	}
	if g("id").Text() != "box" || g("tag").Text() != "DIV" || g("cls").Text() != "a b" {
		t.Fatalf("element properties wrong: %v %v %v", g("id"), g("tag"), g("cls"))
	}
	if g("text").Text() != "hello" {
		t.Fatalf("textContent = %q", g("text").Text())
	}
	if !g("missing").IsNullish() {
		t.Fatal("missing element should be null")
	}
}

func TestElementIdentityCached(t *testing.T) {
	b, _, _ := setup(t, `<body><div id="x"></div></body>`)
	run(t, b, `var same = document.getElementById("x") === document.getElementById("x");`)
	v, _ := b.In.Globals.Lookup("same")
	if !v.Truthy() {
		t.Fatal("element wrappers must preserve identity")
	}
}

func TestStyleProxySetsInlineStyle(t *testing.T) {
	b, _, doc := setup(t, `<body><div id="x"></div></body>`)
	run(t, b, `
		var el = document.getElementById("x");
		el.style.width = "500px";
		el.style.backgroundColor = "red";
		var w = el.style.width;
	`)
	n := doc.GetElementByID("x")
	if n.Style("width") != "500px" {
		t.Fatalf("width = %q", n.Style("width"))
	}
	if n.Style("background-color") != "red" {
		t.Fatal("camelCase not converted to kebab-case")
	}
	v, _ := b.In.Globals.Lookup("w")
	if v.Text() != "500px" {
		t.Fatalf("style read-back = %q", v.Text())
	}
}

func TestStyleMutationNotifiesObservers(t *testing.T) {
	b, _, doc := setup(t, `<body><div id="x"></div></body>`)
	muts := 0
	doc.OnMutation(func(*dom.Node) { muts++ })
	run(t, b, `document.getElementById("x").style.width = "10px";`)
	if muts != 1 {
		t.Fatalf("mutations = %d, want 1", muts)
	}
}

func TestAddEventListenerAndDispatch(t *testing.T) {
	b, _, doc := setup(t, `<body><div id="btn"></div></body>`)
	run(t, b, `
		var fired = 0;
		var evType = "";
		var targetId = "";
		document.getElementById("btn").addEventListener("click", function(e) {
			fired++;
			evType = e.type;
			targetId = e.target.id;
		});
	`)
	n := doc.GetElementByID("btn")
	dom.Dispatch(n, "click", nil)
	g := func(name string) js.Value { v, _ := b.In.Globals.Lookup(name); return v }
	if g("fired").Number() != 1 || g("evType").Text() != "click" || g("targetId").Text() != "btn" {
		t.Fatalf("handler state: fired=%v type=%v target=%v", g("fired"), g("evType"), g("targetId"))
	}
}

func TestEventDataAndPreventDefault(t *testing.T) {
	b, _, doc := setup(t, `<body><div id="s"></div></body>`)
	run(t, b, `
		var delta = 0;
		document.getElementById("s").addEventListener("scroll", function(e) {
			delta = e.deltaY;
			e.preventDefault();
			e.stopPropagation();
		});
	`)
	n := doc.GetElementByID("s")
	dom.Dispatch(n, "scroll", map[string]float64{"deltaY": 120})
	v, _ := b.In.Globals.Lookup("delta")
	if v.Number() != 120 {
		t.Fatalf("delta = %v", v)
	}
}

func TestRequestAnimationFrameRouted(t *testing.T) {
	b, svc, _ := setup(t, `<body></body>`)
	run(t, b, `
		var id = requestAnimationFrame(function(ts) {});
		var id2 = window.requestAnimationFrame(function(ts) {});
	`)
	if len(svc.rafs) != 2 {
		t.Fatalf("rafs = %d", len(svc.rafs))
	}
	v, _ := b.In.Globals.Lookup("id")
	if v.Number() != 1 {
		t.Fatalf("raf id = %v", v)
	}
}

func TestSetTimeoutRouted(t *testing.T) {
	b, svc, _ := setup(t, `<body></body>`)
	run(t, b, `setTimeout(function() {}, 250);`)
	if len(svc.timeouts) != 1 || svc.timeouts[0].delay != 250*sim.Millisecond {
		t.Fatalf("timeouts = %+v", svc.timeouts)
	}
}

func TestPerformanceNow(t *testing.T) {
	b, _, _ := setup(t, `<body></body>`)
	run(t, b, `var t = performance.now();`)
	v, _ := b.In.Globals.Lookup("t")
	if v.Number() != 1500 {
		t.Fatalf("performance.now = %v, want 1500 ms", v)
	}
}

func TestConsoleRouted(t *testing.T) {
	b, svc, _ := setup(t, `<body></body>`)
	run(t, b, `console.log("hello", 1);`)
	if len(svc.logs) != 1 || svc.logs[0] != "hello 1" {
		t.Fatalf("logs = %v", svc.logs)
	}
}

func TestWorkChargesOps(t *testing.T) {
	b, _, _ := setup(t, `<body></body>`)
	b.In.ResetOps()
	run(t, b, `work(50);`)
	ops := b.In.Ops()
	if ops < 50*WorkOpsPerUnit {
		t.Fatalf("ops = %d, want >= %d", ops, 50*WorkOpsPerUnit)
	}
}

func TestDOMManipulationFromScript(t *testing.T) {
	b, _, doc := setup(t, `<body><ul id="list"></ul></body>`)
	run(t, b, `
		var list = document.getElementById("list");
		for (var i = 0; i < 3; i++) {
			var li = document.createElement("li");
			li.textContent = "item " + i;
			list.appendChild(li);
		}
		var count = list.children.length;
	`)
	v, _ := b.In.Globals.Lookup("count")
	if v.Number() != 3 {
		t.Fatalf("children = %v", v)
	}
	if len(doc.GetElementsByTag("li")) != 3 {
		t.Fatal("DOM not updated")
	}
	if doc.GetElementsByTag("li")[1].TextContent() != "item 1" {
		t.Fatal("textContent not set")
	}
}

func TestSetAttributeAndClassName(t *testing.T) {
	b, _, doc := setup(t, `<body><div id="x"></div></body>`)
	run(t, b, `
		var el = document.getElementById("x");
		el.setAttribute("data-k", "v");
		el.className = "active";
		var attr = el.getAttribute("data-k");
		var missing = el.getAttribute("nope");
	`)
	n := doc.GetElementByID("x")
	if v, _ := n.Attr("data-k"); v != "v" {
		t.Fatal("setAttribute failed")
	}
	if !n.HasClass("active") {
		t.Fatal("className set failed")
	}
	v, _ := b.In.Globals.Lookup("missing")
	if !v.IsNullish() {
		t.Fatal("missing attribute should be null")
	}
}

func TestGetElementsByTagAndClassFromScript(t *testing.T) {
	b, _, _ := setup(t, `<body><p class="t">a</p><p class="t">b</p><p>c</p></body>`)
	run(t, b, `
		var byTag = document.getElementsByTagName("p").length;
		var byClass = document.getElementsByClassName("t").length;
		var body = document.body.tagName;
	`)
	g := func(name string) js.Value { v, _ := b.In.Globals.Lookup(name); return v }
	if g("byTag").Number() != 3 || g("byClass").Number() != 2 {
		t.Fatalf("byTag=%v byClass=%v", g("byTag"), g("byClass"))
	}
	if g("body").Text() != "BODY" {
		t.Fatalf("body = %v", g("body"))
	}
}

func TestHandlerErrorsSurfaced(t *testing.T) {
	b, _, doc := setup(t, `<body><div id="x"></div></body>`)
	var got error
	fn, _ := b.In.Globals.Lookup("undefinedFunction")
	_ = fn
	run(t, b, `var bad = function() { return missingVariable; };`)
	badFn, _ := b.In.Globals.Lookup("bad")
	n := doc.GetElementByID("x")
	n.AddEventListener("click", b.Handler(badFn, func(err error) { got = err }))
	dom.Dispatch(n, "click", nil)
	if got == nil {
		t.Fatal("handler error not surfaced")
	}
}

func TestNodeOf(t *testing.T) {
	b, _, doc := setup(t, `<body><div id="x"></div></body>`)
	n := doc.GetElementByID("x")
	if b.NodeOf(b.ElemValue(n)) != n {
		t.Fatal("NodeOf round trip failed")
	}
	if b.NodeOf(js.Num(3)) != nil || b.NodeOf(js.ObjVal(js.NewObject())) != nil {
		t.Fatal("NodeOf false positive")
	}
}

func TestCamelToKebab(t *testing.T) {
	cases := map[string]string{
		"width":           "width",
		"backgroundColor": "background-color",
		"borderTopWidth":  "border-top-width",
	}
	for in, want := range cases {
		if got := camelToKebab(in); got != want {
			t.Errorf("camelToKebab(%q) = %q, want %q", in, got, want)
		}
	}
}
