// Remote node wire protocol: length-prefixed JSON frames over a byte
// stream (TCP in production, net.Pipe or a chaos-wrapped conn in tests).
//
// Every frame is
//
//	<4-byte big-endian payload length> <payload JSON>
//
// and every frame is written with a single Write call, so frame boundaries
// are observable to transport wrappers (the chaos injector keys its faults
// on the write-side frame index). Frame types:
//
//	client → worker   {"t":"hello","proto":1,"trace":true}
//	worker → client   {"t":"welcome","proto":1,"workers":N,"name":"...",
//	                   "trace":true,"now_us":T,"pid":P}
//	client → worker   {"t":"job","id":SEQ,"job":{...fleet.Job}}
//	worker → client   {"t":"result","id":SEQ,"result":{...wireResult}}
//	client → worker   {"t":"ping","id":SEQ}
//	worker → client   {"t":"pong","id":SEQ}
//	client → worker   {"t":"cancel","id":SEQ}       best-effort job abort
//
// Job and result frames are multiplexed by id; pings flow on the same
// connection while jobs execute, so heartbeat RTT measures the transport,
// not the work queue.
//
// Tracing is feature-negotiated, not versioned: the hello's trace field
// advertises that the client can propagate span contexts, and a worker that
// understands (and has obs enabled) echoes trace:true plus its clock
// (now_us, for handshake-time offset estimation) and pid (the merged
// trace's process row key) in the welcome. A worker that predates the field
// simply omits it — JSON ignores unknown hello fields — and the client then
// strips trace contexts from jobs it ships there, so mixed-version fleets
// keep working with tracing degraded to the nodes that support it.
package shard

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"

	"github.com/wattwiseweb/greenweb/internal/fleet"
)

// protoVersion is the handshake version; a worker refuses a mismatched
// client so a silent semantic skew cannot masquerade as a flaky network.
const protoVersion = 1

// maxFramePayload bounds one frame. The largest legitimate payload — a
// result carrying a full-trace run's ledger spans and decision log — is a
// few megabytes; 64 MiB keeps a corrupt length prefix from allocating the
// heap away.
const maxFramePayload = 64 << 20

// Frame type tags.
const (
	frameHello   = "hello"
	frameWelcome = "welcome"
	frameJob     = "job"
	frameResult  = "result"
	framePing    = "ping"
	framePong    = "pong"
	frameCancel  = "cancel"
)

// frame is the wire envelope. Unused fields are omitted per type.
type frame struct {
	T       string      `json:"t"`
	ID      uint64      `json:"id,omitempty"`
	Proto   int         `json:"proto,omitempty"`   // hello/welcome
	Workers int         `json:"workers,omitempty"` // welcome
	Name    string      `json:"name,omitempty"`    // welcome: worker identity
	Trace   bool        `json:"trace,omitempty"`   // hello/welcome: tracing negotiated
	Now     int64       `json:"now_us,omitempty"`  // welcome: worker clock, unix µs
	PID     int         `json:"pid,omitempty"`     // welcome: worker process id
	Job     *fleet.Job  `json:"job,omitempty"`
	Result  *wireResult `json:"result,omitempty"`
	Err     string      `json:"err,omitempty"` // welcome refusal
}

// writeFrame marshals and writes one frame with a single Write call.
func writeFrame(w io.Writer, f frame) error {
	payload, err := json.Marshal(f)
	if err != nil {
		return fmt.Errorf("shard: encoding %s frame: %w", f.T, err)
	}
	if len(payload) > maxFramePayload {
		return fmt.Errorf("shard: %s frame payload %d bytes exceeds %d", f.T, len(payload), maxFramePayload)
	}
	buf := make([]byte, 4+len(payload))
	binary.BigEndian.PutUint32(buf, uint32(len(payload)))
	copy(buf[4:], payload)
	_, err = w.Write(buf)
	return err
}

// readFrame reads and decodes one frame.
func readFrame(r io.Reader) (frame, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return frame{}, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n == 0 || n > maxFramePayload {
		return frame{}, fmt.Errorf("shard: frame length %d out of range", n)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		// A short payload is a torn frame: surface it distinctly so chaos
		// tests can assert the failure mode.
		if err == io.ErrUnexpectedEOF {
			return frame{}, fmt.Errorf("shard: torn frame: %w", err)
		}
		return frame{}, err
	}
	var f frame
	if err := json.Unmarshal(payload, &f); err != nil {
		return frame{}, fmt.Errorf("shard: decoding frame: %w", err)
	}
	return f, nil
}
