package shard

import (
	"context"
	"net"
	"testing"
	"time"

	"github.com/wattwiseweb/greenweb/internal/acmp"
	"github.com/wattwiseweb/greenweb/internal/fleet"
	"github.com/wattwiseweb/greenweb/internal/harness"
	"github.com/wattwiseweb/greenweb/internal/obs/trace"
)

// TestRemoteTraceNegotiation pins the happy path: a current worker echoes
// trace support, executes a traced job, and ships its spans back on the
// result frame, where the client stamps them with the node's identity.
func TestRemoteTraceNegotiation(t *testing.T) {
	exec := func(ctx context.Context, j fleet.Job) (*harness.Run, error) {
		return &harness.Run{Frames: 1, Energy: acmp.Joules(1)}, nil
	}
	_, addr := startWorker(t, WorkerOptions{
		Name: "nodeA",
		Pool: fleet.Options{Workers: 1, Execute: exec},
	})
	n, err := NewRemoteNode(0, fastRemote(addr))
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()
	if n.Name() != "nodeA" {
		t.Fatalf("Name() = %q, want nodeA", n.Name())
	}

	job := fleet.Job{App: "Todo", Kind: harness.Perf, Phase: fleet.Micro,
		Trace: &trace.Context{Sweep: "s-test", Job: 3, Parent: 42}}
	res := n.Run(context.Background(), job)
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if len(res.Spans) == 0 {
		t.Fatal("traced job came back with no worker spans")
	}
	sawExecute := false
	for _, sp := range res.Spans {
		if sp.Node != "nodeA" {
			t.Errorf("span %q node = %q, want nodeA (stamped on delivery)", sp.Name, sp.Node)
		}
		if sp.Job != 3 {
			t.Errorf("span %q job = %d, want 3 (from the trace context)", sp.Name, sp.Job)
		}
		if sp.Name == "execute" {
			sawExecute = true
			if sp.Parent != 42 {
				t.Errorf("execute parent = %d, want the root span id 42", sp.Parent)
			}
		}
	}
	if !sawExecute {
		t.Errorf("no execute span in %+v", res.Spans)
	}
}

// fakeWorker is a hand-rolled frame server for negotiation edge cases: it
// answers the handshake with the caller's welcome frame, then serves job
// frames with canned results, reporting each received job for inspection.
func fakeWorker(t *testing.T, welcome frame, gotJobs chan<- fleet.Job) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	go func() {
		for {
			conn, err := l.Accept()
			if err != nil {
				return
			}
			go func() {
				defer conn.Close()
				if _, err := readFrame(conn); err != nil {
					return
				}
				if writeFrame(conn, welcome) != nil {
					return
				}
				for {
					f, err := readFrame(conn)
					if err != nil {
						return
					}
					switch f.T {
					case framePing:
						writeFrame(conn, frame{T: framePong, ID: f.ID})
					case frameJob:
						gotJobs <- *f.Job
						writeFrame(conn, frame{T: frameResult, ID: f.ID,
							Result: encodeResult(fleet.Result{Job: *f.Job, Worker: 0})})
					}
				}
			}()
		}
	}()
	return l.Addr().String()
}

// TestLegacyWorkerGetsStrippedTrace: a worker that does not echo trace
// support (an old binary, or greennode -no-obs) must never receive trace
// contexts — the client strips them per session, and the job still runs.
func TestLegacyWorkerGetsStrippedTrace(t *testing.T) {
	gotJobs := make(chan fleet.Job, 1)
	addr := fakeWorker(t, frame{T: frameWelcome, Proto: protoVersion,
		Workers: 1, Name: "legacy"}, gotJobs)
	n, err := NewRemoteNode(0, fastRemote(addr))
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()

	job := fleet.Job{App: "Todo", Kind: harness.Perf, Phase: fleet.Micro,
		Trace: &trace.Context{Sweep: "s-test", Job: 0, Parent: 7}}
	res := n.Run(context.Background(), job)
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	got := <-gotJobs
	if got.Trace != nil {
		t.Fatalf("legacy worker received trace context %+v, want stripped", got.Trace)
	}
	// The caller's own job copy keeps its context — stripping is wire-only.
	if job.Trace == nil {
		t.Fatal("client-side job lost its trace context")
	}
	if off := n.Health().ClockOffsetUS; off != 0 {
		t.Errorf("un-negotiated session reported clock offset %d, want 0", off)
	}
}

// TestHandshakeClockOffset: a worker whose welcome clock is skewed five
// seconds ahead yields a matching handshake offset estimate, and shipped
// spans are rebased into the client's timeline on delivery.
func TestHandshakeClockOffset(t *testing.T) {
	const skewUS = 5_000_000
	gotJobs := make(chan fleet.Job, 1)
	addr := fakeWorker(t, frame{T: frameWelcome, Proto: protoVersion,
		Workers: 1, Name: "skewed", Trace: true, PID: 999,
		Now: time.Now().UnixMicro() + skewUS}, gotJobs)
	n, err := NewRemoteNode(0, fastRemote(addr))
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()

	off := n.Health().ClockOffsetUS
	// The handshake round trip on loopback is well under 100ms, so the
	// estimate must land within that of the injected skew.
	if off < skewUS-100_000 || off > skewUS+100_000 {
		t.Fatalf("clock offset = %dµs, want ≈%dµs", off, skewUS)
	}
}
