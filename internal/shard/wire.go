package shard

import (
	"errors"
	"sort"
	"time"

	"github.com/wattwiseweb/greenweb/internal/acmp"
	"github.com/wattwiseweb/greenweb/internal/apps"
	"github.com/wattwiseweb/greenweb/internal/fleet"
	"github.com/wattwiseweb/greenweb/internal/harness"
	"github.com/wattwiseweb/greenweb/internal/ledger"
	"github.com/wattwiseweb/greenweb/internal/obs"
	"github.com/wattwiseweb/greenweb/internal/obs/trace"
	"github.com/wattwiseweb/greenweb/internal/sim"
)

// wireResult is fleet.Result in JSON-serializable form. The job itself is
// not carried: the client keyed the call by frame id and reattaches its own
// copy, so the wire never round-trips what both sides already know.
type wireResult struct {
	Run         *wireRun `json:"run,omitempty"`
	Err         string   `json:"err,omitempty"`
	Worker      int      `json:"worker"`
	LatencyNS   int64    `json:"latency_ns"`
	Attempts    int      `json:"attempts,omitempty"`
	History     []string `json:"history,omitempty"`
	Quarantined bool     `json:"quarantined,omitempty"`
	// Spans piggybacks the worker's trace spans for a traced job (on the
	// worker's clock; the client aligns them), with the worker-side
	// dropped-span count. Empty for untraced jobs, so the wire cost is zero
	// when tracing is off.
	Spans     []trace.Span `json:"spans,omitempty"`
	SpanDrops int          `json:"span_drops,omitempty"`
}

// wireResidency is one entry of the per-configuration residency map,
// flattened because acmp.Config is a struct key JSON cannot express.
type wireResidency struct {
	Config int          `json:"config"` // acmp config index
	Dur    sim.Duration `json:"dur_us"`
}

// wireConfigMark mirrors ledger.ConfigMark, whose From/To fields are
// deliberately excluded from its own JSON form.
type wireConfigMark struct {
	At          sim.Time `json:"at_us"`
	FromCluster int      `json:"fc"`
	FromMHz     int      `json:"fm"`
	ToCluster   int      `json:"tc"`
	ToMHz       int      `json:"tm"`
}

// wireRun carries every harness.Run field greensrv's result, event, and
// trace endpoints read — the ResultRow scalars, the decision log, and the
// ledger spans — plus the residency histogram. FrameResults (the raw
// per-frame timeline) is deliberately not shipped: nothing behind the
// fleet.Runner seam reads it, and it dominates payload size.
type wireRun struct {
	Kind harness.Kind `json:"kind"`

	Energy     acmp.Joules      `json:"energy_j"`
	Frames     int              `json:"frames"`
	Switches   acmp.SwitchStats `json:"switches"`
	Residency  []wireResidency  `json:"residency,omitempty"`
	ViolationI float64          `json:"violation_i"`
	ViolationU float64          `json:"violation_u"`

	TotalEnergy acmp.Joules  `json:"total_energy_j"`
	LoadLatency sim.Duration `json:"load_latency_us"`

	FrameEnergy acmp.Joules      `json:"frame_energy_j"`
	IdleEnergy  acmp.Joules      `json:"idle_energy_j"`
	EventEnergy acmp.Joules      `json:"event_energy_j"`
	Spans       []ledger.Span    `json:"spans,omitempty"`
	ConfigMarks []wireConfigMark `json:"config_marks,omitempty"`
	Decisions   []obs.Decision   `json:"decisions,omitempty"`

	ThermalTrips  int         `json:"thermal_trips,omitempty"`
	DVFSDenied    int         `json:"dvfs_denied,omitempty"`
	DVFSDelayed   int         `json:"dvfs_delayed,omitempty"`
	DAQSamples    int         `json:"daq_samples,omitempty"`
	DAQDropped    int         `json:"daq_dropped,omitempty"`
	MeteredEnergy acmp.Joules `json:"metered_energy_j,omitempty"`
	CapClamps     int         `json:"cap_clamps,omitempty"`
	Degradations  int         `json:"degradations,omitempty"`
	Recoveries    int         `json:"recoveries,omitempty"`
}

// encodeResult projects a fleet.Result onto the wire.
func encodeResult(r fleet.Result) *wireResult {
	w := &wireResult{
		Worker:      r.Worker,
		LatencyNS:   int64(r.Latency),
		Attempts:    r.Attempts,
		History:     r.History,
		Quarantined: r.Quarantined,
		Spans:       r.Spans,
		SpanDrops:   r.SpanDrops,
	}
	if r.Err != nil {
		w.Err = r.Err.Error()
	}
	if r.Run != nil {
		w.Run = encodeRun(r.Run)
	}
	return w
}

// decodeResult reconstructs a fleet.Result, reattaching the client's copy
// of the job.
func decodeResult(w *wireResult, job fleet.Job) fleet.Result {
	r := fleet.Result{
		Job:         job,
		Worker:      w.Worker,
		Latency:     time.Duration(w.LatencyNS),
		Attempts:    w.Attempts,
		History:     w.History,
		Quarantined: w.Quarantined,
		Spans:       w.Spans,
		SpanDrops:   w.SpanDrops,
	}
	if w.Err != "" {
		r.Err = errors.New(w.Err)
	}
	if w.Run != nil {
		r.Run = decodeRun(w.Run, job)
	}
	return r
}

func encodeRun(run *harness.Run) *wireRun {
	w := &wireRun{
		Kind:          run.Kind,
		Energy:        run.Energy,
		Frames:        run.Frames,
		Switches:      run.Switches,
		ViolationI:    run.ViolationI,
		ViolationU:    run.ViolationU,
		TotalEnergy:   run.TotalEnergy,
		LoadLatency:   run.LoadLatency,
		FrameEnergy:   run.FrameEnergy,
		IdleEnergy:    run.IdleEnergy,
		EventEnergy:   run.EventEnergy,
		Spans:         run.Spans,
		Decisions:     run.Decisions,
		ThermalTrips:  run.ThermalTrips,
		DVFSDenied:    run.DVFSDenied,
		DVFSDelayed:   run.DVFSDelayed,
		DAQSamples:    run.DAQSamples,
		DAQDropped:    run.DAQDropped,
		MeteredEnergy: run.MeteredEnergy,
		CapClamps:     run.CapClamps,
		Degradations:  run.Degradations,
		Recoveries:    run.Recoveries,
	}
	for _, m := range run.ConfigMarks {
		w.ConfigMarks = append(w.ConfigMarks, wireConfigMark{
			At:          m.At,
			FromCluster: int(m.From.Cluster), FromMHz: m.From.MHz,
			ToCluster: int(m.To.Cluster), ToMHz: m.To.MHz,
		})
	}
	// Residency flattens to (config index, duration) pairs sorted by index,
	// so the wire form of one run is itself deterministic.
	for cfg, d := range run.Residency {
		w.Residency = append(w.Residency, wireResidency{Config: cfg.Index(), Dur: d})
	}
	sort.Slice(w.Residency, func(i, j int) bool { return w.Residency[i].Config < w.Residency[j].Config })
	return w
}

func decodeRun(w *wireRun, job fleet.Job) *harness.Run {
	run := &harness.Run{
		Kind:          w.Kind,
		Energy:        w.Energy,
		Frames:        w.Frames,
		Switches:      w.Switches,
		ViolationI:    w.ViolationI,
		ViolationU:    w.ViolationU,
		TotalEnergy:   w.TotalEnergy,
		LoadLatency:   w.LoadLatency,
		FrameEnergy:   w.FrameEnergy,
		IdleEnergy:    w.IdleEnergy,
		EventEnergy:   w.EventEnergy,
		Spans:         w.Spans,
		Decisions:     w.Decisions,
		ThermalTrips:  w.ThermalTrips,
		DVFSDenied:    w.DVFSDenied,
		DVFSDelayed:   w.DVFSDelayed,
		DAQSamples:    w.DAQSamples,
		DAQDropped:    w.DAQDropped,
		MeteredEnergy: w.MeteredEnergy,
		CapClamps:     w.CapClamps,
		Degradations:  w.Degradations,
		Recoveries:    w.Recoveries,
	}
	if app, ok := apps.ByName(job.App); ok {
		run.App = app
	}
	for _, m := range w.ConfigMarks {
		run.ConfigMarks = append(run.ConfigMarks, ledger.ConfigMark{
			At:   m.At,
			From: acmp.Config{Cluster: acmp.Cluster(m.FromCluster), MHz: m.FromMHz},
			To:   acmp.Config{Cluster: acmp.Cluster(m.ToCluster), MHz: m.ToMHz},
		})
	}
	if len(w.Residency) > 0 {
		run.Residency = make(map[acmp.Config]sim.Duration, len(w.Residency))
		for _, r := range w.Residency {
			run.Residency[acmp.ConfigAt(r.Config)] = r.Dur
		}
	}
	return run
}
