package shard

import (
	"context"
	"errors"
	"fmt"
	"net"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"github.com/wattwiseweb/greenweb/internal/fleet"
	"github.com/wattwiseweb/greenweb/internal/obs"
)

// WorkerOptions configures a Worker process (the greennode side of the
// remote protocol).
type WorkerOptions struct {
	// Name identifies the worker in its welcome frame (host:port by default).
	Name string
	// Pool is the execution pool template: worker count, retry ladder,
	// timeouts, and — in tests — the Execute override.
	Pool fleet.Options
	// WriteTimeout caps one result/pong frame write. 0 → 10s.
	WriteTimeout time.Duration
}

// Worker executes jobs shipped over the frame protocol on a local
// fleet.Pool: the full retry/quarantine ladder runs worker-side, so a
// remote job's terminal result is indistinguishable from a local one.
//
// Each accepted connection is handshaken (hello/welcome with a protocol
// version check), then serves a multiplexed stream: job frames start pool
// executions whose results are written back keyed by frame id, ping frames
// are answered immediately (heartbeats measure the transport even while
// every pool slot is busy), and cancel frames abort the matching job's
// context. A broken connection cancels that connection's in-flight jobs.
type Worker struct {
	opts WorkerOptions
	pool *fleet.Pool

	mu     sync.Mutex
	ln     net.Listener
	conns  map[net.Conn]context.CancelFunc
	closed bool
	wg     sync.WaitGroup

	connsTotal atomic.Int64 // connections ever accepted
	jobsTotal  atomic.Int64 // job frames executed
	spanDrops  atomic.Int64 // trace spans dropped to per-job budgets
}

// NewWorker builds the worker and its pool.
func NewWorker(opts WorkerOptions) *Worker {
	if opts.WriteTimeout <= 0 {
		opts.WriteTimeout = 10 * time.Second
	}
	return &Worker{
		opts:  opts,
		pool:  fleet.New(opts.Pool),
		conns: map[net.Conn]context.CancelFunc{},
	}
}

// Workers reports the pool's execution slots (advertised in welcome frames).
func (w *Worker) Workers() int { return w.pool.Workers() }

// RegisterMetrics exposes the worker's transport counters plus its pool's
// greenweb_fleet_* family on an obs registry — the greennode -http health
// surface serves exactly this.
func (w *Worker) RegisterMetrics(reg *obs.Registry) {
	w.pool.RegisterMetrics(reg)
	reg.GaugeFunc("greenweb_node_connections",
		"Client connections currently served", func() float64 {
			w.mu.Lock()
			defer w.mu.Unlock()
			return float64(len(w.conns))
		})
	reg.CounterFunc("greenweb_node_connections_total",
		"Client connections ever accepted", func() float64 { return float64(w.connsTotal.Load()) })
	reg.CounterFunc("greenweb_node_jobs_total",
		"Job frames executed", func() float64 { return float64(w.jobsTotal.Load()) })
	reg.CounterFunc("greenweb_node_span_drops_total",
		"Trace spans dropped to per-job budgets", func() float64 { return float64(w.spanDrops.Load()) })
}

// Serve accepts connections on l until Close (or Kill). It returns the
// listener's terminal error, nil after an orderly Close.
func (w *Worker) Serve(l net.Listener) error {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		l.Close()
		return errors.New("shard: worker closed")
	}
	w.ln = l
	name := w.opts.Name
	w.mu.Unlock()
	if name == "" {
		name = l.Addr().String()
	}
	for {
		conn, err := l.Accept()
		if err != nil {
			w.mu.Lock()
			closed := w.closed
			w.mu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		w.mu.Lock()
		if w.closed {
			w.mu.Unlock()
			conn.Close()
			return nil
		}
		ctx, cancel := context.WithCancel(context.Background())
		w.conns[conn] = cancel
		w.connsTotal.Add(1)
		w.wg.Add(1)
		w.mu.Unlock()
		go func() {
			defer w.wg.Done()
			w.serveConn(ctx, conn, name)
			cancel()
			w.mu.Lock()
			delete(w.conns, conn)
			w.mu.Unlock()
		}()
	}
}

// Close stops accepting, closes every connection (cancelling its in-flight
// jobs), waits for the connection handlers, and shuts the pool down.
func (w *Worker) Close() {
	w.kill()
	w.wg.Wait()
	w.pool.Close()
}

// Kill is the abrupt variant: listener and connections are closed without
// waiting for handlers or draining the pool — the in-process analogue of a
// SIGKILL, used by chaos tests to die mid-frame.
func (w *Worker) Kill() { w.kill() }

func (w *Worker) kill() {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return
	}
	w.closed = true
	if w.ln != nil {
		w.ln.Close()
	}
	for conn, cancel := range w.conns {
		cancel()
		conn.Close()
	}
}

// serveConn handshakes and serves one client connection.
func (w *Worker) serveConn(ctx context.Context, conn net.Conn, name string) {
	defer conn.Close()
	conn.SetReadDeadline(time.Now().Add(30 * time.Second))
	hello, err := readFrame(conn)
	if err != nil {
		return
	}
	var writeMu sync.Mutex
	write := func(f frame) error {
		writeMu.Lock()
		defer writeMu.Unlock()
		conn.SetWriteDeadline(time.Now().Add(w.opts.WriteTimeout))
		return writeFrame(conn, f)
	}
	if hello.T != frameHello || hello.Proto != protoVersion {
		write(frame{T: frameWelcome, Err: fmt.Sprintf(
			"unsupported handshake (%s proto %d; want %s proto %d)",
			hello.T, hello.Proto, frameHello, protoVersion)})
		return
	}
	// Tracing negotiation: echo trace only when the client asked for it and
	// this process has obs enabled (greennode -no-obs keeps the fleet trace
	// honest about which nodes contributed). The clock read (now_us) is
	// taken as late as possible so the client's offset estimate brackets
	// it; pid keys this worker's process row in the merged trace.
	welcome := frame{T: frameWelcome, Proto: protoVersion,
		Workers: w.pool.Workers(), Name: name}
	if hello.Trace && obs.Enabled() {
		welcome.Trace = true
		welcome.PID = os.Getpid()
		welcome.Now = time.Now().UnixMicro()
	}
	if err := write(welcome); err != nil {
		return
	}
	conn.SetReadDeadline(time.Time{})

	var jobMu sync.Mutex
	cancels := map[uint64]context.CancelFunc{}
	defer func() {
		jobMu.Lock()
		for _, cancel := range cancels {
			cancel()
		}
		jobMu.Unlock()
	}()

	for {
		f, err := readFrame(conn)
		if err != nil {
			return
		}
		switch f.T {
		case framePing:
			if write(frame{T: framePong, ID: f.ID}) != nil {
				return
			}
		case frameCancel:
			jobMu.Lock()
			if cancel, ok := cancels[f.ID]; ok {
				cancel()
			}
			jobMu.Unlock()
		case frameJob:
			if f.Job == nil {
				continue
			}
			id, job := f.ID, *f.Job
			w.jobsTotal.Add(1)
			jobCtx, cancel := context.WithCancel(ctx)
			jobMu.Lock()
			cancels[id] = cancel
			jobMu.Unlock()
			// Start from a goroutine so a saturated pool exerts
			// backpressure on this job alone, never on the read loop —
			// pings must keep flowing while every slot is busy.
			go func() {
				err := w.pool.Start(jobCtx, job, nil, func(r fleet.Result) {
					jobMu.Lock()
					delete(cancels, id)
					jobMu.Unlock()
					cancel()
					w.spanDrops.Add(int64(r.SpanDrops))
					write(frame{T: frameResult, ID: id, Result: encodeResult(r)})
				})
				if err != nil {
					jobMu.Lock()
					delete(cancels, id)
					jobMu.Unlock()
					cancel()
					write(frame{T: frameResult, ID: id, Result: encodeResult(
						fleet.Result{Job: job, Worker: -1, Err: err})})
				}
			}()
		}
	}
}
