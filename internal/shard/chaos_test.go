package shard

import (
	"context"
	"fmt"
	"net"
	"testing"
	"time"

	"github.com/wattwiseweb/greenweb/internal/fleet"
	"github.com/wattwiseweb/greenweb/internal/harness"
)

// TestChaosDrawDeterministic: the fault stream is a pure function of
// (seed, direction, frame index) — two specs with the same seed agree on
// every draw, a different seed diverges somewhere.
func TestChaosDrawDeterministic(t *testing.T) {
	a := ChaosSpec{Seed: 42}
	b := ChaosSpec{Seed: 42}
	other := ChaosSpec{Seed: 7}
	diverged := false
	for i := uint64(0); i < 256; i++ {
		if a.draw("dial-1/w", i) != b.draw("dial-1/w", i) {
			t.Fatalf("same seed diverged at frame %d", i)
		}
		if a.draw("dial-1/w", i) != other.draw("dial-1/w", i) {
			diverged = true
		}
	}
	if !diverged {
		t.Fatal("different seeds never diverged; draw ignores the seed")
	}
}

// chaosSweep runs one sweep through two remote nodes whose client
// connections are wrapped in the chaos spec, and returns the rendered
// NDJSON plus the cluster for post-assertions.
func chaosSweep(t *testing.T, spec ChaosSpec, jobs []fleet.Job, exec func(context.Context, fleet.Job) (*harness.Run, error)) (string, int64) {
	t.Helper()
	var nodes []Node
	for i := 0; i < 2; i++ {
		_, addr := startWorker(t, WorkerOptions{Pool: fleet.Options{Workers: 2, Execute: exec}})
		opts := fastRemote(addr)
		opts.MaxReconnects = 25 // survive the whole fault schedule
		addrCopy := addr
		opts.Dial = spec.Dialer(func(ctx context.Context) (net.Conn, error) {
			var d net.Dialer
			return d.DialContext(ctx, "tcp", addrCopy)
		})
		// The synchronous first dial is itself subject to chaos; retry like
		// an operator restarting greensrv. The dial-attempt counter advances
		// through the failures, so the schedule stays deterministic.
		var n *RemoteNode
		var err error
		for attempt := 0; attempt < 10; attempt++ {
			if n, err = NewRemoteNode(i, opts); err == nil {
				break
			}
		}
		if err != nil {
			t.Fatal(err)
		}
		nodes = append(nodes, n)
	}
	c := NewWithNodes(nodes, 0)
	out := render(t, c, jobs)
	var reconnects int64
	for _, n := range nodes {
		reconnects += n.(*RemoteNode).Health().Reconnects
	}
	return out, reconnects
}

// TestChaosTransportDeterminism: a sweep over connections that drop, tear,
// and stall frames still streams bytes identical to the pristine
// single-node run — every lost job re-homes and re-executes — and the same
// chaos seed reproduces the same byte stream on a second run.
func TestChaosTransportDeterminism(t *testing.T) {
	exec := func(ctx context.Context, j fleet.Job) (*harness.Run, error) {
		select {
		case <-time.After(time.Millisecond):
		case <-ctx.Done():
			return nil, ctx.Err()
		}
		return &harness.Run{Frames: 1 + len(j.App)%7}, nil
	}
	jobs := make([]fleet.Job, 24)
	for i := range jobs {
		jobs[i] = fleet.Job{App: fmt.Sprintf("cell-%02d", i), Kind: harness.Perf, Phase: fleet.Full}
	}
	want := render(t, fleet.New(fleet.Options{Workers: 1, Execute: exec}), jobs)

	spec := ChaosSpec{
		Seed:      9,
		DropProb:  0.04,
		TearProb:  0.04,
		StallProb: 0.05, Stall: 2 * time.Millisecond,
		ReadDelayProb: 0.05, ReadDelay: time.Millisecond,
	}
	got, reconnects := chaosSweep(t, spec, jobs, exec)
	if got != want {
		t.Fatalf("chaos sweep diverged from pristine output:\n--- got\n%s--- want\n%s", got, want)
	}
	if reconnects == 0 {
		t.Fatal("chaos schedule injected no faults; probabilities or seed too tame to prove anything")
	}
	again, _ := chaosSweep(t, spec, jobs, exec)
	if again != want {
		t.Fatalf("second run under the same chaos seed diverged:\n--- got\n%s--- want\n%s", again, want)
	}
}

// TestChaosTornFrameSurfaces: a torn frame (half written, connection
// killed) is read back as an error, not as a short or corrupt frame.
func TestChaosTornFrameSurfaces(t *testing.T) {
	client, server := net.Pipe()
	defer server.Close()
	wrapped := ChaosSpec{Seed: 1, TearProb: 1}.Wrap(client, "w")
	go func() {
		writeFrame(wrapped, frame{T: frameJob, ID: 1, Job: &fleet.Job{App: "x"}})
	}()
	if _, err := readFrame(server); err == nil {
		t.Fatal("torn frame decoded cleanly; reader must surface the tear")
	}
}
