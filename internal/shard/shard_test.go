package shard

import (
	"bytes"
	"context"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/wattwiseweb/greenweb/internal/faults"
	"github.com/wattwiseweb/greenweb/internal/fleet"
	"github.com/wattwiseweb/greenweb/internal/harness"
	"github.com/wattwiseweb/greenweb/internal/obs"
)

// topologyJobs is a sweep that exercises the paper grid AND the fault
// machinery: clean cells, thermally capped cells, and storm-doomed cells
// whose retry/quarantine interleavings must not depend on topology.
func topologyJobs() []fleet.Job {
	doomed := &faults.Spec{
		Seed:       3,
		DVFS:       &faults.DVFSSpec{DenyProb: 0.95},
		StormAbort: 3,
	}
	capped := faults.Default(21)
	var jobs []fleet.Job
	for _, app := range []string{"MSN", "Todo"} {
		for _, kind := range []harness.Kind{harness.Perf, harness.GreenWebI} {
			jobs = append(jobs, fleet.Job{App: app, Kind: kind, Phase: fleet.Full})
			jobs = append(jobs, fleet.Job{App: app, Kind: kind, Phase: fleet.Full, Faults: capped})
		}
		// GreenWeb-I requests frequency switches constantly, so the 0.95
		// deny probability crosses the storm threshold within a few frames.
		jobs = append(jobs, fleet.Job{App: app, Kind: harness.GreenWebI, Phase: fleet.Full, Faults: doomed})
	}
	return jobs
}

// render runs the sweep on a runner and returns the deterministic NDJSON.
func render(t *testing.T, r fleet.Runner, jobs []fleet.Job) string {
	t.Helper()
	defer r.Close()
	var buf bytes.Buffer
	if err := fleet.WriteResults(&buf, fleet.RunSweep(context.Background(), r, jobs), true); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

// TestTopologyDeterminism pins the standing guarantee at every tested
// node×worker count: sweep NDJSON — including a faulted sweep's retry and
// quarantine provenance — is byte-identical to the sequential path at
// 1×1, 2×4, and 4×2.
func TestTopologyDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("full-trace sweep ×4 topologies")
	}
	jobs := topologyJobs()
	nodeOpts := fleet.Options{MaxAttempts: 2, RetryBaseDelay: time.Millisecond}

	seqOpts := nodeOpts
	seqOpts.Workers = 1
	want := render(t, fleet.New(seqOpts), jobs)
	if !strings.Contains(want, `"quarantined":true`) {
		t.Fatalf("sweep exercised no quarantine; doomed spec too weak:\n%s", want)
	}

	for _, topo := range []struct{ nodes, workers int }{{1, 1}, {2, 4}, {4, 2}} {
		c := New(Options{Nodes: topo.nodes, WorkersPerNode: topo.workers, Node: nodeOpts})
		got := render(t, c, jobs)
		if got != want {
			t.Fatalf("%d×%d topology diverged from sequential output:\n--- got\n%s--- want\n%s",
				topo.nodes, topo.workers, got, want)
		}
	}
}

// fakeExec builds an Execute override with per-app latencies.
func fakeExec(d map[string]time.Duration) func(context.Context, fleet.Job) (*harness.Run, error) {
	return func(ctx context.Context, j fleet.Job) (*harness.Run, error) {
		select {
		case <-time.After(d[j.App]):
			return &harness.Run{Frames: 1}, nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
}

// TestWorkStealing: a node that drains its home partition steals from its
// loaded sibling instead of idling.
func TestWorkStealing(t *testing.T) {
	exec := fakeExec(map[string]time.Duration{"slow": 30 * time.Millisecond, "fast": time.Millisecond})
	c := New(Options{Nodes: 2, WorkersPerNode: 1, QueueDepth: 64, Node: fleet.Options{Execute: exec}})
	defer c.Close()

	// Round-robin partitioning: even submissions land on node 0's
	// partition. Make those the slow ones, so node 1 runs dry and steals.
	jobs := make([]fleet.Job, 20)
	for i := range jobs {
		app := "fast"
		if i%2 == 0 {
			app = "slow"
		}
		jobs[i] = fleet.Job{App: app, Kind: harness.Perf, Phase: fleet.Full}
	}
	res := fleet.RunSweep(context.Background(), c, jobs)
	for i, r := range res {
		if r.Err != nil {
			t.Fatalf("job %d failed: %v", i, r.Err)
		}
		if r.Job.App != jobs[i].App {
			t.Fatalf("row %d carries job %s; submission-order merge broken", i, r.Job.App)
		}
	}
	if c.Steals(1) == 0 {
		t.Fatal("node 1 never stole from node 0's backed-up partition")
	}
	st := c.Stats()
	if st.Done != 20 || st.Failed != 0 {
		t.Fatalf("stats = %+v, want 20 done", st)
	}
}

// TestClusterBackpressureAndClose: a full cluster queue blocks Start until
// ctx cancels; Close rejects further submissions and drains what is queued.
func TestClusterBackpressureAndClose(t *testing.T) {
	block := make(chan struct{})
	exec := func(ctx context.Context, j fleet.Job) (*harness.Run, error) {
		select {
		case <-block:
			return &harness.Run{}, nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	c := New(Options{Nodes: 2, WorkersPerNode: 1, QueueDepth: 2, Node: fleet.Options{Execute: exec}})

	var wg sync.WaitGroup
	deliver := func(fleet.Result) { wg.Done() }
	// 2 running + 2 queued fill the cluster.
	for i := 0; i < 4; i++ {
		wg.Add(1)
		if err := c.Start(context.Background(), fleet.Job{App: "a"}, nil, deliver); err != nil {
			t.Fatal(err)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if err := c.Start(ctx, fleet.Job{App: "b"}, nil, nil); err != context.DeadlineExceeded {
		t.Fatalf("Start on full queue = %v, want DeadlineExceeded", err)
	}
	close(block)
	wg.Wait()
	c.Close()
	if err := c.Start(context.Background(), fleet.Job{App: "c"}, nil, nil); err != fleet.ErrClosed {
		t.Fatalf("Start after Close = %v, want ErrClosed", err)
	}
}

// TestClusterMetricsExposition: the cluster serves the greenweb_fleet_*
// family (dashboard continuity) plus per-node steal/job counters and
// per-partition depth gauges.
func TestClusterMetricsExposition(t *testing.T) {
	exec := fakeExec(map[string]time.Duration{"slow": 20 * time.Millisecond, "fast": time.Millisecond})
	c := New(Options{Nodes: 2, WorkersPerNode: 1, Node: fleet.Options{Execute: exec}})
	defer c.Close()
	reg := obs.NewRegistry()
	c.RegisterMetrics(reg)

	jobs := make([]fleet.Job, 12)
	for i := range jobs {
		app := "fast"
		if i%2 == 0 {
			app = "slow"
		}
		jobs[i] = fleet.Job{App: app}
	}
	fleet.RunSweep(context.Background(), c, jobs)

	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"greenweb_fleet_jobs_done_total 12",
		"greenweb_shard_nodes 2",
		`greenweb_shard_steals_total{node="0"}`,
		`greenweb_shard_steals_total{node="1"}`,
		`greenweb_shard_node_jobs_total{node="0"}`,
		`greenweb_shard_partition_depth{partition="1"} 0`,
		"# TYPE greenweb_fleet_job_latency_seconds histogram",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
}

// TestClusterDeliverExactlyOnceUnderCancel mirrors the pool guarantee:
// every submission delivers exactly one terminal result even when the sweep
// context dies mid-flight.
func TestClusterDeliverExactlyOnceUnderCancel(t *testing.T) {
	exec := func(ctx context.Context, j fleet.Job) (*harness.Run, error) {
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-time.After(5 * time.Millisecond):
			return &harness.Run{}, nil
		}
	}
	c := New(Options{Nodes: 3, WorkersPerNode: 2, Node: fleet.Options{Execute: exec}})
	defer c.Close()

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(10 * time.Millisecond)
		cancel()
	}()
	jobs := make([]fleet.Job, 40)
	res := fleet.RunSweep(ctx, c, jobs)
	if len(res) != 40 {
		t.Fatalf("got %d results, want 40", len(res))
	}
	var ok, failed int
	for _, r := range res {
		if r.Err != nil {
			failed++
		} else {
			ok++
		}
	}
	if ok+failed != 40 {
		t.Fatalf("ok=%d failed=%d, want 40 total", ok, failed)
	}
}
