package shard

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"net"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"github.com/wattwiseweb/greenweb/internal/acmp"
	"github.com/wattwiseweb/greenweb/internal/fleet"
	"github.com/wattwiseweb/greenweb/internal/harness"
	"github.com/wattwiseweb/greenweb/internal/obs"
)

// fastRemote is the test timing profile: suspicion and reconnection resolve
// in milliseconds so failure paths run inside the test budget.
func fastRemote(addr string) RemoteOptions {
	return RemoteOptions{
		Addr:              addr,
		DialTimeout:       2 * time.Second,
		HeartbeatInterval: 20 * time.Millisecond,
		HeartbeatTimeout:  50 * time.Millisecond,
		SuspectAfter:      2,
		MaxReconnects:     3,
		ReconnectBase:     5 * time.Millisecond,
		ReconnectMax:      20 * time.Millisecond,
		Seed:              1,
	}
}

// startWorker serves a Worker on a loopback listener and returns its address.
func startWorker(t *testing.T, opts WorkerOptions) (*Worker, string) {
	t.Helper()
	w := NewWorker(opts)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go w.Serve(l)
	t.Cleanup(w.Close)
	return w, l.Addr().String()
}

// TestRemoteSweepMatchesLocal pins the wire codec against real harness
// execution: a full faulted sweep through a greennode-style worker renders
// byte-identically to the sequential in-process path — including retry and
// quarantine provenance, which round-trips the wire too.
func TestRemoteSweepMatchesLocal(t *testing.T) {
	if testing.Short() {
		t.Skip("full-trace sweep ×2 paths")
	}
	jobs := topologyJobs()
	poolOpts := fleet.Options{MaxAttempts: 2, RetryBaseDelay: time.Millisecond}

	seqOpts := poolOpts
	seqOpts.Workers = 1
	want := render(t, fleet.New(seqOpts), jobs)

	workerPool := poolOpts
	workerPool.Workers = 4
	_, addr := startWorker(t, WorkerOptions{Pool: workerPool})
	// Lenient heartbeat: full-trace cells saturate the CPU (drastically so
	// under -race), and this test pins codec parity, not failure timing — a
	// starved heartbeat loop must not break the session and force re-homes.
	opts := fastRemote(addr)
	opts.HeartbeatInterval = 200 * time.Millisecond
	opts.HeartbeatTimeout = 5 * time.Second
	opts.SuspectAfter = 10
	n, err := NewRemoteNode(0, opts)
	if err != nil {
		t.Fatal(err)
	}
	got := render(t, NewWithNodes([]Node{n}, 0), jobs)
	if got != want {
		t.Fatalf("remote sweep diverged from sequential output:\n--- got\n%s--- want\n%s", got, want)
	}
}

// TestKillMidSweepDeterminism is the acceptance pin: a two-node cluster
// whose worker is killed mid-sweep (the in-process analogue of kill -9)
// still streams bytes identical to the pristine single-node run. Jobs
// in flight on the dying node come back as ErrNodeDown and re-home; queued
// jobs move at eviction; both re-execute deterministically elsewhere.
func TestKillMidSweepDeterminism(t *testing.T) {
	exec := func(ctx context.Context, j fleet.Job) (*harness.Run, error) {
		select {
		case <-time.After(2 * time.Millisecond):
		case <-ctx.Done():
			return nil, ctx.Err()
		}
		return &harness.Run{Frames: len(j.App), Energy: acmp.Joules(0.25 * float64(len(j.App)))}, nil
	}
	jobs := make([]fleet.Job, 30)
	for i := range jobs {
		jobs[i] = fleet.Job{App: fmt.Sprintf("app-%d", i), Kind: harness.Perf, Phase: fleet.Full}
	}

	want := render(t, fleet.New(fleet.Options{Workers: 1, Execute: exec}), jobs)

	// Worker 0 kills itself while executing its fifth job, so that job (and
	// any sibling in flight) can never write a result frame back.
	var doomed *Worker
	var executed atomic.Int64
	killExec := func(ctx context.Context, j fleet.Job) (*harness.Run, error) {
		if executed.Add(1) == 5 {
			doomed.Kill()
		}
		return exec(ctx, j)
	}
	w0 := NewWorker(WorkerOptions{Pool: fleet.Options{Workers: 2, Execute: killExec}})
	doomed = w0
	l0, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go w0.Serve(l0)
	t.Cleanup(w0.Close)
	_, addr1 := startWorker(t, WorkerOptions{Pool: fleet.Options{Workers: 2, Execute: exec}})

	n0, err := NewRemoteNode(0, fastRemote(l0.Addr().String()))
	if err != nil {
		t.Fatal(err)
	}
	n1, err := NewRemoteNode(1, fastRemote(addr1))
	if err != nil {
		t.Fatal(err)
	}
	c := NewWithNodes([]Node{n0, n1}, 0)
	got := render(t, c, jobs)
	if got != want {
		t.Fatalf("kill-mid-sweep output diverged from pristine single-node run:\n--- got\n%s--- want\n%s", got, want)
	}
	if c.Evictions() != 1 {
		t.Fatalf("evictions = %d, want 1", c.Evictions())
	}
	if c.Rehomed(0) == 0 {
		t.Fatal("no jobs were re-homed off the killed node")
	}
}

// TestHeartbeatSuspicionAndDeath: a worker that handshakes, then goes
// mute — swallowing pings and jobs — is suspected after consecutive
// heartbeat misses; with its listener gone, the reconnect budget exhausts
// and the node is declared dead, firing OnDead and failing in-flight Runs
// with ErrNodeDown.
func TestHeartbeatSuspicionAndDeath(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		conn, err := l.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		if _, err := readFrame(conn); err != nil { // hello
			return
		}
		writeFrame(conn, frame{T: frameWelcome, Proto: protoVersion, Workers: 1})
		l.Close() // one connection only: reconnects must fail
		for {     // swallow frames, answer nothing
			if _, err := readFrame(conn); err != nil {
				return
			}
		}
	}()

	opts := fastRemote(l.Addr().String())
	opts.HeartbeatInterval = 5 * time.Millisecond
	opts.HeartbeatTimeout = 10 * time.Millisecond
	n, err := NewRemoteNode(0, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()

	dead := make(chan struct{})
	n.OnDead(func() { close(dead) })

	resc := make(chan fleet.Result, 1)
	go func() { resc <- n.Run(context.Background(), fleet.Job{App: "mute"}) }()

	select {
	case <-dead:
	case <-time.After(5 * time.Second):
		t.Fatal("node never declared dead")
	}
	res := <-resc
	if !errors.Is(res.Err, ErrNodeDown) {
		t.Fatalf("in-flight Run err = %v, want ErrNodeDown", res.Err)
	}
	h := n.Health()
	if !h.Dead || h.Connected {
		t.Fatalf("health = %+v, want dead and disconnected", h)
	}
	if h.HeartbeatMisses < int64(opts.SuspectAfter) {
		t.Fatalf("heartbeat misses = %d, want >= %d", h.HeartbeatMisses, opts.SuspectAfter)
	}
	if h.Reconnects != int64(opts.MaxReconnects) {
		t.Fatalf("reconnect attempts = %d, want %d", h.Reconnects, opts.MaxReconnects)
	}
}

// TestRemoteHealthMetricsExposition: a cluster over remote nodes exposes
// the transport-health family — node_up, heartbeat RTT, reconnects, misses —
// alongside the eviction and re-home counters.
func TestRemoteHealthMetricsExposition(t *testing.T) {
	exec := func(ctx context.Context, j fleet.Job) (*harness.Run, error) { return &harness.Run{}, nil }
	_, addr := startWorker(t, WorkerOptions{Pool: fleet.Options{Workers: 1, Execute: exec}})
	n, err := NewRemoteNode(0, fastRemote(addr))
	if err != nil {
		t.Fatal(err)
	}
	c := NewWithNodes([]Node{n}, 0)
	defer c.Close()
	reg := obs.NewRegistry()
	c.RegisterMetrics(reg)

	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		`greenweb_shard_node_up{node="0"} 1`,
		`greenweb_shard_heartbeat_rtt_seconds{node="0"}`,
		`greenweb_shard_reconnects_total{node="0"} 0`,
		`greenweb_shard_heartbeat_misses_total{node="0"} 0`,
		`greenweb_shard_rehomed_jobs_total{node="0"} 0`,
		"greenweb_shard_evictions_total 0",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
}

// TestWorkerRefusesProtocolMismatch: a hello with the wrong protocol version
// is answered with a refusal welcome, and NewRemoteNode surfaces it.
func TestWorkerRefusesProtocolMismatch(t *testing.T) {
	_, addr := startWorker(t, WorkerOptions{Pool: fleet.Options{Workers: 1,
		Execute: func(ctx context.Context, j fleet.Job) (*harness.Run, error) { return &harness.Run{}, nil }}})
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := writeFrame(conn, frame{T: frameHello, Proto: protoVersion + 1}); err != nil {
		t.Fatal(err)
	}
	f, err := readFrame(conn)
	if err != nil {
		t.Fatal(err)
	}
	if f.T != frameWelcome || f.Err == "" {
		t.Fatalf("mismatched hello answered %+v, want refusal welcome", f)
	}
	if !strings.Contains(f.Err, "proto") {
		t.Fatalf("refusal %q does not name the protocol", f.Err)
	}
}

// TestRemoteNodeCancelPropagates: cancelling the job context mid-run returns
// promptly with ctx.Err and ships a best-effort cancel frame that aborts the
// worker-side execution.
func TestRemoteNodeCancelPropagates(t *testing.T) {
	started := make(chan struct{}, 1)
	aborted := make(chan struct{}, 1)
	exec := func(ctx context.Context, j fleet.Job) (*harness.Run, error) {
		started <- struct{}{}
		select {
		case <-ctx.Done():
			aborted <- struct{}{}
			return nil, ctx.Err()
		case <-time.After(5 * time.Second):
			return &harness.Run{}, nil
		}
	}
	_, addr := startWorker(t, WorkerOptions{Pool: fleet.Options{Workers: 1, Execute: exec}})
	n, err := NewRemoteNode(0, fastRemote(addr))
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()

	ctx, cancel := context.WithCancel(context.Background())
	resc := make(chan fleet.Result, 1)
	go func() { resc <- n.Run(ctx, fleet.Job{App: "slow"}) }()
	<-started
	cancel()
	select {
	case res := <-resc:
		if !errors.Is(res.Err, context.Canceled) {
			t.Fatalf("cancelled Run err = %v, want context.Canceled", res.Err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Run did not return after cancel")
	}
	select {
	case <-aborted:
	case <-time.After(2 * time.Second):
		t.Fatal("worker-side execution never saw the cancellation")
	}
}
