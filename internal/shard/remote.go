package shard

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"github.com/wattwiseweb/greenweb/internal/fleet"
	"github.com/wattwiseweb/greenweb/internal/obs/trace"
)

// ErrNodeDown marks a result whose job never reached a terminal state
// because the node's transport failed (connection broke, heartbeat
// suspicion, node declared dead). The cluster treats it as re-homeable: the
// job re-enters a live partition instead of being delivered as a failure.
// Re-execution is safe because every cell is a deterministic function of
// its job, and the store absorbs any replayed row idempotently keyed on
// (sweep, index).
var ErrNodeDown = errors.New("shard: node down")

// ErrNoNodes is delivered when a job cannot be re-homed because every node
// in the cluster has been evicted.
var ErrNoNodes = errors.New("shard: no live nodes")

// RemoteOptions configures a RemoteNode.
type RemoteOptions struct {
	// Addr is the worker's TCP address (host:port). Ignored when Dial is set.
	Addr string
	// Dial overrides the transport (tests wrap connections in the chaos
	// injector). nil → net.Dialer to Addr.
	Dial func(ctx context.Context) (net.Conn, error)
	// DialTimeout caps one dial + handshake attempt. 0 → 5s.
	DialTimeout time.Duration
	// WriteTimeout caps one frame write so a dead peer cannot wedge the
	// writer forever. 0 → 10s.
	WriteTimeout time.Duration

	// HeartbeatInterval is the ping cadence. 0 → 1s.
	HeartbeatInterval time.Duration
	// HeartbeatTimeout is how long an outstanding ping may go unanswered
	// before it counts as a miss. 0 → 3×HeartbeatInterval.
	HeartbeatTimeout time.Duration
	// SuspectAfter is the consecutive-miss count that breaks the session
	// (suspicion): the connection is torn down and redialed. 0 → 2.
	SuspectAfter int

	// MaxReconnects bounds consecutive failed reconnect attempts before the
	// node is declared dead and the cluster evicts it. 0 → 5.
	MaxReconnects int
	// ReconnectBase/ReconnectMax shape the capped exponential backoff
	// between reconnect attempts. 0 → 100ms / 5s.
	ReconnectBase time.Duration
	ReconnectMax  time.Duration
	// Seed drives the deterministic backoff jitter (±25%, hashed from
	// seed × node × attempt), mirroring the fleet retry ladder.
	Seed int64
}

func (o *RemoteOptions) fill() {
	if o.DialTimeout <= 0 {
		o.DialTimeout = 5 * time.Second
	}
	if o.WriteTimeout <= 0 {
		o.WriteTimeout = 10 * time.Second
	}
	if o.HeartbeatInterval <= 0 {
		o.HeartbeatInterval = time.Second
	}
	if o.HeartbeatTimeout <= 0 {
		o.HeartbeatTimeout = 3 * o.HeartbeatInterval
	}
	if o.SuspectAfter <= 0 {
		o.SuspectAfter = 2
	}
	if o.MaxReconnects <= 0 {
		o.MaxReconnects = 5
	}
	if o.ReconnectBase <= 0 {
		o.ReconnectBase = 100 * time.Millisecond
	}
	if o.ReconnectMax <= 0 {
		o.ReconnectMax = 5 * time.Second
	}
}

// session is one live connection: the conn, the in-flight call table, and a
// write lock serializing frames.
type session struct {
	conn net.Conn

	// Tracing negotiation, fixed at handshake: whether the worker echoed
	// trace support, the handshake-estimated clock offset (worker − us,
	// µs), the worker's pid, and its advertised name — everything needed to
	// align and attribute the spans its results ship back.
	traceOK  bool
	offsetUS int64
	pid      int
	name     string

	writeMu sync.Mutex
	wt      time.Duration

	mu     sync.Mutex
	calls  map[uint64]chan fleet.Result
	jobs   map[uint64]fleet.Job
	broken bool
}

func (s *session) write(f frame) error {
	s.writeMu.Lock()
	defer s.writeMu.Unlock()
	if s.wt > 0 {
		s.conn.SetWriteDeadline(time.Now().Add(s.wt))
	}
	return writeFrame(s.conn, f)
}

// register parks a call; fail-all on session teardown answers it if the
// result frame never arrives.
func (s *session) register(id uint64, job fleet.Job, ch chan fleet.Result) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.broken {
		return false
	}
	s.calls[id] = ch
	s.jobs[id] = job
	return true
}

func (s *session) unregister(id uint64) {
	s.mu.Lock()
	delete(s.calls, id)
	delete(s.jobs, id)
	s.mu.Unlock()
}

// deliver answers a parked call; unknown ids (cancelled calls, a prior
// session's stragglers) are dropped.
func (s *session) deliver(id uint64, w *wireResult) {
	s.mu.Lock()
	ch, ok := s.calls[id]
	job := s.jobs[id]
	if ok {
		delete(s.calls, id)
		delete(s.jobs, id)
	}
	s.mu.Unlock()
	if ok {
		r := decodeResult(w, job)
		// Worker spans arrive on the worker's clock; rebase them into the
		// server timeline with the handshake offset and stamp the node
		// identity only this side knows.
		if len(r.Spans) > 0 {
			trace.AlignSpans(r.Spans, s.offsetUS, s.name)
		}
		ch <- r
	}
}

// fail tears the call table down: every in-flight call gets ErrNodeDown and
// will be re-homed by its cluster puller.
func (s *session) fail(reason error) {
	s.mu.Lock()
	s.broken = true
	calls, jobs := s.calls, s.jobs
	s.calls, s.jobs = map[uint64]chan fleet.Result{}, map[uint64]fleet.Job{}
	s.mu.Unlock()
	for id, ch := range calls {
		ch <- fleet.Result{Job: jobs[id], Worker: -1,
			Err: fmt.Errorf("%w: %v", ErrNodeDown, reason)}
	}
}

// HealthSnapshot is a remote node's transport health, exported per node by
// Cluster.RegisterMetrics.
type HealthSnapshot struct {
	Connected       bool          `json:"connected"`
	Dead            bool          `json:"dead"`
	LastRTT         time.Duration `json:"last_rtt"` // most recent heartbeat round trip
	Reconnects      int64         `json:"reconnects"`
	HeartbeatMisses int64         `json:"heartbeat_misses"`
	// ClockOffsetUS is the handshake-estimated offset of the worker's clock
	// from ours (positive = worker ahead), used to align its trace spans.
	ClockOffsetUS int64 `json:"clock_offset_us"`
}

// healthReporter is the optional Node facet the cluster polls for health
// metrics.
type healthReporter interface {
	Health() HealthSnapshot
}

// deathNotifier is the optional Node facet the cluster subscribes to for
// eviction: fn runs (once, on its own goroutine) when the node gives up.
type deathNotifier interface {
	OnDead(fn func())
}

// RemoteNode is a shard.Node whose execution backend is a greennode worker
// process reached over the frame protocol. It satisfies the same contract
// as LocalNode — Run executes one job to a terminal result — with the
// transport failure modes mapped onto ErrNodeDown so the cluster re-homes
// rather than fails affected jobs.
//
// Health model: a heartbeat ping flows every HeartbeatInterval. An
// unanswered ping past HeartbeatTimeout is a miss; SuspectAfter consecutive
// misses (or any read/write error) breaks the session, failing in-flight
// calls with ErrNodeDown and entering the reconnect loop — bounded attempts
// with seeded, jittered exponential backoff. MaxReconnects consecutive
// failures declare the node dead: OnDead subscribers fire (the cluster
// evicts the partition) and every future Run fails fast.
type RemoteNode struct {
	id      int
	opts    RemoteOptions
	workers int
	name    string

	mu     sync.Mutex
	sess   *session
	change chan struct{} // closed and replaced on every connect/disconnect/death
	dead   bool
	closed bool
	onDead []func()

	seq        atomic.Uint64
	rttNS      atomic.Int64
	reconnects atomic.Int64 // completed re-dial attempts (successful or not) after the first session
	misses     atomic.Int64
	offsetUS   atomic.Int64 // latest handshake-estimated clock offset

	loopDone chan struct{}
}

// NewRemoteNode dials the worker, performs the handshake, and starts the
// connection manager. The initial dial is synchronous so a cluster over
// unreachable workers fails fast at startup instead of at first job.
func NewRemoteNode(id int, opts RemoteOptions) (*RemoteNode, error) {
	opts.fill()
	n := &RemoteNode{
		id:       id,
		opts:     opts,
		change:   make(chan struct{}),
		loopDone: make(chan struct{}),
	}
	sess, workers, name, err := n.dialAndShake()
	if err != nil {
		return nil, fmt.Errorf("shard: node %d (%s): %w", id, opts.Addr, err)
	}
	if workers < 1 {
		workers = 1
	}
	n.workers, n.name = workers, name
	n.setSession(sess)
	go n.loop(sess)
	return n, nil
}

// ID reports the node index.
func (n *RemoteNode) ID() int { return n.id }

// Workers reports the worker's advertised execution slots (from the
// handshake), which is how many cluster pullers drive this node.
func (n *RemoteNode) Workers() int { return n.workers }

// Stats: the remote protocol does not stream pool counters; the cluster's
// own accounting covers the fleet stats surface.
func (n *RemoteNode) Stats() fleet.Stats { return fleet.Stats{Workers: n.workers} }

// Health snapshots the transport state.
func (n *RemoteNode) Health() HealthSnapshot {
	n.mu.Lock()
	connected, dead := n.sess != nil, n.dead
	n.mu.Unlock()
	return HealthSnapshot{
		Connected:       connected,
		Dead:            dead,
		LastRTT:         time.Duration(n.rttNS.Load()),
		Reconnects:      n.reconnects.Load(),
		HeartbeatMisses: n.misses.Load(),
		ClockOffsetUS:   n.offsetUS.Load(),
	}
}

// Name reports the worker's advertised identity from the handshake.
func (n *RemoteNode) Name() string { return n.name }

// OnDead registers fn to run (once, on its own goroutine) when the node is
// declared dead. If the node is already dead, fn fires immediately.
func (n *RemoteNode) OnDead(fn func()) {
	n.mu.Lock()
	dead := n.dead
	if !dead {
		n.onDead = append(n.onDead, fn)
	}
	n.mu.Unlock()
	if dead {
		go fn()
	}
}

// Close stops the connection manager and closes the connection. In-flight
// Run calls return ErrNodeDown. Idempotent.
func (n *RemoteNode) Close() {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return
	}
	n.closed = true
	sess := n.sess
	n.mu.Unlock()
	if sess != nil {
		sess.conn.Close()
	}
	n.bump() // wake Run waiters
	<-n.loopDone
}

// bump closes and replaces the state-change channel, waking every waiter.
func (n *RemoteNode) bump() {
	n.mu.Lock()
	close(n.change)
	n.change = make(chan struct{})
	n.mu.Unlock()
}

func (n *RemoteNode) setSession(s *session) {
	n.mu.Lock()
	n.sess = s
	close(n.change)
	n.change = make(chan struct{})
	n.mu.Unlock()
}

// die declares the node dead and fires the eviction subscribers.
func (n *RemoteNode) die() {
	n.mu.Lock()
	if n.dead {
		n.mu.Unlock()
		return
	}
	n.dead = true
	subs := n.onDead
	n.onDead = nil
	close(n.change)
	n.change = make(chan struct{})
	n.mu.Unlock()
	for _, fn := range subs {
		go fn()
	}
}

func (n *RemoteNode) isClosed() bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.closed
}

// dialAndShake establishes one connection: dial, hello, welcome.
func (n *RemoteNode) dialAndShake() (*session, int, string, error) {
	ctx, cancel := context.WithTimeout(context.Background(), n.opts.DialTimeout)
	defer cancel()
	dial := n.opts.Dial
	if dial == nil {
		dial = func(ctx context.Context) (net.Conn, error) {
			var d net.Dialer
			return d.DialContext(ctx, "tcp", n.opts.Addr)
		}
	}
	conn, err := dial(ctx)
	if err != nil {
		return nil, 0, "", err
	}
	deadline := time.Now().Add(n.opts.DialTimeout)
	conn.SetDeadline(deadline)
	// t0/t1 bracket the exchange for the clock-offset estimate: the
	// worker's now_us was read between our send and our receive.
	t0 := time.Now()
	if err := writeFrame(conn, frame{T: frameHello, Proto: protoVersion, Trace: true}); err != nil {
		conn.Close()
		return nil, 0, "", fmt.Errorf("handshake: %w", err)
	}
	f, err := readFrame(conn)
	t1 := time.Now()
	if err != nil {
		conn.Close()
		return nil, 0, "", fmt.Errorf("handshake: %w", err)
	}
	if f.T != frameWelcome || f.Err != "" {
		conn.Close()
		if f.Err != "" {
			return nil, 0, "", fmt.Errorf("worker refused: %s", f.Err)
		}
		return nil, 0, "", fmt.Errorf("handshake: unexpected %q frame", f.T)
	}
	conn.SetDeadline(time.Time{})
	sess := &session{
		conn:  conn,
		wt:    n.opts.WriteTimeout,
		calls: map[uint64]chan fleet.Result{},
		jobs:  map[uint64]fleet.Job{},
		name:  f.Name,
	}
	// A worker that echoed trace support sent its clock and pid; a worker
	// that predates the field (or runs -no-obs) did not, and this session
	// will strip trace contexts from the jobs it ships.
	if f.Trace {
		sess.traceOK = true
		sess.pid = f.PID
		sess.offsetUS = trace.EstimateOffsetUS(t0, t1, f.Now)
		n.offsetUS.Store(sess.offsetUS)
	}
	return sess, f.Workers, f.Name, nil
}

// loop is the connection manager: it runs the current session until it
// breaks, then reconnects with bounded seeded backoff, declaring the node
// dead when the budget is exhausted.
func (n *RemoteNode) loop(sess *session) {
	defer close(n.loopDone)
	for {
		reason := n.runSession(sess)
		sess.conn.Close()
		sess.fail(reason)
		if n.isClosed() {
			return
		}
		n.mu.Lock()
		n.sess = nil
		close(n.change)
		n.change = make(chan struct{})
		n.mu.Unlock()

		ok := false
		for attempt := 1; attempt <= n.opts.MaxReconnects; attempt++ {
			time.Sleep(n.backoff(attempt))
			if n.isClosed() {
				return
			}
			s, _, _, err := n.dialAndShake()
			n.reconnects.Add(1)
			if err == nil {
				sess, ok = s, true
				break
			}
		}
		if !ok {
			n.die()
			return
		}
		n.setSession(sess)
	}
}

// runSession reads frames and drives the heartbeat until the session
// breaks; the returned error is the cause.
func (n *RemoteNode) runSession(sess *session) error {
	readErr := make(chan error, 1)
	pongs := make(chan uint64, 8)
	go func() {
		for {
			f, err := readFrame(sess.conn)
			if err != nil {
				readErr <- err
				return
			}
			switch f.T {
			case frameResult:
				if f.Result != nil {
					sess.deliver(f.ID, f.Result)
				}
			case framePong:
				select {
				case pongs <- f.ID:
				default:
				}
			}
		}
	}()

	ticker := time.NewTicker(n.opts.HeartbeatInterval)
	defer ticker.Stop()
	var (
		pingID      uint64
		pingSent    time.Time
		outstanding bool
		misses      int
	)
	for {
		select {
		case err := <-readErr:
			return err
		case id := <-pongs:
			if outstanding && id == pingID {
				n.rttNS.Store(int64(time.Since(pingSent)))
				outstanding = false
				misses = 0
			}
		case <-ticker.C:
			if outstanding && time.Since(pingSent) > n.opts.HeartbeatTimeout {
				misses++
				n.misses.Add(1)
				outstanding = false
				if misses >= n.opts.SuspectAfter {
					return fmt.Errorf("heartbeat: %d consecutive misses", misses)
				}
			}
			if !outstanding {
				pingID = n.seq.Add(1)
				pingSent = time.Now()
				outstanding = true
				if err := sess.write(frame{T: framePing, ID: pingID}); err != nil {
					return fmt.Errorf("heartbeat write: %w", err)
				}
			}
		}
	}
}

// backoff is the reconnect sleep before the attempt-th re-dial: capped
// exponential, deterministically jittered from (seed, node, attempt).
func (n *RemoteNode) backoff(attempt int) time.Duration {
	d := n.opts.ReconnectBase
	for i := 1; i < attempt && d < n.opts.ReconnectMax; i++ {
		d *= 2
	}
	if d > n.opts.ReconnectMax {
		d = n.opts.ReconnectMax
	}
	h := fnv.New64a()
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], uint64(n.opts.Seed))
	h.Write(buf[:])
	binary.LittleEndian.PutUint64(buf[:], uint64(n.id))
	h.Write(buf[:])
	binary.LittleEndian.PutUint64(buf[:], uint64(attempt))
	h.Write(buf[:])
	io.WriteString(h, "reconnect")
	frac := float64(h.Sum64()>>11) / (1 << 53)
	return time.Duration(float64(d) * (0.75 + 0.5*frac))
}

// Run implements Node: ship the job, wait for its result. While the node is
// disconnected but not yet dead, Run parks until the reconnect resolves —
// so a transient blip stalls rather than fails the puller. A broken session
// mid-call returns ErrNodeDown, which the cluster re-homes.
func (n *RemoteNode) Run(ctx context.Context, job fleet.Job) fleet.Result {
	for {
		n.mu.Lock()
		sess, change, dead, closed := n.sess, n.change, n.dead, n.closed
		n.mu.Unlock()
		if dead || closed {
			return fleet.Result{Job: job, Worker: -1,
				Err: fmt.Errorf("%w: node %d dead", ErrNodeDown, n.id)}
		}
		if sess == nil {
			select {
			case <-change:
				continue
			case <-ctx.Done():
				return fleet.Result{Job: job, Worker: -1, Err: ctx.Err()}
			}
		}
		id := n.seq.Add(1)
		ch := make(chan fleet.Result, 1)
		if !sess.register(id, job, ch) {
			continue // session broke between lookup and register
		}
		// A session that did not negotiate tracing ships the job without
		// its trace context — old or obs-disabled workers must never see
		// (and choke on, or half-honor) fields they did not agree to.
		wireJob := job
		if wireJob.Trace != nil && !sess.traceOK {
			wireJob.Trace = nil
		}
		if err := sess.write(frame{T: frameJob, ID: id, Job: &wireJob}); err != nil {
			sess.unregister(id)
			sess.conn.Close() // wake the reader; the loop handles teardown
			return fleet.Result{Job: job, Worker: -1,
				Err: fmt.Errorf("%w: %v", ErrNodeDown, err)}
		}
		select {
		case r := <-ch:
			if r.Worker >= 0 {
				// Remap into the cluster-global worker space, mirroring
				// LocalNode.
				r.Worker = n.id*n.workers + r.Worker
			}
			return r
		case <-ctx.Done():
			sess.unregister(id)
			sess.write(frame{T: frameCancel, ID: id}) // best-effort
			return fleet.Result{Job: job, Worker: -1, Err: ctx.Err()}
		}
	}
}
