package shard

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/wattwiseweb/greenweb/internal/fleet"
	"github.com/wattwiseweb/greenweb/internal/harness"
)

// TestClusterCloseRacesSubmissionsAndSteals: Close while submitters hammer
// Start and an imbalanced load keeps steal paths hot. Every accepted
// submission must deliver exactly once, every post-close Start must return
// the typed fleet.ErrClosed, and no goroutine may outlive the cluster.
// Meaningful under -race, which the CI test job runs.
func TestClusterCloseRacesSubmissionsAndSteals(t *testing.T) {
	before := runtime.NumGoroutine()
	exec := func(ctx context.Context, j fleet.Job) (*harness.Run, error) {
		d := time.Millisecond
		if j.App == "slow" {
			d = 5 * time.Millisecond
		}
		select {
		case <-time.After(d):
			return &harness.Run{}, nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	c := New(Options{Nodes: 3, WorkersPerNode: 2, QueueDepth: 16, Node: fleet.Options{Execute: exec}})

	var accepted, delivered, rejected atomic.Int64
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				app := "fast"
				if (g+i)%3 == 0 {
					app = "slow" // uneven latency keeps partitions imbalanced
				}
				ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
				err := c.Start(ctx, fleet.Job{App: app}, nil, func(fleet.Result) { delivered.Add(1) })
				cancel()
				switch {
				case err == nil:
					accepted.Add(1)
				case errors.Is(err, fleet.ErrClosed):
					rejected.Add(1)
					return
				case errors.Is(err, context.DeadlineExceeded):
					// queue stayed full through the timeout; keep going
				default:
					t.Errorf("Start returned unexpected error: %v", err)
					return
				}
			}
		}(g)
	}

	time.Sleep(20 * time.Millisecond) // let submissions and steals build up
	c.Close()
	close(stop)
	wg.Wait()

	if err := c.Start(context.Background(), fleet.Job{App: "late"}, nil, nil); !errors.Is(err, fleet.ErrClosed) {
		t.Fatalf("Start after Close = %v, want fleet.ErrClosed", err)
	}
	// Close drains the queue: everything accepted was delivered exactly once.
	deadline := time.Now().Add(2 * time.Second)
	for delivered.Load() != accepted.Load() && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if delivered.Load() != accepted.Load() {
		t.Fatalf("accepted %d submissions but delivered %d results", accepted.Load(), delivered.Load())
	}
	// Pullers and node pools must be gone; allow the runtime a moment to
	// retire exiting goroutines.
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before+2 {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("goroutines leaked across Close: %d before, %d after", before, runtime.NumGoroutine())
}

// TestEvictRehomesQueuedJobs: evicting a node moves its queued jobs onto
// live siblings, and the sweep completes as if the node never existed.
func TestEvictRehomesQueuedJobs(t *testing.T) {
	block := make(chan struct{})
	exec := func(ctx context.Context, j fleet.Job) (*harness.Run, error) {
		select {
		case <-block:
			return &harness.Run{}, nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	c := New(Options{Nodes: 2, WorkersPerNode: 1, QueueDepth: 16, Node: fleet.Options{Execute: exec}})
	defer c.Close()

	var wg sync.WaitGroup
	for i := 0; i < 10; i++ {
		wg.Add(1)
		if err := c.Start(context.Background(), fleet.Job{App: "a"}, nil, func(r fleet.Result) {
			if r.Err != nil {
				t.Errorf("job failed after eviction: %v", r.Err)
			}
			wg.Done()
		}); err != nil {
			t.Fatal(err)
		}
	}
	go c.Evict(0)
	time.Sleep(5 * time.Millisecond) // let the eviction land while jobs block
	close(block)
	wg.Wait()
	if c.Evictions() != 1 {
		t.Fatalf("evictions = %d, want 1", c.Evictions())
	}
	if c.Rehomed(0) == 0 {
		t.Fatal("nothing re-homed off the evicted node's partition")
	}
	c.Evict(0) // idempotent
	if c.Evictions() != 1 {
		t.Fatal("double eviction counted twice")
	}
}

// TestEvictLastNodeStrandsJobs: with no live sibling, queued jobs are
// delivered as typed ErrNoNodes failures and later submissions are refused
// with the same error.
func TestEvictLastNodeStrandsJobs(t *testing.T) {
	block := make(chan struct{})
	exec := func(ctx context.Context, j fleet.Job) (*harness.Run, error) {
		select {
		case <-block:
			return &harness.Run{}, nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	c := New(Options{Nodes: 1, WorkersPerNode: 1, QueueDepth: 8, Node: fleet.Options{Execute: exec}})
	defer c.Close()

	results := make(chan fleet.Result, 3)
	for i := 0; i < 3; i++ {
		if err := c.Start(context.Background(), fleet.Job{App: "a"}, nil, func(r fleet.Result) {
			results <- r
		}); err != nil {
			t.Fatal(err)
		}
	}
	// Wait for the single puller to hold one job in flight; the other two
	// are queued and will strand.
	deadline := time.Now().Add(2 * time.Second)
	for c.Stats().Running == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	go c.Evict(0)
	time.Sleep(5 * time.Millisecond)
	close(block) // let the in-flight job finish so the node can close

	var failed, succeeded int
	for i := 0; i < 3; i++ {
		select {
		case r := <-results:
			if r.Err == nil {
				succeeded++
			} else if errors.Is(r.Err, ErrNoNodes) {
				failed++
			} else {
				t.Fatalf("stranded job got %v, want ErrNoNodes", r.Err)
			}
		case <-time.After(5 * time.Second):
			t.Fatal("stranded job never delivered")
		}
	}
	if succeeded != 1 || failed != 2 {
		t.Fatalf("succeeded=%d failed=%d, want 1 in-flight success and 2 stranded failures", succeeded, failed)
	}
	if err := c.Start(context.Background(), fleet.Job{App: "late"}, nil, nil); !errors.Is(err, ErrNoNodes) {
		t.Fatalf("Start on fully evicted cluster = %v, want ErrNoNodes", err)
	}
}
