package shard

import (
	"context"
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"io"
	"net"
	"sync/atomic"
	"time"
)

// ChaosSpec is the deterministic transport-fault injector used by the
// remote-node tests: it wraps a net.Conn and decides, for each frame
// written through it, whether to deliver it cleanly, stall before sending,
// tear it (forward only a prefix, then kill the connection), or drop the
// connection outright. Read-side delays model a slow/delaying peer
// (delayed-ACK analogue).
//
// Every decision is a pure function of (Seed, direction, frame index) — an
// FNV-1a hash mapped into [0,1) and compared against the cumulative
// probability thresholds — so a chaos run is exactly reproducible from its
// seed: same faults, at the same frames, on every execution. Each frame's
// draw is independent; probabilities are evaluated in the order drop, tear,
// stall.
//
// The injector lives in the production package (not a _test file) so the
// CLI smoke tooling and future jepsen-style harnesses can reuse it, but it
// has no hooks into production code paths: nothing constructs one outside
// tests.
type ChaosSpec struct {
	Seed int64

	// DropProb closes the connection instead of writing the frame.
	DropProb float64
	// TearProb writes only half the frame's bytes, then closes — the
	// canonical torn-frame crash the reader must surface and survive.
	TearProb float64
	// StallProb sleeps Stall before writing the frame (a network or GC
	// pause; heartbeat timeouts must tolerate or detect it).
	StallProb float64
	Stall     time.Duration

	// ReadDelayProb sleeps ReadDelay before a Read returns data.
	ReadDelayProb float64
	ReadDelay     time.Duration
}

// draw maps (seed, dir, index) onto [0,1).
func (s ChaosSpec) draw(dir string, index uint64) float64 {
	h := fnv.New64a()
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], uint64(s.Seed))
	h.Write(buf[:])
	io.WriteString(h, dir)
	binary.LittleEndian.PutUint64(buf[:], index)
	h.Write(buf[:])
	return float64(h.Sum64()>>11) / (1 << 53)
}

// chaosConn wraps a conn with fault injection on frame writes and read
// returns. Frame index = Write call index, which holds because writeFrame
// issues exactly one Write per frame.
type chaosConn struct {
	net.Conn
	spec   ChaosSpec
	dir    string
	writes atomic.Uint64
	reads  atomic.Uint64
}

// Wrap dresses a connection in the chaos spec. dir disambiguates multiple
// wrapped connections under one seed (use the dial attempt number).
func (s ChaosSpec) Wrap(conn net.Conn, dir string) net.Conn {
	return &chaosConn{Conn: conn, spec: s, dir: dir}
}

// Dialer returns a dial function for RemoteOptions.Dial that dials through
// dial and wraps each connection with the spec, mixing the attempt counter
// into the fault stream so reconnects draw fresh — but still deterministic
// — faults.
func (s ChaosSpec) Dialer(dial func(ctx context.Context) (net.Conn, error)) func(ctx context.Context) (net.Conn, error) {
	var attempts atomic.Uint64
	return func(ctx context.Context) (net.Conn, error) {
		conn, err := dial(ctx)
		if err != nil {
			return nil, err
		}
		return s.Wrap(conn, fmt.Sprintf("dial-%d", attempts.Add(1))), nil
	}
}

func (c *chaosConn) Write(p []byte) (int, error) {
	idx := c.writes.Add(1) - 1
	r := c.spec.draw(c.dir+"/w", idx)
	switch {
	case r < c.spec.DropProb:
		c.Conn.Close()
		return 0, fmt.Errorf("chaos: connection dropped before frame %d", idx)
	case r < c.spec.DropProb+c.spec.TearProb:
		n, _ := c.Conn.Write(p[:len(p)/2])
		c.Conn.Close()
		return n, fmt.Errorf("chaos: frame %d torn after %d/%d bytes", idx, n, len(p))
	case r < c.spec.DropProb+c.spec.TearProb+c.spec.StallProb:
		time.Sleep(c.spec.Stall)
	}
	return c.Conn.Write(p)
}

func (c *chaosConn) Read(p []byte) (int, error) {
	idx := c.reads.Add(1) - 1
	if c.spec.ReadDelayProb > 0 && c.spec.draw(c.dir+"/r", idx) < c.spec.ReadDelayProb {
		time.Sleep(c.spec.ReadDelay)
	}
	return c.Conn.Read(p)
}
