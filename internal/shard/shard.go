// Package shard scales the fleet past one worker pool: a Cluster fans jobs
// out across N nodes — each an isolated execution backend with its own
// workers — through a partitioned queue with work stealing, while keeping
// the fleet's determinism guarantee intact. Submission-order merge is a
// property of delivery indexing, not of which node ran a job, and every job
// still executes harness.ExecuteCell semantics on a private simulated
// device, so sweep output is byte-identical to the sequential path at any
// node×worker topology.
//
// Nodes are goroutine-backed in-process by default (LocalNode wraps a
// fleet.Pool), so CI and tests need no network; RemoteNode plugs a
// greennode worker process in behind the same Node interface, speaking
// length-prefixed JSON frames over TCP (see proto.go, remote.go,
// worker.go).
//
// The queue has one partition per node. A submission lands on a partition
// round-robin; each node's pullers pop their home partition FIFO and, when
// it runs dry, steal from the back of the busiest sibling — classic
// work-stealing, so a node stuck on a slow cell does not strand queued work
// behind it. Steals and per-partition depths are exported through obs.
//
// Failure handling: a Run result wrapping ErrNodeDown means the transport
// failed under the job, not the job under the node — the puller re-homes
// the item into a live partition instead of delivering a failure, and the
// deterministic cell re-executes elsewhere with an identical result. A node
// declared dead (heartbeat suspicion through the full reconnect budget) is
// evicted: its partition stops accepting placements, its queued jobs move
// to sibling partitions, and its pullers exit. Sweep bytes therefore do not
// depend on which nodes survived — the determinism contract holds through
// node death.
package shard

import (
	"context"
	"errors"
	"fmt"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"github.com/wattwiseweb/greenweb/internal/fleet"
	"github.com/wattwiseweb/greenweb/internal/obs"
	"github.com/wattwiseweb/greenweb/internal/obs/trace"
)

// Node is one execution backend of the cluster. Run executes a single job
// to its terminal Result (retries, panic recovery, and timeouts happen
// inside), and is called by at most Workers() cluster pullers concurrently.
type Node interface {
	ID() int
	Workers() int
	Run(ctx context.Context, job fleet.Job) fleet.Result
	Stats() fleet.Stats
	Close()
}

// LocalNode is the in-process Node: a fleet.Pool behind the interface, so a
// "node" is a goroutine-backed worker pool with the fleet's full retry and
// quarantine ladder.
type LocalNode struct {
	id   int
	pool *fleet.Pool
}

// NewLocalNode builds a node over a fresh pool. opts.Workers defaults to 1.
func NewLocalNode(id int, opts fleet.Options) *LocalNode {
	if opts.Workers <= 0 {
		opts.Workers = 1
	}
	// The cluster's pullers are the only submitters and there are exactly
	// Workers of them, so the pool queue never holds more than one job per
	// worker; depth 2× keeps Submit from ever blocking.
	if opts.QueueDepth <= 0 {
		opts.QueueDepth = 2 * opts.Workers
	}
	return &LocalNode{id: id, pool: fleet.New(opts)}
}

// ID reports the node index.
func (n *LocalNode) ID() int { return n.id }

// Workers reports the node's concurrent execution slots.
func (n *LocalNode) Workers() int { return n.pool.Workers() }

// Stats snapshots the node's pool counters.
func (n *LocalNode) Stats() fleet.Stats { return n.pool.Stats() }

// Close shuts the node's pool down.
func (n *LocalNode) Close() { n.pool.Close() }

// Run executes one job synchronously on the node's pool. The result's
// Worker index is remapped into the cluster-global space
// (node·workers + local index) so per-worker provenance stays unambiguous.
func (n *LocalNode) Run(ctx context.Context, job fleet.Job) fleet.Result {
	ch := make(chan fleet.Result, 1)
	if err := n.pool.Start(ctx, job, nil, func(r fleet.Result) { ch <- r }); err != nil {
		return fleet.Result{Job: job, Worker: -1, Err: err}
	}
	r := <-ch
	if r.Worker >= 0 {
		r.Worker = n.id*n.pool.Workers() + r.Worker
	}
	return r
}

// item is one queued submission.
type item struct {
	job     fleet.Job
	ctx     context.Context
	started func()
	deliver func(fleet.Result)
	// rehomed marks an item re-entering the queue after its node died
	// mid-flight. Its admission token was released on the first pop, so the
	// next pop must not release another.
	rehomed bool
}

// queue is the partitioned job queue: one FIFO deque per node, guarded by a
// single mutex (contention is negligible next to job execution, which runs
// a whole simulated device). Home pops take the front; steals take the
// back, so a thief grabs the work its victim would reach last.
type queue struct {
	mu      sync.Mutex
	cond    *sync.Cond
	parts   [][]item
	evicted []bool
	closed  bool
}

func newQueue(partitions int) *queue {
	q := &queue{parts: make([][]item, partitions), evicted: make([]bool, partitions)}
	q.cond = sync.NewCond(&q.mu)
	return q
}

// push enqueues onto a partition; false if the partition has been evicted
// (the caller picks another).
func (q *queue) push(part int, it item) bool {
	q.mu.Lock()
	if q.evicted[part] {
		q.mu.Unlock()
		return false
	}
	q.parts[part] = append(q.parts[part], it)
	q.mu.Unlock()
	q.cond.Signal()
	return true
}

// pop blocks until an item is available for the given home partition (own
// front, else the back of the fullest sibling), the home partition is
// evicted, or the queue is closed and empty. It reports the partition the
// item came from.
func (q *queue) pop(home int) (item, int, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for {
		if q.evicted[home] {
			return item{}, -1, false
		}
		if len(q.parts[home]) > 0 {
			it := q.parts[home][0]
			q.parts[home] = q.parts[home][1:]
			return it, home, true
		}
		// Steal from the deepest sibling — balances better than first-found
		// and keeps the scan deterministic for equal depths (lowest index).
		victim, depth := -1, 0
		for p := range q.parts {
			if p != home && len(q.parts[p]) > depth {
				victim, depth = p, len(q.parts[p])
			}
		}
		if victim >= 0 {
			n := len(q.parts[victim])
			it := q.parts[victim][n-1]
			q.parts[victim] = q.parts[victim][:n-1]
			return it, victim, true
		}
		if q.closed {
			return item{}, -1, false
		}
		q.cond.Wait()
	}
}

// evictPartition marks part dead and re-homes its queued items onto live
// partitions round-robin. Items that cannot be placed because no live
// partition remains are returned stranded, for failure delivery. moved is
// -1 when the partition was already evicted.
func (q *queue) evictPartition(part int) (moved int, stranded []item) {
	q.mu.Lock()
	defer func() {
		q.mu.Unlock()
		q.cond.Broadcast() // wake the dead node's pullers and the new homes
	}()
	if q.evicted[part] {
		return -1, nil
	}
	q.evicted[part] = true
	items := q.parts[part]
	q.parts[part] = nil
	var live []int
	for p := range q.parts {
		if p != part && !q.evicted[p] {
			live = append(live, p)
		}
	}
	if len(live) == 0 {
		return 0, items
	}
	for i, it := range items {
		q.parts[live[i%len(live)]] = append(q.parts[live[i%len(live)]], it)
	}
	return len(items), nil
}

func (q *queue) close() {
	q.mu.Lock()
	q.closed = true
	q.mu.Unlock()
	q.cond.Broadcast()
}

func (q *queue) depth(part int) int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.parts[part])
}

// Options configures a Cluster of LocalNodes.
type Options struct {
	// Nodes is the node count; 0 → 1.
	Nodes int
	// WorkersPerNode is each node's pool size; 0 → 1.
	WorkersPerNode int
	// QueueDepth bounds the total jobs queued across all partitions
	// (admission control reads this backpressure); 0 → 4× total workers.
	QueueDepth int
	// Node is the per-node pool template (timeouts, retry ladder, Execute
	// override). Workers and QueueDepth inside it are overridden per node.
	Node fleet.Options
}

// Cluster is a multi-node Runner: it implements fleet.Runner so a
// fleet.Manager (and greensrv) can schedule onto it interchangeably with a
// single Pool.
type Cluster struct {
	nodes []Node
	q     *queue
	slots chan struct{} // total-queue-depth semaphore
	wg    sync.WaitGroup

	mu     sync.Mutex
	closed bool

	seq       atomic.Uint64 // round-robin partition cursor
	queued    atomic.Int64
	running   atomic.Int64
	done      atomic.Int64
	failed    atomic.Int64
	steals    []atomic.Int64 // per stealing node
	pulled    []atomic.Int64 // jobs executed per node
	rehomed   []atomic.Int64 // jobs re-homed off each node (queued + in-flight)
	spanDrops []atomic.Int64 // worker-side trace span drops per node
	evictions atomic.Int64
	start     time.Time
	busy      atomic.Int64
	hist      *obs.Histogram
}

// New builds a cluster of LocalNodes and starts its pullers.
func New(opts Options) *Cluster {
	if opts.Nodes <= 0 {
		opts.Nodes = 1
	}
	if opts.WorkersPerNode <= 0 {
		opts.WorkersPerNode = 1
	}
	nodes := make([]Node, opts.Nodes)
	for i := range nodes {
		nodeOpts := opts.Node
		nodeOpts.Workers = opts.WorkersPerNode
		nodeOpts.QueueDepth = 0 // let LocalNode size it
		nodes[i] = NewLocalNode(i, nodeOpts)
	}
	return NewWithNodes(nodes, opts.QueueDepth)
}

// NewWithNodes builds a cluster over caller-supplied nodes (tests inject
// instrumented ones). Node IDs must equal their slice index.
func NewWithNodes(nodes []Node, queueDepth int) *Cluster {
	total := 0
	for _, n := range nodes {
		total += n.Workers()
	}
	if queueDepth <= 0 {
		queueDepth = 4 * total
	}
	c := &Cluster{
		nodes:     nodes,
		q:         newQueue(len(nodes)),
		slots:     make(chan struct{}, queueDepth),
		steals:    make([]atomic.Int64, len(nodes)),
		pulled:    make([]atomic.Int64, len(nodes)),
		rehomed:   make([]atomic.Int64, len(nodes)),
		spanDrops: make([]atomic.Int64, len(nodes)),
		start:     time.Now(),
		hist:      obs.NewLatencyHistogram(),
	}
	for _, n := range nodes {
		for w := 0; w < n.Workers(); w++ {
			c.wg.Add(1)
			go c.puller(n)
		}
	}
	// Nodes that can report their own death (RemoteNode after heartbeat
	// suspicion exhausts the reconnect budget) trigger eviction.
	for i, n := range nodes {
		if dn, ok := n.(deathNotifier); ok {
			id := i
			dn.OnDead(func() { c.Evict(id) })
		}
	}
	return c
}

// Evict removes node id from live service: its partition stops accepting
// placements, its queued jobs re-enter sibling partitions, and its pullers
// exit once their in-flight calls resolve (a dead remote node resolves them
// with ErrNodeDown, which re-homes the jobs too). With no live sibling the
// queued jobs are delivered as ErrNoNodes failures. Idempotent; normally
// driven by a remote node's death notification, but callable directly to
// drain a node administratively.
func (c *Cluster) Evict(id int) {
	if id < 0 || id >= len(c.nodes) {
		return
	}
	moved, stranded := c.q.evictPartition(id)
	if moved < 0 {
		return // already evicted
	}
	c.evictions.Add(1)
	c.rehomed[id].Add(int64(moved))
	// Stranded failures surface before the node close, which may block
	// draining the dead node's in-flight work.
	for _, it := range stranded {
		c.queued.Add(-1)
		if !it.rehomed {
			<-c.slots
		}
		c.failed.Add(1)
		if it.deliver != nil {
			it.deliver(fleet.Result{Job: it.job, Worker: -1,
				Err: fmt.Errorf("%w: node %d evicted last", ErrNoNodes, id)})
		}
	}
	c.nodes[id].Close()
}

// Evictions reports how many nodes have been evicted.
func (c *Cluster) Evictions() int64 { return c.evictions.Load() }

// Rehomed reports how many jobs have been re-homed off node id.
func (c *Cluster) Rehomed(id int) int64 { return c.rehomed[id].Load() }

// sweepTrace resolves a traced job's server-side span buffer; nil for
// untraced jobs (or a trace already evicted from the collector), so every
// call site stays a single nil check.
func sweepTrace(job fleet.Job) *trace.SweepTrace {
	if job.Trace == nil {
		return nil
	}
	if tr, ok := trace.Default().Get(job.Trace.Sweep); ok {
		return tr
	}
	return nil
}

// puller is one node execution slot: pop (home first, then steal), run on
// the owning node, deliver — or re-home when the node died under the job.
func (c *Cluster) puller(n Node) {
	defer c.wg.Done()
	for {
		it, from, ok := c.q.pop(n.ID())
		if !ok {
			return
		}
		if !it.rehomed {
			<-c.slots
		}
		c.queued.Add(-1)
		tr := sweepTrace(it.job)
		if from != n.ID() {
			c.steals[n.ID()].Add(1)
			if tr != nil {
				// Steals are instants: the interesting fact is that the job
				// changed hands, not how long the handoff took.
				tr.Record(it.job.Trace.Job, it.job.Trace.Parent, "steal", "sched",
					time.Now(), 0, map[string]string{
						"thief":  strconv.Itoa(n.ID()),
						"victim": strconv.Itoa(from),
					})
			}
		}
		c.pulled[n.ID()].Add(1)
		if it.started != nil {
			it.started()
			it.started = nil // fires once, even across re-homes
		}
		c.running.Add(1)
		dispatched := time.Now()
		res := n.Run(it.ctx, it.job)
		c.running.Add(-1)
		if tr != nil {
			// The dispatch span brackets the node round trip as the server
			// saw it; the gap between it and the worker's execute span is
			// transport plus worker-pool queueing.
			tr.Record(it.job.Trace.Job, it.job.Trace.Parent, "dispatch", "sched",
				dispatched, time.Since(dispatched), map[string]string{
					"node": strconv.Itoa(n.ID()),
				})
		}
		c.spanDrops[n.ID()].Add(int64(res.SpanDrops))
		if errors.Is(res.Err, ErrNodeDown) && it.ctx.Err() == nil {
			// The transport died under the job, not the job under the node.
			// Re-home instead of delivering a failure: the cell is a
			// deterministic function of the job, so re-execution elsewhere
			// produces the identical result, and the WAL absorbs any
			// replayed row idempotently keyed on (sweep, index).
			it.rehomed = true
			if it.job.Trace != nil {
				// Bump the attempt on a fresh context copy so the job's next
				// home records spans under the new attempt number (the item
				// may be shared-read by metrics snapshots, never mutated).
				tc := *it.job.Trace
				tc.Attempt++
				it.job.Trace = &tc
				if tr != nil {
					tr.Record(tc.Job, tc.Parent, "re-home", "sched",
						time.Now(), 0, map[string]string{
							"from":    strconv.Itoa(n.ID()),
							"attempt": strconv.Itoa(tc.Attempt),
						})
				}
			}
			if c.requeue(it) {
				c.rehomed[n.ID()].Add(1)
				continue
			}
			res.Err = fmt.Errorf("%w: %v", ErrNoNodes, res.Err)
		}
		c.busy.Add(int64(res.Latency))
		c.hist.Observe(res.Latency.Seconds())
		if res.Err != nil {
			c.failed.Add(1)
		} else {
			c.done.Add(1)
		}
		if it.deliver != nil {
			it.deliver(res)
		}
	}
}

// requeue places a re-homed item onto a live partition round-robin; false
// when every partition has been evicted. The cursor is drawn once and the
// scan offsets from it locally — drawing per iteration would let concurrent
// placements advance the shared cursor between draws, revisiting an evicted
// partition while never trying a live one.
func (c *Cluster) requeue(it item) bool {
	base := int(c.seq.Add(1) - 1)
	for i := 0; i < len(c.nodes); i++ {
		part := (base + i) % len(c.nodes)
		if c.q.push(part, it) {
			c.queued.Add(1)
			return true
		}
	}
	return false
}

// Start implements fleet.Runner: enqueue one job, blocking while the
// cluster-wide queue is full, aborting on ctx. deliver is called exactly
// once from a puller goroutine.
func (c *Cluster) Start(ctx context.Context, job fleet.Job, started func(), deliver func(fleet.Result)) error {
	if ctx == nil {
		ctx = context.Background()
	}
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return fleet.ErrClosed
	}
	select {
	case c.slots <- struct{}{}:
	default:
		// Full: wait outside the close lock so Close can't deadlock on us.
		c.mu.Unlock()
		select {
		case c.slots <- struct{}{}:
			c.mu.Lock()
			if c.closed {
				c.mu.Unlock()
				<-c.slots
				return fleet.ErrClosed
			}
		case <-ctx.Done():
			return ctx.Err()
		}
	}
	// Round-robin over live partitions: push refuses evicted ones, so scan
	// from a single cursor draw until a placement sticks (one draw per scan,
	// same reasoning as requeue). Every partition evicted means the cluster
	// has no execution substrate left.
	placed := false
	base := int(c.seq.Add(1) - 1)
	for i := 0; i < len(c.nodes); i++ {
		part := (base + i) % len(c.nodes)
		if c.q.push(part, item{job: job, ctx: ctx, started: started, deliver: deliver}) {
			placed = true
			break
		}
	}
	if !placed {
		c.mu.Unlock()
		<-c.slots // release the admission token
		return ErrNoNodes
	}
	c.queued.Add(1)
	c.mu.Unlock()
	return nil
}

// Workers reports the cluster's total execution slots.
func (c *Cluster) Workers() int {
	total := 0
	for _, n := range c.nodes {
		total += n.Workers()
	}
	return total
}

// Nodes reports the node count.
func (c *Cluster) Nodes() int { return len(c.nodes) }

// Steals reports how many jobs node id has stolen from sibling partitions.
func (c *Cluster) Steals(id int) int64 { return c.steals[id].Load() }

// NodeInfos implements fleet.NodeReporter: one row per node with the
// cluster's work accounting, plus transport health and identity for nodes
// that can report them (RemoteNode). The GET /v1/nodes federation is this,
// verbatim.
func (c *Cluster) NodeInfos() []fleet.NodeInfo {
	infos := make([]fleet.NodeInfo, len(c.nodes))
	for i, n := range c.nodes {
		info := fleet.NodeInfo{
			ID:         i,
			Kind:       "local",
			Workers:    n.Workers(),
			Up:         true,
			QueueDepth: int64(c.q.depth(i)),
			Jobs:       c.pulled[i].Load(),
			Steals:     c.steals[i].Load(),
			Rehomed:    c.rehomed[i].Load(),
			SpanDrops:  c.spanDrops[i].Load(),
		}
		if hr, ok := n.(healthReporter); ok {
			h := hr.Health()
			info.Kind = "remote"
			info.Up = h.Connected
			info.Dead = h.Dead
			info.HeartbeatRTTMS = float64(h.LastRTT) / float64(time.Millisecond)
			info.Reconnects = h.Reconnects
			info.HeartbeatMisses = h.HeartbeatMisses
			info.ClockOffsetUS = h.ClockOffsetUS
		}
		if named, ok := n.(interface{ Name() string }); ok {
			info.Name = named.Name()
		}
		infos[i] = info
	}
	return infos
}

// Close stops intake, drains queued jobs, waits for the pullers, and shuts
// the nodes down.
func (c *Cluster) Close() {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.closed = true
	c.mu.Unlock()
	c.q.close()
	c.wg.Wait()
	for _, n := range c.nodes {
		n.Close()
	}
}

// Stats implements fleet.Runner: cluster-level counters plus the retry and
// quarantine tallies aggregated from the nodes.
func (c *Cluster) Stats() fleet.Stats {
	var retried, quarantined int64
	for _, n := range c.nodes {
		ns := n.Stats()
		retried += ns.Retried
		quarantined += ns.Quarantined
	}
	elapsed := time.Since(c.start)
	util := 0.0
	if w := c.Workers(); w > 0 && elapsed > 0 {
		util = float64(c.busy.Load()) / (float64(elapsed) * float64(w))
	}
	queued := c.queued.Load()
	if queued < 0 {
		queued = 0
	}
	return fleet.Stats{
		Workers:     c.Workers(),
		Queued:      queued,
		Running:     c.running.Load(),
		Done:        c.done.Load(),
		Failed:      c.failed.Load(),
		Retried:     retried,
		Quarantined: quarantined,
		Utilization: util,
		Latency:     c.hist.Snapshot(),
	}
}

// RegisterMetrics implements fleet.Runner: the greenweb_fleet_* family the
// single-pool server exposes (same names, so dashboards survive the
// topology change) plus the shard-layer extras — per-node steal and job
// counters, per-partition queue depths.
func (c *Cluster) RegisterMetrics(reg *obs.Registry) {
	reg.GaugeFunc("greenweb_fleet_workers",
		"Total execution slots across all nodes", func() float64 { return float64(c.Workers()) })
	reg.GaugeFunc("greenweb_fleet_queue_depth",
		"Jobs waiting across all partitions", func() float64 { return float64(c.Stats().Queued) })
	reg.GaugeFunc("greenweb_fleet_running_jobs",
		"Jobs executing right now", func() float64 { return float64(c.running.Load()) })
	reg.CounterFunc("greenweb_fleet_jobs_done_total",
		"Jobs finished successfully", func() float64 { return float64(c.done.Load()) })
	reg.CounterFunc("greenweb_fleet_jobs_failed_total",
		"Jobs that ended in failure (including cancellation)", func() float64 { return float64(c.failed.Load()) })
	reg.CounterFunc("greenweb_fleet_retries_total",
		"Job attempts beyond each job's first", func() float64 { return float64(c.Stats().Retried) })
	reg.CounterFunc("greenweb_fleet_quarantines_total",
		"Jobs that exhausted every allowed attempt", func() float64 { return float64(c.Stats().Quarantined) })
	reg.GaugeFunc("greenweb_fleet_utilization",
		"Busy worker-time over available worker-time since start", func() float64 { return c.Stats().Utilization })
	reg.AttachHistogram("greenweb_fleet_job_latency_seconds",
		"Wall-clock job latency in seconds (all attempts incl. backoff)", c.hist)

	reg.GaugeFunc("greenweb_shard_nodes", "Nodes in the cluster",
		func() float64 { return float64(len(c.nodes)) })
	stealVec := reg.CounterVec("greenweb_shard_steals_total",
		"Jobs a node stole from sibling partitions", "node")
	jobsVec := reg.CounterVec("greenweb_shard_node_jobs_total",
		"Jobs executed per node (home pops + steals)", "node")
	depthVec := reg.GaugeVec("greenweb_shard_partition_depth",
		"Jobs waiting in each partition", "partition")
	rehomeVec := reg.CounterVec("greenweb_shard_rehomed_jobs_total",
		"Jobs re-homed off each node (queued at eviction plus in-flight at death)", "node")
	dropVec := reg.CounterVec("greenweb_shard_span_drops_total",
		"Trace spans each node's jobs dropped to budget pressure", "node")
	for i := range c.nodes {
		i := i
		label := strconv.Itoa(i)
		stealVec.Func(func() float64 { return float64(c.steals[i].Load()) }, label)
		jobsVec.Func(func() float64 { return float64(c.pulled[i].Load()) }, label)
		depthVec.Func(func() float64 { return float64(c.q.depth(i)) }, label)
		rehomeVec.Func(func() float64 { return float64(c.rehomed[i].Load()) }, label)
		dropVec.Func(func() float64 { return float64(c.spanDrops[i].Load()) }, label)
	}
	reg.CounterFunc("greenweb_shard_evictions_total",
		"Nodes evicted after being declared dead",
		func() float64 { return float64(c.evictions.Load()) })

	// Remote nodes expose transport health; local nodes have none to report.
	var upVec, rttVec *obs.GaugeVec
	var reconnVec, missVec *obs.CounterVec
	for i, n := range c.nodes {
		hr, ok := n.(healthReporter)
		if !ok {
			continue
		}
		if upVec == nil {
			upVec = reg.GaugeVec("greenweb_shard_node_up",
				"1 while the node's transport session is connected", "node")
			rttVec = reg.GaugeVec("greenweb_shard_heartbeat_rtt_seconds",
				"Most recent heartbeat round-trip time per node", "node")
			reconnVec = reg.CounterVec("greenweb_shard_reconnects_total",
				"Transport re-dial attempts per node", "node")
			missVec = reg.CounterVec("greenweb_shard_heartbeat_misses_total",
				"Heartbeats that went unanswered past the timeout", "node")
		}
		label := strconv.Itoa(i)
		upVec.Func(func() float64 {
			if h := hr.Health(); h.Connected {
				return 1
			}
			return 0
		}, label)
		rttVec.Func(func() float64 { return hr.Health().LastRTT.Seconds() }, label)
		reconnVec.Func(func() float64 { return float64(hr.Health().Reconnects) }, label)
		missVec.Func(func() float64 { return float64(hr.Health().HeartbeatMisses) }, label)
	}
}
