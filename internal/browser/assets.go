package browser

import (
	"sync"
	"sync/atomic"

	"github.com/wattwiseweb/greenweb/internal/css"
	"github.com/wattwiseweb/greenweb/internal/dom"
	"github.com/wattwiseweb/greenweb/internal/html"
	"github.com/wattwiseweb/greenweb/internal/js"
	"github.com/wattwiseweb/greenweb/internal/obs"
)

// obsScriptCompiles counts bytecode compiles performed while building page
// assets. With the cache on this stays at one per distinct script; a climbing
// rate means the cache is disabled or pages are being churned.
var obsScriptCompiles = obs.Default().Counter("greenweb_assets_script_compiles_total",
	"Scripts compiled to bytecode while building page assets")

// pageAssets is the parse-once product of one page source: the HTML document
// as an immutable template, the parsed stylesheets, and the parsed script
// ASTs. A sweep executes the same dozen pages hundreds of times across
// cells and fleet workers; the real tokenizing/tree-building work is
// identical every time, so it is done once per process and shared.
//
// Everything here is immutable after construction and safe to share across
// goroutines: engines receive a Clone of the template (never the template
// itself), stylesheets are only read by the cascade (their rule index is
// published through an atomic pointer), and script ASTs are read-only to the
// interpreter.
//
// The *simulated* parse cost is charged exactly as before from the byte
// counts (ParseCyclesPerByte), which do not depend on whether this process
// re-parsed the text — reported energy and latency are byte-for-byte
// identical with the cache on or off.
type pageAssets struct {
	tmpl      *dom.Document
	sheets    []*css.Stylesheet
	dropped   int // malformed CSS rules skipped by the tolerant parser
	scripts   []string
	programs  []*js.Program // parallel to scripts; nil where parsing failed
	parseErrs []error       // parallel to scripts; the error where nil above

	// compiled is the bytecode form of each program, built once alongside the
	// parse. Compilation is pure (no interpreter state), so a shared compile
	// is as safe as the shared AST; the engine falls back to the AST when the
	// VM is disabled. nil where the parse failed.
	compiled []*js.CompiledProgram
}

var (
	assetCache   sync.Map // page source -> *pageAssets
	assetCacheOn atomic.Bool
)

func init() { assetCacheOn.Store(true) }

// SetAssetCache enables or disables the parse-once asset cache. Disabling
// restores the pre-cache behavior — every LoadPage re-parses from source —
// and is used by the determinism harness to prove cached and uncached runs
// produce byte-identical reports.
func SetAssetCache(enabled bool) { assetCacheOn.Store(enabled) }

// AssetCacheEnabled reports whether LoadPage serves parses from the cache.
func AssetCacheEnabled() bool { return assetCacheOn.Load() }

// ResetAssetCache drops every cached parse. Benchmarks use it to measure
// the cold path.
func ResetAssetCache() {
	assetCache.Range(func(k, _ any) bool {
		assetCache.Delete(k)
		return true
	})
}

// buildAssets parses a page source into its assets, performing the work the
// pre-cache LoadPage did inline.
func buildAssets(src string) *pageAssets {
	a := &pageAssets{tmpl: html.Parse(src)}
	for _, styleSrc := range html.StyleSources(a.tmpl) {
		sheet, errs := css.Parse(styleSrc) // tolerate bad rules like engines do
		a.dropped += len(errs)
		a.sheets = append(a.sheets, sheet)
	}
	a.scripts = html.ScriptSources(a.tmpl)
	a.programs = make([]*js.Program, len(a.scripts))
	a.parseErrs = make([]error, len(a.scripts))
	a.compiled = make([]*js.CompiledProgram, len(a.scripts))
	for i, s := range a.scripts {
		a.programs[i], a.parseErrs[i] = js.Parse(s)
		if a.programs[i] != nil && js.VMEnabled() {
			a.compiled[i] = js.Compile(a.programs[i])
			obsScriptCompiles.Inc()
		}
	}
	return a
}

// assetsFor returns the assets for a page source, parsing at most once per
// process. The second result reports whether the parse was served from the
// cache. Concurrent first loads of the same source may both build; LoadOrStore
// keeps one winner and the loser's work is discarded — cheaper than holding a
// lock across a parse.
func assetsFor(src string) (*pageAssets, bool) {
	if v, ok := assetCache.Load(src); ok {
		return v.(*pageAssets), true
	}
	a := buildAssets(src)
	actual, loaded := assetCache.LoadOrStore(src, a)
	return actual.(*pageAssets), loaded
}
