package browser

import (
	"sort"

	"github.com/wattwiseweb/greenweb/internal/acmp"
	"github.com/wattwiseweb/greenweb/internal/sim"
)

// UID uniquely identifies one user input event, the key of the Fig. 8
// tracking algorithm ("getUniqueID()").
type UID uint64

// Provenance is the set of input UIDs a piece of engine activity descends
// from. Callbacks run with the provenance of the input that triggered them;
// rAF registrations and CSS transitions inherit the provenance of the code
// that created them; a frame's provenance is the union over everything
// batched into it. This implements the message-propagation metadata (Msg)
// of Fig. 8 and the transitive-closure association of Sec. 6.4.
type Provenance map[UID]struct{}

// NewProvenance builds a set from ids.
func NewProvenance(ids ...UID) Provenance {
	p := make(Provenance, len(ids))
	for _, id := range ids {
		p[id] = struct{}{}
	}
	return p
}

// Clone copies the set.
func (p Provenance) Clone() Provenance {
	c := make(Provenance, len(p))
	for id := range p {
		c[id] = struct{}{}
	}
	return c
}

// Merge adds all of o into p.
func (p Provenance) Merge(o Provenance) {
	for id := range o {
		p[id] = struct{}{}
	}
}

// Has reports membership.
func (p Provenance) Has(id UID) bool {
	_, ok := p[id]
	return ok
}

// IDs returns the members in ascending order.
func (p Provenance) IDs() []UID {
	out := make([]UID, 0, len(p))
	for id := range p {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// InputRecord is the engine-side record of one injected input (the Msg of
// Fig. 8: a unique id plus its start timestamp).
type InputRecord struct {
	UID    UID
	Event  string // DOM event name
	Target string // element id or path, for reports
	Start  sim.Time
}

// InputLatency is one resolved (input, frame) attribution: how long after
// the input the frame reached the display.
type InputLatency struct {
	Input   InputRecord
	Latency sim.Duration
}

// FrameResult describes one produced frame, delivered to the governor when
// the browser process receives the frame-ready signal.
type FrameResult struct {
	Seq int
	// Begin is when the VSync began producing this frame; End is when it
	// reached the display.
	Begin, End sim.Time
	// ProductionLatency = End - Begin: the per-frame latency continuous
	// QoS targets bound (16.6 ms ⇒ 60 FPS).
	ProductionLatency sim.Duration
	// Inputs lists the input events batched into this frame with their
	// end-to-end latencies (input initiation → display), the quantity
	// single QoS targets bound.
	Inputs []InputLatency
	// Provenance is the full ancestor set, including inputs whose effect
	// reached this frame indirectly (rAF chains, transitions).
	Provenance Provenance
	// Config is the execution configuration when production began.
	Config acmp.Config
	// MainWork is the big-core cycle total the renderer main thread spent
	// on this frame (callback/rAF + style + layout + paint).
	MainWork int64
	// Stages records the per-stage timings of a staged frame production
	// (nil when the engine rendered serially). The sum of CritCycles over
	// stages is the frame's render critical path; the sum of TotalCycles is
	// what the serial cascade would have paid.
	Stages []StageTiming
}

// DispatchResult summarizes what one event dispatch did — AUTOGREEN's
// profiling phase inspects this to classify an event's QoS type (Sec. 5).
type DispatchResult struct {
	HandlersRun       int
	Dirtied           bool
	RAFRegistered     bool
	TransitionStarted bool
	AnimateCalled     bool
	ScriptErr         error
	Ops               int64
}
