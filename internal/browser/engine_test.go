package browser

import (
	"testing"

	"github.com/wattwiseweb/greenweb/internal/acmp"
	"github.com/wattwiseweb/greenweb/internal/dom"
	"github.com/wattwiseweb/greenweb/internal/sim"
)

// recordingGovernor pins the peak configuration and records engine events.
type recordingGovernor struct {
	e          *Engine
	inputs     []InputRecord
	starts     []Provenance
	frames     []*FrameResult
	completed  []UID
	pinnedPeak bool
}

func (g *recordingGovernor) Name() string { return "recording" }
func (g *recordingGovernor) Attach(e *Engine) {
	g.e = e
	if g.pinnedPeak {
		e.CPU().SetConfig(acmp.PeakConfig())
	}
}
func (g *recordingGovernor) OnInput(in InputRecord, target *dom.Node) {
	g.inputs = append(g.inputs, in)
}
func (g *recordingGovernor) OnFrameStart(seq int, prov Provenance) { g.starts = append(g.starts, prov) }
func (g *recordingGovernor) OnFrameEnd(fr *FrameResult)            { g.frames = append(g.frames, fr) }
func (g *recordingGovernor) OnEventComplete(uid UID)               { g.completed = append(g.completed, uid) }

func newTestEngine(t *testing.T, page string) (*sim.Simulator, *Engine, *recordingGovernor) {
	t.Helper()
	s := sim.New()
	cpu := acmp.NewCPU(s, acmp.DefaultPower())
	e := New(s, cpu, nil)
	g := &recordingGovernor{pinnedPeak: true}
	e.SetGovernor(g)
	if _, err := e.LoadPage(page); err != nil {
		t.Fatal(err)
	}
	return s, e, g
}

const basicPage = `<html><head><style>
		#box { width: 100px; }
	</style></head>
	<body>
		<div id="box">content</div>
		<script>
			var clicks = 0;
			document.getElementById("box").addEventListener("click", function(e) {
				clicks++;
				e.target.style.width = (100 + clicks * 10) + "px";
			});
		</script>
	</body></html>`

func TestLoadProducesFirstMeaningfulFrame(t *testing.T) {
	s, e, g := newTestEngine(t, basicPage)
	s.Run()
	if len(e.Results()) != 1 {
		t.Fatalf("frames = %d, want 1 (first meaningful frame)", len(e.Results()))
	}
	fr := e.Results()[0]
	if len(fr.Inputs) != 1 || fr.Inputs[0].Input.Event != "load" {
		t.Fatalf("frame inputs = %+v", fr.Inputs)
	}
	if fr.Inputs[0].Latency <= e.Cost().NetworkTime {
		t.Fatalf("load latency %v <= network time alone", fr.Inputs[0].Latency)
	}
	if len(g.inputs) != 1 || g.inputs[0].Event != "load" {
		t.Fatalf("governor inputs = %+v", g.inputs)
	}
	if len(e.ScriptErrors()) != 0 {
		t.Fatalf("script errors: %v", e.ScriptErrors())
	}
}

func TestLoadEventCompletes(t *testing.T) {
	s, _, g := newTestEngine(t, basicPage)
	s.Run()
	if len(g.completed) != 1 {
		t.Fatalf("completed = %v, want the load event", g.completed)
	}
}

func TestTapProducesAttributedFrame(t *testing.T) {
	s, e, g := newTestEngine(t, basicPage)
	s.Run() // finish load
	e.Inject(s.Now().Add(100*sim.Millisecond), "click", "box", nil)
	s.Run()

	frames := e.Results()
	if len(frames) != 2 {
		t.Fatalf("frames = %d, want 2 (load + click)", len(frames))
	}
	click := frames[1]
	if len(click.Inputs) != 1 || click.Inputs[0].Input.Event != "click" {
		t.Fatalf("click frame inputs = %+v", click.Inputs)
	}
	if click.Inputs[0].Latency <= 0 {
		t.Fatal("click latency not positive")
	}
	// Mutation happened, so the width must have changed.
	if e.Doc().GetElementByID("box").Style("width") != "110px" {
		t.Fatalf("width = %q", e.Doc().GetElementByID("box").Style("width"))
	}
	// Both load and click events must have completed.
	if len(g.completed) != 2 {
		t.Fatalf("completed = %v", g.completed)
	}
}

func TestNonDirtyingEventProducesNoFrame(t *testing.T) {
	page := `<html><body><div id="d">x</div>
		<script>
			document.getElementById("d").addEventListener("touchend", function(e) {
				var n = 1 + 2; // no DOM mutation
			});
		</script></body></html>`
	s, e, g := newTestEngine(t, page)
	s.Run()
	base := len(e.Results())
	e.Inject(s.Now().Add(10*sim.Millisecond), "touchend", "d", nil)
	s.Run()
	if len(e.Results()) != base {
		t.Fatalf("non-dirtying event produced a frame")
	}
	if len(g.completed) != 2 {
		t.Fatalf("completed = %v (event must still complete)", g.completed)
	}
}

func TestInputBatchingOneFrameManyInputs(t *testing.T) {
	// Two inputs land within the same VSync interval: their callbacks both
	// run before the frame, and the single frame carries both latencies
	// (the dirty-bit + message-queue behaviour of Fig. 8 Part II).
	s, e, _ := newTestEngine(t, basicPage)
	s.Run()
	base := s.Now().Add(50 * sim.Millisecond)
	// Align injections right after a VSync boundary so both callbacks
	// complete before the next tick.
	e.Inject(base, "click", "box", nil)
	e.Inject(base.Add(1*sim.Millisecond), "click", "box", nil)
	s.Run()
	frames := e.Results()
	last := frames[len(frames)-1]
	total := 0
	for _, fr := range frames[1:] {
		total += len(fr.Inputs)
	}
	if total != 2 {
		t.Fatalf("attributed inputs = %d, want 2", total)
	}
	// Expect batching into a single post-load frame.
	if len(frames) != 2 {
		t.Logf("note: got %d frames (inputs may have straddled a VSync); latencies still attributed", len(frames))
	}
	if last.ProductionLatency <= 0 {
		t.Fatal("production latency missing")
	}
}

const rafPage = `<html><body><div id="c">x</div>
	<script>
		var frames = 0;
		document.getElementById("c").addEventListener("touchstart", function(e) {
			function step(ts) {
				frames++;
				document.getElementById("c").style.height = frames + "px";
				if (frames < 5) { requestAnimationFrame(step); }
			}
			requestAnimationFrame(step);
		});
	</script></body></html>`

func TestRAFAnimationChain(t *testing.T) {
	s, e, g := newTestEngine(t, rafPage)
	s.Run()
	e.Inject(s.Now().Add(20*sim.Millisecond), "touchstart", "c", nil)
	s.Run()

	frames := e.Results()
	if len(frames) != 6 { // load + 5 animation frames
		t.Fatalf("frames = %d, want 6", len(frames))
	}
	// Every animation frame's provenance must contain the touchstart input
	// (transitive closure through the rAF chain, Sec. 6.4).
	recs := e.InputRecords()
	var touchUID UID
	for uid, rec := range recs {
		if rec.Event == "touchstart" {
			touchUID = uid
		}
	}
	for _, fr := range frames[1:] {
		if !fr.Provenance.Has(touchUID) {
			t.Fatalf("frame %d provenance %v missing touchstart %d", fr.Seq, fr.Provenance.IDs(), touchUID)
		}
	}
	// The event completes only after the last chained frame.
	if len(g.completed) != 2 {
		t.Fatalf("completed = %v", g.completed)
	}
	// Animation frames are VSync-paced: consecutive Begin times are at
	// least one period apart.
	for i := 2; i < len(frames); i++ {
		gap := frames[i].Begin.Sub(frames[i-1].Begin)
		if gap < e.Cost().VSyncPeriod {
			t.Fatalf("frames %d→%d gap %v < VSync period", i-1, i, gap)
		}
	}
}

const transitionPage = `<html><head><style>
		#ex { width: 100px; transition: width 100ms; }
	</style></head>
	<body><div id="ex">x</div>
	<script>
		document.getElementById("ex").addEventListener("touchstart", function(e) {
			document.getElementById("ex").style.width = "500px";
		});
		var ended = 0;
		document.getElementById("ex").addEventListener("transitionend", function(e) { ended++; });
	</script></body></html>`

func TestCSSTransitionGeneratesFrames(t *testing.T) {
	s, e, g := newTestEngine(t, transitionPage)
	// Cascade runs via computed style lookup; transitions read
	// Node.Computed, which consults inline style first. The style sheet
	// declared the transition, so cascade must land it in ComputedStyle.
	s.Run()
	// Manually cascade: engine applies sheets at load via css.Cascade?
	e.Inject(s.Now().Add(20*sim.Millisecond), "touchstart", "ex", nil)
	s.Run()

	// 100 ms transition at ~60 Hz ⇒ roughly 6-8 frames plus load frame.
	n := len(e.Results())
	if n < 5 {
		t.Fatalf("frames = %d, want several transition frames", n)
	}
	// transitionend must have fired exactly once.
	v, _ := e.Interp().Globals.Lookup("ended")
	if v.Number() != 1 {
		t.Fatalf("transitionend fired %v times", v)
	}
	// Final value reached.
	if got := e.Doc().GetElementByID("ex").Style("width"); got != "500px" {
		t.Fatalf("final width = %q", got)
	}
	if len(g.completed) != 2 {
		t.Fatalf("completed = %v", g.completed)
	}
}

func TestFrameConfigRecorded(t *testing.T) {
	s, e, _ := newTestEngine(t, basicPage)
	s.Run()
	for _, fr := range e.Results() {
		if fr.Config != acmp.PeakConfig() {
			t.Fatalf("frame config = %v, want peak", fr.Config)
		}
	}
}

func TestSetTimeoutRunsOnMainThread(t *testing.T) {
	page := `<html><body><div id="d">x</div>
		<script>
			var ran = false;
			setTimeout(function() {
				ran = true;
				document.getElementById("d").style.color = "red";
			}, 30);
		</script></body></html>`
	s, e, _ := newTestEngine(t, page)
	s.Run()
	v, _ := e.Interp().Globals.Lookup("ran")
	if !v.Truthy() {
		t.Fatal("timeout callback did not run")
	}
	// The timeout's mutation must have produced a frame attributed to the
	// load event (provenance inheritance through setTimeout).
	frames := e.Results()
	if len(frames) < 2 {
		t.Fatalf("frames = %d, want load + timeout frame", len(frames))
	}
}

func TestInjectOnMissingTargetIsIgnored(t *testing.T) {
	s, e, g := newTestEngine(t, basicPage)
	s.Run()
	e.Inject(s.Now().Add(time10ms()), "click", "ghost", nil)
	s.Run()
	if len(g.inputs) != 1 {
		t.Fatalf("inputs = %d, want 1 (load only)", len(g.inputs))
	}
	_ = e
}

func time10ms() sim.Duration { return 10 * sim.Millisecond }

func TestAnimateHelperMarksAndAnimates(t *testing.T) {
	page := `<html><body><div id="d">x</div>
		<script>
			document.getElementById("d").addEventListener("click", function(e) {
				animate(document.getElementById("d"), "width", 0, 100, 50);
			});
		</script></body></html>`
	s, e, _ := newTestEngine(t, page)
	s.Run()
	e.Inject(s.Now().Add(10*sim.Millisecond), "click", "d", nil)
	s.Run()
	if len(e.Results()) < 3 {
		t.Fatalf("frames = %d, want several animate frames", len(e.Results()))
	}
	if got := e.Doc().GetElementByID("d").Style("width"); got != "100px" {
		t.Fatalf("final width = %q", got)
	}
}

func TestDoubleLoadFails(t *testing.T) {
	_, e, _ := newTestEngine(t, basicPage)
	if _, err := e.LoadPage(basicPage); err == nil {
		t.Fatal("second LoadPage must fail")
	}
}

func TestLoadWithoutGovernorFails(t *testing.T) {
	s := sim.New()
	cpu := acmp.NewCPU(s, acmp.DefaultPower())
	e := New(s, cpu, nil)
	if _, err := e.LoadPage(basicPage); err == nil {
		t.Fatal("LoadPage without governor must fail")
	}
}

func TestFasterConfigYieldsFasterFrames(t *testing.T) {
	run := func(cfg acmp.Config) sim.Duration {
		s := sim.New()
		cpu := acmp.NewCPU(s, acmp.DefaultPower())
		e := New(s, cpu, nil)
		g := &recordingGovernor{}
		e.SetGovernor(g)
		cpu.SetConfig(cfg)
		if _, err := e.LoadPage(basicPage); err != nil {
			t.Fatal(err)
		}
		s.Run()
		return e.Results()[0].Inputs[0].Latency
	}
	fast := run(acmp.PeakConfig())
	slow := run(acmp.LowestConfig())
	if fast >= slow {
		t.Fatalf("peak load %v >= lowest load %v", fast, slow)
	}
	// The compute portion should respond strongly to the ~9× performance
	// span; the fixed network time (40 ms) dilutes the end-to-end ratio.
	if slow-fast < 15*sim.Millisecond {
		t.Fatalf("config barely matters: %v vs %v", fast, slow)
	}
}

func TestProvenanceHelpers(t *testing.T) {
	p := NewProvenance(1, 2)
	q := p.Clone()
	q.Merge(NewProvenance(3))
	if p.Has(3) {
		t.Fatal("Clone not independent")
	}
	if !q.Has(1) || !q.Has(3) {
		t.Fatal("Merge lost members")
	}
	ids := q.IDs()
	if len(ids) != 3 || ids[0] != 1 || ids[2] != 3 {
		t.Fatalf("IDs = %v", ids)
	}
}

// BenchmarkSimulatedAnimation measures simulator throughput: how fast the
// full stack (interpreter, pipeline, VSync, hardware model) chews through
// a 60-frame animation.
func BenchmarkSimulatedAnimation(b *testing.B) {
	page := `<html><body><div id="c">x</div>
		<script>
			var n = 0;
			document.getElementById("c").addEventListener("touchstart", function(e) {
				function step() {
					n++;
					work(20);
					document.getElementById("c").style.height = n + "px";
					if (n % 60 !== 0) { requestAnimationFrame(step); }
				}
				requestAnimationFrame(step);
			});
		</script></body></html>`
	for i := 0; i < b.N; i++ {
		s := sim.New()
		cpu := acmp.NewCPU(s, acmp.DefaultPower())
		e := New(s, cpu, nil)
		e.SetGovernor(&recordingGovernor{pinnedPeak: true})
		if _, err := e.LoadPage(page); err != nil {
			b.Fatal(err)
		}
		s.Run()
		e.Inject(s.Now().Add(10*sim.Millisecond), "touchstart", "c", nil)
		s.Run()
		if len(e.Results()) < 60 {
			b.Fatalf("frames = %d", len(e.Results()))
		}
	}
}
