package browser

import (
	"fmt"
	"testing"

	"github.com/wattwiseweb/greenweb/internal/sim"
)

// runScenario loads a page, fires a click, and summarizes everything the
// harness derives results from: frame timings, attributed inputs, script
// errors, and final DOM state.
func runScenario(t *testing.T, page string) string {
	t.Helper()
	s, e, g := newTestEngine(t, page)
	s.Run()
	e.Inject(s.Now().Add(100*sim.Millisecond), "click", "box", nil)
	s.Run()

	out := ""
	for _, fr := range e.Results() {
		out += fmt.Sprintf("frame seq=%d begin=%v end=%v work=%d inputs=%d\n",
			fr.Seq, fr.Begin, fr.End, fr.MainWork, len(fr.Inputs))
		for _, in := range fr.Inputs {
			out += fmt.Sprintf("  input ev=%s latency=%v\n", in.Input.Event, in.Latency)
		}
	}
	out += fmt.Sprintf("completed=%d scriptErrs=%d width=%s\n",
		len(g.completed), len(e.ScriptErrors()), e.Doc().GetElementByID("box").Style("width"))
	return out
}

// TestAssetCacheEquivalence runs the same scenario cold, warm (cache hit),
// and with the cache disabled, and requires identical observable results —
// the cache must never change a single reported number.
func TestAssetCacheEquivalence(t *testing.T) {
	ResetAssetCache()
	defer SetAssetCache(true)

	SetAssetCache(true)
	cold := runScenario(t, basicPage)
	warm := runScenario(t, basicPage)
	SetAssetCache(false)
	uncached := runScenario(t, basicPage)

	if cold != warm {
		t.Errorf("cold vs warm mismatch:\n%s\n---\n%s", cold, warm)
	}
	if cold != uncached {
		t.Errorf("cached vs uncached mismatch:\n%s\n---\n%s", cold, uncached)
	}
}

func TestAssetCacheHitFlag(t *testing.T) {
	ResetAssetCache()
	defer SetAssetCache(true)

	SetAssetCache(true)
	_, e1, _ := newTestEngine(t, basicPage)
	if e1.LoadStats().AssetCacheHit {
		t.Fatal("first load reported a cache hit")
	}
	_, e2, _ := newTestEngine(t, basicPage)
	if !e2.LoadStats().AssetCacheHit {
		t.Fatal("second load missed the cache")
	}

	ResetAssetCache()
	_, e3, _ := newTestEngine(t, basicPage)
	if e3.LoadStats().AssetCacheHit {
		t.Fatal("load after reset reported a cache hit")
	}

	SetAssetCache(false)
	_, e4, _ := newTestEngine(t, basicPage)
	if e4.LoadStats().AssetCacheHit {
		t.Fatal("disabled cache reported a hit")
	}
}

func TestDroppedCSSRulesCounted(t *testing.T) {
	ResetAssetCache()
	defer SetAssetCache(true)

	page := `<html><head><style>
		#box { width: 100px; }
		%%% not a rule at all
		p { color: blue; }
	</style></head><body><div id="box">x</div></body></html>`

	for _, cached := range []bool{true, false} {
		SetAssetCache(cached)
		_, e, _ := newTestEngine(t, page)
		if got := e.LoadStats().DroppedCSSRules; got != 1 {
			t.Errorf("cached=%v: DroppedCSSRules = %d, want 1", cached, got)
		}
	}
}

// TestCachedEngineIsolated guards the clone boundary: DOM mutations in one
// engine must never leak into another engine running the same cached page.
func TestCachedEngineIsolated(t *testing.T) {
	ResetAssetCache()
	defer SetAssetCache(true)
	SetAssetCache(true)

	s1, e1, _ := newTestEngine(t, basicPage)
	s1.Run()
	e1.Inject(s1.Now().Add(100*sim.Millisecond), "click", "box", nil)
	s1.Run()
	if w := e1.Doc().GetElementByID("box").Style("width"); w != "110px" {
		t.Fatalf("engine 1 width = %q", w)
	}

	s2, e2, _ := newTestEngine(t, basicPage)
	s2.Run()
	if w := e2.Doc().GetElementByID("box").Style("width"); w != "" {
		t.Fatalf("engine 2 inherited mutated state: width = %q", w)
	}
}
