package browser

import (
	"github.com/wattwiseweb/greenweb/internal/dom"
)

// ProfileEvent triggers an event's callbacks synchronously and reports what
// they did — AUTOGREEN's profiling phase (paper Sec. 5, Fig. 6). The
// injected detection mirrors the paper's: requestAnimationFrame and
// animate() use is caught by overloading those entry points, CSS
// transitions by observing transition starts during the callback.
//
// Profiling bypasses the timing pipeline (no work is charged, no frame is
// produced on its behalf) but does execute real script with real DOM
// effects; callers should use a dedicated engine instance for profiling
// runs, as AUTOGREEN does.
func (e *Engine) ProfileEvent(target *dom.Node, event string, data map[string]float64) DispatchResult {
	uid := e.newInput("profile:"+event, target.Path())
	prov := NewProvenance(uid)

	prevProv, prevDispatch := e.curProv, e.curDispatch
	e.curProv = prov
	e.curDispatch = &DispatchResult{}
	e.interp.ResetOps()
	e.curDispatch.HandlersRun = dom.Dispatch(target, event, data)
	e.curDispatch.Ops = e.interp.ResetOps()
	out := *e.curDispatch
	e.curProv, e.curDispatch = prevProv, prevDispatch

	// Release the throwaway input so closure accounting stays balanced.
	e.ref(uid, -1)
	return out
}
