// Package browser simulates a modern multi-process Web browser engine in
// enough detail to reproduce the GreenWeb paper's runtime substrate:
//
//   - a browser process receiving input and a renderer with a main thread
//     (callback execution, style, layout, paint) and a compositor thread
//     (composite, partially offloaded to GPU) — the paper's Fig. 7;
//   - VSync-driven frame production with a dirty bit, so multiple input
//     callbacks batch into one frame;
//   - the frame latency tracking algorithm of Fig. 8: every input carries
//     unique metadata propagated through inter-process and inter-thread
//     messages, a message queue augments the dirty bit, and frame-ready
//     signals resolve per-input latencies;
//   - requestAnimationFrame and CSS-transition animation machinery, whose
//     provenance propagation implements the frame↔event association of
//     Sec. 6.4 (transitive closure from the root event).
//
// All computation is charged to the ACMP model as cycle-denominated work,
// so the engine's timing responds to the governor's DVFS decisions.
package browser

import (
	"github.com/wattwiseweb/greenweb/internal/acmp"
	"github.com/wattwiseweb/greenweb/internal/sim"
)

// CostModel converts engine activity into hardware work. The constants are
// calibrated so that typical frames land in the paper's regimes: light
// frames fit little-core configurations at 60 FPS, heavy frames need the
// big cluster for the imperceptible target but fit little configurations at
// the usable target.
type CostModel struct {
	// CyclesPerOp converts interpreter operations to big-core cycles.
	CyclesPerOp int64
	// MicroArchRatio is the little/big cycle ratio for renderer work.
	MicroArchRatio float64

	// Pipeline stage costs (big-core cycles).
	StyleCyclesPerNode  int64
	LayoutCyclesPerNode int64
	PaintBaseCycles     int64
	PaintCyclesPerNode  int64
	CompositeCycles     int64
	// CompositeGPUTime is the frequency-independent part of compositing
	// (GPU raster and memory traffic).
	CompositeGPUTime sim.Duration

	// Input path costs.
	InputDispatchCycles int64        // browser-process work per input
	IPCDelay            sim.Duration // browser→renderer message latency

	// Page loading costs.
	ParseCyclesPerByte  int64        // HTML/CSS/JS front-end cost
	NetworkTime         sim.Duration // frequency-independent fetch time
	LoadBaseCycles      int64        // navigation, cache, history bookkeeping
	ScriptStartupFactor float64      // multiplier on initial script ops

	// PostFrameCycles is non-critical work that follows a frame — browser
	// cache updates, garbage collection, off-screen rasterization (paper
	// Sec. 3.2). It is not attributed to any input: an ideal runtime lets
	// it run in a low-power mode after the response frame is delivered,
	// while a peak-pinned baseline burns big-core energy on it.
	PostFrameCycles int64
	// PostFrameEvery runs the post-frame work after every Nth frame
	// (garbage collection is periodic, not per-frame).
	PostFrameEvery int

	// VSyncPeriod is the display refresh interval (60 Hz).
	VSyncPeriod sim.Duration
}

// DefaultCost returns the calibrated cost model used by the evaluation.
func DefaultCost() *CostModel {
	return &CostModel{
		CyclesPerOp:         120,
		MicroArchRatio:      1.8,
		StyleCyclesPerNode:  12_000,
		LayoutCyclesPerNode: 18_000,
		PaintBaseCycles:     900_000,
		PaintCyclesPerNode:  9_000,
		CompositeCycles:     500_000,
		CompositeGPUTime:    1200 * sim.Microsecond,
		InputDispatchCycles: 60_000,
		IPCDelay:            150 * sim.Microsecond,
		ParseCyclesPerByte:  900,
		NetworkTime:         40 * sim.Millisecond,
		LoadBaseCycles:      3_000_000,
		ScriptStartupFactor: 1.0,
		PostFrameCycles:     2_000_000,
		PostFrameEvery:      4,
		VSyncPeriod:         16667 * sim.Microsecond,
	}
}

// opsWork converts interpreter ops to ACMP work.
func (c *CostModel) opsWork(ops int64) acmp.Work {
	return acmp.MixedWork(ops*c.CyclesPerOp, c.MicroArchRatio, 0)
}

// cyclesWork converts big-core cycles to ACMP work.
func (c *CostModel) cyclesWork(cycles int64) acmp.Work {
	return acmp.MixedWork(cycles, c.MicroArchRatio, 0)
}
