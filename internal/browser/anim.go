package browser

import (
	"strconv"
	"strings"

	"github.com/wattwiseweb/greenweb/internal/acmp"
	"github.com/wattwiseweb/greenweb/internal/css"
	"github.com/wattwiseweb/greenweb/internal/dom"
	"github.com/wattwiseweb/greenweb/internal/sim"
)

// cssTransition is one in-flight CSS transition: a declared property whose
// value change animates over a duration (paper Fig. 4). Every VSync the
// transition interpolates the property, dirtying the frame with the
// provenance of the event that triggered it — which is how a single tap
// grows a 2-second sequence of attributed frames.
type cssTransition struct {
	node       *dom.Node
	prop       string
	from, to   float64
	unit       string
	start, end sim.Time
	prov       Provenance
}

type transitionTick struct {
	tr    *cssTransition
	value float64
	final bool
	prov  Provenance
}

func (e *Engine) styleChanged(n *dom.Node, prop, old, new string) {
	if e.curProv == nil || len(e.curProv) == 0 {
		return // not inside attributed callback execution
	}
	if e.applyingTick {
		return
	}
	for _, tr := range css.TransitionsFor(n) {
		if tr.Property != prop || tr.Duration <= 0 {
			continue
		}
		fromV, _ := parsePx(old)
		toV, unit := parsePx(new)
		now := e.simu.Now()
		t := &cssTransition{
			node: n, prop: prop,
			from: fromV, to: toV, unit: unit,
			start: now, end: now.Add(tr.Duration),
			prov: e.curProv.Clone(),
		}
		// Restarting a transition on the same property replaces it.
		for i, existing := range e.transitions {
			if existing.node == n && existing.prop == prop {
				for id := range existing.prov {
					e.ref(id, -1)
				}
				e.transitions = append(e.transitions[:i], e.transitions[i+1:]...)
				break
			}
		}
		e.transitions = append(e.transitions, t)
		for id := range t.prov {
			e.ref(id, +1)
		}
		if e.curDispatch != nil {
			e.curDispatch.TransitionStarted = true
		}
		e.ensureVSync()
		return
	}
}

func parsePx(s string) (float64, string) {
	s = strings.TrimSpace(s)
	unit := ""
	for _, suffix := range []string{"px", "%", "em"} {
		if strings.HasSuffix(s, suffix) {
			unit = suffix
			s = strings.TrimSuffix(s, suffix)
			break
		}
	}
	v, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
	if err != nil {
		return 0, unit
	}
	return v, unit
}

// collectTransitionTicks snapshots the interpolation work due this frame.
func (e *Engine) collectTransitionTicks() []transitionTick {
	now := e.simu.Now()
	var ticks []transitionTick
	for _, tr := range e.transitions {
		frac := 1.0
		if tr.end > tr.start && now < tr.end {
			frac = float64(now.Sub(tr.start)) / float64(tr.end.Sub(tr.start))
		}
		ticks = append(ticks, transitionTick{
			tr:    tr,
			value: tr.from + (tr.to-tr.from)*frac,
			final: now >= tr.end,
			prov:  tr.prov,
		})
	}
	return ticks
}

// applyTransitionTick writes the interpolated value and dirties the frame.
func (e *Engine) applyTransitionTick(tk transitionTick) {
	e.applyingTick = true
	tk.tr.node.SetStyle(tk.tr.prop, formatPx(tk.value, tk.tr.unit))
	e.applyingTick = false
	e.markDirty(tk.prov)
}

func formatPx(v float64, unit string) string {
	return strconv.FormatFloat(v, 'f', -1, 64) + unit
}

// finishTransitionTicks retires completed transitions, firing their
// transitionend events (which AUTOGREEN listens for, Sec. 5) and releasing
// the provenance references that kept their root events alive.
func (e *Engine) finishTransitionTicks(ticks []transitionTick) {
	for _, tk := range ticks {
		if !tk.final {
			continue
		}
		for i, tr := range e.transitions {
			if tr == tk.tr {
				e.transitions = append(e.transitions[:i], e.transitions[i+1:]...)
				break
			}
		}
		tr := tk.tr
		e.post(task{
			name: "transitionend",
			prov: tr.prov,
			run: func() acmp.Work {
				e.curDispatch = &DispatchResult{}
				e.interp.ResetOps()
				dom.Dispatch(tr.node, dom.EventTransitionEnd, nil)
				ops := e.interp.ResetOps()
				e.curDispatch = nil
				return e.cost.opsWork(ops)
			},
			commit: func() {
				for id := range tr.prov {
					e.ref(id, -1)
				}
				e.checkComplete()
			},
		})
	}
}
