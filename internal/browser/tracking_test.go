package browser

import (
	"encoding/json"
	"math/rand"
	"testing"

	"github.com/wattwiseweb/greenweb/internal/acmp"
	"github.com/wattwiseweb/greenweb/internal/sim"
)

// Tests focused on the Fig. 7/Fig. 8 tracking machinery: interleaved
// inputs, batching, attribution invariants, and post-frame housekeeping.

const heavyTapPage = `<html><body><div id="d">x</div>
	<script>
		document.getElementById("d").addEventListener("click", function(e) {
			work(400); // long callback: the next input arrives mid-flight
			e.target.style.width = "9px";
		});
		document.getElementById("d").addEventListener("touchend", function(e) {
			work(20);
			e.target.style.height = "9px";
		});
	</script></body></html>`

// TestInterleavedInputsAttributedCorrectly reproduces Fig. 7's hazard:
// Input 2 is triggered before Input 1's frame is produced. Naively
// attributing an input to its immediate next frame would mis-attribute;
// the Msg metadata must keep them straight.
func TestInterleavedInputsAttributedCorrectly(t *testing.T) {
	s := sim.New()
	cpu := acmp.NewCPU(s, acmp.DefaultPower())
	e := New(s, cpu, nil)
	g := &recordingGovernor{}
	e.SetGovernor(g)
	cpu.SetConfig(acmp.LowestConfig()) // slow: callbacks overlap inputs
	if _, err := e.LoadPage(heavyTapPage); err != nil {
		t.Fatal(err)
	}
	s.Run()
	base := s.Now().Add(10 * sim.Millisecond)
	// Input 1 (click, ~250 ms callback at little@350); Input 2 lands 30 ms
	// later, long before Input 1's frame exists.
	e.Inject(base, "click", "d", nil)
	e.Inject(base.Add(30*sim.Millisecond), "touchend", "d", nil)
	s.Run()

	// Collect attributions by event name.
	latencies := map[string]sim.Duration{}
	for _, fr := range e.Results() {
		for _, il := range fr.Inputs {
			latencies[il.Input.Event] = il.Latency
		}
	}
	click, ok1 := latencies["click"]
	touch, ok2 := latencies["touchend"]
	if !ok1 || !ok2 {
		t.Fatalf("missing attributions: %v", latencies)
	}
	// The click's latency covers its own long callback; the touchend
	// waited behind it, so its latency is measured from ITS OWN start —
	// shorter than the click's by roughly the 30 ms stagger.
	if click <= touch {
		t.Fatalf("click latency %v <= touchend latency %v; attribution crossed", click, touch)
	}
	diff := click - touch
	if diff < 20*sim.Millisecond || diff > 45*sim.Millisecond {
		t.Fatalf("latency stagger = %v, want ≈30ms (each input measured from its own start)", diff)
	}
}

// TestEveryDirtyingInputAttributedExactlyOnce is the Fig. 8 invariant:
// random bursts of inputs, each dirtying, must each appear in exactly one
// frame's input list.
func TestEveryDirtyingInputAttributedExactlyOnce(t *testing.T) {
	page := `<html><body><div id="d">x</div>
		<script>
			var n = 0;
			document.getElementById("d").addEventListener("click", function(e) {
				n++;
				work(5);
				e.target.setAttribute("data-n", n);
			});
		</script></body></html>`
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 10; trial++ {
		s := sim.New()
		cpu := acmp.NewCPU(s, acmp.DefaultPower())
		e := New(s, cpu, nil)
		e.SetGovernor(&recordingGovernor{pinnedPeak: trial%2 == 0})
		if _, err := e.LoadPage(page); err != nil {
			t.Fatal(err)
		}
		s.Run()
		at := s.Now()
		nInputs := 5 + rng.Intn(20)
		for i := 0; i < nInputs; i++ {
			at = at.Add(sim.Duration(1+rng.Intn(40)) * sim.Millisecond)
			e.Inject(at, "click", "d", nil)
		}
		s.Run()

		seen := map[UID]int{}
		for _, fr := range e.Results() {
			for _, il := range fr.Inputs {
				seen[il.Input.UID]++
				if il.Latency <= 0 {
					t.Fatalf("trial %d: non-positive latency for input %d", trial, il.Input.UID)
				}
			}
		}
		clicks := 0
		for uid, rec := range e.InputRecords() {
			if rec.Event != "click" {
				continue
			}
			clicks++
			if seen[uid] != 1 {
				t.Fatalf("trial %d: input %d attributed %d times", trial, uid, seen[uid])
			}
		}
		if clicks != nInputs {
			t.Fatalf("trial %d: %d clicks recorded, want %d", trial, clicks, nInputs)
		}
	}
}

func TestPostFrameHousekeepingRuns(t *testing.T) {
	s := sim.New()
	cpu := acmp.NewCPU(s, acmp.DefaultPower())
	cost := DefaultCost()
	cost.PostFrameEvery = 1 // after every frame, for the test
	e := New(s, cpu, cost)
	e.SetGovernor(&recordingGovernor{pinnedPeak: true})
	if _, err := e.LoadPage(basicPage); err != nil {
		t.Fatal(err)
	}
	s.Run()
	busyAfterLoad := e.mainThread.BusyTime()
	// The load frame triggered housekeeping: main-thread busy time must
	// exceed a run with housekeeping disabled.
	s2 := sim.New()
	cpu2 := acmp.NewCPU(s2, acmp.DefaultPower())
	cost2 := DefaultCost()
	cost2.PostFrameCycles = 0
	e2 := New(s2, cpu2, cost2)
	e2.SetGovernor(&recordingGovernor{pinnedPeak: true})
	if _, err := e2.LoadPage(basicPage); err != nil {
		t.Fatal(err)
	}
	s2.Run()
	if busyAfterLoad <= e2.mainThread.BusyTime() {
		t.Fatalf("housekeeping did not add main-thread work: %v vs %v",
			busyAfterLoad, e2.mainThread.BusyTime())
	}
	// Housekeeping frames carry no provenance and thus never appear as
	// frames or attributions.
	if len(e.Results()) != len(e2.Results()) {
		t.Fatalf("housekeeping changed frame count: %d vs %d", len(e.Results()), len(e2.Results()))
	}
}

func TestVSyncSkipUnderOverload(t *testing.T) {
	// Frames whose production exceeds the VSync period force skipped
	// VSyncs: production latencies above one period, frame gaps at
	// multiples of the period.
	page := `<html><body><div id="d">x</div>
		<script>
			var n = 0;
			document.getElementById("d").addEventListener("touchstart", function(e) {
				function step() {
					n++;
					work(200); // ~24 ms at peak: misses 60 Hz deliberately
					document.getElementById("d").style.height = n + "px";
					if (n < 10) { requestAnimationFrame(step); }
				}
				requestAnimationFrame(step);
			});
		</script></body></html>`
	s := sim.New()
	cpu := acmp.NewCPU(s, acmp.DefaultPower())
	e := New(s, cpu, nil)
	e.SetGovernor(&recordingGovernor{pinnedPeak: true})
	if _, err := e.LoadPage(page); err != nil {
		t.Fatal(err)
	}
	s.Run()
	e.Inject(s.Now().Add(10*sim.Millisecond), "touchstart", "d", nil)
	s.Run()
	frames := e.Results()
	if len(frames) < 8 {
		t.Fatalf("frames = %d", len(frames))
	}
	period := e.Cost().VSyncPeriod
	for i := 2; i < len(frames); i++ {
		gap := frames[i].Begin.Sub(frames[i-1].Begin)
		if gap < period {
			t.Fatalf("frame gap %v below the VSync period", gap)
		}
		// Begin times stay aligned to the VSync grid.
		if int64(frames[i].Begin)%int64(period) != 0 {
			t.Fatalf("frame %d begins off the VSync grid: %v", i, frames[i].Begin)
		}
	}
}

func TestSwitchStallExtendsFrame(t *testing.T) {
	// A configuration switch mid-frame pays the stall: production under a
	// mid-frame switch is longer than at a pinned config.
	run := func(switchMid bool) sim.Duration {
		s := sim.New()
		cpu := acmp.NewCPU(s, acmp.DefaultPower())
		e := New(s, cpu, nil)
		e.SetGovernor(&recordingGovernor{})
		cpu.SetConfig(acmp.Config{Cluster: acmp.Big, MHz: 1000})
		if _, err := e.LoadPage(basicPage); err != nil {
			t.Fatal(err)
		}
		s.Run()
		start := s.Now().Add(10 * sim.Millisecond)
		e.Inject(start, "click", "box", nil)
		if switchMid {
			s.At(start.Add(4*sim.Millisecond), "mid-switch", func() {
				cpu.SetConfig(acmp.Config{Cluster: acmp.Big, MHz: 900})
			})
		}
		s.Run()
		frames := e.Results()
		return frames[len(frames)-1].Inputs[0].Latency
	}
	pinned := run(false)
	switched := run(true)
	if switched <= pinned {
		t.Fatalf("mid-frame switch did not slow the frame: %v vs %v", switched, pinned)
	}
}

func TestExportFrames(t *testing.T) {
	s, e, _ := newTestEngine(t, basicPage)
	s.Run()
	e.Inject(s.Now().Add(10*sim.Millisecond), "click", "box", nil)
	s.Run()
	data, err := ExportFrames(e.Results())
	if err != nil {
		t.Fatal(err)
	}
	var out []FrameJSON
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatal(err)
	}
	if len(out) != len(e.Results()) {
		t.Fatalf("exported %d frames, want %d", len(out), len(e.Results()))
	}
	if out[0].Config == "" || out[0].EndUS <= out[0].BeginUS {
		t.Fatalf("frame 0 = %+v", out[0])
	}
	if len(out[1].Inputs) != 1 || out[1].Inputs[0].Event != "click" {
		t.Fatalf("frame 1 inputs = %+v", out[1].Inputs)
	}
}
