package browser

import "encoding/json"

// FrameJSON is the serializable form of a FrameResult, for timeline
// tooling (cmd/greenweb -frames).
type FrameJSON struct {
	Seq          int         `json:"seq"`
	BeginUS      int64       `json:"begin_us"`
	EndUS        int64       `json:"end_us"`
	ProductionUS int64       `json:"production_us"`
	Config       string      `json:"config"`
	MainWork     int64       `json:"main_work_cycles"`
	Provenance   []uint64    `json:"provenance"`
	Inputs       []InputJSON `json:"inputs,omitempty"`
}

// InputJSON is one attributed input in a frame export.
type InputJSON struct {
	UID       uint64 `json:"uid"`
	Event     string `json:"event"`
	Target    string `json:"target"`
	StartUS   int64  `json:"start_us"`
	LatencyUS int64  `json:"latency_us"`
}

// ExportFrames serializes a frame timeline as indented JSON.
func ExportFrames(frames []FrameResult) ([]byte, error) {
	out := make([]FrameJSON, len(frames))
	for i, fr := range frames {
		fj := FrameJSON{
			Seq:          fr.Seq,
			BeginUS:      int64(fr.Begin),
			EndUS:        int64(fr.End),
			ProductionUS: int64(fr.ProductionLatency),
			Config:       fr.Config.String(),
			MainWork:     fr.MainWork,
		}
		for _, id := range fr.Provenance.IDs() {
			fj.Provenance = append(fj.Provenance, uint64(id))
		}
		for _, il := range fr.Inputs {
			fj.Inputs = append(fj.Inputs, InputJSON{
				UID:       uint64(il.Input.UID),
				Event:     il.Input.Event,
				Target:    il.Input.Target,
				StartUS:   int64(il.Input.Start),
				LatencyUS: int64(il.Latency),
			})
		}
		out[i] = fj
	}
	return json.MarshalIndent(out, "", "  ")
}
