package browser

import (
	"fmt"
	"sort"

	"github.com/wattwiseweb/greenweb/internal/acmp"
	"github.com/wattwiseweb/greenweb/internal/css"
	"github.com/wattwiseweb/greenweb/internal/dom"
	"github.com/wattwiseweb/greenweb/internal/js"
	"github.com/wattwiseweb/greenweb/internal/ledger"
	"github.com/wattwiseweb/greenweb/internal/obs"
	"github.com/wattwiseweb/greenweb/internal/sim"
	"github.com/wattwiseweb/greenweb/internal/webapi"
)

// Process-wide engine counters. These are pure observability — simulation
// code never reads them back, so they cannot perturb outputs.
var (
	obsFrames = obs.Default().Counter("greenweb_engine_frames_total",
		"Committed frames produced across all engine instances")
	obsInputs = obs.Default().Counter("greenweb_engine_inputs_total",
		"Input events received across all engine instances (including page loads)")
	obsAssetHits = obs.Default().Counter("greenweb_engine_asset_cache_hits_total",
		"Page loads served from the parse-once asset cache")
	obsAssetMisses = obs.Default().Counter("greenweb_engine_asset_cache_misses_total",
		"Page loads that built assets fresh (cold cache or cache disabled)")
	obsDroppedCSS = obs.Default().Counter("greenweb_engine_dropped_css_rules_total",
		"Malformed CSS rules skipped by the tolerant parser across page loads")
	obsVMScripts = obs.Default().Counter("greenweb_engine_vm_scripts_total",
		"Startup scripts executed on the bytecode VM")
	obsTreeScripts = obs.Default().Counter("greenweb_engine_treewalk_scripts_total",
		"Startup scripts executed by the tree-walking interpreter")
)

// Governor decides execution configurations. The baselines (Perf,
// Interactive, …) and the GreenWeb runtime all implement this interface;
// the engine reports inputs, frame starts, frame completions, and event
// closure, and the governor responds by setting the CPU configuration.
type Governor interface {
	Name() string
	// Attach is called once before the run starts.
	Attach(e *Engine)
	// OnInput fires when the browser process receives an input event.
	// target is nil for page loads.
	OnInput(in InputRecord, target *dom.Node)
	// OnFrameStart fires when a VSync begins producing a frame with the
	// given provenance, before any frame work is submitted.
	OnFrameStart(seq int, prov Provenance)
	// OnFrameEnd fires when the frame-ready signal arrives.
	OnFrameEnd(fr *FrameResult)
	// OnEventComplete fires when no further work or frames can descend
	// from the input (the transitive closure of Sec. 6.4 is exhausted).
	OnEventComplete(uid UID)
}

// task is one unit of renderer main-thread work: run executes engine/script
// effects and returns the work to charge; commit applies deferred effects
// when the charged work completes.
type task struct {
	name   string
	prov   Provenance
	run    func() acmp.Work
	commit func()
}

// rafRequest is a pending requestAnimationFrame callback.
type rafRequest struct {
	id   int
	cb   js.Value
	prov Provenance
}

// Engine is one simulated browser instance rendering one page.
type Engine struct {
	simu *sim.Simulator
	cpu  *acmp.CPU
	cost *CostModel

	doc    *dom.Document
	interp *js.Interp
	bind   *webapi.Bindings
	sheets []*css.Stylesheet
	anns   *css.AnnotationSet

	browserThread    *acmp.Thread
	mainThread       *acmp.Thread
	compositorThread *acmp.Thread
	// stageThreads, when non-empty, switch frame production to the staged
	// pipeline (see stage.go). Serial engines never create them: the thread
	// count feeds the idle-power model, so their mere existence would change
	// energy outputs.
	stageThreads []*acmp.Thread

	gov Governor

	// Renderer main-thread task queue (serial).
	mainQ    []task
	mainBusy bool

	// Frame production state (Fig. 7/8).
	dirty     bool
	dirtyProv Provenance
	msgQueue  []InputRecord
	rafQueue  []rafRequest
	rafSeq    int
	producing bool
	vsyncSet  bool
	frameSeq  int

	transitions  []*cssTransition
	applyingTick bool

	// Execution context of the currently running callback.
	curProv     Provenance
	curDispatch *DispatchResult

	uidSeq  UID
	inputs  map[UID]InputRecord
	refs    map[UID]int
	done    map[UID]bool
	results []FrameResult

	consoleLines []string
	scriptErrs   []error
	loaded       bool
	loadUID      UID
	loadStats    LoadStats

	onFrame []func(*FrameResult)

	// led, when set, receives a span per frame production and per input's
	// event closure for energy attribution (nil disables tracking).
	led *ledger.Ledger
	// tracer, when set, receives every closed frame span as a scheduling
	// decision. Purely observational: it reads ledger output the run already
	// produced and never feeds anything back.
	tracer *obs.Recorder
}

// New creates an engine on the simulator and CPU. A nil cost model uses
// DefaultCost; a nil governor must be set before the run via SetGovernor.
func New(s *sim.Simulator, cpu *acmp.CPU, cost *CostModel) *Engine {
	if cost == nil {
		cost = DefaultCost()
	}
	e := &Engine{
		simu:      s,
		cpu:       cpu,
		cost:      cost,
		dirtyProv: NewProvenance(),
		inputs:    make(map[UID]InputRecord),
		refs:      make(map[UID]int),
		done:      make(map[UID]bool),
	}
	e.browserThread = cpu.NewThread("browser")
	e.mainThread = cpu.NewThread("renderer-main")
	e.compositorThread = cpu.NewThread("compositor")
	return e
}

// Accessors used by governors, AUTOGREEN, and the harness.

// Sim returns the simulator.
func (e *Engine) Sim() *sim.Simulator { return e.simu }

// CPU returns the hardware model.
func (e *Engine) CPU() *acmp.CPU { return e.cpu }

// Cost returns the engine cost model.
func (e *Engine) Cost() *CostModel { return e.cost }

// Doc returns the loaded document (nil before LoadPage).
func (e *Engine) Doc() *dom.Document { return e.doc }

// Interp returns the script interpreter.
func (e *Engine) Interp() *js.Interp { return e.interp }

// Bindings returns the script↔DOM bindings.
func (e *Engine) Bindings() *webapi.Bindings { return e.bind }

// Annotations returns the GreenWeb annotation resolver for the page.
func (e *Engine) Annotations() *css.AnnotationSet { return e.anns }

// AddAnnotationSheet appends extra GreenWeb rules (AUTOGREEN's output).
func (e *Engine) AddAnnotationSheet(sheet *css.Stylesheet) { e.anns.AddSheet(sheet) }

// Results returns the frames produced so far.
func (e *Engine) Results() []FrameResult { return e.results }

// ConsoleLines returns accumulated console output.
func (e *Engine) ConsoleLines() []string { return e.consoleLines }

// ScriptErrors returns script failures (logged, not fatal — as in engines).
func (e *Engine) ScriptErrors() []error { return e.scriptErrs }

// LoadStats reports page-load parsing statistics.
type LoadStats struct {
	// DroppedCSSRules counts malformed rules the tolerant CSS parser
	// skipped across the page's stylesheets. Silently losing rules made
	// debugging annotation sheets painful; the counter surfaces it.
	DroppedCSSRules int
	// AssetCacheHit reports whether the page's parses were served from the
	// process-wide asset cache.
	AssetCacheHit bool
	// VMScripts and TreeWalkScripts count how many startup scripts ran on
	// the bytecode VM versus the tree-walking interpreter. The split is pure
	// observability — both engines charge identical ops — but makes a
	// misconfigured -no-vm ablation visible in one glance.
	VMScripts       int
	TreeWalkScripts int
}

// LoadStats returns the page-load statistics. Valid after LoadPage.
func (e *Engine) LoadStats() LoadStats { return e.loadStats }

// OnFrame registers an observer called after every completed frame.
func (e *Engine) OnFrame(fn func(*FrameResult)) { e.onFrame = append(e.onFrame, fn) }

// SetLedger installs an energy-attribution ledger: the engine opens a span
// per frame production and per input→completion event closure. Install
// before LoadPage so the load event is attributed too.
func (e *Engine) SetLedger(l *ledger.Ledger) { e.led = l }

// Ledger returns the installed energy ledger (nil when attribution is off).
// Governors use this to annotate the spans of frames they schedule.
func (e *Engine) Ledger() *ledger.Ledger { return e.led }

// SetTracer installs a decision recorder fed each closed frame span (a nil
// recorder is a no-op). Requires a ledger: decisions are projections of its
// frame spans.
func (e *Engine) SetTracer(r *obs.Recorder) { e.tracer = r }

// Quiescent reports whether the engine has no work in flight: no queued or
// running main-thread tasks, no frame in production, no pending animation
// callbacks or transitions, and nothing dirty. The harness polls this to
// end measurement windows at event completion rather than at arbitrary
// timeouts.
func (e *Engine) Quiescent() bool {
	return !e.mainBusy && len(e.mainQ) == 0 && !e.producing && !e.dirty &&
		len(e.rafQueue) == 0 && len(e.transitions) == 0 && len(e.msgQueue) == 0 &&
		e.browserThread.Idle() && e.compositorThread.Idle() && e.stageThreadsIdle()
}

// InputRecords returns all injected inputs by UID.
func (e *Engine) InputRecords() map[UID]InputRecord {
	out := make(map[UID]InputRecord, len(e.inputs))
	for k, v := range e.inputs {
		out[k] = v
	}
	return out
}

// InputRecord returns one input by UID. Per-frame consumers use this
// instead of InputRecords to avoid copying the whole map on every frame.
func (e *Engine) InputRecord(uid UID) (InputRecord, bool) {
	rec, ok := e.inputs[uid]
	return rec, ok
}

// SetGovernor installs the CPU governor. Must be called before the
// simulation runs.
func (e *Engine) SetGovernor(g Governor) {
	e.gov = g
	g.Attach(e)
}

// Governor returns the installed governor.
func (e *Engine) Governor() Governor { return e.gov }

// ---- webapi.Services ----

// Now implements webapi.Services.
func (e *Engine) Now() sim.Time { return e.simu.Now() }

// RequestAnimationFrame implements webapi.Services: the callback runs at
// the next frame with the provenance of the registering code.
func (e *Engine) RequestAnimationFrame(cb js.Value) int {
	e.rafSeq++
	prov := e.curProv.Clone()
	e.rafQueue = append(e.rafQueue, rafRequest{id: e.rafSeq, cb: cb, prov: prov})
	for id := range prov {
		e.ref(id, +1)
	}
	if e.curDispatch != nil {
		e.curDispatch.RAFRegistered = true
	}
	e.ensureVSync()
	return e.rafSeq
}

// SetTimeout implements webapi.Services: the callback runs on the renderer
// main thread after delay, inheriting provenance.
func (e *Engine) SetTimeout(cb js.Value, delay sim.Duration) int {
	e.rafSeq++
	prov := e.curProv.Clone()
	for id := range prov {
		e.ref(id, +1)
	}
	e.simu.After(delay, "timeout", func() {
		var d *DispatchResult
		e.post(task{
			name: "timeout-callback",
			prov: prov,
			run: func() acmp.Work {
				e.curDispatch = &DispatchResult{}
				ops, _ := e.runScriptValue(cb, js.Undefined, nil)
				d = e.curDispatch
				e.curDispatch = nil
				return e.cost.opsWork(ops)
			},
			commit: func() {
				e.commitDispatchEffects(prov, d)
				for id := range prov {
					e.ref(id, -1)
				}
				e.checkComplete()
			},
		})
	})
	return e.rafSeq
}

// ConsoleLog implements webapi.Services.
func (e *Engine) ConsoleLog(msg string) { e.consoleLines = append(e.consoleLines, msg) }

// ---- page loading ----

// LoadPage parses the page, builds the script and style environments, and
// schedules the loading pipeline: network fetch, parse, script startup,
// initial render, and the load event. The first produced frame is the
// "first meaningful frame" whose latency loading QoS is judged by
// (paper Sec. 3.2). It returns the load input's UID.
func (e *Engine) LoadPage(src string) (UID, error) {
	if e.loaded {
		return 0, fmt.Errorf("browser: page already loaded")
	}
	if e.gov == nil {
		return 0, fmt.Errorf("browser: no governor installed")
	}
	e.loaded = true

	// Parse-once asset cache: the document template, stylesheets, and
	// script ASTs for a page source are built once per process and shared;
	// this engine works on a private clone of the DOM. With the cache
	// disabled the assets are built fresh right here, and the template is
	// this engine's own — the pre-cache code path.
	var assets *pageAssets
	if AssetCacheEnabled() {
		var hit bool
		assets, hit = assetsFor(src)
		e.doc = assets.tmpl.Clone()
		e.loadStats.AssetCacheHit = hit
	} else {
		assets = buildAssets(src)
		e.doc = assets.tmpl
	}
	if e.loadStats.AssetCacheHit {
		obsAssetHits.Inc()
	} else {
		obsAssetMisses.Inc()
	}
	e.sheets = assets.sheets
	e.loadStats.DroppedCSSRules = assets.dropped
	obsDroppedCSS.Add(int64(assets.dropped))
	e.interp = js.NewInterp()
	e.bind = webapi.Install(e.interp, e.doc, e)
	e.installPrelude()

	e.anns = css.NewAnnotationSet(e.sheets...)

	e.doc.OnMutation(func(n *dom.Node) {
		if e.curDispatch != nil {
			e.curDispatch.Dirtied = true
		}
	})
	e.doc.OnStyleChange(e.styleChanged)

	uid := e.newInput("load", "#document")
	e.loadUID = uid
	rec := e.inputs[uid]
	e.gov.OnInput(rec, nil)

	var scriptBytes, pageBytes int64
	pageBytes = int64(len(src))
	for _, s := range assets.scripts {
		scriptBytes += int64(len(s))
	}

	// Browser process: navigation + network.
	e.browserThread.Submit(acmp.Work{
		CyclesBig:    e.cost.LoadBaseCycles,
		CyclesLittle: int64(float64(e.cost.LoadBaseCycles) * e.cost.MicroArchRatio),
		Indep:        e.cost.NetworkTime,
	}, func() {
		// Renderer: parse HTML+CSS.
		e.post(task{
			name: "parse",
			prov: NewProvenance(uid),
			run: func() acmp.Work {
				return e.cost.cyclesWork(pageBytes * e.cost.ParseCyclesPerByte)
			},
		})
		// Renderer: execute top-level scripts.
		e.post(task{
			name: "script-startup",
			prov: NewProvenance(uid),
			run: func() acmp.Work {
				e.curDispatch = &DispatchResult{}
				var ops int64
				// Run the cached parses. The VM executes the compiled unit
				// cached next to the AST; the tree-walker (or a unit that
				// was built while the VM was off) takes the AST path. Both
				// charge the identical op sequence, so reported work does
				// not depend on the engine choice — only wall-clock does.
				for i := range assets.scripts {
					e.interp.ResetOps()
					if prog := assets.programs[i]; prog == nil {
						e.scriptErrs = append(e.scriptErrs, assets.parseErrs[i])
					} else if cp := assets.compiled[i]; cp != nil && js.VMEnabled() {
						e.loadStats.VMScripts++
						obsVMScripts.Inc()
						if err := e.interp.RunCompiled(cp); err != nil {
							e.scriptErrs = append(e.scriptErrs, err)
						}
					} else {
						e.loadStats.TreeWalkScripts++
						obsTreeScripts.Inc()
						if err := e.interp.Run(prog); err != nil {
							e.scriptErrs = append(e.scriptErrs, err)
						}
					}
					ops += e.interp.ResetOps()
				}
				ops = int64(float64(ops) * e.cost.ScriptStartupFactor)
				ops += scriptBytes * e.cost.ParseCyclesPerByte / e.cost.CyclesPerOp
				return e.cost.opsWork(ops)
			},
			commit: func() {
				d := e.curDispatch
				e.curDispatch = nil
				e.commitDispatchEffects(NewProvenance(uid), d)
			},
		})
		// Renderer: initial render (always dirties) + load event.
		e.post(task{
			name: "initial-render",
			prov: NewProvenance(uid),
			run: func() acmp.Work {
				applied := css.Cascade(e.doc, e.sheets...)
				return e.cost.cyclesWork(int64(e.doc.CountNodes())*e.cost.StyleCyclesPerNode + int64(applied)*1000)
			},
			commit: func() {
				e.markDirty(NewProvenance(uid))
				e.enqueueMsg(e.inputs[uid])
				e.dispatchInternal(uid, e.bodyNode(), dom.EventLoad, nil)
			},
		})
	})
	return uid, nil
}

func (e *Engine) bodyNode() *dom.Node {
	if els := e.doc.GetElementsByTag("body"); len(els) > 0 {
		return els[0]
	}
	return e.doc.Root
}

// installPrelude defines the animate() helper (the jQuery-style animation
// entry point AUTOGREEN detects) and marks its use via a native hook.
func (e *Engine) installPrelude() {
	e.interp.Globals.Define("__markAnimate", js.NativeFunc("__markAnimate", func(in *js.Interp, this js.Value, args []js.Value) (js.Value, error) {
		if e.curDispatch != nil {
			e.curDispatch.AnimateCalled = true
		}
		return js.Undefined, nil
	}))
	var err error
	if js.VMEnabled() {
		err = e.interp.RunCompiled(preludeCompiled)
	} else {
		err = e.interp.Run(preludeProg)
	}
	if err != nil {
		panic("browser: prelude failed: " + err.Error())
	}
	e.interp.ResetOps()
}

const preludeSrc = `
	function animate(el, prop, from, to, durationMs) {
		__markAnimate();
		var start = performance.now();
		function step() {
			var t = (performance.now() - start) / durationMs;
			if (t > 1) { t = 1; }
			el.style[prop] = (from + (to - from) * t) + "px";
			if (t < 1) { requestAnimationFrame(step); }
		}
		requestAnimationFrame(step);
	}
`

// The prelude is identical for every engine, so it is parsed and compiled
// exactly once per process instead of once per page load.
var (
	preludeProg     = js.MustParse(preludeSrc)
	preludeCompiled = js.Compile(preludeProg)
)

// ---- input injection ----

// newInput allocates an input record (Fig. 8 Part I: unique id + start
// timestamp).
func (e *Engine) newInput(event, target string) UID {
	e.uidSeq++
	uid := e.uidSeq
	e.inputs[uid] = InputRecord{UID: uid, Event: event, Target: target, Start: e.simu.Now()}
	e.refs[uid] = 0
	e.ref(uid, +1) // in-flight input processing
	obsInputs.Inc()
	if e.led != nil {
		e.led.BeginEvent(uint64(uid), event+" "+target)
	}
	return uid
}

// Inject schedules a user input event at an absolute time: the browser
// process receives it, does its dispatch work, and forwards it over IPC to
// the renderer, where the DOM event fires with full cost accounting.
func (e *Engine) Inject(at sim.Time, event, targetID string, data map[string]float64) {
	e.simu.At(at, "input:"+event, func() {
		target := e.lookupTarget(targetID)
		if target == nil {
			return // element gone: input falls on dead space
		}
		uid := e.newInput(event, targetID)
		rec := e.inputs[uid]
		e.gov.OnInput(rec, target)
		e.browserThread.Submit(e.cost.cyclesWork(e.cost.InputDispatchCycles), func() {
			e.simu.After(e.cost.IPCDelay, "ipc:"+event, func() {
				e.dispatchInternal(uid, target, event, data)
			})
		})
	})
}

func (e *Engine) lookupTarget(targetID string) *dom.Node {
	if targetID == "" || targetID == "body" || targetID == "#document" {
		return e.bodyNode()
	}
	return e.doc.GetElementByID(targetID)
}

// dispatchInternal posts the DOM event dispatch as a main-thread task.
func (e *Engine) dispatchInternal(uid UID, target *dom.Node, event string, data map[string]float64) {
	prov := NewProvenance(uid)
	e.post(task{
		name: "dispatch:" + event,
		prov: prov,
		run: func() acmp.Work {
			e.curDispatch = &DispatchResult{}
			e.interp.ResetOps()
			e.curDispatch.HandlersRun = dom.Dispatch(target, event, data)
			ops := e.interp.ResetOps()
			e.curDispatch.Ops = ops
			// A handler-less event costs a minimal hit-test.
			if e.curDispatch.HandlersRun == 0 {
				ops = 200
			}
			return e.cost.opsWork(ops)
		},
		commit: func() {
			d := e.curDispatch
			e.curDispatch = nil
			if d.Dirtied {
				e.markDirty(prov)
				e.enqueueMsg(e.inputs[uid])
			}
			e.ref(uid, -1)
			e.checkComplete()
		},
	})
}

// runScriptValue calls a script function, returning ops spent and any error.
func (e *Engine) runScriptValue(fn js.Value, this js.Value, args []js.Value) (int64, error) {
	e.interp.ResetOps()
	_, err := e.interp.CallFunction(fn, this, args)
	if err != nil {
		e.scriptErrs = append(e.scriptErrs, err)
	}
	return e.interp.ResetOps(), err
}

// commitDispatchEffects applies the deferred consequences of a callback:
// dirty marking and message enqueueing.
func (e *Engine) commitDispatchEffects(prov Provenance, d *DispatchResult) {
	if d != nil && d.Dirtied {
		e.markDirty(prov)
		for _, id := range prov.IDs() {
			if rec, ok := e.inputs[id]; ok {
				e.enqueueMsg(rec)
			}
		}
	}
}

// ---- main-thread task pump ----

func (e *Engine) post(t task) {
	e.mainQ = append(e.mainQ, t)
	e.pumpMain()
}

func (e *Engine) pumpMain() {
	if e.mainBusy || len(e.mainQ) == 0 {
		return
	}
	t := e.mainQ[0]
	e.mainQ = e.mainQ[1:]
	e.mainBusy = true
	e.curProv = t.prov
	w := t.run()
	e.curProv = nil
	e.mainThread.Submit(w, func() {
		if t.commit != nil {
			e.curProv = t.prov
			t.commit()
			e.curProv = nil
		}
		e.mainBusy = false
		e.pumpMain()
	})
}

// ---- dirty bit + message queue (Fig. 8 Part II) ----

func (e *Engine) markDirty(prov Provenance) {
	e.dirty = true
	// Dirty provenance keeps its events alive until the frame they dirtied
	// is produced — otherwise an event whose only remaining effect is the
	// pending frame would "complete" before the frame exists, and per-frame
	// governors would never see its frames (Sec. 6.4's closure includes
	// the frames themselves).
	for uid := range prov {
		if !e.dirtyProv.Has(uid) {
			e.dirtyProv[uid] = struct{}{}
			e.ref(uid, +1)
		}
	}
	e.ensureVSync()
}

func (e *Engine) enqueueMsg(rec InputRecord) {
	for _, m := range e.msgQueue {
		if m.UID == rec.UID {
			return // one queue entry per input
		}
	}
	e.msgQueue = append(e.msgQueue, rec)
	e.ref(rec.UID, +1)
}

// ---- reference counting for event closure (Sec. 6.4) ----

func (e *Engine) ref(uid UID, delta int) {
	e.refs[uid] += delta
	if e.refs[uid] < 0 {
		panic(fmt.Sprintf("browser: negative refcount for input %d", uid))
	}
}

// checkComplete fires OnEventComplete for inputs whose transitive closure
// has been exhausted: no queued message, pending animation, or in-flight
// work references them anymore. Completions fire in ascending UID order so
// simultaneous completions notify the governor deterministically.
func (e *Engine) checkComplete() {
	var ready []UID
	for uid, n := range e.refs {
		if n == 0 && !e.done[uid] {
			ready = append(ready, uid)
		}
	}
	sort.Slice(ready, func(i, j int) bool { return ready[i] < ready[j] })
	for _, uid := range ready {
		e.done[uid] = true
		e.gov.OnEventComplete(uid)
		// Close the event's energy span after the governor reacts, so its
		// completion-time annotations land on the span; any configuration
		// change the governor makes here is zero-width in virtual time and
		// charges no energy to the closing span.
		if e.led != nil {
			e.led.EndEvent(uint64(uid))
		}
	}
}

// ---- VSync and frame production ----

func (e *Engine) needsFrameWork() bool {
	return e.dirty || len(e.rafQueue) > 0 || len(e.transitions) > 0
}

func (e *Engine) ensureVSync() {
	if e.vsyncSet {
		return
	}
	e.vsyncSet = true
	period := e.cost.VSyncPeriod
	now := e.simu.Now()
	next := sim.Time((int64(now)/int64(period) + 1) * int64(period))
	e.simu.At(next, "vsync", e.vsyncTick)
}

func (e *Engine) vsyncTick() {
	e.vsyncSet = false
	if e.producing || e.mainBusy || len(e.mainQ) > 0 {
		// Renderer still busy (previous frame or pending callbacks):
		// skip this VSync; the frame is late, exactly how jank arises.
		if e.needsFrameWork() || e.producing || len(e.mainQ) > 0 {
			e.ensureVSync()
		}
		return
	}
	if !e.needsFrameWork() {
		return
	}
	e.beginFrame()
}

// beginFrame runs the BeginFrame sequence of Fig. 7: rAF callbacks, CSS
// transition ticks, then — if anything dirtied — style, layout, paint on
// the main thread and composite on the compositor thread.
func (e *Engine) beginFrame() {
	begin := e.simu.Now()

	// Take the pending rAF callbacks; new registrations during their
	// execution belong to the next frame.
	rafs := e.rafQueue
	e.rafQueue = nil

	ticks := e.collectTransitionTicks()

	if !e.dirty && len(rafs) == 0 && len(ticks) == 0 {
		return
	}

	e.producing = true
	// Open the frame's energy span at production start: the animation
	// callbacks below are frame work, and `producing` guarantees a single
	// open frame span at a time.
	if e.led != nil {
		e.led.BeginFrame()
	}
	prov := NewProvenance()

	// Phase 1: animation callbacks as one main-thread task.
	e.post(task{
		name: "begin-frame",
		prov: prov,
		run: func() acmp.Work {
			var ops int64
			for _, r := range rafs {
				e.curProv = r.prov
				e.curDispatch = &DispatchResult{}
				ts := js.Num(float64(e.simu.Now()) / float64(sim.Millisecond))
				n, _ := e.runScriptValue(r.cb, js.Undefined, []js.Value{ts})
				ops += n
				if e.curDispatch.Dirtied {
					e.markDirty(r.prov)
				}
				e.curDispatch = nil
			}
			for _, tk := range ticks {
				e.curProv = tk.prov
				e.applyTransitionTick(tk)
				ops += 400 // interpolation bookkeeping
			}
			e.curProv = nil
			return e.cost.opsWork(ops)
		},
		commit: func() {
			for _, r := range rafs {
				for id := range r.prov {
					e.ref(id, -1)
				}
			}
			e.finishTransitionTicks(ticks)
			e.produceFrame(begin, prov)
		},
	})
}

// produceFrame runs style → layout → paint → composite for the batched
// dirty state, then resolves frame latencies (Fig. 8 Part III).
func (e *Engine) produceFrame(begin sim.Time, _ Provenance) {
	if !e.dirty {
		// Animations ran but nothing changed visually: no frame needed.
		if e.led != nil {
			e.tracer.RecordFrame(e.led.EndFrame(0, e.cpu.Config()))
		}
		e.producing = false
		e.checkComplete()
		if e.needsFrameWork() {
			e.ensureVSync()
		}
		return
	}

	// Staged pipeline: shard style/layout/paint across dedicated stage
	// threads with phase barriers (stage.go). The serial path below stays
	// byte-identical to the pre-staging engine.
	if len(e.stageThreads) > 0 {
		e.produceFrameStaged(begin)
		return
	}

	// Capture and clear the dirty state: later mutations belong to the
	// next frame.
	msgs := e.msgQueue
	e.msgQueue = nil
	dirtied := e.dirtyProv
	e.dirtyProv = NewProvenance()
	e.dirty = false
	prov := dirtied.Clone()
	for _, m := range msgs {
		prov[m.UID] = struct{}{}
	}

	e.frameSeq++
	seq := e.frameSeq
	e.gov.OnFrameStart(seq, prov.Clone())
	// Record the configuration the governor chose for this frame.
	cfg := e.cpu.Config()

	nodes := int64(e.doc.CountNodes())
	var mainWork int64
	stage := func(name string, cycles int64) task {
		mainWork += cycles
		return task{name: name, prov: prov, run: func() acmp.Work { return e.cost.cyclesWork(cycles) }}
	}
	e.post(stage("style", nodes*e.cost.StyleCyclesPerNode))
	e.post(stage("layout", nodes*e.cost.LayoutCyclesPerNode))
	e.post(task{
		name: "paint",
		prov: prov,
		run: func() acmp.Work {
			return e.cost.cyclesWork(e.cost.PaintBaseCycles + nodes*e.cost.PaintCyclesPerNode)
		},
		commit: func() {
			// Composite runs on the compositor thread, partially on GPU.
			e.compositorThread.Submit(acmp.Work{
				CyclesBig:    e.cost.CompositeCycles,
				CyclesLittle: int64(float64(e.cost.CompositeCycles) * e.cost.MicroArchRatio),
				Indep:        e.cost.CompositeGPUTime,
			}, func() {
				e.frameComplete(seq, begin, cfg, prov, dirtied, msgs, mainWork+e.cost.PaintBaseCycles+nodes*e.cost.PaintCyclesPerNode, nil)
			})
		},
	})
	mainWork += e.cost.PaintBaseCycles + nodes*e.cost.PaintCyclesPerNode
}

func (e *Engine) frameComplete(seq int, begin sim.Time, cfg acmp.Config, prov, dirtied Provenance, msgs []InputRecord, mainWork int64, stages []StageTiming) {
	end := e.simu.Now()
	fr := FrameResult{
		Seq:               seq,
		Begin:             begin,
		End:               end,
		ProductionLatency: end.Sub(begin),
		Provenance:        prov,
		Config:            cfg,
		MainWork:          mainWork,
		Stages:            stages,
	}
	for _, m := range msgs {
		fr.Inputs = append(fr.Inputs, InputLatency{Input: m, Latency: end.Sub(m.Start)})
		e.ref(m.UID, -1)
	}
	for uid := range dirtied {
		e.ref(uid, -1)
	}
	e.results = append(e.results, fr)
	e.producing = false
	// Post-frame housekeeping (cache update, GC, off-screen raster): not
	// attributed to any input and not QoS-critical, so it runs with empty
	// provenance — an annotation-aware governor will have demoted by then.
	// Browsers defer this to idle: it is skipped while an animation still
	// needs the main thread.
	if e.cost.PostFrameCycles > 0 && e.cost.PostFrameEvery > 0 &&
		seq%e.cost.PostFrameEvery == 0 && !e.needsFrameWork() {
		e.post(task{
			name: "post-frame-housekeeping",
			prov: NewProvenance(),
			run:  func() acmp.Work { return e.cost.cyclesWork(e.cost.PostFrameCycles) },
		})
	}
	e.gov.OnFrameEnd(&fr)
	for _, fn := range e.onFrame {
		fn(&fr)
	}
	obsFrames.Inc()
	// Close the frame's energy span after OnFrameEnd so the governor's
	// feedback annotations land on it; its rescheduling here is zero-width
	// in virtual time and charges nothing to the closing span.
	if e.led != nil {
		e.tracer.RecordFrame(e.led.EndFrame(seq, cfg))
	}
	e.checkComplete()
	if e.needsFrameWork() {
		e.ensureVSync()
	}
}
