package browser

import (
	"fmt"
	"sync/atomic"

	"github.com/wattwiseweb/greenweb/internal/acmp"
	"github.com/wattwiseweb/greenweb/internal/obs"
	"github.com/wattwiseweb/greenweb/internal/sim"
)

// Pipeline-parallel frame production. The serial renderer models a frame as
// one cascade — style, layout, paint as consecutive main-thread tasks. The
// staged renderer restructures that cascade into an explicit stage graph:
//
//	script (begin-frame) ──▶ style ──▶ layout ──▶ paint ──▶ composite
//
// with dependency edges between stages (a phase barrier: layout consumes the
// whole computed-style tree, paint the whole box tree) and, inside each
// stage, the per-node work split into shards that run concurrently on
// dedicated stage threads — separate simulated cores advancing in virtual
// time. Frame latency becomes the critical path through the graph: the sum
// over stages of the largest shard, not the sum of all work. Everything is
// deterministic because the "parallelism" is discrete-event simulation on
// one goroutine: shard completions are sim events with FIFO tie-breaking,
// and the phase barrier makes stage windows disjoint, so per-stage ledger
// spans nest exactly inside the frame span and the 1e-9 J conservation
// invariant is untouched.
//
// Serial mode (stage workers ≤ 1) does not build stage threads at all —
// thread count feeds the idle-power model, so the serial engine is
// byte-identical to the pre-staging engine, the repo's exact-parity
// contract.

// RenderStage identifies one stage of the frame-production graph.
type RenderStage int

// The staged phases of frame production, in dependency order.
const (
	StageStyle RenderStage = iota
	StageLayout
	StagePaint
	// NumRenderStages is the number of staged phases.
	NumRenderStages = 3
)

func (s RenderStage) String() string {
	switch s {
	case StageStyle:
		return "style"
	case StageLayout:
		return "layout"
	case StagePaint:
		return "paint"
	default:
		return fmt.Sprintf("RenderStage(%d)", int(s))
	}
}

// StageGovernor is the optional per-stage scheduling hook. A Governor that
// also implements it is notified at the start of every staged render phase,
// before the phase's shards are submitted, and may change the execution
// configuration — giving the runtime a per-stage config dimension (the
// frequency-switch and migration penalties of mid-frame changes apply
// exactly as on hardware). The base Governor interface stays frozen; serial
// frame production never calls this.
type StageGovernor interface {
	OnRenderStage(seq int, stage RenderStage)
}

// StageTiming records one staged phase of a frame for attribution and the
// per-stage performance model.
type StageTiming struct {
	Stage RenderStage
	// Start/End bound the phase window in virtual time.
	Start, End sim.Time
	// Config is the execution configuration at phase start (after the
	// governor's OnRenderStage hook ran).
	Config acmp.Config
	// TotalCycles is the phase's whole big-core cycle cost (what the serial
	// cascade would pay); CritCycles is the largest single shard — the
	// phase's contribution to the frame's critical path.
	TotalCycles, CritCycles int64
}

// Duration reports the phase window length.
func (st StageTiming) Duration() sim.Duration { return st.End.Sub(st.Start) }

// defaultStageWorkers is the process-wide stage-worker count new engines
// inherit (harness runs consult it unless a per-run override is given).
// 0 and 1 both mean serial frame production.
var defaultStageWorkers atomic.Int32

// MaxStageWorkers bounds the stage-worker count: shards beyond the per-node
// work's parallelism only add idle-core power, and the flag surface should
// reject typos, not allocate a thousand simulated cores.
const MaxStageWorkers = 16

// SetDefaultStageWorkers sets the process-wide stage-worker count (0 or 1 =
// serial). Values outside [0, MaxStageWorkers] panic: callers validate flag
// input before applying it.
func SetDefaultStageWorkers(n int) {
	if n < 0 || n > MaxStageWorkers {
		panic(fmt.Sprintf("browser: stage workers %d out of range [0, %d]", n, MaxStageWorkers))
	}
	defaultStageWorkers.Store(int32(n))
}

// DefaultStageWorkers reports the process-wide stage-worker count.
func DefaultStageWorkers() int { return int(defaultStageWorkers.Load()) }

// Staged render observability. Pure output: simulation code never reads
// these back, so they cannot perturb results.
var (
	obsStageSeconds = obs.Default().HistogramVec("greenweb_browser_stage_seconds",
		"Virtual-time duration of each staged render phase",
		[]float64{0.0002, 0.0005, 0.001, 0.002, 0.005, 0.01, 0.02, 0.05, 0.1}, "stage")
	obsStageHists = [NumRenderStages]*obs.Histogram{
		obsStageSeconds.With(StageStyle.String()),
		obsStageSeconds.With(StageLayout.String()),
		obsStageSeconds.With(StagePaint.String()),
	}
	obsStageSpeedup = obs.Default().Gauge("greenweb_browser_stage_speedup",
		"Serial-sum over critical-path cycles of the last staged frame (modeled pipeline speedup)")
	obsStageOverlap = obs.Default().Counter("greenweb_browser_stage_overlap_total",
		"Staged render phases whose shards ran concurrently on two or more stage cores")
)

// SetStageWorkers configures this engine for staged frame production with n
// stage threads (0 or 1 leaves the engine serial). It must be called before
// LoadPage — stage threads change the core count the idle-power model sees,
// so they may not appear mid-run — and at most once.
func (e *Engine) SetStageWorkers(n int) {
	if n < 0 || n > MaxStageWorkers {
		panic(fmt.Sprintf("browser: stage workers %d out of range [0, %d]", n, MaxStageWorkers))
	}
	if e.loaded {
		panic("browser: SetStageWorkers after LoadPage")
	}
	if len(e.stageThreads) > 0 {
		panic("browser: stage workers already configured")
	}
	if n < 2 {
		return
	}
	for i := 0; i < n; i++ {
		e.stageThreads = append(e.stageThreads, e.cpu.NewThread(fmt.Sprintf("render-stage-%d", i)))
	}
}

// StageWorkers reports the engine's stage-thread count (0 = serial).
func (e *Engine) StageWorkers() int { return len(e.stageThreads) }

// stageThreadsIdle reports whether every stage thread is idle (vacuously
// true for a serial engine).
func (e *Engine) stageThreadsIdle() bool {
	for _, t := range e.stageThreads {
		if !t.Idle() {
			return false
		}
	}
	return true
}

// shardCycles splits a phase's parallelizable cycles evenly across the
// stage threads (remainder cycles to the lowest shards, deterministically);
// base is the phase's serial portion (paint's per-frame base cost), carried
// by shard 0.
func shardCycles(base, par int64, workers int) []int64 {
	out := make([]int64, workers)
	q, r := par/int64(workers), par%int64(workers)
	for k := range out {
		out[k] = q
		if int64(k) < r {
			out[k]++
		}
	}
	out[0] += base
	return out
}

// produceFrameStaged is the staged counterpart of produceFrame's dirty path:
// the same dirty-state capture and frame bookkeeping, but style, layout, and
// paint execute as sharded phases on the stage threads with a dependency
// barrier between phases. The renderer main thread is NOT occupied by
// render work meanwhile, so input dispatches overlap frame production in
// virtual time — the second axis of pipeline parallelism.
func (e *Engine) produceFrameStaged(begin sim.Time) {
	msgs := e.msgQueue
	e.msgQueue = nil
	dirtied := e.dirtyProv
	e.dirtyProv = NewProvenance()
	e.dirty = false
	prov := dirtied.Clone()
	for _, m := range msgs {
		prov[m.UID] = struct{}{}
	}

	e.frameSeq++
	seq := e.frameSeq
	e.gov.OnFrameStart(seq, prov.Clone())
	// Record the configuration the governor chose for this frame (per-stage
	// hooks may vary it within the frame; this is the frame-level decision).
	cfg := e.cpu.Config()

	nodes := int64(e.doc.CountNodes())
	plan := [NumRenderStages]struct{ base, per int64 }{
		StageStyle:  {0, e.cost.StyleCyclesPerNode},
		StageLayout: {0, e.cost.LayoutCyclesPerNode},
		StagePaint:  {e.cost.PaintBaseCycles, e.cost.PaintCyclesPerNode},
	}

	stages := make([]StageTiming, 0, NumRenderStages)
	var mainWork, critWork int64

	finish := func() {
		if critWork > 0 {
			obsStageSpeedup.Set(float64(mainWork) / float64(critWork))
		}
		// Composite runs on the compositor thread, partially on GPU — same
		// as the serial path.
		e.compositorThread.Submit(acmp.Work{
			CyclesBig:    e.cost.CompositeCycles,
			CyclesLittle: int64(float64(e.cost.CompositeCycles) * e.cost.MicroArchRatio),
			Indep:        e.cost.CompositeGPUTime,
		}, func() {
			e.frameComplete(seq, begin, cfg, prov, dirtied, msgs, mainWork, stages)
		})
	}

	var runStage func(s RenderStage)
	runStage = func(s RenderStage) {
		// Per-stage scheduling hook before any shard is submitted: a config
		// change here pays the switch penalty at the phase boundary, where
		// every stage thread is momentarily idle.
		if sg, ok := e.gov.(StageGovernor); ok {
			sg.OnRenderStage(seq, s)
		}
		total := plan[s].base + nodes*plan[s].per
		mainWork += total
		shards := shardCycles(plan[s].base, nodes*plan[s].per, len(e.stageThreads))
		st := StageTiming{
			Stage:       s,
			Start:       e.simu.Now(),
			Config:      e.cpu.Config(),
			TotalCycles: total,
		}
		pending := 0
		for _, c := range shards {
			if c > st.CritCycles {
				st.CritCycles = c
			}
			if c > 0 {
				pending++
			}
		}
		if e.led != nil {
			e.led.BeginStage(seq, st.Stage.String())
		}
		if pending > 1 {
			obsStageOverlap.Inc()
		}
		done := func() {
			pending--
			if pending > 0 {
				return
			}
			st.End = e.simu.Now()
			if e.led != nil {
				e.led.EndStage()
			}
			obsStageHists[st.Stage].Observe(st.End.Sub(st.Start).Seconds())
			stages = append(stages, st)
			critWork += st.CritCycles
			if st.Stage == StagePaint {
				finish()
			} else {
				runStage(st.Stage + 1)
			}
		}
		if pending == 0 {
			// A zero-cost phase (impossible under the default cost model,
			// which charges per node) still closes its span and advances.
			pending = 1
			done()
			return
		}
		// Submit shards in thread order; equal-cost shards complete at the
		// same virtual instant and the simulator's FIFO tie-break keeps the
		// callback order deterministic (the order is immaterial anyway: only
		// the last completion advances the graph).
		for k, c := range shards {
			if c == 0 {
				continue
			}
			e.stageThreads[k].Submit(e.cost.cyclesWork(c), done)
		}
	}
	runStage(StageStyle)
}
