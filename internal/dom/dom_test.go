package dom

import (
	"strings"
	"testing"
	"testing/quick"
)

func buildDoc(t *testing.T) (*Document, *Node, *Node, *Node) {
	t.Helper()
	d := NewDocument()
	html := d.NewElement("html")
	body := d.NewElement("body")
	div := d.NewElement("div")
	div.SetAttr("id", "main")
	div.SetAttr("class", "panel wide")
	d.Root.AppendChild(html)
	html.AppendChild(body)
	body.AppendChild(div)
	return d, html, body, div
}

func TestTreeConstruction(t *testing.T) {
	d, html, body, div := buildDoc(t)
	if div.Parent != body || body.Parent != html || html.Parent != d.Root {
		t.Fatal("parent links wrong")
	}
	if d.CountNodes() != 4 {
		t.Fatalf("CountNodes = %d, want 4", d.CountNodes())
	}
	if len(d.Elements()) != 3 {
		t.Fatalf("Elements = %d, want 3", len(d.Elements()))
	}
}

func TestGetElementByID(t *testing.T) {
	d, _, _, div := buildDoc(t)
	if d.GetElementByID("main") != div {
		t.Fatal("GetElementByID failed")
	}
	if d.GetElementByID("missing") != nil {
		t.Fatal("GetElementByID returned non-nil for missing id")
	}
	div.SetAttr("id", "renamed")
	if d.GetElementByID("main") != nil {
		t.Fatal("old id still indexed after rename")
	}
	if d.GetElementByID("renamed") != div {
		t.Fatal("new id not indexed")
	}
}

func TestIDIndexOnAttachDetach(t *testing.T) {
	d, _, body, _ := buildDoc(t)
	n := d.NewElement("span")
	n.SetAttr("id", "late")
	if d.GetElementByID("late") == n {
		t.Fatal("detached node should not be indexed yet")
	}
	body.AppendChild(n)
	if d.GetElementByID("late") != n {
		t.Fatal("attached node not indexed")
	}
	body.RemoveChild(n)
	if d.GetElementByID("late") != nil {
		t.Fatal("removed node still indexed")
	}
}

func TestGetElementsByTagAndClass(t *testing.T) {
	d, _, body, _ := buildDoc(t)
	for i := 0; i < 3; i++ {
		p := d.NewElement("p")
		p.SetAttr("class", "txt")
		body.AppendChild(p)
	}
	if got := len(d.GetElementsByTag("p")); got != 3 {
		t.Fatalf("GetElementsByTag(p) = %d", got)
	}
	if got := len(d.GetElementsByTag("P")); got != 3 {
		t.Fatalf("tag lookup not case-insensitive: %d", got)
	}
	if got := len(d.GetElementsByClass("txt")); got != 3 {
		t.Fatalf("GetElementsByClass = %d", got)
	}
	if got := len(d.GetElementsByClass("panel")); got != 1 {
		t.Fatalf("GetElementsByClass(panel) = %d", got)
	}
}

func TestClasses(t *testing.T) {
	_, _, _, div := buildDoc(t)
	cs := div.Classes()
	if len(cs) != 2 || cs[0] != "panel" || cs[1] != "wide" {
		t.Fatalf("Classes = %v", cs)
	}
	if !div.HasClass("wide") || div.HasClass("narrow") {
		t.Fatal("HasClass wrong")
	}
}

func TestAppendChildReparents(t *testing.T) {
	d, _, body, div := buildDoc(t)
	span := d.NewElement("span")
	div.AppendChild(span)
	body.AppendChild(span) // reparent
	if span.Parent != body {
		t.Fatal("reparent failed")
	}
	if len(div.Children) != 0 {
		t.Fatal("old parent still holds child")
	}
}

func TestAppendChildCyclePanics(t *testing.T) {
	_, _, body, div := buildDoc(t)
	defer func() {
		if recover() == nil {
			t.Fatal("appending ancestor did not panic")
		}
	}()
	div.AppendChild(body)
}

func TestRemoveNonChildPanics(t *testing.T) {
	d, _, body, _ := buildDoc(t)
	defer func() {
		if recover() == nil {
			t.Fatal("removing non-child did not panic")
		}
	}()
	body.RemoveChild(d.NewElement("q"))
}

func TestMutationObserver(t *testing.T) {
	d, _, body, div := buildDoc(t)
	var muts []*Node
	d.OnMutation(func(n *Node) { muts = append(muts, n) })
	div.SetAttr("data-x", "1")
	div.SetStyle("width", "100px")
	body.AppendChild(d.NewElement("em"))
	if len(muts) != 3 {
		t.Fatalf("mutations = %d, want 3", len(muts))
	}
}

func TestStyleAccessors(t *testing.T) {
	_, _, _, div := buildDoc(t)
	div.SetStyle("width", "100px")
	if div.Style("width") != "100px" {
		t.Fatal("inline style lost")
	}
	div.ComputedStyle = map[string]string{"color": "red", "width": "50px"}
	if div.Computed("color") != "red" {
		t.Fatal("computed fallback failed")
	}
	if div.Computed("width") != "100px" {
		t.Fatal("inline must override computed")
	}
	if div.Computed("missing") != "" {
		t.Fatal("missing property should be empty")
	}
}

func TestTextContent(t *testing.T) {
	d, _, body, _ := buildDoc(t)
	body.AppendChild(d.NewText("hello "))
	em := d.NewElement("em")
	em.AppendChild(d.NewText("world"))
	body.AppendChild(em)
	if got := body.TextContent(); got != "hello world" {
		t.Fatalf("TextContent = %q", got)
	}
}

func TestPath(t *testing.T) {
	_, _, _, div := buildDoc(t)
	if got := div.Path(); got != "html>body>div#main" {
		t.Fatalf("Path = %q", got)
	}
}

func TestAttrNamesSorted(t *testing.T) {
	_, _, _, div := buildDoc(t)
	names := div.AttrNames()
	if len(names) != 2 || names[0] != "class" || names[1] != "id" {
		t.Fatalf("AttrNames = %v", names)
	}
	if v, ok := div.Attr("ID"); !ok || v != "main" {
		t.Fatal("Attr not case-insensitive")
	}
}

func TestNodeStrings(t *testing.T) {
	d, _, _, div := buildDoc(t)
	if div.String() != "<div>" {
		t.Fatalf("element String = %q", div.String())
	}
	if d.Root.String() != "#document" {
		t.Fatalf("root String = %q", d.Root.String())
	}
	if !strings.Contains(d.NewText("x").String(), "x") {
		t.Fatal("text String wrong")
	}
	if ElementNode.String() != "element" || TextNode.String() != "text" || DocumentNode.String() != "document" {
		t.Fatal("NodeType strings wrong")
	}
}

func TestEventDispatchBubbles(t *testing.T) {
	_, html, body, div := buildDoc(t)
	var order []string
	div.AddEventListener("click", func(e *Event) {
		order = append(order, "div")
		if e.Target != div || e.CurrentTarget != div {
			t.Error("target wrong at div")
		}
	})
	body.AddEventListener("click", func(e *Event) {
		order = append(order, "body")
		if e.Target != div || e.CurrentTarget != body {
			t.Error("target wrong at body")
		}
	})
	html.AddEventListener("click", func(e *Event) { order = append(order, "html") })
	ran := Dispatch(div, "click", nil)
	if ran != 3 {
		t.Fatalf("ran %d handlers, want 3", ran)
	}
	want := "div,body,html"
	if got := strings.Join(order, ","); got != want {
		t.Fatalf("bubble order = %s, want %s", got, want)
	}
}

func TestStopPropagation(t *testing.T) {
	_, _, body, div := buildDoc(t)
	div.AddEventListener("click", func(e *Event) { e.StopPropagation() })
	body.AddEventListener("click", func(e *Event) { t.Error("propagation not stopped") })
	if ran := Dispatch(div, "click", nil); ran != 1 {
		t.Fatalf("ran %d handlers, want 1", ran)
	}
}

func TestPreventDefault(t *testing.T) {
	_, _, _, div := buildDoc(t)
	div.AddEventListener("touchmove", func(e *Event) { e.PreventDefault() })
	e := &Event{Name: "touchmove", Target: div, CurrentTarget: div}
	for _, l := range div.Listeners("touchmove") {
		l.Handler(e)
	}
	if !e.DefaultPrevented() {
		t.Fatal("DefaultPrevented = false")
	}
}

func TestRemoveEventListener(t *testing.T) {
	_, _, _, div := buildDoc(t)
	fired := 0
	l := div.AddEventListener("click", func(*Event) { fired++ })
	Dispatch(div, "click", nil)
	div.RemoveEventListener(l)
	Dispatch(div, "click", nil)
	if fired != 1 {
		t.Fatalf("fired %d, want 1", fired)
	}
	div.RemoveEventListener(l) // double remove is a no-op
	div.RemoveEventListener(nil)
}

func TestHandlerMayMutateListeners(t *testing.T) {
	_, _, _, div := buildDoc(t)
	n := 0
	div.AddEventListener("click", func(*Event) {
		n++
		div.AddEventListener("click", func(*Event) { n += 100 })
	})
	Dispatch(div, "click", nil)
	// The newly added listener must not run during the same dispatch.
	if n != 1 {
		t.Fatalf("n = %d, want 1", n)
	}
}

func TestEventData(t *testing.T) {
	_, _, _, div := buildDoc(t)
	var got float64
	div.AddEventListener("scroll", func(e *Event) { got = e.Data["delta"] })
	Dispatch(div, "scroll", map[string]float64{"delta": 42})
	if got != 42 {
		t.Fatalf("data = %v", got)
	}
}

func TestHasListenerAndTargets(t *testing.T) {
	d, _, body, div := buildDoc(t)
	div.AddEventListener("click", func(*Event) {})
	div.AddEventListener("transitionend", func(*Event) {})
	if !body.HasListener("click") {
		t.Fatal("HasListener should see descendant listeners")
	}
	if body.HasListener("scroll") {
		t.Fatal("HasListener false positive")
	}
	// ListenerTargets only reports mobile-interaction events.
	targets := d.ListenerTargets()
	if len(targets) != 1 || targets[0].Event != "click" || targets[0].Node != div {
		t.Fatalf("ListenerTargets = %v", targets)
	}
}

func TestMobileEventClassification(t *testing.T) {
	for _, ev := range MobileEvents() {
		if !IsMobileEvent(ev) {
			t.Errorf("IsMobileEvent(%q) = false", ev)
		}
	}
	for _, ev := range []string{"mouseover", "drag", "transitionend", "keydown"} {
		if IsMobileEvent(ev) {
			t.Errorf("IsMobileEvent(%q) = true", ev)
		}
	}
	if !IsMobileEvent("CLICK") {
		t.Error("IsMobileEvent not case-insensitive")
	}
}

// Property: after any sequence of appends, every reachable node's Parent
// pointer and the children slices agree, and CountNodes matches a manual
// walk.
func TestPropertyTreeConsistency(t *testing.T) {
	f := func(ops []uint8) bool {
		d := NewDocument()
		nodes := []*Node{d.Root}
		for _, op := range ops {
			parent := nodes[int(op)%len(nodes)]
			n := d.NewElement("div")
			parent.AppendChild(n)
			nodes = append(nodes, n)
		}
		count := 0
		ok := true
		d.Root.Walk(func(n *Node) {
			count++
			for _, c := range n.Children {
				if c.Parent != n {
					ok = false
				}
			}
		})
		return ok && count == len(nodes) && count == d.CountNodes()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
