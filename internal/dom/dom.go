// Package dom implements the Document Object Model tree that HTML parses
// into, CSS selectors match against, and scripts manipulate.
//
// The model covers what the GreenWeb stack needs from a DOM: element
// structure with attributes, id/class/tag lookup, inline and computed style
// storage, event listeners with bubbling dispatch, and mutation notification
// so the rendering pipeline can track dirtiness (the paper's dirty-bit
// system, Sec. 6.3).
package dom

import (
	"fmt"
	"maps"
	"sort"
	"strings"
	"sync/atomic"
)

// NodeType discriminates the node kinds the tree can hold.
type NodeType int

const (
	// DocumentNode is the root of a document tree.
	DocumentNode NodeType = iota
	// ElementNode is a tag-delimited element.
	ElementNode
	// TextNode holds character data.
	TextNode
)

func (t NodeType) String() string {
	switch t {
	case DocumentNode:
		return "document"
	case ElementNode:
		return "element"
	case TextNode:
		return "text"
	default:
		return fmt.Sprintf("NodeType(%d)", int(t))
	}
}

// Node is a single DOM tree node.
type Node struct {
	Type     NodeType
	Tag      string // element tag name, lower-case; empty otherwise
	Text     string // character data for text nodes
	Parent   *Node
	Children []*Node

	attrs map[string]string
	// sharedAttrs marks attrs as borrowed from a clone template; SetAttr
	// copies the map before the first write (see clone.go).
	sharedAttrs bool

	// id and classes mirror attrs["id"] and attrs["class"], split once at
	// SetAttr time: selector matching reads them on every candidate test and
	// must not pay a map lookup plus strings.Fields per probe.
	id      string
	classes []string

	// InlineStyle holds style declarations from the element's style=""
	// attribute; ComputedStyle is filled by the CSS cascade.
	InlineStyle   map[string]string
	ComputedStyle map[string]string

	listeners map[string][]*Listener
	doc       *Document
}

// Document owns a DOM tree and its lookup indexes.
type Document struct {
	Root *Node

	byID map[string]*Node

	// onMutation callbacks fire on any structural or style mutation; the
	// browser uses this to set the rendering dirty bit.
	onMutation []func(*Node)
	// onStyleChange callbacks additionally receive the property and values
	// of inline style writes; the browser's CSS-transition machinery needs
	// the property name to decide whether a transition starts.
	onStyleChange []func(n *Node, property, old, new string)

	listenerSeq int

	// gen counts structural and attribute mutations (AppendChild,
	// RemoveChild, SetAttr — not inline style writes, which cannot change
	// what selectors match or how many nodes exist). Caches keyed on the
	// tree's shape — the node-count cache below, the annotation lookup memo —
	// compare generations instead of re-walking.
	gen int
	// nodeCountCache packs (gen<<32 | count) into one word so concurrent
	// CountNodes calls on a shared immutable template (fleet workers cloning
	// the same cached page) are race-free: racing writers store the same
	// value. Mutations themselves are single-owner; only reads are shared.
	nodeCountCache atomic.Uint64
}

// NewDocument returns an empty document with a root node.
func NewDocument() *Document {
	d := &Document{byID: make(map[string]*Node), gen: 1}
	d.Root = &Node{Type: DocumentNode, doc: d}
	return d
}

// Generation returns a counter that increases on every structural or
// attribute mutation. Two calls returning the same value guarantee the
// tree's shape and attributes are unchanged between them; inline style
// writes do not advance it.
func (d *Document) Generation() int { return d.gen }

// NewElement creates a detached element owned by this document.
func (d *Document) NewElement(tag string) *Node {
	return &Node{Type: ElementNode, Tag: strings.ToLower(tag), doc: d}
}

// NewText creates a detached text node owned by this document.
func (d *Document) NewText(text string) *Node {
	return &Node{Type: TextNode, Text: text, doc: d}
}

// OnMutation registers a callback invoked with the mutated node after every
// structural, attribute, or style mutation anywhere in the document.
func (d *Document) OnMutation(fn func(*Node)) {
	d.onMutation = append(d.onMutation, fn)
}

func (d *Document) mutated(n *Node) {
	for _, fn := range d.onMutation {
		fn(n)
	}
}

// OnStyleChange registers a callback invoked with the property name and the
// old and new values on every inline style write.
func (d *Document) OnStyleChange(fn func(n *Node, property, old, new string)) {
	d.onStyleChange = append(d.onStyleChange, fn)
}

// GetElementByID returns the element with the given id attribute, or nil.
func (d *Document) GetElementByID(id string) *Node { return d.byID[id] }

// GetElementsByTag returns all elements with the given tag, in tree order.
func (d *Document) GetElementsByTag(tag string) []*Node {
	tag = strings.ToLower(tag)
	var out []*Node
	d.Root.Walk(func(n *Node) {
		if n.Type == ElementNode && n.Tag == tag {
			out = append(out, n)
		}
	})
	return out
}

// GetElementsByClass returns all elements carrying the given class.
func (d *Document) GetElementsByClass(class string) []*Node {
	var out []*Node
	d.Root.Walk(func(n *Node) {
		if n.Type == ElementNode && n.HasClass(class) {
			out = append(out, n)
		}
	})
	return out
}

// Elements returns every element node in tree order.
func (d *Document) Elements() []*Node {
	out := make([]*Node, 0, d.CountNodes())
	d.Root.Walk(func(n *Node) {
		if n.Type == ElementNode {
			out = append(out, n)
		}
	})
	return out
}

// CountNodes reports the total number of nodes in the tree, including the
// document node. The rendering pipeline scales style/layout cost with this
// on every frame, so the walk result is cached against the mutation
// generation and only recomputed after a structural change.
func (d *Document) CountNodes() int {
	if c := d.nodeCountCache.Load(); int(c>>32) == d.gen {
		return int(uint32(c))
	}
	n := 0
	d.Root.Walk(func(*Node) { n++ })
	d.nodeCountCache.Store(uint64(d.gen)<<32 | uint64(uint32(n)))
	return n
}

// AppendChild attaches child as the last child of n. A child is detached
// from its previous parent first. Appending an ancestor panics.
func (n *Node) AppendChild(child *Node) {
	if child == nil {
		panic("dom: AppendChild(nil)")
	}
	for a := n; a != nil; a = a.Parent {
		if a == child {
			panic("dom: AppendChild would create a cycle")
		}
	}
	if child.Parent != nil {
		child.Parent.RemoveChild(child)
	}
	child.Parent = n
	n.Children = append(n.Children, child)
	if n.doc != nil {
		child.adopt(n.doc)
		n.doc.gen++
		n.doc.mutated(n)
	}
}

// RemoveChild detaches child from n. Removing a non-child panics.
func (n *Node) RemoveChild(child *Node) {
	for i, c := range n.Children {
		if c == child {
			n.Children = append(n.Children[:i], n.Children[i+1:]...)
			child.Parent = nil
			if n.doc != nil {
				child.unindex(n.doc)
				n.doc.gen++
				n.doc.mutated(n)
			}
			return
		}
	}
	panic("dom: RemoveChild of a non-child")
}

func (n *Node) adopt(d *Document) {
	n.Walk(func(m *Node) {
		m.doc = d
		if id := m.attr("id"); id != "" {
			d.byID[id] = m
		}
	})
}

func (n *Node) unindex(d *Document) {
	n.Walk(func(m *Node) {
		if id := m.attr("id"); id != "" && d.byID[id] == m {
			delete(d.byID, id)
		}
	})
}

// Walk visits n and every descendant in depth-first tree order.
func (n *Node) Walk(fn func(*Node)) {
	fn(n)
	for _, c := range n.Children {
		c.Walk(fn)
	}
}

// Document returns the owning document, or nil for a detached tree built
// outside one.
func (n *Node) Document() *Document { return n.doc }

// Connected reports whether the node is attached to its document's tree.
// Only connected nodes appear in the document's id index, matching
// getElementById semantics.
func (n *Node) Connected() bool {
	if n.doc == nil {
		return false
	}
	for m := n; m != nil; m = m.Parent {
		if m == n.doc.Root {
			return true
		}
	}
	return false
}

func (n *Node) attr(name string) string {
	if n.attrs == nil {
		return ""
	}
	return n.attrs[name]
}

// Attr returns the attribute value and whether it is present.
func (n *Node) Attr(name string) (string, bool) {
	if n.attrs == nil {
		return "", false
	}
	v, ok := n.attrs[strings.ToLower(name)]
	return v, ok
}

// SetAttr sets an attribute, maintaining the document id index.
func (n *Node) SetAttr(name, value string) {
	name = strings.ToLower(name)
	if n.sharedAttrs {
		n.attrs = maps.Clone(n.attrs)
		n.sharedAttrs = false
	}
	if n.attrs == nil {
		n.attrs = make(map[string]string)
	}
	if name == "id" && n.doc != nil && n.Connected() {
		if old := n.attrs["id"]; old != "" && n.doc.byID[old] == n {
			delete(n.doc.byID, old)
		}
		if value != "" {
			n.doc.byID[value] = n
		}
	}
	n.attrs[name] = value
	switch name {
	case "id":
		n.id = value
	case "class":
		n.classes = strings.Fields(value)
	}
	if n.doc != nil {
		n.doc.gen++
		n.doc.mutated(n)
	}
}

// AttrNames returns the element's attribute names, sorted.
func (n *Node) AttrNames() []string {
	names := make([]string, 0, len(n.attrs))
	for k := range n.attrs {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}

// ID returns the element's id attribute.
func (n *Node) ID() string { return n.id }

// Classes returns the element's class list. The returned slice is the
// node's cached list — callers must not mutate it.
func (n *Node) Classes() []string { return n.classes }

// HasClass reports whether the element carries the given class.
func (n *Node) HasClass(class string) bool {
	for _, c := range n.classes {
		if c == class {
			return true
		}
	}
	return false
}

// SetStyle sets an inline style property, as scripts do via
// element.style.foo = "...". It notifies mutation observers.
func (n *Node) SetStyle(property, value string) {
	if n.InlineStyle == nil {
		n.InlineStyle = make(map[string]string)
	}
	old := n.Computed(property)
	n.InlineStyle[property] = value
	if n.doc != nil {
		for _, fn := range n.doc.onStyleChange {
			fn(n, property, old, value)
		}
		n.doc.mutated(n)
	}
}

// Style returns the inline style property value, or "".
func (n *Node) Style(property string) string {
	return n.InlineStyle[property]
}

// Computed returns the cascaded style property value, falling back to the
// inline style, or "".
func (n *Node) Computed(property string) string {
	if v, ok := n.InlineStyle[property]; ok {
		return v
	}
	return n.ComputedStyle[property]
}

// TextContent concatenates the text of all descendant text nodes.
func (n *Node) TextContent() string {
	var b strings.Builder
	n.Walk(func(m *Node) {
		if m.Type == TextNode {
			b.WriteString(m.Text)
		}
	})
	return b.String()
}

// Path returns a readable ancestor path like "html>body>div#nav" for
// diagnostics and annotation generation.
func (n *Node) Path() string {
	var parts []string
	for m := n; m != nil && m.Type == ElementNode; m = m.Parent {
		s := m.Tag
		if id := m.ID(); id != "" {
			s += "#" + id
		}
		parts = append(parts, s)
	}
	for i, j := 0, len(parts)-1; i < j; i, j = i+1, j-1 {
		parts[i], parts[j] = parts[j], parts[i]
	}
	return strings.Join(parts, ">")
}

func (n *Node) String() string {
	switch n.Type {
	case ElementNode:
		return "<" + n.Tag + ">"
	case TextNode:
		return fmt.Sprintf("%q", n.Text)
	default:
		return "#document"
	}
}
