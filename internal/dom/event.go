package dom

import "strings"

// Mobile interaction events. The paper focuses on events that LTM
// interactions (loading, tapping, moving) trigger on mobile devices
// (Sec. 3.1) and explicitly excludes desktop-only events such as drag and
// mouseover.
const (
	EventClick      = "click"
	EventScroll     = "scroll"
	EventTouchStart = "touchstart"
	EventTouchEnd   = "touchend"
	EventTouchMove  = "touchmove"
	EventLoad       = "load"

	// Animation lifecycle events (used by AUTOGREEN's detection and by the
	// CSS transition machinery).
	EventTransitionEnd = "transitionend"
	EventAnimationEnd  = "animationend"
)

// MobileEvents lists the user-interaction events GreenWeb annotates.
func MobileEvents() []string {
	return []string{EventClick, EventScroll, EventTouchStart, EventTouchEnd, EventTouchMove, EventLoad}
}

// IsMobileEvent reports whether name is one of the LTM-triggered events.
func IsMobileEvent(name string) bool {
	switch strings.ToLower(name) {
	case EventClick, EventScroll, EventTouchStart, EventTouchEnd, EventTouchMove, EventLoad:
		return true
	}
	return false
}

// Event is a dispatched DOM event.
type Event struct {
	Name          string
	Target        *Node // element the event was fired on
	CurrentTarget *Node // element whose listener is running (bubbling)
	// Data carries event-specific payload (e.g. scroll delta) for scripts.
	Data map[string]float64

	stopped          bool
	defaultPrevented bool
}

// StopPropagation halts bubbling after the current node's listeners run.
func (e *Event) StopPropagation() { e.stopped = true }

// PreventDefault marks the event's default action suppressed.
func (e *Event) PreventDefault() { e.defaultPrevented = true }

// DefaultPrevented reports whether PreventDefault was called.
func (e *Event) DefaultPrevented() bool { return e.defaultPrevented }

// Handler is an event callback. The browser accounts its execution cost
// separately; the DOM only routes the call.
type Handler func(*Event)

// Listener is a registered event handler; keep the value returned by
// AddEventListener to remove it later.
type Listener struct {
	ID      int
	Event   string
	Node    *Node
	Handler Handler
}

// AddEventListener registers a handler for the named event on this node.
func (n *Node) AddEventListener(event string, h Handler) *Listener {
	event = strings.ToLower(event)
	if n.listeners == nil {
		n.listeners = make(map[string][]*Listener)
	}
	id := 0
	if n.doc != nil {
		n.doc.listenerSeq++
		id = n.doc.listenerSeq
	}
	l := &Listener{ID: id, Event: event, Node: n, Handler: h}
	n.listeners[event] = append(n.listeners[event], l)
	return l
}

// RemoveEventListener unregisters a listener previously returned by
// AddEventListener. Unknown listeners are ignored.
func (n *Node) RemoveEventListener(l *Listener) {
	if n.listeners == nil || l == nil {
		return
	}
	ls := n.listeners[l.Event]
	for i, x := range ls {
		if x == l {
			n.listeners[l.Event] = append(ls[:i], ls[i+1:]...)
			return
		}
	}
}

// Listeners returns the listeners registered for the named event on this
// node only (no ancestors).
func (n *Node) Listeners(event string) []*Listener {
	if n.listeners == nil {
		return nil
	}
	return n.listeners[strings.ToLower(event)]
}

// HasListener reports whether this node or any descendant listens for the
// named event. AUTOGREEN uses this during DOM discovery.
func (n *Node) HasListener(event string) bool {
	event = strings.ToLower(event)
	found := false
	n.Walk(func(m *Node) {
		if len(m.Listeners(event)) > 0 {
			found = true
		}
	})
	return found
}

// Dispatch fires the named event at target with bubbling: listeners run on
// the target first, then on each ancestor element up to the root, unless a
// handler stops propagation. It reports how many handlers ran.
func Dispatch(target *Node, name string, data map[string]float64) int {
	e := &Event{Name: strings.ToLower(name), Target: target, Data: data}
	ran := 0
	for n := target; n != nil; n = n.Parent {
		e.CurrentTarget = n
		// Copy: a handler may add/remove listeners while we iterate.
		ls := append([]*Listener(nil), n.Listeners(e.Name)...)
		for _, l := range ls {
			l.Handler(e)
			ran++
		}
		if e.stopped {
			break
		}
	}
	return ran
}

// ListenerTargets returns every (node, event) pair in the document with at
// least one listener for a mobile-interaction event, in tree order.
// AUTOGREEN's discovery phase iterates this.
func (d *Document) ListenerTargets() []*Listener {
	var out []*Listener
	d.Root.Walk(func(n *Node) {
		for _, ev := range MobileEvents() {
			out = append(out, n.Listeners(ev)...)
		}
	})
	return out
}
