package dom

import (
	"testing"
)

func buildCloneFixture() *Document {
	d := NewDocument()
	body := d.NewElement("body")
	d.Root.AppendChild(body)
	div := d.NewElement("div")
	div.SetAttr("id", "main")
	div.SetAttr("class", "a b")
	div.SetAttr("data-x", "1")
	div.SetStyle("width", "10px")
	body.AppendChild(div)
	txt := d.NewText("hello")
	div.AppendChild(txt)
	div.ComputedStyle = map[string]string{"color": "red"}
	return d
}

func TestCloneDeepCopies(t *testing.T) {
	d := buildCloneFixture()
	c := d.Clone()

	if got, want := c.CountNodes(), d.CountNodes(); got != want {
		t.Fatalf("clone CountNodes = %d, want %d", got, want)
	}
	cd := c.GetElementByID("main")
	if cd == nil {
		t.Fatal("clone lost the id index")
	}
	od := d.GetElementByID("main")
	if cd == od {
		t.Fatal("clone shares nodes with the original")
	}
	if cd.Document() != c {
		t.Fatal("clone node owned by wrong document")
	}
	if !cd.HasClass("b") || cd.ID() != "main" {
		t.Fatal("clone lost cached id/class state")
	}
	if v, _ := cd.Attr("data-x"); v != "1" {
		t.Fatalf("clone attr data-x = %q", v)
	}
	if cd.Style("width") != "10px" || cd.ComputedStyle["color"] != "red" {
		t.Fatal("clone lost styles")
	}
	if cd.TextContent() != "hello" {
		t.Fatalf("clone text = %q", cd.TextContent())
	}

	// Mutating the clone must not leak into the original, and vice versa.
	cd.SetAttr("id", "changed")
	cd.SetStyle("width", "20px")
	cd.ComputedStyle["color"] = "blue"
	if od.ID() != "main" || od.Style("width") != "10px" || od.ComputedStyle["color"] != "red" {
		t.Fatal("clone mutation leaked into original")
	}
	if d.GetElementByID("main") != od {
		t.Fatal("original id index disturbed")
	}
	od.AppendChild(d.NewElement("span"))
	if len(cd.Children) != 1 {
		t.Fatal("original mutation leaked into clone")
	}
}

func TestCloneDoesNotCopyListeners(t *testing.T) {
	d := buildCloneFixture()
	fired := 0
	d.GetElementByID("main").AddEventListener("click", func(e *Event) { fired++ })
	c := d.Clone()
	Dispatch(c.GetElementByID("main"), "click", nil)
	if fired != 0 {
		t.Fatal("clone carried the original's listeners")
	}
}

func TestGenerationAndCountNodesCache(t *testing.T) {
	d := buildCloneFixture()
	g0 := d.Generation()
	n0 := d.CountNodes()

	// Inline style writes must not advance the generation.
	d.GetElementByID("main").SetStyle("width", "30px")
	if d.Generation() != g0 {
		t.Fatal("SetStyle advanced the generation")
	}

	// Structural mutations advance it and are reflected in CountNodes.
	span := d.NewElement("span")
	d.Root.Children[0].AppendChild(span)
	if d.Generation() == g0 {
		t.Fatal("AppendChild did not advance the generation")
	}
	if got := d.CountNodes(); got != n0+1 {
		t.Fatalf("CountNodes after append = %d, want %d", got, n0+1)
	}
	d.Root.Children[0].RemoveChild(span)
	if got := d.CountNodes(); got != n0 {
		t.Fatalf("CountNodes after remove = %d, want %d", got, n0)
	}

	// Attribute writes advance the generation (selector matching can change).
	g1 := d.Generation()
	d.GetElementByID("main").SetAttr("class", "c")
	if d.Generation() == g1 {
		t.Fatal("SetAttr did not advance the generation")
	}
}
