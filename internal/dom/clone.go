package dom

import "maps"

// Clone returns a deep copy of the document: structure, attributes, inline
// and computed styles. Event listeners and mutation/style-change observers
// are NOT copied — a clone is a freshly loaded page, before any script has
// attached behavior. The browser's asset cache keeps one parsed document per
// page source as an immutable template and hands each engine a clone, so a
// page is tokenized and tree-built once per process instead of once per
// sweep cell.
//
// The clone's nodes are carved out of two slab allocations (one for the
// nodes, one for the child-pointer arrays) sized from CountNodes — cloning
// is the per-cell cost the asset cache leaves behind, so it allocates O(1)
// times instead of O(nodes) times.
func (d *Document) Clone() *Document {
	nd := NewDocument()
	c := &cloner{d: nd}
	if total := d.CountNodes() - 1; total > 0 { // root excluded: NewDocument made it
		c.nodes = make([]Node, 0, total)
		c.ptrs = make([]*Node, 0, total)
	}
	nd.Root.Children = c.cloneChildren(d.Root.Children, nd.Root)
	return nd
}

type cloner struct {
	d     *Document
	nodes []Node
	ptrs  []*Node
}

func (c *cloner) alloc() *Node {
	if len(c.nodes) == cap(c.nodes) {
		// The template's node count drifted (should not happen — templates
		// are immutable). Fall back to a plain allocation rather than let
		// append move the slab out from under earlier pointers.
		return &Node{}
	}
	c.nodes = append(c.nodes, Node{})
	return &c.nodes[len(c.nodes)-1]
}

// allocPtrs hands out a capacity-capped window of the pointer slab, so a
// later AppendChild on the clone reallocates instead of scribbling over a
// sibling's children.
func (c *cloner) allocPtrs(k int) []*Node {
	if cap(c.ptrs)-len(c.ptrs) < k {
		return make([]*Node, k)
	}
	off := len(c.ptrs)
	c.ptrs = c.ptrs[:off+k]
	return c.ptrs[off : off+k : off+k]
}

func (c *cloner) cloneChildren(children []*Node, parent *Node) []*Node {
	if len(children) == 0 {
		return nil
	}
	out := c.allocPtrs(len(children))
	for i, ch := range children {
		out[i] = c.cloneNode(ch, parent)
	}
	return out
}

func (c *cloner) cloneNode(n *Node, parent *Node) *Node {
	m := c.alloc()
	*m = Node{
		Type:   n.Type,
		Tag:    n.Tag,
		Text:   n.Text,
		Parent: parent,
		doc:    c.d,
		id:     n.id,
		// The class list is replaced wholesale on SetAttr, never edited in
		// place, so template and clones can share one slice. The attribute
		// map is shared copy-on-write: SetAttr clones it before the first
		// write (most cloned nodes are never written).
		classes:       n.classes,
		attrs:         n.attrs,
		sharedAttrs:   n.attrs != nil,
		InlineStyle:   maps.Clone(n.InlineStyle),
		ComputedStyle: maps.Clone(n.ComputedStyle),
	}
	if m.id != "" {
		c.d.byID[m.id] = m
	}
	m.Children = c.cloneChildren(n.Children, m)
	return m
}
