package js

import "fmt"

// This file lowers the AST to the flat bytecode the VM (vm.go) executes.
//
// Design constraints, in priority order:
//
//  1. Metering parity. The tree-walking interpreter charges one op at the
//     entry of every exec(stmt) and eval(expr) (interp.go step()), plus one
//     per loop iteration after the body. Simulated energy and latency are a
//     pure function of the op count, so every compiled instruction sequence
//     must charge the exact ops the corresponding AST walk did, in the same
//     order, with the same positions on the op-limit error. Composite nodes
//     emit an explicit opStep before their children; leaf nodes fold the
//     charge into their single instruction (the Charge flag).
//  2. Behavioural parity. Evaluation order, error messages, scope creation,
//     and function-declaration hoisting replicate interp.go exactly; shared
//     helpers (getProp, arith, storeProp, invoke, catchable) are reused
//     verbatim so the two engines cannot drift.
//  3. Speed. Expressions compile to a flat stack machine; statements
//     compile into per-block segments so control flow (break through nested
//     blocks, finally overriding returns) propagates exactly like the
//     interpreter's ctrl returns without a decompilation of JS semantics
//     into raw jumps.
//
// Rarely-hot structured constructs (try, switch, for-in) compile to single
// instructions holding a plan of sub-segments, executed by Go code that
// mirrors the interpreter's — minimal parity risk where flatness buys
// nothing.

// OpCode enumerates VM instructions.
type OpCode uint8

// Opcode set. A/B are operand slots whose meaning is per-opcode (constant
// pool index, name index, jump target, child segment index, argc).
const (
	opStep       OpCode = iota // charge only (composite node entry)
	opConst                    // push consts[A]
	opThis                     // push lookup("this") or undefined
	opLoad                     // push variable names[A]; error when undefined
	opTypeofName               // push typeof names[A] ("undefined" when unbound)
	opClosure                  // push a closure over fns[A]
	opPop                      // drop top
	opDup                      // duplicate top
	opSwap                     // swap top two
	opJmp                      // pc = A
	opJF                       // pop; if falsy pc = A
	opJFK                      // peek; if falsy pc = A (keep) else pop
	opJTK                      // peek; if truthy pc = A (keep) else pop
	opBinop                    // pop r, l; push binary op names[A] (full relational/equality/arith)
	opArith                    // pop r, l; push arithmetic op names[A] (compound assignment)
	opNeg                      // pop; push -ToNumber
	opPlus                     // pop; push +ToNumber
	opNot                      // pop; push !Truthy
	opBitNot                   // pop; push ^ToInt32
	opTypeof                   // pop; push typeof string
	opIncDec                   // pop old; push Num(old.Number()+A) (A = ±1)
	opPostfix                  // pop old; push Num(old.Number()), Num(old.Number()+A)
	opGetProp                  // pop recv; push recv.names[A]
	opGetIndex                 // pop idx, recv; push recv[idx]
	opStoreName                // peek v; assign names[A] = v
	opStoreProp                // pop recv; peek v; recv.names[A] = v
	opStoreIndex               // pop idx, recv; peek v; recv[idx] = v
	opDelProp                  // pop recv; delete recv.names[A]; push true
	opDelIndex                 // pop idx, recv; delete recv[idx]; push true
	opDefine                   // pop v; define names[A] = v in current scope
	opMakeArray                // pop A elems; push array
	opMakeObj                  // pop len(keysets[A]) values; push object
	opCheckCall                // peek fn; error "names[A] is not a function" unless callable
	opCall                     // pop A args, fn, this; push invoke result
	opCheckCtor                // peek fn; error "not a constructor" unless callable
	opNew                      // pop A args, fn; push constructed object
	opRet                      // pop v; return (v, ctrlReturn)
	opBreak                    // return ctrlBreak
	opContinue                 // return ctrlContinue
	opThrow                    // pop v; raise "uncaught: v"
	opRunBlock                 // run segs[A] in a fresh child scope; propagate ctrl
	opRunLoopBody              // run segs[A]; break → pc = B, continue → fall through, return → propagate
	opPushScope                // enter a fresh child scope (for-loop header)
	opPopScope                 // leave it
	opForIn                    // pop x; run forins[A] (mirrors interp for-in)
	opSwitch                   // pop tag; run switches[A] (mirrors execSwitch)
	opTry                      // run tries[A] (mirrors execTry)
	opFail                     // raise names[A] (unreachable-construct diagnostics)

	// Fused instructions: exact sequential equivalents of two-instruction
	// patterns, merged at emit time to cut dispatch and stack traffic.
	opArithRev     // pop l, r (reverse order); push l op r — replaces opSwap+opArith
	opStoreNamePop // pop v; assign names[A] = v — replaces opStoreName+opPop

	// Slot-resolved variable access: A = frames to hop outward, B = slot in
	// that frame. Emitted only where the compiler proves the frame layout
	// at this site (see frameModel); everything else stays name-based.
	opLoadSlot     // push env^A.vals[B]
	opStoreSlot    // peek v; env^A.vals[B] = v
	opStoreSlotPop // pop v; env^A.vals[B] = v
)

// Instr is one VM instruction. Line/Col anchor runtime errors (op-limit
// trips, property faults) to the originating node; Charge marks the
// instructions that account for one interpreter op.
type Instr struct {
	Op        OpCode
	A, B      int32
	Line, Col int32
	Charge    bool
}

// Pos lets *Instr stand in as a Node for the shared error helpers (rtErr,
// invoke) without an interface-boxing allocation on hot paths.
func (is *Instr) Pos() (int, int) { return int(is.Line), int(is.Col) }

// Operator codes, resolved at compile time so the VM dispatches binary
// operators on an integer instead of re-comparing strings per execution.
// The arith* block mirrors arith()'s case order.
const (
	arithAdd int32 = iota + 1
	arithSub
	arithMul
	arithDiv
	arithMod
	arithBand
	arithBor
	arithBxor
	arithShl
	arithShr
	cmpStrictEq
	cmpStrictNe
	cmpLooseEq
	cmpLooseNe
	cmpLt
	cmpGt
	cmpLe
	cmpGe
)

var opCodes = map[string]int32{
	"+": arithAdd, "-": arithSub, "*": arithMul, "/": arithDiv, "%": arithMod,
	"&": arithBand, "|": arithBor, "^": arithBxor, "<<": arithShl, ">>": arithShr,
	"===": cmpStrictEq, "!==": cmpStrictNe, "==": cmpLooseEq, "!=": cmpLooseNe,
	"<": cmpLt, ">": cmpGt, "<=": cmpLe, ">=": cmpGe,
}

// segment is a compiled statement list: the body of a program, function,
// block, loop, or clause. Function declarations hoist at every entry,
// exactly like execBlock.
type segment struct {
	code   []Instr
	hoists []hoistFn

	// scopeless marks segments that never define a binding at their own
	// level (no var declarations, no hoisted functions). Running such a
	// segment in the enclosing scope instead of a fresh child frame is
	// observationally identical — an empty frame only adds lookup hops —
	// so the VM elides the per-entry Env allocation (big for loop bodies).
	scopeless bool

	// locals sizes the frame childScope allocates (top-level define count);
	// zero when scopeless.
	locals int32
}

type hoistFn struct {
	name string
	fn   *compiledFn
}

// compiledFn is the compiled form of a function literal or declaration.
// srcBody keeps the AST so function values remain tree-walkable (Function
// carries both; Code wins at invoke time).
type compiledFn struct {
	name     string
	params   []string
	body     *segment
	u        *unit
	srcBody  []Stmt
	needArgs bool // body mentions "arguments" — skip the array otherwise
	locals   int  // invoke-frame size hint: params + arguments + this + defines
}

// forinPlan backs opForIn.
type forinPlan struct {
	name      string
	body      *segment
	line, col int32
}

// switchClause is one laid-out clause; caseIdx is -1 for default.
type switchClause struct {
	body    *segment
	caseIdx int
}

// switchPlan backs opSwitch: case values as mini expression segments,
// clauses in source order with the default interleaved (see execSwitch).
type switchPlan struct {
	caseVals []*segment
	clauses  []switchClause
}

// tryPlan backs opTry.
type tryPlan struct {
	body      *segment
	catchName string
	catch     *segment // nil = no catch clause
	finally   *segment // nil = no finally clause
}

// unit holds the pools every segment of one compiled program shares.
type unit struct {
	consts   []Value
	names    []string
	fns      []*compiledFn
	segs     []*segment
	keysets  [][]string
	forins   []*forinPlan
	switches []*switchPlan
	tries    []*tryPlan
}

// CompiledProgram is a program lowered to bytecode. It is immutable after
// Compile and safe to share across goroutines and interpreter instances —
// the asset cache stores one per cached script.
type CompiledProgram struct {
	u    *unit
	main *segment
}

// Compile lowers a parsed program to bytecode. It never fails: constructs
// the compiler cannot handle (none today) become opFail instructions that
// reproduce the interpreter's "unhandled …" runtime errors.
func Compile(prog *Program) *CompiledProgram {
	c := &compiler{u: &unit{}, nameIdx: map[string]int32{}}
	c.pushFrame(envSmallMax + 1) // globals: promoted map, never slot-addressed
	main := c.block(prog.Body)
	return &CompiledProgram{u: c.u, main: main}
}

type compiler struct {
	u       *unit
	nameIdx map[string]int32
	scopes  []*frameModel
}

// frameModel is the compiler's static picture of one runtime Env frame.
// Within a segment, defines execute strictly in source order until an
// abrupt exit abandons the frame, so a frame's layout at any instruction is
// a pure function of the site — which makes slot addresses sound wherever
// the model says so. Frames whose layout the compiler cannot pin (globals,
// frames that outgrow the small-slice storage and promote to a map, switch
// clause scopes whose defines depend on the matched case) are marked
// non-addressable: names found there fall back to dynamic lookup.
type frameModel struct {
	slots       map[string]int32
	next        int32
	addressable bool
}

// pushFrame models entering a runtime scope that will hold at most
// capacity bindings. Past envSmallMax the Env would promote to a map,
// invalidating slot addressing, so such frames are never addressable.
func (c *compiler) pushFrame(capacity int) *frameModel {
	f := &frameModel{slots: map[string]int32{}, addressable: capacity <= envSmallMax}
	c.scopes = append(c.scopes, f)
	return f
}

func (c *compiler) popFrame() { c.scopes = c.scopes[:len(c.scopes)-1] }

// defineName records a binding in the innermost modeled frame, mirroring a
// runtime Define at the same point (duplicates reuse their slot, exactly
// like Define's overwrite path).
func (c *compiler) defineName(name string) {
	f := c.scopes[len(c.scopes)-1]
	if _, ok := f.slots[name]; ok {
		return
	}
	f.slots[name] = f.next
	f.next++
}

// resolve finds a statically known (hops, slot) address for name, walking
// outward from the innermost frame. A hit in a non-addressable frame — or
// falling off the end (stdlib globals, implicit globals) — means dynamic.
func (c *compiler) resolve(name string) (hops, slot int32, ok bool) {
	for i := len(c.scopes) - 1; i >= 0; i-- {
		f := c.scopes[i]
		if s, in := f.slots[name]; in {
			if f.addressable {
				return hops, s, true
			}
			return 0, 0, false
		}
		hops++
	}
	return 0, 0, false
}

// hasTopLevelDecls reports whether running body needs its own scope frame
// (it defines bindings at its own level). Must stay in lockstep with the
// opDefine emissions in stmt() — childScope elision depends on it.
func hasTopLevelDecls(body []Stmt) bool {
	for _, s := range body {
		switch s.(type) {
		case *VarDecl, *VarDeclGroup, *FuncDecl:
			return true
		}
	}
	return false
}

// topLevelDefineCount bounds how many bindings body adds to its frame.
func topLevelDefineCount(body []Stmt) int {
	n := 0
	for _, s := range body {
		switch st := s.(type) {
		case *VarDecl, *FuncDecl:
			n++
		case *VarDeclGroup:
			n += len(st.Decls)
		}
	}
	return n
}

// ---- pool interning ----

func (c *compiler) constIdx(v Value) int32 {
	c.u.consts = append(c.u.consts, v)
	return int32(len(c.u.consts) - 1)
}

func (c *compiler) name(s string) int32 {
	if i, ok := c.nameIdx[s]; ok {
		return i
	}
	c.u.names = append(c.u.names, s)
	i := int32(len(c.u.names) - 1)
	c.nameIdx[s] = i
	return i
}

func (c *compiler) seg(sg *segment) int32 {
	c.u.segs = append(c.u.segs, sg)
	return int32(len(c.u.segs) - 1)
}

// ---- emission ----

func at(n Node) (int32, int32) {
	line, col := n.Pos()
	return int32(line), int32(col)
}

func (sg *segment) emit(is Instr) int {
	sg.code = append(sg.code, is)
	return len(sg.code) - 1
}

// emitAt appends an uncharged instruction anchored at n.
func (sg *segment) emitAt(op OpCode, a, b int32, n Node) int {
	line, col := at(n)
	return sg.emit(Instr{Op: op, A: a, B: b, Line: line, Col: col})
}

// emitCharged appends a charged instruction anchored at n (one interpreter
// op: a step() call in the tree walker).
func (sg *segment) emitCharged(op OpCode, a, b int32, n Node) int {
	line, col := at(n)
	return sg.emit(Instr{Op: op, A: a, B: b, Line: line, Col: col, Charge: true})
}

// patch sets the jump target of the instruction at idx to the current end.
func (sg *segment) patch(idx int) { sg.code[idx].A = int32(len(sg.code)) }

// emitPop drops the top of stack. When the value was just stored by an
// opStoreName, the two fuse into opStoreNamePop — safe because the fused
// instruction keeps the store's index, so any jump that targeted the store
// still executes the identical store-then-drop sequence.
func (sg *segment) emitPop(n Node) {
	if len(sg.code) > 0 {
		switch sg.code[len(sg.code)-1].Op {
		case opStoreName:
			sg.code[len(sg.code)-1].Op = opStoreNamePop
			return
		case opStoreSlot:
			sg.code[len(sg.code)-1].Op = opStoreSlotPop
			return
		}
	}
	sg.emitAt(opPop, 0, 0, n)
}

func (sg *segment) here() int32 { return int32(len(sg.code)) }

// ---- statements ----

// block compiles a statement list into a fresh segment, registering its
// hoisted function declarations (performed by the VM at every entry, as
// execBlock does). The hoist names are modeled before the hoisted bodies
// compile — they exist at frame entry, so siblings may slot-address each
// other — but later var defines are not, because a hoisted function can run
// before the frame reaches them.
func (c *compiler) block(body []Stmt) *segment {
	sg := &segment{scopeless: !hasTopLevelDecls(body)}
	for _, s := range body {
		if fd, ok := s.(*FuncDecl); ok {
			c.defineName(fd.Name)
		}
	}
	for _, s := range body {
		if fd, ok := s.(*FuncDecl); ok {
			sg.hoists = append(sg.hoists, hoistFn{name: fd.Name, fn: c.fn(fd.Fn, fd.Name)})
		}
	}
	for _, s := range body {
		c.stmt(sg, s)
	}
	return sg
}

// subBlock compiles a body that the VM runs via childScope: it gets its own
// frame model exactly when the VM will allocate one.
func (c *compiler) subBlock(body []Stmt) *segment {
	needs := hasTopLevelDecls(body)
	count := 0
	if needs {
		count = topLevelDefineCount(body)
		c.pushFrame(count)
	}
	sg := c.block(body)
	sg.locals = int32(count)
	if needs {
		c.popFrame()
	}
	return sg
}

// fn compiles a function literal. The declaration name (FuncDecl) takes
// precedence over the literal's own for diagnostics, matching execBlock.
// The invoke frame is modeled in definition order: params, arguments (when
// kept), this, then the body's hoists and vars. A named function expression
// additionally closes over a one-binding self scope (opClosure).
func (c *compiler) fn(lit *FuncLit, declName string) *compiledFn {
	name := lit.Name
	if declName != "" {
		name = declName
	}
	needArgs := mentionsArguments(lit.Body)
	selfScope := declName == "" && lit.Name != ""
	if selfScope {
		c.pushFrame(1)
		c.defineName(lit.Name)
	}
	capacity := len(lit.Params) + 2 + topLevelDefineCount(lit.Body) // +arguments +this
	c.pushFrame(capacity)
	for _, p := range lit.Params {
		c.defineName(p)
	}
	if needArgs {
		c.defineName("arguments")
	}
	c.defineName("this")
	cf := &compiledFn{
		name:     name,
		params:   lit.Params,
		body:     c.block(lit.Body),
		u:        c.u,
		srcBody:  lit.Body,
		needArgs: needArgs,
		locals:   capacity,
	}
	c.popFrame()
	if selfScope {
		c.popFrame()
	}
	return cf
}

func (c *compiler) stmt(sg *segment, s Stmt) {
	// exec() charges one op at entry of every statement.
	sg.emitCharged(opStep, 0, 0, s)
	switch st := s.(type) {
	case *VarDecl:
		c.varDeclTail(sg, st)

	case *VarDeclGroup:
		// exec charges the group, then execs each decl (charged again).
		for _, d := range st.Decls {
			sg.emitCharged(opStep, 0, 0, d)
			c.varDeclTail(sg, d)
		}

	case *FuncDecl:
		// Hoisted at block entry; the execution position only charges.

	case *ExprStmt:
		c.expr(sg, st.X)
		sg.emitPop(st)

	case *IfStmt:
		c.expr(sg, st.Cond)
		jf := sg.emitAt(opJF, 0, 0, st)
		sg.emitAt(opRunBlock, c.seg(c.subBlock(st.Then)), 0, st)
		if st.Else != nil {
			jend := sg.emitAt(opJmp, 0, 0, st)
			sg.patch(jf)
			sg.emitAt(opRunBlock, c.seg(c.subBlock(st.Else)), 0, st)
			sg.patch(jend)
		} else {
			sg.patch(jf)
		}

	case *WhileStmt:
		top := sg.here()
		c.expr(sg, st.Cond)
		jf := sg.emitAt(opJF, 0, 0, st)
		body := sg.emitAt(opRunLoopBody, c.seg(c.subBlock(st.Body)), 0, st)
		sg.emitCharged(opStep, 0, 0, st) // per-iteration charge (after body)
		sg.emitAt(opJmp, top, 0, st)
		sg.patch(jf)
		sg.code[body].B = sg.here() // break target

	case *DoWhileStmt:
		top := sg.here()
		body := sg.emitAt(opRunLoopBody, c.seg(c.subBlock(st.Body)), 0, st)
		c.expr(sg, st.Cond)
		jf := sg.emitAt(opJF, 0, 0, st)
		sg.emitCharged(opStep, 0, 0, st)
		sg.emitAt(opJmp, top, 0, st)
		sg.patch(jf)
		sg.code[body].B = sg.here()

	case *ForStmt:
		// The loop header owns a scope (init vars live across iterations);
		// each body run gets a child scope via opRunLoopBody.
		initCount := 0
		if st.Init != nil {
			initCount = topLevelDefineCount([]Stmt{st.Init})
		}
		sg.emitAt(opPushScope, int32(initCount), 0, st)
		c.pushFrame(initCount)
		if st.Init != nil {
			c.stmt(sg, st.Init)
		}
		top := sg.here()
		jf := -1
		if st.Cond != nil {
			c.expr(sg, st.Cond)
			jf = sg.emitAt(opJF, 0, 0, st)
		}
		body := sg.emitAt(opRunLoopBody, c.seg(c.subBlock(st.Body)), 0, st)
		if st.Post != nil {
			c.expr(sg, st.Post)
			sg.emitPop(st)
		}
		sg.emitCharged(opStep, 0, 0, st)
		sg.emitAt(opJmp, top, 0, st)
		if jf >= 0 {
			sg.patch(jf)
		}
		sg.code[body].B = sg.here()
		sg.emitAt(opPopScope, 0, 0, st)
		c.popFrame()

	case *ReturnStmt:
		if st.X != nil {
			c.expr(sg, st.X)
		} else {
			sg.emitAt(opConst, c.constIdx(Undefined), 0, st)
		}
		sg.emitAt(opRet, 0, 0, st)

	case *BreakStmt:
		sg.emitAt(opBreak, 0, 0, st)

	case *ContinueStmt:
		sg.emitAt(opContinue, 0, 0, st)

	case *ThrowStmt:
		c.expr(sg, st.X)
		sg.emitAt(opThrow, 0, 0, st)

	case *BlockStmt:
		sg.emitAt(opRunBlock, c.seg(c.subBlock(st.Body)), 0, st)

	case *SwitchStmt:
		c.expr(sg, st.Tag)
		// All clause bodies share one runtime scope; which clauses run (and
		// therefore which defines execute) depends on the matched case, so
		// the frame is modeled non-addressable with every possible name.
		c.pushFrame(envSmallMax + 1)
		seed := func(body []Stmt) {
			for _, s := range body {
				switch d := s.(type) {
				case *VarDecl:
					c.defineName(d.Name)
				case *VarDeclGroup:
					for _, dd := range d.Decls {
						c.defineName(dd.Name)
					}
				case *FuncDecl:
					c.defineName(d.Name)
				}
			}
		}
		for _, cs := range st.Cases {
			seed(cs.Body)
		}
		seed(st.Default)
		plan := &switchPlan{}
		for _, cs := range st.Cases {
			vs := &segment{}
			c.expr(vs, cs.Value)
			vs.emitAt(opRet, 0, 0, cs.Value)
			plan.caseVals = append(plan.caseVals, vs)
		}
		for pos := 0; pos <= len(st.Cases); pos++ {
			if st.Default != nil && st.DefaultAt == pos {
				plan.clauses = append(plan.clauses, switchClause{body: c.block(st.Default), caseIdx: -1})
			}
			if pos < len(st.Cases) {
				plan.clauses = append(plan.clauses, switchClause{body: c.block(st.Cases[pos].Body), caseIdx: pos})
			}
		}
		c.popFrame()
		c.u.switches = append(c.u.switches, plan)
		sg.emitAt(opSwitch, int32(len(c.u.switches)-1), 0, st)

	case *ForInStmt:
		c.expr(sg, st.X) // evaluated in the enclosing scope, before the loop var exists
		c.pushFrame(1)
		c.defineName(st.Name)
		line, col := at(st)
		c.u.forins = append(c.u.forins, &forinPlan{
			name: st.Name, body: c.subBlock(st.Body), line: line, col: col,
		})
		c.popFrame()
		sg.emitAt(opForIn, int32(len(c.u.forins)-1), 0, st)

	case *TryStmt:
		plan := &tryPlan{body: c.subBlock(st.Body), catchName: st.CatchName}
		if st.Catch != nil {
			// vmTry allocates the catch scope when there is a binding or the
			// block defines; the model must match frame-for-frame.
			needs := st.CatchName != "" || hasTopLevelDecls(st.Catch)
			if needs {
				c.pushFrame(1 + topLevelDefineCount(st.Catch))
				if st.CatchName != "" {
					c.defineName(st.CatchName)
				}
			}
			plan.catch = c.block(st.Catch)
			if needs {
				c.popFrame()
			}
		}
		if st.Finally != nil {
			plan.finally = c.subBlock(st.Finally)
		}
		c.u.tries = append(c.u.tries, plan)
		sg.emitAt(opTry, int32(len(c.u.tries)-1), 0, st)

	default:
		sg.emitAt(opFail, c.name(fmt.Sprintf("unhandled statement %T", s)), 0, s)
	}
}

// varDeclTail compiles a VarDecl's body (the step for the statement itself
// has already been emitted).
func (c *compiler) varDeclTail(sg *segment, st *VarDecl) {
	if st.Init != nil {
		c.expr(sg, st.Init)
	} else {
		sg.emitAt(opConst, c.constIdx(Undefined), 0, st)
	}
	sg.emitAt(opDefine, c.name(st.Name), 0, st)
	c.defineName(st.Name) // modeled after the init: `var x = x` reads outward
}

// ---- expressions ----

func (c *compiler) expr(sg *segment, e Expr) {
	switch x := e.(type) {
	case *NumberLit:
		sg.emitCharged(opConst, c.constIdx(Num(x.Value)), 0, x)
	case *StringLit:
		sg.emitCharged(opConst, c.constIdx(Str(x.Value)), 0, x)
	case *BoolLit:
		sg.emitCharged(opConst, c.constIdx(Boolean(x.Value)), 0, x)
	case *NullLit:
		sg.emitCharged(opConst, c.constIdx(Null), 0, x)
	case *UndefinedLit:
		sg.emitCharged(opConst, c.constIdx(Undefined), 0, x)
	case *ThisLit:
		if hops, slot, ok := c.resolve("this"); ok {
			sg.emitCharged(opLoadSlot, hops, slot, x)
		} else {
			sg.emitCharged(opThis, 0, 0, x)
		}
	case *Ident:
		if hops, slot, ok := c.resolve(x.Name); ok {
			sg.emitCharged(opLoadSlot, hops, slot, x)
		} else {
			sg.emitCharged(opLoad, c.name(x.Name), 0, x)
		}

	case *ArrayLit:
		sg.emitCharged(opStep, 0, 0, x)
		for _, el := range x.Elems {
			c.expr(sg, el)
		}
		sg.emitAt(opMakeArray, int32(len(x.Elems)), 0, x)

	case *ObjectLit:
		sg.emitCharged(opStep, 0, 0, x)
		for _, v := range x.Values {
			c.expr(sg, v)
		}
		c.u.keysets = append(c.u.keysets, x.Keys)
		sg.emitAt(opMakeObj, int32(len(c.u.keysets)-1), 0, x)

	case *FuncLit:
		c.u.fns = append(c.u.fns, c.fn(x, ""))
		sg.emitCharged(opClosure, int32(len(c.u.fns)-1), 0, x)

	case *Unary:
		c.unary(sg, x)

	case *Postfix:
		sg.emitCharged(opStep, 0, 0, x)
		c.expr(sg, x.X)
		delta := int32(1)
		if x.Op == "--" {
			delta = -1
		}
		sg.emitAt(opPostfix, delta, 0, x)
		c.store(sg, x.X)
		sg.emitPop(x) // drop the stored new value; old remains

	case *Binary:
		sg.emitCharged(opStep, 0, 0, x)
		c.expr(sg, x.L)
		c.expr(sg, x.R)
		sg.emitAt(opBinop, c.name(x.Op), opCodes[x.Op], x)

	case *Logical:
		sg.emitCharged(opStep, 0, 0, x)
		c.expr(sg, x.L)
		var jk int
		if x.Op == "&&" {
			jk = sg.emitAt(opJFK, 0, 0, x)
		} else {
			jk = sg.emitAt(opJTK, 0, 0, x)
		}
		c.expr(sg, x.R)
		sg.patch(jk)

	case *Cond:
		sg.emitCharged(opStep, 0, 0, x)
		c.expr(sg, x.Test)
		jf := sg.emitAt(opJF, 0, 0, x)
		c.expr(sg, x.Then)
		jend := sg.emitAt(opJmp, 0, 0, x)
		sg.patch(jf)
		c.expr(sg, x.Else)
		sg.patch(jend)

	case *Assign:
		sg.emitCharged(opStep, 0, 0, x)
		c.expr(sg, x.Value)
		if x.Op != "=" {
			// Compound assignment re-evaluates the target as an rvalue
			// (charges and side effects included), then applies the
			// arithmetic operator — mirroring eval's Assign case, where the
			// receiver is evaluated again by assignTo below.
			c.expr(sg, x.Target)
			sg.emitAt(opArithRev, c.name(x.Op[:1]), opCodes[x.Op[:1]], x)
		}
		c.store(sg, x.Target)

	case *Member:
		sg.emitCharged(opStep, 0, 0, x)
		c.expr(sg, x.X)
		sg.emitAt(opGetProp, c.name(x.Name), 0, x)

	case *Index:
		sg.emitCharged(opStep, 0, 0, x)
		c.expr(sg, x.X)
		c.expr(sg, x.I)
		sg.emitAt(opGetIndex, 0, 0, x)

	case *Call:
		sg.emitCharged(opStep, 0, 0, x)
		switch f := x.Fn.(type) {
		case *Member:
			// evalCall evaluates the receiver and reads the method without
			// charging for the Member node itself.
			c.expr(sg, f.X)
			sg.emitAt(opDup, 0, 0, f)
			sg.emitAt(opGetProp, c.name(f.Name), 0, f)
		case *Index:
			c.expr(sg, f.X)
			sg.emitAt(opDup, 0, 0, f)
			c.expr(sg, f.I)
			sg.emitAt(opGetIndex, 0, 0, f)
		default:
			sg.emitAt(opConst, c.constIdx(Undefined), 0, x) // this
			c.expr(sg, x.Fn)
		}
		// The callee is validated before the arguments are evaluated,
		// exactly as evalCall does.
		sg.emitAt(opCheckCall, c.name(describeCallee(x.Fn)), 0, x)
		for _, a := range x.Args {
			c.expr(sg, a)
		}
		sg.emitAt(opCall, int32(len(x.Args)), 0, x)

	case *New:
		sg.emitCharged(opStep, 0, 0, x)
		c.expr(sg, x.Fn)
		sg.emitAt(opCheckCtor, 0, 0, x)
		for _, a := range x.Args {
			c.expr(sg, a)
		}
		sg.emitAt(opNew, int32(len(x.Args)), 0, x)

	default:
		sg.emitAt(opFail, c.name(fmt.Sprintf("unhandled expression %T", e)), 0, e)
	}
}

func (c *compiler) unary(sg *segment, x *Unary) {
	switch x.Op {
	case "typeof":
		if id, ok := x.X.(*Ident); ok {
			// typeof ident reads the environment directly — no charge for
			// the operand (evalUnary's undefined-variable tolerance).
			sg.emitCharged(opTypeofName, c.name(id.Name), 0, x)
			return
		}
		sg.emitCharged(opStep, 0, 0, x)
		c.expr(sg, x.X)
		sg.emitAt(opTypeof, 0, 0, x)
	case "++", "--":
		sg.emitCharged(opStep, 0, 0, x)
		c.expr(sg, x.X)
		delta := int32(1)
		if x.Op == "--" {
			delta = -1
		}
		sg.emitAt(opIncDec, delta, 0, x)
		c.store(sg, x.X) // result stays on the stack
	case "delete":
		switch tg := x.X.(type) {
		case *Member:
			sg.emitCharged(opStep, 0, 0, x)
			c.expr(sg, tg.X)
			sg.emitAt(opDelProp, c.name(tg.Name), 0, x)
		case *Index:
			sg.emitCharged(opStep, 0, 0, x)
			c.expr(sg, tg.X)
			c.expr(sg, tg.I)
			sg.emitAt(opDelIndex, 0, 0, x)
		default:
			// Deleting a variable is a sloppy-mode no-op yielding true;
			// the operand is not evaluated.
			sg.emitCharged(opConst, c.constIdx(True), 0, x)
		}
	case "-":
		sg.emitCharged(opStep, 0, 0, x)
		c.expr(sg, x.X)
		sg.emitAt(opNeg, 0, 0, x)
	case "+":
		sg.emitCharged(opStep, 0, 0, x)
		c.expr(sg, x.X)
		sg.emitAt(opPlus, 0, 0, x)
	case "!":
		sg.emitCharged(opStep, 0, 0, x)
		c.expr(sg, x.X)
		sg.emitAt(opNot, 0, 0, x)
	case "~":
		sg.emitCharged(opStep, 0, 0, x)
		c.expr(sg, x.X)
		sg.emitAt(opBitNot, 0, 0, x)
	default:
		sg.emitCharged(opStep, 0, 0, x)
		c.expr(sg, x.X)
		sg.emitAt(opFail, c.name(fmt.Sprintf("unhandled unary operator %q", x.Op)), 0, x)
	}
}

// store emits the write of the value on top of the stack to an assignment
// target, leaving the value on the stack (assignment is an expression).
// Member/Index receivers are (re-)evaluated here with full charging,
// mirroring assignTo's eval of tg.X / tg.I.
func (c *compiler) store(sg *segment, target Expr) {
	switch tg := target.(type) {
	case *Ident:
		if hops, slot, ok := c.resolve(tg.Name); ok {
			sg.emitAt(opStoreSlot, hops, slot, tg)
		} else {
			sg.emitAt(opStoreName, c.name(tg.Name), 0, tg)
		}
	case *Member:
		c.expr(sg, tg.X)
		sg.emitAt(opStoreProp, c.name(tg.Name), 0, tg)
	case *Index:
		c.expr(sg, tg.X)
		c.expr(sg, tg.I)
		sg.emitAt(opStoreIndex, 0, 0, tg)
	default:
		sg.emitAt(opFail, c.name(fmt.Sprintf("invalid assignment target %T", target)), 0, target)
	}
}

// mentionsArguments reports whether a function body could observe the
// `arguments` binding. Nested functions are included (conservative — they
// define their own at invoke time, but scanning them only costs a spurious
// define, never a behaviour change).
func mentionsArguments(body []Stmt) bool {
	found := false
	walkStmts(body, func(n Node) bool {
		if id, ok := n.(*Ident); ok && id.Name == "arguments" {
			found = true
			return false
		}
		return !found
	})
	return found
}

// walkStmts visits every node under the statements; fn returning false
// stops descent.
func walkStmts(body []Stmt, fn func(Node) bool) {
	for _, s := range body {
		walkNode(s, fn)
	}
}

func walkNode(n Node, fn func(Node) bool) {
	if n == nil || !fn(n) {
		return
	}
	switch x := n.(type) {
	case *VarDecl:
		walkExpr(x.Init, fn)
	case *VarDeclGroup:
		for _, d := range x.Decls {
			walkNode(d, fn)
		}
	case *FuncDecl:
		walkNode(x.Fn, fn)
	case *ExprStmt:
		walkExpr(x.X, fn)
	case *IfStmt:
		walkExpr(x.Cond, fn)
		walkStmts(x.Then, fn)
		walkStmts(x.Else, fn)
	case *WhileStmt:
		walkExpr(x.Cond, fn)
		walkStmts(x.Body, fn)
	case *DoWhileStmt:
		walkExpr(x.Cond, fn)
		walkStmts(x.Body, fn)
	case *ForStmt:
		if x.Init != nil {
			walkNode(x.Init, fn)
		}
		walkExpr(x.Cond, fn)
		walkExpr(x.Post, fn)
		walkStmts(x.Body, fn)
	case *ReturnStmt:
		walkExpr(x.X, fn)
	case *ThrowStmt:
		walkExpr(x.X, fn)
	case *BlockStmt:
		walkStmts(x.Body, fn)
	case *SwitchStmt:
		walkExpr(x.Tag, fn)
		for _, cs := range x.Cases {
			walkExpr(cs.Value, fn)
			walkStmts(cs.Body, fn)
		}
		walkStmts(x.Default, fn)
	case *ForInStmt:
		walkExpr(x.X, fn)
		walkStmts(x.Body, fn)
	case *TryStmt:
		walkStmts(x.Body, fn)
		walkStmts(x.Catch, fn)
		walkStmts(x.Finally, fn)
	case *ArrayLit:
		for _, e := range x.Elems {
			walkExpr(e, fn)
		}
	case *ObjectLit:
		for _, e := range x.Values {
			walkExpr(e, fn)
		}
	case *FuncLit:
		walkStmts(x.Body, fn)
	case *Unary:
		walkExpr(x.X, fn)
	case *Postfix:
		walkExpr(x.X, fn)
	case *Binary:
		walkExpr(x.L, fn)
		walkExpr(x.R, fn)
	case *Logical:
		walkExpr(x.L, fn)
		walkExpr(x.R, fn)
	case *Cond:
		walkExpr(x.Test, fn)
		walkExpr(x.Then, fn)
		walkExpr(x.Else, fn)
	case *Assign:
		walkExpr(x.Target, fn)
		walkExpr(x.Value, fn)
	case *Member:
		walkExpr(x.X, fn)
	case *Index:
		walkExpr(x.X, fn)
		walkExpr(x.I, fn)
	case *Call:
		walkExpr(x.Fn, fn)
		for _, a := range x.Args {
			walkExpr(a, fn)
		}
	case *New:
		walkExpr(x.Fn, fn)
		for _, a := range x.Args {
			walkExpr(a, fn)
		}
	}
}

func walkExpr(e Expr, fn func(Node) bool) {
	if e != nil {
		walkNode(e, fn)
	}
}
