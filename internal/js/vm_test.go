package js

import (
	"fmt"
	"sort"
	"strings"
	"testing"
)

// ---- differential harness: tree-walker vs bytecode VM ----
//
// The VM's contract is total observational equivalence with the tree
// walker: same result values, same error strings, and — critically for the
// energy model — the same Ops() count for every program. These tests run
// each source through both engines and diff a full state dump.

// dumpValue renders a value with a depth bound so cyclic object graphs
// (constructible by fuzzed programs) cannot hang the harness.
func dumpValue(v Value, depth int) string {
	if depth > 6 {
		return "<deep>"
	}
	o := v.Object()
	if o == nil || o.Fn != nil {
		if o != nil && o.Fn != nil {
			return "<function " + o.Fn.Name + ">"
		}
		return v.Text()
	}
	var b strings.Builder
	if o.IsArray {
		b.WriteString("[")
		for i, e := range o.Elems {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(dumpValue(e, depth+1))
		}
		b.WriteString("]")
		return b.String()
	}
	b.WriteString("{")
	for i, k := range o.Keys() {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%s: %s", k, dumpValue(o.Props[k], depth+1))
	}
	b.WriteString("}")
	return b.String()
}

// dumpState renders the observable outcome of a run: error, op count, and
// every global binding in sorted name order.
func dumpState(in *Interp, runErr error) string {
	var b strings.Builder
	if runErr != nil {
		fmt.Fprintf(&b, "err=%v\n", runErr)
	}
	fmt.Fprintf(&b, "ops=%d\n", in.Ops())
	g := in.Globals
	var names []string
	names = append(names, g.names...)
	for k := range g.vars {
		names = append(names, k)
	}
	sort.Strings(names)
	for _, n := range names {
		v, _ := g.getLocal(n)
		fmt.Fprintf(&b, "%s=%s\n", n, dumpValue(v, 0))
	}
	return b.String()
}

// runEngine executes src on one engine and returns the state dump.
func runEngine(src string, useVM bool, opLimit int64) string {
	prog, err := Parse(src)
	if err != nil {
		return "parse:" + err.Error()
	}
	in := NewInterp()
	in.InstallStdlib(nil)
	if opLimit > 0 {
		in.SetOpLimit(opLimit)
	}
	var runErr error
	if useVM {
		runErr = in.RunCompiled(Compile(prog))
	} else {
		_, _, runErr = in.execBlock(prog.Body, in.Globals)
	}
	return dumpState(in, runErr)
}

func assertEnginesAgree(t *testing.T, src string, opLimit int64) {
	t.Helper()
	tree := runEngine(src, false, opLimit)
	vm := runEngine(src, true, opLimit)
	if tree != vm {
		t.Errorf("engines diverge on:\n%s\n--- tree ---\n%s--- vm ---\n%s", src, tree, vm)
	}
}

// parityCorpus covers every AST node kind and every op-charging subtlety in
// the interpreter: loop per-iteration charges, compound-assignment triple
// evaluation, callee-before-args validation, switch fall-through in one
// shared scope, try/catch/finally control overrides, hoisting.
var parityCorpus = []string{
	// literals, identifiers, binary/unary/ternary expressions
	`var a = 1 + 2 * 3 - 4 / 2 % 3;`,
	`var s = "a" + 1 + true + null + undefined;`,
	`var b = 1 < 2 && "a" < "b" || !false; var c = 3 >= 3 ? ~5 : -5;`,
	`var e1 = 1 == "1"; var e2 = 1 === "1"; var e3 = null == undefined; var e4 = 2 != 3; var e5 = 2 !== 2;`,
	`var sh = (1 << 4) | (255 >> 2) & (6 ^ 3);`,
	`var t1 = typeof 1; var t2 = typeof missing; var t3 = typeof typeof missing;`,
	`var n1 = +"3.5"; var n2 = -"2"; var n3 = +"nope";`,
	// short-circuit value semantics (|| and && return operands, not booleans)
	`var x = 0 || "fallback"; var y = "v" && 42; var z = null && boom();`,
	// var declarations, assignment forms, compound ops
	`var a; var b = 2, c = b + 1; a = b = c;`,
	`var n = 10; n += 5; n -= 3; n *= 2; n /= 4; n %= 4;`,
	`var o = {v: 1}; o.v += 2; var a = [7]; a[0] *= 3;`,
	// prefix/postfix on names, members, indexes
	`var i = 0; var p1 = i++; var p2 = ++i; var p3 = i--; var p4 = --i;`,
	`var o = {n: 5}; o.n++; --o.n; var a = [1]; a[0]++; var r = a[0];`,
	// objects, arrays, member/index access, delete
	`var o = {a: 1, "b c": 2, 7: 3}; var r = o.a + o["b c"] + o[7];`,
	`var o = {a: 1, b: 2}; delete o.a; delete o["b"]; var k = Object.keys(o).length; var dv = delete missingName;`,
	`var a = [1, [2, [3]]]; var r = a[1][1][0]; a[5] = 9; var len = a.length;`,
	// this, new, constructors
	`function C(v) { this.v = v; } var c = new C(4); var r = c.v;`,
	`function F() { return {x: 1}; } var f = new F(); var r = f.x;`,
	`function G() { return 5; } var g = new G(); var r = typeof g;`,
	// functions: decls, exprs, named exprs, closures, arguments, recursion
	`function add(a, b) { return a + b; } var r = add(1, 2) + add(1);`,
	`var f = function(x) { return x * 2; }; var r = f(21);`,
	`var f = function self(n) { return n <= 0 ? 0 : n + self(n - 1); }; var r = f(4);`,
	`function outer() { var n = 0; return function() { return ++n; }; } var c = outer(); c(); var r = c();`,
	`function va() { return arguments.length + arguments[1]; } var r = va(10, 20, 30);`,
	`function noargs() { return 1; } var r = noargs(9, 9);`,
	`hoisted(); function hoisted() { before = 1; } var r = before;`,
	// if/else chains
	`var r = ""; if (1) { r += "a"; } if (0) { r += "b"; } else { r += "c"; } if (0) r += "d"; else if (1) r += "e";`,
	// while/do-while/for with break/continue (per-iteration charge parity)
	`var s = 0; for (var i = 0; i < 10; i++) { if (i % 2) continue; if (i > 6) break; s += i; }`,
	`var i = 0, s = 0; while (i < 5) { i++; if (i === 3) continue; s += i; }`,
	`var i = 0, s = 0; do { s += i; i++; } while (i < 4);`,
	`var i = 10; while (i--) { if (i < 5) break; }`,
	`var s = 0; for (;;) { s++; if (s > 3) break; }`,
	`var s = ""; for (var a = 0, b = 9; a < b; a++) { s += a; b--; }`,
	// nested loops with break/continue crossing block scopes
	`var s = 0; for (var i = 0; i < 4; i++) { for (var j = 0; j < 4; j++) { if (j === 2) break; if (i === j) continue; s += i * 10 + j; } }`,
	// for-in over objects and arrays
	`var o = {b: 2, a: 1, c: 3}; var ks = ""; var sum = 0; for (var k in o) { ks += k; sum += o[k]; }`,
	`var a = [5, 6, 7]; var t = 0; for (var k in a) { t += a[k]; } for (var q in 5) { t = -1; }`,
	`var o = {a: 1, b: 2, c: 3}; var n = 0; for (var k in o) { if (k === "b") break; n++; }`,
	`function f() { for (var k in {x: 1, y: 2}) { return k; } } var r = f();`,
	// switch: fall-through, default interleave, shared clause scope, break
	`var r = ""; switch (2) { case 1: r += "a"; case 2: r += "b"; case 3: r += "c"; break; case 4: r += "d"; }`,
	`var r = ""; switch (9) { case 1: r += "a"; default: r += "d"; case 2: r += "b"; }`,
	`var r = ""; switch (2) { case 1: r += "a"; default: r += "d"; case 2: r += "b"; }`,
	`var r = 0; switch (3) { case 1: case 2: r = 12; break; case 3: case 4: r = 34; }`,
	`var s = ""; for (var i = 0; i < 4; i++) { switch (i) { case 1: continue; case 2: break; default: s += i; } s += "."; }`,
	// throw/try/catch/finally control flow
	`var r = ""; try { r += "t"; throw "boom"; } catch (e) { r += "c" + e; } finally { r += "f"; }`,
	`var r = ""; try { r += "t"; } finally { r += "f"; }`,
	`function f() { try { return "t"; } finally { sideEffect = 1; } } var r = f();`,
	`function f() { try { return "t"; } finally { return "f"; } } var r = f();`,
	`var r = ""; try { try { throw 1; } finally { r += "inner"; } } catch (e) { r += "outer" + e; }`,
	`var r = ""; try { missingFn(); } catch (e) { r = "caught: " + e; }`,
	`var r = ""; try { null.x; } catch (e) { r = "caught"; }`,
	`var i = 0; while (i < 3) { try { i++; continue; } finally { lastI = i; } }`,
	`var s = 0; for (var i = 0; i < 5; i++) { try { if (i === 2) continue; if (i === 4) break; } finally { s += 10; } s += 1; }`,
	// errors: op limits, stack overflow, bad calls (uncatchable vs catchable)
	`function f() { return f(); } f();`,
	`var notFn = 3; notFn();`,
	`var o = {}; o.missing();`,
	`new missingCtor();`,
	`undefinedGlobal.x = 1;`,
	// callee validated before args are evaluated (evalCall ordering)
	`var log = ""; function t(x) { log += x; return x; } try { nope(t("a"), t("b")); } catch (e) { caught = 1; } var r = log;`,
	// stdlib interactions that charge extra ops
	`var a = [3, 1, 2]; a.sort(); var r = a.join(",");`,
	`var a = [3, 1, 2]; a.sort(function(x, y) { return x - y; }); var r = a.join(",");`,
	`var r = JSON.stringify({b: [1, {c: true}], a: null});`,
	`var o = JSON.parse("{\"k\": [1, 2]}"); var r = o.k[1];`,
	`var s = "Hello World"; var r = s.toLowerCase() + s.indexOf("W") + s.slice(2, 5) + s.split(" ").length;`,
	`var a = [1, 2]; a.push(3); a.unshift(0); var r = a.pop() + a.shift() + a.length;`,
	`var r = Math.max(1, 9, 4) + Math.min(2, 8) + Math.floor(2.9) + Math.abs(-3);`,
	`var big = []; big.length = 5; var r = big.length; var caught = 0; try { big.length = 1e18; } catch (e) { caught = 1; }`,
	`var a = []; var caught = 0; try { a[9999999999] = 1; } catch (e) { caught = 1; }`,
	// string/number coercion corners
	`var r = [10, 9, 1].sort().join(",");`,
	`var r1 = "5" - 2; var r2 = "5" + 2; var r3 = [] + {}; var r4 = 1 / 0; var r5 = -1 / 0; var r6 = 0 / 0 !== 0 / 0;`,
}

func TestVMParityCorpus(t *testing.T) {
	for _, src := range parityCorpus {
		assertEnginesAgree(t, src, 0)
	}
}

// TestVMParityUnderTightOpLimit replays the corpus with a small budget so
// limit-exceeded errors must trigger at the same op on both engines.
func TestVMParityUnderTightOpLimit(t *testing.T) {
	for _, limit := range []int64{1, 7, 23, 61, 150} {
		for _, src := range parityCorpus {
			assertEnginesAgree(t, src, limit)
		}
	}
}

// FuzzVMvsInterp is the differential fuzz target: any parseable program
// must produce identical globals, errors, and op counts on both engines.
func FuzzVMvsInterp(f *testing.F) {
	for _, src := range parityCorpus {
		f.Add(src)
	}
	for _, src := range runFuzzSeeds {
		f.Add(src)
	}
	f.Fuzz(func(t *testing.T, src string) {
		prog, err := Parse(src)
		if err != nil || prog == nil {
			return
		}
		tree := runEngine(src, false, 50_000)
		vm := runEngine(src, true, 50_000)
		if tree != vm {
			t.Errorf("engines diverge on:\n%s\n--- tree ---\n%s--- vm ---\n%s", src, tree, vm)
		}
	})
}

// TestVMCallFunctionDispatch checks that functions created by compiled code
// run on the VM when called later from Go (the browser's callback path).
func TestVMCallFunctionDispatch(t *testing.T) {
	in := NewInterp()
	in.InstallStdlib(nil)
	prog := MustParse(`function cb(x) { return x * 2 + this.base; }`)
	if err := in.RunCompiled(Compile(prog)); err != nil {
		t.Fatal(err)
	}
	fn, _ := in.Globals.Lookup("cb")
	if fn.Object() == nil || fn.Object().Fn == nil || fn.Object().Fn.Code == nil {
		t.Fatal("compiled function should carry bytecode")
	}
	this := NewObject()
	this.Set("base", Num(10))
	v, err := in.CallFunction(fn, ObjVal(this), []Value{Num(16)})
	if err != nil {
		t.Fatal(err)
	}
	if v.Number() != 42 {
		t.Fatalf("CallFunction via VM = %v", v.Number())
	}
}

// TestVMToggle checks the -no-vm escape hatch routing in Run.
func TestVMToggle(t *testing.T) {
	defer SetVM(true)
	check := func(wantVM bool) {
		in := NewInterp()
		if err := in.RunSource(`function f() {} var g = function() {};`); err != nil {
			t.Fatal(err)
		}
		f, _ := in.Globals.Lookup("f")
		if got := f.Object().Fn.Code != nil; got != wantVM {
			t.Fatalf("VMEnabled=%v but function compiled=%v", wantVM, got)
		}
	}
	SetVM(true)
	check(true)
	SetVM(false)
	check(false)
}

// ---- satellite regressions: cost-model bugfixes ----

// TestArrayGrowthCharged: growing an array (by length or sparse index)
// must charge ops proportional to the elements created.
func TestArrayGrowthCharged(t *testing.T) {
	opsFor := func(src string) int64 {
		in := runSrc(t, src)
		return in.Ops()
	}
	base := opsFor(`var a = []; a.length = 1;`)
	grown := opsFor(`var a = []; a.length = 1001;`)
	if grown-base != 1000 {
		t.Fatalf("length growth charge = %d, want 1000", grown-base)
	}
	sBase := opsFor(`var a = []; a[0] = 1;`)
	sGrown := opsFor(`var a = []; a[1000] = 1;`)
	if sGrown-sBase != 1000 {
		t.Fatalf("sparse index growth charge = %d, want 1000", sGrown-sBase)
	}
}

// TestArrayGrowthBounded: unbounded growth must fail with a catchable
// runtime error instead of allocating gigabytes (or invoking int(NaN) UB).
func TestArrayGrowthBounded(t *testing.T) {
	for _, src := range []string{
		`var a = []; a.length = 1e9;`,
		`var a = []; a[99999999] = 1;`,
		`var a = []; a.length = NaN;`,
		`var a = []; a.length = Infinity;`,
		`var a = []; a.length = 1.5;`,
		`var a = []; a.length = -2;`,
	} {
		in := NewInterp()
		in.InstallStdlib(nil)
		if err := in.RunSource(src); err == nil {
			t.Errorf("%s: expected runtime error", src)
		}
		in2 := runSrc(t, `var ok = false; try { `+src+` } catch (e) { ok = true; }`)
		if !global(t, in2, "ok").Truthy() {
			t.Errorf("%s: error must be catchable", src)
		}
	}
}

// TestSortChargesComparatorCalls: Array.sort must charge per comparator
// invocation, not a flat multiple of the length.
func TestSortChargesComparatorCalls(t *testing.T) {
	opsFor := func(src string) int64 {
		in := runSrc(t, src)
		return in.Ops()
	}
	// Sorting a sorted 2-element array needs 1 comparison; reverse needs 1
	// too — but an 8-element reversed array needs many more than 8.
	small := opsFor(`[2, 1].sort(function(a, b) { return a - b; });`)
	large := opsFor(`[8,7,6,5,4,3,2,1].sort(function(a, b) { return a - b; });`)
	if large <= small {
		t.Fatalf("sort charge not scaling with comparisons: %d vs %d", small, large)
	}
	// Default (lexicographic) sort still charges its comparisons.
	if opsFor(`[3, 1, 2].sort();`) <= opsFor(`[1].sort();`) {
		t.Fatal("default sort must charge comparisons")
	}
}

// TestSortComparatorErrorRestores: a comparator that throws must leave the
// array in its pre-sort order, not a partial permutation.
func TestSortComparatorErrorRestores(t *testing.T) {
	in := runSrc(t, `
		var a = [5, 3, 9, 1, 7];
		var caught = "";
		try {
			a.sort(function(x, y) { if (x === 1 || y === 1) { throw "nope"; } return x - y; });
		} catch (e) { caught = e; }
		var out = a.join(",");
	`)
	if global(t, in, "caught").Text() != "nope" {
		t.Fatal("comparator error must propagate")
	}
	if got := global(t, in, "out").Text(); got != "5,3,9,1,7" {
		t.Fatalf("array after failed sort = %q, want original order", got)
	}
}

// TestJSONStringifyInsertionOrder: stringify must emit keys in insertion
// order (matching real engines), not sorted.
func TestJSONStringifyInsertionOrder(t *testing.T) {
	in := runSrc(t, `
		var o = {z: 1};
		o.a = 2;
		o.m = 3;
		delete o.a;
		o.a = 4;
		var r = JSON.stringify(o);
		var uv;
		var u = typeof JSON.stringify(uv);
		var fn = typeof JSON.stringify(function(){});
	`)
	if got := global(t, in, "r").Text(); got != `{"z":1,"m":3,"a":4}` {
		t.Fatalf("stringify order = %s", got)
	}
	if global(t, in, "u").Text() != "undefined" || global(t, in, "fn").Text() != "undefined" {
		t.Fatal("top-level undefined/function must stringify to undefined")
	}
}

// ---- compiler unit tests ----

// TestCompileAllNodeKinds compiles every statement and expression form and
// checks the emitted unit is structurally sane (no opFail instructions).
func TestCompileAllNodeKinds(t *testing.T) {
	src := strings.Join(parityCorpus, "\n")
	cp := Compile(MustParse(src))
	var walk func(sg *segment)
	seen := map[*segment]bool{}
	walk = func(sg *segment) {
		if sg == nil || seen[sg] {
			return
		}
		seen[sg] = true
		for _, is := range sg.code {
			if is.Op == opFail {
				t.Errorf("compiler emitted opFail: %s at %d:%d", cp.u.names[is.A], is.Line, is.Col)
			}
		}
	}
	walk(cp.main)
	for _, sg := range cp.u.segs {
		walk(sg)
	}
	for _, fn := range cp.u.fns {
		walk(fn.body)
	}
	for _, p := range cp.u.forins {
		walk(p.body)
	}
	for _, p := range cp.u.switches {
		for _, vs := range p.caseVals {
			walk(vs)
		}
		for _, cl := range p.clauses {
			walk(cl.body)
		}
	}
	for _, p := range cp.u.tries {
		walk(p.body)
		walk(p.catch)
		walk(p.finally)
	}
}

// TestCompileJumpTargets checks every jump lands inside its segment.
func TestCompileJumpTargets(t *testing.T) {
	cp := Compile(MustParse(strings.Join(parityCorpus, "\n")))
	check := func(sg *segment) {
		for i, is := range sg.code {
			switch is.Op {
			case opJmp, opJF, opJFK, opJTK:
				if is.A < 0 || int(is.A) > len(sg.code) {
					t.Errorf("instr %d: jump target %d out of range [0,%d]", i, is.A, len(sg.code))
				}
			case opRunLoopBody:
				if is.B < 0 || int(is.B) > len(sg.code) {
					t.Errorf("instr %d: break target %d out of range", i, is.B)
				}
			}
		}
	}
	check(cp.main)
	for _, sg := range cp.u.segs {
		check(sg)
	}
	for _, fn := range cp.u.fns {
		check(fn.body)
	}
}

// TestCompileNeedArgs checks the arguments-elision analysis stays
// conservative: any textual mention keeps the array.
func TestCompileNeedArgs(t *testing.T) {
	cases := map[string]bool{
		`function f() { return 1; }`:                                      false,
		`function f() { return arguments.length; }`:                       true,
		`function f() { return function() { return arguments[0]; }; }`:    true,
		`function f() { if (0) { var x = arguments; } }`:                  true,
		`function f(a) { return a; }`:                                     false,
		`function f() { for (var k in arguments) {} }`:                    true,
	}
	for src, want := range cases {
		cp := Compile(MustParse(src))
		var fn *compiledFn
		if len(cp.u.fns) > 0 {
			fn = cp.u.fns[0]
		} else if len(cp.main.hoists) > 0 {
			fn = cp.main.hoists[0].fn
		} else {
			t.Fatalf("%s: no compiled function", src)
		}
		if got := fn.needArgs; got != want {
			t.Errorf("%s: needArgs = %v, want %v", src, got, want)
		}
	}
}

// ---- benchmarks: VM vs tree-walk on script-heavy workloads ----

func benchRun(b *testing.B, src string, vm bool) {
	b.Helper()
	prog := MustParse(src)
	if vm {
		cp := Compile(prog)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			in := NewInterp()
			if err := in.RunCompiled(cp); err != nil {
				b.Fatal(err)
			}
		}
		return
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		in := NewInterp()
		if _, _, err := in.execBlock(prog.Body, in.Globals); err != nil {
			b.Fatal(err)
		}
	}
}

const benchFib = `var f = function fib(n) { return n < 2 ? n : fib(n-1) + fib(n-2); }; f(15);`
const benchLoop = `var s = 0; for (var i = 0; i < 10000; i++) { s += i; }`

func BenchmarkVMFib(b *testing.B)  { benchRun(b, benchFib, true) }
func BenchmarkVMLoop(b *testing.B) { benchRun(b, benchLoop, true) }

// BenchmarkVMCompile measures per-program compilation cost (amortised away
// by the browser asset cache).
func BenchmarkVMCompile(b *testing.B) {
	prog := MustParse(benchFib + benchLoop)
	for i := 0; i < b.N; i++ {
		Compile(prog)
	}
}
