package js

// The AST is a small set of statement and expression node types. Nodes keep
// their source line for runtime error messages.

// Node is the common interface of AST nodes.
type Node interface {
	Pos() (line, col int)
}

type pos struct{ line, col int }

func (p pos) Pos() (int, int) { return p.line, p.col }

// ---- Statements ----

// Stmt is a statement node.
type Stmt interface {
	Node
	stmt()
}

// Program is a parsed compilation unit.
type Program struct {
	Body []Stmt
}

// VarDecl declares one variable with an optional initializer
// (var/let/const are treated alike, with lexical scoping).
type VarDecl struct {
	pos
	Name string
	Init Expr // nil means undefined
}

// VarDeclGroup declares several variables from one statement
// ("var a = 1, b = 2;"); unlike BlockStmt it introduces no scope.
type VarDeclGroup struct {
	pos
	Decls []*VarDecl
}

// FuncDecl declares a named function in the enclosing scope.
type FuncDecl struct {
	pos
	Name string
	Fn   *FuncLit
}

// ExprStmt evaluates an expression for its effects.
type ExprStmt struct {
	pos
	X Expr
}

// IfStmt is if/else.
type IfStmt struct {
	pos
	Cond Expr
	Then []Stmt
	Else []Stmt // nil when absent
}

// WhileStmt is a while loop.
type WhileStmt struct {
	pos
	Cond Expr
	Body []Stmt
}

// DoWhileStmt is a do/while loop.
type DoWhileStmt struct {
	pos
	Cond Expr
	Body []Stmt
}

// ForStmt is a C-style for loop. Init may be a VarDecl or ExprStmt; any of
// the three clauses may be nil.
type ForStmt struct {
	pos
	Init Stmt
	Cond Expr
	Post Expr
	Body []Stmt
}

// ReturnStmt returns from the enclosing function.
type ReturnStmt struct {
	pos
	X Expr // nil returns undefined
}

// BreakStmt exits the innermost loop.
type BreakStmt struct{ pos }

// ContinueStmt continues the innermost loop.
type ContinueStmt struct{ pos }

// ThrowStmt raises a runtime error carrying the value.
type ThrowStmt struct {
	pos
	X Expr
}

// BlockStmt is a braced statement list with its own lexical scope.
type BlockStmt struct {
	pos
	Body []Stmt
}

// SwitchStmt is switch (Tag) { case …: … default: … } with standard
// fall-through semantics.
type SwitchStmt struct {
	pos
	Tag     Expr
	Cases   []SwitchCase
	Default []Stmt // nil when absent
	// DefaultAt is Default's position among the cases for fall-through
	// order; -1 when absent.
	DefaultAt int
}

// SwitchCase is one case clause.
type SwitchCase struct {
	Value Expr
	Body  []Stmt
}

// ForInStmt is for (var k in obj) { … }, iterating property names.
type ForInStmt struct {
	pos
	Name string
	X    Expr
	Body []Stmt
}

// TryStmt is try/catch/finally. CatchName may be empty for catch-less try.
type TryStmt struct {
	pos
	Body      []Stmt
	CatchName string
	Catch     []Stmt // nil means no catch clause
	Finally   []Stmt // nil means no finally clause
}

func (*VarDecl) stmt()      {}
func (*VarDeclGroup) stmt() {}
func (*FuncDecl) stmt()     {}
func (*ExprStmt) stmt()     {}
func (*IfStmt) stmt()       {}
func (*WhileStmt) stmt()    {}
func (*DoWhileStmt) stmt()  {}
func (*ForStmt) stmt()      {}
func (*ReturnStmt) stmt()   {}
func (*BreakStmt) stmt()    {}
func (*ContinueStmt) stmt() {}
func (*ThrowStmt) stmt()    {}
func (*BlockStmt) stmt()    {}
func (*SwitchStmt) stmt()   {}
func (*ForInStmt) stmt()    {}
func (*TryStmt) stmt()      {}

// ---- Expressions ----

// Expr is an expression node.
type Expr interface {
	Node
	expr()
}

// NumberLit is a numeric literal.
type NumberLit struct {
	pos
	Value float64
}

// StringLit is a string literal.
type StringLit struct {
	pos
	Value string
}

// BoolLit is true or false.
type BoolLit struct {
	pos
	Value bool
}

// NullLit is null.
type NullLit struct{ pos }

// UndefinedLit is undefined.
type UndefinedLit struct{ pos }

// ThisLit is this.
type ThisLit struct{ pos }

// Ident references a variable.
type Ident struct {
	pos
	Name string
}

// ArrayLit is [a, b, ...].
type ArrayLit struct {
	pos
	Elems []Expr
}

// ObjectLit is {k: v, ...}.
type ObjectLit struct {
	pos
	Keys   []string
	Values []Expr
}

// FuncLit is a function expression.
type FuncLit struct {
	pos
	Name   string // optional, for recursion and diagnostics
	Params []string
	Body   []Stmt
}

// Unary is a prefix operator: -x, +x, !x, typeof x, ++x, --x.
type Unary struct {
	pos
	Op string
	X  Expr
}

// Postfix is x++ or x--.
type Postfix struct {
	pos
	Op string
	X  Expr
}

// Binary is a binary operator.
type Binary struct {
	pos
	Op   string
	L, R Expr
}

// Logical is && or || with short-circuit evaluation.
type Logical struct {
	pos
	Op   string
	L, R Expr
}

// Cond is the ternary operator.
type Cond struct {
	pos
	Test, Then, Else Expr
}

// Assign is an assignment; Op is "=", "+=", "-=", "*=", "/=", or "%=".
// Target must be an Ident, Member, or Index expression.
type Assign struct {
	pos
	Op     string
	Target Expr
	Value  Expr
}

// Member is x.name.
type Member struct {
	pos
	X    Expr
	Name string
}

// Index is x[i].
type Index struct {
	pos
	X Expr
	I Expr
}

// Call is f(args...). When Fn is a Member or Index expression, the receiver
// becomes this.
type Call struct {
	pos
	Fn   Expr
	Args []Expr
}

// New is new F(args...): supported by calling F with a fresh object as this.
type New struct {
	pos
	Fn   Expr
	Args []Expr
}

func (*NumberLit) expr()    {}
func (*StringLit) expr()    {}
func (*BoolLit) expr()      {}
func (*NullLit) expr()      {}
func (*UndefinedLit) expr() {}
func (*ThisLit) expr()      {}
func (*Ident) expr()        {}
func (*ArrayLit) expr()     {}
func (*ObjectLit) expr()    {}
func (*FuncLit) expr()      {}
func (*Unary) expr()        {}
func (*Postfix) expr()      {}
func (*Binary) expr()       {}
func (*Logical) expr()      {}
func (*Cond) expr()         {}
func (*Assign) expr()       {}
func (*Member) expr()       {}
func (*Index) expr()        {}
func (*Call) expr()         {}
func (*New) expr()          {}
