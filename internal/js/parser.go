package js

import "fmt"

// Parser builds an AST from tokens using Pratt-style precedence climbing
// for expressions and recursive descent for statements.
type Parser struct {
	toks []Token
	pos  int
}

// Parse parses a complete program.
func Parse(src string) (*Program, error) {
	toks, err := Lex(src)
	if err != nil {
		return nil, err
	}
	p := &Parser{toks: toks}
	prog := &Program{}
	for !p.atEOF() {
		s, err := p.statement()
		if err != nil {
			return nil, err
		}
		prog.Body = append(prog.Body, s)
	}
	return prog, nil
}

// MustParse parses or panics; for tests and embedded app sources.
func MustParse(src string) *Program {
	prog, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return prog
}

func (p *Parser) cur() Token  { return p.toks[p.pos] }
func (p *Parser) atEOF() bool { return p.cur().Kind == TokEOF }

func (p *Parser) next() Token {
	t := p.toks[p.pos]
	if t.Kind != TokEOF {
		p.pos++
	}
	return t
}

func (p *Parser) errorf(t Token, format string, args ...any) error {
	return &SyntaxError{Line: t.Line, Col: t.Col, Msg: fmt.Sprintf(format, args...)}
}

func (p *Parser) isPunct(s string) bool {
	t := p.cur()
	return t.Kind == TokPunct && t.Text == s
}

func (p *Parser) isKeyword(s string) bool {
	t := p.cur()
	return t.Kind == TokKeyword && t.Text == s
}

func (p *Parser) acceptPunct(s string) bool {
	if p.isPunct(s) {
		p.next()
		return true
	}
	return false
}

func (p *Parser) expectPunct(s string) error {
	if !p.acceptPunct(s) {
		return p.errorf(p.cur(), "expected %q, found %v", s, p.cur())
	}
	return nil
}

func (p *Parser) at(t Token) pos { return pos{t.Line, t.Col} }

// ---- Statements ----

func (p *Parser) statement() (Stmt, error) {
	t := p.cur()
	switch {
	case t.Kind == TokKeyword:
		switch t.Text {
		case "var", "let", "const":
			return p.varDecl()
		case "function":
			return p.funcDecl()
		case "if":
			return p.ifStmt()
		case "while":
			return p.whileStmt()
		case "do":
			return p.doWhileStmt()
		case "for":
			return p.forStmt()
		case "return":
			p.next()
			rs := &ReturnStmt{pos: p.at(t)}
			if !p.isPunct(";") && !p.isPunct("}") && !p.atEOF() {
				x, err := p.expression()
				if err != nil {
					return nil, err
				}
				rs.X = x
			}
			p.acceptPunct(";")
			return rs, nil
		case "break":
			p.next()
			p.acceptPunct(";")
			return &BreakStmt{pos: p.at(t)}, nil
		case "continue":
			p.next()
			p.acceptPunct(";")
			return &ContinueStmt{pos: p.at(t)}, nil
		case "throw":
			p.next()
			x, err := p.expression()
			if err != nil {
				return nil, err
			}
			p.acceptPunct(";")
			return &ThrowStmt{pos: p.at(t), X: x}, nil
		case "switch":
			return p.switchStmt()
		case "try":
			return p.tryStmt()
		}
	case p.isPunct("{"):
		body, err := p.block()
		if err != nil {
			return nil, err
		}
		return &BlockStmt{pos: p.at(t), Body: body}, nil
	case p.isPunct(";"):
		p.next()
		return &BlockStmt{pos: p.at(t)}, nil // empty statement
	}
	x, err := p.expression()
	if err != nil {
		return nil, err
	}
	p.acceptPunct(";")
	return &ExprStmt{pos: p.at(t), X: x}, nil
}

func (p *Parser) block() ([]Stmt, error) {
	if err := p.expectPunct("{"); err != nil {
		return nil, err
	}
	var body []Stmt
	for !p.isPunct("}") {
		if p.atEOF() {
			return nil, p.errorf(p.cur(), "unterminated block")
		}
		s, err := p.statement()
		if err != nil {
			return nil, err
		}
		body = append(body, s)
	}
	p.next() // }
	return body, nil
}

// blockOrSingle parses either a braced block or a single statement body.
func (p *Parser) blockOrSingle() ([]Stmt, error) {
	if p.isPunct("{") {
		return p.block()
	}
	s, err := p.statement()
	if err != nil {
		return nil, err
	}
	return []Stmt{s}, nil
}

func (p *Parser) varDecl() (Stmt, error) {
	kw := p.next() // var/let/const
	var decls []*VarDecl
	for {
		t := p.cur()
		if t.Kind != TokIdent {
			return nil, p.errorf(t, "expected variable name after %q", kw.Text)
		}
		p.next()
		d := &VarDecl{pos: p.at(t), Name: t.Text}
		if p.acceptPunct("=") {
			x, err := p.assignExpr()
			if err != nil {
				return nil, err
			}
			d.Init = x
		}
		decls = append(decls, d)
		if !p.acceptPunct(",") {
			break
		}
	}
	p.acceptPunct(";")
	if len(decls) == 1 {
		return decls[0], nil
	}
	return &VarDeclGroup{pos: decls[0].pos, Decls: decls}, nil
}

func (p *Parser) funcDecl() (Stmt, error) {
	kw := p.next() // function
	t := p.cur()
	if t.Kind != TokIdent {
		return nil, p.errorf(t, "expected function name")
	}
	p.next()
	fn, err := p.funcRest(t.Text, kw)
	if err != nil {
		return nil, err
	}
	return &FuncDecl{pos: p.at(kw), Name: t.Text, Fn: fn}, nil
}

func (p *Parser) funcRest(name string, at Token) (*FuncLit, error) {
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	var params []string
	for !p.isPunct(")") {
		t := p.cur()
		if t.Kind != TokIdent {
			return nil, p.errorf(t, "expected parameter name")
		}
		p.next()
		params = append(params, t.Text)
		if !p.acceptPunct(",") {
			break
		}
	}
	if err := p.expectPunct(")"); err != nil {
		return nil, err
	}
	body, err := p.block()
	if err != nil {
		return nil, err
	}
	return &FuncLit{pos: p.at(at), Name: name, Params: params, Body: body}, nil
}

func (p *Parser) ifStmt() (Stmt, error) {
	kw := p.next()
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	cond, err := p.expression()
	if err != nil {
		return nil, err
	}
	if err := p.expectPunct(")"); err != nil {
		return nil, err
	}
	then, err := p.blockOrSingle()
	if err != nil {
		return nil, err
	}
	st := &IfStmt{pos: p.at(kw), Cond: cond, Then: then}
	if p.isKeyword("else") {
		p.next()
		if p.isKeyword("if") {
			s, err := p.ifStmt()
			if err != nil {
				return nil, err
			}
			st.Else = []Stmt{s}
		} else {
			els, err := p.blockOrSingle()
			if err != nil {
				return nil, err
			}
			st.Else = els
		}
	}
	return st, nil
}

func (p *Parser) whileStmt() (Stmt, error) {
	kw := p.next()
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	cond, err := p.expression()
	if err != nil {
		return nil, err
	}
	if err := p.expectPunct(")"); err != nil {
		return nil, err
	}
	body, err := p.blockOrSingle()
	if err != nil {
		return nil, err
	}
	return &WhileStmt{pos: p.at(kw), Cond: cond, Body: body}, nil
}

func (p *Parser) doWhileStmt() (Stmt, error) {
	kw := p.next() // do
	body, err := p.blockOrSingle()
	if err != nil {
		return nil, err
	}
	if !p.isKeyword("while") {
		return nil, p.errorf(p.cur(), "expected while after do body")
	}
	p.next()
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	cond, err := p.expression()
	if err != nil {
		return nil, err
	}
	if err := p.expectPunct(")"); err != nil {
		return nil, err
	}
	p.acceptPunct(";")
	return &DoWhileStmt{pos: p.at(kw), Cond: cond, Body: body}, nil
}

func (p *Parser) switchStmt() (Stmt, error) {
	kw := p.next() // switch
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	tag, err := p.expression()
	if err != nil {
		return nil, err
	}
	if err := p.expectPunct(")"); err != nil {
		return nil, err
	}
	if err := p.expectPunct("{"); err != nil {
		return nil, err
	}
	st := &SwitchStmt{pos: p.at(kw), Tag: tag, DefaultAt: -1}
	parseBody := func() ([]Stmt, error) {
		var body []Stmt
		for !p.isKeyword("case") && !p.isKeyword("default") && !p.isPunct("}") {
			if p.atEOF() {
				return nil, p.errorf(p.cur(), "unterminated switch")
			}
			s, err := p.statement()
			if err != nil {
				return nil, err
			}
			body = append(body, s)
		}
		return body, nil
	}
	for !p.isPunct("}") {
		switch {
		case p.isKeyword("case"):
			p.next()
			v, err := p.expression()
			if err != nil {
				return nil, err
			}
			if err := p.expectPunct(":"); err != nil {
				return nil, err
			}
			body, err := parseBody()
			if err != nil {
				return nil, err
			}
			st.Cases = append(st.Cases, SwitchCase{Value: v, Body: body})
		case p.isKeyword("default"):
			if st.DefaultAt >= 0 {
				return nil, p.errorf(p.cur(), "duplicate default clause")
			}
			p.next()
			if err := p.expectPunct(":"); err != nil {
				return nil, err
			}
			body, err := parseBody()
			if err != nil {
				return nil, err
			}
			st.DefaultAt = len(st.Cases)
			st.Default = body
		default:
			return nil, p.errorf(p.cur(), "expected case or default in switch")
		}
	}
	p.next() // }
	return st, nil
}

func (p *Parser) tryStmt() (Stmt, error) {
	kw := p.next() // try
	body, err := p.block()
	if err != nil {
		return nil, err
	}
	st := &TryStmt{pos: p.at(kw), Body: body}
	if p.isKeyword("catch") {
		p.next()
		if p.acceptPunct("(") {
			t := p.cur()
			if t.Kind != TokIdent {
				return nil, p.errorf(t, "expected catch parameter name")
			}
			p.next()
			st.CatchName = t.Text
			if err := p.expectPunct(")"); err != nil {
				return nil, err
			}
		}
		catch, err := p.block()
		if err != nil {
			return nil, err
		}
		if catch == nil {
			catch = []Stmt{}
		}
		st.Catch = catch
	}
	if p.isKeyword("finally") {
		p.next()
		fin, err := p.block()
		if err != nil {
			return nil, err
		}
		if fin == nil {
			fin = []Stmt{}
		}
		st.Finally = fin
	}
	if st.Catch == nil && st.Finally == nil {
		return nil, p.errorf(p.cur(), "try needs catch or finally")
	}
	return st, nil
}

func (p *Parser) forStmt() (Stmt, error) {
	kw := p.next()
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	// for (var k in obj) — look ahead for the for-in form.
	if p.isKeyword("var") || p.isKeyword("let") || p.isKeyword("const") {
		save := p.pos
		p.next()
		if p.cur().Kind == TokIdent {
			name := p.next().Text
			if p.isKeyword("in") {
				p.next()
				x, err := p.expression()
				if err != nil {
					return nil, err
				}
				if err := p.expectPunct(")"); err != nil {
					return nil, err
				}
				body, err := p.blockOrSingle()
				if err != nil {
					return nil, err
				}
				return &ForInStmt{pos: p.at(kw), Name: name, X: x, Body: body}, nil
			}
		}
		p.pos = save
	}
	st := &ForStmt{pos: p.at(kw)}
	if !p.isPunct(";") {
		if p.isKeyword("var") || p.isKeyword("let") || p.isKeyword("const") {
			s, err := p.varDecl() // consumes the ';'
			if err != nil {
				return nil, err
			}
			st.Init = s
		} else {
			x, err := p.expression()
			if err != nil {
				return nil, err
			}
			st.Init = &ExprStmt{pos: st.pos, X: x}
			if err := p.expectPunct(";"); err != nil {
				return nil, err
			}
		}
	} else {
		p.next()
	}
	if !p.isPunct(";") {
		x, err := p.expression()
		if err != nil {
			return nil, err
		}
		st.Cond = x
	}
	if err := p.expectPunct(";"); err != nil {
		return nil, err
	}
	if !p.isPunct(")") {
		x, err := p.expression()
		if err != nil {
			return nil, err
		}
		st.Post = x
	}
	if err := p.expectPunct(")"); err != nil {
		return nil, err
	}
	body, err := p.blockOrSingle()
	if err != nil {
		return nil, err
	}
	st.Body = body
	return st, nil
}

// ---- Expressions (precedence climbing) ----

// expression parses a full expression including comma-free assignment.
func (p *Parser) expression() (Expr, error) { return p.assignExpr() }

func (p *Parser) assignExpr() (Expr, error) {
	left, err := p.condExpr()
	if err != nil {
		return nil, err
	}
	t := p.cur()
	if t.Kind == TokPunct {
		switch t.Text {
		case "=", "+=", "-=", "*=", "/=", "%=":
			switch left.(type) {
			case *Ident, *Member, *Index:
			default:
				return nil, p.errorf(t, "invalid assignment target")
			}
			p.next()
			right, err := p.assignExpr()
			if err != nil {
				return nil, err
			}
			return &Assign{pos: p.at(t), Op: t.Text, Target: left, Value: right}, nil
		}
	}
	return left, nil
}

func (p *Parser) condExpr() (Expr, error) {
	test, err := p.binaryExpr(0)
	if err != nil {
		return nil, err
	}
	if !p.isPunct("?") {
		return test, nil
	}
	t := p.next()
	then, err := p.assignExpr()
	if err != nil {
		return nil, err
	}
	if err := p.expectPunct(":"); err != nil {
		return nil, err
	}
	els, err := p.assignExpr()
	if err != nil {
		return nil, err
	}
	return &Cond{pos: p.at(t), Test: test, Then: then, Else: els}, nil
}

// binPrec follows JavaScript's precedence: logical < bitwise < equality <
// relational < shift < additive < multiplicative.
var binPrec = map[string]int{
	"||": 1,
	"&&": 2,
	"|":  3,
	"^":  4,
	"&":  5,
	"==": 6, "!=": 6, "===": 6, "!==": 6,
	"<": 7, ">": 7, "<=": 7, ">=": 7,
	"<<": 8, ">>": 8,
	"+": 9, "-": 9,
	"*": 10, "/": 10, "%": 10,
}

func (p *Parser) binaryExpr(minPrec int) (Expr, error) {
	left, err := p.unaryExpr()
	if err != nil {
		return nil, err
	}
	for {
		t := p.cur()
		if t.Kind != TokPunct {
			return left, nil
		}
		prec, ok := binPrec[t.Text]
		if !ok || prec < minPrec {
			return left, nil
		}
		p.next()
		right, err := p.binaryExpr(prec + 1)
		if err != nil {
			return nil, err
		}
		if t.Text == "&&" || t.Text == "||" {
			left = &Logical{pos: p.at(t), Op: t.Text, L: left, R: right}
		} else {
			left = &Binary{pos: p.at(t), Op: t.Text, L: left, R: right}
		}
	}
}

func (p *Parser) unaryExpr() (Expr, error) {
	t := p.cur()
	if t.Kind == TokPunct && (t.Text == "-" || t.Text == "+" || t.Text == "!" || t.Text == "~" || t.Text == "++" || t.Text == "--") {
		p.next()
		x, err := p.unaryExpr()
		if err != nil {
			return nil, err
		}
		return &Unary{pos: p.at(t), Op: t.Text, X: x}, nil
	}
	if t.Kind == TokKeyword && (t.Text == "typeof" || t.Text == "delete") {
		p.next()
		x, err := p.unaryExpr()
		if err != nil {
			return nil, err
		}
		return &Unary{pos: p.at(t), Op: t.Text, X: x}, nil
	}
	return p.postfixExpr()
}

func (p *Parser) postfixExpr() (Expr, error) {
	x, err := p.callExpr()
	if err != nil {
		return nil, err
	}
	t := p.cur()
	if t.Kind == TokPunct && (t.Text == "++" || t.Text == "--") {
		p.next()
		return &Postfix{pos: p.at(t), Op: t.Text, X: x}, nil
	}
	return x, nil
}

func (p *Parser) callExpr() (Expr, error) {
	var x Expr
	var err error
	if p.isKeyword("new") {
		kw := p.next()
		fn, err := p.callExpr()
		if err != nil {
			return nil, err
		}
		// Re-shape a parsed call into a constructor call.
		if c, ok := fn.(*Call); ok {
			return &New{pos: p.at(kw), Fn: c.Fn, Args: c.Args}, nil
		}
		return &New{pos: p.at(kw), Fn: fn}, nil
	}
	x, err = p.primaryExpr()
	if err != nil {
		return nil, err
	}
	for {
		t := p.cur()
		switch {
		case p.isPunct("."):
			p.next()
			nt := p.cur()
			if nt.Kind != TokIdent && nt.Kind != TokKeyword {
				return nil, p.errorf(nt, "expected property name after '.'")
			}
			p.next()
			x = &Member{pos: p.at(t), X: x, Name: nt.Text}
		case p.isPunct("["):
			p.next()
			i, err := p.expression()
			if err != nil {
				return nil, err
			}
			if err := p.expectPunct("]"); err != nil {
				return nil, err
			}
			x = &Index{pos: p.at(t), X: x, I: i}
		case p.isPunct("("):
			p.next()
			var args []Expr
			for !p.isPunct(")") {
				a, err := p.assignExpr()
				if err != nil {
					return nil, err
				}
				args = append(args, a)
				if !p.acceptPunct(",") {
					break
				}
			}
			if err := p.expectPunct(")"); err != nil {
				return nil, err
			}
			x = &Call{pos: p.at(t), Fn: x, Args: args}
		default:
			return x, nil
		}
	}
}

func (p *Parser) primaryExpr() (Expr, error) {
	t := p.cur()
	switch t.Kind {
	case TokNumber:
		p.next()
		return &NumberLit{pos: p.at(t), Value: t.Num}, nil
	case TokString:
		p.next()
		return &StringLit{pos: p.at(t), Value: t.Text}, nil
	case TokIdent:
		p.next()
		return &Ident{pos: p.at(t), Name: t.Text}, nil
	case TokKeyword:
		switch t.Text {
		case "true", "false":
			p.next()
			return &BoolLit{pos: p.at(t), Value: t.Text == "true"}, nil
		case "null":
			p.next()
			return &NullLit{pos: p.at(t)}, nil
		case "undefined":
			p.next()
			return &UndefinedLit{pos: p.at(t)}, nil
		case "this":
			p.next()
			return &ThisLit{pos: p.at(t)}, nil
		case "function":
			p.next()
			name := ""
			if p.cur().Kind == TokIdent {
				name = p.next().Text
			}
			return p.funcRest(name, t)
		}
	case TokPunct:
		switch t.Text {
		case "(":
			p.next()
			x, err := p.expression()
			if err != nil {
				return nil, err
			}
			if err := p.expectPunct(")"); err != nil {
				return nil, err
			}
			return x, nil
		case "[":
			p.next()
			a := &ArrayLit{pos: p.at(t)}
			for !p.isPunct("]") {
				e, err := p.assignExpr()
				if err != nil {
					return nil, err
				}
				a.Elems = append(a.Elems, e)
				if !p.acceptPunct(",") {
					break
				}
			}
			if err := p.expectPunct("]"); err != nil {
				return nil, err
			}
			return a, nil
		case "{":
			p.next()
			o := &ObjectLit{pos: p.at(t)}
			for !p.isPunct("}") {
				kt := p.cur()
				var key string
				switch kt.Kind {
				case TokIdent, TokKeyword, TokString:
					key = kt.Text
				case TokNumber:
					key = kt.Text
				default:
					return nil, p.errorf(kt, "expected property key")
				}
				p.next()
				if err := p.expectPunct(":"); err != nil {
					return nil, err
				}
				v, err := p.assignExpr()
				if err != nil {
					return nil, err
				}
				o.Keys = append(o.Keys, key)
				o.Values = append(o.Values, v)
				if !p.acceptPunct(",") {
					break
				}
			}
			if err := p.expectPunct("}"); err != nil {
				return nil, err
			}
			return o, nil
		}
	}
	return nil, p.errorf(t, "unexpected token %v", t)
}
