package js

import "testing"

// FuzzParse drives the JavaScript parser with arbitrary source: it must
// never panic — it either errors or produces an AST.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"",
		"var x = 1 + 2 * 3;",
		"function f(a, b) { return a < b ? a : b; }",
		"for (var i = 0; i < 10; i++) { s += i; }",
		"switch (x) { case 1: break; default: y(); }",
		"try { f(); } catch (e) { g(e); } finally { h(); }",
		"var o = {a: [1, 2], \"b\": function() { return this; }};",
		"x &= 1;",
		"((((",
		"1 .. 2",
		"\"unterminated",
		"/* unterminated",
		"a ? b : c ? d : e;",
		"delete o.p; ~x; 1 << 2 >> 3;",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		prog, err := Parse(src)
		if err == nil && prog == nil {
			t.Fatal("nil program without error")
		}
	})
}

// runFuzzSeeds seeds both FuzzRun and the differential FuzzVMvsInterp, so
// any program the run fuzzer has ever found interesting also becomes a
// two-engine parity probe.
var runFuzzSeeds = []string{
	"var x = 1; x += 2;",
	"var a = []; a.push(1); a[5] = 2; a.length = 1;",
	"function f(n) { return n <= 0 ? 0 : f(n - 1); } f(3);",
	"var s = \"ab\".toUpperCase() + [1,2].join(\"-\");",
	"for (var k in {a:1}) { var v = k; }",
	"try { throw 1; } catch (e) { var c = e; }",
	"JSON.parse(JSON.stringify({a: [1, null, true]}));",
	"while (x) { }",
	"undefinedVar();",
}

// FuzzRun executes arbitrary programs under a tight operation budget: the
// interpreter must never panic and must stop runaway scripts.
func FuzzRun(f *testing.F) {
	for _, s := range runFuzzSeeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		in := NewInterp()
		in.InstallStdlib(nil)
		in.SetOpLimit(100_000)
		_ = in.RunSource(src) // errors are expected; panics are not
	})
}
