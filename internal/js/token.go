// Package js implements a JavaScript-subset interpreter: a lexer, a Pratt
// parser producing an AST, and a tree-walking evaluator with closures,
// objects, arrays, and a host-object protocol for browser bindings.
//
// The subset covers what mobile Web application logic needs — the paper's
// workloads are event callbacks that manipulate DOM state, register
// requestAnimationFrame callbacks, and run computational kernels. Notably,
// the interpreter meters its own execution: every evaluation step counts
// toward an operation total that the browser model converts into CPU cycles,
// so callback cost is program- and input-dependent rather than declared.
package js

import (
	"fmt"
	"strings"
	"unicode"
	"unicode/utf8"
)

// TokKind classifies lexical tokens.
type TokKind int

const (
	// TokEOF marks the end of input.
	TokEOF TokKind = iota
	// TokIdent is an identifier.
	TokIdent
	// TokKeyword is a reserved word.
	TokKeyword
	// TokNumber is a numeric literal.
	TokNumber
	// TokString is a string literal (already unquoted).
	TokString
	// TokPunct is an operator or punctuation mark.
	TokPunct
)

func (k TokKind) String() string {
	switch k {
	case TokEOF:
		return "eof"
	case TokIdent:
		return "identifier"
	case TokKeyword:
		return "keyword"
	case TokNumber:
		return "number"
	case TokString:
		return "string"
	case TokPunct:
		return "punctuation"
	default:
		return "unknown"
	}
}

// Token is one lexical unit with its source position.
type Token struct {
	Kind TokKind
	Text string
	Num  float64
	Line int
	Col  int
}

func (t Token) String() string {
	if t.Kind == TokEOF {
		return "end of input"
	}
	return fmt.Sprintf("%q", t.Text)
}

var keywords = map[string]bool{
	"var": true, "let": true, "const": true, "function": true,
	"return": true, "if": true, "else": true, "while": true, "for": true,
	"break": true, "continue": true, "true": true, "false": true,
	"null": true, "undefined": true, "this": true, "typeof": true,
	"new": true, "throw": true, "do": true, "in": true, "of": true,
	"switch": true, "case": true, "default": true,
	"try": true, "catch": true, "finally": true, "delete": true,
}

// SyntaxError reports a lexing or parsing failure with position.
type SyntaxError struct {
	Line, Col int
	Msg       string
}

func (e *SyntaxError) Error() string {
	return fmt.Sprintf("js: syntax error at %d:%d: %s", e.Line, e.Col, e.Msg)
}

// Lexer turns source text into tokens.
type Lexer struct {
	src       string
	pos       int
	line, col int
}

// NewLexer returns a lexer over src.
func NewLexer(src string) *Lexer {
	return &Lexer{src: src, line: 1, col: 1}
}

// Lex tokenizes the whole input.
func Lex(src string) ([]Token, error) {
	l := NewLexer(src)
	var toks []Token
	for {
		t, err := l.Next()
		if err != nil {
			return nil, err
		}
		toks = append(toks, t)
		if t.Kind == TokEOF {
			return toks, nil
		}
	}
}

func (l *Lexer) errorf(format string, args ...any) error {
	return &SyntaxError{Line: l.line, Col: l.col, Msg: fmt.Sprintf(format, args...)}
}

func (l *Lexer) advance(n int) {
	for i := 0; i < n && l.pos < len(l.src); i++ {
		if l.src[l.pos] == '\n' {
			l.line++
			l.col = 1
		} else {
			l.col++
		}
		l.pos++
	}
}

func (l *Lexer) skipSpaceAndComments() error {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			l.advance(1)
		case strings.HasPrefix(l.src[l.pos:], "//"):
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.advance(1)
			}
		case strings.HasPrefix(l.src[l.pos:], "/*"):
			end := strings.Index(l.src[l.pos+2:], "*/")
			if end < 0 {
				return l.errorf("unterminated block comment")
			}
			l.advance(end + 4)
		default:
			return nil
		}
	}
	return nil
}

// puncts are matched longest-first.
var puncts = []string{
	"===", "!==", "<<", ">>", "&&", "||", "==", "!=", "<=", ">=", "++", "--",
	"+=", "-=", "*=", "/=", "%=",
	"{", "}", "(", ")", "[", "]", ";", ",", ".", "?", ":",
	"+", "-", "*", "/", "%", "<", ">", "=", "!", "&", "|", "^", "~",
}

// Next returns the next token.
func (l *Lexer) Next() (Token, error) {
	if err := l.skipSpaceAndComments(); err != nil {
		return Token{}, err
	}
	line, col := l.line, l.col
	if l.pos >= len(l.src) {
		return Token{Kind: TokEOF, Line: line, Col: col}, nil
	}
	c := l.src[l.pos]

	// Identifier or keyword.
	if isIdentStart(rune(c)) {
		start := l.pos
		for l.pos < len(l.src) && isIdentPart(rune(l.src[l.pos])) {
			l.advance(1)
		}
		text := l.src[start:l.pos]
		kind := TokIdent
		if keywords[text] {
			kind = TokKeyword
		}
		return Token{Kind: kind, Text: text, Line: line, Col: col}, nil
	}

	// Number.
	if c >= '0' && c <= '9' || c == '.' && l.pos+1 < len(l.src) && l.src[l.pos+1] >= '0' && l.src[l.pos+1] <= '9' {
		return l.number(line, col)
	}

	// String.
	if c == '"' || c == '\'' {
		return l.str(line, col)
	}

	// Punctuation.
	for _, p := range puncts {
		if strings.HasPrefix(l.src[l.pos:], p) {
			l.advance(len(p))
			return Token{Kind: TokPunct, Text: p, Line: line, Col: col}, nil
		}
	}
	r, _ := utf8.DecodeRuneInString(l.src[l.pos:])
	return Token{}, l.errorf("unexpected character %q", r)
}

func (l *Lexer) number(line, col int) (Token, error) {
	start := l.pos
	seenDot, seenExp := false, false
	if strings.HasPrefix(l.src[l.pos:], "0x") || strings.HasPrefix(l.src[l.pos:], "0X") {
		l.advance(2)
		hexStart := l.pos
		for l.pos < len(l.src) && isHex(l.src[l.pos]) {
			l.advance(1)
		}
		if l.pos == hexStart {
			return Token{}, l.errorf("malformed hex literal")
		}
		var v float64
		for _, d := range l.src[hexStart:l.pos] {
			v = v*16 + float64(hexVal(byte(d)))
		}
		return Token{Kind: TokNumber, Text: l.src[start:l.pos], Num: v, Line: line, Col: col}, nil
	}
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c >= '0' && c <= '9':
			l.advance(1)
		case c == '.' && !seenDot && !seenExp:
			seenDot = true
			l.advance(1)
		case (c == 'e' || c == 'E') && !seenExp:
			seenExp = true
			l.advance(1)
			if l.pos < len(l.src) && (l.src[l.pos] == '+' || l.src[l.pos] == '-') {
				l.advance(1)
			}
		default:
			goto done
		}
	}
done:
	text := l.src[start:l.pos]
	var v float64
	if _, err := fmt.Sscanf(text, "%g", &v); err != nil {
		return Token{}, l.errorf("malformed number %q", text)
	}
	return Token{Kind: TokNumber, Text: text, Num: v, Line: line, Col: col}, nil
}

func (l *Lexer) str(line, col int) (Token, error) {
	quote := l.src[l.pos]
	l.advance(1)
	var b strings.Builder
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == quote {
			l.advance(1)
			return Token{Kind: TokString, Text: b.String(), Line: line, Col: col}, nil
		}
		if c == '\n' {
			return Token{}, l.errorf("newline in string literal")
		}
		if c == '\\' {
			if l.pos+1 >= len(l.src) {
				return Token{}, l.errorf("unterminated escape")
			}
			esc := l.src[l.pos+1]
			switch esc {
			case 'n':
				b.WriteByte('\n')
			case 't':
				b.WriteByte('\t')
			case 'r':
				b.WriteByte('\r')
			case '\\', '\'', '"':
				b.WriteByte(esc)
			case '0':
				b.WriteByte(0)
			default:
				b.WriteByte(esc)
			}
			l.advance(2)
			continue
		}
		b.WriteByte(c)
		l.advance(1)
	}
	return Token{}, l.errorf("unterminated string literal")
}

func isIdentStart(r rune) bool {
	return r == '_' || r == '$' || unicode.IsLetter(r)
}

func isIdentPart(r rune) bool {
	return isIdentStart(r) || unicode.IsDigit(r)
}

func isHex(c byte) bool {
	return c >= '0' && c <= '9' || c >= 'a' && c <= 'f' || c >= 'A' && c <= 'F'
}

func hexVal(c byte) int {
	switch {
	case c >= '0' && c <= '9':
		return int(c - '0')
	case c >= 'a' && c <= 'f':
		return int(c-'a') + 10
	default:
		return int(c-'A') + 10
	}
}
