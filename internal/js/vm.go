package js

import (
	"fmt"
	"math"
	"sync/atomic"
)

// The VM executes the bytecode produced by compiler.go on the same Interp
// state (op counters, op limit, call depth, globals, environments) the tree
// walker uses. The two engines share every semantic helper — getProp, arith,
// toInt32, storeProp/storeIndex, invoke, catchable — so behaviour and op
// accounting are identical by construction; the differential fuzz target
// (FuzzVMvsInterp) and the CI vm-vs-no-vm byte diffs enforce it.

var vmEnabled atomic.Bool

func init() { vmEnabled.Store(true) }

// SetVM enables or disables the bytecode VM process-wide. Disabling restores
// the tree-walking interpreter for subsequently run programs — the -no-vm
// escape hatch in greenbench/greensrv. Outputs must be byte-identical either
// way; only real CPU time changes.
func SetVM(enabled bool) { vmEnabled.Store(enabled) }

// VMEnabled reports whether Run compiles programs to bytecode.
func VMEnabled() bool { return vmEnabled.Load() }

// RunCompiled executes a compiled program in the global scope.
func (in *Interp) RunCompiled(cp *CompiledProgram) error {
	if in.vstack == nil {
		in.vstack = make([]Value, 0, 64)
	}
	_, _, err := in.runSeg(cp.main, cp.u, in.Globals)
	return err
}

// childScope returns the environment a segment's body runs in: a fresh
// frame when the segment defines bindings, the enclosing scope otherwise.
func childScope(sg *segment, env *Env) *Env {
	if sg.scopeless {
		return env
	}
	return NewEnvCap(env, int(sg.locals))
}

// stepAt charges one op against the limit, anchored to a source position —
// the VM's form of step().
func (in *Interp) stepAt(line, col int32) error {
	in.ops++
	if in.ops > in.opLimit {
		return &RuntimeError{Line: int(line), Col: int(col), Msg: "operation limit exceeded (runaway script?)"}
	}
	return nil
}

// runSeg executes one segment in env, truncating this invocation's stack
// frame on the way out. It is the VM analogue of execBlock: function
// declarations hoist at every entry, and ctrl returns propagate to the
// caller exactly like execBlock's.
func (in *Interp) runSeg(sg *segment, u *unit, env *Env) (Value, ctrl, error) {
	base := len(in.vstack)
	v, c, err := in.execSeg(sg, u, env)
	in.vstack = in.vstack[:base]
	return v, c, err
}

// evalSeg runs a mini expression segment (ending in opRet) for its value.
func (in *Interp) evalSeg(sg *segment, u *unit, env *Env) (Value, error) {
	v, _, err := in.runSeg(sg, u, env)
	return v, err
}

func (in *Interp) push(v Value) { in.vstack = append(in.vstack, v) }

func (in *Interp) pop() Value {
	v := in.vstack[len(in.vstack)-1]
	in.vstack = in.vstack[:len(in.vstack)-1]
	return v
}

func (in *Interp) peek() Value { return in.vstack[len(in.vstack)-1] }

func (in *Interp) execSeg(sg *segment, u *unit, env *Env) (Value, ctrl, error) {
	for _, h := range sg.hoists {
		fn := &Function{Name: h.name, Params: h.fn.params, Body: h.fn.srcBody, Env: env, Code: h.fn}
		env.Define(h.name, ObjVal(&Object{Props: map[string]Value{}, Fn: fn}))
	}
	code := sg.code
	for pc := 0; pc < len(code); pc++ {
		is := &code[pc]
		if is.Charge {
			in.ops++
			if in.ops > in.opLimit {
				return Undefined, ctrlNone, &RuntimeError{Line: int(is.Line), Col: int(is.Col), Msg: "operation limit exceeded (runaway script?)"}
			}
		}
		switch is.Op {
		case opStep:
			// charge only

		case opConst:
			in.push(u.consts[is.A])

		case opThis:
			if v, ok := env.Lookup("this"); ok {
				in.push(v)
			} else {
				in.push(Undefined)
			}

		case opLoad:
			name := u.names[is.A]
			v, ok := env.Lookup(name)
			if !ok {
				return Undefined, ctrlNone, &RuntimeError{Line: int(is.Line), Col: int(is.Col), Msg: name + " is not defined"}
			}
			in.push(v)

		case opTypeofName:
			if v, ok := env.Lookup(u.names[is.A]); ok {
				in.push(Str(TypeOf(v)))
			} else {
				in.push(Str("undefined"))
			}

		case opClosure:
			cf := u.fns[is.A]
			fn := &Function{Name: cf.name, Params: cf.params, Body: cf.srcBody, Env: env, Code: cf}
			fv := ObjVal(&Object{Props: map[string]Value{}, Fn: fn})
			if cf.name != "" {
				// Named function expressions can refer to themselves.
				scope := NewEnv(env)
				scope.Define(cf.name, fv)
				fn.Env = scope
			}
			in.push(fv)

		case opPop:
			in.pop()

		case opDup:
			in.push(in.peek())

		case opSwap:
			n := len(in.vstack)
			in.vstack[n-1], in.vstack[n-2] = in.vstack[n-2], in.vstack[n-1]

		case opJmp:
			pc = int(is.A) - 1

		case opJF:
			if !in.pop().Truthy() {
				pc = int(is.A) - 1
			}

		case opJFK:
			if !in.peek().Truthy() {
				pc = int(is.A) - 1
			} else {
				in.pop()
			}

		case opJTK:
			if in.peek().Truthy() {
				pc = int(is.A) - 1
			} else {
				in.pop()
			}

		case opBinop:
			r := in.pop()
			l := in.pop()
			v, err := binop(is, u, l, r)
			if err != nil {
				return Undefined, ctrlNone, err
			}
			in.push(v)

		case opArith:
			r := in.pop()
			l := in.pop()
			v, err := arithByCode(is, u, l, r)
			if err != nil {
				return Undefined, ctrlNone, err
			}
			in.push(v)

		case opArithRev:
			l := in.pop()
			r := in.pop()
			v, err := arithByCode(is, u, l, r)
			if err != nil {
				return Undefined, ctrlNone, err
			}
			in.push(v)

		case opNeg:
			in.push(Num(-in.pop().Number()))

		case opPlus:
			in.push(Num(in.pop().Number()))

		case opNot:
			in.push(Boolean(!in.pop().Truthy()))

		case opBitNot:
			in.push(Num(float64(^toInt32(in.pop().Number()))))

		case opTypeof:
			in.push(Str(TypeOf(in.pop())))

		case opIncDec:
			in.push(Num(in.pop().Number() + float64(is.A)))

		case opPostfix:
			old := in.pop().Number()
			in.push(Num(old))
			in.push(Num(old + float64(is.A)))

		case opGetProp:
			recv := in.pop()
			v, err := in.getProp(is, recv, u.names[is.A])
			if err != nil {
				return Undefined, ctrlNone, err
			}
			in.push(v)

		case opGetIndex:
			idx := in.pop()
			recv := in.pop()
			// Dense-array fast path: an integral in-range index on a plain
			// array reaches Object.Get's Elems[i] branch and nothing else
			// (arrayMethod never matches a numeric name), so the float→string
			// →int round-trip through getProp is pure overhead.
			if recv.kind == KindObject && idx.kind == KindNumber {
				if o := recv.obj; o.IsArray && o.Host == nil &&
					idx.num >= 0 && idx.num < float64(len(o.Elems)) {
					if i := int(idx.num); float64(i) == idx.num {
						in.push(o.Elems[i])
						continue
					}
				}
			}
			v, err := in.getProp(is, recv, idx.Text())
			if err != nil {
				return Undefined, ctrlNone, err
			}
			in.push(v)

		case opStoreName:
			env.Assign(u.names[is.A], in.peek())

		case opStoreNamePop:
			env.Assign(u.names[is.A], in.pop())

		case opLoadSlot:
			e := env
			for n := is.A; n > 0; n-- {
				e = e.parent
			}
			in.push(e.vals[is.B])

		case opStoreSlot:
			e := env
			for n := is.A; n > 0; n-- {
				e = e.parent
			}
			e.vals[is.B] = in.peek()

		case opStoreSlotPop:
			e := env
			for n := is.A; n > 0; n-- {
				e = e.parent
			}
			e.vals[is.B] = in.pop()

		case opStoreProp:
			recv := in.pop()
			if err := in.storeProp(recv, u.names[is.A], in.peek(), int(is.Line), int(is.Col)); err != nil {
				return Undefined, ctrlNone, err
			}

		case opStoreIndex:
			idx := in.pop()
			recv := in.pop()
			// In-range overwrite of a dense array element: SetMetered's
			// Elems[i] = v branch, which neither grows nor charges.
			if recv.kind == KindObject && idx.kind == KindNumber {
				if o := recv.obj; o.IsArray && o.Host == nil &&
					idx.num >= 0 && idx.num < float64(len(o.Elems)) {
					if i := int(idx.num); float64(i) == idx.num {
						o.Elems[i] = in.peek()
						continue
					}
				}
			}
			if err := in.storeIndex(recv, idx, in.peek(), int(is.Line), int(is.Col)); err != nil {
				return Undefined, ctrlNone, err
			}

		case opDelProp:
			if o := in.pop().Object(); o != nil {
				o.Delete(u.names[is.A])
			}
			in.push(True)

		case opDelIndex:
			idx := in.pop()
			if o := in.pop().Object(); o != nil {
				o.Delete(idx.Text())
			}
			in.push(True)

		case opDefine:
			env.Define(u.names[is.A], in.pop())

		case opMakeArray:
			n := int(is.A)
			arr := NewArray()
			if n > 0 {
				arr.Elems = append(arr.Elems, in.vstack[len(in.vstack)-n:]...)
				in.vstack = in.vstack[:len(in.vstack)-n]
			}
			in.push(ObjVal(arr))

		case opMakeObj:
			keys := u.keysets[is.A]
			n := len(keys)
			o := NewObject()
			vals := in.vstack[len(in.vstack)-n:]
			for i, k := range keys {
				o.Set(k, vals[i])
			}
			in.vstack = in.vstack[:len(in.vstack)-n]
			in.push(ObjVal(o))

		case opCheckCall:
			o := in.peek().Object()
			if o == nil || o.Fn == nil {
				return Undefined, ctrlNone, &RuntimeError{Line: int(is.Line), Col: int(is.Col), Msg: u.names[is.A] + " is not a function"}
			}

		case opCall:
			argc := int(is.A)
			args := popArgs(in, argc)
			fn := in.pop()
			this := in.pop()
			v, err := in.invoke(fn.Object().Fn, this, args, is)
			if err != nil {
				return Undefined, ctrlNone, err
			}
			in.push(v)

		case opCheckCtor:
			o := in.peek().Object()
			if o == nil || o.Fn == nil {
				return Undefined, ctrlNone, &RuntimeError{Line: int(is.Line), Col: int(is.Col), Msg: "not a constructor"}
			}

		case opNew:
			argc := int(is.A)
			args := popArgs(in, argc)
			fn := in.pop()
			this := ObjVal(NewObject())
			ret, err := in.invoke(fn.Object().Fn, this, args, is)
			if err != nil {
				return Undefined, ctrlNone, err
			}
			if ret.Kind() == KindObject {
				in.push(ret)
			} else {
				in.push(this)
			}

		case opRet:
			return in.pop(), ctrlReturn, nil

		case opBreak:
			return Undefined, ctrlBreak, nil

		case opContinue:
			return Undefined, ctrlContinue, nil

		case opThrow:
			v := in.pop()
			return Undefined, ctrlNone, &RuntimeError{Line: int(is.Line), Col: int(is.Col), Msg: "uncaught: " + v.Text(), Thrown: &v}

		case opRunBlock:
			sub := u.segs[is.A]
			v, c, err := in.runSeg(sub, u, childScope(sub, env))
			if err != nil {
				return Undefined, ctrlNone, err
			}
			if c != ctrlNone {
				return v, c, nil
			}

		case opRunLoopBody:
			sub := u.segs[is.A]
			v, c, err := in.runSeg(sub, u, childScope(sub, env))
			if err != nil {
				return Undefined, ctrlNone, err
			}
			switch c {
			case ctrlBreak:
				pc = int(is.B) - 1
			case ctrlReturn:
				return v, c, nil
			}
			// ctrlContinue and ctrlNone fall through to the per-iteration
			// step, exactly like the interpreter's loop bodies.

		case opPushScope:
			env = NewEnvCap(env, int(is.A))

		case opPopScope:
			env = env.parent

		case opForIn:
			v, c, err := in.vmForIn(u.forins[is.A], u, env)
			if err != nil {
				return Undefined, ctrlNone, err
			}
			if c != ctrlNone {
				return v, c, nil
			}

		case opSwitch:
			v, c, err := in.vmSwitch(u.switches[is.A], u, env)
			if err != nil || c == ctrlReturn || c == ctrlContinue {
				return v, c, err
			}

		case opTry:
			v, c, err := in.vmTry(u.tries[is.A], u, env)
			if err != nil {
				return Undefined, ctrlNone, err
			}
			if c != ctrlNone {
				return v, c, nil
			}

		case opFail:
			return Undefined, ctrlNone, &RuntimeError{Line: int(is.Line), Col: int(is.Col), Msg: u.names[is.A]}

		default:
			return Undefined, ctrlNone, &RuntimeError{Line: int(is.Line), Col: int(is.Col), Msg: fmt.Sprintf("vm: unknown opcode %d", is.Op)}
		}
	}
	return Undefined, ctrlNone, nil
}

func popArgs(in *Interp, argc int) []Value {
	var args []Value
	if argc > 0 {
		args = append(args, in.vstack[len(in.vstack)-argc:]...)
		in.vstack = in.vstack[:len(in.vstack)-argc]
	}
	return args
}

// vmForIn mirrors exec's ForInStmt case: scope with the loop variable,
// body in a child scope per key, per-iteration charge after the body.
func (in *Interp) vmForIn(p *forinPlan, u *unit, env *Env) (Value, ctrl, error) {
	x := in.pop()
	o := x.Object()
	if o == nil {
		return Undefined, ctrlNone, nil // for-in over non-object: no-op
	}
	scope := NewEnv(env)
	scope.Define(p.name, Undefined)
	for _, k := range o.Keys() {
		scope.Assign(p.name, Str(k))
		v, c, err := in.runSeg(p.body, u, childScope(p.body, scope))
		if err != nil {
			return Undefined, ctrlNone, err
		}
		if c == ctrlBreak {
			break
		}
		if c == ctrlReturn {
			return v, c, nil
		}
		if err := in.stepAt(p.line, p.col); err != nil {
			return Undefined, ctrlNone, err
		}
	}
	return Undefined, ctrlNone, nil
}

// vmSwitch mirrors execSwitch: one shared clause scope, case values
// evaluated (and charged) only until the first strict-equality match,
// fall-through from the matched clause, default interleaved in source order.
func (in *Interp) vmSwitch(p *switchPlan, u *unit, env *Env) (Value, ctrl, error) {
	tag := in.pop()
	scope := NewEnv(env)
	start := -1
	for i, vs := range p.caseVals {
		v, err := in.evalSeg(vs, u, scope)
		if err != nil {
			return Undefined, ctrlNone, err
		}
		if tag.StrictEquals(v) {
			start = i
			break
		}
	}
	first := -1
	for i, cl := range p.clauses {
		if cl.caseIdx == start {
			first = i
			break
		}
	}
	if first < 0 {
		return Undefined, ctrlNone, nil
	}
	for _, cl := range p.clauses[first:] {
		v, c, err := in.runSeg(cl.body, u, scope)
		if err != nil || c == ctrlReturn || c == ctrlContinue {
			return v, c, err
		}
		if c == ctrlBreak {
			break
		}
	}
	return Undefined, ctrlNone, nil
}

// vmTry mirrors execTry, including finally's control flow overriding the
// try/catch outcome and the uncatchability of resource-limit errors.
func (in *Interp) vmTry(p *tryPlan, u *unit, env *Env) (Value, ctrl, error) {
	v, c, err := in.runSeg(p.body, u, childScope(p.body, env))
	if err != nil && p.catch != nil && catchable(err) {
		scope := env
		if p.catchName != "" || !p.catch.scopeless {
			scope = NewEnv(env)
		}
		if p.catchName != "" {
			scope.Define(p.catchName, thrownValue(err))
		}
		v, c, err = in.runSeg(p.catch, u, scope)
	}
	if p.finally != nil {
		fv, fc, ferr := in.runSeg(p.finally, u, childScope(p.finally, env))
		if ferr != nil {
			return Undefined, ctrlNone, ferr
		}
		if fc != ctrlNone {
			return fv, fc, nil
		}
	}
	return v, c, err
}

// binop applies a full binary operator (equality, relational, arithmetic) —
// the VM form of evalBinary's operator dispatch. The operator was resolved
// to an integer code at compile time (Instr.B); names[A] keeps the source
// spelling for the unhandled-operator diagnostic.
func binop(is *Instr, u *unit, l, r Value) (Value, error) {
	switch is.B {
	case cmpStrictEq:
		return Boolean(l.StrictEquals(r)), nil
	case cmpStrictNe:
		return Boolean(!l.StrictEquals(r)), nil
	case cmpLooseEq:
		return Boolean(l.LooseEquals(r)), nil
	case cmpLooseNe:
		return Boolean(!l.LooseEquals(r)), nil
	case cmpLt, cmpGt, cmpLe, cmpGe:
		if l.kind == KindNumber && r.kind == KindNumber {
			switch is.B {
			case cmpLt:
				return Boolean(l.num < r.num), nil
			case cmpGt:
				return Boolean(l.num > r.num), nil
			case cmpLe:
				return Boolean(l.num <= r.num), nil
			default:
				return Boolean(l.num >= r.num), nil
			}
		}
		if l.kind == KindString && r.kind == KindString {
			a, b := l.str, r.str
			switch is.B {
			case cmpLt:
				return Boolean(a < b), nil
			case cmpGt:
				return Boolean(a > b), nil
			case cmpLe:
				return Boolean(a <= b), nil
			default:
				return Boolean(a >= b), nil
			}
		}
		a, b := l.Number(), r.Number()
		switch is.B {
		case cmpLt:
			return Boolean(a < b), nil
		case cmpGt:
			return Boolean(a > b), nil
		case cmpLe:
			return Boolean(a <= b), nil
		default:
			return Boolean(a >= b), nil
		}
	default:
		return arithByCode(is, u, l, r)
	}
}

// arithByCode is arith() dispatched on the compile-time operator code, with
// the two-number fast path inlined. Semantics match arith() exactly.
func arithByCode(is *Instr, u *unit, l, r Value) (Value, error) {
	if l.kind == KindNumber && r.kind == KindNumber {
		switch is.B {
		case arithAdd:
			return Num(l.num + r.num), nil
		case arithSub:
			return Num(l.num - r.num), nil
		case arithMul:
			return Num(l.num * r.num), nil
		case arithDiv:
			return Num(l.num / r.num), nil
		}
	}
	if is.B == arithAdd {
		if l.kind == KindString || r.kind == KindString {
			return Str(l.Text() + r.Text()), nil
		}
		return Num(l.Number() + r.Number()), nil
	}
	a, b := l.Number(), r.Number()
	switch is.B {
	case arithSub:
		return Num(a - b), nil
	case arithMul:
		return Num(a * b), nil
	case arithDiv:
		return Num(a / b), nil
	case arithMod:
		return Num(math.Mod(a, b)), nil
	case arithBand:
		return Num(float64(toInt32(a) & toInt32(b))), nil
	case arithBor:
		return Num(float64(toInt32(a) | toInt32(b))), nil
	case arithBxor:
		return Num(float64(toInt32(a) ^ toInt32(b))), nil
	case arithShl:
		return Num(float64(toInt32(a) << (uint32(toInt32(b)) & 31))), nil
	case arithShr:
		return Num(float64(toInt32(a) >> (uint32(toInt32(b)) & 31))), nil
	default:
		return arith(is, u.names[is.A], l, r) // unhandled-operator diagnostic
	}
}
