package js

import (
	"fmt"
	"math"
	"strings"
)

// RuntimeError is a script execution failure (including thrown values).
type RuntimeError struct {
	Line, Col int
	Msg       string
	Thrown    *Value // non-nil for throw statements
}

func (e *RuntimeError) Error() string {
	return fmt.Sprintf("js: runtime error at %d:%d: %s", e.Line, e.Col, e.Msg)
}

// control-flow signals distinguished from real errors inside the evaluator.
type ctrl int

const (
	ctrlNone ctrl = iota
	ctrlReturn
	ctrlBreak
	ctrlContinue
)

// Interp evaluates programs. It meters execution: every AST node evaluation
// adds to Ops, which the browser layer converts into CPU cycles so that
// callback cost reflects the program actually run. ExtraOps lets host
// builtins (e.g. the synthetic compute kernel) charge additional cost.
type Interp struct {
	Globals *Env

	ops      int64
	extraOps int64
	opLimit  int64

	depth    int
	maxDepth int

	// vstack is the bytecode VM's shared value stack (see vm.go). Kept on
	// the interpreter so nested invocations reuse one backing array.
	vstack []Value
}

// DefaultOpLimit bounds a single Run/CallFunction to catch runaway scripts.
const DefaultOpLimit = 200_000_000

// NewInterp returns an interpreter with an empty global scope.
func NewInterp() *Interp {
	return &Interp{
		Globals:  NewEnv(nil),
		opLimit:  DefaultOpLimit,
		maxDepth: 512,
	}
}

// SetOpLimit bounds the number of interpreter operations per entry point.
func (in *Interp) SetOpLimit(n int64) { in.opLimit = n }

// Ops reports interpreter operations performed so far, including extra ops
// charged by host builtins.
func (in *Interp) Ops() int64 { return in.ops + in.extraOps }

// ResetOps zeroes the operation counters and returns the previous total.
// The browser calls this around each callback to attribute cost.
func (in *Interp) ResetOps() int64 {
	t := in.Ops()
	in.ops = 0
	in.extraOps = 0
	return t
}

// ChargeOps lets native builtins add explicit cost (e.g. a synthetic
// compute kernel or a big string operation).
func (in *Interp) ChargeOps(n int64) {
	if n > 0 {
		in.extraOps += n
	}
}

func (in *Interp) step(n Node) error {
	in.ops++
	if in.ops > in.opLimit {
		line, col := n.Pos()
		return &RuntimeError{Line: line, Col: col, Msg: "operation limit exceeded (runaway script?)"}
	}
	return nil
}

func rtErr(n Node, format string, args ...any) error {
	line, col := n.Pos()
	return &RuntimeError{Line: line, Col: col, Msg: fmt.Sprintf(format, args...)}
}

// Run executes a program in the global scope. When the VM is enabled the
// program is compiled to bytecode first; op accounting is identical either
// way.
func (in *Interp) Run(prog *Program) error {
	if VMEnabled() {
		return in.RunCompiled(Compile(prog))
	}
	_, _, err := in.execBlock(prog.Body, in.Globals)
	return err
}

// RunSource parses and executes source text in the global scope.
func (in *Interp) RunSource(src string) error {
	prog, err := Parse(src)
	if err != nil {
		return err
	}
	return in.Run(prog)
}

// CallFunction invokes a function value with the given this and arguments.
func (in *Interp) CallFunction(fn Value, this Value, args []Value) (Value, error) {
	o := fn.Object()
	if o == nil || o.Fn == nil {
		return Undefined, &RuntimeError{Msg: fmt.Sprintf("%s is not a function", fn.Text())}
	}
	return in.invoke(o.Fn, this, args, nil)
}

func (in *Interp) invoke(f *Function, this Value, args []Value, at Node) (Value, error) {
	if f.Native != nil {
		in.ops++ // native call overhead
		return f.Native(in, this, args)
	}
	in.depth++
	defer func() { in.depth-- }()
	if in.depth > in.maxDepth {
		if at == nil {
			at = pos{}
		}
		return Undefined, rtErr(at, "call stack overflow (%d frames)", in.maxDepth)
	}
	var env *Env
	if f.Code != nil {
		env = NewEnvCap(f.Env, f.Code.locals)
	} else {
		env = NewEnv(f.Env)
	}
	for i, p := range f.Params {
		if i < len(args) {
			env.Define(p, args[i])
		} else {
			env.Define(p, Undefined)
		}
	}
	if f.Code != nil {
		// Bytecode path: same frame setup, segment execution instead of a
		// tree walk. The arguments array is skipped when the body provably
		// never mentions it — a pure allocation saving, ops are unaffected.
		if f.Code.needArgs {
			env.Define("arguments", ObjVal(NewArray(args...)))
		}
		env.Define("this", this)
		v, c, err := in.runSeg(f.Code.body, f.Code.u, env)
		if err != nil {
			return Undefined, err
		}
		if c == ctrlReturn {
			return v, nil
		}
		return Undefined, nil
	}
	env.Define("arguments", ObjVal(NewArray(args...)))
	env.Define("this", this)
	v, c, err := in.execBlock(f.Body, env)
	if err != nil {
		return Undefined, err
	}
	if c == ctrlReturn {
		return v, nil
	}
	return Undefined, nil
}

func (in *Interp) execBlock(body []Stmt, env *Env) (Value, ctrl, error) {
	// Hoist function declarations so mutual recursion works.
	for _, s := range body {
		if fd, ok := s.(*FuncDecl); ok {
			fn := &Function{Name: fd.Name, Params: fd.Fn.Params, Body: fd.Fn.Body, Env: env}
			env.Define(fd.Name, ObjVal(&Object{Props: map[string]Value{}, Fn: fn}))
		}
	}
	for _, s := range body {
		v, c, err := in.exec(s, env)
		if err != nil {
			return Undefined, ctrlNone, err
		}
		if c != ctrlNone {
			return v, c, nil
		}
	}
	return Undefined, ctrlNone, nil
}

func (in *Interp) exec(s Stmt, env *Env) (Value, ctrl, error) {
	if err := in.step(s); err != nil {
		return Undefined, ctrlNone, err
	}
	switch st := s.(type) {
	case *VarDecl:
		v := Undefined
		if st.Init != nil {
			var err error
			v, err = in.eval(st.Init, env)
			if err != nil {
				return Undefined, ctrlNone, err
			}
		}
		env.Define(st.Name, v)

	case *VarDeclGroup:
		for _, d := range st.Decls {
			if _, _, err := in.exec(d, env); err != nil {
				return Undefined, ctrlNone, err
			}
		}

	case *FuncDecl:
		// Hoisted by execBlock; nothing to do at execution position.

	case *ExprStmt:
		if _, err := in.eval(st.X, env); err != nil {
			return Undefined, ctrlNone, err
		}

	case *IfStmt:
		cond, err := in.eval(st.Cond, env)
		if err != nil {
			return Undefined, ctrlNone, err
		}
		if cond.Truthy() {
			return in.execBlock(st.Then, NewEnv(env))
		}
		if st.Else != nil {
			return in.execBlock(st.Else, NewEnv(env))
		}

	case *WhileStmt:
		for {
			cond, err := in.eval(st.Cond, env)
			if err != nil {
				return Undefined, ctrlNone, err
			}
			if !cond.Truthy() {
				break
			}
			v, c, err := in.execBlock(st.Body, NewEnv(env))
			if err != nil {
				return Undefined, ctrlNone, err
			}
			if c == ctrlBreak {
				break
			}
			if c == ctrlReturn {
				return v, c, nil
			}
			if err := in.step(st); err != nil {
				return Undefined, ctrlNone, err
			}
		}

	case *DoWhileStmt:
		for {
			v, c, err := in.execBlock(st.Body, NewEnv(env))
			if err != nil {
				return Undefined, ctrlNone, err
			}
			if c == ctrlBreak {
				break
			}
			if c == ctrlReturn {
				return v, c, nil
			}
			cond, err := in.eval(st.Cond, env)
			if err != nil {
				return Undefined, ctrlNone, err
			}
			if !cond.Truthy() {
				break
			}
			if err := in.step(st); err != nil {
				return Undefined, ctrlNone, err
			}
		}

	case *ForStmt:
		scope := NewEnv(env)
		if st.Init != nil {
			if _, _, err := in.exec(st.Init, scope); err != nil {
				return Undefined, ctrlNone, err
			}
		}
		for {
			if st.Cond != nil {
				cond, err := in.eval(st.Cond, scope)
				if err != nil {
					return Undefined, ctrlNone, err
				}
				if !cond.Truthy() {
					break
				}
			}
			v, c, err := in.execBlock(st.Body, NewEnv(scope))
			if err != nil {
				return Undefined, ctrlNone, err
			}
			if c == ctrlBreak {
				break
			}
			if c == ctrlReturn {
				return v, c, nil
			}
			if st.Post != nil {
				if _, err := in.eval(st.Post, scope); err != nil {
					return Undefined, ctrlNone, err
				}
			}
			if err := in.step(st); err != nil {
				return Undefined, ctrlNone, err
			}
		}

	case *ReturnStmt:
		v := Undefined
		if st.X != nil {
			var err error
			v, err = in.eval(st.X, env)
			if err != nil {
				return Undefined, ctrlNone, err
			}
		}
		return v, ctrlReturn, nil

	case *BreakStmt:
		return Undefined, ctrlBreak, nil

	case *ContinueStmt:
		return Undefined, ctrlContinue, nil

	case *ThrowStmt:
		v, err := in.eval(st.X, env)
		if err != nil {
			return Undefined, ctrlNone, err
		}
		line, col := st.Pos()
		return Undefined, ctrlNone, &RuntimeError{Line: line, Col: col, Msg: "uncaught: " + v.Text(), Thrown: &v}

	case *BlockStmt:
		return in.execBlock(st.Body, NewEnv(env))

	case *SwitchStmt:
		return in.execSwitch(st, env)

	case *ForInStmt:
		x, err := in.eval(st.X, env)
		if err != nil {
			return Undefined, ctrlNone, err
		}
		o := x.Object()
		if o == nil {
			return Undefined, ctrlNone, nil // for-in over non-object: no-op
		}
		scope := NewEnv(env)
		scope.Define(st.Name, Undefined)
		for _, k := range o.Keys() {
			scope.Assign(st.Name, Str(k))
			v, c, err := in.execBlock(st.Body, NewEnv(scope))
			if err != nil {
				return Undefined, ctrlNone, err
			}
			if c == ctrlBreak {
				break
			}
			if c == ctrlReturn {
				return v, c, nil
			}
			if err := in.step(st); err != nil {
				return Undefined, ctrlNone, err
			}
		}

	case *TryStmt:
		return in.execTry(st, env)

	default:
		return Undefined, ctrlNone, rtErr(s, "unhandled statement %T", s)
	}
	return Undefined, ctrlNone, nil
}

// execSwitch implements switch with strict-equality matching and
// fall-through across case bodies.
func (in *Interp) execSwitch(st *SwitchStmt, env *Env) (Value, ctrl, error) {
	tag, err := in.eval(st.Tag, env)
	if err != nil {
		return Undefined, ctrlNone, err
	}
	scope := NewEnv(env)
	start := -1
	for i, c := range st.Cases {
		v, err := in.eval(c.Value, scope)
		if err != nil {
			return Undefined, ctrlNone, err
		}
		if tag.StrictEquals(v) {
			start = i
			break
		}
	}
	// Lay the clauses out in source order (the default interleaves among
	// the cases at its declared position), then run from the matched
	// clause with fall-through until break/return.
	type clause struct {
		body    []Stmt
		caseIdx int // -1 for the default clause
	}
	var clauses []clause
	for pos := 0; pos <= len(st.Cases); pos++ {
		if st.Default != nil && st.DefaultAt == pos {
			clauses = append(clauses, clause{st.Default, -1})
		}
		if pos < len(st.Cases) {
			clauses = append(clauses, clause{st.Cases[pos].Body, pos})
		}
	}
	// start == -1 selects the default clause (caseIdx -1); otherwise the
	// matched case.
	first := -1
	for i, cl := range clauses {
		if cl.caseIdx == start {
			first = i
			break
		}
	}
	if first < 0 {
		return Undefined, ctrlNone, nil
	}
	for _, cl := range clauses[first:] {
		v, c, err := in.execBlock(cl.body, scope)
		if err != nil || c == ctrlReturn || c == ctrlContinue {
			return v, c, err
		}
		if c == ctrlBreak {
			break
		}
	}
	return Undefined, ctrlNone, nil
}

// execTry implements try/catch/finally. Thrown script values are caught;
// genuine interpreter faults (undefined variable, not-a-function) are also
// catchable, matching JavaScript, but resource-limit errors (op limit,
// stack overflow) are not, so runaway scripts cannot shield themselves.
func (in *Interp) execTry(st *TryStmt, env *Env) (Value, ctrl, error) {
	v, c, err := in.execBlock(st.Body, NewEnv(env))
	if err != nil && st.Catch != nil && catchable(err) {
		scope := NewEnv(env)
		if st.CatchName != "" {
			scope.Define(st.CatchName, thrownValue(err))
		}
		v, c, err = in.execBlock(st.Catch, scope)
	}
	if st.Finally != nil {
		fv, fc, ferr := in.execBlock(st.Finally, NewEnv(env))
		// finally's own control flow overrides the try/catch outcome.
		if ferr != nil {
			return Undefined, ctrlNone, ferr
		}
		if fc != ctrlNone {
			return fv, fc, nil
		}
	}
	return v, c, err
}

func catchable(err error) bool {
	re, ok := err.(*RuntimeError)
	if !ok {
		return false
	}
	return !strings.Contains(re.Msg, "operation limit") && !strings.Contains(re.Msg, "stack overflow")
}

func thrownValue(err error) Value {
	if re, ok := err.(*RuntimeError); ok {
		if re.Thrown != nil {
			return *re.Thrown
		}
		return Str(re.Msg)
	}
	return Str(err.Error())
}

func (in *Interp) eval(e Expr, env *Env) (Value, error) {
	if err := in.step(e); err != nil {
		return Undefined, err
	}
	switch x := e.(type) {
	case *NumberLit:
		return Num(x.Value), nil
	case *StringLit:
		return Str(x.Value), nil
	case *BoolLit:
		return Boolean(x.Value), nil
	case *NullLit:
		return Null, nil
	case *UndefinedLit:
		return Undefined, nil
	case *ThisLit:
		if v, ok := env.Lookup("this"); ok {
			return v, nil
		}
		return Undefined, nil

	case *Ident:
		if v, ok := env.Lookup(x.Name); ok {
			return v, nil
		}
		return Undefined, rtErr(x, "%s is not defined", x.Name)

	case *ArrayLit:
		arr := NewArray()
		for _, el := range x.Elems {
			v, err := in.eval(el, env)
			if err != nil {
				return Undefined, err
			}
			arr.Elems = append(arr.Elems, v)
		}
		return ObjVal(arr), nil

	case *ObjectLit:
		o := NewObject()
		for i, k := range x.Keys {
			v, err := in.eval(x.Values[i], env)
			if err != nil {
				return Undefined, err
			}
			o.Set(k, v)
		}
		return ObjVal(o), nil

	case *FuncLit:
		fn := &Function{Name: x.Name, Params: x.Params, Body: x.Body, Env: env}
		fv := ObjVal(&Object{Props: map[string]Value{}, Fn: fn})
		if x.Name != "" {
			// Named function expressions can refer to themselves.
			scope := NewEnv(env)
			scope.Define(x.Name, fv)
			fn.Env = scope
		}
		return fv, nil

	case *Unary:
		return in.evalUnary(x, env)

	case *Postfix:
		old, err := in.eval(x.X, env)
		if err != nil {
			return Undefined, err
		}
		delta := 1.0
		if x.Op == "--" {
			delta = -1
		}
		if err := in.assignTo(x.X, Num(old.Number()+delta), env); err != nil {
			return Undefined, err
		}
		return Num(old.Number()), nil

	case *Binary:
		return in.evalBinary(x, env)

	case *Logical:
		l, err := in.eval(x.L, env)
		if err != nil {
			return Undefined, err
		}
		if x.Op == "&&" {
			if !l.Truthy() {
				return l, nil
			}
		} else {
			if l.Truthy() {
				return l, nil
			}
		}
		return in.eval(x.R, env)

	case *Cond:
		t, err := in.eval(x.Test, env)
		if err != nil {
			return Undefined, err
		}
		if t.Truthy() {
			return in.eval(x.Then, env)
		}
		return in.eval(x.Else, env)

	case *Assign:
		v, err := in.eval(x.Value, env)
		if err != nil {
			return Undefined, err
		}
		if x.Op != "=" {
			old, err := in.eval(x.Target, env)
			if err != nil {
				return Undefined, err
			}
			v, err = arith(x, x.Op[:1], old, v)
			if err != nil {
				return Undefined, err
			}
		}
		if err := in.assignTo(x.Target, v, env); err != nil {
			return Undefined, err
		}
		return v, nil

	case *Member:
		recv, err := in.eval(x.X, env)
		if err != nil {
			return Undefined, err
		}
		return in.getProp(x, recv, x.Name)

	case *Index:
		recv, err := in.eval(x.X, env)
		if err != nil {
			return Undefined, err
		}
		idx, err := in.eval(x.I, env)
		if err != nil {
			return Undefined, err
		}
		return in.getProp(x, recv, idx.Text())

	case *Call:
		return in.evalCall(x, env)

	case *New:
		fnv, err := in.eval(x.Fn, env)
		if err != nil {
			return Undefined, err
		}
		o := fnv.Object()
		if o == nil || o.Fn == nil {
			return Undefined, rtErr(x, "not a constructor")
		}
		args, err := in.evalArgs(x.Args, env)
		if err != nil {
			return Undefined, err
		}
		this := ObjVal(NewObject())
		ret, err := in.invoke(o.Fn, this, args, x)
		if err != nil {
			return Undefined, err
		}
		if ret.Kind() == KindObject {
			return ret, nil
		}
		return this, nil

	default:
		return Undefined, rtErr(e, "unhandled expression %T", e)
	}
}

func (in *Interp) evalUnary(x *Unary, env *Env) (Value, error) {
	switch x.Op {
	case "typeof":
		// typeof tolerates undefined variables.
		if id, ok := x.X.(*Ident); ok {
			if v, found := env.Lookup(id.Name); found {
				return Str(TypeOf(v)), nil
			}
			return Str("undefined"), nil
		}
		v, err := in.eval(x.X, env)
		if err != nil {
			return Undefined, err
		}
		return Str(TypeOf(v)), nil
	case "++", "--":
		old, err := in.eval(x.X, env)
		if err != nil {
			return Undefined, err
		}
		delta := 1.0
		if x.Op == "--" {
			delta = -1
		}
		nv := Num(old.Number() + delta)
		if err := in.assignTo(x.X, nv, env); err != nil {
			return Undefined, err
		}
		return nv, nil
	case "delete":
		switch tg := x.X.(type) {
		case *Member:
			recv, err := in.eval(tg.X, env)
			if err != nil {
				return Undefined, err
			}
			if o := recv.Object(); o != nil {
				o.Delete(tg.Name)
			}
			return True, nil
		case *Index:
			recv, err := in.eval(tg.X, env)
			if err != nil {
				return Undefined, err
			}
			idx, err := in.eval(tg.I, env)
			if err != nil {
				return Undefined, err
			}
			if o := recv.Object(); o != nil {
				o.Delete(idx.Text())
			}
			return True, nil
		default:
			return True, nil // deleting a variable is a sloppy-mode no-op
		}
	}
	v, err := in.eval(x.X, env)
	if err != nil {
		return Undefined, err
	}
	switch x.Op {
	case "-":
		return Num(-v.Number()), nil
	case "+":
		return Num(v.Number()), nil
	case "!":
		return Boolean(!v.Truthy()), nil
	case "~":
		return Num(float64(^toInt32(v.Number()))), nil
	default:
		return Undefined, rtErr(x, "unhandled unary operator %q", x.Op)
	}
}

func (in *Interp) evalBinary(x *Binary, env *Env) (Value, error) {
	l, err := in.eval(x.L, env)
	if err != nil {
		return Undefined, err
	}
	r, err := in.eval(x.R, env)
	if err != nil {
		return Undefined, err
	}
	switch x.Op {
	case "===":
		return Boolean(l.StrictEquals(r)), nil
	case "!==":
		return Boolean(!l.StrictEquals(r)), nil
	case "==":
		return Boolean(l.LooseEquals(r)), nil
	case "!=":
		return Boolean(!l.LooseEquals(r)), nil
	case "<", ">", "<=", ">=":
		if l.Kind() == KindString && r.Kind() == KindString {
			a, b := l.Text(), r.Text()
			switch x.Op {
			case "<":
				return Boolean(a < b), nil
			case ">":
				return Boolean(a > b), nil
			case "<=":
				return Boolean(a <= b), nil
			default:
				return Boolean(a >= b), nil
			}
		}
		a, b := l.Number(), r.Number()
		switch x.Op {
		case "<":
			return Boolean(a < b), nil
		case ">":
			return Boolean(a > b), nil
		case "<=":
			return Boolean(a <= b), nil
		default:
			return Boolean(a >= b), nil
		}
	default:
		return arith(x, x.Op, l, r)
	}
}

func arith(at Node, op string, l, r Value) (Value, error) {
	if op == "+" && (l.Kind() == KindString || r.Kind() == KindString) {
		return Str(l.Text() + r.Text()), nil
	}
	a, b := l.Number(), r.Number()
	switch op {
	case "+":
		return Num(a + b), nil
	case "-":
		return Num(a - b), nil
	case "*":
		return Num(a * b), nil
	case "/":
		return Num(a / b), nil
	case "%":
		return Num(math.Mod(a, b)), nil
	case "&":
		return Num(float64(toInt32(a) & toInt32(b))), nil
	case "|":
		return Num(float64(toInt32(a) | toInt32(b))), nil
	case "^":
		return Num(float64(toInt32(a) ^ toInt32(b))), nil
	case "<<":
		return Num(float64(toInt32(a) << (uint32(toInt32(b)) & 31))), nil
	case ">>":
		return Num(float64(toInt32(a) >> (uint32(toInt32(b)) & 31))), nil
	default:
		return Undefined, rtErr(at, "unhandled operator %q", op)
	}
}

// toInt32 applies JavaScript's ToInt32 conversion (modulo 2³², signed).
func toInt32(f float64) int32 {
	if math.IsNaN(f) || math.IsInf(f, 0) {
		return 0
	}
	return int32(uint32(int64(math.Trunc(f))))
}

func (in *Interp) assignTo(target Expr, v Value, env *Env) error {
	switch tg := target.(type) {
	case *Ident:
		env.Assign(tg.Name, v)
		return nil
	case *Member:
		recv, err := in.eval(tg.X, env)
		if err != nil {
			return err
		}
		line, col := tg.Pos()
		return in.storeProp(recv, tg.Name, v, line, col)
	case *Index:
		recv, err := in.eval(tg.X, env)
		if err != nil {
			return err
		}
		idx, err := in.eval(tg.I, env)
		if err != nil {
			return err
		}
		line, col := tg.Pos()
		return in.storeIndex(recv, idx, v, line, col)
	default:
		return rtErr(target, "invalid assignment target %T", target)
	}
}

// storeProp writes recv.name = v with script metering, pinning the error
// position. Shared by the tree-walking assignTo and the VM's store ops so
// both engines fail (and charge) identically.
func (in *Interp) storeProp(recv Value, name string, v Value, line, col int) error {
	o := recv.Object()
	if o == nil {
		return &RuntimeError{Line: line, Col: col, Msg: fmt.Sprintf("cannot set property %q of %s", name, recv.Kind())}
	}
	if err := o.SetMetered(in, name, v); err != nil {
		return positioned(err, line, col)
	}
	return nil
}

// storeIndex writes recv[idx] = v with script metering.
func (in *Interp) storeIndex(recv, idx, v Value, line, col int) error {
	o := recv.Object()
	if o == nil {
		return &RuntimeError{Line: line, Col: col, Msg: fmt.Sprintf("cannot set index of %s", recv.Kind())}
	}
	if err := o.SetMetered(in, idx.Text(), v); err != nil {
		return positioned(err, line, col)
	}
	return nil
}

// positioned fills in the source position of a RuntimeError raised by
// position-blind code (value-layer range checks).
func positioned(err error, line, col int) error {
	if re, ok := err.(*RuntimeError); ok && re.Line == 0 && re.Col == 0 {
		re.Line, re.Col = line, col
	}
	return err
}

func (in *Interp) evalArgs(args []Expr, env *Env) ([]Value, error) {
	out := make([]Value, len(args))
	for i, a := range args {
		v, err := in.eval(a, env)
		if err != nil {
			return nil, err
		}
		out[i] = v
	}
	return out, nil
}

func (in *Interp) evalCall(x *Call, env *Env) (Value, error) {
	var this Value
	var fnv Value
	var err error
	switch f := x.Fn.(type) {
	case *Member:
		this, err = in.eval(f.X, env)
		if err != nil {
			return Undefined, err
		}
		fnv, err = in.getProp(f, this, f.Name)
		if err != nil {
			return Undefined, err
		}
	case *Index:
		this, err = in.eval(f.X, env)
		if err != nil {
			return Undefined, err
		}
		idx, err2 := in.eval(f.I, env)
		if err2 != nil {
			return Undefined, err2
		}
		fnv, err = in.getProp(f, this, idx.Text())
		if err != nil {
			return Undefined, err
		}
	default:
		this = Undefined
		fnv, err = in.eval(x.Fn, env)
		if err != nil {
			return Undefined, err
		}
	}
	o := fnv.Object()
	if o == nil || o.Fn == nil {
		return Undefined, rtErr(x, "%s is not a function", describeCallee(x.Fn))
	}
	args, err := in.evalArgs(x.Args, env)
	if err != nil {
		return Undefined, err
	}
	return in.invoke(o.Fn, this, args, x)
}

func describeCallee(e Expr) string {
	switch f := e.(type) {
	case *Ident:
		return f.Name
	case *Member:
		return describeCallee(f.X) + "." + f.Name
	default:
		return "expression"
	}
}

// getProp reads a property, synthesizing built-in methods for strings and
// arrays on the fly.
func (in *Interp) getProp(at Node, recv Value, name string) (Value, error) {
	switch recv.Kind() {
	case KindObject:
		if m, ok := arrayMethod(recv.Object(), name); ok {
			return m, nil
		}
		return recv.Object().Get(name), nil
	case KindString:
		return stringProp(recv.Text(), name), nil
	case KindNumber:
		if name == "toFixed" {
			n := recv.Number()
			return NativeFunc("toFixed", func(in *Interp, this Value, args []Value) (Value, error) {
				digits := 0
				if len(args) > 0 {
					digits = int(args[0].Number())
				}
				return Str(fmt.Sprintf("%.*f", digits, n)), nil
			}), nil
		}
		return Undefined, nil
	case KindUndefined, KindNull:
		return Undefined, rtErr(at, "cannot read property %q of %s", name, recv.Kind())
	default:
		return Undefined, nil
	}
}
