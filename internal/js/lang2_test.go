package js

import (
	"strings"
	"testing"
)

// Tests for the extended language surface: switch, for-in, try/catch/
// finally, bitwise operators, delete, JSON, and Object.keys.

func TestSwitchBasic(t *testing.T) {
	in := runSrc(t, `
		function classify(n) {
			switch (n) {
			case 1: return "one";
			case 2: return "two";
			default: return "many";
			}
		}
		var a = classify(1), b = classify(2), c = classify(9);
	`)
	if global(t, in, "a").Text() != "one" || global(t, in, "b").Text() != "two" || global(t, in, "c").Text() != "many" {
		t.Fatal("switch dispatch wrong")
	}
}

func TestSwitchFallThrough(t *testing.T) {
	in := runSrc(t, `
		var log = [];
		switch (2) {
		case 1: log.push("one");
		case 2: log.push("two");
		case 3: log.push("three");
			break;
		case 4: log.push("four");
		}
		var out = log.join(",");
	`)
	if got := global(t, in, "out").Text(); got != "two,three" {
		t.Fatalf("fall-through = %q, want %q", got, "two,three")
	}
}

func TestSwitchDefaultInMiddle(t *testing.T) {
	in := runSrc(t, `
		var log = [];
		switch (99) {
		case 1: log.push("one");
		default: log.push("dflt");
		case 2: log.push("two"); break;
		case 3: log.push("three");
		}
		var out = log.join(",");
	`)
	// No case matches → default runs, falls through into case 2.
	if got := global(t, in, "out").Text(); got != "dflt,two" {
		t.Fatalf("middle default = %q", got)
	}
}

func TestSwitchStrictMatching(t *testing.T) {
	in := runSrc(t, `
		var hit = "";
		switch ("1") {
		case 1: hit = "number"; break;
		case "1": hit = "string"; break;
		}
	`)
	if global(t, in, "hit").Text() != "string" {
		t.Fatal("switch must use strict equality")
	}
}

func TestSwitchNoMatchNoDefault(t *testing.T) {
	in := runSrc(t, `
		var ran = false;
		switch (5) { case 1: ran = true; }
	`)
	if global(t, in, "ran").Truthy() {
		t.Fatal("unmatched switch ran a case")
	}
}

func TestSwitchDuplicateDefaultRejected(t *testing.T) {
	if _, err := Parse(`switch (1) { default: ; default: ; }`); err == nil {
		t.Fatal("duplicate default accepted")
	}
}

func TestForInObject(t *testing.T) {
	in := runSrc(t, `
		var o = {b: 2, a: 1, c: 3};
		var keys = [];
		var sum = 0;
		for (var k in o) { keys.push(k); sum += o[k]; }
		var out = keys.join(",");
	`)
	// Keys() follows insertion order, like real engines.
	if got := global(t, in, "out").Text(); got != "b,a,c" {
		t.Fatalf("for-in keys = %q", got)
	}
	if global(t, in, "sum").Number() != 6 {
		t.Fatal("for-in values wrong")
	}
}

func TestForInArrayIndexes(t *testing.T) {
	in := runSrc(t, `
		var a = [10, 20, 30];
		var total = 0;
		for (var i in a) { total += a[i]; }
	`)
	if global(t, in, "total").Number() != 60 {
		t.Fatal("for-in over array wrong")
	}
}

func TestForInBreakAndNonObject(t *testing.T) {
	in := runSrc(t, `
		var n = 0;
		for (var k in {a:1, b:2, c:3}) { n++; if (n === 2) break; }
		for (var j in 42) { n += 100; } // non-object: no iterations
	`)
	if global(t, in, "n").Number() != 2 {
		t.Fatalf("n = %v", global(t, in, "n"))
	}
}

func TestTryCatchThrownValue(t *testing.T) {
	in := runSrc(t, `
		var caught = null;
		try {
			throw {code: 42, msg: "boom"};
		} catch (e) {
			caught = e.code;
		}
	`)
	if global(t, in, "caught").Number() != 42 {
		t.Fatal("thrown object not caught")
	}
}

func TestTryCatchRuntimeError(t *testing.T) {
	in := runSrc(t, `
		var caught = "";
		try {
			missingVariable.x = 1;
		} catch (e) {
			caught = "yes";
		}
	`)
	if global(t, in, "caught").Text() != "yes" {
		t.Fatal("runtime error not catchable")
	}
}

func TestTryFinallyAlwaysRuns(t *testing.T) {
	in := runSrc(t, `
		var log = [];
		function f(fail) {
			try {
				if (fail) { throw "x"; }
				return "ok";
			} catch (e) {
				return "caught";
			} finally {
				log.push("fin");
			}
		}
		var a = f(false), b = f(true);
		var fins = log.length;
	`)
	if global(t, in, "a").Text() != "ok" || global(t, in, "b").Text() != "caught" {
		t.Fatal("try/catch returns wrong")
	}
	if global(t, in, "fins").Number() != 2 {
		t.Fatal("finally skipped")
	}
}

func TestFinallyOverridesReturn(t *testing.T) {
	in := runSrc(t, `
		function f() {
			try { return "try"; } finally { return "finally"; }
		}
		var r = f();
	`)
	if global(t, in, "r").Text() != "finally" {
		t.Fatalf("r = %v", global(t, in, "r"))
	}
}

func TestUncaughtRethrow(t *testing.T) {
	in := NewInterp()
	err := in.RunSource(`try { throw "inner"; } finally { var x = 1; }`)
	if err == nil || !strings.Contains(err.Error(), "inner") {
		t.Fatalf("err = %v", err)
	}
}

func TestOpLimitNotCatchable(t *testing.T) {
	in := NewInterp()
	in.SetOpLimit(5_000)
	err := in.RunSource(`
		try {
			while (true) { var x = 1; }
		} catch (e) {
			// Must NOT reach here: resource limits are not script-visible.
		}
	`)
	if err == nil || !strings.Contains(err.Error(), "operation limit") {
		t.Fatalf("op limit swallowed by catch: %v", err)
	}
}

func TestTryWithoutCatchOrFinallyRejected(t *testing.T) {
	if _, err := Parse(`try { var x = 1; }`); err == nil {
		t.Fatal("bare try accepted")
	}
}

func TestBitwiseOperators(t *testing.T) {
	cases := map[string]float64{
		"5 & 3":       1,
		"5 | 3":       7,
		"5 ^ 3":       6,
		"~5":          -6,
		"1 << 4":      16,
		"-16 >> 2":    -4,
		"255 & 15":    15,
		"1 << 31":     -2147483648, // int32 wraparound
		"3 | 4 & 2":   3,           // & binds tighter than |
		"1 + 2 << 1":  6,           // shift below additive
		"7 & 3 === 3": 1,           // equality binds tighter than &
	}
	for expr, want := range cases {
		if got := evalExpr(t, expr).Number(); got != want {
			t.Errorf("%s = %v, want %v", expr, got, want)
		}
	}
}

func TestDeleteOperator(t *testing.T) {
	in := runSrc(t, `
		var o = {a: 1, b: 2};
		delete o.a;
		var hasA = typeof o.a;
		delete o["b"];
		var n = 0;
		for (var k in o) { n++; }
	`)
	if global(t, in, "hasA").Text() != "undefined" || global(t, in, "n").Number() != 0 {
		t.Fatal("delete failed")
	}
}

func TestJSONStringify(t *testing.T) {
	cases := map[string]string{
		`JSON.stringify(42)`:                 "42",
		`JSON.stringify("hi")`:               `"hi"`,
		`JSON.stringify(true)`:               "true",
		`JSON.stringify(null)`:               "null",
		`JSON.stringify([1, "a", false])`:    `[1,"a",false]`,
		`JSON.stringify({a: 1})`:             `{"a":1}`,
		`JSON.stringify({f: function(){} })`: `{}`, // functions are omitted from objects
		`JSON.stringify([function(){}])`:     `[null]`,
		`JSON.stringify({b: 2, a: 1})`:       `{"b":2,"a":1}`, // insertion order, not sorted
	}
	for expr, want := range cases {
		if got := evalExpr(t, expr).Text(); got != want {
			t.Errorf("%s = %q, want %q", expr, got, want)
		}
	}
}

func TestJSONParse(t *testing.T) {
	in := runSrc(t, `
		var o = JSON.parse('{"name": "cart", "items": [1, 2, 3], "open": true}');
		var name = o.name;
		var second = o.items[1];
		var open = o.open;
		var nested = JSON.parse('[{"x": 5}]')[0].x;
	`)
	if global(t, in, "name").Text() != "cart" || global(t, in, "second").Number() != 2 {
		t.Fatal("JSON.parse wrong")
	}
	if !global(t, in, "open").Truthy() || global(t, in, "nested").Number() != 5 {
		t.Fatal("JSON.parse nested wrong")
	}
}

func TestJSONRoundTrip(t *testing.T) {
	in := runSrc(t, `
		var orig = {a: [1, 2, {b: "x"}], c: null};
		var back = JSON.parse(JSON.stringify(orig));
		var same = back.a[2].b === "x" && back.a.length === 3 && back.c === null;
	`)
	if !global(t, in, "same").Truthy() {
		t.Fatal("JSON round trip failed")
	}
}

func TestJSONParseErrorCatchable(t *testing.T) {
	in := runSrc(t, `
		var ok = false;
		try { JSON.parse("{broken"); } catch (e) { ok = true; }
	`)
	if !global(t, in, "ok").Truthy() {
		t.Fatal("JSON.parse error not catchable")
	}
}

func TestObjectKeys(t *testing.T) {
	in := runSrc(t, `
		var ks = Object.keys({z: 1, a: 2});
		var out = ks.join(",");
		var arrKeys = Object.keys([9, 9]).join(",");
		var none = Object.keys(5).length;
	`)
	if global(t, in, "out").Text() != "z,a" {
		t.Fatalf("Object.keys = %q", global(t, in, "out").Text())
	}
	if global(t, in, "arrKeys").Text() != "0,1" {
		t.Fatal("Object.keys over array wrong")
	}
	if global(t, in, "none").Number() != 0 {
		t.Fatal("Object.keys over number should be empty")
	}
}

func TestSwitchInsideLoopContinue(t *testing.T) {
	in := runSrc(t, `
		var evens = 0;
		for (var i = 0; i < 10; i++) {
			switch (i % 2) {
			case 1: continue;
			}
			evens++;
		}
	`)
	if global(t, in, "evens").Number() != 5 {
		t.Fatalf("evens = %v", global(t, in, "evens"))
	}
}

func TestReduceAndReverse(t *testing.T) {
	in := runSrc(t, `
		var sum = [1, 2, 3, 4].reduce(function(acc, v) { return acc + v; }, 0);
		var noInit = [5, 6].reduce(function(acc, v) { return acc + v; });
		var rev = [1, 2, 3].reverse().join(",");
	`)
	if global(t, in, "sum").Number() != 10 || global(t, in, "noInit").Number() != 11 {
		t.Fatal("reduce wrong")
	}
	if global(t, in, "rev").Text() != "3,2,1" {
		t.Fatal("reverse wrong")
	}
	// Empty reduce without init is an error, catchable by scripts.
	in2 := runSrc(t, `
		var caught = false;
		try { [].reduce(function(a, b) { return a; }); } catch (e) { caught = true; }
	`)
	if !global(t, in2, "caught").Truthy() {
		t.Fatal("empty reduce error not raised")
	}
}

func TestArrayIsArray(t *testing.T) {
	truthy := []string{`Array.isArray([])`, `Array.isArray([1,2])`}
	falsy := []string{`Array.isArray({})`, `Array.isArray("s")`, `Array.isArray()`, `Array.isArray(5)`}
	for _, expr := range truthy {
		if !evalExpr(t, expr).Truthy() {
			t.Errorf("%s should be true", expr)
		}
	}
	for _, expr := range falsy {
		if evalExpr(t, expr).Truthy() {
			t.Errorf("%s should be false", expr)
		}
	}
}

func TestContinueInWhileAndDoWhile(t *testing.T) {
	in := runSrc(t, `
		var odd = 0, i = 0;
		while (i < 10) { i++; if (i % 2 === 0) { continue; } odd++; }
		var d = 0, j = 0;
		do { j++; if (j % 3 !== 0) { continue; } d++; } while (j < 9);
	`)
	if global(t, in, "odd").Number() != 5 {
		t.Fatalf("while continue: odd = %v", global(t, in, "odd"))
	}
	if global(t, in, "d").Number() != 3 {
		t.Fatalf("do-while continue: d = %v", global(t, in, "d"))
	}
}

func TestOpsCountDeterministic(t *testing.T) {
	// Cost attribution depends on op counts being exactly reproducible.
	src := `
		var s = 0;
		for (var i = 0; i < 200; i++) {
			s += i * 2;
			if (i % 7 === 0) { s -= 1; }
		}
		var o = {a: [1,2,3]};
		for (var k in o.a) { s += o.a[k]; }
		JSON.stringify(o);
	`
	count := func() int64 {
		in := NewInterp()
		in.InstallStdlib(nil)
		if err := in.RunSource(src); err != nil {
			t.Fatal(err)
		}
		return in.Ops()
	}
	a, b := count(), count()
	if a != b || a == 0 {
		t.Fatalf("op counts differ: %d vs %d", a, b)
	}
}
